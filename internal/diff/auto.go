package diff

import (
	"runtime"

	"ipdelta/internal/delta"
	"ipdelta/internal/obs"
)

// Auto is the self-selecting differencer, registered as "auto" in ByName:
// each Diff call picks Linear or Parallel from the input size and the
// current GOMAXPROCS through a small measured cost model, so callers
// (updated, httpdelta, ipstore serve, ipdelta) never have to guess which
// engine wins on their hardware. Both underlying engines pool their
// working memory and are safe for concurrent use, so Auto is too.
type Auto struct {
	lin  *Linear
	par  *Parallel
	amet *autoMetrics
}

// autoMetrics counts dispatch decisions so a metrics scrape shows where
// the crossover actually lands in production traffic.
type autoMetrics struct {
	linearPicks   *obs.Counter
	parallelPicks *obs.Counter
}

func resolveAutoMetrics(r *obs.Registry) *autoMetrics {
	return &autoMetrics{
		linearPicks:   r.Counter("ipdelta_diff_auto_linear_total"),
		parallelPicks: r.Counter("ipdelta_diff_auto_parallel_total"),
	}
}

// Cost-model constants, fitted to the ipbench corpus measurements
// (BENCH_convert.json): the sequential engine scans at roughly
// scanNsPerByte, and a parallel diff pays roughly forkJoinNs once
// (dispatch plus the final stitch) and perWorkerNs per worker (channel
// hand-off, sharded table-build imbalance, seam handling). The absolute
// numbers only need to be right within a factor of a few: the decision
// they feed is a worker count and a crossover, both of which move slowly
// with the constants.
const (
	scanNsPerByte = 13.0
	forkJoinNs    = 20000.0
	perWorkerNs   = 6000.0
)

// chooseWorkers is the dispatch decision: the worker count the cost
// model picks for one input on procs processors, where 1 means the
// sequential engine wins. The candidate worker count is capped by the
// adaptive segment floor (a segment smaller than segmentFloor cannot
// amortize its setup), and parallel is chosen only when the modelled
// fork/join overhead is recovered by the shortened scan.
//
//ipvet:allocfree
func chooseWorkers(versionLen, procs int) int {
	w := workersFor(versionLen, procs)
	if w <= 1 {
		return 1
	}
	seq := scanNsPerByte * float64(versionLen)
	par := seq/float64(w) + forkJoinNs + perWorkerNs*float64(w)
	if par >= seq {
		return 1
	}
	return w
}

// NewAuto returns a self-selecting differencer. Options configure both
// underlying engines (seed length, table size, observer).
func NewAuto(opts ...LinearOption) *Auto {
	a := &Auto{lin: NewLinear(opts...), par: NewParallel(0, opts...)}
	if a.lin.obs != nil {
		a.amet = resolveAutoMetrics(a.lin.obs)
	}
	return a
}

// Name implements Algorithm.
func (a *Auto) Name() string { return "auto" }

// Diff implements Algorithm by delegating to the engine the cost model
// picks for this input size and the current GOMAXPROCS.
func (a *Auto) Diff(ref, version []byte) (*delta.Delta, error) {
	if chooseWorkers(len(version), runtime.GOMAXPROCS(0)) > 1 {
		if a.amet != nil {
			a.amet.parallelPicks.Inc()
		}
		return a.par.Diff(ref, version)
	}
	if a.amet != nil {
		a.amet.linearPicks.Inc()
	}
	return a.lin.Diff(ref, version)
}

// AutoDiffer is the reusable self-selecting differencer for steady-state
// pipelines: a Differ and a ParallelDiffer sharing the dispatch rule, so
// repeated Diff calls stay allocation-free once both engines are warm.
// The returned delta is owned by the differ and valid only until its next
// call; an AutoDiffer is not safe for concurrent use — (*Auto).Diff pools
// its state internally and is.
type AutoDiffer struct {
	lin  *Differ
	par  *ParallelDiffer
	amet *autoMetrics
}

// NewAutoDiffer returns a reusable self-selecting differencer with the
// given options applied. Close releases the parallel engine's worker
// goroutines; an unreachable differ is cleaned up by the collector.
func NewAutoDiffer(opts ...LinearOption) *AutoDiffer {
	ad := &AutoDiffer{lin: NewDiffer(opts...), par: NewParallelDiffer(0, opts...)}
	if ad.lin.l.obs != nil {
		ad.amet = resolveAutoMetrics(ad.lin.l.obs)
	}
	return ad
}

// Name identifies the algorithm in reports.
func (ad *AutoDiffer) Name() string { return "auto" }

// Close releases the parallel engine's worker goroutines. The differ
// must not be used afterwards.
func (ad *AutoDiffer) Close() { ad.par.Close() }

// Diff computes the delta like (*Auto).Diff, into differ-owned storage
// that is reused by — and valid only until — the next call.
func (ad *AutoDiffer) Diff(ref, version []byte) (*delta.Delta, error) {
	if chooseWorkers(len(version), runtime.GOMAXPROCS(0)) > 1 {
		if ad.amet != nil {
			ad.amet.parallelPicks.Inc()
		}
		return ad.par.Diff(ref, version)
	}
	if ad.amet != nil {
		ad.amet.linearPicks.Inc()
	}
	return ad.lin.Diff(ref, version)
}
