package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// buildArchivedStore inits a store with n versions and archives it into
// dir with the given coding shape, returning the versions.
func buildArchivedStore(t *testing.T, dir string, n, k, m, segment int) [][]byte {
	t.Helper()
	versions := makeVersions(t, n)
	storePath := filepath.Join(dir, "releases.ipst")
	basePath := writeTemp(t, dir, "v0.img", versions[0])
	if err := run([]string{"init", "-store", storePath, "-base", basePath}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(versions); i++ {
		p := writeTemp(t, dir, "v.img", versions[i])
		if err := run([]string{"append", "-store", storePath, "-version", p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := run([]string{
		"archive", "-store", storePath, "-dir", filepath.Join(dir, "arch"),
		"-data", strconv.Itoa(k), "-parity", strconv.Itoa(m),
		"-segment", strconv.Itoa(segment),
	}); err != nil {
		t.Fatal(err)
	}
	return versions
}

// restoreAndCompare restores version i from the archive dir and checks it
// byte-for-byte.
func restoreAndCompare(t *testing.T, dir string, i int, want []byte) {
	t.Helper()
	outPath := filepath.Join(dir, "restored.img")
	if err := run([]string{"restore", "-dir", filepath.Join(dir, "arch"), "-index", strconv.Itoa(i), "-out", outPath}); err != nil {
		t.Fatalf("restore %d: %v", i, err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restored version %d differs", i)
	}
}

func TestArchiveScrubRestoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	versions := buildArchivedStore(t, dir, 6, 3, 2, 2)
	arch := filepath.Join(dir, "arch")

	if _, err := os.Stat(filepath.Join(arch, manifestName)); err != nil {
		t.Fatalf("no manifest: %v", err)
	}
	// 3+2 node directories, each holding one shard per stripe.
	for i := 0; i < 5; i++ {
		entries, err := os.ReadDir(nodeDir(arch, i))
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if len(entries) != 3 { // 6 versions / segment 2
			t.Fatalf("node %d holds %d shards, want 3", i, len(entries))
		}
	}
	if err := run([]string{"scrub", "-dir", arch, "-verify"}); err != nil {
		t.Fatal(err)
	}
	for i := range versions {
		restoreAndCompare(t, dir, i, versions[i])
	}
}

func TestArchiveRestoreSurvivesNodeLoss(t *testing.T) {
	dir := t.TempDir()
	versions := buildArchivedStore(t, dir, 6, 3, 2, 2)
	arch := filepath.Join(dir, "arch")

	// Delete m=2 whole node directories: restores must still succeed
	// purely from the surviving k=3.
	for _, n := range []int{1, 4} {
		if err := os.RemoveAll(nodeDir(arch, n)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range versions {
		restoreAndCompare(t, dir, i, versions[i])
	}
	// A bare scrub reports the loss and fails without -repair.
	if err := run([]string{"scrub", "-dir", arch}); err == nil {
		t.Fatal("scrub of a degraded archive succeeded without -repair")
	}
	// Repair rebuilds the lost node directories on disk.
	if err := run([]string{"scrub", "-dir", arch, "-repair", "-verify"}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4} {
		entries, err := os.ReadDir(nodeDir(arch, n))
		if err != nil || len(entries) != 3 {
			t.Fatalf("node %d not rebuilt (%d shards, err %v)", n, len(entries), err)
		}
	}
	if err := run([]string{"scrub", "-dir", arch}); err != nil {
		t.Fatalf("post-repair scrub: %v", err)
	}
}

func TestArchiveScrubRepairsBitRot(t *testing.T) {
	dir := t.TempDir()
	versions := buildArchivedStore(t, dir, 4, 4, 2, 2)
	arch := filepath.Join(dir, "arch")

	// Flip a byte in one shard of node 2.
	nd := nodeDir(arch, 2)
	entries, err := os.ReadDir(nd)
	if err != nil || len(entries) == 0 {
		t.Fatalf("node 2: %v", err)
	}
	victim := filepath.Join(nd, entries[0].Name())
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"scrub", "-dir", arch}); err == nil {
		t.Fatal("scrub missed the flipped shard")
	}
	if err := run([]string{"scrub", "-dir", arch, "-repair", "-verify"}); err != nil {
		t.Fatal(err)
	}
	// The shard on disk is byte-identical to the re-encoded original now.
	for i := range versions {
		restoreAndCompare(t, dir, i, versions[i])
	}
}

func TestArchiveUsageErrors(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"archive"},
		{"archive", "-store", "missing.ipst", "-dir", filepath.Join(dir, "a")},
		{"scrub"},
		{"scrub", "-dir", filepath.Join(dir, "nope")},
		{"restore"},
		{"restore", "-dir", filepath.Join(dir, "nope"), "-index", "0", "-out", filepath.Join(dir, "o")},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestArchiveRestoreBeyondHistory(t *testing.T) {
	dir := t.TempDir()
	buildArchivedStore(t, dir, 6, 3, 2, 2)
	err := run([]string{"restore", "-dir", filepath.Join(dir, "arch"), "-index", "99", "-out", filepath.Join(dir, "o")})
	if err == nil {
		t.Fatal("restore beyond archived history succeeded")
	}
}
