package diff

import (
	"bytes"
	"math/rand"
	"testing"

	"ipdelta/internal/obs"
)

// TestParallelMatchesLinearBytes is the equivalence property of the
// parallel engine: for every worker count 1..8 and a spread of input
// sizes (well below one segment up to many segments), the parallel delta
// must decode byte-for-byte to the same version the linear delta decodes
// to — equivalence on output bytes, not command streams — and must
// validate as a well-formed delta.
func TestParallelMatchesLinearBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	l := NewLinear()
	sizes := []int{0, 1, 3, 17, 300, 4<<10 + 13, 32 << 10, 130 << 10}
	for workers := 1; workers <= 8; workers++ {
		pl := NewParallel(workers)
		for _, size := range sizes {
			ref := make([]byte, size)
			rng.Read(ref)
			version := mutate(rng, ref, 1+size/2048)

			want, err := l.Diff(ref, version)
			if err != nil {
				t.Fatalf("w=%d size=%d: Linear.Diff: %v", workers, size, err)
			}
			got, err := pl.Diff(ref, version)
			if err != nil {
				t.Fatalf("w=%d size=%d: Parallel.Diff: %v", workers, size, err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("w=%d size=%d: invalid parallel delta: %v", workers, size, err)
			}
			wantOut, err := want.Apply(ref)
			if err != nil {
				t.Fatalf("w=%d size=%d: linear apply: %v", workers, size, err)
			}
			gotOut, err := got.Apply(ref)
			if err != nil {
				t.Fatalf("w=%d size=%d: parallel apply: %v", workers, size, err)
			}
			if !bytes.Equal(gotOut, version) || !bytes.Equal(wantOut, version) {
				t.Fatalf("w=%d size=%d: deltas do not reproduce the version", workers, size)
			}
			// Compression parity: seams may cost a bounded number of
			// match bytes each, never more.
			slack := int64(8 * 16 * workers) // seams × generous per-seam loss
			if got.AddedBytes() > want.AddedBytes()+slack {
				t.Fatalf("w=%d size=%d: parallel adds %d bytes, linear %d (+%d slack exceeded)",
					workers, size, got.AddedBytes(), want.AddedBytes(), slack)
			}
		}
	}
}

// TestParallelDifferMatchesParallel checks the reusable differ against
// the detached path across repeated, interleaved inputs.
func TestParallelDifferMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pl := NewParallel(4)
	pd := NewParallelDiffer(4)
	for i := 0; i < 20; i++ {
		ref := make([]byte, 8<<10+rng.Intn(32<<10))
		rng.Read(ref)
		version := mutate(rng, ref, 1+rng.Intn(12))

		want, err := pl.Diff(ref, version)
		if err != nil {
			t.Fatalf("case %d: Parallel.Diff: %v", i, err)
		}
		got, err := pd.Diff(ref, version)
		if err != nil {
			t.Fatalf("case %d: ParallelDiffer.Diff: %v", i, err)
		}
		if len(got.Commands) != len(want.Commands) {
			t.Fatalf("case %d: %d commands, want %d", i, len(got.Commands), len(want.Commands))
		}
		for k := range got.Commands {
			if !got.Commands[k].Equal(want.Commands[k]) {
				t.Fatalf("case %d: command %d: got %v, want %v", i, k, got.Commands[k], want.Commands[k])
			}
		}
		out, err := got.Apply(ref)
		if err != nil {
			t.Fatalf("case %d: apply: %v", i, err)
		}
		if !bytes.Equal(out, version) {
			t.Fatalf("case %d: reused delta does not reproduce the version", i)
		}
	}
}

// TestParallelSeamStraddlingMatch pins the seam-merge behaviour: a single
// long identical region straddling every segment boundary must come out
// as one merged copy per contiguous run, not one per segment, and the
// merge counter must record the rejoins.
func TestParallelSeamStraddlingMatch(t *testing.T) {
	reg := obs.NewRegistry()
	const workers = 4
	pl := NewParallel(workers, WithObserver(reg))
	// ref == version, large enough for 4 segments: the whole file is one
	// match that straddles all three interior seams.
	ref := make([]byte, workers*segmentFloor*2)
	rand.New(rand.NewSource(7)).Read(ref)
	version := append([]byte(nil), ref...)

	d, err := pl.Diff(ref, version)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	out, err := d.Apply(ref)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !bytes.Equal(out, version) {
		t.Fatal("delta does not reproduce the version")
	}
	if len(d.Commands) != 1 {
		t.Fatalf("identical straddling input produced %d commands, want 1 merged copy: %v",
			len(d.Commands), d.Commands)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("ipdelta_diff_seam_merges_total"); got != workers-1 {
		t.Fatalf("seam merges = %d, want %d", got, workers-1)
	}
	if got := snap.Counter("ipdelta_diff_segments_total"); got != workers {
		t.Fatalf("segments = %d, want %d", got, workers)
	}
	if h, ok := snap.Histograms["ipdelta_diff_stage_worker_scan_nanos"]; !ok || h.Count != workers {
		t.Fatalf("worker scan spans = %v, want %d observations", h.Count, workers)
	}
}

// TestParallelLiteralSeam pins the other merge flavour: unrelated files
// split across segments must still yield one single add spanning the
// whole version (literal runs rejoined across arena boundaries).
func TestParallelLiteralSeam(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := make([]byte, 64<<10)
	rng.Read(ref)
	version := make([]byte, 64<<10)
	rng.Read(version)

	pl := NewParallel(4)
	d, err := pl.Diff(ref, version)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	out, err := d.Apply(ref)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !bytes.Equal(out, version) {
		t.Fatal("delta does not reproduce the version")
	}
	// Random data has almost no real matches; the dominant structure must
	// be literal runs merged across seams, never one add per segment with
	// identical boundaries at multiples of len/4.
	if d.AddedBytes() < int64(len(version))*9/10 {
		t.Fatalf("only %d of %d bytes added for unrelated files", d.AddedBytes(), len(version))
	}
}

// TestParallelEdgeCases covers empty and sub-seed inputs at several
// worker counts.
func TestParallelEdgeCases(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		pl := NewParallel(workers)
		for _, tc := range []struct{ ref, version string }{
			{"", ""},
			{"reference bytes", ""},
			{"", "short"},
			{"tiny", "also tiny"},
			{"just over the seed length....", "just under seed"},
		} {
			d, err := pl.Diff([]byte(tc.ref), []byte(tc.version))
			if err != nil {
				t.Fatalf("w=%d Diff(%q, %q): %v", workers, tc.ref, tc.version, err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("w=%d Diff(%q, %q): invalid delta: %v", workers, tc.ref, tc.version, err)
			}
			out, err := d.Apply([]byte(tc.ref))
			if err != nil {
				t.Fatalf("w=%d Diff(%q, %q): apply: %v", workers, tc.ref, tc.version, err)
			}
			if string(out) != tc.version {
				t.Fatalf("w=%d Diff(%q, %q): reproduced %q", workers, tc.ref, tc.version, out)
			}
		}
	}
}

// TestParallelByName resolves the CLI identifier.
func TestParallelByName(t *testing.T) {
	a, err := ByName("parallel")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(*Parallel); !ok {
		t.Fatalf("ByName(parallel) = %T", a)
	}
}

// TestParallelDifferAllocs is the steady-state allocation gate for the
// reusable parallel path: after warm-up, (*ParallelDiffer).Diff must stay
// at 0 allocations per call — the table, per-worker arenas, and stitched
// output are all differ-owned, and worker goroutines are spawned without
// closures. The slack of 2 tolerates runtime-internal noise (goroutine
// descriptor recycling), not differencer regressions.
func TestParallelDifferAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	ref, version := allocBenchPair()
	pd := NewParallelDiffer(4)
	for i := 0; i < 4; i++ { // warm scratch and the runtime's g free list
		if _, err := pd.Diff(ref, version); err != nil {
			t.Fatalf("warm-up diff: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := pd.Diff(ref, version); err != nil {
			t.Fatalf("diff: %v", err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state (*ParallelDiffer).Diff allocates %.1f times per call, want <= 2", allocs)
	}
}

// TestParallelObservedAllocs repeats the gate with a registry attached:
// observation must stay allocation-free on the parallel path too.
func TestParallelObservedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	ref, version := allocBenchPair()
	pd := NewParallelDiffer(4, WithObserver(obs.NewRegistry()))
	for i := 0; i < 4; i++ {
		if _, err := pd.Diff(ref, version); err != nil {
			t.Fatalf("warm-up diff: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := pd.Diff(ref, version); err != nil {
			t.Fatalf("diff: %v", err)
		}
	})
	if allocs > 2 {
		t.Fatalf("observed (*ParallelDiffer).Diff allocates %.1f times per call, want <= 2", allocs)
	}
}
