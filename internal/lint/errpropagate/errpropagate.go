// Package errpropagate flags dropped errors on the paths where an ignored
// error silently corrupts user data: calls into the codec (decode/encode)
// and the version store. A truncated decode or a failed store append that
// the caller shrugs off is indistinguishable from success until a device
// flashes a bad image, so every error from these packages must reach a
// variable or an explicit //ipvet:ignore.
//
// Flagged:
//
//	codec.Encode(w, d, f)            // call statement, error unused
//	v, _ := s.Version(i)             // error assigned to blank
//	defer enc.Close()                // deferred call, error unused
//	go s.AppendVersion(v)            // goroutine call, error unused
//
// Only callees defined in the target packages are checked; the analyzer is
// a scoped errcheck, not a general one.
package errpropagate

import (
	"go/ast"
	"go/types"
	"regexp"

	"ipdelta/internal/lint/analysis"
)

// CalleePattern selects the packages whose errors must propagate.
var CalleePattern = regexp.MustCompile(`(^|/)(codec|store|delta|inplace)$`)

// Analyzer is the errpropagate analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errpropagate",
	Doc: "flags dropped errors from codec decode/encode, delta validation, " +
		"and store I/O calls",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			check(pass, s.X)
		case *ast.DeferStmt:
			check(pass, s.Call)
		case *ast.GoStmt:
			check(pass, s.Call)
		case *ast.AssignStmt:
			checkBlank(pass, s)
		}
		return true
	})
	return nil, nil
}

// check reports a bare call whose error result vanishes.
func check(pass *analysis.Pass, e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := targetCallee(pass, call)
	if !ok || len(errorIndexes(pass, call)) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s is dropped; handle or assign it", name)
}

// checkBlank reports err-position blanks in `v, _ := pkg.F()`.
func checkBlank(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := targetCallee(pass, call)
	if !ok {
		return
	}
	for _, idx := range errorIndexes(pass, call) {
		if idx < len(as.Lhs) {
			if id, ok := as.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(as.Pos(), "error returned by %s is assigned to _; handle or propagate it", name)
			}
		}
	}
}

// targetCallee resolves the called function and reports whether it is
// defined in one of the target packages, returning a printable name.
func targetCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, ok := pass.ObjectOf(id).(*types.Func)
	if !ok || fn.Pkg() == nil || !CalleePattern.MatchString(fn.Pkg().Path()) {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// errorIndexes returns the result positions of type error.
func errorIndexes(pass *analysis.Pass, call *ast.CallExpr) []int {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	var out []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			out = append(out, i)
		}
	}
	return out
}
