package delta

import (
	"fmt"
	"io"
	"slices"
)

// Summary aggregates command statistics of a delta — the command counts
// and length distributions behind the paper's observation that classical
// codewords produce "many short add commands".
type Summary struct {
	Copies      int
	Adds        int
	CopiedBytes int64
	AddedBytes  int64
	// Length percentiles (P50/P90/Max) per command kind; zero when the
	// kind is absent.
	CopyP50, CopyP90, CopyMax int64
	AddP50, AddP90, AddMax    int64
	// ShortAdds counts add commands of at most 32 bytes — the encoding
	// overhead hot spot.
	ShortAdds int
}

// Summarize computes command statistics.
func (d *Delta) Summarize() Summary {
	var s Summary
	var copyLens, addLens []int64
	for _, c := range d.Commands {
		switch c.Op {
		case OpCopy:
			s.Copies++
			s.CopiedBytes += c.Length
			copyLens = append(copyLens, c.Length)
		case OpAdd:
			s.Adds++
			s.AddedBytes += c.Length
			addLens = append(addLens, c.Length)
			if c.Length <= 32 {
				s.ShortAdds++
			}
		}
	}
	s.CopyP50, s.CopyP90, s.CopyMax = percentiles(copyLens)
	s.AddP50, s.AddP90, s.AddMax = percentiles(addLens)
	return s
}

// percentiles returns the 50th and 90th percentile and maximum of lens.
func percentiles(lens []int64) (p50, p90, max int64) {
	if len(lens) == 0 {
		return 0, 0, 0
	}
	slices.Sort(lens)
	at := func(q float64) int64 {
		k := int(q * float64(len(lens)-1))
		return lens[k]
	}
	return at(0.50), at(0.90), lens[len(lens)-1]
}

// Render prints the summary in a fixed, human-readable layout.
func (s Summary) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"copies: %d (%d bytes; len p50/p90/max %d/%d/%d)\n"+
			"adds:   %d (%d bytes; len p50/p90/max %d/%d/%d; %d short ≤32B)\n",
		s.Copies, s.CopiedBytes, s.CopyP50, s.CopyP90, s.CopyMax,
		s.Adds, s.AddedBytes, s.AddP50, s.AddP90, s.AddMax, s.ShortAdds)
	return err
}
