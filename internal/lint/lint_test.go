package lint_test

import (
	"testing"

	"ipdelta/internal/lint"
	"ipdelta/internal/lint/loader"
)

// TestRepoIsClean runs every analyzer over the whole module, so the
// acceptance gate of cmd/ipvet (`go run ./cmd/ipvet ./...` exits 0) is
// enforced by the ordinary test suite as well as by CI.
func TestRepoIsClean(t *testing.T) {
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load(l.ModuleRoot() + "/...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the loader is missing the module", len(pkgs))
	}
	findings, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", lint.FindingString(f))
	}
}

// TestAnalyzerMetadata guards the CLI contract: distinct, non-empty names
// (they key //ipvet:ignore suppressions) and docs for -list.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 8 {
		t.Errorf("expected the eight ipvet analyzers, got %d", len(seen))
	}
}
