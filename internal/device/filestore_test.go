package device

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
)

// tempImage writes content to a temp file and opens it read-write.
func tempImage(t *testing.T, content []byte) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "image.img")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFileStoreBasics(t *testing.T) {
	f := tempImage(t, []byte("abcdefgh"))
	s, err := NewFileStore(f, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 16 {
		t.Fatalf("Capacity = %d", s.Capacity())
	}
	buf := make([]byte, 4)
	if err := s.ReadAt(buf, 2); err != nil || string(buf) != "cdef" {
		t.Fatalf("ReadAt: %q %v", buf, err)
	}
	// Reads past EOF but within capacity are zero-filled.
	buf = make([]byte, 8)
	if err := s.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf[:2]) != "gh" || !bytes.Equal(buf[2:], make([]byte, 6)) {
		t.Fatalf("EOF read = %q", buf)
	}
	// Writes extend the file within capacity.
	if err := s.WriteAt([]byte("XY"), 12); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(buf[:2], 12); err != nil || string(buf[:2]) != "XY" {
		t.Fatalf("read back: %q %v", buf[:2], err)
	}
	// Bounds are enforced.
	if err := s.ReadAt(buf, 10); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("OOB read error = %v", err)
	}
	if err := s.WriteAt(buf, 10); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("OOB write error = %v", err)
	}
	if err := s.Truncate(99); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("OOB truncate error = %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestNewFileStoreRejectsOversizedFile(t *testing.T) {
	f := tempImage(t, make([]byte, 100))
	if _, err := NewFileStore(f, 50); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("error = %v", err)
	}
}

func TestDeviceOverFileStore(t *testing.T) {
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: 48 << 10, ChangeRate: 0.10, Seed: 77})
	enc := buildInPlaceDelta(t, pair.Ref, pair.Version, codec.FormatCompact)

	f := tempImage(t, pair.Ref)
	capacity := int64(len(pair.Ref))
	if int64(len(pair.Version)) > capacity {
		capacity = int64(len(pair.Version))
	}
	s, err := NewFileStore(f, capacity)
	if err != nil {
		t.Fatal(err)
	}
	dev := New(s, int64(len(pair.Ref)), 1024)
	if err := dev.Apply(bytes.NewReader(enc)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dev.Image(), pair.Version) {
		t.Fatal("file-backed device produced wrong image")
	}
	// Truncate to the final length and re-read the file from disk.
	if err := s.Truncate(dev.ImageLen()); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pair.Version) {
		t.Fatal("on-disk file does not hold the new version")
	}
}

func TestDeviceOverFileStoreResume(t *testing.T) {
	// Resume works over files too: interrupt by applying a truncated
	// stream, then finish with the full stream.
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 32 << 10, ChangeRate: 0.10, Seed: 78})
	enc := buildInPlaceDelta(t, pair.Ref, pair.Version, codec.FormatCompact)

	f := tempImage(t, pair.Ref)
	capacity := int64(len(pair.Ref)) + 32<<10
	s, err := NewFileStore(f, capacity)
	if err != nil {
		t.Fatal(err)
	}
	dev := New(s, int64(len(pair.Ref)), 512)
	// Feed only half the delta: the decode fails mid-stream, leaving the
	// device mid-update.
	if err := dev.Apply(bytes.NewReader(enc[:len(enc)/2])); err == nil {
		t.Fatal("truncated stream must fail")
	}
	if !dev.Updating() {
		t.Fatal("device lost pending state")
	}
	if err := dev.Apply(bytes.NewReader(enc)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dev.Image(), pair.Version) {
		t.Fatal("resume over file store failed")
	}
}

func TestFileStoreRandomAccessAgainstFlash(t *testing.T) {
	// FileStore and Flash must behave identically under random operations.
	rng := rand.New(rand.NewSource(79))
	const capacity = 4096
	f := tempImage(t, nil)
	fs, err := NewFileStore(f, capacity)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := NewFlash(nil, capacity)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 500; k++ {
		off := rng.Int63n(capacity)
		n := rng.Int63n(64) + 1
		if off+n > capacity {
			n = capacity - off
		}
		if rng.Intn(2) == 0 {
			p := make([]byte, n)
			rng.Read(p)
			if err := fs.WriteAt(p, off); err != nil {
				t.Fatal(err)
			}
			if err := fl.WriteAt(p, off); err != nil {
				t.Fatal(err)
			}
		} else {
			a := make([]byte, n)
			b := make([]byte, n)
			if err := fs.ReadAt(a, off); err != nil {
				t.Fatal(err)
			}
			if err := fl.ReadAt(b, off); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("divergence at op %d off %d len %d", k, off, n)
			}
		}
	}
}
