package delta

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
)

// Compose combines two delta files: given first encoding version B from
// reference A and second encoding version C from reference B, it returns a
// delta encoding C directly from A — without materializing B. Update
// servers use this to serve any old device a single delta composed from a
// chain of per-release deltas.
//
// Each command of second is rewritten through first: an add stays an add;
// a copy reading [f, f+l) of B is split at the boundaries of first's
// commands covering that range, each fragment becoming either a copy from
// A (when first encoded those B bytes as a copy) or an add carrying bytes
// from first's add data.
//
// The result is in the same write order as second (so an in-place-safe
// second does NOT generally stay safe — run the in-place converter on the
// composition). Adjacent fragments from the same source are merged.
func Compose(first, second *Delta) (*Delta, error) {
	if err := first.Validate(); err != nil {
		return nil, fmt.Errorf("compose: first: %w", err)
	}
	if err := second.Validate(); err != nil {
		return nil, fmt.Errorf("compose: second: %w", err)
	}
	if first.VersionLen != second.RefLen {
		return nil, fmt.Errorf("compose: first produces %d bytes, second expects %d",
			first.VersionLen, second.RefLen)
	}

	// Index first's commands by write interval (they are disjoint and
	// cover B exactly).
	cover := make([]Command, len(first.Commands))
	copy(cover, first.Commands)
	slices.SortFunc(cover, func(a, b Command) int { return cmp.Compare(a.To, b.To) })

	out := &Delta{RefLen: first.RefLen, VersionLen: second.VersionLen}
	var merger commandMerger
	for _, c := range second.Commands {
		switch c.Op {
		case OpAdd:
			merger.add(c.To, c.Data)
		case OpCopy:
			// Walk first's commands across [c.From, c.From+c.Length).
			remaining := c.Length
			src := c.From // offset in B
			dst := c.To   // offset in C
			// Find the covering command via binary search: the last k with
			// cover[k].To <= src.
			k := sort.Search(len(cover), func(k int) bool { return cover[k].To > src }) - 1
			for remaining > 0 {
				if k < 0 || k >= len(cover) {
					return nil, fmt.Errorf("compose: offset %d of intermediate version uncovered", src)
				}
				base := cover[k]
				inOff := src - base.To // offset within base's write
				if inOff < 0 || inOff >= base.Length {
					return nil, fmt.Errorf("compose: offset %d of intermediate version uncovered", src)
				}
				n := base.Length - inOff
				if n > remaining {
					n = remaining
				}
				switch base.Op {
				case OpCopy:
					merger.copy(base.From+inOff, dst, n)
				case OpAdd:
					merger.add(dst, base.Data[inOff:inOff+n])
				}
				src += n
				dst += n
				remaining -= n
				k++
			}
		default:
			return nil, fmt.Errorf("compose: %w", ErrBadOp)
		}
	}
	out.Commands = merger.finish()
	return out, nil
}

// commandMerger accumulates commands in write order, merging adjacent adds
// and adjacent collinear copies so compositions do not fragment without
// bound.
type commandMerger struct {
	cmds []Command
}

func (m *commandMerger) last() *Command {
	if len(m.cmds) == 0 {
		return nil
	}
	return &m.cmds[len(m.cmds)-1]
}

func (m *commandMerger) add(to int64, data []byte) {
	if len(data) == 0 {
		return
	}
	if l := m.last(); l != nil && l.Op == OpAdd && l.To+l.Length == to {
		l.Data = append(l.Data, data...)
		l.Length = int64(len(l.Data))
		return
	}
	d := make([]byte, len(data))
	copy(d, data)
	m.cmds = append(m.cmds, NewAdd(to, d))
}

func (m *commandMerger) copy(from, to, length int64) {
	if length <= 0 {
		return
	}
	if l := m.last(); l != nil && l.Op == OpCopy &&
		l.To+l.Length == to && l.From+l.Length == from {
		l.Length += length
		return
	}
	m.cmds = append(m.cmds, NewCopy(from, to, length))
}

func (m *commandMerger) finish() []Command { return m.cmds }

// ComposeChain folds Compose over a sequence of deltas, producing a single
// delta from the first delta's reference to the last delta's version.
func ComposeChain(deltas ...*Delta) (*Delta, error) {
	if len(deltas) == 0 {
		return nil, fmt.Errorf("compose: empty chain")
	}
	acc := deltas[0]
	for _, d := range deltas[1:] {
		next, err := Compose(acc, d)
		if err != nil {
			return nil, err
		}
		acc = next
	}
	return acc, nil
}
