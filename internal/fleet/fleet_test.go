package fleet

import (
	"testing"

	"ipdelta/internal/corpus"
)

// testConfig builds a 3-release history and a mixed fleet.
func testConfig(t *testing.T) Config {
	t.Helper()
	base := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: 32 << 10, ChangeRate: 0, Seed: 21})
	releases := [][]byte{base.Ref}
	cur := base.Ref
	for k := 1; k < 3; k++ {
		gen := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: len(cur), ChangeRate: 0.05, Seed: 21 + int64(k)})
		v := append([]byte(nil), cur...)
		splice := len(v) / 8
		at := k * 2 * splice % (len(v) - splice)
		copy(v[at:at+splice], gen.Version[:splice])
		releases = append(releases, v)
		cur = v
	}
	devices := []DeviceSpec{
		{Release: 0, CapacitySlack: 0.05}, // tight flash, old release
		{Release: 0, CapacitySlack: 1.50}, // roomy flash (can scratch-apply)
		{Release: 1, CapacitySlack: 0.05},
		{Release: 1, CapacitySlack: 0.05},
		{Release: 2, CapacitySlack: 0.05}, // already current
	}
	return Config{Releases: releases, Devices: devices, LinkBitsPerSecond: 256_000}
}

func TestModeString(t *testing.T) {
	if ModeFull.String() != "full-image" ||
		ModeDeltaScratch.String() != "delta-scratch" ||
		ModeDeltaInPlace.String() != "delta-in-place" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestSimulateModes(t *testing.T) {
	cfg := testConfig(t)
	full, err := Simulate(cfg, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := Simulate(cfg, ModeDeltaScratch)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := Simulate(cfg, ModeDeltaInPlace)
	if err != nil {
		t.Fatal(err)
	}

	if full.Updated != len(cfg.Devices) || scratch.Updated != len(cfg.Devices) || ip.Updated != len(cfg.Devices) {
		t.Fatal("not every device updated")
	}
	// The paper's story: in-place ships the fewest bytes; scratch deltas
	// help only devices with ~2x flash; full ships the most.
	if !(ip.BytesOnWire < scratch.BytesOnWire && scratch.BytesOnWire < full.BytesOnWire) {
		t.Fatalf("byte ordering wrong: inplace=%d scratch=%d full=%d",
			ip.BytesOnWire, scratch.BytesOnWire, full.BytesOnWire)
	}
	// Tight-flash devices forced fallbacks in scratch mode but not in-place.
	if scratch.Fallbacks == 0 {
		t.Fatal("expected scratch-mode fallbacks on tight-flash devices")
	}
	if ip.Fallbacks != 0 {
		t.Fatalf("in-place mode had %d fallbacks", ip.Fallbacks)
	}
	// Makespans follow bytes on the shared link.
	if !(ip.Makespan < scratch.Makespan && scratch.Makespan < full.Makespan) {
		t.Fatal("makespan ordering wrong")
	}
	if full.Fallbacks != 0 {
		t.Fatal("full mode cannot fall back")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(Config{}, ModeFull); err == nil {
		t.Fatal("empty release history accepted")
	}
	cfg := testConfig(t)
	cfg.Devices = []DeviceSpec{{Release: 9}}
	if _, err := Simulate(cfg, ModeFull); err == nil {
		t.Fatal("unknown release accepted")
	}
	cfg = testConfig(t)
	if _, err := Simulate(cfg, Mode(9)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestSimulateUpToDateDeviceCostsLittleInPlace(t *testing.T) {
	cfg := testConfig(t)
	cfg.Devices = []DeviceSpec{{Release: 2, CapacitySlack: 0.01}} // current
	ip, err := Simulate(cfg, ModeDeltaInPlace)
	if err != nil {
		t.Fatal(err)
	}
	// Identity delta is nearly free compared with the image size.
	if ip.BytesOnWire > int64(len(cfg.Releases[2]))/10 {
		t.Fatalf("identity update cost %d bytes", ip.BytesOnWire)
	}
}
