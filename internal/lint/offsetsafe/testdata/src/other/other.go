// Test package outside the analyzer's package scope: the same narrowing
// conversion that is flagged in codec must pass silently here, because
// offsets only live in the offset-bearing packages.
package other

func parseCount(v uint64) int {
	return int(v)
}

func boundAdd(a, b, limit int64) bool {
	return a+b > limit
}
