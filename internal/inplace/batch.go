package inplace

import (
	"fmt"
	"runtime"
	"sync"

	"ipdelta/internal/delta"
)

// Job is one conversion request for ConvertBatch.
type Job struct {
	// Delta is the input delta file.
	Delta *delta.Delta
	// Ref is the reference version the delta applies to.
	Ref []byte
}

// Result is the outcome of one batch job, in input order.
type Result struct {
	Delta *delta.Delta
	Stats *Stats
	Err   error
}

// ConvertBatch converts many deltas concurrently with a bounded worker
// pool — the shape an update server uses to prewarm its per-release delta
// cache. workers <= 0 selects GOMAXPROCS. Results are returned in input
// order; a failed job carries its error and does not abort the others.
//
// Conversion is CPU-bound and jobs are independent, so the speedup is
// near-linear until memory bandwidth saturates.
func ConvertBatch(jobs []Job, workers int, opts ...Option) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	// A single job (or a single worker) needs no pool: run inline on one
	// converter, with no channel, goroutine, or WaitGroup.
	if workers == 1 {
		cv := NewConverter(opts...)
		for k := range jobs {
			results[k] = runJob(cv, jobs[k], k)
		}
		return results
	}
	// The worker goroutines read these slices concurrently; copy both so a
	// caller reusing or appending to its slices after ConvertBatch returns
	// cannot race the pool (the aliascheck analyzer enforces this
	// convention for every exported slice parameter).
	jobs = append([]Job(nil), jobs...)
	opts = append([]Option(nil), opts...)

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One converter per worker: its scratch (partition, CSR digraph,
			// sort state) is reused across every job the worker drains.
			cv := NewConverter(opts...)
			for k := range work {
				results[k] = runJob(cv, jobs[k], k)
			}
		}()
	}
	for k := range jobs {
		work <- k
	}
	close(work)
	wg.Wait()
	return results
}

// runJob converts one batch job on the worker's converter. ConvertNew
// detaches the output, so results stay valid after the converter moves on
// to the next job.
func runJob(cv *Converter, job Job, k int) Result {
	if job.Delta == nil {
		return Result{Err: fmt.Errorf("inplace: job %d has a nil delta", k)}
	}
	out, st, err := cv.ConvertNew(job.Delta, job.Ref)
	return Result{Delta: out, Stats: st, Err: err}
}
