// Test package for the lockorder analyzer: a cross-package cycle against
// lockdep's exported edges, an intra-package cycle discovered through a
// callee's AcquiresFact, a reacquisition self-loop, and the negative
// idioms (sequential locking, fresh closure context, suppression).
package locks

import (
	"sync"

	"lockdep"
)

type Table struct {
	mu   sync.RWMutex
	rows int
}

var (
	regMu sync.Mutex
	mu2   sync.Mutex
	mu3   sync.Mutex
	n     int
)

// AB takes lockdep's mutexes in the opposite order from lockdep.BA; this
// package owns the MuA → MuB edge, so the cycle is reported here, at the
// acquisition that completes it.
func AB() {
	lockdep.MuA.Lock()
	defer lockdep.MuA.Unlock()
	lockdep.MuB.Lock() // want `acquiring lockdep.MuB while holding lockdep.MuA completes a lock-order cycle`
	defer lockdep.MuB.Unlock()
	n++
}

// Register holds regMu and calls a helper whose AcquiresFact says it
// takes Table.mu: the regMu → Table.mu edge comes from the call site.
func Register(t *Table) {
	regMu.Lock()
	defer regMu.Unlock()
	fill(t) // want `acquiring locks.Table.mu while holding locks.regMu completes a lock-order cycle`
}

func fill(t *Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows++
}

// Reload takes the locks in the opposite order directly, closing the
// intra-package cycle; its edge is reported at its own acquisition.
func (t *Table) Reload() {
	t.mu.Lock()
	defer t.mu.Unlock()
	regMu.Lock() // want `acquiring locks.regMu while holding locks.Table.mu completes a lock-order cycle`
	n++
	regMu.Unlock()
}

// Reacquire locks a mutex it already holds: a self-loop, deadlock with a
// plain Mutex.
func Reacquire() {
	mu2.Lock()
	defer mu2.Unlock()
	mu2.Lock() // want `locks.mu2 is acquired while already held`
	n++
}

// Sequential is the clean idiom: the direct unlock pops the held set, so
// no ordered pair is recorded.
func Sequential(t *Table) {
	regMu.Lock()
	n++
	regMu.Unlock()
	t.mu.RLock()
	_ = t.rows
	t.mu.RUnlock()
}

// ClosureContext defines a literal while holding mu2; the closure body
// runs at an unknown time, so the lock it takes records no edge from mu2.
func ClosureContext() func() {
	mu2.Lock()
	defer mu2.Unlock()
	f := func() {
		regMu.Lock()
		n++
		regMu.Unlock()
	}
	return f
}

// Suppressed reacquires under an analyzer-scoped ignore. It uses its own
// mutex: self-loop edges are deduplicated module-wide with the first
// position winning, so sharing mu2 with Reacquire would make this the
// reported site on some traversal orders.
func Suppressed() {
	mu3.Lock()
	defer mu3.Unlock()
	mu3.Lock() //ipvet:ignore lockorder -- recursive-lock shim, replaced in the next PR
	n++
}
