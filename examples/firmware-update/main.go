// Firmware update over a slow link: an update server distributes a new
// firmware image to a simulated flash-only device over TCP, as an in-place
// reconstructible delta. The demo throttles the link to modem speeds,
// injects a power cut mid-update, and shows the device resuming from its
// 16-byte progress record — the scenario that motivates the paper.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"ipdelta/internal/corpus"
	"ipdelta/internal/device"
	"ipdelta/internal/netupdate"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two firmware releases, 256KiB each, ~8% changed.
	pair := corpus.Generate(corpus.PairSpec{
		Profile:    corpus.Firmware,
		Size:       256 << 10,
		ChangeRate: 0.08,
		Seed:       2026,
	})
	fmt.Printf("firmware v1: %d bytes, v2: %d bytes\n", len(pair.Ref), len(pair.Version))

	srv, err := netupdate.NewServer([][]byte{pair.Ref, pair.Version})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go srv.Serve(l) //nolint:errcheck // returns on listener close

	// The device: flash sized for the bigger of the two images plus no
	// scratch at all, a 2KiB working buffer.
	capacity := int64(len(pair.Ref))
	if int64(len(pair.Version)) > capacity {
		capacity = int64(len(pair.Version))
	}
	flash, err := device.NewFlash(pair.Ref, capacity)
	if err != nil {
		return err
	}
	dev := device.New(flash, int64(len(pair.Ref)), 2048)

	// First attempt: power dies after 40 flash writes.
	flash.FailAfterWrites(40)
	start := time.Now()
	res, err := session(l.Addr().String(), dev, 256_000)
	if !errors.Is(err, device.ErrPowerCut) {
		return fmt.Errorf("expected a power cut, got %v", err)
	}
	fmt.Printf("power cut mid-update after %v (delta is %d bytes); progress preserved\n",
		time.Since(start).Round(time.Millisecond), res.DeltaBytes)

	// Power restored: reconnect, resume, finish.
	flash.FailAfterWrites(-1)
	start = time.Now()
	res, err = session(l.Addr().String(), dev, 256_000)
	if err != nil {
		return err
	}
	fmt.Printf("resumed and completed in %v (resumed=%v)\n",
		time.Since(start).Round(time.Millisecond), res.Resumed)

	if !bytes.Equal(dev.Image(), pair.Version) {
		return errors.New("device image does not match firmware v2")
	}
	io := flash.Stats()
	fmt.Printf("device now runs v2; flash I/O: %d reads (%d bytes), %d writes (%d bytes), NVRAM writes: %d\n",
		io.ReadOps, io.BytesRead, io.WriteOps, io.BytesWritten, dev.NVWrites())
	fmt.Printf("delta was %.1f%% of the full image — the transfer the paper saves\n",
		100*float64(res.DeltaBytes)/float64(len(pair.Version)))
	return nil
}

// session runs one update attempt over a throttled protocol-v2
// connection (one multiplexed stream carries the session).
func session(addr string, dev *device.Device, bitsPerSecond int64) (netupdate.Result, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return netupdate.Result{}, err
	}
	cc, err := netupdate.NewClientConn(netupdate.NewThrottledConn(conn, bitsPerSecond))
	if err != nil {
		conn.Close()
		return netupdate.Result{}, err
	}
	defer cc.Close()
	return cc.Update(context.Background(), dev)
}
