package inplace

import (
	"fmt"
	"runtime"
	"sync"

	"ipdelta/internal/delta"
)

// Job is one conversion request for ConvertBatch.
type Job struct {
	// Delta is the input delta file.
	Delta *delta.Delta
	// Ref is the reference version the delta applies to.
	Ref []byte
}

// Result is the outcome of one batch job, in input order.
type Result struct {
	Delta *delta.Delta
	Stats *Stats
	Err   error
}

// ConvertBatch converts many deltas concurrently with a bounded worker
// pool — the shape an update server uses to prewarm its per-release delta
// cache. workers <= 0 selects GOMAXPROCS. Results are returned in input
// order; a failed job carries its error and does not abort the others.
//
// Conversion is CPU-bound and jobs are independent, so the speedup is
// near-linear until memory bandwidth saturates.
func ConvertBatch(jobs []Job, workers int, opts ...Option) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	// The worker goroutines read these slices concurrently; copy both so a
	// caller reusing or appending to its slices after ConvertBatch returns
	// cannot race the pool (the aliascheck analyzer enforces this
	// convention for every exported slice parameter).
	jobs = append([]Job(nil), jobs...)
	opts = append([]Option(nil), opts...)

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range work {
				job := jobs[k]
				if job.Delta == nil {
					results[k] = Result{Err: fmt.Errorf("inplace: job %d has a nil delta", k)}
					continue
				}
				out, st, err := Convert(job.Delta, job.Ref, opts...)
				results[k] = Result{Delta: out, Stats: st, Err: err}
			}
		}()
	}
	for k := range jobs {
		work <- k
	}
	close(work)
	wg.Wait()
	return results
}
