// Package lockorder builds the module-wide mutex acquisition digraph and
// reports cycles — the static form of the deadlock the store and
// netupdate packages flirt with whenever two code paths take the same two
// locks in opposite orders.
//
// Every sync.Mutex/sync.RWMutex the module can name gets a stable string
// identity: "pkgpath.Type.field" for a mutex struct field,
// "pkgpath.var" for a package-level mutex variable (function-local
// mutexes are unshared and ignored). Within each function the analyzer
// tracks the lexically held set: Lock/RLock pushes (RLock is an
// acquisition for ordering purposes — reader/writer pairs deadlock just
// as well), a direct Unlock/RUnlock pops, and a deferred unlock does not
// (it runs at function exit, so the lock is held for the remainder of the
// body — exactly the dominant idiom here). Acquiring B while holding A
// records the edge A → B. Function literals get a fresh held context:
// a closure's body runs at an unknown time, not under the locks its
// encloser happens to hold at the definition site.
//
// The analysis is interprocedural: each function exports an AcquiresFact
// (the mutexes it may take, transitively, computed bottom-up over
// call-graph SCCs), so a call made while holding A contributes A → x for
// every x the callee may acquire, across package boundaries. Each package
// exports its edges as an EdgesFact; when a package is analyzed, its own
// edges are combined with every fact exported so far and any strongly
// connected component of the combined digraph is a potential deadlock. A
// cycle is reported in the package that contributes an edge to it, at
// that edge's acquisition site, exactly once per edge.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ipdelta/internal/graph"
	"ipdelta/internal/lint/analysis"
	"ipdelta/internal/lint/passes/callgraph"
)

// AcquiresFact lists the mutex identities a function may acquire,
// directly or through any static callee.
type AcquiresFact struct {
	IDs []string
}

// AFact marks AcquiresFact as a Fact.
func (*AcquiresFact) AFact() {}

// EdgesFact is a package's contribution to the global acquisition order:
// From was held when To was acquired.
type EdgesFact struct {
	Edges []LockEdge
}

// AFact marks EdgesFact as a Fact.
func (*EdgesFact) AFact() {}

// LockEdge is one ordered acquisition pair.
type LockEdge struct {
	From, To string
}

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "builds the cross-package mutex acquisition digraph and flags " +
		"cycles (potential deadlocks) at the acquisition site",
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*AcquiresFact)(nil), (*EdgesFact)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	// Phase 1: per-function acquire sets, bottom-up with an SCC fixpoint,
	// folding in callee sets (same-package summaries or imported facts).
	cg := pass.ResultOf[callgraph.Analyzer].(*callgraph.Result)
	acquires := map[*types.Func]map[string]bool{}
	for _, comp := range cg.BottomUp {
		for _, node := range comp {
			acquires[node.Obj] = localAcquires(pass, node.Decl)
		}
		for changed := true; changed; {
			changed = false
			for _, node := range comp {
				set := acquires[node.Obj]
				for _, call := range node.Static {
					for _, id := range calleeAcquires(pass, acquires, call.Callee) {
						if !set[id] {
							set[id] = true
							changed = true
						}
					}
				}
			}
		}
		for _, node := range comp {
			pass.ExportObjectFact(node.Obj, &AcquiresFact{IDs: sortedKeys(acquires[node.Obj])})
		}
	}

	// Phase 2: walk each function with held-set tracking, recording
	// ordered pairs. Positions are kept for this package's edges so a
	// cycle can be reported at a concrete acquisition site.
	edgePos := map[LockEdge]token.Pos{}
	for _, comp := range cg.BottomUp {
		for _, node := range comp {
			walkHeld(pass, acquires, node.Decl.Body, nil, edgePos)
		}
	}

	var ownEdges []LockEdge
	for e := range edgePos {
		ownEdges = append(ownEdges, e)
	}
	sort.Slice(ownEdges, func(i, j int) bool {
		if ownEdges[i].From != ownEdges[j].From {
			return ownEdges[i].From < ownEdges[j].From
		}
		return ownEdges[i].To < ownEdges[j].To
	})
	pass.ExportPackageFact(&EdgesFact{Edges: ownEdges})

	// Phase 3: combine with the edges of every package analyzed before
	// this one and look for strongly connected components.
	all := map[LockEdge]bool{}
	for _, e := range ownEdges {
		all[e] = true
	}
	for _, pf := range pass.AllPackageFacts() {
		if ef, ok := pf.Fact.(*EdgesFact); ok {
			for _, e := range ef.Edges {
				all[e] = true
			}
		}
	}
	reportCycles(pass, all, edgePos)
	return nil, nil
}

// reportCycles condenses the combined digraph with the repository's
// Tarjan SCC and reports, for each cyclic component, every edge this
// package contributed to it.
func reportCycles(pass *analysis.Pass, all map[LockEdge]bool, own map[LockEdge]token.Pos) {
	ids := map[string]int{}
	var names []string
	intern := func(s string) int {
		if i, ok := ids[s]; ok {
			return i
		}
		ids[s] = len(names)
		names = append(names, s)
		return len(names) - 1
	}
	var edges []LockEdge
	for e := range all {
		edges = append(edges, e)
		intern(e.From)
		intern(e.To)
	}
	g := graph.New(len(names))
	for _, e := range edges {
		g.AddEdge(ids[e.From], ids[e.To])
	}
	var scratch graph.SCCScratch
	verts, offs := scratch.Components(g)
	comp := make([]int, len(names))
	cyclic := make([]bool, len(offs)-1)
	for k := 0; k+1 < len(offs); k++ {
		members := verts[offs[k]:offs[k+1]]
		for _, v := range members {
			comp[v] = k
		}
		if len(members) > 1 {
			cyclic[k] = true
		}
	}
	// A self-loop (reacquiring a held mutex) is a cycle its singleton
	// component does not reveal; catch it from the edge list.
	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	for e, pos := range own {
		if e.From == e.To {
			findings = append(findings, finding{pos, fmt.Sprintf(
				"%s is acquired while already held; with sync.Mutex this deadlocks, with RWMutex it deadlocks under writer pressure", e.From)})
			continue
		}
		k := comp[ids[e.From]]
		if k == comp[ids[e.To]] && cyclic[k] {
			members := verts[offs[k]:offs[k+1]]
			cycle := make([]string, 0, len(members))
			for _, v := range members {
				cycle = append(cycle, names[v])
			}
			sort.Strings(cycle)
			findings = append(findings, finding{pos, fmt.Sprintf(
				"acquiring %s while holding %s completes a lock-order cycle among {%s}; some other path takes these locks in the opposite order",
				e.To, e.From, strings.Join(cycle, ", "))})
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// calleeAcquires resolves a callee's acquire set: same-package summary if
// available, imported fact otherwise. External functions without facts are
// assumed lock-free (the stdlib's internal locks are invisible and
// uninteresting to this ordering).
func calleeAcquires(pass *analysis.Pass, acquires map[*types.Func]map[string]bool, callee *types.Func) []string {
	if set, ok := acquires[callee]; ok {
		return sortedKeys(set)
	}
	var fact AcquiresFact
	if pass.ImportObjectFact(callee, &fact) {
		return fact.IDs
	}
	return nil
}

// localAcquires collects the mutex IDs locked anywhere in fd, including
// inside its function literals.
func localAcquires(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	set := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, kind := lockOp(pass, call); kind == opLock {
				set[id] = true
			}
		}
		return true
	})
	return set
}

type opKind int

const (
	opNone opKind = iota
	opLock
	opUnlock
)

// lockOp classifies call as a Lock/RLock or Unlock/RUnlock on a nameable
// mutex and returns the mutex identity.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (string, opKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var kind opKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	recv := ast.Unparen(sel.X)
	if !isMutexType(pass.TypeOf(recv)) {
		return "", opNone
	}
	id, ok := mutexID(pass, recv)
	if !ok {
		return "", opNone
	}
	return id, kind
}

// mutexID names the mutex denoted by e: "pkgpath.Type.field" for a field
// of a named struct, "pkgpath.var" for a package-level variable. Local
// mutex values are unshared and yield no identity.
func mutexID(pass *analysis.Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj, ok := pass.ObjectOf(e).(*types.Var)
		if !ok || obj.Pkg() == nil {
			return "", false
		}
		if obj.Parent() != obj.Pkg().Scope() {
			return "", false // function-local mutex
		}
		return obj.Pkg().Path() + "." + obj.Name(), true
	case *ast.SelectorExpr:
		field, ok := pass.ObjectOf(e.Sel).(*types.Var)
		if !ok || field.Pkg() == nil {
			return "", false
		}
		// pkg.Var: a package-qualified reference to another package's
		// package-level mutex, named the way its own package names it.
		if x, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := pass.ObjectOf(x).(*types.PkgName); isPkg {
				return field.Pkg().Path() + "." + field.Name(), true
			}
		}
		if !field.IsField() {
			return "", false
		}
		// Prefer the named type of the immediate receiver expression; it
		// is the struct the reader sees in the source.
		if t := pass.TypeOf(e.X); t != nil {
			if named := namedOf(t); named != nil {
				return field.Pkg().Path() + "." + named.Obj().Name() + "." + field.Name(), true
			}
		}
		return field.Pkg().Path() + "." + field.Name(), true
	}
	return "", false
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func isMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// walkHeld traverses body in source order maintaining the held set and
// recording acquisition edges into edgePos (first position wins). held is
// the caller's held list; function literals restart from empty.
func walkHeld(pass *analysis.Pass, acquires map[*types.Func]map[string]bool,
	body ast.Node, held []string, edgePos map[LockEdge]token.Pos) {

	record := func(from, to string, pos token.Pos) {
		e := LockEdge{From: from, To: to}
		if _, ok := edgePos[e]; !ok {
			edgePos[e] = pos
		}
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.FuncLit:
				saved := held
				held = nil
				walk(s.Body)
				held = saved
				return false
			case *ast.DeferStmt:
				// A deferred unlock releases at function exit; the lock
				// stays held for the lexical remainder. A deferred Lock
				// (rare, pathological) still counts as an acquisition.
				if id, kind := lockOp(pass, s.Call); kind == opUnlock {
					_ = id
					return false
				}
				return true
			case *ast.CallExpr:
				if id, kind := lockOp(pass, s); kind != opNone {
					switch kind {
					case opLock:
						for _, h := range held {
							record(h, id, s.Pos())
						}
						held = append(held, id)
					case opUnlock:
						for i := len(held) - 1; i >= 0; i-- {
							if held[i] == id {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					}
					return true
				}
				// Static call while holding locks: the callee may acquire
				// everything in its summary.
				if callee := staticCallee(pass, s); callee != nil && len(held) > 0 {
					for _, id := range calleeAcquires(pass, acquires, callee) {
						for _, h := range held {
							record(h, id, s.Pos())
						}
					}
				}
			}
			return true
		})
	}
	walk(body)
}

// staticCallee resolves the called *types.Func of a direct call, or nil
// for dynamic calls, builtins, and conversions.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.ObjectOf(fun).(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return f
	}
	return nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
