package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRange(t *testing.T) {
	tests := []struct {
		name        string
		off, length int64
		want        Interval
		empty       bool
	}{
		{name: "simple", off: 10, length: 5, want: Interval{10, 14}},
		{name: "single byte", off: 0, length: 1, want: Interval{0, 0}},
		{name: "zero length is empty", off: 7, length: 0, empty: true},
		{name: "negative length is empty", off: 7, length: -3, empty: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FromRange(tt.off, tt.length)
			if got.Empty() != tt.empty {
				t.Fatalf("Empty() = %v, want %v", got.Empty(), tt.empty)
			}
			if !tt.empty && got != tt.want {
				t.Fatalf("FromRange(%d, %d) = %v, want %v", tt.off, tt.length, got, tt.want)
			}
		})
	}
}

func TestLen(t *testing.T) {
	tests := []struct {
		iv   Interval
		want int64
	}{
		{Interval{0, 0}, 1},
		{Interval{5, 9}, 5},
		{Interval{9, 5}, 0},
		{Interval{-3, 3}, 7},
	}
	for _, tt := range tests {
		if got := tt.iv.Len(); got != tt.want {
			t.Errorf("%v.Len() = %d, want %d", tt.iv, got, tt.want)
		}
	}
}

func TestOverlaps(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"disjoint", Interval{0, 4}, Interval{6, 9}, false},
		{"adjacent do not overlap", Interval{0, 4}, Interval{5, 9}, false},
		{"single shared offset", Interval{0, 5}, Interval{5, 9}, true},
		{"nested", Interval{0, 10}, Interval{3, 4}, true},
		{"identical", Interval{2, 7}, Interval{2, 7}, true},
		{"empty never overlaps", Interval{5, 4}, Interval{0, 100}, false},
		{"both empty", Interval{5, 4}, Interval{9, 8}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlaps(tt.b); got != tt.want {
				t.Fatalf("%v.Overlaps(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Overlaps(tt.a); got != tt.want {
				t.Fatalf("overlap not symmetric: %v vs %v", tt.a, tt.b)
			}
		})
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		a, b, want Interval
	}{
		{Interval{0, 10}, Interval{5, 15}, Interval{5, 10}},
		{Interval{0, 10}, Interval{3, 4}, Interval{3, 4}},
		{Interval{0, 4}, Interval{6, 9}, Interval{6, 4}}, // empty
	}
	for _, tt := range tests {
		got := tt.a.Intersect(tt.b)
		if tt.want.Empty() {
			if !got.Empty() {
				t.Errorf("%v.Intersect(%v) = %v, want empty", tt.a, tt.b, got)
			}
			continue
		}
		if got != tt.want {
			t.Errorf("%v.Intersect(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestUnionAndAdjacent(t *testing.T) {
	if got := (Interval{0, 4}).Union(Interval{10, 14}); got != (Interval{0, 14}) {
		t.Errorf("Union spanning gap = %v, want [0, 14]", got)
	}
	if got := (Interval{5, 4}).Union(Interval{1, 2}); got != (Interval{1, 2}) {
		t.Errorf("Union with empty lhs = %v, want [1, 2]", got)
	}
	if got := (Interval{1, 2}).Union(Interval{9, 8}); got != (Interval{1, 2}) {
		t.Errorf("Union with empty rhs = %v, want [1, 2]", got)
	}
	if !(Interval{0, 4}).Adjacent(Interval{5, 9}) {
		t.Error("expected [0,4] adjacent to [5,9]")
	}
	if (Interval{0, 4}).Adjacent(Interval{6, 9}) {
		t.Error("did not expect [0,4] adjacent to [6,9]")
	}
	if (Interval{0, 4}).Adjacent(Interval{4, 9}) {
		t.Error("overlapping intervals are not adjacent")
	}
}

func TestContains(t *testing.T) {
	iv := Interval{3, 8}
	for _, p := range []int64{3, 5, 8} {
		if !iv.Contains(p) {
			t.Errorf("%v should contain %d", iv, p)
		}
	}
	for _, p := range []int64{2, 9, -1} {
		if iv.Contains(p) {
			t.Errorf("%v should not contain %d", iv, p)
		}
	}
	if !iv.ContainsInterval(Interval{4, 7}) || !iv.ContainsInterval(Interval{3, 8}) {
		t.Error("ContainsInterval failed on nested intervals")
	}
	if iv.ContainsInterval(Interval{2, 5}) {
		t.Error("ContainsInterval accepted a partially outside interval")
	}
	if !iv.ContainsInterval(Interval{9, 8}) {
		t.Error("every interval contains the empty interval")
	}
}

func TestString(t *testing.T) {
	if got := (Interval{3, 8}).String(); got != "[3, 8]" {
		t.Errorf("String() = %q", got)
	}
	if got := (Interval{8, 3}).String(); got != "[empty]" {
		t.Errorf("String() = %q", got)
	}
}

func TestSetAddMerges(t *testing.T) {
	tests := []struct {
		name string
		add  []Interval
		want []Interval
	}{
		{
			name: "disjoint stay separate",
			add:  []Interval{{0, 4}, {10, 14}},
			want: []Interval{{0, 4}, {10, 14}},
		},
		{
			name: "adjacent merge",
			add:  []Interval{{0, 4}, {5, 9}},
			want: []Interval{{0, 9}},
		},
		{
			name: "overlap merge",
			add:  []Interval{{0, 6}, {4, 9}},
			want: []Interval{{0, 9}},
		},
		{
			name: "bridge merges three",
			add:  []Interval{{0, 4}, {10, 14}, {5, 9}},
			want: []Interval{{0, 14}},
		},
		{
			name: "insert before all",
			add:  []Interval{{10, 14}, {0, 2}},
			want: []Interval{{0, 2}, {10, 14}},
		},
		{
			name: "contained is absorbed",
			add:  []Interval{{0, 20}, {5, 9}},
			want: []Interval{{0, 20}},
		},
		{
			name: "empty ignored",
			add:  []Interval{{5, 4}},
			want: nil,
		},
		{
			name: "superset swallows several",
			add:  []Interval{{2, 3}, {6, 7}, {12, 13}, {0, 20}},
			want: []Interval{{0, 20}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSet(tt.add...)
			got := s.Intervals()
			if len(got) != len(tt.want) {
				t.Fatalf("Intervals() = %v, want %v", got, tt.want)
			}
			for k := range got {
				if got[k] != tt.want[k] {
					t.Fatalf("Intervals() = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestSetQueries(t *testing.T) {
	s := NewSet(Interval{0, 4}, Interval{10, 14})
	if !s.Overlaps(Interval{4, 10}) {
		t.Error("expected overlap with [4,10]")
	}
	if s.Overlaps(Interval{5, 9}) {
		t.Error("did not expect overlap with gap [5,9]")
	}
	if s.Overlaps(Interval{20, 19}) {
		t.Error("empty interval should not overlap")
	}
	if !s.Contains(0) || !s.Contains(14) || s.Contains(5) || s.Contains(15) {
		t.Error("Contains gave wrong answers at boundaries")
	}
	if !s.ContainsInterval(Interval{11, 13}) {
		t.Error("expected set to contain [11,13]")
	}
	if s.ContainsInterval(Interval{3, 11}) {
		t.Error("set should not contain interval spanning the gap")
	}
	if s.Total() != 10 {
		t.Errorf("Total() = %d, want 10", s.Total())
	}
}

func TestSetString(t *testing.T) {
	if got := NewSet().String(); got != "{}" {
		t.Errorf("empty set String() = %q", got)
	}
	s := NewSet(Interval{0, 1}, Interval{5, 6})
	if got := s.String(); got != "[0, 1] ∪ [5, 6]" {
		t.Errorf("String() = %q", got)
	}
}

// TestSetQuickAgainstBitmap cross-checks the Set implementation against a
// naive bitmap model over a small universe.
func TestSetQuickAgainstBitmap(t *testing.T) {
	const universe = 256
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet()
		model := make([]bool, universe)
		for k := 0; k < int(n%40)+1; k++ {
			lo := rng.Int63n(universe)
			length := rng.Int63n(20)
			iv := FromRange(lo, length)
			if iv.Hi >= universe {
				iv.Hi = universe - 1
			}
			s.Add(iv)
			for p := iv.Lo; p <= iv.Hi; p++ {
				model[p] = true
			}
		}
		// Compare membership point by point.
		for p := int64(0); p < universe; p++ {
			if s.Contains(p) != model[p] {
				return false
			}
		}
		// Compare totals.
		var total int64
		for _, b := range model {
			if b {
				total++
			}
		}
		if s.Total() != total {
			return false
		}
		// Verify invariant: sorted, disjoint, non-adjacent.
		ivs := s.Intervals()
		for k := 1; k < len(ivs); k++ {
			if ivs[k-1].Hi+1 >= ivs[k].Lo {
				return false
			}
		}
		// Random overlap queries against the model.
		for k := 0; k < 32; k++ {
			lo := rng.Int63n(universe)
			iv := FromRange(lo, rng.Int63n(12))
			want := false
			for p := iv.Lo; p <= iv.Hi && p < universe; p++ {
				if p >= 0 && model[p] {
					want = true
					break
				}
			}
			if iv.Hi >= universe {
				iv.Hi = universe - 1
			}
			if s.Overlaps(iv) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalQuickAlgebra checks algebraic properties of the primitive
// interval operations on random inputs.
func TestIntervalQuickAlgebra(t *testing.T) {
	gen := func(seed int64) (Interval, Interval) {
		rng := rand.New(rand.NewSource(seed))
		a := FromRange(rng.Int63n(1000), rng.Int63n(50))
		b := FromRange(rng.Int63n(1000), rng.Int63n(50))
		return a, b
	}
	f := func(seed int64) bool {
		a, b := gen(seed)
		// Overlap is symmetric and agrees with a non-empty intersection.
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		if a.Overlaps(b) != !a.Intersect(b).Empty() {
			return false
		}
		// Intersection is contained in both operands.
		in := a.Intersect(b)
		if !in.Empty() && (!a.ContainsInterval(in) || !b.ContainsInterval(in)) {
			return false
		}
		// Union contains both operands.
		u := a.Union(b)
		if !u.ContainsInterval(a) || !u.ContainsInterval(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
