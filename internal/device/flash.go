// Package device simulates the limited network-attached devices the paper
// targets: machines whose only storage is the region holding the current
// software image, with no room for a second copy.
//
// Flash models that storage: a fixed-capacity byte array with read/write
// accounting and optional power-cut injection. Device layers a streaming,
// resumable in-place patcher on top, using a small bounded working buffer
// and an 16-byte simulated NVRAM word for progress — never scratch space
// proportional to the file size.
package device

import (
	"errors"
	"fmt"
)

// Errors reported by the flash simulation.
var (
	// ErrPowerCut is returned when an injected power failure interrupts a
	// write; the flash contents reflect everything written so far.
	ErrPowerCut = errors.New("device: power cut during write")
	// ErrOutOfBounds is returned for accesses beyond the flash capacity.
	ErrOutOfBounds = errors.New("device: access outside flash capacity")
)

// Flash is a fixed-capacity storage region.
type Flash struct {
	data []byte

	// accounting
	readOps      int64
	writeOps     int64
	bytesRead    int64
	bytesWritten int64

	// failure injection: when >= 0, the write op that would make the
	// counter negative fails with ErrPowerCut instead.
	writesUntilFailure int64
}

// NewFlash returns a flash of the given capacity holding image in its
// first bytes. The image must fit.
func NewFlash(image []byte, capacity int64) (*Flash, error) {
	if int64(len(image)) > capacity {
		return nil, fmt.Errorf("%w: image %d bytes, capacity %d", ErrOutOfBounds, len(image), capacity)
	}
	f := &Flash{data: make([]byte, capacity), writesUntilFailure: -1}
	copy(f.data, image)
	return f, nil
}

// Capacity returns the flash size in bytes.
func (f *Flash) Capacity() int64 { return int64(len(f.data)) }

// ReadAt copies flash contents at off into p.
func (f *Flash) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(f.data)) {
		return fmt.Errorf("%w: read [%d,%d)", ErrOutOfBounds, off, off+int64(len(p)))
	}
	copy(p, f.data[off:])
	f.readOps++
	f.bytesRead += int64(len(p))
	return nil
}

// WriteAt stores p at off. With failure injection armed, the fatal write
// fails atomically (nothing is written) and returns ErrPowerCut.
func (f *Flash) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(f.data)) {
		return fmt.Errorf("%w: write [%d,%d)", ErrOutOfBounds, off, off+int64(len(p)))
	}
	if f.writesUntilFailure == 0 {
		return ErrPowerCut
	}
	if f.writesUntilFailure > 0 {
		f.writesUntilFailure--
	}
	copy(f.data[off:], p)
	f.writeOps++
	f.bytesWritten += int64(len(p))
	return nil
}

// FailAfterWrites arms power-cut injection: the (n+1)-th write from now
// fails. A negative n disarms injection.
func (f *Flash) FailAfterWrites(n int64) { f.writesUntilFailure = n }

// Image returns a copy of the first n bytes of the flash.
func (f *Flash) Image(n int64) []byte {
	out := make([]byte, n)
	copy(out, f.data[:n])
	return out
}

// IOStats summarizes flash traffic.
type IOStats struct {
	ReadOps      int64
	WriteOps     int64
	BytesRead    int64
	BytesWritten int64
}

// Stats returns the accumulated I/O counters.
func (f *Flash) Stats() IOStats {
	return IOStats{
		ReadOps:      f.readOps,
		WriteOps:     f.writeOps,
		BytesRead:    f.bytesRead,
		BytesWritten: f.bytesWritten,
	}
}
