package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ipdelta/internal/archive"
	"ipdelta/internal/stats"
	"ipdelta/internal/store"
)

// archiveManifest is the on-disk description of an archived store: the
// striping parameters plus the archive's own stripe metadata. It lives as
// MANIFEST.json at the root of the archive directory, next to one
// nodeNN/ directory per shard index.
type archiveManifest struct {
	SegmentSize  int               `json:"segment_size"`
	ArchivedUpTo int               `json:"archived_up_to"`
	Archive      *archive.Manifest `json:"archive"`
}

const manifestName = "MANIFEST.json"

// nodeDir names the directory holding node i's shards.
func nodeDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("node%02d", i))
}

// shardFile names one shard inside a node directory.
func shardFile(id archive.ShardID) string {
	return fmt.Sprintf("s%08d-i%02d.shard", id.Stripe, id.Index)
}

// saveNodes persists every live node's shards under dir/nodeNN/.
func saveNodes(dir string, nodes []*archive.Node) error {
	for i, n := range nodes {
		if n.Down() {
			continue
		}
		nd := nodeDir(dir, i)
		if err := os.MkdirAll(nd, 0o755); err != nil {
			return err
		}
		for _, id := range n.ShardIDs() {
			b, err := n.Get(id)
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(nd, shardFile(id)), b, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadArchiveDir reopens an archive directory: the manifest plus one node
// per shard index. A missing node directory loads as an empty node — its
// shards scrub as missing, reads degrade to k-of-n, and -repair rebuilds
// the directory from the survivors.
func loadArchiveDir(dir string) (*archiveManifest, *archive.Archive, []*archive.Node, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, nil, err
	}
	var man archiveManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, nil, nil, fmt.Errorf("archive manifest: %w", err)
	}
	if man.Archive == nil || man.SegmentSize <= 0 {
		return nil, nil, nil, errors.New("archive manifest: missing striping parameters")
	}
	n := man.Archive.DataShards + man.Archive.ParityShards
	if n <= 0 || n > 128 {
		return nil, nil, nil, errors.New("archive manifest: bad shard counts")
	}
	nodes := make([]*archive.Node, n)
	for i := range nodes {
		nodes[i] = archive.NewNode(i)
		nd := nodeDir(dir, i)
		entries, err := os.ReadDir(nd)
		if err != nil {
			// A lost node directory is an empty-but-replaceable node: its
			// shards read as missing, and -repair rebuilds the directory.
			continue
		}
		for _, e := range entries {
			var stripeID uint64
			var idx int
			if _, err := fmt.Sscanf(e.Name(), "s%08d-i%02d.shard", &stripeID, &idx); err != nil || idx != i {
				continue // foreign file; the shard stays missing
			}
			b, err := os.ReadFile(filepath.Join(nd, e.Name()))
			if err != nil {
				continue
			}
			if err := nodes[i].Put(archive.ShardID{Stripe: stripeID, Index: idx}, b); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	a, err := archive.Open(nodes, man.Archive)
	if err != nil {
		return nil, nil, nil, err
	}
	return &man, a, nodes, nil
}

// cmdArchive stripes a store's cold history across erasure-coded node
// directories and writes the manifest that scrub/restore need.
func cmdArchive(args []string) error {
	fs := flag.NewFlagSet("archive", flag.ContinueOnError)
	storePath := fs.String("store", "", "store file")
	dir := fs.String("dir", "", "archive directory to create")
	upTo := fs.Int("up-to", -1, "archive versions [0..N] (default: all)")
	data := fs.Int("data", 4, "data shards (k)")
	parity := fs.Int("parity", 2, "parity shards (m)")
	segment := fs.Int("segment", store.DefaultArchiveSegment, "versions per archived segment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" || *dir == "" {
		return errors.New("archive: -store and -dir are required")
	}
	a, nodes, err := archive.NewWithNodes(*data, *parity)
	if err != nil {
		return err
	}
	s, err := loadStore(*storePath, store.WithArchive(a), store.WithArchiveSegment(*segment))
	if err != nil {
		return err
	}
	target := *upTo
	if target < 0 {
		target = s.NumVersions() - 1
	}
	archived, err := s.Archive(target)
	if err != nil {
		return err
	}
	if archived < 0 {
		return fmt.Errorf("archive: nothing to archive below version %d (segment size %d)", target, *segment)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	if err := saveNodes(*dir, nodes); err != nil {
		return err
	}
	man := archiveManifest{
		SegmentSize:  *segment,
		ArchivedUpTo: archived,
		Archive:      a.Manifest(),
	}
	raw, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, manifestName), raw, 0o644); err != nil {
		return err
	}
	var shardBytes int64
	for _, n := range nodes {
		for _, id := range n.ShardIDs() {
			b, err := n.Get(id)
			if err != nil {
				return err
			}
			shardBytes += int64(len(b))
		}
	}
	fmt.Printf("archived versions 0..%d into %s: %d stripes over %d nodes (k=%d m=%d), %s of shards\n",
		archived, *dir, len(a.Stripes()), len(nodes), *data, *parity, stats.Bytes(shardBytes))
	return nil
}

// cmdScrub verifies an archive directory shard-by-shard and optionally
// repairs it in place and re-verifies every archived version.
func cmdScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ContinueOnError)
	dir := fs.String("dir", "", "archive directory")
	repair := fs.Bool("repair", false, "rebuild bad shards and rewrite node directories")
	verify := fs.Bool("verify", false, "reconstruct every archived version and check identities")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("scrub: -dir is required")
	}
	man, a, nodes, err := loadArchiveDir(*dir)
	if err != nil {
		return err
	}
	rep := a.Scrub()
	fmt.Println(rep)
	if *repair {
		rr := a.Repair()
		fmt.Println(rr)
		if err := saveNodes(*dir, nodes); err != nil {
			return err
		}
		if post := a.Scrub(); !post.Clean() {
			return fmt.Errorf("scrub: still dirty after repair: %s", post)
		}
	}
	if *verify {
		versions := 0
		for _, id := range a.Stripes() {
			blob, err := a.Get(id)
			if err != nil {
				return fmt.Errorf("scrub: stripe %d: %w", id, err)
			}
			seg, err := store.DecodeArchiveSegment(blob)
			if err != nil {
				return fmt.Errorf("scrub: stripe %d: %w", id, err)
			}
			for v := seg.Lo; v <= seg.Hi; v++ {
				if _, err := seg.Version(v); err != nil {
					return fmt.Errorf("scrub: version %d: %w", v, err)
				}
				versions++
			}
		}
		fmt.Printf("verified %d archived versions (up to v%d)\n", versions, man.ArchivedUpTo)
	}
	if !*repair && !rep.Clean() {
		return fmt.Errorf("scrub: %d bad shards (run with -repair)", rep.Missing+rep.Corrupt)
	}
	if rep.Unrecoverable > 0 {
		return fmt.Errorf("scrub: %d stripes unrecoverable", rep.Unrecoverable)
	}
	return nil
}

// cmdRestore reconstructs one archived version purely from the shards in
// an archive directory — degraded k-of-n reads included — without needing
// the original store file.
func cmdRestore(args []string) error {
	fs := flag.NewFlagSet("restore", flag.ContinueOnError)
	dir := fs.String("dir", "", "archive directory")
	index := fs.Int("index", -1, "version index to restore")
	outPath := fs.String("out", "", "output image file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *index < 0 || *outPath == "" {
		return errors.New("restore: -dir, -index and -out are required")
	}
	man, a, _, err := loadArchiveDir(*dir)
	if err != nil {
		return err
	}
	if *index > man.ArchivedUpTo {
		return fmt.Errorf("restore: version %d beyond archived history (up to %d)", *index, man.ArchivedUpTo)
	}
	blob, err := a.Get(uint64(*index / man.SegmentSize))
	if err != nil {
		return err
	}
	seg, err := store.DecodeArchiveSegment(blob)
	if err != nil {
		return err
	}
	img, err := seg.Version(*index)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, img, 0o644); err != nil {
		return err
	}
	fmt.Printf("restored version %d to %s (%s, %d reverse deltas)\n",
		*index, *outPath, stats.Bytes(int64(len(img))), seg.Replays(*index))
	return nil
}
