// Quickstart: compute a delta between two versions of a file, convert it
// for in-place reconstruction, and rebuild the new version in the buffer
// holding the old one — the core loop of the library in ~60 lines.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ipdelta"
)

func main() {
	oldVersion := []byte(
		"config_version=1\n" +
			"server=updates.example.com\n" +
			"retry_limit=3\n" +
			"features=alpha,beta\n" +
			"checksum_mode=crc32\n")
	newVersion := []byte(
		"config_version=2\n" +
			"features=alpha,beta,gamma\n" +
			"server=updates.example.com\n" +
			"retry_limit=5\n" +
			"checksum_mode=crc32\n")

	// 1. Compute a delta: copies reuse old bytes, adds carry new ones.
	d, err := ipdelta.Diff(oldVersion, newVersion)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta: %d commands (%d copies, %d adds, %d literal bytes)\n",
		len(d.Commands), d.NumCopies(), d.NumAdds(), d.AddedBytes())

	// As computed, the delta may read regions it has already overwritten
	// when applied in place — that's the problem the paper solves.
	if err := d.CheckInPlace(); err != nil {
		fmt.Println("raw delta is NOT in-place safe:", err)
	} else {
		fmt.Println("raw delta happens to be in-place safe")
	}

	// 2. Convert: permute copies by topological order of the conflict
	// digraph, break cycles by turning copies into adds.
	ip, st, err := ipdelta.ConvertInPlace(d, oldVersion)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted: %d conflict edges, %d cycles broken, %d copies re-encoded as adds\n",
		st.Edges, st.CyclesBroken, st.ConvertedCopies)

	// 3. Apply in place: one buffer, no scratch space.
	buf := make([]byte, ip.InPlaceBufLen())
	copy(buf, oldVersion)
	if err := ipdelta.PatchInPlace(buf, ip); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(buf[:ip.VersionLen], newVersion) {
		log.Fatal("reconstruction mismatch")
	}
	fmt.Println("in-place reconstruction: OK")

	// 4. The wire: encode compactly, decode anywhere.
	var wire bytes.Buffer
	n, err := ipdelta.Encode(&wire, ip, ipdelta.FormatCompact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded delta: %d bytes (new version is %d bytes)\n", n, len(newVersion))
}
