package archive

import (
	"errors"
	"fmt"
)

// Coder errors.
var (
	// ErrShardCount reports an invalid (data, parity) configuration or a
	// shard slice of the wrong arity.
	ErrShardCount = errors.New("archive: invalid shard count")
	// ErrShardSize reports shards of unequal length.
	ErrShardSize = errors.New("archive: shards differ in size")
	// ErrTooFewShards reports that fewer than k shards survive, so the
	// stripe is unrecoverable.
	ErrTooFewShards = errors.New("archive: too few shards to reconstruct")
)

// maxShards bounds k+m: the Cauchy construction below needs 2·n distinct
// field elements, and shard indices are bytes on the wire.
const maxShards = 128

// Coder is a systematic Reed–Solomon erasure coder over GF(2^8): Encode
// turns k equal-length data shards into k+m shards (the first k are the
// data verbatim), and Reconstruct rebuilds any missing shards from any k
// survivors. A Coder is immutable after NewCoder and safe for concurrent
// use.
//
// The generator is the extended Cauchy matrix [I; C] with
// C[i][j] = 1/(x_i ⊕ y_j), x_i = k+i, y_j = j. Every k×k submatrix of an
// extended Cauchy matrix is invertible, which is exactly the MDS property
// the k-of-n guarantee needs (and which the property tests in rs_test.go
// verify exhaustively for the supported grid).
type Coder struct {
	k, m   int
	matrix [][]byte // (k+m)×k; rows 0..k-1 are the identity
}

// NewCoder builds a coder for k data and m parity shards.
func NewCoder(dataShards, parityShards int) (*Coder, error) {
	k, m := dataShards, parityShards
	if k < 1 || m < 0 || k+m > maxShards {
		return nil, fmt.Errorf("%w: data=%d parity=%d", ErrShardCount, k, m)
	}
	matrix := make([][]byte, k+m)
	for i := range matrix {
		row := make([]byte, k)
		if i < k {
			row[i] = 1
		} else {
			for j := 0; j < k; j++ {
				row[j] = gfInv(byte(i) ^ byte(j))
			}
		}
		matrix[i] = row
	}
	return &Coder{k: k, m: m, matrix: matrix}, nil
}

// DataShards returns k.
func (c *Coder) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Coder) ParityShards() int { return c.m }

// TotalShards returns n = k+m.
func (c *Coder) TotalShards() int { return c.k + c.m }

// checkShards validates that present shards share one size, which it
// returns. needAll additionally rejects nil shards.
func (c *Coder) checkShards(shards [][]byte, needAll bool) (int, error) {
	size := -1
	for i, s := range shards {
		if s == nil {
			if needAll {
				return 0, fmt.Errorf("%w: shard %d missing", ErrShardCount, i)
			}
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: shard %d is %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
	}
	if size == -1 {
		return 0, fmt.Errorf("%w: all %d shards missing", ErrTooFewShards, len(shards))
	}
	return size, nil
}

// Encode fills the m parity shards from the k data shards. shards must
// have k+m entries; the first k must be equal-length data, and the last m
// are overwritten (allocated if nil or mis-sized).
func (c *Coder) Encode(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.k+c.m)
	}
	size, err := c.checkShards(shards[:c.k], true)
	if err != nil {
		return err
	}
	for i := c.k; i < c.k+c.m; i++ {
		if len(shards[i]) != size {
			shards[i] = make([]byte, size)
		} else {
			clear(shards[i])
		}
		row := c.matrix[i]
		for j := 0; j < c.k; j++ {
			mulAddRow(shards[i], shards[j], row[j])
		}
	}
	return nil
}

// Reconstruct rebuilds every nil shard in place from any k present
// shards. Present shards are trusted (callers verify CRCs first and nil
// out corrupt entries). Returns ErrTooFewShards when fewer than k
// survive.
func (c *Coder) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, false)
}

// ReconstructData rebuilds only the missing data shards (enough to read a
// stripe) without re-encoding missing parity.
func (c *Coder) ReconstructData(shards [][]byte) error {
	return c.reconstruct(shards, true)
}

func (c *Coder) reconstruct(shards [][]byte, dataOnly bool) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.k+c.m)
	}
	size, err := c.checkShards(shards, false)
	if err != nil {
		return err
	}
	present := 0
	for _, s := range shards {
		if s != nil {
			present++
		}
	}
	if present == len(shards) {
		return nil
	}
	if present < c.k {
		return fmt.Errorf("%w: %d of %d present, need %d", ErrTooFewShards, present, len(shards), c.k)
	}

	// Take the generator rows of k surviving shards and invert that k×k
	// system: decode[r] · survivors recovers data shard r.
	sub := make([][]byte, 0, c.k)
	survivors := make([][]byte, 0, c.k)
	for i, s := range shards {
		if s != nil && len(sub) < c.k {
			sub = append(sub, c.matrix[i])
			survivors = append(survivors, s)
		}
	}
	decode, err := invertMatrix(sub)
	if err != nil {
		return err
	}
	data := make([][]byte, c.k)
	for r := 0; r < c.k; r++ {
		if shards[r] != nil {
			data[r] = shards[r]
			continue
		}
		out := make([]byte, size)
		for j, s := range survivors {
			mulAddRow(out, s, decode[r][j])
		}
		data[r] = out
		shards[r] = out
	}
	if dataOnly {
		return nil
	}
	for i := c.k; i < c.k+c.m; i++ {
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.matrix[i]
		for j := 0; j < c.k; j++ {
			mulAddRow(out, data[j], row[j])
		}
		shards[i] = out
	}
	return nil
}

// invertMatrix returns the inverse of a square matrix over GF(2^8) by
// Gauss–Jordan elimination on the augmented system. The extended Cauchy
// construction guarantees invertibility for every submatrix a Coder can
// pass here; the error path guards against misuse.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	// Augmented work matrix [m | I].
	work := make([][]byte, n)
	for i := range work {
		row := make([]byte, 2*n)
		copy(row, m[i])
		row[n+i] = 1
		work[i] = row
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, errors.New("archive: singular decode matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		if p := work[col][col]; p != 1 {
			inv := gfInv(p)
			for j := range work[col] {
				work[col][j] = gfMul(work[col][j], inv)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			mulAddRow(work[r], work[col], work[r][col])
		}
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = work[i][n:]
	}
	return out, nil
}
