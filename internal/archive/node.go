package archive

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
)

// Node-level errors. ErrNodeDown and ErrShardMissing are permanent until
// the node is revived or the shard rewritten; ErrNodeTransient models a
// flaky I/O path where retrying (or reading the peer shards) is the right
// response — the archive's degraded-read machinery treats all three as "a
// shard I cannot use right now".
var (
	ErrNodeDown      = errors.New("archive: node is down")
	ErrShardMissing  = errors.New("archive: shard missing")
	ErrNodeTransient = errors.New("archive: transient node I/O error")
)

// ShardID names one stored shard: shard Index of stripe Stripe.
type ShardID struct {
	Stripe uint64
	Index  int
}

// Node is one simulated storage target in the archive's stripe group,
// with fault injection in the FaultyStore/FlakyConn tradition: a node can
// crash (Kill/Revive), lose all state (Wipe — a replaced node comes back
// empty), silently rot stored bits (CorruptShard), truncate shards
// (TruncateShard), and fail operations transiently (FailEveryOps). All
// methods are goroutine-safe. Fault injection is driven by caller-seeded
// randomness so failing runs replay exactly.
type Node struct {
	id int

	mu     sync.Mutex
	shards map[ShardID][]byte
	down   bool

	opsUntilErr int64 // -1 disarmed
	rearmEvery  int64
}

// NewNode returns a healthy, empty node.
func NewNode(id int) *Node {
	return &Node{id: id, shards: make(map[ShardID][]byte), opsUntilErr: -1}
}

// ID returns the node's index in its stripe group.
func (n *Node) ID() int { return n.id }

// Put stores a shard (copying b). It fails when the node is down or a
// transient fault fires.
func (n *Node) Put(id ShardID, b []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.tickLocked(); err != nil {
		return err
	}
	n.shards[id] = append([]byte(nil), b...)
	return nil
}

// Get returns a copy of a stored shard.
func (n *Node) Get(id ShardID) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.tickLocked(); err != nil {
		return nil, err
	}
	b, ok := n.shards[id]
	if !ok {
		return nil, fmt.Errorf("%w: node %d %v", ErrShardMissing, n.id, id)
	}
	// A non-nil copy even for empty shards: callers use nil to mean
	// "shard unavailable".
	c := make([]byte, len(b))
	copy(c, b)
	return c, nil
}

// Delete removes a shard if present. Deleting on a down node is a no-op:
// the data is unreachable either way.
func (n *Node) Delete(id ShardID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.shards, id)
}

// Len reports how many shards the node holds (including while down).
func (n *Node) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.shards)
}

// ShardIDs returns the stored shard identities in deterministic order,
// for persistence and tests.
func (n *Node) ShardIDs() []ShardID {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]ShardID, 0, len(n.shards))
	for id := range n.shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].Stripe != ids[b].Stripe {
			return ids[a].Stripe < ids[b].Stripe
		}
		return ids[a].Index < ids[b].Index
	})
	return ids
}

// Kill takes the node down: every Put/Get fails with ErrNodeDown until
// Revive. Stored shards are retained (a crashed-but-intact node).
func (n *Node) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = true
}

// Revive brings a killed node back.
func (n *Node) Revive() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = false
}

// Down reports whether the node is currently killed.
func (n *Node) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// Wipe discards all stored shards — Kill+Wipe+Revive models replacing a
// failed node with fresh, empty hardware.
func (n *Node) Wipe() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.shards = make(map[ShardID][]byte)
}

// FailEveryOps arms recurring transient faults: every k-th operation
// (Put or Get) fails with ErrNodeTransient. k <= 0 disarms.
func (n *Node) FailEveryOps(k int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if k <= 0 {
		n.opsUntilErr = -1
		n.rearmEvery = 0
		return
	}
	n.opsUntilErr = k - 1
	n.rearmEvery = k
}

// CorruptShard flips one random bit of one random stored shard (silent
// bit-rot — the node itself never notices). Returns the affected shard
// and false when the node stores nothing corruptible.
func (n *Node) CorruptShard(rng *rand.Rand) (ShardID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id, ok := n.pickLocked(rng, func(b []byte) bool { return len(b) > 0 })
	if !ok {
		return ShardID{}, false
	}
	b := n.shards[id]
	b[rng.IntN(len(b))] ^= 1 << rng.IntN(8)
	return id, true
}

// TruncateShard cuts a random stored shard short by at least one byte,
// modelling a torn write. Returns false when nothing can be truncated.
func (n *Node) TruncateShard(rng *rand.Rand) (ShardID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id, ok := n.pickLocked(rng, func(b []byte) bool { return len(b) > 0 })
	if !ok {
		return ShardID{}, false
	}
	b := n.shards[id]
	n.shards[id] = b[:rng.IntN(len(b))]
	return id, true
}

// pickLocked chooses a uniformly random stored shard satisfying keep,
// deterministically given the rng: candidates are enumerated in sorted
// order so map iteration order cannot leak into the replayable fault
// sequence.
func (n *Node) pickLocked(rng *rand.Rand, keep func([]byte) bool) (ShardID, bool) {
	ids := make([]ShardID, 0, len(n.shards))
	for id, b := range n.shards {
		if keep(b) {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return ShardID{}, false
	}
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].Stripe != ids[b].Stripe {
			return ids[a].Stripe < ids[b].Stripe
		}
		return ids[a].Index < ids[b].Index
	})
	return ids[rng.IntN(len(ids))], true
}

// tickLocked advances the transient-fault counter and reports node state.
func (n *Node) tickLocked() error {
	if n.down {
		return fmt.Errorf("%w: node %d", ErrNodeDown, n.id)
	}
	if n.opsUntilErr < 0 {
		return nil
	}
	if n.opsUntilErr == 0 {
		if n.rearmEvery > 0 {
			n.opsUntilErr = n.rearmEvery - 1 //ipvet:ignore locksafe -- xxxLocked helper: every caller holds n.mu
		}
		return fmt.Errorf("%w: node %d", ErrNodeTransient, n.id)
	}
	n.opsUntilErr-- //ipvet:ignore locksafe -- xxxLocked helper: every caller holds n.mu
	return nil
}
