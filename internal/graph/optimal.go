package graph

import (
	"errors"
	"fmt"
	"math"
)

// ErrTooLarge is returned when an exhaustive search is asked for a graph
// beyond its configured size limit.
var ErrTooLarge = errors.New("graph too large for exhaustive search")

// MinFeedbackVertexSet computes a minimum-cost set of vertices whose
// removal makes g acyclic — the globally optimal cycle-breaking solution
// the paper proves NP-hard (§5). It is exponential in the worst case and
// refuses graphs with more than maxVertices vertices; it exists so tests
// and ablation benchmarks can bound the constant-time and locally-minimum
// policies against the true optimum on small instances.
//
// The search branches on the vertices of some cycle of the residual graph
// (every feedback vertex set must contain one of them) with cost-based
// pruning.
func MinFeedbackVertexSet(g Graph, cost CostFunc, maxVertices int) ([]int, int64, error) {
	if g.NumVertices() > maxVertices {
		return nil, 0, fmt.Errorf("%w: %d vertices > limit %d", ErrTooLarge, g.NumVertices(), maxVertices)
	}
	s := &fvsSearch{
		g:        g,
		cost:     cost,
		removed:  make([]bool, g.NumVertices()),
		bestCost: math.MaxInt64,
	}
	s.search(0)
	if s.best == nil {
		s.best = []int{} // acyclic input: empty set
	}
	return s.best, s.bestCost, nil
}

type fvsSearch struct {
	g        Graph
	cost     CostFunc
	removed  []bool
	current  []int
	curCost  int64
	best     []int
	bestCost int64
}

func (s *fvsSearch) search(depth int) {
	if s.curCost >= s.bestCost {
		return
	}
	cycle := findCycle(s.g, s.removed)
	if cycle == nil {
		s.best = append([]int(nil), s.current...)
		s.bestCost = s.curCost
		return
	}
	for _, v := range cycle {
		s.removed[v] = true
		s.current = append(s.current, v)
		s.curCost += s.cost(v)
		s.search(depth + 1)
		s.curCost -= s.cost(v)
		s.current = s.current[:len(s.current)-1]
		s.removed[v] = false
	}
}

// findCycle returns some cycle of g restricted to non-removed vertices, in
// path order, or nil if the restriction is acyclic.
func findCycle(g Graph, removed []bool) []int {
	n := g.NumVertices()
	color := make([]byte, n)
	type frame struct {
		v    int32
		edge int
	}
	var stack []frame
	for root := 0; root < n; root++ {
		if color[root] != white || removed[root] {
			continue
		}
		color[root] = gray
		stack = append(stack[:0], frame{v: int32(root)})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			succ := g.Succ(int(top.v))
			if top.edge >= len(succ) {
				color[top.v] = black
				stack = stack[:len(stack)-1]
				continue
			}
			w := succ[top.edge]
			top.edge++
			if removed[w] {
				continue
			}
			switch color[w] {
			case white:
				color[w] = gray
				stack = append(stack, frame{v: w})
			case gray:
				at := len(stack) - 1
				for stack[at].v != w {
					at--
				}
				cycle := make([]int, 0, len(stack)-at)
				for k := at; k < len(stack); k++ {
					cycle = append(cycle, int(stack[k].v))
				}
				return cycle
			}
		}
	}
	return nil
}
