// Archival tier: cold delta-chain segments are compacted into
// skip-anchor + reverse-delta blobs and striped across an erasure-coded
// node group (internal/archive), so the version history survives node
// loss and silent shard corruption while hot-head materialization stays
// shallow (DESIGN.md §12).
//
// Layout: the history [0..upTo] is cut into fixed segments of segSize
// versions. Segment g covers [g·segSize, (g+1)·segSize−1] and is encoded
// as one blob — the segment's newest image (the "skip anchor": any read
// jumps straight there without replaying the forward chain) plus reverse
// deltas walking down to the segment's oldest version, with the identity
// (CRC32 + length) of every covered version. The blob becomes stripe g of
// the archive: k data + m parity shards across k+m nodes. Reading an
// archived version therefore costs one (possibly degraded) stripe read
// plus at most segSize−1 reverse delta applications, and the store keeps
// a copy of the image at the archive boundary so head materializations
// replay only the hot tail.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ipdelta/internal/archive"
	"ipdelta/internal/codec"
	"ipdelta/internal/delta"
	"ipdelta/internal/obs"
)

// ErrNoArchive reports Store.Archive on a store without an attached tier.
var ErrNoArchive = errors.New("store: no archive tier attached")

// DefaultArchiveSegment is the number of versions compacted into one
// archive stripe when WithArchiveSegment is not given.
const DefaultArchiveSegment = 8

// WithArchive attaches an archival tier: Store.Archive stripes cold chain
// segments into a, and reads of archived versions are served from it —
// transparently reconstructing from any k of n shards — through the
// store's cache.
func WithArchive(a *archive.Archive) Option {
	return func(s *Store) { s.arch = a }
}

// WithArchiveSegment sets how many versions one archive stripe covers
// (default DefaultArchiveSegment). Smaller segments mean shallower
// reverse replays per read; larger ones amortize the stripe overhead over
// more versions. n <= 0 keeps the default.
func WithArchiveSegment(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.segSize = n
		}
	}
}

// ArchivedUpTo returns the highest version currently served by the
// archival tier, or -1 when nothing is archived.
func (s *Store) ArchivedUpTo() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.archUpTo
}

// ArchiveTier returns the attached archive (nil without WithArchive), for
// scrub/repair passes and fault injection by chaos harnesses.
func (s *Store) ArchiveTier() *archive.Archive { return s.arch }

// Archive stripes every complete cold segment up to version upTo into the
// archival tier and advances the archive boundary, keeping the image at
// the boundary as the hot chain's skip anchor. Only whole segments are
// archived, so the effective boundary is upTo rounded down to segment
// granularity; it is returned (and is -1 when not even one segment
// fits). Archiving is incremental — segments below an earlier boundary
// are not rebuilt — and idempotent per segment. The forward chain is
// retained for Save and delta composition; what Archive adds is
// durability (any version survives up to m lost or corrupted shards per
// stripe) and the shallow read path.
func (s *Store) Archive(upTo int) (int, error) {
	if s.arch == nil {
		return -1, ErrNoArchive
	}
	// appendMu serializes archiving with appends (and other archivings):
	// the chain snapshot below upTo is immutable either way, but the
	// boundary/anchor pair must move atomically with respect to both.
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	if n := s.NumVersions(); upTo < 0 || upTo >= n {
		return s.ArchivedUpTo(), fmt.Errorf("%w: %d of %d", ErrNoSuchVersion, upTo, n)
	}
	fullSegs := (upTo + 1) / s.segSize
	newUpTo := fullSegs*s.segSize - 1
	cur := s.ArchivedUpTo()
	if newUpTo <= cur {
		return cur, nil
	}
	var span obs.Span
	if s.met != nil {
		span = s.met.archiveBuild.Start()
	}
	var anchor []byte
	for seg := (cur + 1) / s.segSize; seg < fullSegs; seg++ {
		lo, hi := seg*s.segSize, (seg+1)*s.segSize-1
		blob, segAnchor, err := s.buildSegment(lo, hi)
		if err != nil {
			return s.ArchivedUpTo(), err
		}
		if err := s.arch.Put(uint64(seg), blob); err != nil {
			return s.ArchivedUpTo(), err
		}
		if s.met != nil {
			s.met.archivedSegs.Inc()
		}
		if hi == newUpTo {
			anchor = segAnchor
		}
	}
	s.mu.Lock()
	s.archUpTo = newUpTo
	s.anchor = anchor
	s.mu.Unlock()
	if s.met != nil {
		span.End()
	}
	return newUpTo, nil
}

// buildSegment materializes versions [lo..hi] and encodes the segment
// blob: skip anchor (image hi), per-version identities, and reverse
// deltas hi→hi−1 … lo+1→lo. Returns the blob and the anchor image (which
// the caller may keep; it aliases nothing).
func (s *Store) buildSegment(lo, hi int) ([]byte, []byte, error) {
	imgs := make([][]byte, hi-lo+1)
	first, err := s.Version(lo)
	if err != nil {
		return nil, nil, err
	}
	imgs[0] = first
	s.mu.RLock()
	chain := s.releases[lo+1 : hi+1]
	ids := make([]release, hi-lo+1)
	copy(ids, s.releases[lo:hi+1])
	s.mu.RUnlock()
	for v := range chain {
		next, err := chain[v].d.Apply(imgs[v])
		if err != nil {
			return nil, nil, fmt.Errorf("store archive segment [%d..%d]: %w", lo, hi, err)
		}
		imgs[v+1] = next
	}
	anchor := append([]byte(nil), imgs[len(imgs)-1]...)

	var buf bytes.Buffer
	writeUvarint(&buf, uint64(lo))
	writeUvarint(&buf, uint64(hi))
	writeUvarint(&buf, uint64(len(anchor)))
	buf.Write(anchor)
	var id [4]byte
	for _, r := range ids {
		binary.LittleEndian.PutUint32(id[:], r.crc)
		buf.Write(id[:])
		writeUvarint(&buf, uint64(r.length))
	}
	for v := len(imgs) - 1; v > 0; v-- {
		rd, err := s.algo.Diff(imgs[v], imgs[v-1])
		if err != nil {
			return nil, nil, fmt.Errorf("store archive segment [%d..%d]: %w", lo, hi, err)
		}
		var enc bytes.Buffer
		if _, err := codec.Encode(&enc, rd, codec.FormatOrdered); err != nil {
			return nil, nil, err
		}
		writeUvarint(&buf, uint64(enc.Len()))
		buf.Write(enc.Bytes())
	}
	return buf.Bytes(), anchor, nil
}

// releaseID is one version's identity inside a segment blob.
type releaseID struct {
	crc    uint32
	length int64
}

// ArchiveSegment is one decoded cold-chain segment: the skip anchor
// (image of version Hi) plus reverse deltas walking down to Lo.
type ArchiveSegment struct {
	Lo, Hi  int
	anchor  []byte
	ids     []releaseID    // Lo..Hi
	rdeltas []*delta.Delta // index 0: Hi→Hi−1, 1: Hi−1→Hi−2, …
}

// DecodeArchiveSegment parses a segment blob produced by Store.Archive.
// Every length field is bounds-checked against the remaining input, so a
// corrupt blob errors instead of over-allocating.
func DecodeArchiveSegment(blob []byte) (*ArchiveSegment, error) {
	r := bytes.NewReader(blob)
	lo, err1 := binary.ReadUvarint(r)
	hi, err2 := binary.ReadUvarint(r)
	// Each covered version occupies at least 5 identity bytes, so a
	// range wider than the remaining input is hostile; the 2^40 cap also
	// keeps int conversions safe on every platform.
	if err1 != nil || err2 != nil || hi < lo || hi > 1<<40 || hi-lo >= uint64(r.Len())/5+1 {
		return nil, fmt.Errorf("%w: segment header", ErrCorrupt)
	}
	anchorLen, err := binary.ReadUvarint(r)
	if err != nil || anchorLen > uint64(r.Len()) {
		return nil, fmt.Errorf("%w: segment anchor length", ErrCorrupt)
	}
	g := &ArchiveSegment{
		Lo:     int(lo),
		Hi:     int(hi),
		anchor: make([]byte, anchorLen),
	}
	if _, err := io.ReadFull(r, g.anchor); err != nil {
		return nil, fmt.Errorf("%w: segment anchor", ErrCorrupt)
	}
	count := int(hi-lo) + 1
	g.ids = make([]releaseID, count)
	var id [4]byte
	for v := 0; v < count; v++ {
		if _, err := io.ReadFull(r, id[:]); err != nil {
			return nil, fmt.Errorf("%w: segment identities", ErrCorrupt)
		}
		length, err := binary.ReadUvarint(r)
		if err != nil || length > uint64(1)<<62 {
			return nil, fmt.Errorf("%w: segment identities", ErrCorrupt)
		}
		g.ids[v] = releaseID{crc: binary.LittleEndian.Uint32(id[:]), length: int64(length)}
	}
	if crc32.ChecksumIEEE(g.anchor) != g.ids[count-1].crc ||
		int64(len(g.anchor)) != g.ids[count-1].length {
		return nil, fmt.Errorf("%w: segment anchor fails its CRC", ErrCorrupt)
	}
	g.rdeltas = make([]*delta.Delta, count-1)
	for v := range g.rdeltas {
		encLen, err := binary.ReadUvarint(r)
		if err != nil || encLen > uint64(r.Len()) {
			return nil, fmt.Errorf("%w: segment delta length", ErrCorrupt)
		}
		enc := make([]byte, encLen)
		if _, err := io.ReadFull(r, enc); err != nil {
			return nil, fmt.Errorf("%w: segment delta truncated", ErrCorrupt)
		}
		d, _, err := codec.Decode(bytes.NewReader(enc))
		if err != nil {
			return nil, fmt.Errorf("%w: segment delta: %v", ErrCorrupt, err)
		}
		g.rdeltas[v] = d
	}
	return g, nil
}

// Version materializes version i (Lo <= i <= Hi) from the segment: the
// anchor for Hi, otherwise reverse replay down from the anchor, verified
// against the version's recorded identity.
func (g *ArchiveSegment) Version(i int) ([]byte, error) {
	if i < g.Lo || i > g.Hi {
		return nil, fmt.Errorf("%w: %d not in segment [%d..%d]", ErrNoSuchVersion, i, g.Lo, g.Hi)
	}
	cur := g.anchor
	for v := g.Hi; v > i; v-- {
		next, err := g.rdeltas[g.Hi-v].Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("%w: reverse delta %d→%d: %v", ErrCorrupt, v, v-1, err)
		}
		cur = next
	}
	want := g.ids[i-g.Lo]
	if crc32.ChecksumIEEE(cur) != want.crc || int64(len(cur)) != want.length {
		return nil, fmt.Errorf("%w: version %d fails its stored CRC", ErrCorrupt, i)
	}
	if i == g.Hi {
		// The anchor itself is shared segment state; hand out a copy.
		cur = append([]byte(nil), cur...)
	}
	return cur, nil
}

// Replays reports how many reverse deltas a read of version i applies.
func (g *ArchiveSegment) Replays(i int) int { return g.Hi - i }

// tierRead serves version i from the archival tier when i is at or below
// the archive boundary. A tier that cannot serve (too many shards lost,
// or a decode failure) falls back to the retained chain — counted, so
// operators see the archive failing even while reads keep succeeding.
func (s *Store) tierRead(i int) ([]byte, bool) {
	if s.arch == nil {
		return nil, false
	}
	s.mu.RLock()
	upTo := s.archUpTo
	s.mu.RUnlock()
	if i > upTo {
		return nil, false
	}
	var span obs.Span
	if s.met != nil {
		span = s.met.archiveRead.Start()
	}
	img, replays, err := s.readFromArchive(i)
	if s.met != nil {
		span.End()
	}
	if err != nil {
		if s.met != nil {
			s.met.archiveFalls.Inc()
		}
		return nil, false
	}
	if s.met != nil {
		s.met.archiveReads.Inc()
		s.met.archiveRDepth.Add(int64(replays))
	}
	return img, true
}

// readFromArchive fetches version i's stripe (reconstructing through the
// erasure code as needed), decodes the segment, and replays down to i,
// cross-checking the result against the store's own identity record.
func (s *Store) readFromArchive(i int) ([]byte, int, error) {
	blob, err := s.arch.Get(uint64(i / s.segSize))
	if err != nil {
		return nil, 0, err
	}
	g, err := DecodeArchiveSegment(blob)
	if err != nil {
		return nil, 0, err
	}
	img, err := g.Version(i)
	if err != nil {
		return nil, 0, err
	}
	s.mu.RLock()
	rel := s.releases[i]
	s.mu.RUnlock()
	if crc32.ChecksumIEEE(img) != rel.crc || int64(len(img)) != rel.length {
		return nil, 0, fmt.Errorf("%w: archived version %d disagrees with the store", ErrCorrupt, i)
	}
	return img, g.Replays(i), nil
}
