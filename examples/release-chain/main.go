// Release chain: a vendor keeps every firmware release in a delta-chain
// store (base image + one delta per release). A device running any old
// release gets ONE composed, in-place reconstructible delta to the newest
// version — no intermediate versions are materialized on the server, and
// no scratch space is used on the device.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/device"
	"ipdelta/internal/graph"
	"ipdelta/internal/stats"
	"ipdelta/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build a 6-release history.
	base := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: 128 << 10, ChangeRate: 0, Seed: 7})
	s := store.New(base.Ref)
	cur := base.Ref
	for k := 1; k <= 5; k++ {
		gen := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: len(cur), ChangeRate: 0.04, Seed: 7 + int64(k)})
		v := append([]byte(nil), cur...)
		splice := len(v) / 10
		at := (k * 2 * splice) % (len(v) - splice)
		copy(v[at:at+splice], gen.Version[:splice])
		if _, err := s.AppendVersion(v); err != nil {
			return err
		}
		cur = v
	}
	storage, err := s.StorageBytes()
	if err != nil {
		return err
	}
	fmt.Printf("release history: %d versions; chain store %s vs %s full copies (%.1fx saving)\n",
		s.NumVersions(), stats.Bytes(storage), stats.Bytes(s.FullBytes()),
		float64(s.FullBytes())/float64(storage))

	// A fleet of devices, each stuck on a different old release, each gets
	// one composed in-place delta.
	head, err := s.Version(s.NumVersions() - 1)
	if err != nil {
		return err
	}
	for old := 0; old < s.NumVersions()-1; old++ {
		ip, st, err := s.InPlaceDeltaTo(old, graph.LocallyMinimum{})
		if err != nil {
			return err
		}
		var wire bytes.Buffer
		if _, err := codec.Encode(&wire, ip, codec.FormatCompact); err != nil {
			return err
		}
		wireBytes := int64(wire.Len()) // Apply drains the buffer below

		// Simulate the device applying it in place.
		img, err := s.Version(old)
		if err != nil {
			return err
		}
		flash, err := device.NewFlash(img, ip.InPlaceBufLen())
		if err != nil {
			return err
		}
		dev := device.New(flash, int64(len(img)), 2048)
		if err := dev.Apply(&wire); err != nil {
			return err
		}
		if !bytes.Equal(dev.Image(), head) {
			return fmt.Errorf("device on release %d did not reach the head version", old)
		}
		fmt.Printf("  release %d → head: delta %s (%d hops composed), %d copies converted for in-place safety\n",
			old, stats.Bytes(wireBytes), s.NumVersions()-1-old, st.ConvertedCopies)
	}
	fmt.Println("all devices converged on the newest release")
	return nil
}
