// Test package for atomicmix's cross-package taint: atomdep stores
// Gauge.Val atomically, so the plain read here is flagged through the
// imported AtomicFact. The file does not import sync/atomic, so the
// diagnostic carries no suggested fix.
package mixed

import "atomdep"

func Read(g *atomdep.Gauge) int64 {
	return g.Val // want `field Val is accessed with sync/atomic elsewhere but read plainly here`
}
