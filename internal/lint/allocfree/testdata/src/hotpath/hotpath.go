// Test package for the allocfree analyzer: every syntactic allocation
// form, the permitted idioms, and transitive reporting through local
// helpers and the imported allocdep facts.
package hotpath

import (
	"fmt"
	"sort"

	"allocdep"
)

type header struct {
	off int64
	n   int
}

var sink []int

// Clean is the all-negatives case: value literals, self-append, index and
// arithmetic, a call to a clean local helper and a clean dependency
// function.
//
//ipvet:allocfree
func Clean(buf []int, xs []int) []int {
	h := header{off: 4, n: len(xs)}
	buf = append(buf, h.n)
	buf = append(buf, allocdep.Sum(xs))
	buf = append(buf, pure(len(buf)))
	return buf
}

// pure is reachable from Clean and must stay allocation-free.
func pure(n int) int { return n * 2 }

//ipvet:allocfree
func UsesMake(n int) []int {
	return make([]int, n) // want `UsesMake is marked //ipvet:allocfree but calls make`
}

//ipvet:allocfree
func UsesNew() *header {
	return new(header) // want `UsesNew is marked //ipvet:allocfree but calls new`
}

//ipvet:allocfree
func PointerLiteral() *header {
	return &header{off: 1} // want `PointerLiteral is marked //ipvet:allocfree but heap-allocates a composite literal with &`
}

//ipvet:allocfree
func SliceLiteral() int {
	xs := []int{1, 2, 3} // want `SliceLiteral is marked //ipvet:allocfree but builds a slice literal`
	return xs[0]
}

//ipvet:allocfree
func MapLiteral() int {
	m := map[string]int{"a": 1} // want `MapLiteral is marked //ipvet:allocfree but builds a map literal`
	return m["a"]
}

//ipvet:allocfree
func ForeignAppend(xs []int) {
	sink = append(xs, 1) // want `ForeignAppend is marked //ipvet:allocfree but grows a slice with append into a different variable`
}

//ipvet:allocfree
func BytesToString(b []byte) string {
	return string(b) // want `BytesToString is marked //ipvet:allocfree but converts a byte slice to a string`
}

//ipvet:allocfree
func StringToBytes(s string) []byte {
	return []byte(s) // want `StringToBytes is marked //ipvet:allocfree but converts a string to a byte slice`
}

//ipvet:allocfree
func Boxes(n int) any {
	return any(n) // want `Boxes is marked //ipvet:allocfree but boxes a value into an interface`
}

//ipvet:allocfree
func Concat(a, b string) string {
	return a + b // want `Concat is marked //ipvet:allocfree but concatenates strings`
}

//ipvet:allocfree
func EscapingClosure(n int) func() int {
	f := func() int { return n } // want `EscapingClosure is marked //ipvet:allocfree but creates an escaping function literal`
	return f
}

//ipvet:allocfree
func Spawns(ch chan int) {
	go drain(ch) // want `Spawns is marked //ipvet:allocfree but starts a goroutine`
}

func drain(ch chan int) {
	for range ch {
	}
}

// Immediately invoked and direct-call-argument literals are the permitted
// closure forms.
//
//ipvet:allocfree
func AllowedClosures(xs []int, k int) int {
	n := func() int { return k * 2 }()
	return n + sort.SearchInts(xs, func() int { return k }())
}

// Transitive: the annotated function is clean itself but calls a local
// helper that allocates; the finding lands on the call site.
//
//ipvet:allocfree
func CallsLocalAllocator(n int) []int {
	return grow(n) // want `CallsLocalAllocator is marked //ipvet:allocfree but calls grow which allocates`
}

func grow(n int) []int {
	return make([]int, n)
}

// Cross-package: the callee's AllocFact was exported when allocdep was
// analyzed, so the reason flows through the fact.
//
//ipvet:allocfree
func CallsDepAllocator(n int) []int {
	return allocdep.Grow(n) // want `CallsDepAllocator is marked //ipvet:allocfree but calls Grow which allocates`
}

// Deny-listed external package: every fmt call is assumed to allocate.
//
//ipvet:allocfree
func Formats(n int) string {
	return fmt.Sprintf("%d", n) // want `Formats is marked //ipvet:allocfree but calls fmt.Sprintf, an allocation-heavy package`
}

// Self-recursion must terminate and stay clean.
//
//ipvet:allocfree
func Fib(n int) int {
	if n < 2 {
		return n
	}
	return Fib(n-1) + Fib(n-2)
}

// An analyzer-scoped suppression silences the finding.
//
//ipvet:allocfree
func Suppressed(n int) []int {
	return make([]int, n) //ipvet:ignore allocfree -- cold path, measured separately
}

// Unannotated functions may allocate freely.
func Unchecked(n int) []int {
	return make([]int, n)
}

// The seam-merge idioms: a three-index sub-slice windowing an existing
// arena, appends back into the same variable, relocation with copy, and
// the pop-by-reslice pattern. None of these allocate.
//
//ipvet:allocfree
func WindowedArena(arena []byte, cmds []header, lo, hi int) []header {
	w := arena[lo:lo:hi]
	w = append(w, arena[:lo]...)
	copy(arena[lo:], w)
	if len(cmds) > 0 && cmds[len(cmds)-1].n == 0 {
		cmds = cmds[:len(cmds)-1]
	}
	return append(cmds, header{off: int64(lo), n: len(w)})
}

// The cost-model idiom: float arithmetic over converted ints feeding a
// branch. Pure computation, no allocation.
//
//ipvet:allocfree
func CostModel(n, w int) int {
	seq := 13.0 * float64(n)
	par := seq/float64(w) + 20000.0 + 6000.0*float64(w)
	if par >= seq {
		return 1
	}
	return w
}
