package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ipdelta/internal/graph"
	"ipdelta/internal/stats"
)

// PolicyRow summarizes one cycle-breaking policy against the exhaustive
// optimum over a population of small random CRWI-like digraphs.
type PolicyRow struct {
	Policy string
	// MeanOverOptimal is the mean of (policy cost / optimal cost) over
	// cyclic instances; 1.0 is perfect.
	MeanOverOptimal  float64
	WorstOverOptimal float64
	// ExactOptimal counts instances where the policy matched the optimum.
	ExactOptimal int
}

// PolicyResult is the §5 ablation the paper could not run (the global
// optimum is NP-hard): on instances small enough for exhaustive search,
// how close do the two practical policies get?
type PolicyResult struct {
	Instances int // cyclic instances evaluated
	Rows      []PolicyRow
}

// RunPolicies compares the policies against exhaustive optima on random
// digraphs with up to maxVertices vertices.
func RunPolicies(instances, maxVertices int, seed int64) (*PolicyResult, error) {
	if maxVertices > 14 {
		maxVertices = 14 // keep exhaustive search tractable
	}
	rng := rand.New(rand.NewSource(seed))
	policies := []graph.Policy{graph.ConstantTime{}, graph.LocallyMinimum{}}
	type acc struct {
		ratios stats.Aggregate
		exact  int
	}
	accs := make([]acc, len(policies))
	cyclic := 0
	for cyclic < instances {
		n := rng.Intn(maxVertices-3) + 4
		g := graph.New(n)
		density := rng.Float64()*0.25 + 0.05
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < density {
					g.AddEdge(u, v)
				}
			}
		}
		if g.IsAcyclicWithout(nil) {
			continue
		}
		costs := make([]int64, n)
		for k := range costs {
			costs[k] = rng.Int63n(100) + 1
		}
		cost := func(v int) int64 { return costs[v] }
		_, optCost, err := graph.MinFeedbackVertexSet(g, cost, maxVertices)
		if err != nil {
			return nil, err
		}
		if optCost == 0 {
			continue
		}
		cyclic++
		for k, p := range policies {
			res := graph.TopoSort(g, cost, p)
			ratio := float64(res.RemovedCost) / float64(optCost)
			accs[k].ratios.Add(ratio)
			if res.RemovedCost == optCost {
				accs[k].exact++
			}
		}
	}
	out := &PolicyResult{Instances: cyclic}
	for k, p := range policies {
		out.Rows = append(out.Rows, PolicyRow{
			Policy:           p.Name(),
			MeanOverOptimal:  accs[k].ratios.Mean(),
			WorstOverOptimal: accs[k].ratios.Max(),
			ExactOptimal:     accs[k].exact,
		})
	}
	return out, nil
}

// Render prints the policy ablation.
func (r *PolicyResult) Render(w io.Writer) error {
	t := stats.Table{
		Title:   fmt.Sprintf("§5 policy ablation — %d random cyclic digraphs vs exhaustive optimum", r.Instances),
		Headers: []string{"policy", "mean cost/optimal", "worst cost/optimal", "matched optimum"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Policy,
			fmt.Sprintf("%.2f", row.MeanOverOptimal),
			fmt.Sprintf("%.2f", row.WorstOverOptimal),
			fmt.Sprintf("%d/%d", row.ExactOptimal, r.Instances),
		)
	}
	return t.Render(w)
}
