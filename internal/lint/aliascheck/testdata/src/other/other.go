// Outside the analyzer's package scope the same retention pattern is an
// ordinary constructor and passes silently.
package other

type box struct{ data []byte }

func (b *box) Set(data []byte) {
	b.data = data
}
