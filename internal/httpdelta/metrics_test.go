package httpdelta

import (
	"bytes"
	"testing"

	"net/http/httptest"

	"ipdelta/internal/obs"
)

// TestResourceMetrics fetches cold, warm (delta), and unchanged (304) and
// checks the observed resource counted each response class.
func TestResourceMetrics(t *testing.T) {
	v1 := newPage(9)
	reg := obs.NewRegistry()
	res := NewResource(v1, WithObserver(reg))
	srv := httptest.NewServer(res)
	defer srv.Close()

	c := NewClient(srv.Client())
	if got, err := c.Get(srv.URL); err != nil || !bytes.Equal(got, v1) {
		t.Fatalf("cold fetch: %v", err)
	}
	v2 := edit(v1, 1)
	res.Update(v2)
	if got, err := c.Get(srv.URL); err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("warm fetch: %v", err)
	}
	if got, err := c.Get(srv.URL); err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("304 fetch: %v", err)
	}

	snap := reg.Snapshot()
	checks := map[string]int64{
		"ipdelta_http_requests_total":        3,
		"ipdelta_http_full_responses_total":  1,
		"ipdelta_http_delta_responses_total": 1,
		"ipdelta_http_not_modified_total":    1,
	}
	for name, want := range checks {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Counter("ipdelta_http_bytes_written_total"); got < int64(len(v1)) {
		t.Errorf("bytes_written = %d, want >= cold body %d", got, len(v1))
	}
	if h := snap.Histograms["ipdelta_http_request_nanos"]; h.Count != 3 {
		t.Errorf("request_nanos count = %d, want 3", h.Count)
	}
}
