package checker

import "testing"

func edit(file string, start, end int, text string) Edit {
	return Edit{File: file, Start: start, End: end, NewText: []byte(text)}
}

func TestApplyEdits(t *testing.T) {
	src := []byte("abcdef")
	t.Run("replace insert delete", func(t *testing.T) {
		// Out-of-order input: ApplyEdits sorts by start offset.
		out, err := ApplyEdits(src, []Edit{
			edit("f", 4, 5, ""),  // delete "e"
			edit("f", 0, 1, "A"), // replace "a"
			edit("f", 3, 3, "_"), // insert before "d"
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := string(out); got != "Abc_df" {
			t.Errorf("got %q, want %q", got, "Abc_df")
		}
	})
	t.Run("overlap rejected", func(t *testing.T) {
		if _, err := ApplyEdits(src, []Edit{edit("f", 0, 3, "x"), edit("f", 2, 4, "y")}); err == nil {
			t.Error("overlapping edits applied without error")
		}
	})
	t.Run("out of range rejected", func(t *testing.T) {
		if _, err := ApplyEdits(src, []Edit{edit("f", 4, 99, "x")}); err == nil {
			t.Error("out-of-range edit applied without error")
		}
	})
	t.Run("source unchanged", func(t *testing.T) {
		if string(src) != "abcdef" {
			t.Errorf("ApplyEdits mutated its input: %q", src)
		}
	})
}

func TestSelectEdits(t *testing.T) {
	diag := func(edits ...Edit) Diagnostic {
		return Diagnostic{Fixes: []Fix{{Message: "fix", Edits: edits}}}
	}
	t.Run("first diagnostic wins overlap", func(t *testing.T) {
		perFile, applied, skipped := SelectEdits([]Diagnostic{
			diag(edit("a.go", 0, 4, "x")),
			diag(edit("a.go", 2, 6, "y")), // overlaps the first: skipped
			diag(edit("a.go", 8, 9, "z")),
		})
		if applied != 2 || skipped != 1 {
			t.Errorf("applied=%d skipped=%d, want 2/1", applied, skipped)
		}
		if got := len(perFile["a.go"]); got != 2 {
			t.Errorf("selected %d edits for a.go, want 2", got)
		}
	})
	t.Run("multi-file fix is atomic", func(t *testing.T) {
		// A fix whose edits span files is either fully selected or fully
		// skipped; one conflicting edit drops the whole fix.
		perFile, applied, skipped := SelectEdits([]Diagnostic{
			diag(edit("a.go", 0, 4, "x")),
			diag(edit("b.go", 0, 1, "p"), edit("a.go", 1, 2, "q")),
		})
		if applied != 1 || skipped != 1 {
			t.Errorf("applied=%d skipped=%d, want 1/1", applied, skipped)
		}
		if len(perFile["b.go"]) != 0 {
			t.Errorf("conflicting multi-file fix left %d edits in b.go", len(perFile["b.go"]))
		}
	})
	t.Run("no fixes", func(t *testing.T) {
		perFile, applied, skipped := SelectEdits([]Diagnostic{{}})
		if len(perFile) != 0 || applied != 0 || skipped != 0 {
			t.Errorf("fixless diagnostic selected edits: %v %d %d", perFile, applied, skipped)
		}
	})
}
