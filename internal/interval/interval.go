// Package interval provides closed integer interval arithmetic used to
// reason about the byte ranges read and written by delta commands.
//
// Throughout this module an interval [Lo, Hi] denotes the inclusive range of
// byte offsets Lo..Hi, matching the paper's notation [f, f+l-1] for a copy
// command's read interval and [t, t+l-1] for its write interval. The empty
// interval is represented with Hi < Lo.
package interval

import (
	"fmt"
	"sort"
)

// Interval is a closed interval [Lo, Hi] of int64 byte offsets. An interval
// with Hi < Lo is empty.
type Interval struct {
	Lo int64
	Hi int64
}

// FromRange returns the interval covering length bytes starting at off,
// i.e. [off, off+length-1]. A non-positive length yields an empty interval.
func FromRange(off, length int64) Interval {
	return Interval{Lo: off, Hi: off + length - 1}
}

// Empty reports whether i contains no offsets.
func (i Interval) Empty() bool { return i.Hi < i.Lo }

// Len returns the number of offsets in i, zero if empty.
func (i Interval) Len() int64 {
	if i.Empty() {
		return 0
	}
	return i.Hi - i.Lo + 1
}

// Contains reports whether offset p lies within i.
func (i Interval) Contains(p int64) bool { return i.Lo <= p && p <= i.Hi }

// ContainsInterval reports whether o lies entirely within i. An empty o is
// contained in every interval.
func (i Interval) ContainsInterval(o Interval) bool {
	if o.Empty() {
		return true
	}
	return i.Lo <= o.Lo && o.Hi <= i.Hi
}

// Overlaps reports whether i and o share at least one offset. This is the
// WR-conflict test from the paper: [t_i, t_i+l_i-1] ∩ [f_j, f_j+l_j-1] ≠ ∅.
func (i Interval) Overlaps(o Interval) bool {
	if i.Empty() || o.Empty() {
		return false
	}
	return i.Lo <= o.Hi && o.Lo <= i.Hi
}

// Intersect returns the interval common to i and o. The result is empty when
// the intervals do not overlap.
func (i Interval) Intersect(o Interval) Interval {
	lo, hi := i.Lo, i.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Union returns the smallest interval containing both i and o. Unlike set
// union it also covers any gap between them; callers that need exact set
// semantics should use Set.
func (i Interval) Union(o Interval) Interval {
	if i.Empty() {
		return o
	}
	if o.Empty() {
		return i
	}
	lo, hi := i.Lo, i.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Adjacent reports whether i and o touch without overlapping, e.g.
// [0,4] and [5,9].
func (i Interval) Adjacent(o Interval) bool {
	if i.Empty() || o.Empty() {
		return false
	}
	return i.Hi+1 == o.Lo || o.Hi+1 == i.Lo
}

// String renders the interval in the paper's [lo, hi] notation.
func (i Interval) String() string {
	if i.Empty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%d, %d]", i.Lo, i.Hi)
}

// Set is a collection of disjoint, sorted, non-adjacent intervals. The zero
// value is an empty set ready for use. Set is the data structure used to
// accumulate "bytes already written" when verifying Equation 2 of the paper.
type Set struct {
	ivs []Interval // invariant: sorted by Lo, pairwise disjoint and non-adjacent
}

// NewSet returns a set containing the given intervals.
func NewSet(ivs ...Interval) *Set {
	s := &Set{}
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Len returns the number of maximal intervals in the set.
func (s *Set) Len() int { return len(s.ivs) }

// Reset empties the set while retaining its backing capacity, so a set can
// be reused across validation passes without reallocating.
func (s *Set) Reset() { s.ivs = s.ivs[:0] }

// Total returns the number of offsets covered by the set.
func (s *Set) Total() int64 {
	var n int64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Intervals returns a copy of the maximal intervals in sorted order.
func (s *Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Add inserts iv into the set, merging with any overlapping or adjacent
// intervals. Empty intervals are ignored.
func (s *Set) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Locate the first existing interval that could merge with iv: the first
	// whose Hi+1 >= iv.Lo.
	lo := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi+1 >= iv.Lo })
	hi := lo
	for hi < len(s.ivs) && s.ivs[hi].Lo <= iv.Hi+1 {
		iv = iv.Union(s.ivs[hi])
		hi++
	}
	if lo == hi {
		s.ivs = append(s.ivs, Interval{})
		copy(s.ivs[lo+1:], s.ivs[lo:])
		s.ivs[lo] = iv
		return
	}
	s.ivs[lo] = iv
	s.ivs = append(s.ivs[:lo+1], s.ivs[hi:]...)
}

// Overlaps reports whether iv shares any offset with the set.
func (s *Set) Overlaps(iv Interval) bool {
	if iv.Empty() {
		return false
	}
	// First interval with Hi >= iv.Lo is the only candidate start.
	k := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= iv.Lo })
	return k < len(s.ivs) && s.ivs[k].Lo <= iv.Hi
}

// Contains reports whether offset p is covered by the set.
func (s *Set) Contains(p int64) bool {
	k := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= p })
	return k < len(s.ivs) && s.ivs[k].Lo <= p
}

// ContainsInterval reports whether iv is entirely covered by a single
// maximal interval of the set (equivalently, by the set, since maximal
// intervals are non-adjacent).
func (s *Set) ContainsInterval(iv Interval) bool {
	if iv.Empty() {
		return true
	}
	k := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= iv.Lo })
	return k < len(s.ivs) && s.ivs[k].ContainsInterval(iv)
}

// String renders the set as a list of intervals.
func (s *Set) String() string {
	if len(s.ivs) == 0 {
		return "{}"
	}
	out := ""
	for k, iv := range s.ivs {
		if k > 0 {
			out += " ∪ "
		}
		out += iv.String()
	}
	return out
}
