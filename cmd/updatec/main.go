// Command updatec simulates a limited network device updating its image
// from an updated server: the image file is loaded into a simulated flash
// part, the in-place delta is streamed and applied with a bounded working
// buffer, and the updated image is written back.
//
// The client is resilient: transient failures are retried with capped
// exponential backoff (resuming the interrupted update), and persistent
// delta failures degrade to a full-image transfer. For chaos testing, the
// -fault-* flags wrap the connection in a seeded network fault injector.
//
// Usage:
//
//	updatec -server 127.0.0.1:7070 -image device.img [-capacity N] [-rate BPS]
//	        [-timeout D] [-retries N] [-fallback-after N] [-metrics] [-v]
//	        [-fault-seed N] [-fault-rate P] [-fault-corrupt P] [-fault-drop-after N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"

	"ipdelta/internal/device"
	"ipdelta/internal/netupdate"
	"ipdelta/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "updatec:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("updatec", flag.ContinueOnError)
	server := fs.String("server", "127.0.0.1:7070", "update server address")
	imagePath := fs.String("image", "", "installed image file (updated in place on success)")
	capacity := fs.Int64("capacity", 0, "flash capacity in bytes (default: 2x image size)")
	rate := fs.Int64("rate", 0, "simulated link rate in bits/second (0 = unthrottled)")
	workBuf := fs.Int("workbuf", device.DefaultWorkBufSize, "device working buffer size")
	timeout := fs.Duration("timeout", 0, "per-message I/O deadline inside a session (0 = none)")
	retries := fs.Int("retries", 8, "maximum session attempts before giving up")
	fallbackAfter := fs.Int("fallback-after", 3, "consecutive failed delta sessions before requesting the full image (-1 = never)")
	faultSeed := fs.Uint64("fault-seed", 0, "seed for the network fault injector (and retry jitter)")
	faultRate := fs.Float64("fault-rate", 0, "injected per-operation connection-drop probability")
	faultCorrupt := fs.Float64("fault-corrupt", 0, "injected per-read byte-corruption probability")
	faultDropAfter := fs.Int64("fault-drop-after", 0, "kill each connection after exactly N bytes (0 = never)")
	metrics := fs.Bool("metrics", false, "print a client metrics snapshot (attempts, retries, degradations) to stderr")
	verbose := fs.Bool("v", false, "log each attempt (structured, stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *imagePath == "" {
		return errors.New("updatec: -image is required")
	}
	f, err := os.OpenFile(*imagePath, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	imageLen := fi.Size()
	capBytes := *capacity
	if capBytes == 0 {
		capBytes = imageLen * 2
	}
	// Patch the image file directly, in place, through the bounded-memory
	// device engine — no second copy of the image is ever made.
	store, err := device.NewFileStore(f, capBytes)
	if err != nil {
		return err
	}
	dev := device.New(store, imageLen, *workBuf)

	// Each attempt dials a fresh connection; faults (if configured) get a
	// per-attempt seed so retries see fresh but reproducible weather.
	injectFaults := *faultRate > 0 || *faultCorrupt > 0 || *faultDropAfter > 0
	dials := uint64(0)
	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", *server)
		if err != nil {
			return nil, err
		}
		c := net.Conn(conn)
		if *rate > 0 {
			c = netupdate.NewThrottledConn(c, *rate)
		}
		if injectFaults {
			dials++
			c = netupdate.NewFlakyConn(c, netupdate.FaultProfile{
				Seed:           *faultSeed + dials,
				DropAfterBytes: *faultDropAfter,
				OpFaultRate:    *faultRate,
				CorruptRate:    *faultCorrupt,
			})
		}
		return c, nil
	}
	logger := obs.NopLogger()
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	runner := netupdate.NewRunner(netupdate.RunnerConfig{
		MaxAttempts:       *retries,
		MessageTimeout:    *timeout,
		FullFallbackAfter: *fallbackAfter,
		Seed:              *faultSeed,
		Observer:          reg,
		Logger:            logger,
	})
	rep, err := runner.Run(context.Background(), dial, dev)
	for _, line := range rep.FailureLog {
		fmt.Fprintln(os.Stderr, "updatec:", line)
	}
	if reg != nil {
		fmt.Fprint(os.Stderr, reg.Snapshot().Text())
	}
	if err != nil {
		return err
	}
	if rep.Result.UpToDate {
		fmt.Println("updatec: already up to date")
		return nil
	}
	if err := store.Truncate(dev.ImageLen()); err != nil {
		return err
	}
	if err := store.Sync(); err != nil {
		return err
	}
	how := "delta"
	if rep.Result.FullImage {
		how = "full image (degraded)"
	}
	fmt.Printf("updatec: updated %s in place via %d %s bytes in %d attempt(s) (image now %d bytes)\n",
		*imagePath, rep.Result.DeltaBytes, how, rep.Attempts, dev.ImageLen())
	return nil
}
