package diff

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDifferMatchesLinear interleaves many diffs through one Differ and
// checks each pooled result (while valid) against the detached
// (*Linear).Diff output.
func TestDifferMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLinear()
	dr := NewDiffer()
	for i := 0; i < 40; i++ {
		ref := make([]byte, 200+rng.Intn(4000))
		rng.Read(ref)
		version := mutate(rng, ref, 1+rng.Intn(8))

		want, err := l.Diff(ref, version)
		if err != nil {
			t.Fatalf("case %d: Linear.Diff: %v", i, err)
		}
		got, err := dr.Diff(ref, version)
		if err != nil {
			t.Fatalf("case %d: Differ.Diff: %v", i, err)
		}
		if got.RefLen != want.RefLen || got.VersionLen != want.VersionLen {
			t.Fatalf("case %d: lengths differ: got %d/%d, want %d/%d",
				i, got.RefLen, got.VersionLen, want.RefLen, want.VersionLen)
		}
		if len(got.Commands) != len(want.Commands) {
			t.Fatalf("case %d: %d commands, want %d", i, len(got.Commands), len(want.Commands))
		}
		for k := range got.Commands {
			if !got.Commands[k].Equal(want.Commands[k]) {
				t.Fatalf("case %d: command %d: got %v, want %v",
					i, k, got.Commands[k], want.Commands[k])
			}
		}
		out, err := got.Apply(ref)
		if err != nil {
			t.Fatalf("case %d: apply: %v", i, err)
		}
		if !bytes.Equal(out, version) {
			t.Fatalf("case %d: pooled delta does not reproduce the version", i)
		}
	}
}

// TestDifferEdgeCases covers the empty-version and too-short-to-seed
// fallback paths through the reusable differencer.
func TestDifferEdgeCases(t *testing.T) {
	dr := NewDiffer()
	for _, tc := range []struct{ ref, version string }{
		{"", ""},
		{"reference bytes", ""},
		{"", "short"},
		{"tiny", "also tiny"},
	} {
		d, err := dr.Diff([]byte(tc.ref), []byte(tc.version))
		if err != nil {
			t.Fatalf("Diff(%q, %q): %v", tc.ref, tc.version, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Diff(%q, %q): invalid delta: %v", tc.ref, tc.version, err)
		}
		out, err := d.Apply([]byte(tc.ref))
		if err != nil {
			t.Fatalf("Diff(%q, %q): apply: %v", tc.ref, tc.version, err)
		}
		if string(out) != tc.version {
			t.Fatalf("Diff(%q, %q): reproduced %q", tc.ref, tc.version, out)
		}
	}
}

// allocBenchPair builds a deterministic (ref, version) pair large enough
// that the differencer exercises its table, emitter, and arena.
func allocBenchPair() (ref, version []byte) {
	rng := rand.New(rand.NewSource(1998))
	ref = make([]byte, 64<<10)
	rng.Read(ref)
	version = mutate(rng, ref, 40)
	return ref, version
}

// TestDifferAllocs is the steady-state allocation gate for the reusable
// differencing path: after warm-up, (*Differ).Diff must perform at most 2
// allocations per call (it is expected to reach 0; the slack tolerates
// runtime-internal noise, not differencer regressions).
func TestDifferAllocs(t *testing.T) {
	ref, version := allocBenchPair()
	dr := NewDiffer()
	if _, err := dr.Diff(ref, version); err != nil { // warm the scratch
		t.Fatalf("warm-up diff: %v", err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := dr.Diff(ref, version); err != nil {
			t.Fatalf("diff: %v", err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state (*Differ).Diff allocates %.1f times per call, want <= 2", allocs)
	}
}

// TestLinearDiffAllocs gates the detached path. Its contract — the caller
// owns the result — floors it at 3 allocations per call (the Delta
// struct, the command slice, and the single shared data arena); the
// fingerprint table and emitter scratch must come from the pool and add
// nothing. The bound of 4 is a rot guard above that floor.
func TestLinearDiffAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	ref, version := allocBenchPair()
	l := NewLinear()
	if _, err := l.Diff(ref, version); err != nil { // warm the pool
		t.Fatalf("warm-up diff: %v", err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := l.Diff(ref, version); err != nil {
			t.Fatalf("diff: %v", err)
		}
	})
	if allocs > 4 {
		t.Fatalf("steady-state (*Linear).Diff allocates %.1f times per call, want <= 4", allocs)
	}
}
