package fleet

import (
	"context"
	"testing"
	"time"

	"ipdelta/internal/obs"
)

// TestChaosObserverRollups runs a small calm fleet with an observer and
// checks the per-run rollup counters agree with the report.
func TestChaosObserverRollups(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := ChaosConfig{
		Releases: chaosReleases(t, 16<<10),
		Devices: []ChaosDeviceSpec{
			{Release: 0, CapacitySlack: 0.25},
			{Release: 1, CapacitySlack: 0.25},
			{Release: -1, CapacitySlack: 0.25}, // unknown build → fallback
		},
		Seed:              11,
		MaxAttempts:       10,
		FullFallbackAfter: 3,
		MessageTimeout:    2 * time.Second,
		BaseBackoff:       time.Millisecond,
		Observer:          reg,
	}
	out, err := RunChaos(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Converged != out.Devices {
		t.Fatalf("only %d/%d devices converged", out.Converged, out.Devices)
	}

	snap := reg.Snapshot()
	checks := map[string]int64{
		"ipdelta_fleet_devices_total":   int64(out.Devices),
		"ipdelta_fleet_converged_total": int64(out.Converged),
		"ipdelta_fleet_fallbacks_total": int64(out.Fallbacks),
		"ipdelta_fleet_attempts_total":  int64(out.TotalAttempts),
	}
	for name, want := range checks {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// The shared server and per-device runners report into the same
	// registry, so the component metrics must be populated too.
	if got := snap.Counter("ipdelta_server_sessions_total"); got == 0 {
		t.Error("fleet run recorded no server sessions")
	}
	if got := snap.Counter("ipdelta_client_runs_total"); got != int64(out.Devices) {
		t.Errorf("client_runs_total = %d, want %d", got, out.Devices)
	}
}
