package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ipdelta/internal/interval"
)

// genSafeDelta generates an in-place-safe delta by construction: the
// version is partitioned into random write intervals, commands are emitted
// in a random order, and every copy reads only offsets that no earlier
// command has written. This gives the apply engines a much wider space of
// safe inputs than the converter alone produces.
func genSafeDelta(rng *rand.Rand, refLen int64) *Delta {
	versionLen := rng.Int63n(refLen) + refLen/2 // between 0.5x and 1.5x
	d := &Delta{RefLen: refLen, VersionLen: versionLen}

	// Partition [0, versionLen) into chunks.
	var bounds []int64
	for at := int64(0); at < versionLen; {
		n := rng.Int63n(versionLen/4+1) + 1
		if at+n > versionLen {
			n = versionLen - at
		}
		bounds = append(bounds, at, at+n)
		at += n
	}
	// Shuffle the chunk order.
	order := rng.Perm(len(bounds) / 2)

	written := interval.NewSet()
	for _, oi := range order {
		lo, hi := bounds[2*oi], bounds[2*oi+1]
		length := hi - lo
		// Try to place a copy whose read interval avoids everything
		// written so far; fall back to an add.
		placed := false
		for attempt := 0; attempt < 8 && length <= refLen; attempt++ {
			from := rng.Int63n(refLen - length + 1)
			if !written.Overlaps(interval.FromRange(from, length)) {
				d.Commands = append(d.Commands, NewCopy(from, lo, length))
				placed = true
				break
			}
		}
		if !placed {
			data := make([]byte, length)
			rng.Read(data)
			d.Commands = append(d.Commands, NewAdd(lo, data))
		}
		written.Add(interval.FromRange(lo, length))
	}
	return d
}

func TestQuickSafeGeneratorProducesSafeDeltas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := genSafeDelta(rng, rng.Int63n(4096)+64)
		if d.Validate() != nil {
			return false
		}
		return d.CheckInPlace() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickApplyInPlaceEquivalence is the central engine property: on any
// in-place-safe delta, the single-buffer application and the scratch-space
// application produce identical versions, across buffer granularities.
func TestQuickApplyInPlaceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		refLen := rng.Int63n(4096) + 64
		ref := make([]byte, refLen)
		rng.Read(ref)
		d := genSafeDelta(rng, refLen)
		want, err := d.Apply(ref)
		if err != nil {
			return false
		}
		for _, bufSize := range []int{1, 7, 256, 4096} {
			buf := make([]byte, d.InPlaceBufLen())
			copy(buf, ref)
			if err := d.ApplyInPlaceBuf(buf, bufSize); err != nil {
				return false
			}
			if !bytes.Equal(buf[:d.VersionLen], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickObservedApplyMatches checks the observer path doesn't perturb
// results and observes every command exactly once.
func TestQuickObservedApplyMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		refLen := rng.Int63n(2048) + 64
		ref := make([]byte, refLen)
		rng.Read(ref)
		d := genSafeDelta(rng, refLen)
		want, err := d.Apply(ref)
		if err != nil {
			return false
		}
		buf := make([]byte, d.InPlaceBufLen())
		copy(buf, ref)
		seen := 0
		err = d.ApplyInPlaceObserved(buf, func(int, Command) error {
			seen++
			return nil
		})
		if err != nil || seen != len(d.Commands) {
			return false
		}
		return bytes.Equal(buf[:d.VersionLen], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
