// Package deprecatedapi flags calls to the legacy convert entry points
// that predate the options-based API. ConvertInPlaceWithPolicy and
// ConvertInPlaceScratch survive only as compatibility shims over
// ConvertInPlace(d, ref, opts...); new code that reaches for them forks
// the call surface the observability layer instruments, so the analyzer
// steers every caller to the one maintained path.
//
// Flagged:
//
//	ipdelta.ConvertInPlaceWithPolicy(d, ref, p)   // use WithPolicy(p)
//	ipdelta.ConvertInPlaceScratch(d, ref, n)      // use WithScratchBudget(n)
//
// Only package-level functions defined in the ipdelta root package are
// matched, so an unrelated method or helper that happens to share a name
// is left alone. The shims' own declarations are not calls and are never
// flagged; a caller that must stay on the legacy spelling (for example a
// pinned compatibility test) can carry an //ipvet:ignore deprecatedapi
// suppression.
package deprecatedapi

import (
	"go/ast"
	"go/types"
	"regexp"

	"ipdelta/internal/lint/analysis"
)

// TargetPattern selects the package whose deprecated entry points are
// checked: the module root.
var TargetPattern = regexp.MustCompile(`(^|/)ipdelta$`)

// replacements maps each deprecated function to the option-based call
// that supersedes it.
var replacements = map[string]string{
	"ConvertInPlaceWithPolicy": "ConvertInPlace with WithPolicy(p)",
	"ConvertInPlaceScratch":    "ConvertInPlace with WithScratchBudget(n)",
}

// Analyzer is the deprecatedapi analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "deprecatedapi",
	Doc: "flags calls to the deprecated ConvertInPlaceWithPolicy and " +
		"ConvertInPlaceScratch shims; use ConvertInPlace options instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		repl, ok := replacements[id.Name]
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(id).(*types.Func)
		if !ok || fn.Pkg() == nil || !TargetPattern.MatchString(fn.Pkg().Path()) {
			return true
		}
		// Methods on some local type that reuse the name are not the
		// deprecated package-level shims.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		pass.Reportf(call.Pos(), "%s.%s is deprecated; use %s",
			fn.Pkg().Name(), fn.Name(), repl)
		return true
	})
	return nil
}
