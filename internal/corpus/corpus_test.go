package corpus

import (
	"bytes"
	"testing"

	"ipdelta/internal/diff"
)

func TestProfileString(t *testing.T) {
	if Text.String() != "text" || Binary.String() != "binary" || Firmware.String() != "firmware" || Database.String() != "database" {
		t.Fatal("profile names wrong")
	}
	if Profile(9).String() != "profile(9)" {
		t.Fatal("unknown profile name wrong")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := PairSpec{Profile: Binary, Size: 32 << 10, ChangeRate: 0.1, Seed: 42}
	a := Generate(spec)
	b := Generate(spec)
	if !bytes.Equal(a.Ref, b.Ref) || !bytes.Equal(a.Version, b.Version) {
		t.Fatal("same spec produced different pairs")
	}
	c := Generate(PairSpec{Profile: Binary, Size: 32 << 10, ChangeRate: 0.1, Seed: 43})
	if bytes.Equal(a.Ref, c.Ref) {
		t.Fatal("different seeds produced identical references")
	}
}

func TestGenerateSizes(t *testing.T) {
	for _, p := range []Profile{Text, Binary, Firmware} {
		pair := Generate(PairSpec{Profile: p, Size: 20 << 10, ChangeRate: 0.05, Seed: 1})
		if len(pair.Ref) != 20<<10 {
			t.Errorf("%v: ref size %d", p, len(pair.Ref))
		}
		// Version size should be in the same ballpark (edits insert and
		// delete similar volumes).
		if len(pair.Version) < 15<<10 || len(pair.Version) > 25<<10 {
			t.Errorf("%v: version size %d far from reference", p, len(pair.Version))
		}
		if pair.Name == "" {
			t.Errorf("%v: empty name", p)
		}
	}
}

func TestZeroChangeRate(t *testing.T) {
	pair := Generate(PairSpec{Profile: Text, Size: 8 << 10, ChangeRate: 0, Seed: 7})
	if !bytes.Equal(pair.Ref, pair.Version) {
		t.Fatal("zero change rate must produce identical files")
	}
}

func TestChangeRateOrdersDeltaSize(t *testing.T) {
	// Higher change rates must produce larger deltas.
	lin := diff.NewLinear()
	var prev int64 = -1
	for _, rate := range []float64{0.01, 0.10, 0.40} {
		pair := Generate(PairSpec{Profile: Binary, Size: 64 << 10, ChangeRate: rate, Seed: 11})
		d, err := lin.Diff(pair.Ref, pair.Version)
		if err != nil {
			t.Fatal(err)
		}
		added := d.AddedBytes()
		if added <= prev {
			t.Fatalf("rate %.2f: added bytes %d not larger than previous %d", rate, added, prev)
		}
		prev = added
	}
}

func TestCorpusCompressesWell(t *testing.T) {
	// The paper's corpus compressed to ~15% of original size on average;
	// our synthetic pairs at low change rates must land in that regime
	// (deltas much smaller than the raw version).
	lin := diff.NewLinear()
	for _, pair := range SmallCorpus(5) {
		d, err := lin.Diff(pair.Ref, pair.Version)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(d.AddedBytes()) / float64(len(pair.Version))
		if ratio > 0.5 {
			t.Errorf("%s: added fraction %.2f, pair barely compressible", pair.Name, ratio)
		}
	}
}

func TestFirmwareHasErasedBlocks(t *testing.T) {
	pair := Generate(PairSpec{Profile: Firmware, Size: 64 << 10, ChangeRate: 0, Seed: 3})
	ff := 0
	for _, b := range pair.Ref {
		if b == 0xFF {
			ff++
		}
	}
	if ff < len(pair.Ref)/10 {
		t.Fatalf("only %d 0xFF bytes of %d; erased blocks missing", ff, len(pair.Ref))
	}
}

func TestTextLooksLikeText(t *testing.T) {
	pair := Generate(PairSpec{Profile: Text, Size: 16 << 10, ChangeRate: 0, Seed: 4})
	printable := 0
	for _, b := range pair.Ref {
		if b == '\n' || b == '\t' || (b >= 32 && b < 127) {
			printable++
		}
	}
	if printable != len(pair.Ref) {
		t.Fatalf("%d of %d bytes printable", printable, len(pair.Ref))
	}
}

func TestStandardCorpusGrid(t *testing.T) {
	pairs := StandardCorpus(1)
	if len(pairs) != 4*3*4 {
		t.Fatalf("corpus has %d pairs, want 48", len(pairs))
	}
	seen := map[string]bool{}
	for _, p := range pairs {
		if seen[p.Name] {
			t.Fatalf("duplicate pair name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestDatabaseProfile(t *testing.T) {
	pair := Generate(PairSpec{Profile: Database, Size: 64 << 10, ChangeRate: 0.10, Seed: 17})
	if len(pair.Ref)%dbRecordSize != 0 {
		t.Fatalf("reference not record-aligned: %d", len(pair.Ref))
	}
	if len(pair.Version)%dbRecordSize != 0 {
		t.Fatalf("version not record-aligned: %d", len(pair.Version))
	}
	// Keys ascend in the reference.
	var prev uint64
	for at := 0; at+8 <= len(pair.Ref); at += dbRecordSize {
		var key uint64
		for k := 0; k < 8; k++ {
			key = key<<8 | uint64(pair.Ref[at+k])
		}
		if at > 0 && key <= prev {
			t.Fatalf("keys not ascending at record %d", at/dbRecordSize)
		}
		prev = key
	}
	// Record-aligned edits compress extremely well with blockwise diff at
	// the record size.
	b, err := diff.ByName("blockwise")
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Diff(pair.Ref, pair.Version)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Apply(pair.Ref); !bytes.Equal(got, pair.Version) {
		t.Fatal("round trip failed")
	}
}
