package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline serializes a document with the given results to a temp file.
func writeBaseline(t *testing.T, dir, name string, results []baselineResult) string {
	t.Helper()
	doc := &baselineDoc{Results: results}
	doc.Environment.NumCPU = 4
	doc.Environment.GOMAXPROCS = 4
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareCleanPass(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1000, AllocsPerOp: 2},
		{Name: "convert/reuse", NsPerOp: 500, AllocsPerOp: 0},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1050, AllocsPerOp: 2}, // +5%, inside threshold
		{Name: "convert/reuse", NsPerOp: 480, AllocsPerOp: 0},
		{Name: "diff/parallel/4", NsPerOp: 300, AllocsPerOp: 3}, // new row, ignored
	})
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.25); err != nil {
		t.Fatalf("clean compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "2 compared, 0 regressed") {
		t.Fatalf("unexpected summary:\n%s", buf.String())
	}
}

func TestCompareDetectsSlowdown(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1000, AllocsPerOp: 2},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1500, AllocsPerOp: 2}, // +50%
	})
	var buf bytes.Buffer
	err := runCompare(&buf, oldPath, newPath, 0.25)
	var reg errRegression
	if !errors.As(err, &reg) || reg.n != 1 {
		t.Fatalf("want 1 regression, got err=%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("table missing verdict:\n%s", buf.String())
	}
}

func TestCompareDetectsNewAllocations(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "convert/reuse", NsPerOp: 500, AllocsPerOp: 0},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		// Faster, but a zero-alloc benchmark started allocating: still red.
		{Name: "convert/reuse", NsPerOp: 400, AllocsPerOp: 3},
	})
	var buf bytes.Buffer
	err := runCompare(&buf, oldPath, newPath, 0.25)
	var reg errRegression
	if !errors.As(err, &reg) {
		t.Fatalf("alloc growth not flagged: err=%v\n%s", err, buf.String())
	}
}

func TestCompareNoSharedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "a", NsPerOp: 1},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		{Name: "b", NsPerOp: 1},
	})
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.25); err == nil {
		t.Fatal("disjoint documents must not pass silently")
	}
}

func TestCompareMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := runCompare(&buf, "/definitely/missing.json", "/also/missing.json", 0.25); err == nil {
		t.Fatal("missing baseline must error")
	}
}

func TestCompareViaRun(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1000},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1001},
	})
	if err := run([]string{"-compare", oldPath, "-compare-to", newPath}); err != nil {
		t.Fatal(err)
	}
}
