package netupdate

import (
	"bytes"
	"context"
	"hash/crc32"
	"net"
	"testing"
	"time"

	"ipdelta/internal/device"
)

// scriptConn is a net.Conn whose reads replay a fixed byte script and whose
// writes vanish — the shape of a byzantine peer for fuzzing: it answers with
// whatever the fuzzer invented, regardless of what we sent it.
type scriptConn struct {
	r *bytes.Reader
}

func newScriptConn(data []byte) *scriptConn {
	return &scriptConn{r: bytes.NewReader(data)}
}

func (c *scriptConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c *scriptConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *scriptConn) Close() error                       { return nil }
func (c *scriptConn) LocalAddr() net.Addr                { return nil }
func (c *scriptConn) RemoteAddr() net.Addr               { return nil }
func (c *scriptConn) SetDeadline(t time.Time) error      { return nil }
func (c *scriptConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *scriptConn) SetWriteDeadline(t time.Time) error { return nil }

// FuzzSession feeds fuzzer-controlled bytes to both ends of the update
// protocol: a server session whose client is byzantine, and a client session
// whose server is byzantine. Neither may panic, hang, or allocate
// wire-claimed amounts of memory, no matter the input.
func FuzzSession(f *testing.F) {
	history := makeHistory(2, 1<<10, 40)
	srv, err := NewServer(history)
	if err != nil {
		f.Fatal(err)
	}
	oldCRC := crc32.ChecksumIEEE(history[0])
	curCRC := crc32.ChecksumIEEE(history[1])

	// Seed the corpus with every message shape the protocol knows, plus
	// framing edge cases.
	f.Add(frame(msgHello, encodeHello(hello{ImageCRC: curCRC, ImageLen: 1 << 10, Capacity: 4 << 10})))
	f.Add(frame(msgHello, encodeHello(hello{ImageCRC: oldCRC, ImageLen: 1 << 10, Capacity: 4 << 10})))
	f.Add(frame(msgHello, encodeHello(hello{WantFull: true, ImageCRC: oldCRC, ImageLen: 1 << 10, Capacity: 4 << 10})))
	f.Add(frame(msgHello, encodeHello(hello{Updating: true, ImageCRC: oldCRC, ImageLen: 1 << 10, Capacity: 4 << 10})))
	// A whole happy-path server transcript: hello, then a status.
	f.Add(append(
		frame(msgHello, encodeHello(hello{ImageCRC: oldCRC, ImageLen: 1 << 10, Capacity: 4 << 10})),
		frame(msgStatus, encodeStatus(status{OK: true, ImageCRC: curCRC}))...))
	// Client-direction shapes: server replies.
	f.Add(frame(msgUpToDate, nil))
	f.Add(frame(msgError, []byte("unknown version")))
	f.Add(append(frame(msgFull, history[1]), frame(msgAck, encodeAck(true))...))
	f.Add(append(frame(msgDelta, []byte{0, 1, 2, 3}), frame(msgAck, encodeAck(false))...))
	// Framing hostility: truncated, oversize, and huge-claim messages.
	f.Add(frame(msgHello, []byte{1, 2}))
	f.Add(hostileFrame(msgDelta, uint64(maxMessage)+7, nil))
	f.Add(hostileFrame(msgFull, 512<<20, []byte("tiny")))
	f.Add([]byte{msgStatus})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Server side: a byzantine client.
		_ = srv.HandleConn(newScriptConn(data))

		// Client side: a byzantine server. The device is tiny so a
		// fuzzer-crafted FULL or DELTA cannot make it do much work.
		flash, err := device.NewFlash(history[0], 4<<10)
		if err != nil {
			t.Fatal(err)
		}
		dev := device.New(flash, int64(len(history[0])), 256)
		_, _ = RunSession(context.Background(), newScriptConn(data), dev, SessionOptions{})
	})
}
