// Package netupdate implements the software-update protocol the paper
// motivates: a server that holds the release history of an image and
// streams in-place reconstructible deltas to limited network devices over
// low-bandwidth channels.
//
// Protocol (all messages are a one-byte type, a uvarint payload length and
// the payload):
//
//	device → server  HELLO   {flags, imageCRC, imageLen, capacity}
//	server → device  UPTODATE                    — image is current
//	                 DELTA   {delta file bytes}  — apply this in place
//	                 FULL    {image bytes}       — full-image degradation
//	                 ERROR   {message}           — e.g. unknown version
//	device → server  STATUS  {ok, imageCRC}
//	server → device  ACK     {ok}                — server verified the CRC
//
// The hello flags carry two bits: updating (an interrupted update is being
// resumed) and wantFull (the device asks for the whole current image
// instead of a delta — the degradation path after repeated delta
// failures or when the server does not know the device's version).
//
// A device that lost power mid-update reconnects with updating=true and the
// CRC of the version it was upgrading from; the server regenerates the same
// delta deterministically and the device resumes where it stopped. The
// final ACK closes the loop: a device whose flash was corrupted by a bad
// transfer learns about it immediately and can fall back to a full image.
package netupdate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// message types.
const (
	msgHello    = 0x01
	msgUpToDate = 0x02
	msgDelta    = 0x03
	msgError    = 0x04
	msgStatus   = 0x05
	msgFull     = 0x06
	msgAck      = 0x07
)

// maxMessage bounds a single protocol message (delta and full-image
// payloads included).
const maxMessage = 1 << 30

// payloadChunk is the allocation granularity for buffered payload reads: a
// hostile length prefix can cost at most one idle chunk, never a
// wire-supplied amount of memory.
const payloadChunk = 1 << 20

// hello flag bits.
const (
	helloUpdating = 1 << 0
	helloWantFull = 1 << 1
)

// Protocol errors.
var (
	ErrUnknownVersion = errors.New("netupdate: device runs a version the server does not know")
	ErrProtocol       = errors.New("netupdate: protocol violation")
	// ErrMessageTooLarge reports a length prefix beyond the protocol's
	// hard message-size limit. It wraps ErrProtocol semantics: hostile or
	// corrupt framing, never a valid peer.
	ErrMessageTooLarge = errors.New("netupdate: message exceeds size limit")
	// ErrImageRejected reports that the server's final ACK was negative:
	// the device-computed CRC did not match the distributed version, so
	// the local image must be considered corrupt.
	ErrImageRejected = errors.New("netupdate: server rejected the reconstructed image CRC")
)

// hello is the device's opening message.
type hello struct {
	Updating bool
	WantFull bool
	ImageCRC uint32
	ImageLen int64
	Capacity int64
}

// status is the device's closing message.
type status struct {
	OK       bool
	ImageCRC uint32
}

// writeMsg frames one message.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsgHeader reads a message type and payload length.
func readMsgHeader(r io.ByteReader) (byte, int64, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return 0, 0, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad length: %v", ErrProtocol, err)
	}
	if n > maxMessage {
		return 0, 0, fmt.Errorf("%w: %w: message of %d bytes (limit %d)", ErrProtocol, ErrMessageTooLarge, n, int64(maxMessage))
	}
	return typ, int64(n), nil
}

// byteAndStreamReader is the reader capability the protocol needs.
type byteAndStreamReader interface {
	io.Reader
	io.ByteReader
}

// readPayload buffers n payload bytes, growing only as data actually
// arrives. A peer that announces a huge length but never sends it costs at
// most one payloadChunk of memory, not n bytes — the length prefix is a
// claim, never an allocation instruction.
func readPayload(r io.Reader, n int64) ([]byte, error) {
	if n <= payloadChunk {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: truncated payload: %v", ErrProtocol, err)
		}
		return payload, nil
	}
	buf := make([]byte, 0, payloadChunk)
	tmp := make([]byte, payloadChunk)
	for int64(len(buf)) < n {
		k := n - int64(len(buf))
		if k > payloadChunk {
			k = payloadChunk
		}
		if _, err := io.ReadFull(r, tmp[:k]); err != nil {
			return nil, fmt.Errorf("%w: truncated payload: %v", ErrProtocol, err)
		}
		buf = append(buf, tmp[:k]...)
	}
	return buf, nil
}

// readMsg reads a full message of an expected type.
func readMsg(r byteAndStreamReader, wantType byte) ([]byte, error) {
	typ, n, err := readMsgHeader(r)
	if err != nil {
		return nil, err
	}
	payload, err := readPayload(r, n)
	if err != nil {
		return nil, err
	}
	if typ == msgError {
		return nil, &ServerError{Msg: string(payload)}
	}
	if typ != wantType {
		return nil, fmt.Errorf("%w: got message %#x, want %#x", ErrProtocol, typ, wantType)
	}
	return payload, nil
}

// ServerError is an ERROR message received from the peer: the server
// inspected the session and rejected it (unknown version, capacity,
// internal failure). It is a session-level verdict, not a transport fault,
// so retrying the same delta session is pointless; the degradation ladder
// moves to a full-image transfer instead.
type ServerError struct {
	Msg string
}

// Error implements error.
func (e *ServerError) Error() string { return "netupdate: server error: " + e.Msg }

func encodeHello(h hello) []byte {
	buf := make([]byte, 0, 32)
	b := byte(0)
	if h.Updating {
		b |= helloUpdating
	}
	if h.WantFull {
		b |= helloWantFull
	}
	buf = append(buf, b)
	buf = binary.BigEndian.AppendUint32(buf, h.ImageCRC)
	buf = binary.AppendUvarint(buf, uint64(h.ImageLen))
	buf = binary.AppendUvarint(buf, uint64(h.Capacity))
	return buf
}

func decodeHello(p []byte) (hello, error) {
	var h hello
	if len(p) < 5 {
		return h, fmt.Errorf("%w: short hello", ErrProtocol)
	}
	if p[0]&^(helloUpdating|helloWantFull) != 0 {
		return h, fmt.Errorf("%w: unknown hello flags %#x", ErrProtocol, p[0])
	}
	h.Updating = p[0]&helloUpdating != 0
	h.WantFull = p[0]&helloWantFull != 0
	h.ImageCRC = binary.BigEndian.Uint32(p[1:5])
	rest := p[5:]
	v, n := binary.Uvarint(rest)
	if n <= 0 {
		return h, fmt.Errorf("%w: hello image length", ErrProtocol)
	}
	h.ImageLen = int64(v)
	rest = rest[n:]
	v, n = binary.Uvarint(rest)
	if n <= 0 {
		return h, fmt.Errorf("%w: hello capacity", ErrProtocol)
	}
	h.Capacity = int64(v)
	return h, nil
}

func encodeStatus(s status) []byte {
	buf := make([]byte, 0, 8)
	b := byte(0)
	if s.OK {
		b = 1
	}
	buf = append(buf, b)
	buf = binary.BigEndian.AppendUint32(buf, s.ImageCRC)
	return buf
}

func decodeStatus(p []byte) (status, error) {
	if len(p) != 5 {
		return status{}, fmt.Errorf("%w: short status", ErrProtocol)
	}
	return status{OK: p[0] == 1, ImageCRC: binary.BigEndian.Uint32(p[1:5])}, nil
}

func encodeAck(ok bool) []byte {
	if ok {
		return []byte{1}
	}
	return []byte{0}
}

func decodeAck(p []byte) (bool, error) {
	if len(p) != 1 {
		return false, fmt.Errorf("%w: short ack", ErrProtocol)
	}
	return p[0] == 1, nil
}
