package diff

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ipdelta/internal/delta"
)

var algorithms = []Algorithm{NewLinear(), NewGreedy(), Null{}}

// roundTrip diffs and re-applies, failing the test on any mismatch.
func roundTrip(t *testing.T, a Algorithm, ref, version []byte) *delta.Delta {
	t.Helper()
	d, err := a.Diff(ref, version)
	if err != nil {
		t.Fatalf("%s: Diff: %v", a.Name(), err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("%s: invalid delta: %v", a.Name(), err)
	}
	got, err := d.Apply(ref)
	if err != nil {
		t.Fatalf("%s: Apply: %v", a.Name(), err)
	}
	if !bytes.Equal(got, version) {
		t.Fatalf("%s: round trip mismatch: got %d bytes, want %d", a.Name(), len(got), len(version))
	}
	return d
}

func TestByName(t *testing.T) {
	for _, name := range []string{"linear", "greedy", "null"} {
		a, err := ByName(name)
		if err != nil || a.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestNull(t *testing.T) {
	ref := []byte("reference")
	version := []byte("version data")
	d := roundTrip(t, Null{}, ref, version)
	if len(d.Commands) != 1 || d.Commands[0].Op != delta.OpAdd {
		t.Fatalf("null delta = %v", d.Commands)
	}
	// Null must copy the version bytes, not alias them.
	version[0] = 'X'
	if d.Commands[0].Data[0] == 'X' {
		t.Fatal("null delta aliases the caller's version buffer")
	}
}

func TestIdenticalFiles(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefghijklmnop"), 64)
	for _, a := range []Algorithm{NewLinear(), NewGreedy()} {
		d := roundTrip(t, a, data, data)
		if n := d.NumCopies(); n == 0 {
			t.Errorf("%s: identical files found no copies", a.Name())
		}
		if added := d.AddedBytes(); added != 0 {
			t.Errorf("%s: identical files added %d literal bytes", a.Name(), added)
		}
	}
}

func TestEmptyCases(t *testing.T) {
	for _, a := range algorithms {
		roundTrip(t, a, nil, nil)
		roundTrip(t, a, []byte("something"), nil)
		roundTrip(t, a, nil, []byte("new content"))
		roundTrip(t, a, []byte("ab"), []byte("cd")) // both below seed length
	}
}

func TestCompletelyDifferentFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := make([]byte, 4096)
	version := make([]byte, 4096)
	rng.Read(ref)
	rng.Read(version)
	for _, a := range []Algorithm{NewLinear(), NewGreedy()} {
		d := roundTrip(t, a, ref, version)
		// Nearly everything must be adds; random data has no real matches.
		if d.AddedBytes() < int64(len(version))*9/10 {
			t.Errorf("%s: only %d of %d bytes added for unrelated files",
				a.Name(), d.AddedBytes(), len(version))
		}
	}
}

// mutate applies edits (replace, insert, delete) and returns the new
// version.
func mutate(rng *rand.Rand, base []byte, edits int) []byte {
	out := append([]byte(nil), base...)
	for k := 0; k < edits; k++ {
		if len(out) == 0 {
			break
		}
		at := rng.Intn(len(out))
		n := rng.Intn(32) + 1
		switch rng.Intn(3) {
		case 0: // replace
			for j := 0; j < n && at+j < len(out); j++ {
				out[at+j] = byte(rng.Intn(256))
			}
		case 1: // insert
			ins := make([]byte, n)
			rng.Read(ins)
			out = append(out[:at], append(ins, out[at:]...)...)
		case 2: // delete
			end := at + n
			if end > len(out) {
				end = len(out)
			}
			out = append(out[:at], out[end:]...)
		}
	}
	return out
}

func TestSmallEditsCompressWell(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := make([]byte, 64<<10)
	rng.Read(ref)
	version := mutate(rng, ref, 20)
	for _, a := range []Algorithm{NewLinear(), NewGreedy()} {
		d := roundTrip(t, a, ref, version)
		ratio := float64(d.AddedBytes()) / float64(len(version))
		if ratio > 0.10 {
			t.Errorf("%s: added fraction %.2f for 20 edits on 64KiB, want < 0.10", a.Name(), ratio)
		}
	}
}

func TestBlockMove(t *testing.T) {
	// Swap two halves: differencers must express this as copies, not adds.
	rng := rand.New(rand.NewSource(3))
	a := make([]byte, 8<<10)
	b := make([]byte, 8<<10)
	rng.Read(a)
	rng.Read(b)
	ref := append(append([]byte(nil), a...), b...)
	version := append(append([]byte(nil), b...), a...)
	for _, alg := range []Algorithm{NewLinear(), NewGreedy()} {
		d := roundTrip(t, alg, ref, version)
		if d.AddedBytes() > 64 {
			t.Errorf("%s: block move added %d bytes", alg.Name(), d.AddedBytes())
		}
	}
}

func TestLinearOptions(t *testing.T) {
	l := NewLinear(WithSeedLen(2), WithTableBits(4))
	if l.seedLen != 4 {
		t.Errorf("seed length clamped to %d, want 4", l.seedLen)
	}
	if l.tableBits != 8 {
		t.Errorf("table bits clamped to %d, want 8", l.tableBits)
	}
	l = NewLinear(WithSeedLen(32), WithTableBits(40))
	if l.seedLen != 32 || l.tableBits != 26 {
		t.Errorf("options not applied: %+v", l)
	}
	// And the configured differencer still round-trips.
	rng := rand.New(rand.NewSource(4))
	ref := make([]byte, 4096)
	rng.Read(ref)
	roundTrip(t, l, ref, mutate(rng, ref, 5))
}

func TestGreedyOptions(t *testing.T) {
	g := NewGreedy(WithGreedySeedLen(2), WithMaxChain(0))
	if g.seedLen != 4 || g.maxChain != 0 {
		t.Errorf("options not applied: %+v", g)
	}
	rng := rand.New(rand.NewSource(5))
	ref := make([]byte, 4096)
	rng.Read(ref)
	roundTrip(t, g, ref, mutate(rng, ref, 5))
}

func TestGreedyFindsLongerMatchesThanFirstHit(t *testing.T) {
	// Reference contains a short and a long occurrence of a pattern; the
	// greedy algorithm must choose the long one.
	pat := bytes.Repeat([]byte("Z"), 8)
	long := append(append([]byte(nil), pat...), bytes.Repeat([]byte("Q"), 100)...)
	ref := append(append([]byte(nil), pat...), []byte("diverges-now-xxxxxxxxxxxxxxxx")...)
	ref = append(ref, long...)
	version := long
	d := roundTrip(t, NewGreedy(), ref, version)
	if d.NumCopies() == 0 {
		t.Fatal("no copies found")
	}
	first := d.Commands[0]
	if first.Op != delta.OpCopy || first.Length < int64(len(long)) {
		t.Fatalf("first command %v does not cover the long match", first)
	}
}

func TestKRHasherRolling(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	const p = 7
	h1 := newKRHasher(p)
	h1.init(data[:p])
	for k := 0; k+p < len(data); k++ {
		rolled := h1.roll(data[k], data[k+p])
		h2 := newKRHasher(p)
		fresh := h2.init(data[k+1 : k+1+p])
		if rolled != fresh {
			t.Fatalf("rolled hash at %d = %x, fresh = %x", k+1, rolled, fresh)
		}
	}
}

func TestQuickRoundTripMutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]byte, rng.Intn(8<<10)+1)
		// Mix of compressible and random content.
		if seed%2 == 0 {
			chunk := make([]byte, 64)
			rng.Read(chunk)
			for at := 0; at < len(base); at += 64 {
				copy(base[at:], chunk)
			}
		} else {
			rng.Read(base)
		}
		version := mutate(rng, base, rng.Intn(12))
		for _, a := range algorithms {
			d, err := a.Diff(base, version)
			if err != nil {
				return false
			}
			if err := d.Validate(); err != nil {
				return false
			}
			got, err := d.Apply(base)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, version) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffOutputIsWriteOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := make([]byte, 32<<10)
	rng.Read(ref)
	version := mutate(rng, ref, 40)
	for _, a := range algorithms {
		d, err := a.Diff(ref, version)
		if err != nil {
			t.Fatal(err)
		}
		var next int64
		for k, c := range d.Commands {
			if c.To != next {
				t.Fatalf("%s: command %d writes at %d, expected %d", a.Name(), k, c.To, next)
			}
			next += c.Length
		}
		if next != d.VersionLen {
			t.Fatalf("%s: commands cover %d bytes of %d", a.Name(), next, d.VersionLen)
		}
	}
}
