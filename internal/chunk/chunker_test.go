package chunk

import (
	"bytes"
	"math/rand"
	"testing"
)

// splitAll returns the chunk boundaries (cumulative end offsets) and
// chunk copies of data.
func splitAll(t testing.TB, c *Chunker, data []byte) (cuts []int, chunks [][]byte) {
	t.Helper()
	off := 0
	c.Split(data, func(ch []byte) {
		off += len(ch)
		cuts = append(cuts, off)
		chunks = append(chunks, append([]byte(nil), ch...))
	})
	return cuts, chunks
}

func TestChunkerBoundsAndCoverage(t *testing.T) {
	c, err := NewChunker(Params{})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Params()
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	cuts, chunks := splitAll(t, c, data)
	if len(cuts) == 0 || cuts[len(cuts)-1] != len(data) {
		t.Fatalf("chunks do not cover the input: %v", cuts)
	}
	var rejoined []byte
	for k, ch := range chunks {
		if len(ch) > p.Max {
			t.Fatalf("chunk %d exceeds Max: %d > %d", k, len(ch), p.Max)
		}
		if k < len(chunks)-1 && len(ch) < p.Min {
			t.Fatalf("non-final chunk %d below Min: %d < %d", k, len(ch), p.Min)
		}
		rejoined = append(rejoined, ch...)
	}
	if !bytes.Equal(rejoined, data) {
		t.Fatal("concatenated chunks do not reproduce the input")
	}
	// The average should land within a factor of two of the target on
	// random data — a sanity bound, not a statistical claim.
	avg := len(data) / len(chunks)
	if avg < p.Avg/2 || avg > p.Avg*2 {
		t.Fatalf("average chunk size %d is far from target %d", avg, p.Avg)
	}
}

func TestChunkerDeterministic(t *testing.T) {
	c, _ := NewChunker(Params{})
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(7)).Read(data)
	cuts1, _ := splitAll(t, c, data)
	cuts2, _ := splitAll(t, c, data)
	if len(cuts1) != len(cuts2) {
		t.Fatal("same input produced different cut counts")
	}
	for i := range cuts1 {
		if cuts1[i] != cuts2[i] {
			t.Fatalf("cut %d differs: %d vs %d", i, cuts1[i], cuts2[i])
		}
	}
}

func TestChunkerParamValidation(t *testing.T) {
	bad := []Params{
		{Min: 16, Avg: 8 << 10, Max: 64 << 10},    // Min too small
		{Min: 4 << 10, Avg: 2 << 10, Max: 64000},  // Min > Avg
		{Min: 2 << 10, Avg: 64 << 10, Max: 8192},  // Avg > Max
		{Min: 2 << 10, Avg: 3000, Max: 64 << 10},  // Avg not a power of two
		{Min: -1, Avg: 8 << 10, Max: 64 << 10},    // negative
		{Min: 2 << 10, Avg: 8 << 10, Max: -1},     // negative max
	}
	for _, p := range bad {
		if _, err := NewChunker(p); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
	if _, err := NewChunker(Params{Min: 512, Avg: 4096, Max: 16 << 10}); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

// TestSplitterMatchesSplit drives the streaming splitter with every
// awkward write size and asserts byte-identical chunking with the
// in-memory Split — the streaming face must not change cut points.
func TestSplitterMatchesSplit(t *testing.T) {
	c, _ := NewChunker(Params{Min: 256, Avg: 1024, Max: 4096})
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(3)).Read(data)
	wantCuts, wantChunks := splitAll(t, c, data)

	for _, writeSize := range []int{1, 7, 255, 256, 4096, 4097, 64 << 10, len(data)} {
		var got [][]byte
		s := NewSplitter(c, func(ch []byte) {
			got = append(got, append([]byte(nil), ch...))
		})
		for off := 0; off < len(data); off += writeSize {
			end := off + writeSize
			if end > len(data) {
				end = len(data)
			}
			if _, err := s.Write(data[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		s.Flush()
		if len(got) != len(wantCuts) {
			t.Fatalf("write size %d: %d chunks, want %d", writeSize, len(got), len(wantCuts))
		}
		for k := range got {
			if !bytes.Equal(got[k], wantChunks[k]) {
				t.Fatalf("write size %d: chunk %d differs", writeSize, k)
			}
		}
	}
}

// TestChunkerLocality is the property the whole dedup win rests on: for
// a random insert, delete, or overwrite at a random offset, every cut
// point outside a bounded window around the edit is byte-identical
// between the original and edited streams. Cut decisions depend only on
// the bytes since the previous cut, so the streams must resynchronize
// within a few Max-size chunks of the edit.
func TestChunkerLocality(t *testing.T) {
	c, _ := NewChunker(Params{Min: 512, Avg: 2048, Max: 8192})
	p := c.Params()
	// Resync is content-probabilistic; W = 8 max-chunks of slack on each
	// side is far beyond observed resync distance on random data, and the
	// seeds are fixed so the test is deterministic.
	window := 8 * p.Max
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 512<<10)
	rng.Read(data)

	for trial := 0; trial < 60; trial++ {
		editPos := rng.Intn(len(data) - 1024)
		editLen := 1 + rng.Intn(700)
		var edited []byte
		var shift int // how much offsets after the edit moved
		switch trial % 3 {
		case 0: // insert
			ins := make([]byte, editLen)
			rng.Read(ins)
			edited = append(append(append([]byte(nil), data[:editPos]...), ins...), data[editPos:]...)
			shift = editLen
		case 1: // delete
			edited = append(append([]byte(nil), data[:editPos]...), data[editPos+editLen:]...)
			shift = -editLen
		default: // overwrite
			edited = append([]byte(nil), data...)
			rng.Read(edited[editPos : editPos+editLen])
			shift = 0
		}
		origCuts, _ := splitAll(t, c, data)
		editCuts, _ := splitAll(t, c, edited)

		// Cuts strictly before the edit window must be identical.
		var origBefore, editBefore []int
		for _, x := range origCuts {
			if x < editPos-window {
				origBefore = append(origBefore, x)
			}
		}
		for _, x := range editCuts {
			if x < editPos-window {
				editBefore = append(editBefore, x)
			}
		}
		if len(origBefore) != len(editBefore) {
			t.Fatalf("trial %d: cut count before edit differs (%d vs %d)", trial, len(origBefore), len(editBefore))
		}
		for i := range origBefore {
			if origBefore[i] != editBefore[i] {
				t.Fatalf("trial %d: pre-edit cut %d moved: %d -> %d", trial, i, origBefore[i], editBefore[i])
			}
		}
		// Cuts after the edit window must be identical modulo the length
		// shift. Compare the sets (as sorted slices).
		after := func(cuts []int, lo int, delta int) []int {
			var out []int
			for _, x := range cuts {
				if x > lo {
					out = append(out, x-delta)
				}
			}
			return out
		}
		origAfter := after(origCuts, editPos+editLen+window, 0)
		editAfter := after(editCuts, editPos+editLen+window+shift, shift)
		if len(origAfter) != len(editAfter) {
			t.Fatalf("trial %d (edit at %d len %d shift %d): post-edit cut count differs (%d vs %d)",
				trial, editPos, editLen, shift, len(origAfter), len(editAfter))
		}
		for i := range origAfter {
			if origAfter[i] != editAfter[i] {
				t.Fatalf("trial %d: post-edit cut %d differs: %d vs %d", trial, i, origAfter[i], editAfter[i])
			}
		}
	}
}

// TestSplitAllocs gates the cut kernel: splitting with a no-op emitter
// performs no allocations in steady state.
func TestSplitAllocs(t *testing.T) {
	c, _ := NewChunker(Params{})
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(9)).Read(data)
	sink := 0
	emit := func(ch []byte) { sink += len(ch) }
	if n := testing.AllocsPerRun(50, func() { c.Split(data, emit) }); n > 0 {
		t.Fatalf("Split allocates %v per run", n)
	}
	if sink == 0 {
		t.Fatal("emitter never ran")
	}
}

func BenchmarkChunkSplit(b *testing.B) {
	c, _ := NewChunker(Params{})
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		c.Split(data, func(ch []byte) { sink += len(ch) })
	}
	_ = sink
}
