// Package deprecatedapi flags calls to legacy entry points that predate
// the options-based APIs. The convert shims ConvertInPlaceWithPolicy and
// ConvertInPlaceScratch survive only as compatibility wrappers over
// ConvertInPlace(d, ref, opts...), and the netupdate v1 single-stream
// surface — UpdateDevice, RunSession with SessionOptions, NewRunner with
// RunnerConfig — survives only as deprecated wrappers over the shared
// Config options (Run, NewClient). New code that reaches for any of them
// forks the call surface the observability layer instruments, so the
// analyzer steers every caller to the one maintained path.
//
// Flagged:
//
//	ipdelta.ConvertInPlaceWithPolicy(d, ref, p)   // use WithPolicy(p)
//	ipdelta.ConvertInPlaceScratch(d, ref, n)      // use WithScratchBudget(n)
//	netupdate.UpdateDevice(conn, dev)             // use Run(ctx, conn, dev)
//	netupdate.RunSession(ctx, conn, dev, opts)    // use Run with options
//	netupdate.NewRunner(cfg)                      // use NewClient with options
//
// Where the legacy configuration is a keyed composite literal the
// analyzer attaches a mechanical SuggestedFix translating each retired
// SessionOptions / RunnerConfig field to its With* option. Only
// package-level functions defined in the matched packages are flagged, so
// an unrelated method or helper that happens to share a name is left
// alone. The shims' own declarations are not calls and are never flagged;
// a caller that must stay on the legacy spelling (for example a pinned
// compatibility test) can carry an //ipvet:ignore deprecatedapi
// suppression.
package deprecatedapi

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"ipdelta/internal/lint/analysis"
)

// TargetPattern selects the package whose deprecated convert entry
// points are checked: the module root.
var TargetPattern = regexp.MustCompile(`(^|/)ipdelta$`)

// netupdatePattern selects the package carrying the deprecated v1
// single-stream session API.
var netupdatePattern = regexp.MustCompile(`(^|/)netupdate$`)

// convertReplacements maps each deprecated convert function to the
// option-based call that supersedes it and the option constructor a -fix
// rewrite uses.
var convertReplacements = map[string]struct {
	doc    string
	option string
}{
	"ConvertInPlaceWithPolicy": {"ConvertInPlace with WithPolicy(p)", "WithPolicy"},
	"ConvertInPlaceScratch":    {"ConvertInPlace with WithScratchBudget(n)", "WithScratchBudget"},
}

// sessionFieldOptions maps each retired SessionOptions / RunnerConfig
// field to the shared Config option that replaced it.
var sessionFieldOptions = map[string]string{
	"MessageTimeout":    "WithMessageTimeout",
	"RequestFull":       "WithRequestFull",
	"MaxAttempts":       "WithMaxAttempts",
	"BaseBackoff":       "WithBaseBackoff",
	"MaxBackoff":        "WithMaxBackoff",
	"FullFallbackAfter": "WithFullFallbackAfter",
	"Seed":              "WithSeed",
	"Sleep":             "WithSleep",
	"Observer":          "WithObserver",
	"Logger":            "WithLogger",
}

// netupdateReplacements maps each deprecated v1 entry point to its
// successor. configArg is the index of the legacy config struct argument
// (-1 when the function takes none).
var netupdateReplacements = map[string]struct {
	doc       string
	successor string
	configArg int
}{
	"UpdateDevice": {"Run(ctx, conn, dev, opts...)", "", -1},
	"RunSession":   {"Run with the shared Config options (WithMessageTimeout, WithRequestFull, ...)", "Run", 3},
	"NewRunner":    {"NewClient with the shared Config options (WithMaxAttempts, WithBaseBackoff, ...)", "NewClient", 0},
}

// Analyzer is the deprecatedapi analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "deprecatedapi",
	Doc: "flags calls to deprecated pre-options APIs: the ConvertInPlace shims " +
		"and the netupdate v1 session surface (UpdateDevice, RunSession, NewRunner)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		qualifier := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
			qualifier = types.ExprString(fun.X) + "."
		default:
			return true
		}
		fn, ok := pass.ObjectOf(id).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		// Methods on some local type that reuse a deprecated name are not
		// the package-level shims.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		switch {
		case TargetPattern.MatchString(fn.Pkg().Path()):
			checkConvert(pass, call, id, qualifier, fn)
		case netupdatePattern.MatchString(fn.Pkg().Path()):
			checkNetupdate(pass, call, id, qualifier, fn)
		}
		return true
	})
	return nil, nil
}

// checkConvert flags the deprecated ConvertInPlace* shims.
func checkConvert(pass *analysis.Pass, call *ast.CallExpr, id *ast.Ident, qualifier string, fn *types.Func) {
	repl, ok := convertReplacements[id.Name]
	if !ok {
		return
	}
	d := analysis.Diagnostic{
		Pos: call.Pos(),
		End: call.End(),
		Message: fmt.Sprintf("%s.%s is deprecated; use %s",
			fn.Pkg().Name(), fn.Name(), repl.doc),
	}
	// Both shims are ConvertInPlaceX(d, ref, x); the mechanical rewrite
	// renames the callee and wraps the third argument in the superseding
	// option, qualified the way the call site qualifies the shim.
	if len(call.Args) == 3 {
		last := call.Args[2]
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message: fmt.Sprintf("call ConvertInPlace with %s(...)", repl.option),
			TextEdits: []analysis.TextEdit{
				{Pos: id.Pos(), End: id.End(), NewText: []byte("ConvertInPlace")},
				{Pos: last.Pos(), End: last.Pos(), NewText: []byte(qualifier + repl.option + "(")},
				{Pos: last.End(), End: last.End(), NewText: []byte(")")},
			},
		}}
	}
	pass.Report(d)
}

// checkNetupdate flags the deprecated v1 session entry points and, when
// the legacy config argument is a keyed composite literal, rewrites it
// field by field into the superseding With* options.
func checkNetupdate(pass *analysis.Pass, call *ast.CallExpr, id *ast.Ident, qualifier string, fn *types.Func) {
	repl, ok := netupdateReplacements[id.Name]
	if !ok {
		return
	}
	d := analysis.Diagnostic{
		Pos: call.Pos(),
		End: call.End(),
		Message: fmt.Sprintf("%s.%s is deprecated; use %s",
			fn.Pkg().Name(), fn.Name(), repl.doc),
	}
	if repl.configArg >= 0 && len(call.Args) == repl.configArg+1 {
		if lit, ok := ast.Unparen(call.Args[repl.configArg]).(*ast.CompositeLit); ok {
			if opts, ok := optionsFor(lit, qualifier); ok {
				edits := []analysis.TextEdit{
					{Pos: id.Pos(), End: id.End(), NewText: []byte(repl.successor)},
				}
				if opts == "" && repl.configArg > 0 {
					// An empty legacy struct maps to no options at all:
					// drop the argument and its separating comma.
					prev := call.Args[repl.configArg-1]
					edits = append(edits, analysis.TextEdit{Pos: prev.End(), End: lit.End()})
				} else {
					edits = append(edits, analysis.TextEdit{Pos: lit.Pos(), End: lit.End(), NewText: []byte(opts)})
				}
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message: fmt.Sprintf("call %s with the equivalent With* options", repl.successor),
					TextEdits: edits,
				}}
			}
		}
	}
	pass.Report(d)
}

// optionsFor translates a keyed SessionOptions / RunnerConfig composite
// literal into the equivalent option-call list. It declines (ok=false)
// literals with positional elements or fields it has no mapping for, so
// the rewrite never silently drops configuration.
func optionsFor(lit *ast.CompositeLit, qualifier string) (string, bool) {
	var parts []string
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return "", false
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return "", false
		}
		opt, ok := sessionFieldOptions[key.Name]
		if !ok {
			return "", false
		}
		parts = append(parts, qualifier+opt+"("+types.ExprString(kv.Value)+")")
	}
	return strings.Join(parts, ", "), true
}
