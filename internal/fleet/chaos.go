package fleet

import (
	"context"
	"fmt"
	"hash/crc32"
	"log/slog"
	"math/rand/v2"
	"net"
	"time"

	"ipdelta/internal/device"
	"ipdelta/internal/netupdate"
	"ipdelta/internal/obs"
)

// ChaosDeviceSpec places one device in a chaos rollout.
type ChaosDeviceSpec struct {
	// Release indexes the version the device currently runs. -1 means the
	// device runs an image the server has never seen (a corrupted or
	// sideloaded build), which forces the full-image fallback path.
	Release int
	// CapacitySlack is extra flash beyond max(installed, new) as a
	// fraction, as in DeviceSpec.
	CapacitySlack float64
	// PowerCutEveryOps arms a recurring storage power cut: every n-th
	// flash operation fails mid-update. Zero disables.
	PowerCutEveryOps int64
	// FlashWriteFailProb makes each flash write fail with this
	// probability (transient flaky-flash faults).
	FlashWriteFailProb float64
}

// ChaosConfig describes a whole-fleet rollout under combined storage and
// network fault injection. All randomness is derived from Seed, so a
// failing run replays exactly.
type ChaosConfig struct {
	// Releases is the version history, oldest first; the last entry is
	// distributed.
	Releases [][]byte
	// Devices is the fleet.
	Devices []ChaosDeviceSpec
	// Seed feeds every fault injector and backoff jitter in the run.
	Seed uint64
	// MuxSessions runs every device's sessions over protocol v2: one
	// framed multiplexed connection per device, each attempt on a fresh
	// stream, with the fault injector wrapping the stream instead of the
	// connection. False keeps the v1 leg: a fresh single-stream pipe per
	// attempt.
	MuxSessions bool
	// DropRate is the per-operation probability that a connection dies.
	DropRate float64
	// CorruptRate is the per-read probability of a flipped byte.
	CorruptRate float64
	// SpikeRate/Spike inject latency spikes (exercising MessageTimeout).
	SpikeRate float64
	Spike     time.Duration
	// MaxAttempts bounds session attempts per device (default 8).
	MaxAttempts int
	// FullFallbackAfter degrades a device to a full-image transfer after
	// this many consecutive failed delta sessions (default 3).
	FullFallbackAfter int
	// MessageTimeout is the per-I/O deadline inside sessions.
	MessageTimeout time.Duration
	// BaseBackoff seeds the retry backoff schedule (default 100ms; tests
	// use ~1ms to keep chaos runs fast).
	BaseBackoff time.Duration
	// WorkBufSize is the device working buffer (default
	// device.DefaultWorkBufSize).
	WorkBufSize int
	// ArchiveTier, when non-nil, first routes the release history through
	// an erasure-coded archive tier under seeded node-level faults: the
	// images the server distributes are re-materialized through degraded
	// k-of-n reads after scrub/repair and node kills.
	ArchiveTier *ArchiveTierConfig
	// Observer, when non-nil, receives the whole run's metrics: the shared
	// server's session counters, every device runner's attempt/retry/
	// degradation counters, and fleet rollup counters
	// (ipdelta_fleet_devices_total, _converged_total, _fallbacks_total,
	// _attempts_total).
	Observer *obs.Registry
	// Logger receives per-device outcome lines (and is passed to the
	// server and runners for their session lines). Nil discards.
	Logger *slog.Logger
}

// ChaosDeviceReport is one device's rollout outcome.
type ChaosDeviceReport struct {
	Device    int
	Attempts  int
	FellBack  bool
	Converged bool
	Err       string
}

// ChaosOutcome aggregates a chaos rollout.
type ChaosOutcome struct {
	Seed          uint64
	Devices       int
	Converged     int
	Fallbacks     int
	TotalAttempts int
	BytesOnWire   int64
	Makespan      time.Duration
	PerDevice     []ChaosDeviceReport
	// Archive is non-nil when the run included an archive tier leg.
	Archive *ArchiveTierReport
}

// String renders the outcome the way the chaos harness prints it.
func (o *ChaosOutcome) String() string {
	s := fmt.Sprintf("chaos seed=%d: %d/%d devices converged, %d fallbacks, %d attempts, %d bytes on wire, makespan %v",
		o.Seed, o.Converged, o.Devices, o.Fallbacks, o.TotalAttempts, o.BytesOnWire, o.Makespan)
	if o.Archive != nil {
		s += "; " + o.Archive.String()
	}
	return s
}

// deviceSeed derives a per-device fault seed from the run seed.
func deviceSeed(seed uint64, di int) uint64 {
	return seed + uint64(di)*0x9E3779B97F4A7C15
}

// RunChaos drives a whole-fleet rollout through combined storage
// (device.FaultyStore) and network (netupdate.FlakyConn) fault injection,
// retrying each device with the session runner until it converges or
// exhausts its budget. Sessions run over synchronous in-memory pipes, so
// each device's fault sequence is a pure function of the seed.
func RunChaos(ctx context.Context, cfg ChaosConfig) (*ChaosOutcome, error) {
	if len(cfg.Releases) == 0 {
		return nil, fmt.Errorf("fleet: no releases")
	}
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("fleet: no devices")
	}
	var archRep *ArchiveTierReport
	if cfg.ArchiveTier != nil {
		served, rep, err := runArchiveTier(cfg)
		if err != nil {
			return nil, err
		}
		// Every image below — device baselines and server content alike —
		// now comes from degraded tier reads, not the original history.
		cfg.Releases = served
		archRep = rep
		obs.OrNop(cfg.Logger).Info("archive tier",
			"component", "fleet", "report", rep.String())
	}
	target := cfg.Releases[len(cfg.Releases)-1]
	targetCRC := crc32.ChecksumIEEE(target)
	srv, err := netupdate.NewServer(cfg.Releases,
		netupdate.WithObserver(cfg.Observer),
		netupdate.WithLogger(cfg.Logger))
	if err != nil {
		return nil, err
	}
	workBuf := cfg.WorkBufSize
	if workBuf <= 0 {
		workBuf = device.DefaultWorkBufSize
	}

	out := &ChaosOutcome{Seed: cfg.Seed, Devices: len(cfg.Devices), Archive: archRep}
	out.PerDevice = make([]ChaosDeviceReport, len(cfg.Devices))
	start := time.Now()
	errs := make(chan error, len(cfg.Devices))
	for di, spec := range cfg.Devices {
		go func(di int, spec ChaosDeviceSpec) {
			rep, err := runChaosDevice(ctx, cfg, srv, spec, di, targetCRC, int64(len(target)), workBuf)
			out.PerDevice[di] = rep
			errs <- err
		}(di, spec)
	}
	var firstErr error
	for range cfg.Devices {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	out.Makespan = time.Since(start)
	out.BytesOnWire = srv.ServedBytes()
	log := obs.OrNop(cfg.Logger)
	for _, rep := range out.PerDevice {
		out.TotalAttempts += rep.Attempts
		if rep.FellBack {
			out.Fallbacks++
		}
		if rep.Converged {
			out.Converged++
		}
		log.Info("device rollout",
			"component", "fleet", "device", rep.Device,
			"outcome", deviceOutcome(rep), "attempt", rep.Attempts,
			"fellback", rep.FellBack, "err", rep.Err)
	}
	if r := cfg.Observer; r != nil {
		r.Counter("ipdelta_fleet_devices_total").Add(int64(out.Devices))
		r.Counter("ipdelta_fleet_converged_total").Add(int64(out.Converged))
		r.Counter("ipdelta_fleet_fallbacks_total").Add(int64(out.Fallbacks))
		r.Counter("ipdelta_fleet_attempts_total").Add(int64(out.TotalAttempts))
	}
	return out, nil
}

// deviceOutcome labels one device's rollout for the structured log.
func deviceOutcome(rep ChaosDeviceReport) string {
	if rep.Converged {
		return "converged"
	}
	return "failed"
}

// runChaosDevice rolls one device forward under its fault profile. The
// returned error covers configuration problems only; session failures land
// in the report.
func runChaosDevice(ctx context.Context, cfg ChaosConfig, srv *netupdate.Server, spec ChaosDeviceSpec, di int, targetCRC uint32, targetLen int64, workBuf int) (ChaosDeviceReport, error) {
	rep := ChaosDeviceReport{Device: di}
	seed := deviceSeed(cfg.Seed, di)

	var img []byte
	switch {
	case spec.Release >= 0 && spec.Release < len(cfg.Releases):
		img = cfg.Releases[spec.Release]
	case spec.Release == -1:
		img = strangerImage(cfg.Releases[0], seed)
	default:
		return rep, fmt.Errorf("fleet: device %d runs unknown release %d", di, spec.Release)
	}
	capacity := maxI64(int64(len(img)), targetLen)
	capacity += int64(float64(capacity) * spec.CapacitySlack)
	flash, err := device.NewFlash(img, capacity)
	if err != nil {
		return rep, err
	}
	store := device.NewFaultyStore(flash)
	if spec.PowerCutEveryOps > 0 {
		store.FailEveryOps(spec.PowerCutEveryOps)
	}
	if spec.FlashWriteFailProb > 0 {
		store.WithRandomWriteFailures(spec.FlashWriteFailProb, int64(seed))
	}
	dev := device.New(store, int64(len(img)), workBuf)

	// Each attempt gets its own synchronous conduit to the shared server,
	// faulted with a per-attempt seed so retries see fresh (but
	// reproducible) network weather. On the v1 leg that conduit is a
	// whole pipe; on the mux leg it is a fresh stream on the device's one
	// multiplexed connection, so a fault kills the stream and the
	// connection shrugs it off.
	dials := 0
	profile := func() netupdate.FaultProfile {
		dials++
		return netupdate.FaultProfile{
			Seed:        seed + uint64(dials),
			OpFaultRate: cfg.DropRate,
			CorruptRate: cfg.CorruptRate,
			SpikeRate:   cfg.SpikeRate,
			Spike:       cfg.Spike,
		}
	}
	var dial netupdate.DialFunc
	if cfg.MuxSessions {
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			_ = srv.HandleConn(server) // returns when the mux connection ends
		}()
		cc, err := netupdate.NewClientConn(client)
		if err != nil {
			client.Close()
			return rep, err
		}
		defer cc.Close()
		dial = func(ctx context.Context) (net.Conn, error) {
			st, err := cc.OpenStream(ctx)
			if err != nil {
				return nil, err
			}
			return netupdate.NewFlakyConn(st, profile()), nil
		}
	} else {
		dial = func(ctx context.Context) (net.Conn, error) {
			client, server := net.Pipe()
			go func() {
				defer server.Close()
				_ = srv.HandleConn(server) // per-session errors end that session only
			}()
			return netupdate.NewFlakyConn(client, profile()), nil
		}
	}
	runner := netupdate.NewClient(
		netupdate.WithMaxAttempts(cfg.MaxAttempts),
		netupdate.WithBaseBackoff(cfg.BaseBackoff),
		netupdate.WithMessageTimeout(cfg.MessageTimeout),
		netupdate.WithFullFallbackAfter(cfg.FullFallbackAfter),
		netupdate.WithSeed(seed),
		netupdate.WithObserver(cfg.Observer),
		netupdate.WithLogger(cfg.Logger),
	)
	res, err := runner.Run(ctx, dial, dev)
	rep.Attempts = res.Attempts
	rep.FellBack = res.FellBack
	if err != nil {
		rep.Err = err.Error()
		return rep, nil
	}
	// Disarm the fault injection so verification reads the flash cleanly.
	store.FailEveryOps(0)
	store.WithRandomWriteFailures(0, 0)
	got := dev.Image()
	rep.Converged = dev.ImageLen() == targetLen && crc32.ChecksumIEEE(got) == targetCRC
	if !rep.Converged {
		rep.Err = fmt.Sprintf("image mismatch: len=%d crc=%08x want len=%d crc=%08x",
			len(got), crc32.ChecksumIEEE(got), targetLen, targetCRC)
	}
	return rep, nil
}

// strangerImage derives an image the server has never seen from the oldest
// release, deterministically from seed.
func strangerImage(base []byte, seed uint64) []byte {
	img := append([]byte(nil), base...)
	rng := rand.New(rand.NewPCG(seed, 2))
	for k := 0; k < 64 && k < len(img); k++ {
		img[rng.IntN(len(img))] ^= byte(1 + rng.IntN(255))
	}
	return img
}
