package netupdate

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"ipdelta/internal/device"
	"ipdelta/internal/obs"
)

// DialFunc opens a fresh connection for one session attempt. The runner
// closes whatever it returns.
type DialFunc func(ctx context.Context) (net.Conn, error)

// RunnerConfig tunes the retrying update session runner.
//
// Deprecated: use NewClient with the shared Config options
// (WithMaxAttempts, WithBaseBackoff, WithMaxBackoff, WithMessageTimeout,
// WithFullFallbackAfter, WithSeed, WithSleep, WithObserver, WithLogger).
type RunnerConfig struct {
	// MaxAttempts bounds total session attempts (default 8).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 5s).
	MaxBackoff time.Duration
	// MessageTimeout is the per-I/O deadline inside each session; zero
	// disables deadlines.
	MessageTimeout time.Duration
	// FullFallbackAfter is how many consecutive failed delta sessions the
	// runner tolerates before degrading to a full-image transfer. Session
	//-level rejections (server errors, CRC mismatches) degrade
	// immediately. Zero uses the default (3); negative disables the
	// fallback entirely.
	FullFallbackAfter int
	// Seed feeds the backoff jitter RNG, for reproducible schedules.
	Seed uint64
	// Sleep overrides the inter-attempt wait, letting tests collapse the
	// backoff schedule. Nil uses a context-aware timer.
	Sleep func(ctx context.Context, d time.Duration) error
	// Observer, when non-nil, receives client-side metrics: runs,
	// attempts, retries, degradations to full image, bytes received, and
	// per-attempt latency. Handles resolve once in NewRunner.
	Observer *obs.Registry
	// Logger receives per-attempt structured log lines. Nil discards.
	Logger *slog.Logger
}

// asConfig maps the retired struct onto the shared Config.
func (c RunnerConfig) asConfig() Config {
	return Config{
		MaxAttempts:       c.MaxAttempts,
		BaseBackoff:       c.BaseBackoff,
		MaxBackoff:        c.MaxBackoff,
		MessageTimeout:    c.MessageTimeout,
		FullFallbackAfter: c.FullFallbackAfter,
		Seed:              c.Seed,
		Sleep:             c.Sleep,
		Observer:          c.Observer,
		Logger:            c.Logger,
	}
}

// RunReport summarizes a runner invocation: how hard the update was, not
// just whether it landed.
type RunReport struct {
	// Result is the final successful session's result.
	Result Result
	// Attempts counts sessions started, including the successful one.
	Attempts int
	// FellBack is true when the runner degraded to a full-image transfer.
	FellBack bool
	// FailureLog holds one line per failed attempt, for chaos forensics.
	FailureLog []string
}

// Client drives update sessions to convergence: transient faults are
// retried with capped exponential backoff and seeded jitter (each retry
// resumes the device where the last attempt died), and persistent delta
// failures degrade to a full-image transfer. A Client may be shared by
// concurrent Run calls.
type Client struct {
	cfg Config
	met *clientMetrics
	log *slog.Logger

	mu  sync.Mutex
	rng *rand.Rand
}

// Runner is the historical name for Client.
//
// Deprecated: use Client (built with NewClient). Retained as an alias so
// pre-v2 call sites keep compiling unchanged.
type Runner = Client

// NewClient builds a retrying update client from the shared Config
// options (unset knobs take defaults).
func NewClient(opts ...Option) *Client {
	var cfg Config
	cfg.apply(opts)
	return newClient(cfg)
}

func newClient(cfg Config) *Client {
	cfg = cfg.withClientDefaults()
	cl := &Client{cfg: cfg, log: obs.OrNop(cfg.Logger), rng: rand.New(rand.NewPCG(cfg.Seed, 1))}
	if cfg.Observer != nil {
		cl.met = resolveClientMetrics(cfg.Observer)
	}
	return cl
}

// NewRunner builds a Runner from the retired RunnerConfig struct.
//
// Deprecated: use NewClient with the shared Config options.
func NewRunner(cfg RunnerConfig) *Runner {
	return newClient(cfg.asConfig())
}

// errClass buckets session errors by the right response.
type errClass int

const (
	// classTransient: the transport or the device hiccuped; the same
	// session, retried, can succeed (and resumes where it died).
	classTransient errClass = iota
	// classDegrade: the delta path itself was rejected — server verdict,
	// resume mismatch, corrupted image. Retrying the same delta is
	// pointless; the full-image ladder rung is next.
	classDegrade
	// classFatal: no retry or degradation can help (image cannot fit,
	// context cancelled).
	classFatal
)

// classify maps a session error to its retry class.
func classify(err error) errClass {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return classFatal
	case errors.Is(err, device.ErrImageTooLarge), errors.Is(err, device.ErrScratchBudget):
		return classFatal
	case errors.Is(err, device.ErrPowerCut), errors.Is(err, device.ErrTransientIO):
		return classTransient
	case errors.Is(err, ErrImageRejected),
		errors.Is(err, device.ErrResumeMismatch),
		errors.Is(err, device.ErrWrongVersion),
		errors.Is(err, device.ErrNotInPlace):
		return classDegrade
	}
	var se *ServerError
	if errors.As(err, &se) {
		return classDegrade
	}
	// Everything else — injected faults, timeouts, truncated or corrupt
	// streams (protocol and codec errors), dial failures — is a transport
	// problem: retry.
	return classTransient
}

// Run updates dev to the server's current version, dialling a fresh
// connection per attempt, until it converges, turns out to be up to date,
// exhausts the attempt budget, or hits a fatal error.
func (ru *Client) Run(ctx context.Context, dial DialFunc, dev *device.Device) (RunReport, error) {
	if ru.met != nil {
		ru.met.runs.Inc()
	}
	rep, err := ru.run(ctx, dial, dev)
	if ru.met != nil {
		if err != nil {
			ru.met.runFailures.Inc()
		} else {
			ru.met.bytesReceived.Add(rep.Result.DeltaBytes)
			if rep.Result.UpToDate {
				ru.met.upToDate.Inc()
			}
			if rep.Result.FullImage {
				ru.met.fullTransfers.Inc()
			}
		}
	}
	return rep, err
}

func (ru *Client) run(ctx context.Context, dial DialFunc, dev *device.Device) (RunReport, error) {
	var rep RunReport
	full := false
	if p, ok := dev.PendingUpdate(); ok && p.Full {
		// A previous run already degraded; resume the full install.
		full = true
		rep.FellBack = true
	}
	degrade := func() {
		full = true
		rep.FellBack = true
		if ru.met != nil {
			ru.met.degradations.Inc()
		}
	}
	deltaFailures := 0
	var lastErr error
	for attempt := 1; attempt <= ru.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		rep.Attempts = attempt
		if ru.met != nil {
			ru.met.attempts.Inc()
			if attempt > 1 {
				ru.met.retries.Inc()
			}
		}
		res, err := ru.attempt(ctx, dial, dev, full)
		if err == nil {
			rep.Result = res
			ru.log.Info("update converged",
				"component", "client", "outcome", "ok",
				"attempt", attempt, "bytes", res.DeltaBytes, "full", res.FullImage)
			return rep, nil
		}
		lastErr = err
		ru.log.Warn("attempt failed",
			"component", "client", "outcome", "error",
			"attempt", attempt, "full", full, "err", err)
		rep.FailureLog = append(rep.FailureLog,
			fmt.Sprintf("attempt %d (full=%v): %v", attempt, full, err))
		switch classify(err) {
		case classFatal:
			return rep, err
		case classDegrade:
			if !full && ru.cfg.FullFallbackAfter > 0 {
				degrade()
			}
		case classTransient:
			if !full {
				deltaFailures++
				if ru.cfg.FullFallbackAfter > 0 && deltaFailures >= ru.cfg.FullFallbackAfter {
					degrade()
				}
			}
		}
		if attempt < ru.cfg.MaxAttempts {
			if err := ru.cfg.Sleep(ctx, ru.backoff(attempt)); err != nil {
				return rep, err
			}
		}
	}
	return rep, fmt.Errorf("netupdate: retry budget exhausted after %d attempts: last error: %w",
		ru.cfg.MaxAttempts, lastErr)
}

// attempt runs one session on a fresh connection.
func (ru *Client) attempt(ctx context.Context, dial DialFunc, dev *device.Device, full bool) (Result, error) {
	var span obs.Span
	if ru.met != nil {
		span = ru.met.attemptStage.Start()
		defer span.End()
	}
	conn, err := dial(ctx)
	if err != nil {
		return Result{}, err
	}
	defer conn.Close()
	return Run(ctx, conn, dev,
		WithMessageTimeout(ru.cfg.MessageTimeout), WithRequestFull(full))
}

// backoff returns the capped exponential delay for the given (1-based)
// attempt, jittered to a uniform value in [d/2, d) so a fleet knocked over
// together does not reconnect in lockstep.
func (ru *Client) backoff(attempt int) time.Duration {
	d := ru.cfg.BaseBackoff << (attempt - 1)
	if d <= 0 || d > ru.cfg.MaxBackoff {
		d = ru.cfg.MaxBackoff
	}
	ru.mu.Lock()
	jitter := ru.rng.Float64()
	ru.mu.Unlock()
	return d/2 + time.Duration(jitter*float64(d/2))
}

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
