// Test package for the offsetsafe analyzer. The package is named codec so
// it falls inside the analyzer's offset-bearing package scope.
package codec

type cmd struct{ From, To, Length int64 }

// Unguarded narrowing of a wire-supplied count.
func parseCount(v uint64) int {
	return int(v) // want `unguarded narrowing conversion`
}

// The checked-conversion idiom: a range test on the operand earlier in the
// function licenses the narrowing.
func parseCountGuarded(v uint64) (int, bool) {
	if v > 1<<31-1 {
		return 0, false
	}
	return int(v), true
}

func narrow32(v int64) int32 {
	return int32(v) // want `unguarded narrowing conversion`
}

// Widening is always fine.
func widen(v int32) int64 {
	return int64(v)
}

// Constant operands are evaluated at compile time.
func constConv() int {
	const big = int64(7)
	return int(big)
}

// Same-width signedness changes are the guard idiom itself (int64(u) < 0)
// and are not flagged.
func signFlip(v uint64) int64 {
	return int64(v)
}

// Additive bounds check: the sum of two hostile 63-bit values wraps
// negative and slips past the comparison.
func boundAdd(c cmd, limit int64) bool {
	return c.From+c.Length > limit // want `may overflow`
}

// The overflow-free subtraction form.
func boundSub(c cmd, limit int64) bool {
	return c.From > limit-c.Length
}

// A constant addend cannot overflow validated offsets.
func loopConst(n int64) int64 {
	var total int64
	for i := int64(0); i+1 < n; i++ {
		total++
	}
	return total
}

// Suppression comments silence a deliberate conversion.
func suppressed(v uint64) int {
	return int(v) //ipvet:ignore offsetsafe -- exercised by the suppression test
}
