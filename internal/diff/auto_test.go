package diff

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"ipdelta/internal/obs"
)

// TestChooseWorkersCrossover pins the cost model's dispatch table: below
// the crossover the sequential engine must win (1 worker), above it the
// parallel engine must win with a worker count bounded by both the
// processor count and the adaptive segment floor.
func TestChooseWorkersCrossover(t *testing.T) {
	cases := []struct {
		versionLen int
		procs      int
		want       int
	}{
		{0, 8, 1},                  // empty input
		{4 << 10, 8, 1},            // below one segment floor: sequential
		{16 << 10, 8, 1},           // exactly one segment: sequential
		{segmentFloor*2 - 1, 8, 1}, // still under two full segments
		{32 << 10, 8, 2},           // two amortized segments: parallel
		{64 << 10, 4, 4},           // above crossover, capped by procs
		{64 << 10, 8, 4},           // capped by the segment floor
		{256 << 10, 4, 4},          // corpus benchmark input
		{256 << 10, 16, 16},        // floor allows 16 segments
		{1 << 20, 8, 8},            // large input: every processor
		{256 << 10, 1, 1},          // single processor: always sequential
	}
	for _, tc := range cases {
		if got := chooseWorkers(tc.versionLen, tc.procs); got != tc.want {
			t.Errorf("chooseWorkers(%d, %d) = %d, want %d", tc.versionLen, tc.procs, got, tc.want)
		}
	}
}

// TestAutoSelectsEngine asserts, under pinned GOMAXPROCS, that diff.Auto
// dispatches below-crossover inputs to Linear and above-crossover inputs
// to Parallel — observed through the auto dispatch counters, so the test
// sees the decision the production path actually took.
func TestAutoSelectsEngine(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	reg := obs.NewRegistry()
	a, err := ByName("auto")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(*Auto); !ok {
		t.Fatalf("ByName(auto) = %T", a)
	}
	auto := NewAuto(WithObserver(reg))

	rng := rand.New(rand.NewSource(59))
	for _, tc := range []struct {
		size     int
		parallel bool
	}{
		{4 << 10, false},  // below the crossover
		{64 << 10, true},  // above it
		{256 << 10, true}, // corpus input
	} {
		ref := make([]byte, tc.size)
		rng.Read(ref)
		version := mutate(rng, ref, 1+tc.size/4096)

		before := reg.Snapshot()
		d, err := auto.Diff(ref, version)
		if err != nil {
			t.Fatalf("size=%d: Diff: %v", tc.size, err)
		}
		out, err := d.Apply(ref)
		if err != nil {
			t.Fatalf("size=%d: apply: %v", tc.size, err)
		}
		if !bytes.Equal(out, version) {
			t.Fatalf("size=%d: delta does not reproduce the version", tc.size)
		}
		after := reg.Snapshot()
		dLin := after.Counter("ipdelta_diff_auto_linear_total") - before.Counter("ipdelta_diff_auto_linear_total")
		dPar := after.Counter("ipdelta_diff_auto_parallel_total") - before.Counter("ipdelta_diff_auto_parallel_total")
		if tc.parallel && (dPar != 1 || dLin != 0) {
			t.Errorf("size=%d: picked linear (%d/%d picks), want parallel", tc.size, dLin, dPar)
		}
		if !tc.parallel && (dLin != 1 || dPar != 0) {
			t.Errorf("size=%d: picked parallel (%d/%d picks), want linear", tc.size, dLin, dPar)
		}
	}
}

// TestAutoDifferMatchesAuto checks the reusable self-selecting differ
// against the detached path on both sides of the crossover.
func TestAutoDifferMatchesAuto(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(61))
	a := NewAuto()
	ad := NewAutoDiffer()
	defer ad.Close()
	for _, size := range []int{300, 4 << 10, 40 << 10, 130 << 10} {
		ref := make([]byte, size)
		rng.Read(ref)
		version := mutate(rng, ref, 1+size/2048)

		want, err := a.Diff(ref, version)
		if err != nil {
			t.Fatalf("size=%d: Auto.Diff: %v", size, err)
		}
		got, err := ad.Diff(ref, version)
		if err != nil {
			t.Fatalf("size=%d: AutoDiffer.Diff: %v", size, err)
		}
		if len(got.Commands) != len(want.Commands) {
			t.Fatalf("size=%d: %d commands, want %d", size, len(got.Commands), len(want.Commands))
		}
		out, err := got.Apply(ref)
		if err != nil {
			t.Fatalf("size=%d: apply: %v", size, err)
		}
		if !bytes.Equal(out, version) {
			t.Fatalf("size=%d: reused delta does not reproduce the version", size)
		}
	}
}

// TestAutoDifferAllocs holds the self-selecting reuse path to the same
// steady-state allocation gate as its underlying engines.
func TestAutoDifferAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	ref, version := allocBenchPair()
	ad := NewAutoDiffer()
	defer ad.Close()
	for i := 0; i < 4; i++ {
		if _, err := ad.Diff(ref, version); err != nil {
			t.Fatalf("warm-up diff: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ad.Diff(ref, version); err != nil {
			t.Fatalf("diff: %v", err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state (*AutoDiffer).Diff allocates %.1f times per call, want <= 2", allocs)
	}
}
