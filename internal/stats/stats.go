// Package stats provides the small measurement and reporting helpers the
// experiment drivers share: ratio aggregation and aligned text tables in
// the style of the paper's Table 1.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Aggregate accumulates a stream of float64 samples.
type Aggregate struct {
	n   int
	sum float64
	min float64
	max float64
}

// Add records one sample.
func (a *Aggregate) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
}

// N returns the sample count.
func (a *Aggregate) N() int { return a.n }

// Mean returns the arithmetic mean, or NaN with no samples.
func (a *Aggregate) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sum / float64(a.n)
}

// Sum returns the sample total.
func (a *Aggregate) Sum() float64 { return a.sum }

// Min returns the smallest sample, or NaN with no samples.
func (a *Aggregate) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest sample, or NaN with no samples.
func (a *Aggregate) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Pct renders a fraction as a percentage with one decimal, e.g. 0.153 →
// "15.3%".
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Bytes renders a byte count with a binary-unit suffix.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; cell counts need not match the header exactly
// (short rows are padded).
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for k, c := range row {
			if len(c) > widths[k] {
				widths[k] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(row []string) {
		for k := 0; k < cols; k++ {
			cell := ""
			if k < len(row) {
				cell = row[k]
			}
			if k > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[k], cell)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		rule := make([]string, cols)
		for k := range rule {
			rule[k] = strings.Repeat("-", widths[k])
		}
		writeRow(rule)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
