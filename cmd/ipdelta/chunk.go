package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"ipdelta/internal/chunk"
	"ipdelta/internal/obs"
	"ipdelta/internal/stats"
)

// cmdChunk splits files with the content-defined chunker and reports the
// chunk-level view: sizes, dedup across the given files (in order), and
// optionally the recipe container of the last file.
func cmdChunk(args []string) error {
	fs := flag.NewFlagSet("chunk", flag.ContinueOnError)
	minSize := fs.Int("min", chunk.DefaultMin, "minimum chunk size")
	avgSize := fs.Int("avg", chunk.DefaultAvg, "target average chunk size (power of two)")
	maxSize := fs.Int("max", chunk.DefaultMax, "maximum chunk size")
	outPath := fs.String("out", "", "write the last file's recipe container to this path")
	verbose := fs.Bool("v", false, "print the full metrics snapshot (chunk-size histogram) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return errors.New("usage: ipdelta chunk [-min N] [-avg N] [-max N] [-out RECIPE] FILE...")
	}
	ck, err := chunk.NewChunker(chunk.Params{Min: *minSize, Avg: *avgSize, Max: *maxSize})
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	cs := chunk.NewStore(chunk.WithObserver(reg))
	var last chunk.Recipe
	var totalIn int64
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		before := reg.Snapshot().Counters
		r := cs.IngestAll(ck, data)
		after := reg.Snapshot().Counters
		newBytes := after["ipdelta_chunk_stored_bytes_total"] - before["ipdelta_chunk_stored_bytes_total"]
		dupBytes := after["ipdelta_chunk_dedup_bytes_saved_total"] - before["ipdelta_chunk_dedup_bytes_saved_total"]
		avg := int64(0)
		if len(r.Chunks) > 0 {
			avg = r.Total() / int64(len(r.Chunks))
		}
		fmt.Printf("%s: %s in %d chunks (avg %s), %s new, %s deduped\n",
			path, stats.Bytes(r.Total()), len(r.Chunks), stats.Bytes(avg),
			stats.Bytes(newBytes), stats.Bytes(dupBytes))
		last = r
		totalIn += r.Total()
	}
	snap := reg.Snapshot().Counters
	stored := snap["ipdelta_chunk_stored_bytes_total"]
	if totalIn > 0 {
		fmt.Printf("total: %s ingested, %s stored (dedup ratio %.2fx)\n",
			stats.Bytes(totalIn), stats.Bytes(stored),
			float64(totalIn)/float64(max64(1, stored)))
	}
	if *outPath != "" {
		enc := chunk.EncodeRecipe(last)
		if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s): recipe of %s, %d chunks\n",
			*outPath, stats.Bytes(int64(len(enc))), files[len(files)-1], len(last.Chunks))
	}
	if *verbose {
		fmt.Fprint(os.Stderr, reg.Snapshot().Text())
	}
	return nil
}
