// Test package for the deprecatedapi analyzer's netupdate rules. Named
// netupdate so its own stub declarations resolve to the target package
// path, the way the real internal/netupdate package's do.
package netupdate

// Stubs mirroring the real surface: the shared-Config options API and
// the deprecated v1 single-stream entry points over it.

type (
	Ctx    struct{}
	Conn   struct{}
	Device struct{}
	Result struct{}
	Option func()
	Client struct{}
)

// Runner is the historical name for Client.
type Runner = Client

func WithMessageTimeout(d int64) Option { return func() {} }

func WithRequestFull(full bool) Option { return func() {} }

func WithMaxAttempts(n int) Option { return func() {} }

func WithBaseBackoff(d int64) Option { return func() {} }

func WithSeed(seed uint64) Option { return func() {} }

func Run(ctx Ctx, conn Conn, dev *Device, opts ...Option) (Result, error) {
	return Result{}, nil
}

func NewClient(opts ...Option) *Client { return &Client{} }

// SessionOptions is the retired per-session config struct.
type SessionOptions struct {
	MessageTimeout int64
	RequestFull    bool
}

// RunnerConfig is the retired runner config struct. Legacy carries no
// With* mapping, so literals setting it cannot be rewritten mechanically.
type RunnerConfig struct {
	MaxAttempts int
	BaseBackoff int64
	Seed        uint64
	Legacy      int
}

// The deprecated wrappers call the options API, so the declarations
// themselves produce no diagnostics.
func UpdateDevice(conn Conn, dev *Device) (Result, error) {
	return Run(Ctx{}, conn, dev)
}

func RunSession(ctx Ctx, conn Conn, dev *Device, opts SessionOptions) (Result, error) {
	return Run(ctx, conn, dev, WithMessageTimeout(opts.MessageTimeout), WithRequestFull(opts.RequestFull))
}

func NewRunner(cfg RunnerConfig) *Runner {
	return NewClient(WithMaxAttempts(cfg.MaxAttempts), WithSeed(cfg.Seed))
}

func CallsUpdateDevice(conn Conn, dev *Device) (Result, error) {
	return UpdateDevice(conn, dev) // want `UpdateDevice is deprecated; use Run`
}

func CallsRunSession(ctx Ctx, conn Conn, dev *Device) (Result, error) {
	return RunSession(ctx, conn, dev, SessionOptions{MessageTimeout: 5, RequestFull: true}) // want `RunSession is deprecated; use Run with the shared Config options`
}

func CallsRunSessionEmpty(ctx Ctx, conn Conn, dev *Device) (Result, error) {
	return RunSession(ctx, conn, dev, SessionOptions{}) // want `RunSession is deprecated`
}

func CallsNewRunner() *Runner {
	return NewRunner(RunnerConfig{MaxAttempts: 3, Seed: 9}) // want `NewRunner is deprecated; use NewClient with the shared Config options`
}

// A literal with a field that has no With* mapping still gets the
// diagnostic, but no mechanical rewrite.
func CallsNewRunnerUnmappable() *Runner {
	return NewRunner(RunnerConfig{Legacy: 1}) // want `NewRunner is deprecated`
}

// A non-literal config cannot be rewritten mechanically either.
func CallsNewRunnerVariable(cfg RunnerConfig) *Runner {
	return NewRunner(cfg) // want `NewRunner is deprecated`
}

func CallsOptionsAPI(ctx Ctx, conn Conn, dev *Device) (Result, error) {
	return Run(ctx, conn, dev, WithMessageTimeout(5), WithMaxAttempts(3))
}

func Suppressed(conn Conn, dev *Device) (Result, error) {
	return UpdateDevice(conn, dev) //ipvet:ignore deprecatedapi -- pinned v1-compat call
}

// A method that reuses a deprecated name is not the package-level shim.
type shim struct{}

func (shim) UpdateDevice(n int64) int64 { return n }

func MethodNameCollision() int64 {
	var s shim
	return s.UpdateDevice(8)
}
