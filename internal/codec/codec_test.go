package codec

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"ipdelta/internal/delta"
)

var allFormats = []Format{
	FormatOrdered, FormatOffsets, FormatLegacyOrdered, FormatLegacyOffsets, FormatCompact, FormatScratch,
}

// orderedDelta returns a delta whose commands are in contiguous write
// order, encodable in every format.
func orderedDelta() *delta.Delta {
	return &delta.Delta{
		RefLen:     400,
		VersionLen: 320,
		Commands: []delta.Command{
			delta.NewCopy(0, 0, 100),
			delta.NewAdd(100, bytes.Repeat([]byte("x"), 20)),
			delta.NewCopy(150, 120, 200),
		},
	}
}

// permutedDelta returns an in-place style delta: copies out of write order,
// adds at the end.
func permutedDelta() *delta.Delta {
	return &delta.Delta{
		RefLen:     400,
		VersionLen: 320,
		Commands: []delta.Command{
			delta.NewCopy(150, 120, 200),
			delta.NewCopy(0, 0, 100),
			delta.NewAdd(100, bytes.Repeat([]byte("y"), 20)),
		},
	}
}

func TestFormatString(t *testing.T) {
	for _, f := range allFormats {
		if f.String() == "" {
			t.Errorf("format %d has empty name", f)
		}
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFormat(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFormat("bogus"); err == nil {
		t.Error("ParseFormat accepted bogus name")
	}
	if got := Format(99).String(); got != "format(99)" {
		t.Errorf("unknown format String() = %q", got)
	}
}

func TestInPlaceCapable(t *testing.T) {
	want := map[Format]bool{
		FormatOrdered:       false,
		FormatOffsets:       true,
		FormatLegacyOrdered: false,
		FormatLegacyOffsets: true,
		FormatCompact:       true,
		FormatScratch:       true,
	}
	for f, capable := range want {
		if f.InPlaceCapable() != capable {
			t.Errorf("%v.InPlaceCapable() = %v, want %v", f, f.InPlaceCapable(), capable)
		}
	}
}

func TestUvarintLen(t *testing.T) {
	tests := []struct {
		v    uint64
		want int
	}{
		{0, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3}, {1 << 62, 9},
	}
	for _, tt := range tests {
		if got := UvarintLen(tt.v); got != tt.want {
			t.Errorf("UvarintLen(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
	if VarintLen(-1) != 1 || VarintLen(64) != 2 {
		t.Error("VarintLen gave unexpected sizes")
	}
}

// applyBoth decodes enc and applies the result to ref, returning the
// materialized version.
func applyBoth(t *testing.T, enc []byte, ref []byte) []byte {
	t.Helper()
	d, _, err := Decode(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("decoded delta invalid: %v", err)
	}
	out, err := d.Apply(ref)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return out
}

func TestRoundTripAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := make([]byte, 400)
	rng.Read(ref)
	d := orderedDelta()
	want, err := d.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range allFormats {
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			n, err := Encode(&buf, d, f)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("Encode reported %d bytes, wrote %d", n, buf.Len())
			}
			got := applyBoth(t, buf.Bytes(), ref)
			if !bytes.Equal(got, want) {
				t.Fatal("round trip changed the materialized version")
			}
		})
	}
}

func TestRoundTripPermuted(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := make([]byte, 400)
	rng.Read(ref)
	d := permutedDelta()
	want, err := d.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range allFormats {
		if !f.InPlaceCapable() {
			continue
		}
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := Encode(&buf, d, f); err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got := applyBoth(t, buf.Bytes(), ref)
			if !bytes.Equal(got, want) {
				t.Fatal("round trip changed the materialized version")
			}
		})
	}
}

func TestOrderedRejectsPermuted(t *testing.T) {
	d := permutedDelta()
	for _, f := range []Format{FormatOrdered, FormatLegacyOrdered} {
		if _, err := Encode(io.Discard, d, f); !errors.Is(err, ErrNotOrdered) {
			t.Errorf("%v: error = %v, want ErrNotOrdered", f, err)
		}
	}
}

func TestCompactPreservesCopyOrder(t *testing.T) {
	d := permutedDelta()
	var buf bytes.Buffer
	if _, err := Encode(&buf, d, FormatCompact); err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Copies must come back in the original application order; adds follow.
	if got.Commands[0].To != 120 || got.Commands[1].To != 0 {
		t.Fatalf("copy order not preserved: %v", got.Commands)
	}
	if got.Commands[2].Op != delta.OpAdd {
		t.Fatal("adds must come last in compact format")
	}
}

func TestLegacySplitsLongAdds(t *testing.T) {
	data := make([]byte, 1000)
	for k := range data {
		data[k] = byte(k)
	}
	d := &delta.Delta{
		RefLen:     0,
		VersionLen: 1000,
		Commands:   []delta.Command{delta.NewAdd(0, data)},
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, d, FormatLegacyOrdered); err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Commands) != 4 { // 255+255+255+235
		t.Fatalf("legacy add split into %d commands, want 4", len(got.Commands))
	}
	out, err := got.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("split adds do not reassemble the data")
	}
}

func TestLegacyCopyCodewordSelection(t *testing.T) {
	// Force each copy codeword size by from-offset/length magnitude.
	d := &delta.Delta{
		RefLen:     1 << 33,
		VersionLen: 131322,
		Commands: []delta.Command{
			delta.NewCopy(100, 0, 10),            // short: f<=0xFFFF, l<=0xFF
			delta.NewCopy(0x10000, 10, 0x100),    // med: f>0xFFFF
			delta.NewCopy(1<<32, 266, 0x10000),   // long: f>0xFFFFFFFF
			delta.NewCopy(50, 65802, 0x10000-16), // med by length
		},
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, d, FormatLegacyOffsets); err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Commands) != 4 {
		t.Fatalf("got %d commands", len(got.Commands))
	}
	for k := range d.Commands {
		if !got.Commands[k].Equal(d.Commands[k]) {
			t.Errorf("command %d: got %v, want %v", k, got.Commands[k], d.Commands[k])
		}
	}
}

func TestEncodeRejectsInvalidDelta(t *testing.T) {
	bad := &delta.Delta{RefLen: 4, VersionLen: 4,
		Commands: []delta.Command{delta.NewCopy(0, 2, 4)}}
	if _, err := Encode(io.Discard, bad, FormatOffsets); err == nil {
		t.Fatal("Encode accepted an invalid delta")
	}
}

func TestEncodedSizeOrderedSmallerThanOffsets(t *testing.T) {
	d := orderedDelta()
	ordered, err := EncodedSize(d, FormatOrdered)
	if err != nil {
		t.Fatal(err)
	}
	offsets, err := EncodedSize(d, FormatOffsets)
	if err != nil {
		t.Fatal(err)
	}
	if ordered >= offsets {
		t.Fatalf("ordered %d >= offsets %d; write offsets must cost bytes", ordered, offsets)
	}
}

func TestDecodeErrors(t *testing.T) {
	d := orderedDelta()
	var buf bytes.Buffer
	if _, err := Encode(&buf, d, FormatOffsets); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[0] = 'X'
		if _, _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("error = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad format byte", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[4] = 99
		if _, _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("error = %v, want ErrBadFormat", err)
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[len(bad)-6] ^= 0x40
		_, _, err := Decode(bytes.NewReader(bad))
		if err == nil {
			t.Fatal("accepted corrupted payload")
		}
	})
	t.Run("flipped checksum", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[len(bad)-1] ^= 0x01
		if _, _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("error = %v, want ErrChecksum", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 1; cut < len(enc); cut += 3 {
			if _, _, err := Decode(bytes.NewReader(enc[:cut])); err == nil {
				t.Fatalf("accepted truncation at %d bytes", cut)
			}
		}
	})
	t.Run("empty input", func(t *testing.T) {
		if _, err := NewDecoder(bytes.NewReader(nil)); err == nil {
			t.Fatal("accepted empty input")
		}
	})
}

func TestDecoderStreaming(t *testing.T) {
	d := orderedDelta()
	var buf bytes.Buffer
	if _, err := Encode(&buf, d, FormatOffsets); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hdr := dec.Header()
	if hdr.RefLen != d.RefLen || hdr.VersionLen != d.VersionLen || hdr.NumCommands != len(d.Commands) {
		t.Fatalf("header = %+v", hdr)
	}
	var n int
	for {
		c, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !c.Equal(d.Commands[n]) {
			t.Fatalf("command %d: got %v, want %v", n, c, d.Commands[n])
		}
		n++
	}
	if n != len(d.Commands) {
		t.Fatalf("streamed %d commands, want %d", n, len(d.Commands))
	}
	// A second Next after EOF keeps returning EOF.
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next() = %v", err)
	}
}

func TestEmptyVersionRoundTrip(t *testing.T) {
	d := &delta.Delta{RefLen: 10, VersionLen: 0}
	for _, f := range allFormats {
		var buf bytes.Buffer
		if _, err := Encode(&buf, d, f); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		got, gf, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if gf != f || len(got.Commands) != 0 || got.RefLen != 10 {
			t.Fatalf("%v: got %+v", f, got)
		}
	}
}

// randomOrderedDelta builds a valid delta in write order over a reference
// of the given length, for property tests.
func randomOrderedDelta(rng *rand.Rand, refLen int64) *delta.Delta {
	d := &delta.Delta{RefLen: refLen}
	var at int64
	n := rng.Intn(20) + 1
	for k := 0; k < n; k++ {
		l := rng.Int63n(400) + 1
		if rng.Intn(2) == 0 && refLen > 0 {
			from := rng.Int63n(refLen)
			if from+l > refLen {
				l = refLen - from
			}
			if l == 0 {
				continue
			}
			d.Commands = append(d.Commands, delta.NewCopy(from, at, l))
		} else {
			data := make([]byte, l)
			rng.Read(data)
			d.Commands = append(d.Commands, delta.NewAdd(at, data))
		}
		at += l
	}
	d.VersionLen = at
	return d
}

func TestQuickRoundTripEveryFormat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		refLen := rng.Int63n(2000) + 1
		ref := make([]byte, refLen)
		rng.Read(ref)
		d := randomOrderedDelta(rng, refLen)
		if len(d.Commands) == 0 {
			return true
		}
		want, err := d.Apply(ref)
		if err != nil {
			return false
		}
		for _, format := range allFormats {
			var buf bytes.Buffer
			if _, err := Encode(&buf, d, format); err != nil {
				return false
			}
			got, gf, err := Decode(&buf)
			if err != nil || gf != format {
				return false
			}
			out, err := got.Apply(ref)
			if err != nil {
				return false
			}
			if !bytes.Equal(out, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// scratchDelta returns a delta using stash/unstash commands: the version
// swaps the two halves of the reference via scratch instead of converting
// a copy to an add.
func scratchDelta() *delta.Delta {
	return &delta.Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []delta.Command{
			delta.NewStash(0, 4),   // save first half
			delta.NewCopy(4, 0, 4), // second half -> first
			delta.NewUnstash(4, 4), // saved first half -> second
		},
	}
}

func TestScratchFormatRoundTrip(t *testing.T) {
	d := scratchDelta()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.ScratchRequired() != 4 {
		t.Fatalf("ScratchRequired = %d", d.ScratchRequired())
	}
	ref := []byte("AAAABBBB")
	want, err := d.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != "BBBBAAAA" {
		t.Fatalf("scratch apply = %q", want)
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, d, FormatScratch); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Header().ScratchLen != 4 {
		t.Fatalf("header scratch = %d", dec.Header().ScratchLen)
	}
	got, f, err := Decode(&buf)
	if err != nil || f != FormatScratch {
		t.Fatalf("Decode: %v %v", f, err)
	}
	if len(got.Commands) != 3 {
		t.Fatalf("commands: %v", got.Commands)
	}
	out, err := got.Apply(ref)
	if err != nil || !bytes.Equal(out, want) {
		t.Fatalf("round trip: %q %v", out, err)
	}
	// And it is in-place safe.
	if err := got.CheckInPlace(); err != nil {
		t.Fatalf("scratch delta not in-place safe: %v", err)
	}
	inbuf := append([]byte(nil), ref...)
	if err := got.ApplyInPlace(inbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inbuf, want) {
		t.Fatalf("in-place scratch apply = %q", inbuf)
	}
}

func TestScratchCommandsRejectedByOtherFormats(t *testing.T) {
	d := scratchDelta()
	for _, f := range allFormats {
		if f == FormatScratch {
			continue
		}
		if _, err := Encode(io.Discard, d, f); err == nil {
			t.Errorf("%v accepted stash commands", f)
		}
	}
}

// errWriter fails after n bytes, exercising encoder error propagation.
type errWriter struct {
	n int
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, io.ErrClosedPipe
	}
	w.n -= len(p)
	return len(p), nil
}

func TestEncodeWriteErrors(t *testing.T) {
	deltas := map[string]*delta.Delta{
		"ordered":  orderedDelta(),
		"permuted": permutedDelta(),
		"scratch":  scratchDelta(),
	}
	for name, d := range deltas {
		for _, f := range allFormats {
			if !f.InPlaceCapable() && name != "ordered" {
				continue
			}
			if name != "scratch" && f == FormatScratch {
				// scratch format accepts these too
			}
			if name == "scratch" && f != FormatScratch {
				continue
			}
			full, err := EncodedSize(d, f)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, f, err)
			}
			// Fail at several cut points; Encode must report an error, not
			// succeed or panic.
			for cut := 0; int64(cut) < full; cut += int(full)/7 + 1 {
				if _, err := Encode(&errWriter{n: cut}, d, f); err == nil {
					t.Fatalf("%s/%v: no error with writer failing at %d/%d", name, f, cut, full)
				}
			}
		}
	}
}

func TestEncodedSizeScratchIncludesHeaderField(t *testing.T) {
	d := scratchDelta()
	n, err := EncodedSize(d, FormatScratch)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty encoding")
	}
}

func TestOffsetsFormatRejectsScratchOpcodeOnWire(t *testing.T) {
	// Hand-craft an offsets-format file whose command carries the stash
	// opcode: the decoder must reject it (scratch commands are only legal
	// in the scratch format).
	d := scratchDelta()
	var buf bytes.Buffer
	if _, err := Encode(&buf, d, FormatScratch); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip the format byte from scratch to offsets; CRC will mismatch, but
	// the opcode error must surface first or the checksum must fail —
	// either way the file is rejected.
	raw[4] = byte(FormatOffsets)
	if _, _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("offsets decoder accepted scratch opcodes")
	}
}
