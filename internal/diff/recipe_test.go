package diff

import (
	"bytes"
	"math/rand"
	"testing"

	"ipdelta/internal/chunk"
	"ipdelta/internal/obs"
)

func recipeTestStore(t testing.TB) (*chunk.Chunker, *chunk.Store) {
	t.Helper()
	ck, err := chunk.NewChunker(chunk.Params{Min: 512, Avg: 2048, Max: 8192})
	if err != nil {
		t.Fatal(err)
	}
	return ck, chunk.NewStore()
}

// applyRecipeDiff runs DiffRecipes over pre-ingested images and applies
// the result, asserting validity along the way.
func applyRecipeDiff(t *testing.T, rd *RecipeDiffer, old, new []byte) []byte {
	t.Helper()
	ck, cs := recipeTestStore(t)
	ro := cs.IngestAll(ck, old)
	rn := cs.IngestAll(ck, new)
	d, err := rd.DiffRecipes(ro, rn, cs)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("recipe delta invalid: %v", err)
	}
	if d.RefLen != int64(len(old)) || d.VersionLen != int64(len(new)) {
		t.Fatalf("delta lengths %d/%d, want %d/%d", d.RefLen, d.VersionLen, len(old), len(new))
	}
	got, err := d.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRecipeDiffReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	old := make([]byte, 1<<20)
	rng.Read(old)
	// Blocky churn: overwrite a few regions, insert one, delete one.
	new := append([]byte(nil), old...)
	rng.Read(new[100<<10 : 110<<10])
	rng.Read(new[700<<10 : 701<<10])
	ins := make([]byte, 30<<10)
	rng.Read(ins)
	new = append(append(append([]byte(nil), new[:400<<10]...), ins...), new[450<<10:]...)

	rd := NewRecipeDiffer()
	got := applyRecipeDiff(t, rd, old, new)
	if !bytes.Equal(got, new) {
		t.Fatal("recipe delta does not reconstruct the version")
	}
}

func TestRecipeDiffEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := make([]byte, 300<<10)
	rng.Read(base)
	fresh := make([]byte, 200<<10)
	rng.Read(fresh)
	rd := NewRecipeDiffer()
	cases := []struct {
		name     string
		old, new []byte
	}{
		{"identical", base, base},
		{"empty to content", nil, base},
		{"content to empty", base, nil},
		{"disjoint", base, fresh},
		{"pure append", base, append(append([]byte(nil), base...), fresh[:40<<10]...)},
		{"pure prepend", base, append(append([]byte(nil), fresh[:40<<10]...), base...)},
		{"reorder halves", base, append(append([]byte(nil), base[150<<10:]...), base[:150<<10]...)},
		{"tiny inputs", []byte("ab"), []byte("abc")},
	}
	for _, tc := range cases {
		got := applyRecipeDiff(t, rd, tc.old, tc.new)
		if !bytes.Equal(got, tc.new) {
			t.Fatalf("%s: reconstruction mismatch", tc.name)
		}
	}
}

// TestRecipeDiffEquivalentToFullDiff is the acceptance property: across
// randomized edit scripts, applying the recipe-path delta yields bytes
// identical to applying the full-image linear diff — i.e. identical to
// the version, since both reconstruct exactly.
func TestRecipeDiffEquivalentToFullDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rd := NewRecipeDiffer()
	lin := NewLinear()
	for trial := 0; trial < 25; trial++ {
		old := make([]byte, 64<<10+rng.Intn(512<<10))
		rng.Read(old)
		new := append([]byte(nil), old...)
		for edits := rng.Intn(6); edits >= 0; edits-- {
			if len(new) == 0 {
				break
			}
			pos := rng.Intn(len(new))
			n := 1 + rng.Intn(20<<10)
			switch rng.Intn(3) {
			case 0: // overwrite
				hi := pos + n
				if hi > len(new) {
					hi = len(new)
				}
				rng.Read(new[pos:hi])
			case 1: // insert
				ins := make([]byte, n)
				rng.Read(ins)
				new = append(append(append([]byte(nil), new[:pos]...), ins...), new[pos:]...)
			default: // delete
				hi := pos + n
				if hi > len(new) {
					hi = len(new)
				}
				new = append(append([]byte(nil), new[:pos]...), new[hi:]...)
			}
		}
		viaRecipe := applyRecipeDiff(t, rd, old, new)
		dFull, err := lin.Diff(old, new)
		if err != nil {
			t.Fatal(err)
		}
		viaFull, err := dFull.Apply(old)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaRecipe, viaFull) {
			t.Fatalf("trial %d: recipe-path and full-diff reconstructions diverge", trial)
		}
		if !bytes.Equal(viaRecipe, new) {
			t.Fatalf("trial %d: reconstruction is not the version", trial)
		}
	}
}

// TestRecipeDiffBoundedWindow pins the memory bound: with a tiny window
// cap the differ still reconstructs exactly (it just compresses less),
// and its state buffers never exceed the cap plus one chunk.
func TestRecipeDiffBoundedWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	old := make([]byte, 2<<20)
	rng.Read(old)
	new := append([]byte(nil), old...)
	// A huge contiguous rewrite, far larger than the window cap.
	rng.Read(new[256<<10 : 1792<<10])

	const winCap = 64 << 10
	rd := NewRecipeDiffer(WithRecipeWindow(winCap))
	got := applyRecipeDiff(t, rd, old, new)
	if !bytes.Equal(got, new) {
		t.Fatal("bounded-window reconstruction mismatch")
	}
	st, _ := rd.pool.Get().(*recipeState)
	if st == nil {
		t.Fatal("no pooled state after a diff")
	}
	// Segments flush at >= winCap, so one trailing chunk may overshoot;
	// append growth can at most double that.
	if max := 2 * (winCap + 8192); cap(st.oldWin) > max || cap(st.newSeg) > max {
		t.Fatalf("window buffers exceeded the cap: old %d, new %d", cap(st.oldWin), cap(st.newSeg))
	}
}

// TestRecipeDiffCompressesChurn checks the point of the fast path: on a
// lightly churned input, nearly everything is covered by copies.
func TestRecipeDiffCompressesChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	old := make([]byte, 4<<20)
	rng.Read(old)
	new := append([]byte(nil), old...)
	rng.Read(new[1<<20 : 1<<20+64<<10]) // ~1.5% churn

	reg := obs.NewRegistry()
	rd := NewRecipeDiffer(WithRecipeObserver(reg))
	ck, cs := recipeTestStore(t)
	ro := cs.IngestAll(ck, old)
	rn := cs.IngestAll(ck, new)
	d, err := rd.DiffRecipes(ro, rn, cs)
	if err != nil {
		t.Fatal(err)
	}
	if d.AddedBytes() > 128<<10 {
		t.Fatalf("added bytes %d on a 64 KiB churn — chunk matching is not engaging", d.AddedBytes())
	}
	snap := reg.Snapshot()
	if snap.Counters["ipdelta_recipe_diff_chunk_copy_bytes_total"] == 0 {
		t.Fatal("no whole-chunk copy bytes recorded")
	}
	if snap.Counters["ipdelta_recipe_diff_run_bytes_total"] > 256<<10 {
		t.Fatal("run differ saw far more bytes than the churn")
	}
}

func TestRecipeAlgoByName(t *testing.T) {
	algo, err := ByName("recipe")
	if err != nil {
		t.Fatal(err)
	}
	if algo.Name() != "recipe" {
		t.Fatalf("name = %q", algo.Name())
	}
	rng := rand.New(rand.NewSource(6))
	old := make([]byte, 512<<10)
	rng.Read(old)
	new := append([]byte(nil), old...)
	rng.Read(new[100<<10 : 120<<10])
	for round := 0; round < 3; round++ { // repeated diffs hit the recipe cache
		d, err := algo.Diff(old, new)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		got, err := d.Apply(old)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, new) {
			t.Fatalf("round %d: recipe algorithm reconstruction mismatch", round)
		}
	}
}

func TestRecipeAlgoCacheEviction(t *testing.T) {
	cs := chunk.NewStore()
	a := NewRecipeAlgo(WithRecipeStore(cs), WithRecipeCacheSize(2))
	rng := rand.New(rand.NewSource(7))
	inputs := make([][]byte, 4)
	for k := range inputs {
		inputs[k] = make([]byte, 64<<10)
		rng.Read(inputs[k])
	}
	for k := 1; k < len(inputs); k++ {
		if _, err := a.Diff(inputs[k-1], inputs[k]); err != nil {
			t.Fatal(err)
		}
	}
	a.mu.Lock()
	cached := len(a.recipes)
	a.mu.Unlock()
	if cached > 2 {
		t.Fatalf("recipe cache holds %d entries, bound is 2", cached)
	}
	if st := cs.Stats(); st.PinnedBytes > 2*64<<10+16<<10 {
		t.Fatalf("evicted recipes did not release their pins: %+v", st)
	}
}
