package diff

import (
	"runtime"
	"sync"

	"ipdelta/internal/delta"
	"ipdelta/internal/obs"
)

// Parallel is the multi-core differencer. It keeps the Linear algorithm's
// structure — one Karp–Rabin fingerprint index over the reference, one
// left-to-right scan of the version — but spreads both phases across
// worker goroutines:
//
//   - the reference is split into shards that build the shared fingerprint
//     table concurrently, lock-free, with atomic min-offset-wins inserts
//     that converge on exactly the table the sequential build produces;
//   - the version is split into worker segments sized len(version)/w with
//     a floor (segmentFloor) that amortizes per-segment setup. Each
//     segment scans into its own command list, writing literal bytes
//     directly into its window of one shared arena. A segment's seed
//     windows may read past its end (the overlap window), but its
//     commands cover exactly its byte range, so the per-worker streams
//     concatenate into a well-formed delta;
//   - the stitch pass folds the streams at each seam (seamJoin): exact
//     continuations re-join, and copies clipped by a segment edge are
//     extended into the neighbouring literal run with the usual
//     match-extension primitives, reclaiming the bytes the clip dropped.
//     Output quality tracks the sequential baseline; only matches that
//     genuinely straddle a seam unaligned are lost.
//
// Working memory (table, shared arena, per-worker emitters) is pooled per
// instance, as in Linear; the detached Diff result costs the same three
// allocations. For the zero-allocation steady state, see ParallelDiffer.
type Parallel struct {
	l       *Linear // configuration, shared metrics, scan primitives
	workers int
	pmet    *parallelMetrics
	pool    sync.Pool // of *parallelState
}

// parallelMetrics holds the pre-resolved handles of an observed Parallel
// (DESIGN.md §10). Per-diff updates are atomic adds and value-type spans.
type parallelMetrics struct {
	seamMerges      *obs.Counter // commands rejoined across segment boundaries
	seamExtends     *obs.Counter // copies lengthened across a seam into literals
	seamExtendBytes *obs.Counter // literal bytes reclaimed into seam-extended copies
	segments        *obs.Counter // version segments scanned

	workerScan obs.Stage // one span per worker per diff
	stitch     obs.Stage // seam merge + command stream concatenation
}

func resolveParallelMetrics(r *obs.Registry) *parallelMetrics {
	return &parallelMetrics{
		seamMerges:      r.Counter("ipdelta_diff_seam_merges_total"),
		seamExtends:     r.Counter("ipdelta_diff_seam_extends_total"),
		seamExtendBytes: r.Counter("ipdelta_diff_seam_extend_bytes_total"),
		segments:        r.Counter("ipdelta_diff_segments_total"),
		workerScan:      r.Stage("ipdelta_diff_stage_worker_scan_nanos"),
		stitch:          r.Stage("ipdelta_diff_stage_stitch_nanos"),
	}
}

// segmentFloor is the smallest version segment worth a goroutine. Segment
// size is derived as len(version)/workers; the floor shrinks the worker
// count until each segment amortizes its fixed costs (dispatch, sharded
// table-build imbalance, seam handling — single-digit microseconds per
// segment against a scan that moves multiple bytes per nanosecond).
const segmentFloor = 16 << 10

// workersFor derives the worker count for one input: len(version)/workers
// per segment, floored at segmentFloor, never below one.
//
//ipvet:allocfree
func workersFor(versionLen, workers int) int {
	if most := versionLen / segmentFloor; workers > most {
		workers = most
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// NewParallel returns a parallel differencer running the given number of
// workers (0 or negative means GOMAXPROCS). Options configure the
// underlying linear scan (seed length, table size, observer).
func NewParallel(workers int, opts ...LinearOption) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pl := &Parallel{l: NewLinear(opts...), workers: workers}
	if pl.l.obs != nil {
		pl.pmet = resolveParallelMetrics(pl.l.obs)
	}
	return pl
}

// Name implements Algorithm.
func (pl *Parallel) Name() string { return "parallel" }

// Workers returns the configured worker count.
func (pl *Parallel) Workers() int { return pl.workers }

// Phases a segment worker executes.
const (
	jobBuild = iota // index the reference shard (atomic inserts)
	jobScan         // scan the version range into the segment emitter
)

// segment is one worker's slice of a parallel diff: a reference shard for
// the build phase, a version range for the scan phase, and the emitter
// that owns the worker's command arena. Fields are rewritten per diff;
// nothing is allocated in steady state.
type segment struct {
	table     *krTable
	e         emitter
	ref       []byte
	version   []byte
	p         int
	stride    int // reference anchor stride (shared with Linear's derivation)
	rlo, rhi  int // reference seed range to index
	vlo, vhi  int // version byte range to scan
	minCopy   int
	job       int
	wg        *sync.WaitGroup
	scanStage obs.Stage
}

// run executes the segment's current job and signals completion.
//
//ipvet:allocfree
func (sg *segment) run() {
	switch sg.job {
	case jobBuild:
		buildTableShard(sg.table, sg.ref, sg.p, sg.rlo, sg.rhi, sg.stride)
	case jobScan:
		span := sg.scanStage.Start()
		scanRange(sg.table, &sg.e, sg.ref, sg.version, sg.p, sg.vlo, sg.vhi, sg.minCopy)
		span.End()
	}
	sg.wg.Done()
}

// workerPool is a set of persistent goroutines fed segments over an
// unbuffered channel. Channel sends and WaitGroup operations allocate
// nothing, which is what lets a ParallelDiffer hold the steady state at
// zero allocations per diff — a `go` statement with arguments heap-
// allocates its argument frame on every spawn.
type workerPool struct {
	work chan *segment
	stop sync.Once
}

func newWorkerPool(n int) *workerPool {
	wp := &workerPool{work: make(chan *segment)}
	for i := 0; i < n; i++ {
		go wp.worker()
	}
	return wp
}

func (wp *workerPool) worker() {
	for sg := range wp.work {
		sg.run()
	}
}

// shutdown releases the pool's goroutines. Idempotent.
func (wp *workerPool) shutdown() {
	wp.stop.Do(func() { close(wp.work) })
}

// parallelState is one diff's working memory: the shared fingerprint
// table, the per-worker segments, and one shared literal arena. Pooled
// per Parallel instance.
//
// The arena replaces the old per-worker arenas + stitch-time copy:
// workers emit literals directly into disjoint windows of this single
// buffer, laid out at version offsets (segment i's window is
// arena[vlo:vhi] — a segment can never produce more literal bytes than
// its own length), so the stitch pass only rebases add offsets instead
// of copying every literal byte.
type parallelState struct {
	table krTable
	segs  []segment
	arena []byte
	cmds  []delta.Command // stitched stream scratch (detached Diff path)
	wg    sync.WaitGroup
}

// dispatch runs one phase over the first w segments: through the
// persistent pool when one is attached, otherwise on freshly spawned
// goroutines. It returns when every segment's job completed.
func (st *parallelState) dispatch(w, job int, wp *workerPool) {
	st.wg.Add(w)
	for i := 0; i < w; i++ {
		sg := &st.segs[i]
		sg.job = job
		if wp != nil {
			wp.work <- sg
		} else {
			go sg.run()
		}
	}
	st.wg.Wait()
}

// run executes the sharded build and segmented scan phases, leaving each
// segment's commands in its emitter. It returns the number of segments
// used (1 for inputs too small to split).
func (pl *Parallel) run(st *parallelState, ref, version []byte, wp *workerPool) int {
	p := pl.l.seedLen
	stride, bits := pl.l.tableParams(len(ref))
	st.table.prepare(bits)

	w := workersFor(len(version), pl.workers)
	if cap(st.segs) < w {
		st.segs = make([]segment, w)
	}
	st.segs = st.segs[:w]
	if cap(st.arena) < len(version) {
		st.arena = make([]byte, len(version))
	}
	st.arena = st.arena[:len(version)]

	var scanStage obs.Stage
	if pl.pmet != nil {
		scanStage = pl.pmet.workerScan
	}
	nseeds := len(ref) - p + 1 // reference seed positions; may be <= 0
	for i := 0; i < w; i++ {
		sg := &st.segs[i]
		sg.table = &st.table
		sg.ref = ref
		sg.version = version
		sg.p = p
		sg.stride = stride
		sg.wg = &st.wg
		sg.scanStage = scanStage
		sg.minCopy = p
		if nseeds > 0 {
			sg.rlo = i * nseeds / w
			sg.rhi = (i + 1) * nseeds / w
		} else {
			sg.rlo, sg.rhi = 0, 0
		}
		sg.vlo = i * len(version) / w
		sg.vhi = (i + 1) * len(version) / w
		// The emitter writes at absolute version offsets and its literal
		// bytes go straight into the segment's arena window.
		sg.e.reset()
		sg.e.lits = st.arena[sg.vlo:sg.vlo:sg.vhi]
		sg.e.at = int64(sg.vlo)
	}

	var span obs.Span
	if pl.l.met != nil {
		span = pl.l.met.tableStage.Start()
		if stride > 1 {
			pl.l.met.strided.Inc()
		}
	}
	if w == 1 {
		buildTable(&st.table, ref, p, 0, nseeds, stride)
	} else {
		st.dispatch(w, jobBuild, wp)
	}
	if pl.l.met != nil {
		span.End()
		span = pl.l.met.emitStage.Start()
	}
	if w == 1 {
		sg := &st.segs[0]
		sp := sg.scanStage.Start()
		scanRange(sg.table, &sg.e, ref, version, p, 0, len(version), p)
		sp.End()
	} else {
		st.dispatch(w, jobScan, wp)
	}
	if pl.l.met != nil {
		span.End()
	}
	return w
}

// seamStats aggregates what the stitch pass did at segment boundaries.
type seamStats struct {
	merges      int // commands rejoined exactly across a seam
	extends     int // copies lengthened into a neighbouring literal run
	extendBytes int // literal bytes reclaimed into seam-extended copies
}

// seamJoin tries to fold c — the next command arriving at a segment seam
// — into the tail of cmds. Three folds apply, O(1) bookkeeping each plus
// byte comparisons bounded by the match actually recovered:
//
//   - exact continuation: a copy split in two by the seam, contiguous in
//     both reference and version, re-joins into one command;
//   - a literal run split across two arena windows re-joins (the right
//     half is relocated to sit flush against the left half — windows are
//     laid out at version offsets, so the gap it moves across is exactly
//     the left segment's unused window tail);
//   - a copy ending (or starting) at the seam extends forward (backward)
//     into the neighbouring segment's literal run, using matchForward /
//     matchBackward to reclaim the match bytes the segment clip dropped
//     — the re-scan of clipped boundaries the old stitch never did.
//
// It reports whether c was wholly consumed; a consumed literal run can
// expose the previous command to a further fold, hence the loop.
//
//ipvet:allocfree
func seamJoin(cmds []delta.Command, c *delta.Command, ref, version, arena []byte, stats *seamStats) ([]delta.Command, bool) {
	for len(cmds) > 0 {
		last := &cmds[len(cmds)-1]
		if last.To+last.Length != c.To {
			return cmds, false
		}
		switch {
		case last.Op == delta.OpCopy && c.Op == delta.OpCopy:
			if last.From+last.Length != c.From {
				return cmds, false // contiguous in version, not in reference
			}
			last.Length += c.Length
			stats.merges++
			return cmds, true
		case last.Op == delta.OpAdd && c.Op == delta.OpAdd:
			// Literal runs adjacent in the version: relocate the right
			// run against the left one so the merged add aliases one
			// contiguous arena range. copy is memmove-safe (dst <= src).
			end := last.From + last.Length
			if end != c.From {
				copy(arena[end:end+c.Length], arena[c.From:c.From+c.Length])
			}
			last.Length += c.Length
			stats.merges++
			return cmds, true
		case last.Op == delta.OpCopy && c.Op == delta.OpAdd:
			// The left copy's match may continue into the right segment's
			// leading literals (the clip dropped the residue).
			n := int64(matchForwardN(ref, version, int(last.From+last.Length), int(c.To), int(c.Length)))
			if n == 0 {
				return cmds, false
			}
			last.Length += n
			c.From += n
			c.To += n
			c.Length -= n
			stats.extends++
			stats.extendBytes += int(n)
			return cmds, c.Length == 0
		default: // add | copy
			// The right copy's backward extension was clipped at the
			// seam: pull it back through the left trailing literals.
			n := int64(matchBackward(ref, version, int(c.From), int(c.To), int(last.Length)))
			if n == 0 {
				return cmds, false
			}
			c.From -= n
			c.To -= n
			c.Length += n
			last.Length -= n
			stats.extends++
			stats.extendBytes += int(n)
			if last.Length > 0 {
				return cmds, false
			}
			cmds = cmds[:len(cmds)-1] // literal run wholly matched away
			// c may now continue the command before the dropped add.
		}
	}
	return cmds, false
}

// stitch concatenates the per-worker command streams into cmds. Literal
// bytes already sit in the shared arena (each segment's window starts at
// arena offset vlo), so no literal data is copied: add commands only get
// their window-local offsets rebased to absolute arena offsets, still
// carried in From until the caller resolves them. At each seam the
// streams are folded by seamJoin — an O(seams) pass plus the bytes any
// cross-seam match extension actually recovers.
//
//ipvet:allocfree
func stitch(segs []segment, cmds []delta.Command, ref, version, arena []byte) ([]delta.Command, seamStats) {
	var stats seamStats
	for i := range segs {
		sg := &segs[i]
		sg.e.flushAdd()
		base := int64(sg.vlo)
		atSeam := i > 0
		for k := range sg.e.cmds {
			c := sg.e.cmds[k]
			if c.Op == delta.OpAdd {
				c.From += base
			}
			if atSeam && len(cmds) > 0 {
				var consumed bool
				cmds, consumed = seamJoin(cmds, &c, ref, version, arena, &stats)
				if consumed {
					continue
				}
				atSeam = false
			}
			cmds = append(cmds, c)
		}
	}
	return cmds, stats
}

// recordStitch folds one stitch pass's seam statistics into the metrics.
//
//ipvet:allocfree
func (pl *Parallel) recordStitch(stats seamStats, w int) {
	pl.pmet.seamMerges.Add(int64(stats.merges))
	pl.pmet.seamExtends.Add(int64(stats.extends))
	pl.pmet.seamExtendBytes.Add(int64(stats.extendBytes))
	pl.pmet.segments.Add(int64(w))
}

// detachCommands copies the stitched command stream out of the pooled
// scratch: a fresh command slice and one compact literal arena holding
// exactly the surviving add bytes, with From offsets rewritten against
// it and resolved into sub-slices.
func detachCommands(cmds []delta.Command, scratch []byte) []delta.Command {
	out := make([]delta.Command, len(cmds))
	copy(out, cmds)
	var total int64
	for k := range out {
		if out[k].Op == delta.OpAdd {
			total += out[k].Length
		}
	}
	arena := make([]byte, 0, total)
	for k := range out {
		if out[k].Op != delta.OpAdd {
			continue
		}
		off := int64(len(arena))
		arena = append(arena, scratch[out[k].From:out[k].From+out[k].Length]...)
		out[k].From = off
	}
	resolveAdds(out, arena)
	return out
}

// Diff implements Algorithm. The result is detached: like (*Linear).Diff
// it costs three allocations (delta, command slice, one literal arena);
// the table, shared arena, and per-worker scratch come from the pool.
func (pl *Parallel) Diff(ref, version []byte) (*delta.Delta, error) {
	st, _ := pl.pool.Get().(*parallelState)
	if st == nil {
		st = &parallelState{}
	}
	w := pl.run(st, ref, version, nil)

	var span obs.Span
	if pl.pmet != nil {
		span = pl.pmet.stitch.Start()
	}
	ncmds := 0
	for i := 0; i < w; i++ {
		e := &st.segs[i].e
		e.flushAdd()
		ncmds += len(e.cmds)
	}
	if cap(st.cmds) < ncmds {
		st.cmds = make([]delta.Command, 0, ncmds)
	}
	cmds, stats := stitch(st.segs[:w], st.cmds[:0], ref, version, st.arena)
	st.cmds = cmds
	d := &delta.Delta{
		RefLen:     int64(len(ref)),
		VersionLen: int64(len(version)),
		Commands:   detachCommands(cmds, st.arena),
	}
	if pl.pmet != nil {
		span.End()
		pl.recordStitch(stats, w)
	}
	pl.pool.Put(st)
	pl.l.record(ref, version, len(d.Commands))
	return d, nil
}

// ParallelDiffer is the reusable parallel differencer for steady-state
// pipelines: one instance owns the fingerprint table, the per-worker
// arenas, and the stitched output, so repeated Diff calls perform no heap
// allocations at all once warm. The returned delta is owned by the differ
// and valid only until its next call — the contract of (*Differ).Diff. A
// ParallelDiffer is not safe for concurrent use; (*Parallel).Diff pools
// its state internally and is.
type ParallelDiffer struct {
	pl   *Parallel
	wp   *workerPool
	st   parallelState
	cmds []delta.Command
	out  delta.Delta
}

// NewParallelDiffer returns a reusable parallel differencer (workers <= 0
// means GOMAXPROCS) with the given options applied. The differ owns a set
// of persistent worker goroutines; Close releases them early, and a
// garbage-collected differ releases them automatically.
func NewParallelDiffer(workers int, opts ...LinearOption) *ParallelDiffer {
	pd := &ParallelDiffer{pl: NewParallel(workers, opts...)}
	pd.wp = newWorkerPool(pd.pl.workers)
	// The cleanup must not capture pd (it would never become unreachable);
	// it references only the pool.
	runtime.AddCleanup(pd, func(wp *workerPool) { wp.shutdown() }, pd.wp)
	return pd
}

// Close releases the differ's worker goroutines. The differ must not be
// used afterwards. Optional: an unreachable differ is cleaned up by the
// garbage collector.
func (pd *ParallelDiffer) Close() { pd.wp.shutdown() }

// Name identifies the algorithm in reports.
func (pd *ParallelDiffer) Name() string { return pd.pl.Name() }

// Workers returns the configured worker count.
func (pd *ParallelDiffer) Workers() int { return pd.pl.workers }

// Diff computes the delta like (*Parallel).Diff, into differ-owned
// storage that is reused by — and valid only until — the next call.
func (pd *ParallelDiffer) Diff(ref, version []byte) (*delta.Delta, error) {
	w := pd.pl.run(&pd.st, ref, version, pd.wp)

	var span obs.Span
	if pd.pl.pmet != nil {
		span = pd.pl.pmet.stitch.Start()
	}
	var stats seamStats
	pd.cmds, stats = stitch(pd.st.segs[:w], pd.cmds[:0], ref, version, pd.st.arena)
	resolveAdds(pd.cmds, pd.st.arena)
	pd.out = delta.Delta{
		RefLen:     int64(len(ref)),
		VersionLen: int64(len(version)),
		Commands:   pd.cmds,
	}
	if pd.pl.pmet != nil {
		span.End()
		pd.pl.recordStitch(stats, w)
	}
	pd.pl.l.record(ref, version, len(pd.out.Commands))
	return &pd.out, nil
}
