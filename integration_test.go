package ipdelta_test

// The grand integration test: one scenario exercising every subsystem the
// repository builds — release history in a delta-chain store, composed
// forward deltas, in-place conversion with and without a scratch budget,
// the wire codec, the flash device with power-cut injection and resume,
// the TCP update protocol, and rollback via delta inversion.

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"

	"ipdelta"
	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/device"
	"ipdelta/internal/graph"
	"ipdelta/internal/netupdate"
	"ipdelta/internal/store"
)

// buildReleases creates a 4-release firmware history with both scattered
// edits and a block swap (so cycles appear).
func buildReleases(t *testing.T) [][]byte {
	t.Helper()
	base := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: 64 << 10, ChangeRate: 0, Seed: 1001})
	releases := [][]byte{base.Ref}
	cur := base.Ref
	for k := 1; k <= 3; k++ {
		gen := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: len(cur), ChangeRate: 0.05, Seed: 1001 + int64(k)})
		v := append([]byte(nil), cur...)
		splice := len(v) / 8
		at := (k * 2 * splice) % (len(v) - splice)
		copy(v[at:at+splice], gen.Version[:splice])
		// A block swap for WR cycles.
		blk := len(v) / 16
		tmp := append([]byte(nil), v[:blk]...)
		copy(v[:blk], v[4*blk:5*blk])
		copy(v[4*blk:5*blk], tmp)
		releases = append(releases, v)
		cur = v
	}
	return releases
}

func TestGrandIntegration(t *testing.T) {
	releases := buildReleases(t)
	head := releases[len(releases)-1]

	// 1. Store the history as a delta chain; round-trip the container.
	st := store.New(releases[0])
	for _, v := range releases[1:] {
		if _, err := st.AppendVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := st.Save()
	if err != nil {
		t.Fatal(err)
	}
	st, err = store.Load(blob)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Composed direct delta v0→head, converted in place with a scratch
	// budget, carried over the scratch wire format.
	direct, err := st.DeltaBetween(0, len(releases)-1)
	if err != nil {
		t.Fatal(err)
	}
	ip, stats, err := ipdelta.ConvertInPlace(direct, releases[0], ipdelta.WithScratchBudget(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.CheckInPlace(); err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := ipdelta.Encode(&wire, ip, ipdelta.FormatScratch); err != nil {
		t.Fatal(err)
	}
	t.Logf("v0→v3: %d commands, %d stashed, %d converted, %d wire bytes",
		len(ip.Commands), stats.StashedCopies, stats.ConvertedCopies, wire.Len())

	// 3. A device on v0 applies it with power cuts injected until done.
	capacity := ip.InPlaceBufLen() + ip.ScratchRequired()
	flash, err := device.NewFlash(releases[0], capacity)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(flash, int64(len(releases[0])), 512)
	enc := wire.Bytes()
	cuts := 0
	for fail := int64(5); ; fail += 23 {
		flash.FailAfterWrites(fail)
		err := dev.Apply(bytes.NewReader(enc))
		if err == nil {
			break
		}
		if !errors.Is(err, device.ErrPowerCut) {
			t.Fatalf("unexpected error: %v", err)
		}
		cuts++
		if cuts > 50000 {
			t.Fatal("apply never completed")
		}
	}
	flash.FailAfterWrites(-1)
	if !bytes.Equal(dev.Image(), head) {
		t.Fatalf("device not on head after %d power cuts", cuts)
	}

	// 4. A second device updates from an intermediate release over TCP.
	srv, err := netupdate.NewServer(releases, netupdate.WithScratchBudget(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(l)
	}()
	flash2, err := device.NewFlash(releases[1], 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	dev2 := device.New(flash2, int64(len(releases[1])), device.DefaultWorkBufSize)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netupdate.UpdateDevice(conn, dev2); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if !bytes.Equal(dev2.Image(), head) {
		t.Fatal("TCP-updated device not on head")
	}

	// 5. Head turns out bad: roll the first device back to v2 in place.
	rb, _, err := st.RollbackDelta(2, graph.LocallyMinimum{})
	if err != nil {
		t.Fatal(err)
	}
	var rbWire bytes.Buffer
	if _, err := codec.Encode(&rbWire, rb, codec.FormatCompact); err != nil {
		t.Fatal(err)
	}
	if err := dev.Apply(&rbWire); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dev.Image(), releases[2]) {
		t.Fatal("rollback did not restore v2")
	}
	l.Close()
	wg.Wait()
}
