package store

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipdelta/internal/obs"
)

// buildCachedStore mirrors buildChainStore but applies store options.
func buildCachedStore(t testing.TB, n int, seed int64, opts ...Option) (*Store, [][]byte) {
	t.Helper()
	plain, versions := buildChainStore(t, n, seed)
	s := New(versions[0], opts...)
	for k := 1; k < n; k++ {
		if _, err := s.AppendVersion(versions[k]); err != nil {
			t.Fatal(err)
		}
	}
	_ = plain
	return s, versions
}

func TestCacheVersionCorrectness(t *testing.T) {
	s, versions := buildCachedStore(t, 8, 11, WithCache(4))
	// Two passes: the first populates and evicts, the second re-reads a mix
	// of cached and evicted versions. Every read must match the original.
	for pass := 0; pass < 2; pass++ {
		for k := len(versions) - 1; k >= 0; k-- {
			got, err := s.Version(k)
			if err != nil {
				t.Fatalf("pass %d Version(%d): %v", pass, k, err)
			}
			if !bytes.Equal(got, versions[k]) {
				t.Fatalf("pass %d Version(%d) differs", pass, k)
			}
		}
	}
}

func TestCacheHitAndAncestorReplay(t *testing.T) {
	reg := obs.NewRegistry()
	s, versions := buildCachedStore(t, 8, 12, WithCache(16), WithObserver(reg))
	// Cold read of the head replays the whole chain once.
	if _, err := s.Version(7); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	coldReplays := snap.Counter("ipdelta_store_chain_replays_total")
	if coldReplays != 7 {
		t.Fatalf("cold replays = %d, want 7", coldReplays)
	}
	// A repeat is a pure hit: no further replays, hit counter moves.
	if _, err := s.Version(7); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counter("ipdelta_store_chain_replays_total"); got != coldReplays {
		t.Fatalf("hit caused replays: %d -> %d", coldReplays, got)
	}
	if hits := snap.Counter("ipdelta_store_cache_version_hits_total"); hits != 1 {
		t.Fatalf("version hits = %d, want 1", hits)
	}
	// AppendVersion materializes the head via the cache, so reading the new
	// head replays exactly one link from the cached ancestor.
	if _, err := s.AppendVersion(append([]byte(nil), versions[7]...)); err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot().Counter("ipdelta_store_chain_replays_total")
	if _, err := s.Version(8); err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot().Counter("ipdelta_store_chain_replays_total")
	if after != before {
		// Version 8 may itself have been cached by AppendVersion's head
		// read; either zero or one replay is fine, never a full chain.
		t.Logf("replays %d -> %d", before, after)
	}
	if after-before > 1 {
		t.Fatalf("ancestor replay applied %d links, want <= 1", after-before)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	s, versions := buildCachedStore(t, 6, 13, WithCache(2), WithObserver(reg))
	for k := range versions {
		if _, err := s.Version(k); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.cache.len(); n > 2 {
		t.Fatalf("cache holds %d entries, max 2", n)
	}
	if ev := reg.Snapshot().Counter("ipdelta_store_cache_evictions_total"); ev == 0 {
		t.Fatal("no evictions recorded after overflowing the cache")
	}
	// Evicted versions still materialize correctly.
	got, err := s.Version(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, versions[0]) {
		t.Fatal("Version(0) differs after eviction")
	}
}

func TestCacheDeltaBetweenMemoized(t *testing.T) {
	s, versions := buildCachedStore(t, 6, 14, WithCache(8))
	d1, err := s.DeltaBetween(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.DeltaBetween(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("DeltaBetween not memoized: distinct pointers for same (from,to)")
	}
	got, err := d1.Apply(versions[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, versions[5]) {
		t.Fatal("memoized composed delta does not reproduce the target")
	}
}

// TestCacheSingleflightDedup drives matCache.do directly: N concurrent
// requests for one missing key must share a single computation.
func TestCacheSingleflightDedup(t *testing.T) {
	reg := obs.NewRegistry()
	c := newMatCache(8, reg)
	key := cacheKey{kind: kindVersion, to: 3}

	const waiters = 4
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	results := make(chan []byte, waiters+1)

	go func() {
		v, err := c.do(key, func() (any, error) {
			calls.Add(1)
			close(entered)
			<-release
			return []byte("payload"), nil
		})
		if err != nil {
			t.Error(err)
		}
		results <- v.([]byte)
	}()
	<-entered

	var wg sync.WaitGroup
	for k := 0; k < waiters; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.do(key, func() (any, error) {
				calls.Add(1)
				return []byte("duplicate"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results <- v.([]byte)
		}()
	}
	// Wait until every duplicate has registered against the in-flight
	// computation before releasing it.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counter("ipdelta_store_cache_dedup_waits_total") < waiters {
		if time.Now().After(deadline) {
			t.Fatal("duplicates never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("computation ran %d times, want 1", n)
	}
	close(results)
	for v := range results {
		if string(v) != "payload" {
			t.Fatalf("waiter observed %q, want the flight's payload", v)
		}
	}
	if misses := reg.Snapshot().Counter("ipdelta_store_cache_version_misses_total"); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

// TestCacheConcurrentVersionAppend exercises readers racing appends and the
// cache; it is primarily a -race target (see CI).
func TestCacheConcurrentVersionAppend(t *testing.T) {
	s, versions := buildCachedStore(t, 4, 15, WithCache(4))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(s.NumVersions())
				got, err := s.Version(i)
				if err != nil {
					t.Error(err)
					return
				}
				if i < len(versions) && !bytes.Equal(got, versions[i]) {
					t.Errorf("Version(%d) differs under concurrency", i)
					return
				}
				if j := rng.Intn(s.NumVersions()); j >= i {
					if _, err := s.DeltaBetween(i, j); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(w))
	}
	for k := 0; k < 6; k++ {
		v := append([]byte(nil), versions[len(versions)-1]...)
		for p := 0; p < 50; p++ {
			v[(k*97+p*13)%len(v)]++
		}
		if _, err := s.AppendVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestStoreCacheHitAllocs gates the hit path at zero allocations: a map
// probe and a list splice, no copies.
func TestStoreCacheHitAllocs(t *testing.T) {
	s, _ := buildCachedStore(t, 6, 16, WithCache(8))
	if _, err := s.Version(5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeltaBetween(1, 5); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Version(5); err != nil {
			t.Fatal(err)
		}
		if _, err := s.DeltaBetween(1, 5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("cache hit path allocates %.1f per op, want 0", allocs)
	}
}
