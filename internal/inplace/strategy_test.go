package inplace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
)

func TestSCCStrategyCorrectness(t *testing.T) {
	// The SCC strategy must produce correct in-place deltas on the same
	// inputs as the DFS strategy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make([]byte, rng.Intn(4<<10)+64)
		rng.Read(ref)
		version := mutateBytes(rng, ref)
		d, err := diff.NewLinear(diff.WithSeedLen(8)).Diff(ref, version)
		if err != nil {
			return false
		}
		out, st, err := Convert(d, ref, WithStrategy(StrategySCCGreedy))
		if err != nil {
			return false
		}
		if st.Policy != "scc-greedy" {
			return false
		}
		if out.Validate() != nil || out.CheckInPlace() != nil {
			return false
		}
		buf := make([]byte, out.InPlaceBufLen())
		copy(buf, ref)
		if out.ApplyInPlace(buf) != nil {
			return false
		}
		return bytes.Equal(buf[:out.VersionLen], version)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCStrategyBeatsLMOnAdversarialTree(t *testing.T) {
	// On the Figure 2 instance, the SCC-greedy strategy sees the root hub
	// and converts only it, where locally-minimum converts every leaf.
	depth, leafLen := 5, 32
	d := AdversarialDelta(depth, leafLen)
	ref := make([]byte, d.RefLen)
	rand.New(rand.NewSource(1)).Read(ref)

	_, lm, err := Convert(d, ref, WithPolicy(graph.LocallyMinimum{}))
	if err != nil {
		t.Fatal(err)
	}
	outSCC, scc, err := Convert(d, ref, WithStrategy(StrategySCCGreedy))
	if err != nil {
		t.Fatal(err)
	}
	if scc.ConvertedCopies != 1 {
		t.Fatalf("scc-greedy converted %d copies, want 1 (the root)", scc.ConvertedCopies)
	}
	if scc.ConvertedBytes >= lm.ConvertedBytes {
		t.Fatalf("scc-greedy (%d bytes) not better than LM (%d bytes)", scc.ConvertedBytes, lm.ConvertedBytes)
	}
	// And the result still reconstructs correctly in place.
	want, err := d.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, outSCC.InPlaceBufLen())
	copy(buf, ref)
	if err := outSCC.ApplyInPlace(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:outSCC.VersionLen], want) {
		t.Fatal("scc-greedy result reconstructs the wrong version")
	}
}

func TestSCCStrategyNoCyclesNoConversions(t *testing.T) {
	d := QuadraticDelta(16) // acyclic CRWI digraph
	ref := make([]byte, d.RefLen)
	_, st, err := Convert(d, ref, WithStrategy(StrategySCCGreedy))
	if err != nil {
		t.Fatal(err)
	}
	if st.ConvertedCopies != 0 {
		t.Fatalf("converted %d copies on an acyclic instance", st.ConvertedCopies)
	}
}
