package ipdelta

// One benchmark per table/figure of the paper (see DESIGN.md §4), plus
// micro-benchmarks for the pipeline stages. Run with:
//
//	go test -bench=. -benchmem
//
// The paper's numbers to compare shapes against:
//   - Table 1: compression 15.3% → 17.2% (offsets) → 17.7% (LM) → 21.2% (CT)
//   - §7: in-place conversion ≈ 56% of delta-compression time
//   - Figure 2: locally-minimum k× worse than optimal on the tree
//   - Figure 3 / Lemma 1: Θ(|C|²) edges, ≤ L
//   - §1: transfers shrink 4–10×

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/delta"
	"ipdelta/internal/device"
	"ipdelta/internal/diff"
	"ipdelta/internal/experiments"
	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
	"ipdelta/internal/store"
)

// benchPair returns a deterministic binary version pair for the
// micro-benchmarks.
func benchPair(size int) corpus.Pair {
	return corpus.Generate(corpus.PairSpec{
		Profile:    corpus.Binary,
		Size:       size,
		ChangeRate: 0.08,
		Seed:       1998,
	})
}

// BenchmarkTable1 regenerates the paper's Table 1 over the small corpus
// (E1). Use cmd/ipbench -table1 for the full corpus with printed rows.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	pairs := corpus.SmallCorpus(1998)
	algo := diff.NewLinear()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(pairs, algo)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkConvertVsDiff* reproduce the §7 timing claim (E2): compare the
// per-op times of these three benchmarks — conversion should be well under
// diff time, and locally-minimum should not cost more than constant-time.
func BenchmarkConvertVsDiffDiff(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	algo := diff.NewLinear()
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Diff(p.Ref, p.Version); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkConvert(b *testing.B, policy graph.Policy) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	d, err := diff.NewLinear().Diff(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := inplace.Convert(d, p.Ref, inplace.WithPolicy(policy)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvertVsDiffConvertLM(b *testing.B) { benchmarkConvert(b, graph.LocallyMinimum{}) }
func BenchmarkConvertVsDiffConvertCT(b *testing.B) { benchmarkConvert(b, graph.ConstantTime{}) }

// BenchmarkFig2Adversarial drives the Figure 2 adversarial tree (E3).
func BenchmarkFig2Adversarial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2([]int{8}, 64)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].LMOverOptimal < float64(res.Rows[0].Leaves)/4 {
			b.Fatal("adversarial gap collapsed")
		}
	}
}

// BenchmarkFig3EdgeBound drives the Figure 3 quadratic-edge construction
// (E4), including the Lemma 1 check.
func BenchmarkFig3EdgeBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3([]int{256})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Rows[0].BoundOK {
			b.Fatal("Lemma 1 violated")
		}
	}
}

// BenchmarkTransfer runs one full update session per iteration (E5).
func BenchmarkTransfer(b *testing.B) {
	b.ReportAllocs()
	pairs := corpus.SmallCorpus(1998)[:1]
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTransfer(pairs, []int64{28_800})
		if err != nil {
			b.Fatal(err)
		}
		if res.MeanSpeedup <= 1 {
			b.Fatal("no speedup")
		}
	}
}

// BenchmarkCodewords measures the format ablation (E6).
func BenchmarkCodewords(b *testing.B) {
	b.ReportAllocs()
	pairs := corpus.SmallCorpus(1998)
	algo := diff.NewLinear()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCodewords(pairs, algo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicies measures the policy-vs-optimal ablation (E7) on a
// reduced instance count.
func BenchmarkPolicies(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPolicies(20, 10, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// --- pipeline micro-benchmarks ---

func BenchmarkDiffLinear(b *testing.B) {
	b.ReportAllocs()
	for _, size := range []int{64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.ReportAllocs()
			p := benchPair(size)
			algo := diff.NewLinear()
			b.SetBytes(int64(len(p.Version)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := algo.Diff(p.Ref, p.Version); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDiffGreedy(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(64 << 10)
	algo := diff.NewGreedy()
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Diff(p.Ref, p.Version); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeCompact(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	ip, _, err := DiffInPlace(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(io.Discard, ip, codec.FormatCompact); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCompact(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	ip, _, err := DiffInPlace(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := codec.Encode(&buf, ip, codec.FormatCompact); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := codec.Decode(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyScratch(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	ip, _, err := DiffInPlace(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Apply(p.Ref); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyInPlace(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	ip, _, err := DiffInPlace(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, ip.InPlaceBufLen())
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, p.Ref)
		if err := ip.ApplyInPlace(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceApply(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	ip, _, err := DiffInPlace(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := codec.Encode(&buf, ip, codec.FormatCompact); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	capacity := ip.InPlaceBufLen()
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		flash, err := device.NewFlash(p.Ref, capacity)
		if err != nil {
			b.Fatal(err)
		}
		dev := device.New(flash, int64(len(p.Ref)), device.DefaultWorkBufSize)
		b.StartTimer()
		if err := dev.Apply(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCRWIConstruction(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(1 << 20)
	d, err := diff.NewLinear().Diff(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(d.NumCopies()), "copies")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := inplace.Convert(d, p.Ref); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrategies measures the E8 cycle-breaking strategy ablation.
func BenchmarkStrategies(b *testing.B) {
	b.ReportAllocs()
	pairs := corpus.SmallCorpus(1998)
	algo := diff.NewLinear()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunStrategies(pairs, algo, 6, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComposition measures the E9 composed-chain experiment.
func BenchmarkComposition(b *testing.B) {
	b.ReportAllocs()
	base := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 32 << 10, ChangeRate: 0.05, Seed: 1998})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunComposition(base, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompose measures raw two-delta composition.
func BenchmarkCompose(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	d1, err := diff.NewLinear().Diff(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	mid := p.Version
	next := append([]byte(nil), mid...)
	copy(next[1024:8192], mid[32<<10:])
	d2, err := diff.NewLinear().Diff(mid, next)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := delta.Compose(d1, d2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvertSCCGreedy measures the alternative strategy's cost
// against BenchmarkConvertVsDiffConvertLM.
func BenchmarkConvertSCCGreedy(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	d, err := diff.NewLinear().Diff(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := inplace.Convert(d, p.Ref, inplace.WithStrategy(inplace.StrategySCCGreedy)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAppendAndServe measures delta-chain store operations.
func BenchmarkStoreAppendAndServe(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(64 << 10)
	for i := 0; i < b.N; i++ {
		s := store.New(p.Ref)
		if _, err := s.AppendVersion(p.Version); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.InPlaceDeltaTo(0, graph.LocallyMinimum{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffParallel measures the sharded differencer at several worker
// counts; compare against BenchmarkDiffLinear on a multi-core host.
func BenchmarkDiffParallel(b *testing.B) {
	p := benchPair(1 << 20)
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			pd := diff.NewParallelDiffer(workers)
			defer pd.Close()
			b.SetBytes(int64(len(p.Version)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pd.Diff(p.Ref, p.Version); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiffAuto measures the self-selecting engine across the
// crossover: compare each size against the matching BenchmarkDiffLinear
// and BenchmarkDiffParallel rows — auto should track whichever wins.
func BenchmarkDiffAuto(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.ReportAllocs()
			p := benchPair(size)
			ad := diff.NewAutoDiffer()
			defer ad.Close()
			b.SetBytes(int64(len(p.Version)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ad.Diff(p.Ref, p.Version); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreVersionCached measures serving the head of a deep delta
// chain cold (replay per request) and through the materialization cache.
func BenchmarkStoreVersionCached(b *testing.B) {
	const depth = 32
	p := benchPair(64 << 10)
	versions := [][]byte{p.Ref}
	cur := p.Ref
	for k := 1; k < depth; k++ {
		v := append([]byte(nil), cur...)
		splice := len(v) / 6
		off := (k * 131) % (len(v) - splice)
		copy(v[off:off+splice], p.Version[off:off+splice])
		for j := 0; j < 64; j++ {
			v[(off+j*97)%len(v)] ^= byte(k)
		}
		versions = append(versions, v)
		cur = v
	}
	build := func(b *testing.B, opts ...store.Option) *store.Store {
		s := store.New(versions[0], opts...)
		for _, v := range versions[1:] {
			if _, err := s.AppendVersion(v); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	head := depth - 1
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		s := build(b)
		b.SetBytes(int64(len(versions[head])))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Version(head); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		s := build(b, store.WithCache(8))
		if _, err := s.Version(head); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(versions[head])))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Version(head); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAlgorithms measures the E10 differencing algorithm ablation.
func BenchmarkAlgorithms(b *testing.B) {
	b.ReportAllocs()
	pairs := corpus.SmallCorpus(1998)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAlgorithms(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffBlockwise complements the linear/greedy micro-benchmarks.
func BenchmarkDiffBlockwise(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(64 << 10)
	algo := diff.NewBlockwise()
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Diff(p.Ref, p.Version); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyze measures the conflict analysis used by `ipdelta info`.
func BenchmarkAnalyze(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	d, err := diff.NewLinear().Diff(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inplace.Analyze(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleet measures the E11 fleet rollout simulation.
func BenchmarkFleet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFleet(16<<10, 3, 10, 256_000, 1998); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScratch measures the E12 bounded-scratch trade-off sweep.
func BenchmarkScratch(b *testing.B) {
	b.ReportAllocs()
	pairs := corpus.SmallCorpus(1998)
	algo := diff.NewLinear()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunScratch(pairs, algo, []float64{0, 0.05, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvert measures reverse-delta generation.
func BenchmarkInvert(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	d, err := diff.NewLinear().Diff(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := delta.Invert(d, p.Ref); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffSuffix completes the differencing micro-benchmarks.
func BenchmarkDiffSuffix(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(64 << 10)
	algo := diff.NewSuffix()
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Diff(p.Ref, p.Version); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvertScratchBudget measures conversion under a scratch budget.
func BenchmarkConvertScratchBudget(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	d, err := diff.NewLinear().Diff(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := inplace.Convert(d, p.Ref, inplace.WithScratchBudget(16<<10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvertBatch measures the concurrent batch converter against
// the sequential loop (compare with GOMAXPROCS × BenchmarkConvertVsDiffConvertLM).
func BenchmarkConvertBatch(b *testing.B) {
	b.ReportAllocs()
	const n = 16
	jobs := make([]inplace.Job, 0, n)
	for k := 0; k < n; k++ {
		p := corpus.Generate(corpus.PairSpec{
			Profile: corpus.Binary, Size: 64 << 10, ChangeRate: 0.08, Seed: int64(k),
		})
		d, err := diff.NewLinear().Diff(p.Ref, p.Version)
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, inplace.Job{Delta: d, Ref: p.Ref})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range inplace.ConvertBatch(jobs, 0) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// --- zero-allocation pipeline benchmarks ---
//
// These pair with the one-shot benchmarks above: the same work through the
// reusable Converter/Differ, whose steady-state allocation counts are
// gated by AllocsPerRun tests in internal/inplace and internal/diff.

// BenchmarkConverterReuse measures conversion through a pooled Converter
// (compare with BenchmarkConvertVsDiffConvertLM, the one-shot path).
func BenchmarkConverterReuse(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	d, err := diff.NewLinear().Diff(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	cv := inplace.NewConverter()
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cv.Convert(d, p.Ref); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDifferReuse measures differencing through a reusable Differ
// (compare with BenchmarkDiffLinear, the one-shot path).
func BenchmarkDifferReuse(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(256 << 10)
	dr := diff.NewDiffer()
	b.SetBytes(int64(len(p.Version)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dr.Diff(p.Ref, p.Version); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildCRWI isolates sweep-line CRWI digraph construction
// (validate + partition + sort + build, no topological sort or emission).
func BenchmarkBuildCRWI(b *testing.B) {
	b.ReportAllocs()
	p := benchPair(1 << 20)
	d, err := diff.NewLinear().Diff(p.Ref, p.Version)
	if err != nil {
		b.Fatal(err)
	}
	cv := inplace.NewConverter()
	b.ReportMetric(float64(d.NumCopies()), "copies")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cv.BuildCRWI(d); err != nil {
			b.Fatal(err)
		}
	}
}
