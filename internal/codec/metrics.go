package codec

import (
	"sync/atomic"

	"ipdelta/internal/obs"
)

// codecMetrics holds the pre-resolved metric handles of the package-level
// observer (DESIGN.md §9). Handles are bound once in SetObserver; the
// encode/decode paths only load one atomic pointer and bump counters, so
// observation adds no per-call allocations.
type codecMetrics struct {
	encodes        *obs.Counter
	encodeBytes    *obs.Counter
	encodeCommands *obs.Counter
	encodeErrors   *obs.Counter

	decodes        *obs.Counter
	decodeBytes    *obs.Counter
	decodeCommands *obs.Counter
	decodeErrors   *obs.Counter
}

// observer is the package-wide metric set. Encode and Decode are free
// functions with no receiver to hang per-instance handles on, so the
// registry attaches at package level, swapped atomically.
var observer atomic.Pointer[codecMetrics]

// SetObserver attaches a metrics registry to the package: every Encode and
// Decode then records call, byte, command, and error counters into it. A
// nil registry detaches. Safe for concurrent use with in-flight calls; a
// call that started before SetObserver keeps reporting to the registry it
// loaded first.
func SetObserver(r *obs.Registry) {
	if r == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&codecMetrics{
		encodes:        r.Counter("ipdelta_codec_encode_total"),
		encodeBytes:    r.Counter("ipdelta_codec_encode_bytes_total"),
		encodeCommands: r.Counter("ipdelta_codec_encode_commands_total"),
		encodeErrors:   r.Counter("ipdelta_codec_encode_errors_total"),
		decodes:        r.Counter("ipdelta_codec_decode_total"),
		decodeBytes:    r.Counter("ipdelta_codec_decode_bytes_total"),
		decodeCommands: r.Counter("ipdelta_codec_decode_commands_total"),
		decodeErrors:   r.Counter("ipdelta_codec_decode_errors_total"),
	})
}
