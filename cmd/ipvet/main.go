// Command ipvet runs the project's static analyzers over the module:
//
//	go run ./cmd/ipvet ./...
//
// It exits 0 when every package is clean and 1 with file:line diagnostics
// otherwise. Run it from the module root (the loader resolves import paths
// against the enclosing go.mod). The suite covers offset arithmetic
// (offsetsafe), buffer aliasing (aliascheck), lock discipline (locksafe),
// dropped codec/store errors (errpropagate), and calls to the deprecated
// pre-options convert shims (deprecatedapi). Individual findings can be
// suppressed with a trailing or preceding comment:
//
//	//ipvet:ignore offsetsafe -- bounded by the header check above
//
// Use -list to print the analyzers and the invariant each one enforces.
package main

import (
	"flag"
	"fmt"
	"os"

	"ipdelta/internal/lint"
	"ipdelta/internal/lint/loader"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ipvet [-list] [packages]\n\npackages are directory patterns like ./... (the default)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := loader.New(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipvet:", err)
		os.Exit(2)
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipvet:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ipvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
