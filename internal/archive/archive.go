package archive

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"ipdelta/internal/obs"
)

// Archive-level errors.
var (
	// ErrUnrecoverable reports a stripe with fewer than k usable shards.
	ErrUnrecoverable = errors.New("archive: stripe unrecoverable")
	// ErrCorrupt reports a reconstructed blob that fails its own CRC —
	// more shards were silently rotten than the per-shard CRCs caught.
	ErrCorrupt = errors.New("archive: corrupt stripe")
	// ErrNoSuchStripe reports a Get/repair of an unknown stripe ID.
	ErrNoSuchStripe = errors.New("archive: no such stripe")
)

// stripe is the archive's metadata for one coded blob: where the shards
// live is implicit (shard j of stripe s is ShardID{s, j} on node j); what
// they must contain is pinned by the CRCs recorded at Put time.
type stripe struct {
	shardSize int
	blobLen   int
	blobCRC   uint32
	shardCRC  []uint32 // len n
}

// archiveMetrics holds pre-resolved obs handles; all fields are nil-safe.
type archiveMetrics struct {
	reads         *obs.Counter // Get calls that returned a blob
	degradedReads *obs.Counter // ... that needed reconstruction
	readFailures  *obs.Counter // Get calls that failed
	shardFaults   *obs.Counter // unusable shards seen by Get/Scrub/Repair
	scrubShards   *obs.Counter // shards checked by Scrub
	scrubCorrupt  *obs.Counter // CRC mismatches found by Scrub
	scrubMissing  *obs.Counter // missing/unreadable shards found by Scrub
	repaired      *obs.Counter // shards rebuilt and rewritten by Repair
	repairFails   *obs.Counter // shards Repair could not write back

	encode obs.Stage
	read   obs.Stage
	scrub  obs.Stage
	repair obs.Stage
}

func resolveArchiveMetrics(r *obs.Registry) *archiveMetrics {
	return &archiveMetrics{
		reads:         r.Counter("ipdelta_archive_reads_total"),
		degradedReads: r.Counter("ipdelta_archive_degraded_reads_total"),
		readFailures:  r.Counter("ipdelta_archive_read_failures_total"),
		shardFaults:   r.Counter("ipdelta_archive_shard_faults_total"),
		scrubShards:   r.Counter("ipdelta_archive_scrub_shards_total"),
		scrubCorrupt:  r.Counter("ipdelta_archive_scrub_corrupt_total"),
		scrubMissing:  r.Counter("ipdelta_archive_scrub_missing_total"),
		repaired:      r.Counter("ipdelta_archive_repaired_shards_total"),
		repairFails:   r.Counter("ipdelta_archive_repair_failures_total"),
		encode:        r.Stage("ipdelta_archive_stage_encode_nanos"),
		read:          r.Stage("ipdelta_archive_stage_read_nanos"),
		scrub:         r.Stage("ipdelta_archive_stage_scrub_nanos"),
		repair:        r.Stage("ipdelta_archive_stage_repair_nanos"),
	}
}

// Archive stripes blobs across a fixed group of n = k+m nodes as
// systematic Reed–Solomon code words: shard j of every stripe lives on
// node j, so losing a node costs exactly one shard per stripe and any k
// surviving nodes can serve every blob. Per-shard CRC32s recorded at Put
// time let reads and the scrub pass detect silent corruption; Repair
// re-encodes missing or corrupt shards from surviving peers. An Archive
// is safe for concurrent use.
type Archive struct {
	coder *Coder
	nodes []*Node

	mu      sync.RWMutex
	stripes map[uint64]*stripe

	met *archiveMetrics
}

// Option customizes an Archive.
type Option func(*Archive)

// WithObserver attaches a metrics registry: read/degraded-read/failure
// and scrub/repair counters plus encode/read/scrub/repair stage timers.
func WithObserver(r *obs.Registry) Option {
	return func(a *Archive) {
		if r != nil {
			a.met = resolveArchiveMetrics(r)
		}
	}
}

// New builds an archive striping over the given nodes with
// dataShards + parityShards == len(nodes).
func New(nodes []*Node, dataShards, parityShards int, opts ...Option) (*Archive, error) {
	if len(nodes) != dataShards+parityShards {
		return nil, fmt.Errorf("%w: %d nodes for %d+%d shards",
			ErrShardCount, len(nodes), dataShards, parityShards)
	}
	coder, err := NewCoder(dataShards, parityShards)
	if err != nil {
		return nil, err
	}
	a := &Archive{
		coder:   coder,
		nodes:   append([]*Node(nil), nodes...),
		stripes: make(map[uint64]*stripe),
	}
	for _, o := range opts {
		o(a)
	}
	return a, nil
}

// NewWithNodes builds n fresh healthy nodes and an archive over them.
func NewWithNodes(dataShards, parityShards int, opts ...Option) (*Archive, []*Node, error) {
	nodes := make([]*Node, dataShards+parityShards)
	for i := range nodes {
		nodes[i] = NewNode(i)
	}
	a, err := New(nodes, dataShards, parityShards, opts...)
	if err != nil {
		return nil, nil, err
	}
	return a, nodes, nil
}

// Nodes returns the stripe group (shared, for fault injection in tests
// and chaos harnesses).
func (a *Archive) Nodes() []*Node { return a.nodes }

// DataShards returns k.
func (a *Archive) DataShards() int { return a.coder.k }

// ParityShards returns m.
func (a *Archive) ParityShards() int { return a.coder.m }

// Stripes returns the stored stripe IDs in ascending order.
func (a *Archive) Stripes() []uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	ids := make([]uint64, 0, len(a.stripes))
	for id := range a.stripes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Put encodes blob into k+m shards and stores shard j on node j under
// stripe id, replacing any previous stripe with that id. Up to m shards
// may fail to store (their nodes down or flaky) and the stripe is still
// readable and repairable; more than m put failures is an error and the
// stripe is not recorded.
func (a *Archive) Put(id uint64, blob []byte) error {
	var span obs.Span
	if a.met != nil {
		span = a.met.encode.Start()
	}
	k, n := a.coder.k, a.coder.TotalShards()
	shardSize := (len(blob) + k - 1) / k
	// Pad the blob to k equal shards; the true length is stripe metadata.
	padded := make([]byte, shardSize*k)
	copy(padded, blob)
	shards := make([][]byte, n)
	for j := 0; j < k; j++ {
		shards[j] = padded[j*shardSize : (j+1)*shardSize]
	}
	if err := a.coder.Encode(shards); err != nil {
		return err
	}
	st := &stripe{
		shardSize: shardSize,
		blobLen:   len(blob),
		blobCRC:   crc32.ChecksumIEEE(blob),
		shardCRC:  make([]uint32, n),
	}
	failed := 0
	var firstErr error
	for j, s := range shards {
		st.shardCRC[j] = crc32.ChecksumIEEE(s)
		if err := a.nodes[j].Put(ShardID{Stripe: id, Index: j}, s); err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if a.met != nil {
		a.met.shardFaults.Add(int64(failed))
		span.End()
	}
	if failed > a.coder.m {
		return fmt.Errorf("%w: stripe %d: %d of %d shards failed to store: %v",
			ErrUnrecoverable, id, failed, n, firstErr)
	}
	a.mu.Lock()
	a.stripes[id] = st
	a.mu.Unlock()
	return nil
}

// fetchShards pulls every shard of st from its node, verifying the
// recorded CRC; unusable shards (node down, missing, wrong size, rotten)
// come back nil. Returns the usable count.
func (a *Archive) fetchShards(id uint64, st *stripe) ([][]byte, int) {
	n := a.coder.TotalShards()
	shards := make([][]byte, n)
	good := 0
	for j := 0; j < n; j++ {
		b, err := a.nodes[j].Get(ShardID{Stripe: id, Index: j})
		if err != nil || len(b) != st.shardSize || crc32.ChecksumIEEE(b) != st.shardCRC[j] {
			continue
		}
		shards[j] = b
		good++
	}
	return shards, good
}

// Get reads the blob stored under stripe id, reconstructing through the
// erasure code when shards are missing or corrupt (a degraded read). Any
// k usable shards suffice; the result is verified against the blob CRC
// recorded at Put time.
func (a *Archive) Get(id uint64) ([]byte, error) {
	var span obs.Span
	if a.met != nil {
		span = a.met.read.Start()
	}
	blob, degraded, err := a.get(id)
	if a.met != nil {
		if err != nil {
			a.met.readFailures.Inc()
		} else {
			a.met.reads.Inc()
			if degraded {
				a.met.degradedReads.Inc()
			}
		}
		span.End()
	}
	return blob, err
}

func (a *Archive) get(id uint64) ([]byte, bool, error) {
	a.mu.RLock()
	st := a.stripes[id]
	a.mu.RUnlock()
	if st == nil {
		return nil, false, fmt.Errorf("%w: %d", ErrNoSuchStripe, id)
	}
	k := a.coder.k
	shards, good := a.fetchShards(id, st)
	if bad := a.coder.TotalShards() - good; bad > 0 && a.met != nil {
		a.met.shardFaults.Add(int64(bad))
	}
	degraded := false
	for j := 0; j < k; j++ {
		if shards[j] == nil {
			degraded = true
			break
		}
	}
	if degraded {
		if good < k {
			return nil, true, fmt.Errorf("%w: stripe %d: %d of %d shards usable, need %d",
				ErrUnrecoverable, id, good, len(shards), k)
		}
		if err := a.coder.ReconstructData(shards); err != nil {
			return nil, true, fmt.Errorf("archive: stripe %d: %w", id, err)
		}
	}
	blob := make([]byte, 0, st.shardSize*k)
	for j := 0; j < k; j++ {
		blob = append(blob, shards[j]...)
	}
	blob = blob[:st.blobLen]
	if crc32.ChecksumIEEE(blob) != st.blobCRC {
		return nil, degraded, fmt.Errorf("%w: stripe %d blob CRC mismatch", ErrCorrupt, id)
	}
	return blob, degraded, nil
}

// ShardState classifies one shard during a scrub.
type ShardState uint8

// Shard states reported by Scrub.
const (
	ShardOK      ShardState = iota // present with matching CRC
	ShardMissing                   // node down, shard gone, or transient error
	ShardCorrupt                   // present but CRC or size mismatch
)

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Stripes       int // stripes walked
	ShardsChecked int // shards examined
	Missing       int // unreadable or absent shards
	Corrupt       int // CRC/size mismatches (silent bit-rot, truncation)
	BadStripes    int // stripes with at least one bad shard
	Unrecoverable int // stripes with fewer than k usable shards
	// PerStripe maps each damaged stripe to its per-shard states
	// (len n); healthy stripes are omitted.
	PerStripe map[uint64][]ShardState
}

// Clean reports whether the scrub found nothing wrong.
func (r *ScrubReport) Clean() bool { return r.Missing == 0 && r.Corrupt == 0 }

// String renders the report the way `ipstore scrub` prints it.
func (r *ScrubReport) String() string {
	return fmt.Sprintf("scrub: %d stripes, %d shards checked, %d missing, %d corrupt, %d stripes damaged, %d unrecoverable",
		r.Stripes, r.ShardsChecked, r.Missing, r.Corrupt, r.BadStripes, r.Unrecoverable)
}

// Scrub walks every shard of every stripe, verifying presence and CRC,
// and reports — but does not modify — what it finds. A clean scrub proves
// every stripe can be read without reconstruction; a dirty one names the
// shards Repair must rebuild.
func (a *Archive) Scrub() *ScrubReport {
	var span obs.Span
	if a.met != nil {
		span = a.met.scrub.Start()
	}
	rep := &ScrubReport{PerStripe: make(map[uint64][]ShardState)}
	n := a.coder.TotalShards()
	for _, id := range a.Stripes() {
		a.mu.RLock()
		st := a.stripes[id]
		a.mu.RUnlock()
		rep.Stripes++
		states := make([]ShardState, n)
		usable, bad := 0, false
		for j := 0; j < n; j++ {
			rep.ShardsChecked++
			b, err := a.nodes[j].Get(ShardID{Stripe: id, Index: j})
			switch {
			case err != nil:
				states[j] = ShardMissing
				rep.Missing++
				bad = true
			case len(b) != st.shardSize || crc32.ChecksumIEEE(b) != st.shardCRC[j]:
				states[j] = ShardCorrupt
				rep.Corrupt++
				bad = true
			default:
				states[j] = ShardOK
				usable++
			}
		}
		if bad {
			rep.BadStripes++
			rep.PerStripe[id] = states
			if usable < a.coder.k {
				rep.Unrecoverable++
			}
		}
	}
	if a.met != nil {
		a.met.scrubShards.Add(int64(rep.ShardsChecked))
		a.met.scrubCorrupt.Add(int64(rep.Corrupt))
		a.met.scrubMissing.Add(int64(rep.Missing))
		a.met.shardFaults.Add(int64(rep.Missing + rep.Corrupt))
		span.End()
	}
	return rep
}

// RepairReport summarizes one repair pass.
type RepairReport struct {
	Stripes       int // stripes examined
	Repaired      int // shards rebuilt and written back
	Failed        int // shards rebuilt but not writable (node still down)
	Unrecoverable int // stripes with fewer than k usable shards
}

// String renders the report the way `ipstore scrub -repair` prints it.
func (r *RepairReport) String() string {
	return fmt.Sprintf("repair: %d stripes, %d shards rebuilt, %d write failures, %d unrecoverable",
		r.Stripes, r.Repaired, r.Failed, r.Unrecoverable)
}

// Repair rebuilds every missing or corrupt shard from surviving peers and
// writes it back to its node: full re-encoding from any k usable shards,
// with each rebuilt shard verified against the CRC recorded at Put time
// before it is stored. Shards whose node is down stay missing (counted in
// Failed) and can be repaired after the node revives; stripes with fewer
// than k usable shards are counted Unrecoverable and left untouched.
func (a *Archive) Repair() *RepairReport {
	var span obs.Span
	if a.met != nil {
		span = a.met.repair.Start()
	}
	rep := &RepairReport{}
	n := a.coder.TotalShards()
	for _, id := range a.Stripes() {
		a.mu.RLock()
		st := a.stripes[id]
		a.mu.RUnlock()
		rep.Stripes++
		shards, good := a.fetchShards(id, st)
		if good == n {
			continue
		}
		if good < a.coder.k {
			rep.Unrecoverable++
			continue
		}
		// Remember which shards were unusable, then rebuild them all.
		missing := make([]int, 0, n-good)
		for j, s := range shards {
			if s == nil {
				missing = append(missing, j)
			}
		}
		if err := a.coder.Reconstruct(shards); err != nil {
			rep.Unrecoverable++
			continue
		}
		for _, j := range missing {
			if crc32.ChecksumIEEE(shards[j]) != st.shardCRC[j] {
				// Reconstruction disagrees with the recorded identity:
				// more rot than the CRCs caught. Leave the shard alone.
				rep.Failed++
				continue
			}
			if err := a.nodes[j].Put(ShardID{Stripe: id, Index: j}, shards[j]); err != nil {
				rep.Failed++
				continue
			}
			rep.Repaired++
		}
	}
	if a.met != nil {
		a.met.repaired.Add(int64(rep.Repaired))
		a.met.repairFails.Add(int64(rep.Failed))
		span.End()
	}
	return rep
}

// StripeInfo is one stripe's metadata in a Manifest.
type StripeInfo struct {
	ID        uint64   `json:"id"`
	ShardSize int      `json:"shard_size"`
	BlobLen   int      `json:"blob_len"`
	BlobCRC   uint32   `json:"blob_crc"`
	ShardCRC  []uint32 `json:"shard_crc"`
}

// Manifest captures an archive's coding parameters and stripe metadata so
// shard collections persisted elsewhere (for example `ipstore archive`'s
// node directories) can be reopened with Open.
type Manifest struct {
	DataShards   int          `json:"data_shards"`
	ParityShards int          `json:"parity_shards"`
	Stripes      []StripeInfo `json:"stripes"`
}

// Manifest snapshots the archive's metadata.
func (a *Archive) Manifest() *Manifest {
	a.mu.RLock()
	defer a.mu.RUnlock()
	m := &Manifest{DataShards: a.coder.k, ParityShards: a.coder.m}
	ids := make([]uint64, 0, len(a.stripes))
	for id := range a.stripes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := a.stripes[id]
		m.Stripes = append(m.Stripes, StripeInfo{
			ID:        id,
			ShardSize: st.shardSize,
			BlobLen:   st.blobLen,
			BlobCRC:   st.blobCRC,
			ShardCRC:  append([]uint32(nil), st.shardCRC...),
		})
	}
	return m
}

// Open rebuilds an Archive over existing nodes from a Manifest. Shard
// contents are whatever the nodes hold; a scrub pass reconciles them with
// the manifest's CRCs.
func Open(nodes []*Node, m *Manifest, opts ...Option) (*Archive, error) {
	a, err := New(nodes, m.DataShards, m.ParityShards, opts...)
	if err != nil {
		return nil, err
	}
	n := m.DataShards + m.ParityShards
	for _, si := range m.Stripes {
		if si.ShardSize < 0 || si.BlobLen < 0 || si.BlobLen > si.ShardSize*m.DataShards || len(si.ShardCRC) != n {
			return nil, fmt.Errorf("%w: manifest stripe %d", ErrCorrupt, si.ID)
		}
		a.stripes[si.ID] = &stripe{
			shardSize: si.ShardSize,
			blobLen:   si.BlobLen,
			blobCRC:   si.BlobCRC,
			shardCRC:  append([]uint32(nil), si.ShardCRC...),
		}
	}
	return a, nil
}
