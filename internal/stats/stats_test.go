package stats

import (
	"math"
	"strings"
	"testing"
)

func TestAggregate(t *testing.T) {
	var a Aggregate
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Fatal("empty aggregate must report NaN")
	}
	for _, v := range []float64{3, 1, 2} {
		a.Add(v)
	}
	if a.N() != 3 || a.Sum() != 6 {
		t.Fatalf("N=%d Sum=%f", a.N(), a.Sum())
	}
	if a.Mean() != 2 || a.Min() != 1 || a.Max() != 3 {
		t.Fatalf("mean=%f min=%f max=%f", a.Mean(), a.Min(), a.Max())
	}
}

func TestAggregateNegative(t *testing.T) {
	var a Aggregate
	a.Add(-5)
	a.Add(5)
	if a.Min() != -5 || a.Max() != 5 || a.Mean() != 0 {
		t.Fatalf("%f %f %f", a.Min(), a.Max(), a.Mean())
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.153); got != "15.3%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(1.0); got != "100.0%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.0KiB"},
		{3 << 20, "3.0MiB"},
		{5 << 30, "5.0GiB"},
	}
	for _, tt := range tests {
		if got := Bytes(tt.n); got != tt.want {
			t.Errorf("Bytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "Example",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-much-longer-name", "22")
	tbl.AddRow("short") // short row padded

	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Example") {
		t.Fatalf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[3], "alpha") {
		t.Fatalf("row misplaced: %q", lines[3])
	}
	// All data lines align: the "value" column starts at the same offset.
	at := strings.Index(lines[1], "value")
	if at < 0 || !strings.Contains(lines[3][at:], "1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableNoHeaders(t *testing.T) {
	tbl := Table{}
	tbl.AddRow("a", "b")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != 1 {
		t.Fatalf("unexpected output: %q", sb.String())
	}
}
