package device

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
)

func TestFaultyStoreDeterministic(t *testing.T) {
	inner, _ := NewFlash(nil, 64)
	f := NewFaultyStore(inner)
	if f.Capacity() != 64 {
		t.Fatalf("Capacity = %d", f.Capacity())
	}
	buf := make([]byte, 4)
	// Disarmed: everything works.
	if err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// Fail after 2 more ops.
	f.FailAfterOps(2)
	if err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadAt(buf, 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("error = %v, want ErrPowerCut", err)
	}
	f.FailAfterOps(-1)
	if err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFaultyStoreRandomWriteFailures(t *testing.T) {
	inner, _ := NewFlash(nil, 1024)
	f := NewFaultyStore(inner)
	f.WithRandomWriteFailures(0.5, 42)
	buf := make([]byte, 8)
	failures := 0
	for k := 0; k < 200; k++ {
		err := f.WriteAt(buf, 0)
		if errors.Is(err, ErrPowerCut) {
			t.Fatal("flaky write reported as power cut")
		}
		if errors.Is(err, ErrTransientIO) {
			failures++
		}
	}
	if failures < 50 || failures > 150 {
		t.Fatalf("%d/200 failures at p=0.5", failures)
	}
	// Reads are unaffected by write-failure injection.
	if err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFaultyStoreFailEveryOps(t *testing.T) {
	inner, _ := NewFlash(nil, 64)
	f := NewFaultyStore(inner)
	f.FailEveryOps(3)
	buf := make([]byte, 4)
	for round := 0; round < 3; round++ {
		for k := 0; k < 2; k++ {
			if err := f.ReadAt(buf, 0); err != nil {
				t.Fatalf("round %d op %d: %v", round, k, err)
			}
		}
		if err := f.ReadAt(buf, 0); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("round %d: error = %v, want recurring ErrPowerCut", round, err)
		}
	}
	f.FailEveryOps(0)
	if err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
}

// inertStore is a goroutine-safe no-op Store, isolating FaultyStore's own
// locking from Flash (which, like a real device, is single-threaded).
type inertStore struct{}

func (inertStore) ReadAt(p []byte, off int64) error  { return nil }
func (inertStore) WriteAt(p []byte, off int64) error { return nil }
func (inertStore) Capacity() int64                   { return 1024 }

func TestFaultyStoreConcurrentAccess(t *testing.T) {
	// Injection state is shared with connection-level chaos runs; hammer it
	// from several goroutines so the race detector can vet the locking.
	f := NewFaultyStore(inertStore{})
	f.WithRandomWriteFailures(0.1, 3)
	f.FailEveryOps(17)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			for k := 0; k < 500; k++ {
				_ = f.WriteAt(buf, 0)
				_ = f.ReadAt(buf, 0)
			}
		}()
	}
	wg.Wait()
}

func TestDeviceSurvivesFlakyStore(t *testing.T) {
	// A device retrying against a store with random write failures must
	// eventually converge with a correct image — the crash-only design.
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 24 << 10, ChangeRate: 0.12, Seed: 91})
	enc := buildInPlaceDelta(t, pair.Ref, pair.Version, codec.FormatCompact)
	inner, err := NewFlash(pair.Ref, 48<<10)
	if err != nil {
		t.Fatal(err)
	}
	flaky := NewFaultyStore(inner)
	flaky.WithRandomWriteFailures(0.02, 7)
	dev := New(flaky, int64(len(pair.Ref)), 512)

	attempts := 0
	for {
		err := dev.Apply(bytes.NewReader(enc))
		if err == nil {
			break
		}
		if !errors.Is(err, ErrTransientIO) {
			t.Fatalf("unexpected error: %v", err)
		}
		attempts++
		if attempts > 10000 {
			t.Fatal("never converged")
		}
	}
	if attempts == 0 {
		t.Skip("no failures triggered; widen probability")
	}
	if !bytes.Equal(dev.Image(), pair.Version) {
		t.Fatalf("image corrupt after %d flaky attempts", attempts)
	}
}
