package diff

import (
	"runtime"
	"sync"

	"ipdelta/internal/delta"
	"ipdelta/internal/obs"
)

// Parallel is the multi-core differencer. It keeps the Linear algorithm's
// structure — one Karp–Rabin fingerprint index over the reference, one
// left-to-right scan of the version — but spreads both phases across
// worker goroutines:
//
//   - the reference is split into shards that build the shared fingerprint
//     table concurrently, lock-free, with atomic min-offset-wins inserts
//     that converge on exactly the table the sequential build produces;
//   - the version is split into worker segments, each scanned into its own
//     pooled command arena. A segment's seed windows may read past its end
//     (the overlap window), but its commands cover exactly its byte range,
//     so the per-worker streams concatenate into a well-formed delta;
//   - the stitch pass merges seam-adjacent commands — a copy split in two
//     by a segment boundary whose halves are contiguous in both reference
//     and version, or a literal run split across two arenas — so output
//     quality tracks the sequential baseline; only matches that genuinely
//     straddle a seam unaligned are lost.
//
// Working memory (table, per-worker emitters) is pooled per instance, as
// in Linear; the detached Diff result costs the same three allocations.
// For the zero-allocation steady state, see ParallelDiffer.
type Parallel struct {
	l       *Linear // configuration, shared metrics, scan primitives
	workers int
	pmet    *parallelMetrics
	pool    sync.Pool // of *parallelState
}

// parallelMetrics holds the pre-resolved handles of an observed Parallel
// (DESIGN.md §10). Per-diff updates are atomic adds and value-type spans.
type parallelMetrics struct {
	seamMerges *obs.Counter // commands rejoined across segment boundaries
	segments   *obs.Counter // version segments scanned

	workerScan obs.Stage // one span per worker per diff
	stitch     obs.Stage // seam merge + command stream concatenation
}

func resolveParallelMetrics(r *obs.Registry) *parallelMetrics {
	return &parallelMetrics{
		seamMerges: r.Counter("ipdelta_diff_seam_merges_total"),
		segments:   r.Counter("ipdelta_diff_segments_total"),
		workerScan: r.Stage("ipdelta_diff_stage_worker_scan_nanos"),
		stitch:     r.Stage("ipdelta_diff_stage_stitch_nanos"),
	}
}

// minSegment is the smallest version segment worth a goroutine: below
// this, coordination overhead and seam losses dominate and the input is
// scanned with fewer workers (possibly one).
const minSegment = 4 << 10

// NewParallel returns a parallel differencer running the given number of
// workers (0 or negative means GOMAXPROCS). Options configure the
// underlying linear scan (seed length, table size, observer).
func NewParallel(workers int, opts ...LinearOption) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pl := &Parallel{l: NewLinear(opts...), workers: workers}
	if pl.l.obs != nil {
		pl.pmet = resolveParallelMetrics(pl.l.obs)
	}
	return pl
}

// Name implements Algorithm.
func (pl *Parallel) Name() string { return "parallel" }

// Workers returns the configured worker count.
func (pl *Parallel) Workers() int { return pl.workers }

// Phases a segment worker executes.
const (
	jobBuild = iota // index the reference shard (atomic inserts)
	jobScan         // scan the version range into the segment emitter
)

// segment is one worker's slice of a parallel diff: a reference shard for
// the build phase, a version range for the scan phase, and the emitter
// that owns the worker's command arena. Fields are rewritten per diff;
// nothing is allocated in steady state.
type segment struct {
	table     *krTable
	e         emitter
	ref       []byte
	version   []byte
	p         int
	rlo, rhi  int // reference seed range to index
	vlo, vhi  int // version byte range to scan
	minCopy   int
	job       int
	wg        *sync.WaitGroup
	scanStage obs.Stage
}

// run executes the segment's current job and signals completion.
//
//ipvet:allocfree
func (sg *segment) run() {
	switch sg.job {
	case jobBuild:
		buildTableShard(sg.table, sg.ref, sg.p, sg.rlo, sg.rhi)
	case jobScan:
		span := sg.scanStage.Start()
		scanRange(sg.table, &sg.e, sg.ref, sg.version, sg.p, sg.vlo, sg.vhi, sg.minCopy)
		span.End()
	}
	sg.wg.Done()
}

// workerPool is a set of persistent goroutines fed segments over an
// unbuffered channel. Channel sends and WaitGroup operations allocate
// nothing, which is what lets a ParallelDiffer hold the steady state at
// zero allocations per diff — a `go` statement with arguments heap-
// allocates its argument frame on every spawn.
type workerPool struct {
	work chan *segment
	stop sync.Once
}

func newWorkerPool(n int) *workerPool {
	wp := &workerPool{work: make(chan *segment)}
	for i := 0; i < n; i++ {
		go wp.worker()
	}
	return wp
}

func (wp *workerPool) worker() {
	for sg := range wp.work {
		sg.run()
	}
}

// shutdown releases the pool's goroutines. Idempotent.
func (wp *workerPool) shutdown() {
	wp.stop.Do(func() { close(wp.work) })
}

// parallelState is one diff's working memory: the shared fingerprint
// table and the per-worker segments. Pooled per Parallel instance.
type parallelState struct {
	table krTable
	segs  []segment
	wg    sync.WaitGroup
}

// dispatch runs one phase over the first w segments: through the
// persistent pool when one is attached, otherwise on freshly spawned
// goroutines. It returns when every segment's job completed.
func (st *parallelState) dispatch(w, job int, wp *workerPool) {
	st.wg.Add(w)
	for i := 0; i < w; i++ {
		sg := &st.segs[i]
		sg.job = job
		if wp != nil {
			wp.work <- sg
		} else {
			go sg.run()
		}
	}
	st.wg.Wait()
}

// run executes the sharded build and segmented scan phases, leaving each
// segment's commands in its emitter. It returns the number of segments
// used (1 for inputs too small to split).
func (pl *Parallel) run(st *parallelState, ref, version []byte, wp *workerPool) int {
	p := pl.l.seedLen
	st.table.prepare(pl.l.tableBits)

	w := pl.workers
	if most := len(version) / minSegment; w > most {
		w = most
	}
	if w < 1 {
		w = 1
	}
	if cap(st.segs) < w {
		st.segs = make([]segment, w)
	}
	st.segs = st.segs[:w]

	var scanStage obs.Stage
	if pl.pmet != nil {
		scanStage = pl.pmet.workerScan
	}
	nseeds := len(ref) - p + 1 // reference seed positions; may be <= 0
	for i := 0; i < w; i++ {
		sg := &st.segs[i]
		sg.table = &st.table
		sg.ref = ref
		sg.version = version
		sg.p = p
		sg.wg = &st.wg
		sg.scanStage = scanStage
		sg.minCopy = p
		if nseeds > 0 {
			sg.rlo = i * nseeds / w
			sg.rhi = (i + 1) * nseeds / w
		} else {
			sg.rlo, sg.rhi = 0, 0
		}
		sg.vlo = i * len(version) / w
		sg.vhi = (i + 1) * len(version) / w
		// The emitter writes at absolute version offsets: start the
		// segment's write cursor at its first byte.
		sg.e.reset()
		sg.e.at = int64(sg.vlo)
	}

	var span obs.Span
	if pl.l.met != nil {
		span = pl.l.met.tableStage.Start()
	}
	if w == 1 {
		buildTable(&st.table, ref, p, 0, nseeds)
	} else {
		st.dispatch(w, jobBuild, wp)
	}
	if pl.l.met != nil {
		span.End()
		span = pl.l.met.emitStage.Start()
	}
	if w == 1 {
		sg := &st.segs[0]
		sp := sg.scanStage.Start()
		scanRange(sg.table, &sg.e, ref, version, p, 0, len(version), p)
		sp.End()
	} else {
		st.dispatch(w, jobScan, wp)
	}
	if pl.l.met != nil {
		span.End()
	}
	return w
}

// stitch concatenates the per-worker command streams into cmds and their
// literal arenas into arena, merging the first command of each segment
// into the previous segment's last command when they are contiguous in
// both source and destination (a match or literal run the segment split).
// Add commands still carry arena offsets in From; the caller resolves
// them. Returns the merged command count delta for observability.
//
//ipvet:allocfree
func stitch(segs []segment, cmds []delta.Command, arena []byte) ([]delta.Command, []byte, int) {
	merges := 0
	for i := range segs {
		e := &segs[i].e
		e.flushAdd()
		base := int64(len(arena))
		arena = append(arena, e.lits...)
		for k := range e.cmds {
			c := e.cmds[k]
			if c.Op == delta.OpAdd {
				c.From += base
			}
			if k == 0 && len(cmds) > 0 {
				last := &cmds[len(cmds)-1]
				// Seam merge: contiguous in write offset and in source
				// (reference offset for copies, arena offset for adds —
				// arenas are laid end to end, so a literal run split by
				// the seam is contiguous here exactly when it was
				// contiguous in the version).
				if last.Op == c.Op && last.To+last.Length == c.To && last.From+last.Length == c.From {
					last.Length += c.Length
					merges++
					continue
				}
			}
			cmds = append(cmds, c)
		}
	}
	return cmds, arena, merges
}

// Diff implements Algorithm. The result is detached: like (*Linear).Diff
// it costs three allocations (delta, command slice, one literal arena);
// the table and per-worker scratch come from the pool.
func (pl *Parallel) Diff(ref, version []byte) (*delta.Delta, error) {
	st, _ := pl.pool.Get().(*parallelState)
	if st == nil {
		st = &parallelState{}
	}
	w := pl.run(st, ref, version, nil)

	var span obs.Span
	if pl.pmet != nil {
		span = pl.pmet.stitch.Start()
	}
	ncmds, nlits := 0, 0
	for i := 0; i < w; i++ {
		e := &st.segs[i].e
		e.flushAdd()
		ncmds += len(e.cmds)
		nlits += len(e.lits)
	}
	cmds, arena, merges := stitch(st.segs[:w], make([]delta.Command, 0, ncmds), make([]byte, 0, nlits))
	resolveAdds(cmds, arena)
	d := &delta.Delta{
		RefLen:     int64(len(ref)),
		VersionLen: int64(len(version)),
		Commands:   cmds,
	}
	if pl.pmet != nil {
		span.End()
		pl.pmet.seamMerges.Add(int64(merges))
		pl.pmet.segments.Add(int64(w))
	}
	pl.pool.Put(st)
	pl.l.record(ref, version, len(d.Commands))
	return d, nil
}

// ParallelDiffer is the reusable parallel differencer for steady-state
// pipelines: one instance owns the fingerprint table, the per-worker
// arenas, and the stitched output, so repeated Diff calls perform no heap
// allocations at all once warm. The returned delta is owned by the differ
// and valid only until its next call — the contract of (*Differ).Diff. A
// ParallelDiffer is not safe for concurrent use; (*Parallel).Diff pools
// its state internally and is.
type ParallelDiffer struct {
	pl   *Parallel
	wp   *workerPool
	st   parallelState
	cmds []delta.Command
	lits []byte
	out  delta.Delta
}

// NewParallelDiffer returns a reusable parallel differencer (workers <= 0
// means GOMAXPROCS) with the given options applied. The differ owns a set
// of persistent worker goroutines; Close releases them early, and a
// garbage-collected differ releases them automatically.
func NewParallelDiffer(workers int, opts ...LinearOption) *ParallelDiffer {
	pd := &ParallelDiffer{pl: NewParallel(workers, opts...)}
	pd.wp = newWorkerPool(pd.pl.workers)
	// The cleanup must not capture pd (it would never become unreachable);
	// it references only the pool.
	runtime.AddCleanup(pd, func(wp *workerPool) { wp.shutdown() }, pd.wp)
	return pd
}

// Close releases the differ's worker goroutines. The differ must not be
// used afterwards. Optional: an unreachable differ is cleaned up by the
// garbage collector.
func (pd *ParallelDiffer) Close() { pd.wp.shutdown() }

// Name identifies the algorithm in reports.
func (pd *ParallelDiffer) Name() string { return pd.pl.Name() }

// Workers returns the configured worker count.
func (pd *ParallelDiffer) Workers() int { return pd.pl.workers }

// Diff computes the delta like (*Parallel).Diff, into differ-owned
// storage that is reused by — and valid only until — the next call.
func (pd *ParallelDiffer) Diff(ref, version []byte) (*delta.Delta, error) {
	w := pd.pl.run(&pd.st, ref, version, pd.wp)

	var span obs.Span
	if pd.pl.pmet != nil {
		span = pd.pl.pmet.stitch.Start()
	}
	var merges int
	pd.cmds, pd.lits, merges = stitch(pd.st.segs[:w], pd.cmds[:0], pd.lits[:0])
	resolveAdds(pd.cmds, pd.lits)
	pd.out = delta.Delta{
		RefLen:     int64(len(ref)),
		VersionLen: int64(len(version)),
		Commands:   pd.cmds,
	}
	if pd.pl.pmet != nil {
		span.End()
		pd.pl.pmet.seamMerges.Add(int64(merges))
		pd.pl.pmet.segments.Add(int64(w))
	}
	pd.pl.l.record(ref, version, len(pd.out.Commands))
	return &pd.out, nil
}
