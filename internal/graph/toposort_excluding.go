package graph

// TopoSortExcluding topologically sorts the subgraph of g induced by the
// vertices not marked removed. It returns the order and true on success,
// or nil and false if the restricted graph still contains a cycle. Used by
// strategies that decide the removal set up front (e.g. the SCC-greedy
// feedback vertex set) and then only need an ordering.
func TopoSortExcluding(g Graph, removed []bool) ([]int, bool) {
	n := g.NumVertices()
	color := make([]byte, n)
	postorder := make([]int, 0, n)
	type frame struct {
		v    int32
		edge int
	}
	var stack []frame
	for root := 0; root < n; root++ {
		if color[root] != white || (removed != nil && removed[root]) {
			continue
		}
		color[root] = gray
		stack = append(stack[:0], frame{v: int32(root)})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			succ := g.Succ(int(top.v))
			if top.edge >= len(succ) {
				color[top.v] = black
				postorder = append(postorder, int(top.v))
				stack = stack[:len(stack)-1]
				continue
			}
			w := succ[top.edge]
			top.edge++
			if removed != nil && removed[w] {
				continue
			}
			switch color[w] {
			case white:
				color[w] = gray
				stack = append(stack, frame{v: w})
			case gray:
				return nil, false
			}
		}
	}
	order := make([]int, 0, len(postorder))
	for k := len(postorder) - 1; k >= 0; k-- {
		order = append(order, postorder[k])
	}
	return order, true
}
