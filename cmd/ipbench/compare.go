package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// The regression-compare mode (-compare OLD) reads two baseline documents —
// the committed one and a freshly generated one — and fails (non-zero exit)
// when any shared benchmark slowed down by more than the threshold. CI runs
// it after -bench-baseline so perf regressions surface as red builds rather
// than silently drifting numbers in BENCH_convert.json.

// errRegression marks threshold violations so main can exit non-zero
// without re-printing the table.
type errRegression struct{ n int }

func (e errRegression) Error() string {
	return fmt.Sprintf("%d benchmark(s) regressed past threshold", e.n)
}

// loadBaseline parses one baseline document.
func loadBaseline(path string) (*baselineDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("compare: %w", err)
	}
	doc := &baselineDoc{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("compare: %s: %w", path, err)
	}
	return doc, nil
}

// runCompare renders an old-vs-new table over the benchmarks present in
// both documents and returns errRegression when any slows down by more than
// threshold (a ratio: 0.10 allows 10% more ns/op). Allocation-count growth
// on a zero-alloc benchmark is always a regression — those gates are exact.
func runCompare(out io.Writer, oldPath, newPath string, threshold float64) error {
	oldDoc, err := loadBaseline(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadBaseline(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]baselineResult, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		oldBy[r.Name] = r
	}

	// The environments lead the table: parallel rows are meaningless
	// without knowing how much parallelism each run actually had.
	fmt.Fprintf(out, "old: %d CPU / GOMAXPROCS %d (%s)\nnew: %d CPU / GOMAXPROCS %d (%s)\n",
		oldDoc.Environment.NumCPU, oldDoc.Environment.GOMAXPROCS, oldDoc.Environment.GoVersion,
		newDoc.Environment.NumCPU, newDoc.Environment.GOMAXPROCS, newDoc.Environment.GoVersion)
	if oldDoc.Environment.NumCPU != newDoc.Environment.NumCPU ||
		oldDoc.Environment.GOMAXPROCS != newDoc.Environment.GOMAXPROCS {
		fmt.Fprintf(out, "note: environments differ; timings are not directly comparable\n")
	}
	fmt.Fprintln(out)
	// A baseline from a smaller machine says nothing about parallel rows on
	// this one: the old numbers were measured with less parallelism than
	// the new run, so a slowdown there is expected, not a regression.
	skipParallel := oldDoc.Environment.NumCPU < newDoc.Environment.NumCPU

	fmt.Fprintf(out, "%-22s %14s %14s %8s %10s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs", "verdict")
	regressions := 0
	compared := 0
	skipped := 0
	newRows := 0
	for _, nr := range newDoc.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			// A benchmark added since the old baseline was committed has
			// nothing to regress against: report it, don't fail on it.
			newRows++
			fmt.Fprintf(out, "%-22s %14s %14.0f %8s %10s  %s\n",
				nr.Name, "-", nr.NsPerOp, "-", "-", "new row (no old measurement)")
			continue
		}
		if or.NsPerOp <= 0 {
			continue
		}
		if skipParallel && (strings.HasPrefix(nr.Name, "diff/parallel/") || nr.Name == "diff/auto") {
			skipped++
			fmt.Fprintf(out, "%-22s %14.0f %14.0f %8s %10s  %s\n",
				nr.Name, or.NsPerOp, nr.NsPerOp, "-", "-", "skipped (old ran on fewer CPUs)")
			continue
		}
		compared++
		ratio := nr.NsPerOp/or.NsPerOp - 1
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSED"
			regressions++
		}
		allocNote := fmt.Sprintf("%d->%d", or.AllocsPerOp, nr.AllocsPerOp)
		if or.AllocsPerOp == 0 && nr.AllocsPerOp > 0 {
			verdict = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(out, "%-22s %14.0f %14.0f %+7.1f%% %10s  %s\n",
			nr.Name, or.NsPerOp, nr.NsPerOp, ratio*100, allocNote, verdict)
	}
	// New rows alone are not enough: a document sharing zero benchmarks
	// with the baseline is almost certainly the wrong file, not progress.
	if compared == 0 && skipped == 0 {
		return fmt.Errorf("compare: no shared benchmarks between %s and %s", oldPath, newPath)
	}
	fmt.Fprintf(out, "\n%d compared, %d regressed, %d skipped, %d new (threshold %+.0f%%)\n",
		compared, regressions, skipped, newRows, threshold*100)
	if regressions > 0 {
		return errRegression{n: regressions}
	}
	return nil
}
