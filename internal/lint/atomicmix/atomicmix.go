// Package atomicmix flags struct fields that are accessed through
// sync/atomic in one place and with a plain load or store in another.
// Mixing the two is the subtle half of a data race: the atomic side
// establishes that the field is touched concurrently, so every plain
// access of the same memory is a candidate torn read or lost write — the
// exact bug class the epoch-tagged Karp–Rabin table in the diff engine
// walked into when its insert path wrote entries the lookup path read
// atomically.
//
// Granularity matters for slices: atomic access to an element
// (&x.f[i] passed to atomic.LoadInt64) taints the elements, written
// x.f[] in diagnostics, while atomic access to the field itself
// (&x.count) taints the field. A plain x.f[i] read or write, and a
// clear(x.f) (which writes every element), are flagged under element
// taint; replacing the slice header (x.f = make(...)) or measuring it
// (len, cap) is not — header and elements are different memory.
//
// Taint is interprocedural: each atomically-accessed field exports an
// AtomicFact, so a dependency that publishes a field atomically flags the
// importer's plain access too. Flagged plain reads and writes carry a
// SuggestedFix (atomic.LoadXxx / atomic.StoreXxx) when the file already
// imports sync/atomic and the element type maps to an atomic function.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"ipdelta/internal/lint/analysis"
	"ipdelta/internal/lint/passes/inspect"
)

// AtomicFact marks a struct field as atomically accessed somewhere in the
// module. Field covers &x.f uses, Elem covers &x.f[i] uses.
type AtomicFact struct {
	Field bool
	Elem  bool
}

// AFact marks AtomicFact as a Fact.
func (*AtomicFact) AFact() {}

// Analyzer is the atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flags struct fields accessed both through sync/atomic and with " +
		"plain loads/stores, a mixed-mode data race",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*AtomicFact)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)

	// Pass 1: find atomic accesses. atomicArgs collects the &x.f (or
	// &x.f[i]) operand nodes inside sync/atomic calls so pass 2 can skip
	// them; taint records which (field, granularity) pairs are atomic.
	atomicArgs := map[ast.Expr]bool{}
	type taintKey struct {
		field *types.Var
		elem  bool
	}
	taint := map[taintKey]bool{}
	markTaint := func(field *types.Var, elem bool) {
		taint[taintKey{field, elem}] = true
		fact := &AtomicFact{}
		pass.ImportObjectFact(field, fact)
		if elem {
			fact.Elem = true
		} else {
			fact.Field = true
		}
		pass.ExportObjectFact(field, fact)
	}
	in.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isSyncAtomicCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			field, elem, ok := fieldOperand(pass, un.X)
			if !ok {
				continue
			}
			atomicArgs[un.X] = true
			markTaint(field, elem)
		}
	})

	tainted := func(field *types.Var, elem bool) bool {
		if taint[taintKey{field, elem}] {
			return true
		}
		fact := &AtomicFact{}
		if pass.ImportObjectFact(field, fact) {
			if elem {
				return fact.Elem
			}
			return fact.Field
		}
		return false
	}

	// Pass 2: flag plain accesses of tainted memory. A selector that is
	// itself an atomic operand, or sits under one (x.f inside &x.f[i]),
	// is the sanctioned access and is skipped.
	underAtomic := func(n ast.Node) bool {
		for m := n; m != nil; m = in.Parent(m) {
			if e, ok := m.(ast.Expr); ok && atomicArgs[e] {
				return true
			}
		}
		return false
	}
	in.Preorder([]ast.Node{(*ast.SelectorExpr)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch e := n.(type) {
		case *ast.CallExpr:
			// clear(x.f) writes every element of the slice.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "clear" && len(e.Args) == 1 {
					if field, elem, ok := fieldOperand(pass, e.Args[0]); ok && !elem && tainted(field, true) {
						pass.Reportf(e.Pos(),
							"clear writes elements of %s plainly, but its elements are accessed with sync/atomic elsewhere",
							field.Name())
					}
				}
			}
		case *ast.SelectorExpr:
			field, ok := selectorField(pass, e)
			if !ok || underAtomic(e) {
				return
			}
			// Element access: the selector is the base of an index
			// expression, x.f[i].
			if ix, ok := in.Parent(e).(*ast.IndexExpr); ok && ix.X == e {
				if tainted(field, true) && !underAtomic(ix) {
					reportPlain(pass, in, ix, field, field.Name()+"[]")
				}
				return
			}
			if tainted(field, false) {
				reportPlain(pass, in, e, field, field.Name())
			}
		}
	})
	return nil, nil
}

// reportPlain flags one plain access of tainted memory, attaching an
// atomic.LoadXxx/StoreXxx rewrite when one applies.
func reportPlain(pass *analysis.Pass, in *inspect.Inspector, expr ast.Expr, field *types.Var, display string) {
	isWrite, rhs := writeContext(in, expr)
	verb := "read"
	if isWrite {
		verb = "written"
	}
	d := analysis.Diagnostic{
		Pos: expr.Pos(),
		End: expr.End(),
		Message: "field " + display + " is accessed with sync/atomic elsewhere but " +
			verb + " plainly here; mixed atomic/plain access is a data race",
	}
	if fn, ok := atomicFuncFor(elemType(pass, expr)); ok && fileImportsAtomic(pass, expr.Pos()) {
		if !isWrite {
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message: "load the value with atomic.Load" + fn,
				TextEdits: []analysis.TextEdit{
					{Pos: expr.Pos(), End: expr.Pos(), NewText: []byte("atomic.Load" + fn + "(&")},
					{Pos: expr.End(), End: expr.End(), NewText: []byte(")")},
				},
			}}
		} else if as, ok := in.Parent(expr).(*ast.AssignStmt); ok &&
			as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 && rhs != nil {
			// x.f[i] = v  →  atomic.StoreXxx(&x.f[i], v)
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message: "store the value with atomic.Store" + fn,
				TextEdits: []analysis.TextEdit{
					{Pos: expr.Pos(), End: expr.Pos(), NewText: []byte("atomic.Store" + fn + "(&")},
					{Pos: expr.End(), End: rhs.Pos(), NewText: []byte(", ")},
					{Pos: as.End(), End: as.End(), NewText: []byte(")")},
				},
			}}
		}
	}
	pass.Report(d)
}

// writeContext reports whether expr is the target of an assignment, and
// if so returns the assigned value.
func writeContext(in *inspect.Inspector, expr ast.Expr) (bool, ast.Expr) {
	parent := in.Parent(expr)
	as, ok := parent.(*ast.AssignStmt)
	if !ok {
		if _, ok := parent.(*ast.IncDecStmt); ok {
			return true, nil
		}
		return false, nil
	}
	for i, lhs := range as.Lhs {
		if lhs == expr {
			if i < len(as.Rhs) {
				return true, as.Rhs[i]
			}
			return true, nil
		}
	}
	return false, nil
}

// elemType returns the type of the accessed memory cell.
func elemType(pass *analysis.Pass, expr ast.Expr) types.Type {
	return pass.TypeOf(expr)
}

// atomicFuncFor maps a cell type to the sync/atomic function suffix, or
// reports false for types atomics cannot carry.
func atomicFuncFor(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32", true
	case types.Int64:
		return "Int64", true
	case types.Uint32:
		return "Uint32", true
	case types.Uint64:
		return "Uint64", true
	case types.Uintptr:
		return "Uintptr", true
	}
	return "", false
}

// fileImportsAtomic reports whether the file containing pos already
// imports sync/atomic; the fix machinery edits text, not import graphs,
// so a rewrite is only offered where the import exists.
func fileImportsAtomic(pass *analysis.Pass, pos token.Pos) bool {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			for _, imp := range f.Imports {
				if imp.Path.Value == `"sync/atomic"` {
					return true
				}
			}
			return false
		}
	}
	return false
}

// isSyncAtomicCall reports whether call invokes a function of package
// sync/atomic (the function forms; the atomic.Int64 method forms carry
// their own field type and cannot be mixed with plain access).
func isSyncAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// fieldOperand resolves e to a struct-field access: x.f yields (f,
// false), x.f[i] yields (f, true).
func fieldOperand(pass *analysis.Pass, e ast.Expr) (*types.Var, bool, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if f, ok := selectorField(pass, e); ok {
			return f, false, true
		}
	case *ast.IndexExpr:
		if se, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			if f, ok := selectorField(pass, se); ok {
				return f, true, true
			}
		}
	}
	return nil, false, false
}

// selectorField returns the struct field a selector denotes, if any.
func selectorField(pass *analysis.Pass, sel *ast.SelectorExpr) (*types.Var, bool) {
	v, ok := pass.ObjectOf(sel.Sel).(*types.Var)
	if !ok || !v.IsField() {
		return nil, false
	}
	return v, true
}
