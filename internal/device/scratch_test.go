package device

import (
	"bytes"
	"errors"
	"testing"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
	"ipdelta/internal/inplace"
)

// buildScratchDelta creates a scratch-format delta with the given budget.
func buildScratchDelta(t testing.TB, ref, version []byte, budget int64) ([]byte, int64) {
	t.Helper()
	d, err := diff.NewLinear().Diff(ref, version)
	if err != nil {
		t.Fatal(err)
	}
	ip, st, err := inplace.Convert(d, ref, inplace.WithScratchBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := codec.Encode(&buf, ip, codec.FormatScratch); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st.ScratchUsed
}

// scratchPair generates a pair whose conversion needs conversions (block
// moves create cycles).
func scratchPair(t testing.TB) corpus.Pair {
	t.Helper()
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 48 << 10, ChangeRate: 0.15, Seed: 55})
	// Swap two large blocks to guarantee cycles.
	v := append([]byte(nil), pair.Ref...)
	tmp := append([]byte(nil), v[0:8<<10]...)
	copy(v[0:8<<10], v[16<<10:24<<10])
	copy(v[16<<10:24<<10], tmp)
	pair.Version = v
	return pair
}

func TestDeviceScratchApply(t *testing.T) {
	pair := scratchPair(t)
	enc, used := buildScratchDelta(t, pair.Ref, pair.Version, 32<<10)
	if used == 0 {
		t.Fatal("test input produced no stashes; cycles missing")
	}
	imageArea := int64(len(pair.Ref))
	if int64(len(pair.Version)) > imageArea {
		imageArea = int64(len(pair.Version))
	}
	flash, err := NewFlash(pair.Ref, imageArea+used)
	if err != nil {
		t.Fatal(err)
	}
	dev := New(flash, int64(len(pair.Ref)), 1024)
	if err := dev.Apply(bytes.NewReader(enc)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dev.Image(), pair.Version) {
		t.Fatal("scratch apply produced the wrong image")
	}
}

func TestDeviceScratchCapacityEnforced(t *testing.T) {
	pair := scratchPair(t)
	enc, used := buildScratchDelta(t, pair.Ref, pair.Version, 32<<10)
	if used == 0 {
		t.Skip("no stashes")
	}
	imageArea := int64(len(pair.Ref))
	if int64(len(pair.Version)) > imageArea {
		imageArea = int64(len(pair.Version))
	}
	// One byte short of image + scratch.
	flash, err := NewFlash(pair.Ref, imageArea+used-1)
	if err != nil {
		t.Fatal(err)
	}
	dev := New(flash, int64(len(pair.Ref)), 1024)
	if err := dev.Apply(bytes.NewReader(enc)); !errors.Is(err, ErrScratchBudget) {
		t.Fatalf("error = %v, want ErrScratchBudget", err)
	}
}

func TestDeviceScratchPowerCutResume(t *testing.T) {
	pair := scratchPair(t)
	enc, used := buildScratchDelta(t, pair.Ref, pair.Version, 32<<10)
	if used == 0 {
		t.Skip("no stashes")
	}
	imageArea := int64(len(pair.Ref))
	if int64(len(pair.Version)) > imageArea {
		imageArea = int64(len(pair.Version))
	}
	flash, err := NewFlash(pair.Ref, imageArea+used)
	if err != nil {
		t.Fatal(err)
	}
	dev := New(flash, int64(len(pair.Ref)), 512)

	cuts := 0
	for fail := int64(2); ; fail += 11 {
		flash.FailAfterWrites(fail)
		err := dev.Apply(bytes.NewReader(enc))
		if err == nil {
			break
		}
		if !errors.Is(err, ErrPowerCut) {
			t.Fatalf("unexpected error: %v", err)
		}
		cuts++
		if cuts > 20000 {
			t.Fatal("never completed")
		}
	}
	if cuts == 0 {
		t.Fatal("no power cut exercised")
	}
	if !bytes.Equal(dev.Image(), pair.Version) {
		t.Fatalf("image corrupt after %d scratch-mode power cuts", cuts)
	}
}
