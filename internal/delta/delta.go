// Package delta defines the command model for delta compressed files and
// the engines that reconstruct a version from a reference file.
//
// A delta file is an ordered sequence of commands that materialize a new
// version of a file given a reference (old) version:
//
//   - a copy command ⟨f, t, l⟩ copies the bytes [f, f+l-1] of the reference
//     file to [t, t+l-1] of the version file;
//   - an add command ⟨t, l⟩ followed by l bytes of data writes those bytes
//     to [t, t+l-1] of the version file.
//
// The write intervals of the commands in a well-formed delta are disjoint
// and together cover the version file exactly, so any application order
// materializes the same version — provided reads precede conflicting
// writes. Package inplace rearranges commands so that a delta may be
// applied in the very buffer holding the reference (see the paper, §4).
package delta

import (
	"bytes"
	"errors"
	"fmt"

	"ipdelta/internal/interval"
)

// Op identifies the kind of a delta command.
type Op byte

const (
	// OpCopy copies bytes from the reference file into the version file.
	OpCopy Op = iota + 1
	// OpAdd writes literal bytes carried in the delta into the version file.
	OpAdd
)

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	switch o {
	case OpCopy:
		return "copy"
	case OpAdd:
		return "add"
	case OpStash:
		return "stash"
	case OpUnstash:
		return "unstash"
	default:
		return fmt.Sprintf("op(%d)", byte(o))
	}
}

// Command is one directive of a delta file. For OpCopy, From/To/Length are
// the ⟨f, t, l⟩ triple of the paper and Data is nil. For OpAdd, To is the
// write offset, Data holds the added bytes, and Length == len(Data); From
// is unused.
type Command struct {
	Op     Op
	From   int64
	To     int64
	Length int64
	Data   []byte
}

// NewCopy returns a copy command ⟨from, to, length⟩.
//
//ipvet:allocfree
func NewCopy(from, to, length int64) Command {
	return Command{Op: OpCopy, From: from, To: to, Length: length}
}

// NewAdd returns an add command writing data at offset to. The data slice
// is used directly; callers must not alias it afterwards.
//
//ipvet:allocfree
func NewAdd(to int64, data []byte) Command {
	return Command{Op: OpAdd, To: to, Length: int64(len(data)), Data: data}
}

// WriteInterval returns [t, t+l-1], the version-file bytes the command
// writes. Stash commands write only to scratch, so their write interval is
// empty.
func (c Command) WriteInterval() interval.Interval {
	if c.Op == OpStash {
		return interval.Interval{Lo: 0, Hi: -1}
	}
	return interval.FromRange(c.To, c.Length)
}

// ReadInterval returns [f, f+l-1] for commands that read the buffer (copy
// and stash); add and unstash commands read nothing from it.
func (c Command) ReadInterval() interval.Interval {
	return stashReadInterval(c)
}

// String renders the command in the paper's notation.
func (c Command) String() string {
	switch c.Op {
	case OpCopy:
		return fmt.Sprintf("copy⟨%d,%d,%d⟩", c.From, c.To, c.Length)
	case OpAdd:
		return fmt.Sprintf("add⟨%d,%d⟩", c.To, c.Length)
	case OpStash:
		return fmt.Sprintf("stash⟨%d,%d⟩", c.From, c.Length)
	case OpUnstash:
		return fmt.Sprintf("unstash⟨%d,%d⟩", c.To, c.Length)
	default:
		return fmt.Sprintf("%s⟨%d,%d,%d⟩", c.Op, c.From, c.To, c.Length)
	}
}

// Equal reports whether two commands are identical, comparing add data
// byte-wise.
func (c Command) Equal(o Command) bool {
	if c.Op != o.Op || c.From != o.From || c.To != o.To || c.Length != o.Length {
		return false
	}
	return bytes.Equal(c.Data, o.Data)
}

// Delta is a parsed delta file: an ordered command sequence together with
// the sizes of the files it relates.
type Delta struct {
	// RefLen is the length of the reference (old) file version.
	RefLen int64
	// VersionLen is the length of the version (new) file the delta encodes.
	VersionLen int64
	// Commands is the ordered command sequence. Order matters for in-place
	// application.
	Commands []Command
}

// Clone returns a deep copy of the delta; mutating the clone (including add
// data) does not affect the original.
func (d *Delta) Clone() *Delta {
	out := &Delta{
		RefLen:     d.RefLen,
		VersionLen: d.VersionLen,
		Commands:   make([]Command, len(d.Commands)),
	}
	copy(out.Commands, d.Commands)
	for k := range out.Commands {
		if out.Commands[k].Data != nil {
			data := make([]byte, len(out.Commands[k].Data))
			copy(data, out.Commands[k].Data)
			out.Commands[k].Data = data
		}
	}
	return out
}

// NumCopies returns the number of copy commands in the delta.
func (d *Delta) NumCopies() int {
	n := 0
	for _, c := range d.Commands {
		if c.Op == OpCopy {
			n++
		}
	}
	return n
}

// NumAdds returns the number of add commands in the delta.
func (d *Delta) NumAdds() int { return len(d.Commands) - d.NumCopies() }

// AddedBytes returns the total number of literal bytes carried by add
// commands — the incompressible part of the delta.
func (d *Delta) AddedBytes() int64 {
	var n int64
	for _, c := range d.Commands {
		if c.Op == OpAdd {
			n += c.Length
		}
	}
	return n
}

// CopiedBytes returns the total number of version bytes encoded by copy
// commands.
func (d *Delta) CopiedBytes() int64 {
	var n int64
	for _, c := range d.Commands {
		if c.Op == OpCopy {
			n += c.Length
		}
	}
	return n
}

// Validation errors. ValidationError wraps one of these sentinel causes
// with command context.
var (
	ErrBadOp          = errors.New("unknown opcode")
	ErrNegativeOffset = errors.New("negative offset")
	ErrZeroLength     = errors.New("zero or negative length")
	ErrReadOOB        = errors.New("copy reads outside reference file")
	ErrWriteOOB       = errors.New("command writes outside version file")
	ErrOverlap        = errors.New("write intervals overlap")
	ErrCoverage       = errors.New("commands do not cover the version file")
	ErrAddLength      = errors.New("add length disagrees with data")
	ErrFileLength     = errors.New("negative file length")
)

// ValidationError reports which command of a delta violated which rule.
type ValidationError struct {
	Index int     // position in Delta.Commands, -1 for whole-delta errors
	Cmd   Command // offending command (zero for whole-delta errors)
	Cause error   // one of the sentinel errors above
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("delta invalid: %v", e.Cause)
	}
	return fmt.Sprintf("delta command %d (%s) invalid: %v", e.Index, e.Cmd, e.Cause)
}

// Unwrap exposes the sentinel cause for errors.Is.
func (e *ValidationError) Unwrap() error { return e.Cause }

// Validate checks that the delta is well formed: every command has a valid
// opcode, positive length, in-bounds read and write intervals, add data
// lengths agree, the write intervals are pairwise disjoint, and together
// they cover [0, VersionLen-1] exactly.
func (d *Delta) Validate() error {
	var v Validator
	return v.Validate(d)
}

// Validator runs delta validation over a reusable interval set, so a
// steady-state pipeline (one converter validating every incoming delta)
// performs no per-call allocations. The zero value is ready for use; a
// Validator must not be used concurrently. Validate on a Validator checks
// exactly what (*Delta).Validate checks.
type Validator struct {
	written interval.Set
}

// Validate implements (*Delta).Validate over the validator's scratch.
func (v *Validator) Validate(d *Delta) error {
	v.written.Reset()
	for k, c := range d.Commands {
		if err := d.validateCommand(c); err != nil {
			return &ValidationError{Index: k, Cmd: c, Cause: err}
		}
		w := c.WriteInterval()
		if v.written.Overlaps(w) {
			return &ValidationError{Index: k, Cmd: c, Cause: ErrOverlap}
		}
		v.written.Add(w)
	}
	if v.written.Total() != d.VersionLen {
		return &ValidationError{Index: -1, Cause: ErrCoverage}
	}
	if d.VersionLen > 0 && !v.written.ContainsInterval(interval.FromRange(0, d.VersionLen)) {
		return &ValidationError{Index: -1, Cause: ErrCoverage}
	}
	return d.validateScratch()
}

func (d *Delta) validateCommand(c Command) error {
	switch c.Op {
	case OpCopy, OpStash, OpUnstash:
		if c.Data != nil {
			return ErrAddLength
		}
	case OpAdd:
		if int64(len(c.Data)) != c.Length {
			return ErrAddLength
		}
	default:
		return ErrBadOp
	}
	if d.RefLen < 0 || d.VersionLen < 0 {
		return ErrFileLength
	}
	if c.From < 0 || c.To < 0 {
		return ErrNegativeOffset
	}
	if c.Length <= 0 {
		return ErrZeroLength
	}
	// Bounds checks use the subtraction form: From+Length can wrap negative
	// for hostile 63-bit values and slip past an additive comparison, while
	// limit-Length cannot overflow once lengths are known non-negative.
	if (c.Op == OpCopy || c.Op == OpStash) && c.From > d.RefLen-c.Length {
		return ErrReadOOB
	}
	if c.Op != OpStash && c.To > d.VersionLen-c.Length {
		return ErrWriteOOB
	}
	return nil
}

// Apply materializes the version file in fresh scratch space, the
// traditional reconstruction that requires both file copies to be resident.
// It does not require any particular command order.
func (d *Delta) Apply(ref []byte) ([]byte, error) {
	if int64(len(ref)) != d.RefLen {
		return nil, fmt.Errorf("reference length %d, delta expects %d", len(ref), d.RefLen)
	}
	out := make([]byte, d.VersionLen)
	var scratch scratchState
	for k, c := range d.Commands {
		if err := d.validateCommand(c); err != nil {
			return nil, &ValidationError{Index: k, Cmd: c, Cause: err}
		}
		switch c.Op {
		case OpCopy:
			copy(out[c.To:c.To+c.Length], ref[c.From:c.From+c.Length])
		case OpAdd:
			copy(out[c.To:c.To+c.Length], c.Data)
		case OpStash:
			scratch.stash(ref[c.From : c.From+c.Length])
		case OpUnstash:
			data, err := scratch.unstash(c.Length)
			if err != nil {
				return nil, &ValidationError{Index: k, Cmd: c, Cause: err}
			}
			copy(out[c.To:c.To+c.Length], data)
		}
	}
	return out, nil
}

// WRConflicts returns the pairs (i, j), i < j, of copy commands in
// application order where command i writes into the interval command j
// reads — the write-before-read conflicts of Equation 1 that make a serial
// in-place application incorrect.
func (d *Delta) WRConflicts() [][2]int {
	var conflicts [][2]int
	for i := 0; i < len(d.Commands); i++ {
		wi := d.Commands[i].WriteInterval()
		for j := i + 1; j < len(d.Commands); j++ {
			if wi.Overlaps(d.Commands[j].ReadInterval()) {
				conflicts = append(conflicts, [2]int{i, j})
			}
		}
	}
	return conflicts
}

// CheckInPlace verifies Equation 2 of the paper: for every command j, its
// read interval is disjoint from the union of the write intervals of all
// commands i < j. A delta satisfying this property reconstructs correctly
// when applied serially in the space of the reference file. It returns nil
// on success and a ConflictError naming the first violation otherwise.
func (d *Delta) CheckInPlace() error {
	written := interval.NewSet()
	for j, c := range d.Commands {
		if written.Overlaps(c.ReadInterval()) {
			return &ConflictError{Index: j, Cmd: c}
		}
		written.Add(c.WriteInterval())
	}
	return nil
}

// ConflictError reports a write-before-read conflict found by CheckInPlace.
type ConflictError struct {
	Index int
	Cmd   Command
}

// Error implements the error interface.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("command %d (%s) reads an interval already written", e.Index, e.Cmd)
}
