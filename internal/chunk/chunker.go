// Package chunk implements streaming content-defined chunking and a
// bounded, content-addressed chunk store — the substrate for diffing
// multi-GB images in bounded memory and deduplicating identical content
// across versions and tenants (ROADMAP "Content-defined chunking").
//
// The chunker is a Gear rolling-hash cutter with min/avg/max size bounds
// and FastCDC-style normalization (arXiv:2210.04623 motivates the
// flash/mobile scenario; the cut-point locality argument is the classical
// CDC one): a cut decision at offset i depends only on the bytes of the
// current chunk up to i, never on anything before the previous cut, so an
// insert or delete perturbs cut points only until the two streams next
// agree on a boundary — typically within a couple of chunks. Everything
// the dedup layer wins rests on that locality, and TestChunkerLocality
// property-tests it directly.
//
// A version of a file is represented as a Recipe: the ordered list of its
// chunk IDs and lengths. Identical chunks appearing in any number of
// versions (or stores) are stored once, refcounted, in a Store.
package chunk

import "errors"

// Params bounds the chunk sizes a Chunker may produce. Avg must be a
// power of two; Min <= Avg <= Max. The zero value selects the defaults.
type Params struct {
	// Min is the minimum chunk size in bytes (default 2 KiB). No cut is
	// considered before Min bytes, which also lower-bounds the per-chunk
	// metadata overhead.
	Min int
	// Avg is the target average chunk size in bytes (default 8 KiB);
	// must be a power of two.
	Avg int
	// Max is the maximum chunk size in bytes (default 64 KiB). A cut is
	// forced at Max, so a chunk always fits a bounded buffer.
	Max int
}

// Default chunk-size bounds: 2 KiB / 8 KiB / 64 KiB.
const (
	DefaultMin = 2 << 10
	DefaultAvg = 8 << 10
	DefaultMax = 64 << 10
)

// ErrParams reports invalid chunker parameters.
var ErrParams = errors.New("chunk: invalid params (need 64 <= Min <= Avg <= Max, Avg a power of two)")

// withDefaults fills zero fields and validates.
func (p Params) withDefaults() (Params, error) {
	if p.Min == 0 && p.Avg == 0 && p.Max == 0 {
		return Params{Min: DefaultMin, Avg: DefaultAvg, Max: DefaultMax}, nil
	}
	if p.Min < 64 || p.Min > p.Avg || p.Avg > p.Max || p.Avg&(p.Avg-1) != 0 {
		return Params{}, ErrParams
	}
	return p, nil
}

// gear is the byte-to-hash lookup table of the Gear rolling hash,
// generated deterministically (splitmix64) so chunk boundaries — and
// therefore chunk IDs — are stable across builds and machines.
var gear = computeGear()

func computeGear() (g [256]uint64) {
	// splitmix64 with a fixed seed; any well-mixed constant table works,
	// it only must never change once recipes are persisted.
	x := uint64(0x9E3779B97F4A7C15)
	for i := range g {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		g[i] = z ^ (z >> 31)
	}
	return g
}

// Chunker finds content-defined cut points under the configured bounds.
// It is stateless between chunks (every cut decision restarts at the
// chunk's first byte), so one Chunker may be shared by any number of
// goroutines.
type Chunker struct {
	p Params
	// Normalized cut masks (FastCDC): before Avg the hard mask (two bits
	// stricter than 1/Avg) suppresses early cuts, after Avg the easy mask
	// (two bits looser) hurries late ones. Sizes concentrate around Avg
	// and far fewer chunks hit the forced Max cut — forced cuts are the
	// one boundary kind that is *not* content-defined, so normalization
	// directly strengthens the locality property.
	maskHard uint64
	maskEasy uint64
}

// NewChunker returns a chunker for the given bounds (zero Params for the
// defaults).
func NewChunker(p Params) (*Chunker, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	bits := uint(0)
	for 1<<bits < p.Avg {
		bits++
	}
	hard, easy := bits+2, bits-2
	if hard > 63 {
		hard = 63
	}
	return &Chunker{
		p:        p,
		maskHard: maskTop(hard),
		maskEasy: maskTop(easy),
	}, nil
}

// maskTop returns a mask selecting the top n bits of a uint64. The Gear
// hash shifts left each step, so the top bits mix the most window bytes.
//
//ipvet:allocfree
func maskTop(n uint) uint64 {
	return ^uint64(0) << (64 - n)
}

// Params returns the effective bounds.
func (c *Chunker) Params() Params { return c.p }

// Cut returns the length of the first chunk of data and whether that
// boundary is final. found is true when the boundary is content-defined
// or forced at Max — more input cannot move it. found is false when data
// ran out first (len(data) < Max with no cut): a streaming caller should
// buffer and retry with more bytes, or take the remainder as the last
// chunk at end of input.
//
//ipvet:allocfree
func (c *Chunker) Cut(data []byte) (n int, found bool) {
	if len(data) <= c.p.Min {
		return len(data), false
	}
	end := len(data)
	if end >= c.p.Max {
		end = c.p.Max
	}
	mid := c.p.Avg
	if mid > end {
		mid = end
	}
	var h uint64
	i := c.p.Min
	for ; i < mid; i++ {
		h = h<<1 + gear[data[i]]
		if h&c.maskHard == 0 {
			return i + 1, true
		}
	}
	for ; i < end; i++ {
		h = h<<1 + gear[data[i]]
		if h&c.maskEasy == 0 {
			return i + 1, true
		}
	}
	if len(data) >= c.p.Max {
		return c.p.Max, true
	}
	return len(data), false
}

// Split cuts data into consecutive chunks and calls emit for each one, in
// order. Emitted slices alias data and are valid only during the
// callback. Split itself performs no allocations.
func (c *Chunker) Split(data []byte, emit func(chunk []byte)) {
	for len(data) > 0 {
		n, _ := c.Cut(data)
		emit(data[:n:n])
		data = data[n:]
	}
}

// Splitter feeds a byte stream through a Chunker, emitting complete
// chunks as they are recognized. Memory is bounded by one Max-size
// carry buffer no matter how large the stream: this is the streaming
// face of the chunker — multi-GB inputs never need to be resident.
//
// Emitted slices alias either the Write input or the internal carry
// buffer and are valid only during the callback. A Splitter is not safe
// for concurrent use.
type Splitter struct {
	c    *Chunker
	emit func(chunk []byte)
	buf  []byte // pending bytes of an incomplete chunk; cap <= Max+1
}

// NewSplitter returns a streaming splitter delivering chunks to emit.
func NewSplitter(c *Chunker, emit func(chunk []byte)) *Splitter {
	return &Splitter{c: c, emit: emit}
}

// Write feeds the next bytes of the stream. It implements io.Writer, so
// an io.Copy from any reader chunks the stream in one bounded buffer.
func (s *Splitter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		if len(s.buf) == 0 {
			n, ok := s.c.Cut(p)
			if ok {
				s.emit(p[:n:n])
				p = p[n:]
				continue
			}
			// No boundary is final yet; Cut guarantees n == len(p) < Max.
			s.buf = append(s.buf, p...)
			break
		}
		// Top the carry buffer up to one byte past Max: Cut always
		// decides (possibly the forced Max cut) once that much is
		// visible, so the carry can never grow past Max+1.
		need := s.c.p.Max + 1 - len(s.buf)
		if need > len(p) {
			need = len(p)
		}
		s.buf = append(s.buf, p[:need]...)
		p = p[need:]
		for {
			n, ok := s.c.Cut(s.buf)
			if !ok {
				break
			}
			s.emit(s.buf[:n:n])
			s.buf = s.buf[:copy(s.buf, s.buf[n:])]
		}
	}
	return total, nil
}

// Flush emits any pending bytes as the stream's final chunk and resets
// the splitter for a new stream.
func (s *Splitter) Flush() {
	if len(s.buf) > 0 {
		s.emit(s.buf)
		s.buf = s.buf[:0]
	}
}
