// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API, built only on the standard library's
// go/ast and go/types. The container this repository grows in has no module
// proxy access, so rather than vendoring x/tools we implement the surface
// the ipvet analyzers need: an Analyzer descriptor with Requires/ResultOf
// dependency passes, a per-package Pass carrying syntax plus type
// information, positional Diagnostics with optional SuggestedFixes, and
// Facts — gob-serialized values attached to objects or packages that flow
// to downstream packages in the loader's dependency order, which is what
// makes interprocedural analyzers (allocfree, lockorder, atomicmix)
// possible.
//
// The shape deliberately mirrors x/tools so the analyzers can be ported to
// the real framework by changing one import if the dependency ever becomes
// available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//ipvet:ignore <name>" suppression comments. It must be a valid
	// Go identifier.
	Name string
	// Doc is the one-paragraph description shown by `ipvet -list`.
	Doc string
	// Requires lists analyzers that must run before this one on the same
	// package; their results are available through Pass.ResultOf. The
	// graph formed by Requires must be acyclic.
	Requires []*Analyzer
	// FactTypes lists the concrete fact types this analyzer may export.
	// Each must be a pointer type implementing Fact; the checker
	// registers them with gob so facts serialize across packages. An
	// analyzer that declares no fact types cannot export or import
	// facts.
	FactTypes []Fact
	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report; the error return is for operational failures
	// (not findings). The first return value is the analyzer's result,
	// exposed to dependents via Pass.ResultOf (nil when the analyzer
	// computes none).
	Run func(pass *Pass) (any, error)
}

// Fact is a value attached to an object or package by one analyzer and
// visible to the same analyzer when it later processes packages that
// depend on the fact's owner. Facts must be pointers to gob-serializable
// types: the checker round-trips every exported fact through gob, both to
// enforce the contract and so downstream packages observe a decoded copy
// rather than shared mutable state (the same discipline x/tools' separate
// compilation imposes).
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

// ObjectFact is one (object, fact) pair, as returned by AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// PackageFact is one (package, fact) pair, as returned by AllPackageFacts.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

// TextEdit replaces the source text in [Pos, End) with NewText. Pos == End
// inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// SuggestedFix is one self-contained repair for a diagnostic: a set of
// non-overlapping textual edits that `ipvet -fix` applies mechanically.
// Fixes must be idempotent in the sense that the repaired source no longer
// triggers the diagnostic, so a second -fix run is a no-op.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// Diagnostic is one finding at a source position. End, when set, marks the
// extent of the offending source range (used by -json consumers and fix
// tooling); a zero End means "just Pos".
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// Pass carries everything an analyzer may inspect about one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ResultOf maps each analyzer in Analyzer.Requires to its result for
	// this package.
	ResultOf map[*Analyzer]any

	// Report delivers one diagnostic. The driver installs this; analyzers
	// normally use Reportf.
	Report func(Diagnostic)

	// The fact API. All four are installed by the checker; they panic if
	// the analyzer declared no FactTypes. ImportObjectFact copies the
	// fact recorded for obj (by this analyzer, in this or any dependency
	// package) into the pointer fact and reports whether one existed;
	// ExportObjectFact records one. The package-level pair does the same
	// for whole-package facts; AllPackageFacts returns every package
	// fact this analyzer exported in the packages processed so far —
	// with the checker's dependency-order scheduling, that is exactly
	// the facts of the current package's transitive dependencies.
	ImportObjectFact  func(obj types.Object, fact Fact) bool
	ExportObjectFact  func(obj types.Object, fact Fact)
	ImportPackageFact func(pkg *types.Package, fact Fact) bool
	ExportPackageFact func(fact Fact)
	AllObjectFacts    func() []ObjectFact
	AllPackageFacts   func() []PackageFact
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a formatted diagnostic covering [pos, end).
func (p *Pass) ReportRangef(pos, end token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, End: end, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(ident *ast.Ident) types.Object {
	if o := p.TypesInfo.Defs[ident]; o != nil {
		return o
	}
	return p.TypesInfo.Uses[ident]
}

// Inspect walks every file of the pass in depth-first order, calling f for
// each node; f returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
