package main

import (
	"math/rand"
	"os"
	"testing"

	"ipdelta/internal/chunk"
)

func TestChunkCommand(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	a := make([]byte, 256<<10)
	rng.Read(a)
	b := append([]byte(nil), a...)
	rng.Read(b[64<<10 : 96<<10]) // churn a region; the rest dedups
	pa := writeTemp(t, dir, "a.bin", a)
	pb := writeTemp(t, dir, "b.bin", b)
	recipePath := dir + "/b.recipe"

	if err := run([]string{"chunk", "-out", recipePath, pa, pb}); err != nil {
		t.Fatal(err)
	}
	enc, err := os.ReadFile(recipePath)
	if err != nil {
		t.Fatal(err)
	}
	r, err := chunk.DecodeRecipe(enc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != int64(len(b)) {
		t.Fatalf("recipe total %d, want %d", r.Total(), len(b))
	}

	// Bad params and missing files are reported, not panicked.
	if err := run([]string{"chunk"}); err == nil {
		t.Fatal("no files accepted")
	}
	if err := run([]string{"chunk", "-avg", "3000", pa}); err == nil {
		t.Fatal("non-power-of-two avg accepted")
	}
	if err := run([]string{"chunk", dir + "/nonexistent"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
