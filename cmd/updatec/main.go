// Command updatec simulates a limited network device updating its image
// from an updated server: the image file is loaded into a simulated flash
// part, the in-place delta is streamed and applied with a bounded working
// buffer, and the updated image is written back.
//
// Usage:
//
//	updatec -server 127.0.0.1:7070 -image device.img [-capacity N] [-rate BPS]
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"

	"ipdelta/internal/device"
	"ipdelta/internal/netupdate"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "updatec:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("updatec", flag.ContinueOnError)
	server := fs.String("server", "127.0.0.1:7070", "update server address")
	imagePath := fs.String("image", "", "installed image file (updated in place on success)")
	capacity := fs.Int64("capacity", 0, "flash capacity in bytes (default: 2x image size)")
	rate := fs.Int64("rate", 0, "simulated link rate in bits/second (0 = unthrottled)")
	workBuf := fs.Int("workbuf", device.DefaultWorkBufSize, "device working buffer size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *imagePath == "" {
		return errors.New("updatec: -image is required")
	}
	f, err := os.OpenFile(*imagePath, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	imageLen := fi.Size()
	capBytes := *capacity
	if capBytes == 0 {
		capBytes = imageLen * 2
	}
	// Patch the image file directly, in place, through the bounded-memory
	// device engine — no second copy of the image is ever made.
	store, err := device.NewFileStore(f, capBytes)
	if err != nil {
		return err
	}
	dev := device.New(store, imageLen, *workBuf)

	var conn net.Conn
	conn, err = net.Dial("tcp", *server)
	if err != nil {
		return err
	}
	defer conn.Close()
	if *rate > 0 {
		conn = netupdate.NewThrottledConn(conn, *rate)
	}
	res, err := netupdate.UpdateDevice(conn, dev)
	if err != nil {
		return err
	}
	if res.UpToDate {
		fmt.Println("updatec: already up to date")
		return nil
	}
	if err := store.Truncate(dev.ImageLen()); err != nil {
		return err
	}
	if err := store.Sync(); err != nil {
		return err
	}
	fmt.Printf("updatec: updated %s in place via %d delta bytes (image now %d bytes)\n",
		*imagePath, res.DeltaBytes, dev.ImageLen())
	return nil
}
