package experiments

import (
	"fmt"
	"io"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
	"ipdelta/internal/stats"
	"ipdelta/internal/store"
)

// CompositionRow compares a composed chain delta against a direct diff for
// one chain length.
type CompositionRow struct {
	HopCount int
	// DirectBytes is the encoded size of a fresh diff old→new.
	DirectBytes int64
	// ComposedBytes is the encoded size of the composed chain delta.
	ComposedBytes int64
	// Overhead = composed/direct.
	Overhead float64
	// InPlaceOK records that the composed delta converted and applied in
	// place correctly.
	InPlaceOK bool
}

// CompositionResult is the E9 experiment (beyond the paper, from the same
// research line): an update server storing a release history as a delta
// chain can serve any device a single composed delta without materializing
// intermediate versions. The question is how much compression composition
// sacrifices versus diffing the endpoints directly.
type CompositionResult struct {
	Rows []CompositionRow
}

// RunComposition builds a release chain and compares composed deltas with
// direct diffs across increasing hop counts.
func RunComposition(base corpus.Pair, hops int) (*CompositionResult, error) {
	s := store.New(base.Ref)
	versions := [][]byte{base.Ref}
	cur := base.Ref
	for k := 0; k < hops; k++ {
		next := corpus.Generate(corpus.PairSpec{
			Profile:    base.Spec.Profile,
			Size:       len(cur),
			ChangeRate: 0.05,
			Seed:       base.Spec.Seed + int64(k) + 1,
		})
		v := append([]byte(nil), cur...)
		// Each release touches a different region so the chain's changes
		// accumulate instead of overwriting each other.
		splice := len(v) / 8
		at := (k * splice * 2) % (len(v) - splice)
		copy(v[at:at+splice], next.Version[:splice])
		// Also rotate the file by a small amount: block moves make later
		// deltas copy through earlier ones, exercising fragmentation in
		// the composition.
		rot := 1024 + 256*k
		v = append(v[rot:], v[:rot]...)
		if _, err := s.AppendVersion(v); err != nil {
			return nil, err
		}
		versions = append(versions, v)
		cur = v
	}

	res := &CompositionResult{}
	for hop := 1; hop <= hops; hop++ {
		head := versions[hop]
		// Direct diff 0→hop.
		direct, err := diff.NewLinear().Diff(versions[0], head)
		if err != nil {
			return nil, err
		}
		directBytes, err := codec.EncodedSize(direct, codec.FormatOrdered)
		if err != nil {
			return nil, err
		}
		// Composed 0→hop from the chain.
		composed, err := s.DeltaBetween(0, hop)
		if err != nil {
			return nil, err
		}
		composedBytes, err := codec.EncodedSize(composed, codec.FormatOrdered)
		if err != nil {
			return nil, err
		}
		row := CompositionRow{
			HopCount:      hop,
			DirectBytes:   directBytes,
			ComposedBytes: composedBytes,
			Overhead:      float64(composedBytes) / float64(directBytes),
		}
		// Convert the composed delta for in-place application and check it.
		ip, _, err := inplace.Convert(composed, versions[0], inplace.WithPolicy(graph.LocallyMinimum{}))
		if err != nil {
			return nil, fmt.Errorf("composition hop %d: in-place conversion failed: %w", hop, err)
		}
		row.InPlaceOK = ip.CheckInPlace() == nil
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the composition experiment.
func (r *CompositionResult) Render(w io.Writer) error {
	t := stats.Table{
		Title:   "E9 — composed chain delta vs direct diff (delta-chain update server)",
		Headers: []string{"hops", "direct diff", "composed", "overhead"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.HopCount),
			stats.Bytes(row.DirectBytes),
			stats.Bytes(row.ComposedBytes),
			fmt.Sprintf("%.2f×", row.Overhead),
		)
	}
	return t.Render(w)
}
