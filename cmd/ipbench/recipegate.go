package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"ipdelta/internal/chunk"
	"ipdelta/internal/diff"
)

// The recipe-gate mode (-recipe-gate) measures the chunked recipe-diff fast
// path against the full-image reuse differencer on one blocky-churn input
// and fails (non-zero exit) unless the recipe path wins by at least
// -recipe-speedup. Like -scaling-gate it is self-contained — both sides
// run in the same process on the same input, so CI can enforce "the dedup
// tier actually pays for itself" on any runner without a committed
// baseline. Before timing anything the gate applies both deltas and
// requires byte-identical reconstructions: a fast wrong answer must never
// pass.

// errRecipeGate marks a gate failure so main can exit non-zero.
type errRecipeGate struct{ msg string }

func (e errRecipeGate) Error() string { return e.msg }

// runRecipeGate builds a churned version pair, checks that the recipe diff
// and the full diff reconstruct the same bytes, then times both
// interleaved (best of three rounds) and enforces the speedup bound.
func runRecipeGate(out io.Writer, speedup float64, quick bool, seed int64) error {
	size := 16 << 20
	if quick {
		size = 2 << 20
	}
	oldImg := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(oldImg)
	newImg := blockyChurn(oldImg, 0.05, seed+1)

	ck, err := chunk.NewChunker(chunk.Params{})
	if err != nil {
		return fmt.Errorf("recipe-gate: %w", err)
	}
	cs := chunk.NewStore()
	ro := cs.IngestAll(ck, oldImg)
	rn := cs.IngestAll(ck, newImg)
	rd := diff.NewRecipeDiffer()
	dr := diff.NewDiffer()

	// Correctness first: both paths must reproduce newImg exactly.
	recipeDelta, err := rd.DiffRecipes(ro, rn, cs)
	if err != nil {
		return fmt.Errorf("recipe-gate: recipe diff: %w", err)
	}
	fullDelta, err := dr.Diff(oldImg, newImg)
	if err != nil {
		return fmt.Errorf("recipe-gate: full diff: %w", err)
	}
	got, err := recipeDelta.Apply(oldImg)
	if err != nil {
		return fmt.Errorf("recipe-gate: apply recipe delta: %w", err)
	}
	if !bytes.Equal(got, newImg) {
		return errRecipeGate{msg: "recipe delta does not reconstruct the version image"}
	}
	got, err = fullDelta.Apply(oldImg)
	if err != nil {
		return fmt.Errorf("recipe-gate: apply full delta: %w", err)
	}
	if !bytes.Equal(got, newImg) {
		return errRecipeGate{msg: "full delta does not reconstruct the version image"}
	}

	fmt.Fprintf(out, "recipe gate: %d-byte input, 5%% blocky churn, %d CPU, required speedup %.1fx\n\n",
		size, runtime.NumCPU(), speedup)

	rows := []gateRow{
		{name: "diff/full", fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dr.Diff(oldImg, newImg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "recipe/diff", fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rd.DiffRecipes(ro, rn, cs); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	measureRows(rows)
	fullNs, recipeNs := rows[0].ns, rows[1].ns

	fmt.Fprintf(out, "%-14s %14s %10s\n", "benchmark", "ns/op", "MB/s")
	for _, r := range rows {
		fmt.Fprintf(out, "%-14s %14.0f %10.1f\n", r.name, r.ns, float64(size)/r.ns*1e3)
	}
	got0 := fullNs / recipeNs
	fmt.Fprintf(out, "\nrecipe speedup: %.2fx (deltas byte-equivalent after apply)\n", got0)
	if got0 < speedup {
		return errRecipeGate{msg: fmt.Sprintf(
			"recipe diff is only %.2fx faster than the full differ (required %.1fx)", got0, speedup)}
	}
	fmt.Fprintf(out, "recipe gate passed\n")
	return nil
}
