// Command updated is the software-update server: it serves the newest of a
// set of image files as in-place reconstructible deltas to updatec clients.
//
// Usage:
//
//	updated -listen 127.0.0.1:7070 [-timeout D] [-failure-budget N]
//	        [-stream-limit N] [-stream-window N] [-max-frame N]
//	        [-metrics-addr ADDR] [-diff-workers N] [-v] v1.img v2.img v3.img
//
// Images are the release history, oldest first; devices running any of them
// are upgraded to the last one. The server speaks both protocols: framed
// v2 connections multiplex many concurrent update sessions (bounded by
// -stream-limit, with per-stream flow-control windows of -stream-window
// bytes and frames capped at -max-frame), while bare v1 clients are served
// over the deprecated single-stream shim. -timeout arms a per-message I/O
// deadline so a stalled client cannot pin a server worker; -failure-budget
// turns away clients (by remote host) after N consecutive failed sessions;
// -diff-workers controls how per-release deltas are computed: the default
// -1 lets the self-selecting engine pick sequential or parallel per input,
// 0 forces the sequential differencer, and N > 0 forces the parallel
// sharded differencer with N workers — which matters on multi-core
// servers prewarming long histories.
//
// -metrics-addr starts an HTTP listener serving the server's metrics
// registry on /metrics (Prometheus-style text, or JSON with
// ?format=json): session outcomes, bytes served, delta-cache size,
// session and per-message latency histograms, plus the codec's
// encode/decode counters. -v enables structured per-session log lines on
// stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"

	"ipdelta/internal/codec"
	"ipdelta/internal/diff"
	"ipdelta/internal/netupdate"
	"ipdelta/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "updated:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("updated", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "listen address")
	var nf netupdate.Flags
	nf.RegisterServer(fs)
	nf.RegisterTransport(fs)
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics on this HTTP address (empty = disabled)")
	diffWorkers := fs.Int("diff-workers", -1, "parallel diff workers (-1 = auto-select per input, 0 = sequential)")
	diffName := fs.String("diff", "", "differencing algorithm by name (linear, parallel, recipe, ...); overrides -diff-workers")
	verbose := fs.Bool("v", false, "log each session (structured, stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return errors.New("usage: updated [-listen ADDR] [-metrics-addr ADDR] OLDEST.img ... NEWEST.img")
	}
	history := make([][]byte, 0, len(paths))
	for _, p := range paths {
		img, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		history = append(history, img)
	}
	logger := obs.NopLogger()
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	reg := obs.NewRegistry()
	codec.SetObserver(reg)
	srvOpts := append(nf.Options(),
		netupdate.WithObserver(reg),
		netupdate.WithLogger(logger),
	)
	switch {
	case *diffName != "":
		algo, err := diff.ByName(*diffName)
		if err != nil {
			return err
		}
		srvOpts = append(srvOpts, netupdate.WithAlgorithm(algo))
	case *diffWorkers > 0:
		srvOpts = append(srvOpts, netupdate.WithAlgorithm(diff.NewParallel(*diffWorkers)))
	case *diffWorkers < 0:
		srvOpts = append(srvOpts, netupdate.WithAlgorithm(diff.NewAuto()))
	}
	srv, err := netupdate.NewServer(history, srvOpts...)
	if err != nil {
		return err
	}
	// Build every per-release delta before accepting connections.
	if err := srv.Prewarm(0); err != nil {
		return err
	}
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		fmt.Printf("updated: metrics on http://%s/metrics\n", ml.Addr())
		go func() {
			if err := http.Serve(ml, mux); err != nil {
				logger.Error("metrics listener failed", "component", "server", "err", err)
			}
		}()
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("updated: serving %d releases on %s (current: %s, %d bytes)\n",
		len(history), l.Addr(), paths[len(paths)-1], len(srv.Current()))
	return srv.Serve(l)
}
