// Package diff implements binary differencing algorithms that produce the
// delta files consumed by the in-place converter.
//
// Two algorithms are provided, mirroring the lineage the paper builds on:
//
//   - Linear: a linear-time, constant-space, one-pass differencer in the
//     family of Burns & Long (IPCCC '97) and Ajtai et al. — the algorithm
//     the paper used to generate its input deltas. Reference seeds are
//     fingerprinted with a Karp–Rabin rolling hash into a fixed-size table;
//     the version is scanned once, extending verified seed matches forward
//     and backward.
//   - Greedy: a byte-granular greedy matcher with chained hash buckets in
//     the style of Reichenberger, kept as the classical baseline. It finds
//     longer matches at higher cost (quadratic in the worst case).
//
// Both emit commands in contiguous write order covering the version file
// exactly, which Validate enforces and the codec's ordered formats require.
package diff

import (
	"fmt"

	"ipdelta/internal/delta"
)

// Algorithm is a differencing algorithm turning (reference, version) pairs
// into delta files.
type Algorithm interface {
	// Name identifies the algorithm in reports and CLI flags.
	Name() string
	// Diff computes a delta that materializes version from ref.
	Diff(ref, version []byte) (*delta.Delta, error)
}

// ByName resolves an algorithm identifier as used by CLI flags.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "linear":
		return NewLinear(), nil
	case "greedy":
		return NewGreedy(), nil
	case "blockwise":
		return NewBlockwise(), nil
	case "suffix":
		return NewSuffix(), nil
	case "correcting":
		return NewCorrecting(nil), nil
	case "null":
		return Null{}, nil
	default:
		return nil, fmt.Errorf("unknown differencing algorithm %q", name)
	}
}

// Null is the no-compression baseline: the whole version as one add. It
// anchors transmission-time comparisons (sending the raw new version).
type Null struct{}

// Name implements Algorithm.
func (Null) Name() string { return "null" }

// Diff implements Algorithm.
func (Null) Diff(ref, version []byte) (*delta.Delta, error) {
	d := &delta.Delta{RefLen: int64(len(ref)), VersionLen: int64(len(version))}
	if len(version) > 0 {
		data := make([]byte, len(version))
		copy(data, version)
		d.Commands = []delta.Command{delta.NewAdd(0, data)}
	}
	return d, nil
}

// emitter accumulates commands in write order, buffering literal bytes and
// flushing them as a single add before each copy.
type emitter struct {
	cmds    []delta.Command
	pending []byte
	at      int64 // write offset of the next emitted byte
}

// literal appends version bytes that found no match.
func (e *emitter) literal(b []byte) {
	e.pending = append(e.pending, b...)
}

// flushAdd materializes the pending literal bytes as one add command.
func (e *emitter) flushAdd() {
	if len(e.pending) == 0 {
		return
	}
	data := make([]byte, len(e.pending))
	copy(data, e.pending)
	e.cmds = append(e.cmds, delta.NewAdd(e.at, data))
	e.at += int64(len(data))
	e.pending = e.pending[:0]
}

// copyCmd emits a copy of length l from reference offset from.
func (e *emitter) copyCmd(from int64, l int64) {
	e.flushAdd()
	e.cmds = append(e.cmds, delta.NewCopy(from, e.at, l))
	e.at += l
}

// finish flushes trailing literals and returns the command list.
func (e *emitter) finish() []delta.Command {
	e.flushAdd()
	return e.cmds
}

// matchForward returns the length of the common prefix of ref[r:] and
// version[v:].
func matchForward(ref, version []byte, r, v int) int {
	n := 0
	for r+n < len(ref) && v+n < len(version) && ref[r+n] == version[v+n] {
		n++
	}
	return n
}

// matchBackward returns how many bytes before ref[r] and version[v] agree,
// looking back at most maxBack bytes.
func matchBackward(ref, version []byte, r, v, maxBack int) int {
	n := 0
	for n < maxBack && r-n-1 >= 0 && v-n-1 >= 0 && ref[r-n-1] == version[v-n-1] {
		n++
	}
	return n
}
