// Test package for the locksafe analyzer, mirroring the server shapes in
// internal/netupdate and internal/httpdelta: counters and caches guarded
// by a struct mutex.
package netupdate

import "sync"

type server struct {
	mu     sync.Mutex
	served int64
	cache  map[uint32][]byte

	// config is written before the value is shared and never under the
	// lock, so it is not lock-protected state.
	config string
}

// Locked writes via the defer idiom.
func (s *server) Record(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.served += n
}

// Locked map write with an inline Lock/Unlock pair.
func (s *server) Put(crc uint32, enc []byte) {
	s.mu.Lock()
	s.cache[crc] = enc
	s.mu.Unlock()
}

// The same counter written without the mutex races Record.
func (s *server) Reset() {
	s.served = 0 // want `written in Reset without the mutex`
}

// A field never written under the lock is plain state, not a finding.
func (s *server) SetConfig(c string) {
	s.config = c
}

type resource struct {
	mu   sync.RWMutex
	body []byte
}

func (r *resource) Update(body []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.body = append([]byte(nil), body...)
}

// RLock licenses reads, not writes.
func (r *resource) Trim(n int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.body = r.body[:n] // want `written in Trim without the mutex`
}
