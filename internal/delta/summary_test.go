package delta

import (
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	d := &Delta{
		RefLen:     100,
		VersionLen: 100,
		Commands: []Command{
			NewCopy(0, 0, 10),
			NewCopy(10, 10, 30),
			NewCopy(40, 40, 20),
			NewAdd(60, make([]byte, 8)),
			NewAdd(68, make([]byte, 32)),
		},
	}
	s := d.Summarize()
	if s.Copies != 3 || s.Adds != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.CopiedBytes != 60 || s.AddedBytes != 40 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.CopyMax != 30 || s.AddMax != 32 {
		t.Fatalf("maxima: %+v", s)
	}
	if s.CopyP50 != 20 {
		t.Fatalf("CopyP50 = %d", s.CopyP50)
	}
	if s.ShortAdds != 2 {
		t.Fatalf("ShortAdds = %d", s.ShortAdds)
	}
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "copies: 3") || !strings.Contains(sb.String(), "adds:   2") {
		t.Fatalf("render:\n%s", sb.String())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := (&Delta{}).Summarize()
	if s.Copies != 0 || s.Adds != 0 || s.CopyMax != 0 || s.AddMax != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestPercentiles(t *testing.T) {
	p50, p90, max := percentiles([]int64{5, 1, 9, 3, 7})
	if p50 != 5 || max != 9 {
		t.Fatalf("p50=%d p90=%d max=%d", p50, p90, max)
	}
	if p90 != 7 && p90 != 9 { // index rounding may land either side
		t.Fatalf("p90 = %d", p90)
	}
	if a, b, c := percentiles(nil); a != 0 || b != 0 || c != 0 {
		t.Fatal("nil percentiles not zero")
	}
}
