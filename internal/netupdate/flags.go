package netupdate

import (
	"flag"
	"time"
)

// Flags binds the netupdate command-line knobs shared by updated,
// updatec, and iploadgen onto a standard flag.FlagSet, so each command
// registers one helper instead of growing its own copy of the flag
// sprawl. Commands call the Register* methods for the surfaces they
// expose, parse, and then pass Options() to NewServer / NewClient /
// Dial.
type Flags struct {
	// Shared session knobs.
	Timeout       time.Duration
	FailureBudget int

	// Client retry ladder.
	Retries       int
	FallbackAfter int

	// v2 transport limits.
	StreamLimit   int
	InitialWindow int
	MaxFrame      int

	// Network fault injection (client side).
	FaultSeed      uint64
	FaultRate      float64
	FaultCorrupt   float64
	FaultDropAfter int64
}

// RegisterServer binds the server-side knobs: the per-message deadline
// and the per-client failure budget.
func (f *Flags) RegisterServer(fs *flag.FlagSet) *Flags {
	fs.DurationVar(&f.Timeout, "timeout", 0, "per-message I/O deadline inside a session (0 = none)")
	fs.IntVar(&f.FailureBudget, "failure-budget", 0, "reject a client after N consecutive failed sessions (0 = never)")
	return f
}

// RegisterClient binds the client-side knobs: the per-message deadline
// and the retry ladder.
func (f *Flags) RegisterClient(fs *flag.FlagSet) *Flags {
	fs.DurationVar(&f.Timeout, "timeout", 0, "per-message I/O deadline inside a session (0 = none)")
	fs.IntVar(&f.Retries, "retries", 8, "maximum session attempts before giving up")
	fs.IntVar(&f.FallbackAfter, "fallback-after", 3, "consecutive failed delta sessions before requesting the full image (-1 = never)")
	return f
}

// RegisterTransport binds the protocol-v2 limits: streams per
// connection, the per-stream receive window, and the frame size bound.
// Zero keeps the negotiated defaults.
func (f *Flags) RegisterTransport(fs *flag.FlagSet) *Flags {
	fs.IntVar(&f.StreamLimit, "stream-limit", 0, "max concurrent update streams per v2 connection (0 = default 1024)")
	fs.IntVar(&f.InitialWindow, "stream-window", 0, "per-stream receive window in bytes (0 = default 256KiB)")
	fs.IntVar(&f.MaxFrame, "max-frame", 0, "largest accepted DATA frame payload in bytes (0 = default 16KiB)")
	return f
}

// RegisterFaults binds the seeded network fault injector knobs.
func (f *Flags) RegisterFaults(fs *flag.FlagSet) *Flags {
	fs.Uint64Var(&f.FaultSeed, "fault-seed", 0, "seed for the network fault injector (and retry jitter)")
	fs.Float64Var(&f.FaultRate, "fault-rate", 0, "injected per-operation connection-drop probability")
	fs.Float64Var(&f.FaultCorrupt, "fault-corrupt", 0, "injected per-read byte-corruption probability")
	fs.Int64Var(&f.FaultDropAfter, "fault-drop-after", 0, "kill each connection after exactly N bytes (0 = never)")
	return f
}

// Options maps the parsed knobs onto the shared Config options.
func (f *Flags) Options() []Option {
	opts := []Option{
		WithMessageTimeout(f.Timeout),
		WithFailureBudget(f.FailureBudget),
		WithMaxAttempts(f.Retries),
		WithFullFallbackAfter(f.FallbackAfter),
		WithSeed(f.FaultSeed),
	}
	if f.StreamLimit > 0 {
		opts = append(opts, WithStreamLimit(f.StreamLimit))
	}
	if f.InitialWindow > 0 {
		opts = append(opts, WithInitialWindow(f.InitialWindow))
	}
	if f.MaxFrame > 0 {
		opts = append(opts, WithMaxFrame(f.MaxFrame))
	}
	return opts
}

// FaultsEnabled reports whether any fault-injection knob is armed.
func (f *Flags) FaultsEnabled() bool {
	return f.FaultRate > 0 || f.FaultCorrupt > 0 || f.FaultDropAfter > 0
}

// FaultProfile derives the injector profile for one dial attempt, so
// retries see fresh but reproducible network weather.
func (f *Flags) FaultProfile(attempt uint64) FaultProfile {
	return FaultProfile{
		Seed:           f.FaultSeed + attempt,
		DropAfterBytes: f.FaultDropAfter,
		OpFaultRate:    f.FaultRate,
		CorruptRate:    f.FaultCorrupt,
	}
}
