package checker

import (
	"fmt"
	"os"
	"sort"
)

// ApplyEdits applies byte-offset edits to src and returns the result. The
// edits must lie within src; overlapping edits are an error (the caller is
// expected to have filtered conflicts with SelectEdits).
func ApplyEdits(src []byte, edits []Edit) ([]byte, error) {
	sorted := append([]Edit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var out []byte
	at := 0
	for _, e := range sorted {
		if e.Start < at || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("checker: overlapping or out-of-range edit [%d,%d)", e.Start, e.End)
		}
		out = append(out, src[at:e.Start]...)
		out = append(out, e.NewText...)
		at = e.End
	}
	out = append(out, src[at:]...)
	return out, nil
}

// SelectEdits flattens the first suggested fix of each diagnostic into a
// per-file edit set, dropping any fix that overlaps an already-selected
// edit (first diagnostic wins — diagnostics arrive in source order, so
// the earlier finding keeps its repair). It returns the per-file edits
// and the number of fixes selected and skipped.
func SelectEdits(diags []Diagnostic) (perFile map[string][]Edit, applied, skipped int) {
	perFile = map[string][]Edit{}
	overlaps := func(edits []Edit, e Edit) bool {
		for _, x := range edits {
			if e.Start < x.End && x.Start < e.End {
				return true
			}
		}
		return false
	}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		fix := d.Fixes[0]
		conflict := false
		for _, e := range fix.Edits {
			if overlaps(perFile[e.File], e) {
				conflict = true
				break
			}
		}
		if conflict {
			skipped++
			continue
		}
		for _, e := range fix.Edits {
			perFile[e.File] = append(perFile[e.File], e)
		}
		applied++
	}
	return perFile, applied, skipped
}

// ApplyFixes writes every diagnostic's first suggested fix back to the
// source files, skipping overlapping fixes. It returns the files changed
// (sorted) and the counts of fixes applied and skipped. Running the
// analyzers again after ApplyFixes must produce no further edits — fixes
// remove the pattern that triggered them — which is what makes `ipvet
// -fix` idempotent.
func ApplyFixes(diags []Diagnostic) (changed []string, applied, skipped int, err error) {
	perFile, applied, skipped := SelectEdits(diags)
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, 0, 0, err
		}
		fixed, err := ApplyEdits(src, edits)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("%s: %w", file, err)
		}
		if err := os.WriteFile(file, fixed, 0o644); err != nil {
			return nil, 0, 0, err
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	return changed, applied, skipped, nil
}
