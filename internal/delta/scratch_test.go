package delta

import (
	"bytes"
	"errors"
	"testing"
)

// scratchSwap swaps two halves via stash/unstash.
func scratchSwap() *Delta {
	return &Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []Command{
			NewStash(0, 4),
			NewCopy(4, 0, 4),
			NewUnstash(4, 4),
		},
	}
}

func TestScratchOpsBasics(t *testing.T) {
	st := NewStash(3, 5)
	if st.Op != OpStash || st.From != 3 || st.Length != 5 {
		t.Fatalf("stash = %+v", st)
	}
	if !st.WriteInterval().Empty() {
		t.Fatal("stash must have an empty write interval")
	}
	if r := st.ReadInterval(); r.Lo != 3 || r.Hi != 7 {
		t.Fatalf("stash read interval = %v", r)
	}
	un := NewUnstash(9, 2)
	if un.Op != OpUnstash || un.To != 9 || un.Length != 2 {
		t.Fatalf("unstash = %+v", un)
	}
	if !un.ReadInterval().Empty() {
		t.Fatal("unstash must not read the buffer")
	}
	if w := un.WriteInterval(); w.Lo != 9 || w.Hi != 10 {
		t.Fatalf("unstash write interval = %v", w)
	}
	if OpStash.String() != "stash" || OpUnstash.String() != "unstash" {
		t.Fatal("op names wrong")
	}
	if st.String() != "stash⟨3,5⟩" || un.String() != "unstash⟨9,2⟩" {
		t.Fatalf("strings: %s %s", st, un)
	}
}

func TestScratchValidateAccepts(t *testing.T) {
	d := scratchSwap()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.ScratchRequired() != 4 {
		t.Fatalf("ScratchRequired = %d", d.ScratchRequired())
	}
}

func TestScratchValidateRejects(t *testing.T) {
	tests := []struct {
		name string
		d    *Delta
		want error
	}{
		{
			name: "unbalanced stash",
			d: &Delta{RefLen: 8, VersionLen: 8, Commands: []Command{
				NewStash(0, 4),
				NewCopy(0, 0, 8),
			}},
			want: ErrScratchUnbalanced,
		},
		{
			name: "underflow",
			d: &Delta{RefLen: 8, VersionLen: 8, Commands: []Command{
				NewUnstash(0, 4),
				NewStash(0, 4),
				NewCopy(0, 4, 4),
			}},
			want: ErrScratchUnderflow,
		},
		{
			name: "stash read out of bounds",
			d: &Delta{RefLen: 8, VersionLen: 8, Commands: []Command{
				NewStash(6, 4),
				NewCopy(0, 0, 4),
				NewUnstash(4, 4),
			}},
			want: ErrReadOOB,
		},
		{
			name: "unstash write out of bounds",
			d: &Delta{RefLen: 8, VersionLen: 8, Commands: []Command{
				NewStash(0, 4),
				NewCopy(0, 0, 6),
				NewUnstash(6, 4),
			}},
			want: ErrWriteOOB,
		},
		{
			name: "negative stash offset",
			d: &Delta{RefLen: 8, VersionLen: 8, Commands: []Command{
				NewStash(-1, 4),
				NewCopy(0, 0, 8),
				NewUnstash(0, 4),
			}},
			want: ErrNegativeOffset,
		},
		{
			name: "zero-length unstash",
			d: &Delta{RefLen: 8, VersionLen: 8, Commands: []Command{
				NewStash(0, 4),
				NewCopy(0, 0, 8),
				NewUnstash(0, 0),
			}},
			want: ErrZeroLength,
		},
		{
			name: "stash with data payload",
			d: &Delta{RefLen: 8, VersionLen: 8, Commands: []Command{
				{Op: OpStash, From: 0, Length: 4, Data: []byte("xxxx")},
				NewCopy(0, 0, 8),
				NewUnstash(0, 4),
			}},
			want: ErrAddLength,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.d.Validate(); !errors.Is(err, tt.want) {
				t.Fatalf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestScratchApplyBothEngines(t *testing.T) {
	d := scratchSwap()
	ref := []byte("AAAABBBB")
	want, err := d.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != "BBBBAAAA" {
		t.Fatalf("Apply = %q", want)
	}
	buf := append([]byte(nil), ref...)
	if err := d.ApplyInPlace(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("ApplyInPlace = %q", buf)
	}
	// The scratch swap must also pass the in-place safety check.
	if err := d.CheckInPlace(); err != nil {
		t.Fatal(err)
	}
}

func TestScratchCheckInPlaceCatchesLateStash(t *testing.T) {
	// A stash placed after a write into its read interval is unsafe.
	d := &Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []Command{
			NewCopy(4, 0, 4), // writes [0,3]
			NewStash(0, 4),   // reads [0,3] — too late!
			NewUnstash(4, 4),
		},
	}
	if err := d.CheckInPlace(); err == nil {
		t.Fatal("late stash accepted as in-place safe")
	}
}
