package corpus

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCorpusFile(t *testing.T, dir, name string, content []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFromFilesFlatPairs(t *testing.T) {
	dir := t.TempDir()
	writeCorpusFile(t, dir, "app.old", []byte("old app"))
	writeCorpusFile(t, dir, "app.new", []byte("new app"))
	writeCorpusFile(t, dir, "lib.old", []byte("old lib"))
	writeCorpusFile(t, dir, "lib.new", []byte("new lib"))
	writeCorpusFile(t, dir, "README", []byte("ignored"))

	pairs, err := FromFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("%d pairs", len(pairs))
	}
	if pairs[0].Name != "app" || string(pairs[0].Ref) != "old app" || string(pairs[0].Version) != "new app" {
		t.Fatalf("pair 0: %+v", pairs[0].Name)
	}
	if pairs[1].Name != "lib" {
		t.Fatalf("pair 1: %s", pairs[1].Name)
	}
}

func TestFromFilesVersionChain(t *testing.T) {
	dir := t.TempDir()
	writeCorpusFile(t, dir, "fw.v0", []byte("version zero"))
	writeCorpusFile(t, dir, "fw.v1", []byte("version one"))
	writeCorpusFile(t, dir, "fw.v2", []byte("version two"))
	writeCorpusFile(t, dir, "fw.v10", []byte("version ten"))

	pairs, err := FromFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("%d pairs: %v", len(pairs), pairs)
	}
	// Numeric ordering: v0-v1, v1-v2, v2-v10.
	if pairs[0].Name != "fw.v0-v1" || pairs[2].Name != "fw.v2-v10" {
		t.Fatalf("names: %s %s %s", pairs[0].Name, pairs[1].Name, pairs[2].Name)
	}
	if string(pairs[2].Ref) != "version two" || string(pairs[2].Version) != "version ten" {
		t.Fatal("chain contents wrong")
	}
}

func TestFromFilesErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := FromFiles(dir); err == nil {
		t.Fatal("empty dir accepted")
	}
	writeCorpusFile(t, dir, "x.old", []byte("a"))
	if _, err := FromFiles(dir); err == nil {
		t.Fatal("orphan .old accepted")
	}
	if _, err := FromFiles(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestSplitVersionSuffix(t *testing.T) {
	tests := []struct {
		in   string
		base string
		ver  int
		ok   bool
	}{
		{"fw.v3", "fw", 3, true},
		{"a.b.v12", "a.b", 12, true},
		{"fw.v", "", 0, false},
		{"fw.vx1", "", 0, false},
		{"plain", "", 0, false},
	}
	for _, tt := range tests {
		base, ver, ok := splitVersionSuffix(tt.in)
		if ok != tt.ok || base != tt.base || ver != tt.ver {
			t.Errorf("splitVersionSuffix(%q) = %q, %d, %v", tt.in, base, ver, ok)
		}
	}
}
