package store

import (
	"bytes"
	"math/rand"
	"testing"

	"ipdelta/internal/chunk"
	"ipdelta/internal/graph"
	"ipdelta/internal/obs"
)

// churnedVersions builds a version history with blocky churn: each
// version overwrites a region and appends a little, so consecutive
// versions share most of their chunks.
func churnedVersions(seed int64, n, size int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	base := make([]byte, size)
	rng.Read(base)
	out := [][]byte{base}
	for v := 1; v < n; v++ {
		prev := out[v-1]
		next := append([]byte(nil), prev...)
		lo := rng.Intn(len(next) - 8<<10)
		rng.Read(next[lo : lo+8<<10])
		tail := make([]byte, 2<<10)
		rng.Read(tail)
		out = append(out, append(next, tail...))
	}
	return out
}

func TestChunkedStoreRoundtrip(t *testing.T) {
	reg := obs.NewRegistry()
	versions := churnedVersions(1, 5, 256<<10)
	s := New(versions[0], WithChunking(nil), WithObserver(reg))
	for _, v := range versions[1:] {
		if _, err := s.AppendVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range versions {
		got, err := s.Version(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("version %d: chunked materialization mismatch", i)
		}
	}
	// Direct deltas between arbitrary endpoints come from recipe diffs.
	for _, pair := range [][2]int{{0, 4}, {1, 3}, {0, 1}, {2, 2}} {
		d, err := s.DeltaBetween(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("delta %v invalid: %v", pair, err)
		}
		got, err := d.Apply(versions[pair[0]])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, versions[pair[1]]) {
			t.Fatalf("delta %v does not reconstruct", pair)
		}
	}
	// The acceptance check: consecutive versions share most chunks, so
	// dedup counters must show real cross-version sharing.
	snap := reg.Snapshot()
	if hits := snap.Counters["ipdelta_chunk_dedup_hits_total"]; hits == 0 {
		t.Fatal("no cross-version chunk sharing recorded")
	}
	if saved := snap.Counters["ipdelta_chunk_dedup_bytes_saved_total"]; saved < 512<<10 {
		t.Fatalf("bytes saved %d — churned history should dedup most content", saved)
	}
	if st, ok := s.ChunkStats(); !ok || st.Chunks == 0 {
		t.Fatalf("ChunkStats = %+v, %v", st, ok)
	}
}

func TestChunkedStoreCrossTenantDedup(t *testing.T) {
	reg := obs.NewRegistry()
	shared := chunk.NewStore(chunk.WithObserver(reg))
	versions := churnedVersions(2, 3, 128<<10)

	a := New(versions[0], WithChunking(shared))
	b := New(versions[0], WithChunking(shared)) // second tenant, same base
	for _, v := range versions[1:] {
		if _, err := a.AppendVersion(v); err != nil {
			t.Fatal(err)
		}
		if _, err := b.AppendVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	// Tenant b ingested nothing new: all its content was already resident
	// from tenant a, so at least the whole second copy is saved.
	if saved := snap.Counters["ipdelta_chunk_dedup_bytes_saved_total"]; saved < int64(len(versions[0])) {
		t.Fatalf("cross-tenant bytes saved %d, want at least one base image (%d)", saved, len(versions[0]))
	}
	for i, want := range versions {
		got, err := b.Version(i)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("tenant b version %d wrong (%v)", i, err)
		}
	}
}

func TestChunkedStoreSaveLoad(t *testing.T) {
	versions := churnedVersions(3, 4, 128<<10)
	s := New(versions[0], WithChunking(nil))
	for _, v := range versions[1:] {
		if _, err := s.AppendVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := s.Save()
	if err != nil {
		t.Fatal(err)
	}
	// A chunked Load rebuilds the recipe tier from the replayed chain.
	s2, err := Load(enc, WithChunking(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range versions {
		got, err := s2.Version(i)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("reloaded version %d wrong (%v)", i, err)
		}
	}
	d, err := s2.DeltaBetween(0, len(versions)-1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(versions[0])
	if err != nil || !bytes.Equal(got, versions[len(versions)-1]) {
		t.Fatalf("reloaded recipe delta wrong (%v)", err)
	}
	// The container itself is tier-agnostic: a plain Load reads it too.
	if _, err := Load(enc); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedStoreInPlaceDelta(t *testing.T) {
	versions := churnedVersions(4, 3, 128<<10)
	s := New(versions[0], WithChunking(nil))
	for _, v := range versions[1:] {
		if _, err := s.AppendVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	d, _, err := s.InPlaceDeltaTo(0, graph.LocallyMinimum{})
	if err != nil {
		t.Fatal(err)
	}
	head := versions[len(versions)-1]
	buf := make([]byte, d.InPlaceBufLen())
	copy(buf, versions[0])
	if err := d.ApplyInPlace(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:len(head)], head) {
		t.Fatal("in-place reconstruction from a recipe-sourced delta mismatch")
	}
}
