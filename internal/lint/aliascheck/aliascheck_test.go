package aliascheck_test

import (
	"testing"

	"ipdelta/internal/lint/aliascheck"
	"ipdelta/internal/lint/analysistest"
)

func TestAliascheck(t *testing.T) {
	// "inplace" is in scope and holds the positive and negative cases;
	// "other" repeats the violations outside the analyzer's package scope.
	for _, pkg := range []string{"inplace", "other"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, aliascheck.Analyzer, pkg)
		})
	}
}
