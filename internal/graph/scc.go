package graph

// SCCScratch holds the working state of Tarjan's algorithm so repeated
// SCC computations reuse one set of buffers. In steady state a Components
// call performs no allocations. The zero value is ready for use; an
// SCCScratch must not be used concurrently.
type SCCScratch struct {
	index   []int32
	lowlink []int32
	onStack []bool
	stack   []int32
	dfs     []topoFrame
	// flat component output: component k is verts[offs[k]:offs[k+1]].
	verts []int32
	offs  []int32
}

// Components computes the strongly connected components of g with an
// iterative Tarjan DFS, returning them in a flat form: component k is
// verts[offs[k]:offs[k+1]], and there are len(offs)-1 components.
// Components are produced in reverse topological order of the condensation
// (Tarjan's natural output order). The returned slices are owned by the
// scratch and remain valid only until the next Components call.
func (s *SCCScratch) Components(g Graph) (verts, offs []int32) {
	n := g.NumVertices()
	const unvisited = -1
	s.index = growInt32(s.index, n)
	s.lowlink = growInt32(s.lowlink, n)
	s.onStack = growBools(s.onStack, n)
	s.stack = s.stack[:0]
	s.dfs = s.dfs[:0]
	s.verts = s.verts[:0]
	s.offs = append(s.offs[:0], 0)
	for k := range s.index {
		s.index[k] = unvisited
	}

	var counter int32
	for root := 0; root < n; root++ {
		if s.index[root] != unvisited {
			continue
		}
		s.dfs = append(s.dfs[:0], topoFrame{v: int32(root)})
		s.index[root] = counter
		s.lowlink[root] = counter
		counter++
		s.stack = append(s.stack, int32(root))
		s.onStack[root] = true
		for len(s.dfs) > 0 {
			top := &s.dfs[len(s.dfs)-1]
			succ := g.Succ(int(top.v))
			if top.edge < len(succ) {
				w := succ[top.edge]
				top.edge++
				if s.index[w] == unvisited {
					s.index[w] = counter
					s.lowlink[w] = counter
					counter++
					s.stack = append(s.stack, w)
					s.onStack[w] = true
					s.dfs = append(s.dfs, topoFrame{v: w})
				} else if s.onStack[w] && s.index[w] < s.lowlink[top.v] {
					s.lowlink[top.v] = s.index[w]
				}
				continue
			}
			// Finished top.v: pop an SCC if it is a root.
			v := top.v
			s.dfs = s.dfs[:len(s.dfs)-1]
			if len(s.dfs) > 0 {
				if s.lowlink[v] < s.lowlink[s.dfs[len(s.dfs)-1].v] {
					s.lowlink[s.dfs[len(s.dfs)-1].v] = s.lowlink[v]
				}
			}
			if s.lowlink[v] == s.index[v] {
				for {
					w := s.stack[len(s.stack)-1]
					s.stack = s.stack[:len(s.stack)-1]
					s.onStack[w] = false
					s.verts = append(s.verts, w)
					if w == v {
						break
					}
				}
				s.offs = append(s.offs, int32(len(s.verts)))
			}
		}
	}
	return s.verts, s.offs
}

// StronglyConnectedComponents returns the SCCs of g using an iterative
// Tarjan algorithm. Every vertex appears in exactly one component;
// components are returned in reverse topological order of the condensation
// (Tarjan's natural output order). Singleton components without self-loops
// are trivially acyclic; every cycle of g lives inside one component.
//
// The result is freshly allocated; hot paths that can tolerate flat,
// scratch-owned output should use SCCScratch.Components directly.
func StronglyConnectedComponents(g Graph) [][]int {
	var s SCCScratch
	verts, offs := s.Components(g)
	sccs := make([][]int, len(offs)-1)
	for k := range sccs {
		comp := make([]int, 0, offs[k+1]-offs[k])
		for _, v := range verts[offs[k]:offs[k+1]] {
			comp = append(comp, int(v))
		}
		sccs[k] = comp
	}
	return sccs
}

// growBools returns s resized to n elements, all false, reusing capacity.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// GreedyFeedbackVertexSet computes a feedback vertex set with an SCC-scoped
// greedy heuristic: within every non-trivial strongly connected component,
// repeatedly delete the vertex with the best (in·out degree)/cost score
// until the component decomposes. This is an alternative cycle-breaking
// strategy to the paper's DFS-embedded policies, included as an ablation:
// it sees whole components rather than one cycle at a time, at the cost of
// repeated SCC computations.
func GreedyFeedbackVertexSet(g Graph, cost CostFunc) []int {
	removed := make([]bool, g.NumVertices())
	var out []int
	// Work queue of vertex sets that may still contain cycles.
	queue := [][]int{allVertices(g.NumVertices())}
	for len(queue) > 0 {
		verts := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		sub, fromSub := subgraph(g, verts, removed)
		for _, comp := range StronglyConnectedComponents(sub) {
			if len(comp) < 2 {
				continue // no self-loops exist in CRWI digraphs
			}
			// Delete the best-scoring vertex of this component.
			best, bestScore := -1, -1.0
			inDeg, outDeg := degreesWithin(sub, comp)
			for _, v := range comp {
				score := float64(inDeg[v]*outDeg[v]+1) / float64(cost(fromSub[v])+1)
				if score > bestScore {
					best, bestScore = v, score
				}
			}
			victim := fromSub[best]
			removed[victim] = true
			out = append(out, victim)
			// The component minus the victim may still be cyclic.
			rest := make([]int, 0, len(comp)-1)
			for _, v := range comp {
				if v != best {
					rest = append(rest, fromSub[v])
				}
			}
			queue = append(queue, rest)
		}
	}
	return out
}

func allVertices(n int) []int {
	out := make([]int, n)
	for k := range out {
		out[k] = k
	}
	return out
}

// subgraph builds the induced subgraph on verts minus removed vertices,
// returning it and the mapping from subgraph index to original vertex.
func subgraph(g Graph, verts []int, removed []bool) (*Digraph, []int) {
	toSub := make(map[int]int, len(verts))
	var fromSub []int
	for _, v := range verts {
		if removed[v] {
			continue
		}
		toSub[v] = len(fromSub)
		fromSub = append(fromSub, v)
	}
	sub := New(len(fromSub))
	for _, v := range fromSub {
		for _, w := range g.Succ(v) {
			if sw, ok := toSub[int(w)]; ok {
				sub.AddEdge(toSub[v], sw)
			}
		}
	}
	return sub, fromSub
}

// degreesWithin counts in/out degrees restricted to the component.
func degreesWithin(g Graph, comp []int) (in, out map[int]int) {
	member := make(map[int]bool, len(comp))
	for _, v := range comp {
		member[v] = true
	}
	in = make(map[int]int, len(comp))
	out = make(map[int]int, len(comp))
	for _, v := range comp {
		for _, w := range g.Succ(v) {
			if member[int(w)] {
				out[v]++
				in[int(w)]++
			}
		}
	}
	return in, out
}
