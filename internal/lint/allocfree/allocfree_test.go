package allocfree_test

import (
	"testing"

	"ipdelta/internal/lint/allocfree"
	"ipdelta/internal/lint/analysistest"
)

func TestAllocFree(t *testing.T) {
	// "allocdep" is analyzed first as a dependency, so "hotpath" sees its
	// exported AllocFacts; the cross-package cases in the fixture rely on
	// the analyzer never re-walking allocdep's bodies.
	analysistest.Run(t, allocfree.Analyzer, "hotpath", "allocdep")
}
