package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ipdelta/internal/corpus"
	"ipdelta/internal/device"
	"ipdelta/internal/netupdate"
	"ipdelta/internal/stats"
)

// TransferRow is one corpus pair in the transfer-time experiment.
type TransferRow struct {
	Name       string
	FullBytes  int64
	DeltaBytes int64
	Speedup    float64
}

// TransferResult backs the §1/§7 motivation: delta compression reduces the
// bytes shipped to a device by 4–10×, shrinking transmission time on
// low-bandwidth channels by the same factor. Each pair runs a real update
// session over an in-memory connection; the bytes on the wire are measured,
// not estimated.
type TransferResult struct {
	Rows  []TransferRow
	Rates []int64 // link rates in bits/second for the time columns
	// MeanSpeedup is the average full/delta ratio.
	MeanSpeedup float64
}

// RunTransfer updates one device per pair and measures wire traffic.
func RunTransfer(pairs []corpus.Pair, rates []int64) (*TransferResult, error) {
	res := &TransferResult{Rates: rates}
	var speedup stats.Aggregate
	for _, p := range pairs {
		srv, err := netupdate.NewServer([][]byte{p.Ref, p.Version})
		if err != nil {
			return nil, err
		}
		capacity := int64(len(p.Ref))
		if int64(len(p.Version)) > capacity {
			capacity = int64(len(p.Version))
		}
		flash, err := device.NewFlash(p.Ref, capacity)
		if err != nil {
			return nil, err
		}
		dev := device.New(flash, int64(len(p.Ref)), device.DefaultWorkBufSize)

		client, server := net.Pipe()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer server.Close()
			_ = srv.HandleConn(server)
		}()
		r, err := netupdate.Run(context.Background(), client, dev)
		client.Close()
		wg.Wait()
		if err != nil {
			return nil, fmt.Errorf("transfer %s: %w", p.Name, err)
		}
		row := TransferRow{
			Name:       p.Name,
			FullBytes:  int64(len(p.Version)),
			DeltaBytes: r.DeltaBytes,
			Speedup:    float64(len(p.Version)) / float64(r.DeltaBytes),
		}
		speedup.Add(row.Speedup)
		res.Rows = append(res.Rows, row)
	}
	res.MeanSpeedup = speedup.Mean()
	return res, nil
}

// Render prints per-pair traffic and the transmission times at each rate.
func (r *TransferResult) Render(w io.Writer) error {
	headers := []string{"pair", "full image", "in-place delta", "speedup"}
	for _, rate := range r.Rates {
		headers = append(headers, fmt.Sprintf("t@%s", rateName(rate)))
	}
	t := stats.Table{
		Title:   "§1 motivation — transmission of full image vs in-place delta",
		Headers: headers,
	}
	for _, row := range r.Rows {
		cells := []string{
			row.Name,
			stats.Bytes(row.FullBytes),
			stats.Bytes(row.DeltaBytes),
			fmt.Sprintf("%.1f×", row.Speedup),
		}
		for _, rate := range r.Rates {
			full := netupdate.TransferTime(row.FullBytes, rate)
			dl := netupdate.TransferTime(row.DeltaBytes, rate)
			cells = append(cells, fmt.Sprintf("%s→%s", roundDur(full), roundDur(dl)))
		}
		t.AddRow(cells...)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "mean speedup %.1f× (paper reports delta compression by a factor of 4 to 10)\n", r.MeanSpeedup)
	return err
}

func rateName(bps int64) string {
	switch {
	case bps >= 1_000_000:
		return fmt.Sprintf("%gMbps", float64(bps)/1e6)
	case bps >= 1_000:
		return fmt.Sprintf("%gkbps", float64(bps)/1e3)
	default:
		return fmt.Sprintf("%dbps", bps)
	}
}

func roundDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(100 * time.Millisecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
