// Package experiments implements one driver per table and figure of the
// paper's evaluation (§5–§7), shared by the ipbench command and the
// repository's benchmarks. Each driver returns a structured result with a
// Render method that prints rows shaped like the paper's.
package experiments

import (
	"fmt"
	"io"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
	"ipdelta/internal/stats"
)

// Table1Row is one column of the paper's Table 1 (transposed into rows):
// a delta variant with its compression ratio and loss decomposition.
type Table1Row struct {
	Variant string
	// Compression is total delta bytes / total version bytes (the paper
	// reports 15.3% / 17.2% / 17.7% / 21.2%).
	Compression float64
	// EncodingLoss is the compression given up to explicit write offsets.
	EncodingLoss float64
	// CycleLoss is the compression given up to converting copies to adds.
	CycleLoss float64
	// TotalLoss is the loss relative to the ordered-format delta.
	TotalLoss float64
}

// Table1Result reproduces Table 1 over a corpus.
type Table1Result struct {
	Rows  []Table1Row
	Pairs int
	// VersionBytes is the total uncompressed version size.
	VersionBytes int64
	// ConvertedLM / ConvertedCT count copies converted to adds by policy.
	ConvertedLM int
	ConvertedCT int
	// CyclesLM counts cycles broken under the locally-minimum policy.
	CyclesLM int
}

// RunTable1 measures the four delta variants of Table 1 over the corpus:
// the ordered delta without write offsets, the same commands with explicit
// write offsets, and the in-place converted delta under each cycle-breaking
// policy.
func RunTable1(pairs []corpus.Pair, algo diff.Algorithm) (*Table1Result, error) {
	var versionBytes, ordered, offsets, lm, ct int64
	res := &Table1Result{Pairs: len(pairs)}
	for _, p := range pairs {
		d, err := algo.Diff(p.Ref, p.Version)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", p.Name, err)
		}
		so, err := codec.EncodedSize(d, codec.FormatOrdered)
		if err != nil {
			return nil, err
		}
		sw, err := codec.EncodedSize(d, codec.FormatOffsets)
		if err != nil {
			return nil, err
		}
		ipLM, stLM, err := inplace.Convert(d, p.Ref, inplace.WithPolicy(graph.LocallyMinimum{}))
		if err != nil {
			return nil, err
		}
		sLM, err := codec.EncodedSize(ipLM, codec.FormatOffsets)
		if err != nil {
			return nil, err
		}
		ipCT, stCT, err := inplace.Convert(d, p.Ref, inplace.WithPolicy(graph.ConstantTime{}))
		if err != nil {
			return nil, err
		}
		sCT, err := codec.EncodedSize(ipCT, codec.FormatOffsets)
		if err != nil {
			return nil, err
		}
		versionBytes += int64(len(p.Version))
		ordered += so
		offsets += sw
		lm += sLM
		ct += sCT
		res.ConvertedLM += stLM.ConvertedCopies
		res.ConvertedCT += stCT.ConvertedCopies
		res.CyclesLM += stLM.CyclesBroken
	}
	res.VersionBytes = versionBytes
	compression := func(n int64) float64 { return float64(n) / float64(versionBytes) }
	cOrdered := compression(ordered)
	cOffsets := compression(offsets)
	cLM := compression(lm)
	cCT := compression(ct)
	res.Rows = []Table1Row{
		{Variant: "Δ compress, no write offsets", Compression: cOrdered},
		{
			Variant:      "Δ compress, write offsets",
			Compression:  cOffsets,
			EncodingLoss: cOffsets - cOrdered,
			TotalLoss:    cOffsets - cOrdered,
		},
		{
			Variant:      "in-place (locally minimum)",
			Compression:  cLM,
			EncodingLoss: cOffsets - cOrdered,
			CycleLoss:    cLM - cOffsets,
			TotalLoss:    cLM - cOrdered,
		},
		{
			Variant:      "in-place (constant time)",
			Compression:  cCT,
			EncodingLoss: cOffsets - cOrdered,
			CycleLoss:    cCT - cOffsets,
			TotalLoss:    cCT - cOrdered,
		},
	}
	return res, nil
}

// Render prints the result in the shape of the paper's Table 1.
func (r *Table1Result) Render(w io.Writer) error {
	t := stats.Table{
		Title: fmt.Sprintf("Table 1 — compression and in-place conversion loss (%d pairs, %s of version data)",
			r.Pairs, stats.Bytes(r.VersionBytes)),
		Headers: []string{"variant", "compression", "encoding loss", "loss from cycles", "total loss"},
	}
	for _, row := range r.Rows {
		enc, cyc, tot := "", "", ""
		if row.TotalLoss != 0 {
			enc = stats.Pct(row.EncodingLoss)
			tot = stats.Pct(row.TotalLoss)
		}
		if row.CycleLoss != 0 {
			cyc = stats.Pct(row.CycleLoss)
		}
		t.AddRow(row.Variant, stats.Pct(row.Compression), enc, cyc, tot)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "copies converted: locally-minimum %d, constant-time %d; cycles broken: %d\n",
		r.ConvertedLM, r.ConvertedCT, r.CyclesLM)
	return err
}
