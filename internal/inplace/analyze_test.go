package inplace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipdelta/internal/delta"
	"ipdelta/internal/diff"
)

func TestAnalyzeSwap(t *testing.T) {
	d := &delta.Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []delta.Command{
			delta.NewCopy(4, 0, 4),
			delta.NewCopy(0, 4, 4),
		},
	}
	a, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if a.Copies != 2 || a.Adds != 0 {
		t.Fatalf("partition: %+v", a)
	}
	if a.Edges != 2 {
		t.Fatalf("edges = %d, want 2", a.Edges)
	}
	if a.CyclicComponents != 1 || a.VerticesInCycles != 2 || a.LargestComponent != 2 {
		t.Fatalf("cycle structure: %+v", a)
	}
	if a.AlreadySafe || a.ReorderSufficient {
		t.Fatalf("swap cannot be safe or reorderable: %+v", a)
	}
	if a.MinConversionBytes != 4 {
		t.Fatalf("MinConversionBytes = %d, want 4", a.MinConversionBytes)
	}
	if a.LocallyMinimumBytes != 4 {
		t.Fatalf("LocallyMinimumBytes = %d, want 4", a.LocallyMinimumBytes)
	}
}

func TestAnalyzeSafeDelta(t *testing.T) {
	d := &delta.Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []delta.Command{
			delta.NewCopy(4, 0, 4),
			delta.NewAdd(4, []byte("wxyz")),
		},
	}
	a, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if !a.AlreadySafe || !a.ReorderSufficient {
		t.Fatalf("safe delta misreported: %+v", a)
	}
	if a.MinConversionBytes != 0 || a.LocallyMinimumBytes != 0 {
		t.Fatalf("no conversions expected: %+v", a)
	}
}

func TestAnalyzeReorderSufficient(t *testing.T) {
	// Conflicting as ordered (the add writes into the copy's read interval
	// before the copy runs), but the copy-copy digraph is acyclic, so
	// moving the add after the copy suffices — no conversion needed.
	d := &delta.Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []delta.Command{
			delta.NewAdd(6, []byte("XY")), // writes [6,7]
			delta.NewCopy(2, 0, 6),        // reads [2,7] — includes [6,7]
		},
	}
	a, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if a.AlreadySafe {
		t.Fatal("delta as ordered must conflict (cmd 2 reads what cmd 0 wrote)")
	}
	if !a.ReorderSufficient {
		t.Fatalf("acyclic digraph must be reorder-sufficient: %+v", a)
	}
	if a.MinConversionBytes != 0 {
		t.Fatalf("MinConversionBytes = %d", a.MinConversionBytes)
	}
}

func TestAnalyzeAdversarialTree(t *testing.T) {
	depth, leafLen := 3, 16
	d := AdversarialDelta(depth, leafLen)
	a, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	// All tree vertices are entangled through the root: one big component.
	n := (1 << (depth + 1)) - 1
	if a.CyclicComponents != 1 || a.VerticesInCycles != n {
		t.Fatalf("tree analysis: %+v", a)
	}
	// The minimum bound is one smallest copy (a leaf).
	if a.MinConversionBytes != int64(leafLen) {
		t.Fatalf("MinConversionBytes = %d, want %d", a.MinConversionBytes, leafLen)
	}
	// Locally minimum converts every leaf.
	if a.LocallyMinimumBytes != int64(leafLen*(1<<depth)) {
		t.Fatalf("LocallyMinimumBytes = %d", a.LocallyMinimumBytes)
	}
}

// TestAnalyzeCycleSacrifices checks the per-cycle census: one entry per
// cyclic component, the named policy, and totals that tie out to the
// aggregate fields.
func TestAnalyzeCycleSacrifices(t *testing.T) {
	// Two independent swaps of different sizes: two 2-vertex components.
	d := &delta.Delta{
		RefLen:     24,
		VersionLen: 24,
		Commands: []delta.Command{
			delta.NewCopy(4, 0, 4),
			delta.NewCopy(0, 4, 4),
			delta.NewCopy(16, 8, 8),
			delta.NewCopy(8, 16, 8),
		},
	}
	a, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if a.CensusPolicy != "locally-minimum" {
		t.Fatalf("CensusPolicy = %q, want locally-minimum", a.CensusPolicy)
	}
	if len(a.CycleSacrifices) != a.CyclicComponents || a.CyclicComponents != 2 {
		t.Fatalf("census has %d entries for %d components", len(a.CycleSacrifices), a.CyclicComponents)
	}
	var minSum, sacBytes int64
	var sacCopies int
	for i, cs := range a.CycleSacrifices {
		if cs.Vertices != 2 {
			t.Errorf("component %d: Vertices = %d, want 2", i, cs.Vertices)
		}
		if cs.SacrificedCopies != 1 || cs.SacrificedBytes != cs.MinBytes {
			t.Errorf("component %d: a 2-cycle must sacrifice exactly its smallest copy: %+v", i, cs)
		}
		minSum += cs.MinBytes
		sacBytes += cs.SacrificedBytes
		sacCopies += cs.SacrificedCopies
	}
	if minSum != a.MinConversionBytes {
		t.Errorf("sum of MinBytes = %d, MinConversionBytes = %d", minSum, a.MinConversionBytes)
	}
	if sacBytes != a.LocallyMinimumBytes {
		t.Errorf("sum of SacrificedBytes = %d, LocallyMinimumBytes = %d", sacBytes, a.LocallyMinimumBytes)
	}
	// 4-byte and 8-byte swaps: the census must keep them distinguishable.
	if minSum != 4+8 {
		t.Errorf("per-cycle minimums sum to %d, want 12", minSum)
	}

	// The census ties out on an entangled tree too: one component holding
	// every vertex, sacrificing every leaf.
	tree := AdversarialDelta(3, 16)
	ta, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.CycleSacrifices) != 1 {
		t.Fatalf("tree census has %d entries, want 1", len(ta.CycleSacrifices))
	}
	if got := ta.CycleSacrifices[0].SacrificedBytes; got != ta.LocallyMinimumBytes {
		t.Fatalf("tree SacrificedBytes = %d, LocallyMinimumBytes = %d", got, ta.LocallyMinimumBytes)
	}
	if got := ta.CycleSacrifices[0].SacrificedCopies; got != 1<<3 {
		t.Fatalf("tree SacrificedCopies = %d, want %d leaves", got, 1<<3)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	bad := &delta.Delta{RefLen: 4, VersionLen: 4,
		Commands: []delta.Command{delta.NewCopy(0, 2, 4)}}
	if _, err := Analyze(bad); err == nil {
		t.Fatal("invalid delta accepted")
	}
}

func TestQuickAnalyzeConsistentWithConvert(t *testing.T) {
	// Analysis invariants versus an actual conversion:
	// converted bytes >= MinConversionBytes, and LocallyMinimumBytes
	// matches what the LM conversion does.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make([]byte, rng.Intn(4<<10)+64)
		rng.Read(ref)
		version := mutateBytes(rng, ref)
		d, err := diff.NewLinear(diff.WithSeedLen(8)).Diff(ref, version)
		if err != nil {
			return false
		}
		a, err := Analyze(d)
		if err != nil {
			return false
		}
		_, st, err := Convert(d, ref)
		if err != nil {
			return false
		}
		if st.ConvertedBytes != a.LocallyMinimumBytes {
			return false
		}
		if st.ConvertedBytes < a.MinConversionBytes {
			return false
		}
		if a.ReorderSufficient != (st.ConvertedCopies == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
