// Package corpus generates synthetic version pairs that stand in for the
// paper's experimental corpus of Internet-distributed software (multiple
// versions of the GNU tools and BSD distributions, both source and binary).
// That 1998 snapshot is not reproducible, so this package fabricates files
// with the same structural properties the experiments depend on:
//
//   - Text: token- and line-structured content resembling source code.
//   - Binary: sectioned executables — instruction-like streams with
//     recurring motifs, repetitive data tables, and a string table.
//   - Firmware: binary content interleaved with large erased-flash
//     (0xFF) padding regions.
//   - Database: fixed-size keyed records with record-aligned edits, in
//     the spirit of differential files for databases (related work [13]).
//
// Version files are derived from references through an edit model with
// point edits, insertions, deletions, block moves, block duplications and —
// for binary profiles — a pointer rebase that perturbs many aligned words
// at once, the way relinking scatters small changes through an executable.
// Block moves matter most here: they are what produce write-before-read
// conflicts and cycles for the in-place converter.
//
// All output is deterministic in the seed.
package corpus

import (
	"fmt"
	"math/rand"
)

// Profile selects the content model of a generated file.
type Profile int

const (
	// Text resembles source code or configuration text.
	Text Profile = iota + 1
	// Binary resembles a compiled executable.
	Binary
	// Firmware resembles a device image with erased-flash padding.
	Firmware
	// Database resembles a record-structured data file whose edits are
	// record-aligned, in the spirit of differential files for databases
	// (the paper's related work [13]).
	Database
)

// String returns the profile name.
func (p Profile) String() string {
	switch p {
	case Text:
		return "text"
	case Binary:
		return "binary"
	case Firmware:
		return "firmware"
	case Database:
		return "database"
	default:
		return fmt.Sprintf("profile(%d)", int(p))
	}
}

// PairSpec describes one version pair to generate.
type PairSpec struct {
	// Profile selects the content model.
	Profile Profile
	// Size is the approximate reference file size in bytes.
	Size int
	// ChangeRate is the approximate fraction of the file affected by the
	// version edits, in [0, 1].
	ChangeRate float64
	// Seed makes the pair deterministic.
	Seed int64
}

// Pair is a generated (reference, version) file pair.
type Pair struct {
	Name    string
	Spec    PairSpec
	Ref     []byte
	Version []byte
}

// Generate produces the pair described by spec.
func Generate(spec PairSpec) Pair {
	rng := rand.New(rand.NewSource(spec.Seed))
	var ref []byte
	switch spec.Profile {
	case Binary:
		ref = genBinary(rng, spec.Size)
	case Firmware:
		ref = genFirmware(rng, spec.Size)
	case Database:
		ref = genDatabase(rng, spec.Size)
	default:
		ref = genText(rng, spec.Size)
	}
	version := mutate(rng, ref, spec)
	return Pair{
		Name:    fmt.Sprintf("%s-%dKiB-%.0f%%-s%d", spec.Profile, spec.Size/1024, spec.ChangeRate*100, spec.Seed),
		Spec:    spec,
		Ref:     ref,
		Version: version,
	}
}

// words is a small dictionary for text-like content.
var words = []string{
	"func", "return", "if", "else", "for", "range", "var", "const", "type",
	"struct", "interface", "error", "string", "int64", "byte", "buffer",
	"offset", "length", "copy", "append", "delta", "version", "reference",
	"packet", "device", "update", "flash", "network", "client", "server",
	"config", "install", "module", "kernel", "driver", "header", "table",
}

// genText produces line-structured token text of roughly size bytes.
func genText(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+64)
	indent := 0
	for len(out) < size {
		for k := 0; k < indent; k++ {
			out = append(out, '\t')
		}
		line := rng.Intn(8) + 2
		for k := 0; k < line; k++ {
			if k > 0 {
				out = append(out, ' ')
			}
			out = append(out, words[rng.Intn(len(words))]...)
		}
		switch rng.Intn(6) {
		case 0:
			out = append(out, " {"...)
			indent++
		case 1:
			if indent > 0 {
				indent--
			}
			out = append(out, '}')
		}
		out = append(out, '\n')
	}
	return out[:size]
}

// genBinary produces a sectioned executable-like image.
func genBinary(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+256)
	// "Code" section: recurring 4-byte opcode motifs with varying operands.
	motifs := make([][]byte, 16)
	for k := range motifs {
		m := make([]byte, 4)
		rng.Read(m)
		motifs[k] = m
	}
	codeLen := size * 6 / 10
	for len(out) < codeLen {
		out = append(out, motifs[rng.Intn(len(motifs))]...)
		// Operand word, frequently a small value or an address-like value.
		var op [4]byte
		switch rng.Intn(3) {
		case 0:
			op[3] = byte(rng.Intn(64))
		case 1:
			addr := 0x400000 + rng.Intn(size)
			op[0], op[1], op[2], op[3] = byte(addr>>24), byte(addr>>16), byte(addr>>8), byte(addr)
		default:
			rng.Read(op[:])
		}
		out = append(out, op[:]...)
	}
	// Data tables: runs of repetitive records.
	dataLen := size * 25 / 100
	record := make([]byte, 16)
	rng.Read(record)
	for len(out) < codeLen+dataLen {
		out = append(out, record...)
		record[rng.Intn(len(record))]++
	}
	// String table.
	for len(out) < size {
		out = append(out, words[rng.Intn(len(words))]...)
		out = append(out, 0)
	}
	return out[:size]
}

// genFirmware produces binary content with erased-flash padding blocks.
func genFirmware(rng *rand.Rand, size int) []byte {
	out := genBinary(rng, size)
	// Erase random aligned 1KiB blocks to 0xFF, about a quarter of them.
	const block = 1024
	for at := 0; at+block <= len(out); at += block {
		if rng.Intn(4) == 0 {
			for k := at; k < at+block; k++ {
				out[k] = 0xFF
			}
		}
	}
	return out
}

// dbRecordSize is the fixed record length of the database profile.
const dbRecordSize = 128

// genDatabase produces fixed-size records: an ascending 8-byte key, a few
// typed fields, and text payload — repetitive structure with unique keys.
func genDatabase(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+dbRecordSize)
	key := rng.Int63n(1 << 30)
	for len(out) < size {
		rec := make([]byte, dbRecordSize)
		for k := 0; k < 8; k++ {
			rec[k] = byte(key >> (56 - 8*k))
		}
		key += rng.Int63n(16) + 1
		// Typed fields: flags, a timestamp-like counter, small ints.
		rec[8] = byte(rng.Intn(4))
		for k := 9; k < 24; k++ {
			rec[k] = byte(rng.Intn(100))
		}
		// Text payload from the dictionary, null-padded.
		at := 24
		for at < dbRecordSize-12 {
			w := words[rng.Intn(len(words))]
			copy(rec[at:], w)
			at += len(w) + 1
		}
		out = append(out, rec...)
	}
	return out[:size/dbRecordSize*dbRecordSize]
}

// mutateDatabase applies record-aligned edits: replace, insert and delete
// whole records.
func mutateDatabase(rng *rand.Rand, ref []byte, spec PairSpec) []byte {
	out := append([]byte(nil), ref...)
	records := len(out) / dbRecordSize
	budget := int(float64(records) * spec.ChangeRate)
	for k := 0; k < budget && len(out) >= dbRecordSize; k++ {
		r := rng.Intn(len(out) / dbRecordSize)
		at := r * dbRecordSize
		switch rng.Intn(3) {
		case 0: // update fields in place, key preserved
			for f := 0; f < 8; f++ {
				out[at+9+rng.Intn(dbRecordSize-9-1)] = byte(rng.Intn(256))
			}
		case 1: // insert a fresh record
			rec := genDatabase(rng, dbRecordSize)
			out = append(out[:at], append(rec, out[at:]...)...)
		default: // delete the record
			out = append(out[:at], out[at+dbRecordSize:]...)
		}
	}
	return out
}

// mutate derives the version from ref per the spec's change rate.
func mutate(rng *rand.Rand, ref []byte, spec PairSpec) []byte {
	if spec.Profile == Database {
		return mutateDatabase(rng, ref, spec)
	}
	out := append([]byte(nil), ref...)
	budget := int(float64(len(ref)) * spec.ChangeRate)
	if budget <= 0 {
		return out
	}
	for budget > 0 && len(out) > 16 {
		n := rng.Intn(budget/4+16) + 1
		if n > budget {
			n = budget
		}
		switch op := rng.Intn(10); {
		case op < 3: // point/region edits
			at := rng.Intn(len(out))
			end := at + n
			if end > len(out) {
				end = len(out)
			}
			fill(rng, out[at:end], spec.Profile)
		case op < 5: // insertion
			at := rng.Intn(len(out))
			ins := make([]byte, n)
			fill(rng, ins, spec.Profile)
			out = append(out[:at], append(ins, out[at:]...)...)
		case op < 7: // deletion
			at := rng.Intn(len(out))
			end := at + n
			if end > len(out) {
				end = len(out)
			}
			out = append(out[:at], out[end:]...)
		case op < 9: // block move (the WR-conflict generator)
			if len(out) < 2*n+2 {
				continue
			}
			src := rng.Intn(len(out) - n)
			blk := append([]byte(nil), out[src:src+n]...)
			out = append(out[:src], out[src+n:]...)
			dst := rng.Intn(len(out))
			out = append(out[:dst], append(blk, out[dst:]...)...)
		default: // block duplication
			if len(out) < n+1 {
				continue
			}
			src := rng.Intn(len(out) - n)
			blk := append([]byte(nil), out[src:src+n]...)
			dst := rng.Intn(len(out))
			out = append(out[:dst], append(blk, out[dst:]...)...)
		}
		budget -= n
	}
	if spec.Profile == Binary || spec.Profile == Firmware {
		rebasePointers(rng, out)
	}
	return out
}

// fill writes profile-appropriate content.
func fill(rng *rand.Rand, b []byte, p Profile) {
	switch p {
	case Text:
		for k := range b {
			w := words[rng.Intn(len(words))]
			b[k] = w[rng.Intn(len(w))]
			if rng.Intn(8) == 0 {
				b[k] = ' '
			}
		}
	default:
		rng.Read(b)
	}
}

// rebasePointers adds a constant to a sample of aligned 32-bit words whose
// value looks like an address, mimicking the scattered small differences a
// relink produces.
func rebasePointers(rng *rand.Rand, b []byte) {
	if len(b) < 8 {
		return
	}
	shift := uint32(rng.Intn(0x1000) + 4)
	for at := 0; at+4 <= len(b); at += 4 * (rng.Intn(64) + 1) {
		v := uint32(b[at])<<24 | uint32(b[at+1])<<16 | uint32(b[at+2])<<8 | uint32(b[at+3])
		if v>>20 == 0x004 { // looks like our 0x400000-based addresses
			v += shift
			b[at], b[at+1], b[at+2], b[at+3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		}
	}
}

// StandardCorpus returns the suite of version pairs used by the Table 1 and
// timing experiments: every profile crossed with several sizes and change
// rates. The seed perturbs content, not the grid.
func StandardCorpus(seed int64) []Pair {
	profiles := []Profile{Text, Binary, Firmware, Database}
	sizes := []int{16 << 10, 64 << 10, 256 << 10}
	rates := []float64{0.01, 0.05, 0.15, 0.30}
	pairs := make([]Pair, 0, len(profiles)*len(sizes)*len(rates))
	k := int64(0)
	for _, p := range profiles {
		for _, s := range sizes {
			for _, r := range rates {
				pairs = append(pairs, Generate(PairSpec{
					Profile:    p,
					Size:       s,
					ChangeRate: r,
					Seed:       seed + k,
				}))
				k++
			}
		}
	}
	return pairs
}

// SmallCorpus is a reduced suite for unit tests and quick benchmarks.
func SmallCorpus(seed int64) []Pair {
	return []Pair{
		Generate(PairSpec{Profile: Text, Size: 16 << 10, ChangeRate: 0.05, Seed: seed}),
		Generate(PairSpec{Profile: Binary, Size: 16 << 10, ChangeRate: 0.05, Seed: seed + 1}),
		Generate(PairSpec{Profile: Firmware, Size: 16 << 10, ChangeRate: 0.05, Seed: seed + 2}),
	}
}
