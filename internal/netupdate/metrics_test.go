package netupdate

import (
	"context"
	"net"
	"testing"

	"ipdelta/internal/corpus"
	"ipdelta/internal/obs"
)

// TestServerMetricsTrackSessions runs one delta session and one up-to-date
// session against an observed server and checks the registry saw both.
func TestServerMetricsTrackSessions(t *testing.T) {
	history := makeHistory(3, 16<<10, 41)
	reg := obs.NewRegistry()
	s, err := NewServer(history, WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}

	dev := deviceFor(t, history[0], 64<<10)
	if _, err := runSession(t, s, dev); err != nil {
		t.Fatal(err)
	}
	current := deviceFor(t, history[2], 64<<10)
	if _, err := runSession(t, s, current); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	checks := map[string]int64{
		"ipdelta_server_sessions_total":       2,
		"ipdelta_server_delta_sessions_total": 1,
		"ipdelta_server_up_to_date_total":     1,
	}
	for name, want := range checks {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Counter("ipdelta_server_bytes_served_total"); got != s.ServedBytes() || got == 0 {
		t.Errorf("bytes_served counter = %d, server reports %d", got, s.ServedBytes())
	}
	if got := snap.Gauges["ipdelta_server_cached_deltas"]; got < 1 {
		t.Errorf("cached_deltas gauge = %d, want >= 1", got)
	}
	if h := snap.Histograms["ipdelta_server_session_nanos"]; h.Count != 2 {
		t.Errorf("session_nanos count = %d, want 2", h.Count)
	}
	for _, name := range []string{"ipdelta_server_msg_read_nanos", "ipdelta_server_msg_write_nanos"} {
		if h := snap.Histograms[name]; h.Count == 0 {
			t.Errorf("%s recorded no observations", name)
		}
	}
	if got := snap.Counter("ipdelta_server_session_failures_total"); got != 0 {
		t.Errorf("session_failures = %d on a clean run", got)
	}
}

// TestServerMetricsCountBudgetRejects drives a client past the failure
// budget and checks the reject counter moves.
func TestServerMetricsCountBudgetRejects(t *testing.T) {
	history := makeHistory(2, 8<<10, 42)
	reg := obs.NewRegistry()
	s, err := NewServer(history, WithObserver(reg), WithFailureBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	// A device on a version the server has never seen fails its session
	// (runSession waits for the handler, so the counters are settled);
	// net.Pipe peers share one budget key, so the next connection from the
	// "same host" is turned away before the protocol starts.
	stranger := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 8 << 10, ChangeRate: 0, Seed: 503})
	for k := 0; k < 2; k++ {
		dev := deviceFor(t, stranger.Ref, 32<<10)
		if _, err := runSession(t, s, dev); err == nil {
			t.Fatal("stranger session succeeded")
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter("ipdelta_server_session_failures_total"); got == 0 {
		t.Error("session_failures_total did not move")
	}
	if got := snap.Counter("ipdelta_server_budget_rejects_total"); got == 0 {
		t.Error("budget_rejects_total did not move")
	}
	if got := snap.Counter("ipdelta_server_unknown_version_total"); got == 0 {
		t.Error("unknown_version_total did not move")
	}
}

// TestClientMetricsRetryAndDegrade reuses the consecutive-delta-failure
// scenario with an observer attached: two doomed delta attempts, then a
// clean full-image transfer. The registry must show the retries and
// exactly one degradation.
func TestClientMetricsRetryAndDegrade(t *testing.T) {
	history := makeHistory(2, 32<<10, 43)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceFor(t, history[0], 64<<10)
	dial := pipeDial(s, func(attempt int, c net.Conn) net.Conn {
		if attempt <= 2 {
			return NewFlakyConn(c, FaultProfile{Seed: 9, DropAfterBytes: 512})
		}
		return c
	})
	reg := obs.NewRegistry()
	ru := NewRunner(RunnerConfig{
		MaxAttempts: 6, FullFallbackAfter: 2, Sleep: noBackoff, Observer: reg,
	})
	rep, err := ru.Run(context.Background(), dial, dev)
	if err != nil {
		t.Fatalf("run: %v (log: %v)", err, rep.FailureLog)
	}
	if !rep.FellBack {
		t.Fatalf("report = %+v, want degradation", rep)
	}

	snap := reg.Snapshot()
	checks := map[string]int64{
		"ipdelta_client_runs_total":           1,
		"ipdelta_client_run_failures_total":   0,
		"ipdelta_client_attempts_total":       int64(rep.Attempts),
		"ipdelta_client_retries_total":        int64(rep.Attempts - 1),
		"ipdelta_client_degradations_total":   1,
		"ipdelta_client_full_transfers_total": 1,
		"ipdelta_client_up_to_date_total":     0,
	}
	for name, want := range checks {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Counter("ipdelta_client_bytes_received_total"); got != rep.Result.DeltaBytes || got == 0 {
		t.Errorf("bytes_received = %d, report says %d", got, rep.Result.DeltaBytes)
	}
	if h := snap.Histograms["ipdelta_client_attempt_nanos"]; h.Count != int64(rep.Attempts) {
		t.Errorf("attempt_nanos count = %d, want %d", h.Count, rep.Attempts)
	}
}
