package diff

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSuffixByName(t *testing.T) {
	a, err := ByName("suffix")
	if err != nil || a.Name() != "suffix" {
		t.Fatalf("ByName: %v, %v", a, err)
	}
}

func TestSuffixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ref := make([]byte, 32<<10)
	rng.Read(ref)
	version := mutate(rng, ref, 12)
	roundTrip(t, NewSuffix(), ref, version)
}

func TestSuffixIdenticalFiles(t *testing.T) {
	data := make([]byte, 16<<10)
	rand.New(rand.NewSource(22)).Read(data)
	d := roundTrip(t, NewSuffix(), data, data)
	if d.AddedBytes() != 0 {
		t.Fatalf("identical files added %d bytes", d.AddedBytes())
	}
	if d.NumCopies() != 1 {
		t.Fatalf("identical files encoded as %d copies, want 1", d.NumCopies())
	}
}

func TestSuffixCompressionAtLeastLinear(t *testing.T) {
	// The suffix differencer finds true longest matches, so it never adds
	// more literal bytes than the seeded linear algorithm on inputs where
	// both can work. Allow a tiny slack for boundary effects.
	rng := rand.New(rand.NewSource(23))
	ref := make([]byte, 32<<10)
	rng.Read(ref)
	version := mutate(rng, ref, 20)
	ds := roundTrip(t, NewSuffix(), ref, version)
	dl := roundTrip(t, NewLinear(), ref, version)
	if ds.AddedBytes() > dl.AddedBytes()+int64(len(version)/100) {
		t.Fatalf("suffix added %d, linear %d", ds.AddedBytes(), dl.AddedBytes())
	}
}

func TestSuffixFindsShortUnalignedMatches(t *testing.T) {
	// A match linear's 16-byte seed misses: 9 bytes long.
	ref := append(bytes.Repeat([]byte{0xEE}, 64), []byte("landmark!")...)
	ref = append(ref, bytes.Repeat([]byte{0xDD}, 64)...)
	version := append(bytes.Repeat([]byte{0x11}, 32), []byte("landmark!")...)
	version = append(version, bytes.Repeat([]byte{0x22}, 32)...)
	d := roundTrip(t, NewSuffix(), ref, version)
	if d.NumCopies() == 0 {
		t.Fatal("suffix missed the 9-byte match")
	}
}

func TestSuffixOptions(t *testing.T) {
	s := NewSuffix(WithMinMatch(2))
	if s.minMatch != 4 {
		t.Fatalf("min match clamped to %d, want 4", s.minMatch)
	}
	s = NewSuffix(WithMinMatch(32))
	if s.minMatch != 32 {
		t.Fatalf("min match = %d", s.minMatch)
	}
	rng := rand.New(rand.NewSource(24))
	ref := make([]byte, 4096)
	rng.Read(ref)
	roundTrip(t, s, ref, mutate(rng, ref, 4))
}

func TestSuffixEmptyAndTiny(t *testing.T) {
	roundTrip(t, NewSuffix(), nil, nil)
	roundTrip(t, NewSuffix(), []byte("abc"), []byte("xyz"))
	roundTrip(t, NewSuffix(), make([]byte, 4096), nil)
}

func TestSuffixQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make([]byte, rng.Intn(8<<10)+16)
		if seed%2 == 0 {
			chunk := make([]byte, 50)
			rng.Read(chunk)
			for at := 0; at < len(ref); at += 50 {
				copy(ref[at:], chunk)
			}
		} else {
			rng.Read(ref)
		}
		version := mutate(rng, ref, rng.Intn(8))
		d, err := NewSuffix().Diff(ref, version)
		if err != nil {
			return false
		}
		if d.Validate() != nil {
			return false
		}
		got, err := d.Apply(ref)
		if err != nil {
			return false
		}
		return bytes.Equal(got, version)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
