package inplace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ipdelta/internal/delta"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
)

// convertAndCheck converts d and verifies the full contract: the output is
// a valid delta, satisfies Equation 2, and materializes the same version
// both with scratch space and in place.
func convertAndCheck(t *testing.T, d *delta.Delta, ref []byte, opts ...Option) (*delta.Delta, *Stats) {
	t.Helper()
	want, err := d.Apply(ref)
	if err != nil {
		t.Fatalf("input apply: %v", err)
	}
	out, stats, err := Convert(d, ref, opts...)
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("converted delta invalid: %v", err)
	}
	if err := out.CheckInPlace(); err != nil {
		t.Fatalf("converted delta violates Equation 2: %v", err)
	}
	got, err := out.Apply(ref)
	if err != nil {
		t.Fatalf("converted apply: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("converted delta materializes a different version")
	}
	buf := make([]byte, out.InPlaceBufLen())
	copy(buf, ref)
	if err := out.ApplyInPlace(buf); err != nil {
		t.Fatalf("in-place apply: %v", err)
	}
	if !bytes.Equal(buf[:out.VersionLen], want) {
		t.Fatal("in-place application materializes a different version")
	}
	return out, stats
}

func TestConvertSwap(t *testing.T) {
	// Swapping two halves has a 2-cycle; one copy must become an add.
	ref := []byte("AAAABBBB")
	d := &delta.Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []delta.Command{
			delta.NewCopy(4, 0, 4),
			delta.NewCopy(0, 4, 4),
		},
	}
	for _, p := range []graph.Policy{graph.ConstantTime{}, graph.LocallyMinimum{}} {
		out, stats := convertAndCheck(t, d, ref, WithPolicy(p))
		if stats.CyclesBroken != 1 || stats.ConvertedCopies != 1 {
			t.Fatalf("%s: stats = %+v", p.Name(), stats)
		}
		if stats.ConvertedBytes != 4 {
			t.Fatalf("%s: converted %d bytes", p.Name(), stats.ConvertedBytes)
		}
		if out.NumCopies() != 1 || out.NumAdds() != 1 {
			t.Fatalf("%s: output %v", p.Name(), out.Commands)
		}
	}
}

func TestConvertConflictFreePermutation(t *testing.T) {
	// A shifted file: copy(4,0,4) then copy(0,4,4) conflicts as written in
	// write order, but reversing avoids any conversion... here the right
	// rotation by 4 of an 8-byte file: version = ref[4:8] + ref[0:4].
	// The digraph has a cycle only if both orders conflict; rotating reads
	// means copy A reads what B writes and vice versa — a genuine cycle.
	// Contrast with a pure shift, which needs only reordering:
	ref := []byte("abcdefgh")
	shift := &delta.Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []delta.Command{
			delta.NewAdd(6, []byte("XY")), // tail gets new data
			delta.NewCopy(2, 0, 6),        // shift left by two
		},
	}
	out, stats := convertAndCheck(t, shift, ref)
	if stats.ConvertedCopies != 0 || stats.CyclesBroken != 0 {
		t.Fatalf("pure shift needed conversions: %+v", stats)
	}
	// Adds must come last in the output.
	if out.Commands[len(out.Commands)-1].Op != delta.OpAdd {
		t.Fatal("adds not at the end")
	}
}

func TestConvertPlacesAddsLast(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := make([]byte, 4096)
	rng.Read(ref)
	version := append(append([]byte(nil), ref[2048:]...), ref[:2048]...)
	d, err := diff.NewLinear().Diff(ref, version)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := convertAndCheck(t, d, ref)
	seenAdd := false
	for _, c := range out.Commands {
		if c.Op == delta.OpAdd {
			seenAdd = true
		} else if seenAdd {
			t.Fatal("copy command after an add")
		}
	}
}

func TestConvertRejectsInvalidInput(t *testing.T) {
	bad := &delta.Delta{RefLen: 4, VersionLen: 4,
		Commands: []delta.Command{delta.NewCopy(0, 2, 4)}}
	if _, _, err := Convert(bad, make([]byte, 4)); err == nil {
		t.Fatal("accepted invalid delta")
	}
	good := &delta.Delta{RefLen: 4, VersionLen: 4,
		Commands: []delta.Command{delta.NewCopy(0, 0, 4)}}
	if _, _, err := Convert(good, make([]byte, 3)); err == nil {
		t.Fatal("accepted wrong reference length")
	}
}

func TestConvertedAddCarriesReferenceData(t *testing.T) {
	ref := []byte("AAAABBBB")
	d := &delta.Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []delta.Command{
			delta.NewCopy(4, 0, 4),
			delta.NewCopy(0, 4, 4),
		},
	}
	out, _, err := Convert(d, ref)
	if err != nil {
		t.Fatal(err)
	}
	var add *delta.Command
	for k := range out.Commands {
		if out.Commands[k].Op == delta.OpAdd {
			add = &out.Commands[k]
		}
	}
	if add == nil {
		t.Fatal("no converted add")
	}
	// Whichever copy was converted, its data must equal the reference
	// bytes it would have copied.
	want := "BBBB"
	if add.To == 4 {
		want = "AAAA"
	}
	if string(add.Data) != want {
		t.Fatalf("converted add data %q at offset %d", add.Data, add.To)
	}
}

func TestQuadraticDelta(t *testing.T) {
	for _, b := range []int{2, 8, 32} {
		d := QuadraticDelta(b)
		if err := d.Validate(); err != nil {
			t.Fatalf("b=%d: invalid: %v", b, err)
		}
		if got := len(d.Commands); got != 2*b-1 {
			t.Fatalf("b=%d: %d commands, want %d", b, got, 2*b-1)
		}
		ref := make([]byte, d.RefLen)
		for k := range ref {
			ref[k] = byte(k)
		}
		out, stats := convertAndCheck(t, d, ref)
		if stats.Edges != (b-1)*b {
			t.Fatalf("b=%d: %d edges, want %d", b, stats.Edges, (b-1)*b)
		}
		if int64(stats.Edges) > d.VersionLen {
			t.Fatalf("b=%d: edges %d exceed Lemma 1 bound %d", b, stats.Edges, d.VersionLen)
		}
		if stats.ConvertedCopies != 0 {
			t.Fatalf("b=%d: acyclic digraph required %d conversions", b, stats.ConvertedCopies)
		}
		if out.NumCopies() != 2*b-1 {
			t.Fatalf("b=%d: copies lost", b)
		}
	}
	if QuadraticDelta(0).VersionLen != 4 {
		t.Fatal("b clamp failed")
	}
}

func TestAdversarialDeltaShape(t *testing.T) {
	depth, leafLen := 3, 16
	d := AdversarialDelta(depth, leafLen)
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	n := (1 << (depth + 1)) - 1
	if d.NumCopies() != n {
		t.Fatalf("%d copies, want %d", d.NumCopies(), n)
	}
	// Clamping.
	d2 := AdversarialDelta(0, 1)
	if d2.NumCopies() != 3 {
		t.Fatalf("clamped tree has %d copies", d2.NumCopies())
	}
}

func TestAdversarialDeltaPolicyGap(t *testing.T) {
	depth, leafLen := 4, 32
	leaves := 1 << depth
	d := AdversarialDelta(depth, leafLen)
	ref := make([]byte, d.RefLen)
	rng := rand.New(rand.NewSource(2))
	rng.Read(ref)

	_, lmStats := convertAndCheck(t, d, ref, WithPolicy(graph.LocallyMinimum{}))
	if lmStats.ConvertedCopies != leaves {
		t.Fatalf("locally-minimum converted %d copies, want %d leaves", lmStats.ConvertedCopies, leaves)
	}
	if lmStats.ConvertedBytes != int64(leaves*leafLen) {
		t.Fatalf("locally-minimum converted %d bytes", lmStats.ConvertedBytes)
	}
	// The globally optimal single-vertex solution (the root) costs only
	// 2·leafLen bytes; locally-minimum is leaves/2 times worse here, and
	// the ratio grows with depth — the paper's Figure 2 claim.
	if lmStats.ConvertedBytes <= int64(2*leafLen) {
		t.Fatal("adversarial instance failed to penalize locally-minimum")
	}
}

func TestConvertIdempotent(t *testing.T) {
	// Converting an already in-place delta must not convert any copies.
	rng := rand.New(rand.NewSource(3))
	ref := make([]byte, 16<<10)
	rng.Read(ref)
	version := append([]byte(nil), ref...)
	copy(version[4096:8192], ref[0:4096]) // duplicate a block
	d, err := diff.NewLinear().Diff(ref, version)
	if err != nil {
		t.Fatal(err)
	}
	once, stats1 := convertAndCheck(t, d, ref)
	twice, stats2 := convertAndCheck(t, once, ref)
	if stats2.ConvertedCopies != 0 || stats2.CyclesBroken != 0 {
		t.Fatalf("second conversion did work: %+v", stats2)
	}
	if len(twice.Commands) != len(once.Commands) {
		t.Fatalf("command count changed: %d -> %d", len(once.Commands), len(twice.Commands))
	}
	_ = stats1
}

func TestEncodingLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := make([]byte, 32<<10)
	rng.Read(ref)
	version := append([]byte(nil), ref...)
	for k := 0; k < 20; k++ {
		version[rng.Intn(len(version))] ^= 0xFF
	}
	d, err := diff.NewLinear().Diff(ref, version)
	if err != nil {
		t.Fatal(err)
	}
	ordered, offsets, err := EncodingLoss(d)
	if err != nil {
		t.Fatal(err)
	}
	if ordered >= offsets {
		t.Fatalf("ordered %d >= offsets %d", ordered, offsets)
	}
}

func TestStatsEdgeBoundLemma1(t *testing.T) {
	// Property: on real diffs, CRWI edges never exceed the version length.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make([]byte, rng.Intn(8<<10)+64)
		rng.Read(ref)
		version := mutateBytes(rng, ref)
		d, err := diff.NewLinear(diff.WithSeedLen(8)).Diff(ref, version)
		if err != nil {
			return false
		}
		_, stats, err := Convert(d, ref)
		if err != nil {
			return false
		}
		return int64(stats.Edges) <= d.VersionLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// mutateBytes produces a version with block moves and edits — block moves
// are what generate WR conflicts and cycles.
func mutateBytes(rng *rand.Rand, base []byte) []byte {
	out := append([]byte(nil), base...)
	for k := 0; k < rng.Intn(6)+1; k++ {
		if len(out) < 8 {
			break
		}
		a := rng.Intn(len(out) - 4)
		b := rng.Intn(len(out) - 4)
		n := rng.Intn(len(out)/4 + 1)
		if a+n > len(out) {
			n = len(out) - a
		}
		if b+n > len(out) {
			n = len(out) - b
		}
		// Swap two (possibly overlapping) regions via a temp copy.
		tmp := append([]byte(nil), out[a:a+n]...)
		copy(out[a:a+n], out[b:b+n])
		copy(out[b:b+n], tmp)
	}
	for k := 0; k < rng.Intn(20); k++ {
		out[rng.Intn(len(out))] = byte(rng.Intn(256))
	}
	return out
}

func TestQuickConvertAlwaysInPlaceSafe(t *testing.T) {
	algs := []diff.Algorithm{diff.NewLinear(diff.WithSeedLen(8)), diff.NewGreedy()}
	policies := []graph.Policy{graph.ConstantTime{}, graph.LocallyMinimum{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make([]byte, rng.Intn(4<<10)+32)
		// Half the seeds use repetitive content to provoke many matches.
		if seed%2 == 0 {
			chunk := make([]byte, 96)
			rng.Read(chunk)
			for at := 0; at < len(ref); at += 96 {
				copy(ref[at:], chunk)
			}
		} else {
			rng.Read(ref)
		}
		version := mutateBytes(rng, ref)
		a := algs[int(uint64(seed)%2)]
		p := policies[int(uint64(seed)/2%2)]
		d, err := a.Diff(ref, version)
		if err != nil {
			return false
		}
		out, _, err := Convert(d, ref, WithPolicy(p))
		if err != nil {
			return false
		}
		if out.Validate() != nil || out.CheckInPlace() != nil {
			return false
		}
		buf := make([]byte, out.InPlaceBufLen())
		copy(buf, ref)
		if out.ApplyInPlace(buf) != nil {
			return false
		}
		return bytes.Equal(buf[:out.VersionLen], version)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestConvertEmptyAndTrivial(t *testing.T) {
	empty := &delta.Delta{RefLen: 0, VersionLen: 0}
	out, stats := convertAndCheck(t, empty, nil)
	if len(out.Commands) != 0 || stats.Copies != 0 {
		t.Fatal("empty delta mishandled")
	}

	oneAdd := &delta.Delta{RefLen: 0, VersionLen: 3,
		Commands: []delta.Command{delta.NewAdd(0, []byte("abc"))}}
	out, _ = convertAndCheck(t, oneAdd, nil)
	if len(out.Commands) != 1 {
		t.Fatal("single add mishandled")
	}

	oneCopy := &delta.Delta{RefLen: 3, VersionLen: 3,
		Commands: []delta.Command{delta.NewCopy(0, 0, 3)}}
	out, _ = convertAndCheck(t, oneCopy, []byte("xyz"))
	if out.NumCopies() != 1 {
		t.Fatal("identity copy mishandled")
	}
}

func TestConvertDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ref := make([]byte, 32<<10)
	rng.Read(ref)
	version := mutateBytes(rng, ref)
	d, err := diff.NewLinear().Diff(ref, version)
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := Convert(d, ref)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		again, _, err := Convert(d, ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Commands) != len(first.Commands) {
			t.Fatal("nondeterministic command count")
		}
		for i := range first.Commands {
			if !first.Commands[i].Equal(again.Commands[i]) {
				t.Fatalf("nondeterministic command %d", i)
			}
		}
	}
}
