// Package netupdate implements the software-update protocol the paper
// motivates: a server that holds the release history of an image and
// streams in-place reconstructible deltas to limited network devices over
// low-bandwidth channels.
//
// Protocol (all messages are a one-byte type, a uvarint payload length and
// the payload):
//
//	device → server  HELLO   {updating, imageCRC, imageLen, capacity}
//	server → device  UPTODATE                    — image is current
//	                 DELTA   {delta file bytes}  — apply this in place
//	                 ERROR   {message}           — e.g. unknown version
//	device → server  STATUS  {ok, imageCRC}
//
// A device that lost power mid-update reconnects with updating=true and the
// CRC of the version it was upgrading from; the server regenerates the same
// delta deterministically and the device resumes where it stopped.
package netupdate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// message types.
const (
	msgHello    = 0x01
	msgUpToDate = 0x02
	msgDelta    = 0x03
	msgError    = 0x04
	msgStatus   = 0x05
)

// maxMessage bounds a single protocol message (delta payloads included).
const maxMessage = 1 << 30

// Protocol errors.
var (
	ErrUnknownVersion = errors.New("netupdate: device runs a version the server does not know")
	ErrProtocol       = errors.New("netupdate: protocol violation")
)

// hello is the device's opening message.
type hello struct {
	Updating bool
	ImageCRC uint32
	ImageLen int64
	Capacity int64
}

// status is the device's closing message.
type status struct {
	OK       bool
	ImageCRC uint32
}

// writeMsg frames one message.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsgHeader reads a message type and payload length.
func readMsgHeader(r io.ByteReader) (byte, int64, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return 0, 0, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad length: %v", ErrProtocol, err)
	}
	if n > maxMessage {
		return 0, 0, fmt.Errorf("%w: message of %d bytes", ErrProtocol, n)
	}
	return typ, int64(n), nil
}

// byteAndStreamReader is the reader capability the protocol needs.
type byteAndStreamReader interface {
	io.Reader
	io.ByteReader
}

// readMsg reads a full message of an expected type.
func readMsg(r byteAndStreamReader, wantType byte) ([]byte, error) {
	typ, n, err := readMsgHeader(r)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrProtocol, err)
	}
	if typ == msgError {
		return nil, fmt.Errorf("netupdate: server error: %s", payload)
	}
	if typ != wantType {
		return nil, fmt.Errorf("%w: got message %#x, want %#x", ErrProtocol, typ, wantType)
	}
	return payload, nil
}

func encodeHello(h hello) []byte {
	buf := make([]byte, 0, 32)
	b := byte(0)
	if h.Updating {
		b = 1
	}
	buf = append(buf, b)
	buf = binary.BigEndian.AppendUint32(buf, h.ImageCRC)
	buf = binary.AppendUvarint(buf, uint64(h.ImageLen))
	buf = binary.AppendUvarint(buf, uint64(h.Capacity))
	return buf
}

func decodeHello(p []byte) (hello, error) {
	var h hello
	if len(p) < 5 {
		return h, fmt.Errorf("%w: short hello", ErrProtocol)
	}
	h.Updating = p[0] == 1
	h.ImageCRC = binary.BigEndian.Uint32(p[1:5])
	rest := p[5:]
	v, n := binary.Uvarint(rest)
	if n <= 0 {
		return h, fmt.Errorf("%w: hello image length", ErrProtocol)
	}
	h.ImageLen = int64(v)
	rest = rest[n:]
	v, n = binary.Uvarint(rest)
	if n <= 0 {
		return h, fmt.Errorf("%w: hello capacity", ErrProtocol)
	}
	h.Capacity = int64(v)
	return h, nil
}

func encodeStatus(s status) []byte {
	buf := make([]byte, 0, 8)
	b := byte(0)
	if s.OK {
		b = 1
	}
	buf = append(buf, b)
	buf = binary.BigEndian.AppendUint32(buf, s.ImageCRC)
	return buf
}

func decodeStatus(p []byte) (status, error) {
	if len(p) != 5 {
		return status{}, fmt.Errorf("%w: short status", ErrProtocol)
	}
	return status{OK: p[0] == 1, ImageCRC: binary.BigEndian.Uint32(p[1:5])}, nil
}
