package netupdate

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"testing"
)

// frame builds a wire message for tests.
func frame(typ byte, payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeMsg(&buf, typ, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// hostileFrame claims a payload of n bytes but carries only body.
func hostileFrame(typ byte, n uint64, body []byte) []byte {
	var buf bytes.Buffer
	buf.WriteByte(typ)
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], n)
	buf.Write(tmp[:k])
	buf.Write(body)
	return buf.Bytes()
}

func TestReadMsgRejectsOversizeLengthPrefix(t *testing.T) {
	data := hostileFrame(msgDelta, uint64(maxMessage)+1, nil)
	_, err := readMsg(bufio.NewReader(bytes.NewReader(data)), msgDelta)
	if !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("error = %v, want ErrMessageTooLarge", err)
	}
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("error = %v, want it to also wrap ErrProtocol", err)
	}
}

func TestReadMsgHostileLengthPrefixDoesNotPreallocate(t *testing.T) {
	// A length prefix is a claim, not an allocation instruction: a peer
	// announcing 512 MiB but sending 4 bytes must cost us roughly one
	// chunk of memory, not 512 MiB. This test fails against the old
	// readMsg, which did make([]byte, n) straight from the wire.
	const claim = 512 << 20
	data := hostileFrame(msgDelta, claim, []byte("tiny"))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err := readMsg(bufio.NewReader(bytes.NewReader(data)), msgDelta)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated 512 MiB claim accepted")
	}
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("error = %v, want ErrProtocol", err)
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 64<<20 {
		t.Fatalf("hostile length prefix allocated %d bytes up front", alloc)
	}
}

func TestReadPayloadLargeMessageStillWorks(t *testing.T) {
	// Legitimate multi-chunk payloads cross the chunked path intact.
	payload := make([]byte, payloadChunk*2+payloadChunk/2)
	for k := range payload {
		payload[k] = byte(k * 31)
	}
	data := frame(msgDelta, payload)
	got, err := readMsg(bufio.NewReader(bytes.NewReader(data)), msgDelta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-chunk payload corrupted")
	}
}

func TestHelloFlagRoundTrip(t *testing.T) {
	for _, h := range []hello{
		{Updating: true, WantFull: true, ImageCRC: 1, ImageLen: 2, Capacity: 3},
		{WantFull: true, ImageLen: 9, Capacity: 9},
	} {
		got, err := decodeHello(encodeHello(h))
		if err != nil || got != h {
			t.Fatalf("hello round trip: %+v, %v", got, err)
		}
	}
	// Unknown flag bits are a protocol violation (likely corruption).
	bad := encodeHello(hello{ImageLen: 1, Capacity: 1})
	bad[0] |= 0x80
	if _, err := decodeHello(bad); !errors.Is(err, ErrProtocol) {
		t.Fatalf("corrupt hello flags: %v", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, ok := range []bool{true, false} {
		got, err := decodeAck(encodeAck(ok))
		if err != nil || got != ok {
			t.Fatalf("ack round trip: %v, %v", got, err)
		}
	}
	if _, err := decodeAck(nil); !errors.Is(err, ErrProtocol) {
		t.Fatal("short ack accepted")
	}
}
