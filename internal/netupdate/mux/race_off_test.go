//go:build !race

package mux

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
