package netupdate

import (
	"context"
	"log/slog"
	"time"

	"ipdelta/internal/codec"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/netupdate/mux"
	"ipdelta/internal/obs"
)

// Config collects every tunable of the update service — server, client
// runner, per-session behavior, and the v2 transport — in one place.
// Client, server, and load-generation tooling all build theirs from the
// same Option list, so a knob never has to exist in three spellings.
//
// Construct one implicitly through NewServer / NewClient / Dial / Run
// and the With* options; the zero Config means "all defaults".
type Config struct {
	// --- server-side delta production ---

	// Format is the wire format for deltas (must be in-place capable).
	Format codec.Format
	// Algorithm is the differencing algorithm.
	Algorithm diff.Algorithm
	// Policy is the cycle-breaking policy.
	Policy graph.Policy
	// ScratchBudget enables bounded-scratch deltas when positive.
	ScratchBudget int64
	// FailureBudget rejects clients after that many consecutive failed
	// sessions; zero disables.
	FailureBudget int

	// --- shared session behavior ---

	// MessageTimeout arms a fresh deadline before every session I/O.
	MessageTimeout time.Duration
	// RequestFull asks for the complete image instead of a delta.
	RequestFull bool
	// Observer receives metrics; nil disables.
	Observer *obs.Registry
	// Logger receives structured log lines; nil discards.
	Logger *slog.Logger

	// --- v2 transport (mux) limits ---

	// StreamLimit caps concurrent streams per connection (both the
	// server's advertised acceptance limit and the client's open limit).
	StreamLimit int
	// InitialWindow is the per-stream receive window in bytes.
	InitialWindow int
	// MaxFrame is the largest DATA frame payload accepted.
	MaxFrame int
	// AcceptBacklog bounds accepted-but-unclaimed streams server-side.
	AcceptBacklog int

	// --- client retry ladder ---

	// MaxAttempts bounds total session attempts (default 8).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry, doubling per
	// attempt (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 5s).
	MaxBackoff time.Duration
	// FullFallbackAfter is how many consecutive failed delta sessions the
	// client tolerates before degrading to a full-image transfer; zero
	// uses the default (3), negative disables the fallback.
	FullFallbackAfter int
	// Seed feeds the backoff jitter RNG, for reproducible schedules.
	Seed uint64
	// Sleep overrides the inter-attempt wait (tests collapse backoff).
	Sleep func(ctx context.Context, d time.Duration) error
}

// Option customizes a Config. The same options configure NewServer,
// NewClient, Dial, and Run; options irrelevant to a particular surface
// are simply ignored by it.
type Option func(*Config)

// ServerOption is the historical name for Option.
//
// Deprecated: use Option. Retained as an alias so pre-v2 call sites
// keep compiling unchanged.
type ServerOption = Option

// apply folds opts into a Config.
func (c *Config) apply(opts []Option) {
	for _, o := range opts {
		o(c)
	}
}

// muxSettings projects the transport knobs into mux Settings.
func (c *Config) muxSettings() mux.Settings {
	return mux.Settings{
		MaxStreams:    c.StreamLimit,
		InitialWindow: c.InitialWindow,
		MaxFrame:      c.MaxFrame,
		AcceptBacklog: c.AcceptBacklog,
	}
}

// withClientDefaults fills the retry-ladder fields.
func (c Config) withClientDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.FullFallbackAfter == 0 {
		c.FullFallbackAfter = 3
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

// WithFormat selects the wire format for deltas (must be in-place
// capable; default compact).
func WithFormat(f codec.Format) Option {
	return func(c *Config) { c.Format = f }
}

// WithAlgorithm selects the differencing algorithm (default linear).
func WithAlgorithm(a diff.Algorithm) Option {
	return func(c *Config) { c.Algorithm = a }
}

// WithServerPolicy selects the cycle-breaking policy (default
// locally-minimum).
func WithServerPolicy(p graph.Policy) Option {
	return func(c *Config) { c.Policy = p }
}

// WithScratchBudget makes the server prepare bounded-scratch deltas (the
// stash/unstash extension) for devices whose flash has room for the new
// image plus the scratch area; other devices receive the plain in-place
// delta. A little durable scratch recovers most of the compression lost
// to cycle breaking.
func WithScratchBudget(n int64) Option {
	return func(c *Config) {
		if n < 0 {
			n = 0
		}
		c.ScratchBudget = n
	}
}

// WithMessageTimeout arms a fresh read/write deadline before every I/O
// operation of a session, so one stalled or byzantine peer cannot pin a
// worker. Zero (the default) disables deadlines.
func WithMessageTimeout(d time.Duration) Option {
	return func(c *Config) { c.MessageTimeout = d }
}

// WithFailureBudget rejects further sessions from a client (keyed by its
// remote host) after n consecutive failed sessions; a successful session
// resets the counter. Zero (the default) disables the budget.
func WithFailureBudget(n int) Option {
	return func(c *Config) { c.FailureBudget = n }
}

// WithObserver attaches a metrics registry. Servers record session
// outcomes, bytes served, cache size, mux connection/stream gauges, and
// latency histograms; clients record runs, attempts, retries,
// degradations, and bytes received. Handles resolve once at
// construction; hot paths only bump atomics.
func WithObserver(r *obs.Registry) Option {
	return func(c *Config) { c.Observer = r }
}

// WithLogger sets the structured logger for per-session outcome lines.
// The default discards everything.
func WithLogger(l *slog.Logger) Option {
	return func(c *Config) { c.Logger = l }
}

// WithStreamLimit caps concurrent update streams per v2 connection: the
// server advertises it as its acceptance limit, the client enforces it
// when opening (default 1024).
func WithStreamLimit(n int) Option {
	return func(c *Config) { c.StreamLimit = n }
}

// WithInitialWindow sets the per-stream receive window in bytes — the
// credit a sender starts with before backpressure engages (default
// 256 KiB).
func WithInitialWindow(n int) Option {
	return func(c *Config) { c.InitialWindow = n }
}

// WithMaxFrame sets the largest DATA frame payload this side accepts
// (default 16 KiB).
func WithMaxFrame(n int) Option {
	return func(c *Config) { c.MaxFrame = n }
}

// WithAcceptBacklog bounds accepted-but-unclaimed streams on the
// serving side of a v2 connection (default 128).
func WithAcceptBacklog(n int) Option {
	return func(c *Config) { c.AcceptBacklog = n }
}

// WithRequestFull asks the server for the complete current image
// instead of a delta. Any pending delta update is abandoned.
func WithRequestFull(full bool) Option {
	return func(c *Config) { c.RequestFull = full }
}

// WithMaxAttempts bounds total session attempts per Run (default 8).
func WithMaxAttempts(n int) Option {
	return func(c *Config) { c.MaxAttempts = n }
}

// WithBaseBackoff sets the delay before the first retry; it doubles per
// attempt (default 100ms).
func WithBaseBackoff(d time.Duration) Option {
	return func(c *Config) { c.BaseBackoff = d }
}

// WithMaxBackoff caps the exponential backoff (default 5s).
func WithMaxBackoff(d time.Duration) Option {
	return func(c *Config) { c.MaxBackoff = d }
}

// WithFullFallbackAfter sets how many consecutive failed delta sessions
// the client tolerates before degrading to a full-image transfer.
// Session-level rejections degrade immediately. Zero keeps the default
// (3); negative disables the fallback entirely.
func WithFullFallbackAfter(n int) Option {
	return func(c *Config) { c.FullFallbackAfter = n }
}

// WithSeed feeds the backoff jitter RNG, for reproducible schedules.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithSleep overrides the inter-attempt wait, letting tests collapse the
// backoff schedule. Nil uses a context-aware timer.
func WithSleep(sleep func(ctx context.Context, d time.Duration) error) Option {
	return func(c *Config) { c.Sleep = sleep }
}
