// Package offsetsafe checks the arithmetic hygiene of delta offsets. The
// file formats and the in-place converter carry offsets and lengths as
// int64 (files routinely exceed 4 GiB on the server side), so two habits
// are outlawed in the offset-bearing packages:
//
//  1. Narrowing conversions — int(x), int32(x), ... — applied to a 64-bit
//     value that has not been range-checked first. On 32-bit builds int(x)
//     silently truncates a wire-supplied offset; an attacker-controlled
//     count truncated to a small or negative int corrupts decode loops.
//     A conversion is accepted when the operand was compared against a
//     bound earlier in the same function (the checked-conversion idiom).
//
//  2. Additive bounds checks — `from+length > limit` — on non-constant
//     64-bit values. When both terms are attacker-influenced the sum can
//     wrap negative and the check passes; the overflow-free form
//     `from > limit-length` must be used instead (lengths are validated
//     non-negative before these guards run).
package offsetsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"ipdelta/internal/lint/analysis"
)

// PackagePattern limits the analyzer to the packages that own delta
// offsets; elsewhere int conversions are ordinary and unremarkable.
var PackagePattern = regexp.MustCompile(`(^|/)(codec|delta|inplace)$`)

// Analyzer is the offsetsafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "offsetsafe",
	Doc: "flags unguarded narrowing conversions of 64-bit delta offsets and " +
		"overflow-prone a+b bounds comparisons in the offset-bearing packages",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !PackagePattern.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Every comparison in the function, in source order; a narrowing
	// conversion counts as guarded when its operand featured in an
	// earlier comparison.
	var comparisons []*ast.BinaryExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && isComparison(be.Op) {
			comparisons = append(comparisons, be)
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkConversion(pass, e, comparisons)
		case *ast.BinaryExpr:
			checkAdditiveBound(pass, e)
		}
		return true
	})
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// effectiveWidth returns the conservative bit width of an integer type:
// int/uint/uintptr count as 64 when read from (a value may be that large)
// and as 32 when written to (the platform may be that small).
func effectiveWidth(b *types.Basic, asDest bool) int {
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64:
		return 64
	case types.Int, types.Uint, types.Uintptr:
		if asDest {
			return 32
		}
		return 64
	}
	return 0
}

func basicInt(t types.Type) *types.Basic {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	return b
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr, comparisons []*ast.BinaryExpr) {
	if len(call.Args) != 1 {
		return
	}
	// A conversion is a call whose Fun denotes a type.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	arg := call.Args[0]
	if av, ok := pass.TypesInfo.Types[arg]; ok && av.Value != nil {
		return // constant operand, checked at compile time
	}
	dst := basicInt(tv.Type)
	src := basicInt(pass.TypeOf(arg))
	if dst == nil || src == nil {
		return
	}
	if effectiveWidth(dst, true) >= effectiveWidth(src, false) {
		return
	}
	if guarded(pass, arg, call.Pos(), comparisons) {
		return
	}
	pass.Reportf(call.Pos(),
		"unguarded narrowing conversion %s(%s) of a 64-bit offset value; range-check the operand first",
		types.ExprString(call.Fun), types.ExprString(arg))
}

// guarded reports whether operand (or the variable at its root) appears in
// a comparison positioned before pos.
func guarded(pass *analysis.Pass, operand ast.Expr, pos token.Pos, comparisons []*ast.BinaryExpr) bool {
	obj := rootObject(pass, operand)
	opStr := types.ExprString(operand)
	for _, cmp := range comparisons {
		if cmp.Pos() >= pos {
			continue
		}
		if obj != nil && mentionsObject(pass, cmp, obj) {
			return true
		}
		if obj == nil && mentionsExpr(cmp, opStr) {
			return true
		}
	}
	return false
}

// rootObject returns the variable object of a plain identifier operand,
// or nil for composite expressions.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return pass.ObjectOf(id)
	}
	return nil
}

func mentionsObject(pass *analysis.Pass, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func mentionsExpr(root ast.Node, expr string) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == expr {
			found = true
		}
		return !found
	})
	return found
}

func checkAdditiveBound(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	if !isComparison(cmp.Op) {
		return
	}
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		add, ok := ast.Unparen(side).(*ast.BinaryExpr)
		if !ok || add.Op != token.ADD {
			continue
		}
		b := basicInt(pass.TypeOf(add))
		if b == nil || effectiveWidth(b, false) < 64 {
			continue
		}
		if isConst(pass, add.X) || isConst(pass, add.Y) {
			continue // i+1 style; cannot overflow for validated offsets
		}
		pass.Reportf(add.Pos(),
			"bounds check adds two 64-bit offsets (%s + %s) and may overflow; compare against a subtraction instead",
			types.ExprString(add.X), types.ExprString(add.Y))
	}
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
