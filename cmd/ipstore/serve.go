package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"ipdelta/internal/codec"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/obs"
	"ipdelta/internal/store"
)

// cmdServe exposes a store over HTTP: version images, direct in-place
// deltas to the newest version, and the server's own metrics.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	storePath := fs.String("store", "", "store file")
	listen := fs.String("listen", "127.0.0.1:7080", "listen address")
	policyName := fs.String("policy", "locally-minimum", "cycle-breaking policy for served deltas")
	cacheSize := fs.Int("cache", 64, "materialization cache entries (0 disables; versions and composed deltas are replayed per request)")
	diffName := fs.String("diff", "auto", "differencing algorithm for appended versions: auto, linear, parallel, recipe, ...")
	chunked := fs.Bool("chunked", false, "enable the chunked recipe tier: versions dedup into a content-addressed chunk store, and served deltas are sourced from recipe diffs")
	verbose := fs.Bool("v", false, "log each request (structured, stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return errors.New("serve: -store is required")
	}
	algo, err := diff.ByName(*diffName)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	// The cache and its hit/miss/dedup counters attach at load time, so
	// /metrics shows the serving hot path from the first request.
	storeOpts := []store.Option{store.WithObserver(reg), store.WithAlgorithm(algo)}
	if *cacheSize > 0 {
		storeOpts = append(storeOpts, store.WithCache(*cacheSize))
	}
	if *chunked {
		storeOpts = append(storeOpts, store.WithChunking(nil))
	}
	s, err := loadStore(*storePath, storeOpts...)
	if err != nil {
		return err
	}
	policy, err := graph.PolicyByName(*policyName)
	if err != nil {
		return err
	}
	logger := obs.NopLogger()
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	codec.SetObserver(reg)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("ipstore: serving %d versions on http://%s (metrics on /metrics)\n",
		s.NumVersions(), l.Addr())
	return http.Serve(l, newServeHandler(s, policy, reg, logger))
}

// storeServer answers the serve subcommand's HTTP API. It is factored out
// of cmdServe so tests can drive it through httptest.
type storeServer struct {
	store  *store.Store
	policy graph.Policy
	log    *slog.Logger

	requests  *obs.Counter
	errs      *obs.Counter
	bytesOut  *obs.Counter
	reqStage  obs.Stage
	deltaHits *obs.Counter
}

// newServeHandler mounts the store API: /info, /version/{n},
// /delta?from=N, and /metrics.
func newServeHandler(s *store.Store, policy graph.Policy, reg *obs.Registry, logger *slog.Logger) http.Handler {
	sv := &storeServer{
		store:     s,
		policy:    policy,
		log:       obs.OrNop(logger),
		requests:  reg.Counter("ipdelta_store_requests_total"),
		errs:      reg.Counter("ipdelta_store_request_errors_total"),
		bytesOut:  reg.Counter("ipdelta_store_bytes_written_total"),
		reqStage:  reg.Stage("ipdelta_store_request_nanos"),
		deltaHits: reg.Counter("ipdelta_store_delta_requests_total"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /info", sv.wrap(sv.info))
	mux.HandleFunc("GET /version/{n}", sv.wrap(sv.version))
	mux.HandleFunc("GET /delta", sv.wrap(sv.delta))
	mux.Handle("GET /metrics", reg)
	return mux
}

// wrap runs one endpoint under the request counters, latency histogram,
// and log line.
func (sv *storeServer) wrap(fn func(w http.ResponseWriter, req *http.Request) (status int, n int64, err error)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		sv.requests.Inc()
		sp := sv.reqStage.Start()
		start := time.Now()
		status, n, err := fn(w, req)
		sp.End()
		sv.bytesOut.Add(n)
		if err != nil {
			sv.errs.Inc()
			http.Error(w, err.Error(), status)
			sv.log.Warn("request failed",
				"component", "ipstore", "remote", req.RemoteAddr, "path", req.URL.Path,
				"status", status, "err", err)
			return
		}
		sv.log.Info("request",
			"component", "ipstore", "remote", req.RemoteAddr, "path", req.URL.Path,
			"status", status, "bytes", n, "duration_ms", time.Since(start).Milliseconds())
	}
}

// storeInfo is the /info response document.
type storeInfo struct {
	Versions     int                `json:"versions"`
	StorageBytes int64              `json:"storage_bytes"`
	FullBytes    int64              `json:"full_bytes"`
	Entries      []storeInfoVersion `json:"entries"`
}

type storeInfoVersion struct {
	Index  int    `json:"index"`
	Length int64  `json:"length"`
	CRC32  string `json:"crc32"`
}

func (sv *storeServer) info(w http.ResponseWriter, _ *http.Request) (int, int64, error) {
	storage, err := sv.store.StorageBytes()
	if err != nil {
		return http.StatusInternalServerError, 0, err
	}
	doc := storeInfo{
		Versions:     sv.store.NumVersions(),
		StorageBytes: storage,
		FullBytes:    sv.store.FullBytes(),
	}
	for k := 0; k < sv.store.NumVersions(); k++ {
		crc, length, err := sv.store.CRC(k)
		if err != nil {
			return http.StatusInternalServerError, 0, err
		}
		doc.Entries = append(doc.Entries, storeInfoVersion{
			Index: k, Length: length, CRC32: fmt.Sprintf("%08x", crc),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(doc); err != nil {
		return http.StatusInternalServerError, 0, err
	}
	n, _ := w.Write(buf.Bytes())
	return http.StatusOK, int64(n), nil
}

func (sv *storeServer) version(w http.ResponseWriter, req *http.Request) (int, int64, error) {
	idx, err := strconv.Atoi(req.PathValue("n"))
	if err != nil {
		return http.StatusBadRequest, 0, fmt.Errorf("bad version index %q", req.PathValue("n"))
	}
	img, err := sv.store.Version(idx)
	if err != nil {
		return http.StatusNotFound, 0, err
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	n, _ := w.Write(img)
	return http.StatusOK, int64(n), nil
}

func (sv *storeServer) delta(w http.ResponseWriter, req *http.Request) (int, int64, error) {
	from, err := strconv.Atoi(req.URL.Query().Get("from"))
	if err != nil {
		return http.StatusBadRequest, 0, fmt.Errorf("bad or missing from index %q", req.URL.Query().Get("from"))
	}
	d, _, err := sv.store.InPlaceDeltaTo(from, sv.policy)
	if err != nil {
		return http.StatusNotFound, 0, err
	}
	var buf bytes.Buffer
	if _, err := codec.Encode(&buf, d, codec.FormatCompact); err != nil {
		return http.StatusInternalServerError, 0, err
	}
	sv.deltaHits.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	n, _ := w.Write(buf.Bytes())
	return http.StatusOK, int64(n), nil
}
