package experiments

import (
	"strings"
	"testing"

	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
)

func TestRunStrategies(t *testing.T) {
	res, err := RunStrategies(testCorpus(t), diff.NewLinear(), 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byName := map[string]StrategyRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	lm := byName["dfs/locally-minimum"]
	ct := byName["dfs/constant-time"]
	scc := byName["scc-greedy"]

	// On the adversarial tree, SCC-greedy must beat locally-minimum: the
	// root hub is one conversion of 2·leafLen bytes vs a conversion per
	// leaf.
	if scc.TreeBytes >= lm.TreeBytes {
		t.Errorf("scc tree bytes %d not better than LM %d", scc.TreeBytes, lm.TreeBytes)
	}
	if scc.TreeBytes != 64 { // 2 × leafLen
		t.Errorf("scc tree bytes = %d, want 64", scc.TreeBytes)
	}
	// On the corpus, LM must not be worse than CT overall.
	if lm.CorpusBytes > ct.CorpusBytes {
		t.Errorf("LM corpus bytes %d worse than CT %d", lm.CorpusBytes, ct.CorpusBytes)
	}

	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "strategy ablation") {
		t.Fatal("render missing title")
	}
}

func TestRunComposition(t *testing.T) {
	base := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 24 << 10, ChangeRate: 0.05, Seed: 5})
	res, err := RunComposition(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.InPlaceOK {
			t.Errorf("hop %d: composed delta not in-place convertible", row.HopCount)
		}
		if row.Overhead < 0.5 {
			t.Errorf("hop %d: overhead %.2f implausibly low", row.HopCount, row.Overhead)
		}
	}
	// Overhead should generally not shrink as hops grow (composition
	// accumulates fragmentation); allow equality.
	if res.Rows[len(res.Rows)-1].ComposedBytes < res.Rows[0].ComposedBytes {
		t.Log("note: composed size decreased with hops (unusual but possible)")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "composed") {
		t.Fatal("render missing title")
	}
}

func TestRunAlgorithms(t *testing.T) {
	res, err := RunAlgorithms(testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byName := map[string]AlgorithmRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
		if row.Compression <= 0 || row.InPlaceCompression < row.Compression-0.001 {
			t.Errorf("%s: implausible compressions %+v", row.Name, row)
		}
	}
	// Block granularity must not beat byte granularity on compression.
	if byName["blockwise"].Compression < byName["linear"].Compression {
		t.Errorf("blockwise (%.3f) beat linear (%.3f)",
			byName["blockwise"].Compression, byName["linear"].Compression)
	}
	// The suffix-array differencer is the compression upper bound here.
	if byName["suffix"].Compression > byName["linear"].Compression+0.01 {
		t.Errorf("suffix (%.3f) notably worse than linear (%.3f)",
			byName["suffix"].Compression, byName["linear"].Compression)
	}
	// The correcting pass never loses to its inner linear differencer.
	if byName["correcting"].Compression > byName["linear"].Compression+0.001 {
		t.Errorf("correcting (%.4f) worse than linear (%.4f)",
			byName["correcting"].Compression, byName["linear"].Compression)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "algorithm ablation") {
		t.Fatal("render missing title")
	}
}

func TestRunFleet(t *testing.T) {
	res, err := RunFleet(16<<10, 3, 12, 256_000, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	full, scratch, inplaceRow := res.Rows[0], res.Rows[1], res.Rows[2]
	if !(inplaceRow.BytesOnWire < scratch.BytesOnWire && scratch.BytesOnWire <= full.BytesOnWire) {
		t.Fatalf("byte ordering wrong: %+v", res.Rows)
	}
	if inplaceRow.Fallbacks != 0 {
		t.Fatalf("in-place mode fell back %d times", inplaceRow.Fallbacks)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fleet rollout") {
		t.Fatal("render missing title")
	}
}

func TestRunScratch(t *testing.T) {
	res, err := RunScratch(testCorpus(t), diff.NewLinear(), []float64{0, 0.01, 0.10, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Monotone: more scratch never yields a larger delta.
	for k := 1; k < len(res.Rows); k++ {
		if res.Rows[k].DeltaBytes > res.Rows[k-1].DeltaBytes {
			t.Fatalf("budget %.2f produced a larger delta than %.2f",
				res.Rows[k].Budget, res.Rows[k-1].Budget)
		}
	}
	// Zero budget: nothing stashed; full budget: nothing converted.
	if res.Rows[0].Stashed != 0 {
		t.Fatalf("zero budget stashed %d", res.Rows[0].Stashed)
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Converted != 0 {
		t.Fatalf("full budget still converted %d", last.Converted)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bounded-scratch") {
		t.Fatal("render missing title")
	}
}
