// Package lint aggregates the project's analyzers and runs them over
// loaded packages. cmd/ipvet is a thin CLI around this package, and the
// package's own test runs the full suite over the module, so `go test`
// enforces the same invariants CI does.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"ipdelta/internal/lint/aliascheck"
	"ipdelta/internal/lint/analysis"
	"ipdelta/internal/lint/deprecatedapi"
	"ipdelta/internal/lint/errpropagate"
	"ipdelta/internal/lint/loader"
	"ipdelta/internal/lint/locksafe"
	"ipdelta/internal/lint/offsetsafe"
)

// All returns every ipvet analyzer.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		offsetsafe.Analyzer,
		aliascheck.Analyzer,
		locksafe.Analyzer,
		errpropagate.Analyzer,
		deprecatedapi.Analyzer,
	}
}

// Finding is one non-suppressed diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies the analyzers to each package and returns the findings in
// source order, //ipvet:ignore suppressions already applied.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				if pkg.Ignored(a.Name, d.Pos) {
					return
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
