package experiments

import (
	"fmt"
	"io"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
	"ipdelta/internal/inplace"
	"ipdelta/internal/stats"
)

// CodewordRow is one wire format in the codeword ablation.
type CodewordRow struct {
	Format      codec.Format
	Bytes       int64
	Compression float64
	// InPlace marks formats that can carry in-place deltas; those rows
	// encode the converted delta, the others the raw write-ordered one.
	InPlace bool
}

// CodewordResult reproduces the §7 codeword discussion: the legacy
// single-byte-add codewords are cheap in write order but pay dearly for
// explicit write offsets, and the redesigned compact format recovers most
// of that — the improvement the paper leaves as future work.
type CodewordResult struct {
	Rows         []CodewordRow
	VersionBytes int64
}

// RunCodewords encodes the corpus deltas in every format.
func RunCodewords(pairs []corpus.Pair, algo diff.Algorithm) (*CodewordResult, error) {
	formats := []codec.Format{
		codec.FormatLegacyOrdered,
		codec.FormatOrdered,
		codec.FormatLegacyOffsets,
		codec.FormatOffsets,
		codec.FormatCompact,
	}
	totals := make(map[codec.Format]int64, len(formats))
	res := &CodewordResult{}
	for _, p := range pairs {
		d, err := algo.Diff(p.Ref, p.Version)
		if err != nil {
			return nil, err
		}
		ip, _, err := inplace.Convert(d, p.Ref)
		if err != nil {
			return nil, err
		}
		res.VersionBytes += int64(len(p.Version))
		for _, f := range formats {
			src := d
			if f.InPlaceCapable() {
				src = ip
			}
			n, err := codec.EncodedSize(src, f)
			if err != nil {
				return nil, fmt.Errorf("codewords %s %v: %w", p.Name, f, err)
			}
			totals[f] += n
		}
	}
	for _, f := range formats {
		res.Rows = append(res.Rows, CodewordRow{
			Format:      f,
			Bytes:       totals[f],
			Compression: float64(totals[f]) / float64(res.VersionBytes),
			InPlace:     f.InPlaceCapable(),
		})
	}
	return res, nil
}

// Render prints the ablation.
func (r *CodewordResult) Render(w io.Writer) error {
	t := stats.Table{
		Title:   "§7 codeword ablation — wire formats over the Table 1 corpus",
		Headers: []string{"format", "in-place capable", "delta bytes", "compression"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Format.String(),
			fmt.Sprintf("%v", row.InPlace),
			stats.Bytes(row.Bytes),
			stats.Pct(row.Compression),
		)
	}
	return t.Render(w)
}
