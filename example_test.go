package ipdelta_test

import (
	"bytes"
	"fmt"
	"log"

	"ipdelta"
)

// Example demonstrates the core loop: diff, convert for in-place
// reconstruction, and rebuild the new version in the old version's buffer.
func Example() {
	oldVersion := []byte("the quick brown fox jumps over the lazy dog")
	newVersion := []byte("the lazy dog jumps over the quick brown fox")

	ip, _, err := ipdelta.DiffInPlace(oldVersion, newVersion)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, ip.InPlaceBufLen())
	copy(buf, oldVersion)
	if err := ipdelta.PatchInPlace(buf, ip); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf[:ip.VersionLen]))
	// Output: the lazy dog jumps over the quick brown fox
}

// ExampleAnalyze shows inspecting a delta's conflict structure without a
// reference file: a half-swap has one 2-cycle and needs one conversion.
func ExampleAnalyze() {
	d := &ipdelta.Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []ipdelta.Command{
			ipdelta.NewCopy(4, 0, 4),
			ipdelta.NewCopy(0, 4, 4),
		},
	}
	a, err := ipdelta.Analyze(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cyclic components: %d, reorder sufficient: %v, min conversion: %dB\n",
		a.CyclicComponents, a.ReorderSufficient, a.MinConversionBytes)
	// Output: cyclic components: 1, reorder sufficient: false, min conversion: 4B
}

// ExampleCompose chains two deltas into one without materializing the
// middle version.
func ExampleCompose() {
	v1 := []byte("alpha beta gamma")
	v2 := []byte("alpha BETA gamma")
	v3 := []byte("alpha BETA gamma delta")

	d12, _ := ipdelta.Diff(v1, v2)
	d23, _ := ipdelta.Diff(v2, v3)
	d13, err := ipdelta.Compose(d12, d23)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := ipdelta.Patch(v1, d13)
	fmt.Println(string(out))
	// Output: alpha BETA gamma delta
}

// ExampleEncode round-trips a delta through the compact wire format.
func ExampleEncode() {
	oldVersion := bytes.Repeat([]byte("ab"), 64)
	newVersion := append([]byte("prefix-"), oldVersion...)

	ip, _, err := ipdelta.DiffInPlace(oldVersion, newVersion)
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := ipdelta.Encode(&wire, ip, ipdelta.FormatCompact); err != nil {
		log.Fatal(err)
	}
	decoded, format, err := ipdelta.Decode(&wire)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := ipdelta.Patch(oldVersion, decoded)
	fmt.Println(format, bytes.Equal(out, newVersion))
	// Output: compact true
}
