// Package ignores is a fixture for the //ipvet:ignore scoping tests. The
// loader test locates each directive by its marker substring, so keep the
// markers unique.
package ignores

// Scoped trailing directive: mutes offsetsafe on its own line only.
func Trailing(v int64) int {
	return int(v) //ipvet:ignore offsetsafe -- marker-trailing
}

// Standalone directive: mutes aliascheck on the next line only.
func Standalone(v int64) int {
	//ipvet:ignore aliascheck -- marker-standalone
	return int(v)
}

// Multiple analyzers, comma separated.
func Multi(v int64) int {
	return int(v) //ipvet:ignore offsetsafe,errpropagate -- marker-multi
}

// Explicit wildcard.
func Wild(v int64) int {
	return int(v) //ipvet:ignore * -- marker-wild
}

// Bare directive: names nothing, so it suppresses nothing.
func Bare(v int64) int {
	return int(v) //ipvet:ignore
}

// Prefix collision: not an ignore directive at all.
func Prefix(v int64) int {
	return int(v) //ipvet:ignorenothing offsetsafe
}
