package delta

import (
	"fmt"

	"ipdelta/internal/interval"
)

// Bounded-scratch reconstruction extends the paper's pure in-place model:
// a device willing to provide s bytes of scratch memory (still far less
// than a second file copy) can preserve copies that cycle breaking would
// otherwise convert to adds. Two additional command kinds express this:
//
//   - a stash command ⟨f, l⟩ reads [f, f+l-1] from the buffer into the
//     scratch area (appending). Stash commands are executed while their
//     source bytes are still original, so they are placed before any
//     writes that intersect them — the converter puts them first.
//   - an unstash command ⟨t, l⟩ writes the next l scratch bytes (FIFO
//     order) to [t, t+l-1] of the version file.
//
// With a zero budget the model reduces exactly to the paper's algorithm.

const (
	// OpStash copies buffer bytes into the scratch area.
	OpStash Op = 3
	// OpUnstash writes scratch bytes into the version file.
	OpUnstash Op = 4
)

// NewStash returns a stash command reading [from, from+length-1].
func NewStash(from, length int64) Command {
	return Command{Op: OpStash, From: from, Length: length}
}

// NewUnstash returns an unstash command writing the next length scratch
// bytes at offset to.
func NewUnstash(to, length int64) Command {
	return Command{Op: OpUnstash, To: to, Length: length}
}

// ScratchRequired returns the scratch bytes a delta needs: the total
// length of its stash commands (scratch is consumed FIFO after all stashes
// complete, so the peak equals the total).
func (d *Delta) ScratchRequired() int64 {
	var n int64
	for _, c := range d.Commands {
		if c.Op == OpStash {
			n += c.Length
		}
	}
	return n
}

// scratch-related validation errors.
var (
	ErrScratchUnbalanced = fmt.Errorf("unstash bytes disagree with stash bytes")
	ErrScratchUnderflow  = fmt.Errorf("unstash consumes more than has been stashed")
)

// validateScratch checks the stash/unstash bookkeeping: stash reads are
// in-bounds, unstash never consumes bytes that have not been stashed yet,
// and the totals balance.
func (d *Delta) validateScratch() error {
	var stashed, consumed int64
	for k, c := range d.Commands {
		switch c.Op {
		case OpStash:
			if c.From < 0 {
				return &ValidationError{Index: k, Cmd: c, Cause: ErrNegativeOffset}
			}
			if c.Length <= 0 {
				return &ValidationError{Index: k, Cmd: c, Cause: ErrZeroLength}
			}
			// Subtraction form so a hostile 63-bit From+Length cannot wrap
			// negative past the comparison (Length > 0 was checked above).
			if c.From > d.RefLen-c.Length {
				return &ValidationError{Index: k, Cmd: c, Cause: ErrReadOOB}
			}
			stashed += c.Length
		case OpUnstash:
			if c.To < 0 {
				return &ValidationError{Index: k, Cmd: c, Cause: ErrNegativeOffset}
			}
			if c.Length <= 0 {
				return &ValidationError{Index: k, Cmd: c, Cause: ErrZeroLength}
			}
			if c.To > d.VersionLen-c.Length {
				return &ValidationError{Index: k, Cmd: c, Cause: ErrWriteOOB}
			}
			consumed += c.Length
			if consumed > stashed {
				return &ValidationError{Index: k, Cmd: c, Cause: ErrScratchUnderflow}
			}
		}
	}
	if stashed != consumed {
		return &ValidationError{Index: -1, Cause: ErrScratchUnbalanced}
	}
	return nil
}

// scratchState tracks the FIFO scratch area during application.
type scratchState struct {
	buf  []byte
	read int64
}

// stash appends data.
func (s *scratchState) stash(p []byte) { s.buf = append(s.buf, p...) }

// unstash returns the next n bytes in FIFO order.
func (s *scratchState) unstash(n int64) ([]byte, error) {
	// s.read never exceeds len(s.buf), so the subtraction cannot overflow
	// even when a hostile command carries a near-MaxInt64 length.
	if n > int64(len(s.buf))-s.read {
		return nil, ErrScratchUnderflow
	}
	out := s.buf[s.read : s.read+n]
	s.read += n
	return out, nil
}

// stashReadInterval returns the buffer interval a command reads for the
// purpose of WR-conflict checking: copies and stashes read the buffer,
// adds and unstashes do not.
func stashReadInterval(c Command) interval.Interval {
	switch c.Op {
	case OpCopy, OpStash:
		return interval.FromRange(c.From, c.Length)
	default:
		return interval.Interval{Lo: 0, Hi: -1}
	}
}
