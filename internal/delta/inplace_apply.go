package delta

import (
	"errors"
	"fmt"
)

// DefaultCopyBufSize is the read/write buffer granularity used by
// directional copies when none is specified. The paper notes that the
// left-to-right / right-to-left copy argument "applies to moving a
// read/write buffer of any size"; tests exercise several sizes.
const DefaultCopyBufSize = 4096

// ErrScratchTooSmall is returned when the buffer handed to ApplyInPlace
// cannot hold both file versions.
var ErrScratchTooSmall = errors.New("buffer smaller than max(reference, version) length")

// InPlaceBufLen returns the buffer size required to apply the delta in
// place: the larger of the two file versions. A device needs exactly this
// much storage — the space the current version (rounded up to the new
// version's size) occupies — and no scratch.
func (d *Delta) InPlaceBufLen() int64 {
	if d.RefLen > d.VersionLen {
		return d.RefLen
	}
	return d.VersionLen
}

// ApplyInPlace applies the delta serially inside buf, which must hold the
// reference file in its first RefLen bytes and have room for the version
// (len(buf) >= InPlaceBufLen()). On success the version occupies the first
// VersionLen bytes of buf.
//
// Commands are applied strictly in order. Copies whose read and write
// intervals overlap are performed directionally per §4.1 of the paper:
// left-to-right when f >= t and right-to-left when f < t, moving a bounded
// buffer so a byte is never read after it has been overwritten by the same
// command. No cross-command conflict detection is performed here — a delta
// that violates Equation 2 will corrupt the output, exactly as the paper
// describes; use CheckInPlace or package inplace to obtain a safe ordering.
func (d *Delta) ApplyInPlace(buf []byte) error {
	return d.applyInPlace(buf, DefaultCopyBufSize, nil)
}

// ApplyInPlaceBuf is ApplyInPlace with an explicit directional copy buffer
// granularity (bufSize >= 1).
func (d *Delta) ApplyInPlaceBuf(buf []byte, bufSize int) error {
	if bufSize < 1 {
		return fmt.Errorf("copy buffer size %d < 1", bufSize)
	}
	return d.applyInPlace(buf, bufSize, nil)
}

// ApplyFunc observes each command as it is applied; used by the device
// substrate to account I/O and to inject failures.
type ApplyFunc func(index int, cmd Command) error

// ApplyInPlaceObserved is ApplyInPlace invoking obs before each command.
// If obs returns an error, application stops and the error is returned;
// the buffer is left in the partially applied state (as a real power cut
// would leave a flash part).
func (d *Delta) ApplyInPlaceObserved(buf []byte, obs ApplyFunc) error {
	return d.applyInPlace(buf, DefaultCopyBufSize, obs)
}

func (d *Delta) applyInPlace(buf []byte, bufSize int, obs ApplyFunc) error {
	if int64(len(buf)) < d.InPlaceBufLen() {
		return ErrScratchTooSmall
	}
	var scratch scratchState
	for k, c := range d.Commands {
		if err := d.validateCommand(c); err != nil {
			return &ValidationError{Index: k, Cmd: c, Cause: err}
		}
		if obs != nil {
			if err := obs(k, c); err != nil {
				return err
			}
		}
		switch c.Op {
		case OpCopy:
			directionalCopy(buf, c.From, c.To, c.Length, bufSize)
		case OpAdd:
			copy(buf[c.To:c.To+c.Length], c.Data)
		case OpStash:
			scratch.stash(buf[c.From : c.From+c.Length])
		case OpUnstash:
			data, err := scratch.unstash(c.Length)
			if err != nil {
				return &ValidationError{Index: k, Cmd: c, Cause: err}
			}
			copy(buf[c.To:c.To+c.Length], data)
		}
	}
	return nil
}

// directionalCopy moves length bytes from offset from to offset to within
// buf, chunked at bufSize granularity, choosing the direction that never
// reads a byte the same command has already overwritten: left-to-right when
// from >= to, right-to-left when from < to (§4.1).
func directionalCopy(buf []byte, from, to, length int64, bufSize int) {
	if length <= 0 || from == to {
		return
	}
	step := int64(bufSize)
	if from >= to {
		// Left-to-right: the source cursor stays ahead of the write cursor.
		for done := int64(0); done < length; done += step {
			n := step
			if length-done < n {
				n = length - done
			}
			copy(buf[to+done:to+done+n], buf[from+done:from+done+n])
		}
		return
	}
	// Right-to-left: start at the tail so the head of the source is intact
	// until it is read.
	for done := length; done > 0; {
		n := step
		if done < n {
			n = done
		}
		done -= n
		copy(buf[to+done:to+done+n], buf[from+done:from+done+n])
	}
}
