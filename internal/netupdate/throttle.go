package netupdate

import (
	"net"
	"sync"
	"time"
)

// TransferTime returns how long payload bytes take on a link of the given
// bit rate — the arithmetic behind the paper's claim that 4–10× delta
// compression shrinks distribution time accordingly on low-bandwidth
// channels.
func TransferTime(payloadBytes int64, bitsPerSecond int64) time.Duration {
	if bitsPerSecond <= 0 {
		return 0
	}
	bits := payloadBytes * 8
	return time.Duration(float64(bits) / float64(bitsPerSecond) * float64(time.Second))
}

// ThrottledConn wraps a net.Conn and limits its read throughput to a fixed
// bit rate, simulating the slow links (cellular, modem-era Internet) the
// paper targets. Writes are not throttled; update traffic is dominated by
// the server-to-device delta stream.
type ThrottledConn struct {
	net.Conn
	bitsPerSecond int64

	mu       sync.Mutex
	earliest time.Time // next moment a read may complete
}

// NewThrottledConn wraps conn with a read-rate limit.
func NewThrottledConn(conn net.Conn, bitsPerSecond int64) *ThrottledConn {
	return &ThrottledConn{Conn: conn, bitsPerSecond: bitsPerSecond}
}

// Read implements net.Conn, delaying so that cumulative throughput stays at
// the configured rate.
func (t *ThrottledConn) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	if n > 0 && t.bitsPerSecond > 0 {
		t.mu.Lock()
		now := time.Now()
		if t.earliest.Before(now) {
			t.earliest = now
		}
		t.earliest = t.earliest.Add(TransferTime(int64(n), t.bitsPerSecond))
		wait := time.Until(t.earliest)
		t.mu.Unlock()
		if wait > 0 {
			time.Sleep(wait)
		}
	}
	return n, err
}
