// Package httpdelta implements delta encoding for HTTP resources in the
// style of RFC 3229 ("Delta encoding in HTTP") — the related-work scenario
// the paper cites for WWW latency reduction. A server remembers recent
// versions of a resource; a client that presents the entity tag of its
// cached copy receives a delta (226 IM Used) instead of the full body.
//
// The implementation uses this module's wire format as the
// instance-manipulation method, advertised as "ipdelta".
package httpdelta

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"ipdelta/internal/codec"
	"ipdelta/internal/diff"
	"ipdelta/internal/obs"
)

// Protocol constants.
const (
	// IMName is the instance-manipulation identifier in A-IM/IM headers.
	IMName = "ipdelta"
	// StatusIMUsed is 226 IM Used (RFC 3229).
	StatusIMUsed = http.StatusIMUsed
	headerAIM    = "A-IM"
	headerIM     = "IM"
	headerBase   = "Delta-Base"
)

// etagOf derives a strong entity tag from a body.
func etagOf(body []byte) string {
	return fmt.Sprintf("\"%08x-%x\"", crc32.ChecksumIEEE(body), len(body))
}

// Resource serves one mutable resource with delta encoding. It implements
// http.Handler for GET requests.
type Resource struct {
	algo        diff.Algorithm
	maxVersions int
	obsReg      *obs.Registry
	met         *resourceMetrics
	log         *slog.Logger

	mu       sync.RWMutex
	body     []byte
	etag     string
	versions map[string][]byte // recent versions by etag
	order    []string          // eviction order, oldest first
}

// resourceMetrics holds the pre-resolved handles of an observed Resource
// (DESIGN.md §9).
type resourceMetrics struct {
	requests     *obs.Counter // all GETs served
	deltaHits    *obs.Counter // 226 IM Used responses
	notModified  *obs.Counter // 304 responses
	fullBodies   *obs.Counter // 200 full-body responses
	bytesWritten *obs.Counter // response body bytes

	requestStage obs.Stage // whole-request latency
}

func resolveResourceMetrics(r *obs.Registry) *resourceMetrics {
	return &resourceMetrics{
		requests:     r.Counter("ipdelta_http_requests_total"),
		deltaHits:    r.Counter("ipdelta_http_delta_responses_total"),
		notModified:  r.Counter("ipdelta_http_not_modified_total"),
		fullBodies:   r.Counter("ipdelta_http_full_responses_total"),
		bytesWritten: r.Counter("ipdelta_http_bytes_written_total"),
		requestStage: r.Stage("ipdelta_http_request_nanos"),
	}
}

// ResourceOption customizes a Resource.
type ResourceOption func(*Resource)

// WithAlgorithm selects the differencing algorithm (default auto, which
// picks the sequential or parallel engine per update from body size and
// GOMAXPROCS).
func WithAlgorithm(a diff.Algorithm) ResourceOption {
	return func(r *Resource) { r.algo = a }
}

// WithParallelDiff computes deltas with the parallel sharded differencer
// using the given worker count (<= 0 means GOMAXPROCS). Worth enabling on
// multi-core origins where Update's diff of each live version dominates
// publish latency; shorthand for WithAlgorithm(diff.NewParallel(workers)).
func WithParallelDiff(workers int) ResourceOption {
	return func(r *Resource) { r.algo = diff.NewParallel(workers) }
}

// WithMaxVersions bounds how many old versions stay delta-servable
// (default 8, minimum 1).
func WithMaxVersions(n int) ResourceOption {
	return func(r *Resource) {
		if n < 1 {
			n = 1
		}
		r.maxVersions = n
	}
}

// WithObserver attaches a metrics registry: the resource then counts
// requests by response class (delta, not-modified, full body), response
// bytes, and request latency. Handles resolve once here.
func WithObserver(reg *obs.Registry) ResourceOption {
	return func(r *Resource) { r.obsReg = reg }
}

// WithLogger sets the structured logger for per-request lines. The
// default discards everything.
func WithLogger(l *slog.Logger) ResourceOption {
	return func(r *Resource) { r.log = l }
}

// NewResource creates a resource with an initial body.
func NewResource(body []byte, opts ...ResourceOption) *Resource {
	r := &Resource{
		algo:        diff.NewAuto(),
		maxVersions: 8,
		versions:    make(map[string][]byte),
	}
	for _, o := range opts {
		o(r)
	}
	if r.obsReg != nil {
		r.met = resolveResourceMetrics(r.obsReg)
	}
	r.log = obs.OrNop(r.log)
	r.Update(body)
	return r
}

// Update publishes a new version of the resource.
func (r *Resource) Update(body []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.body = append([]byte(nil), body...)
	r.etag = etagOf(r.body)
	if _, ok := r.versions[r.etag]; !ok {
		r.versions[r.etag] = r.body
		r.order = append(r.order, r.etag)
		for len(r.order) > r.maxVersions {
			delete(r.versions, r.order[0])
			r.order = r.order[1:]
		}
	}
}

// ETag returns the current entity tag.
func (r *Resource) ETag() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.etag
}

// ServeHTTP implements http.Handler: full body for plain GETs, 304 for
// current caches, 226 + delta when the client's base version is known and
// the client accepts the ipdelta instance manipulation.
func (r *Resource) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var span obs.Span
	start := time.Now()
	if r.met != nil {
		r.met.requests.Inc()
		span = r.met.requestStage.Start()
	}
	status, n := r.serveGET(w, req)
	if r.met != nil {
		span.End()
		r.met.bytesWritten.Add(int64(n))
		switch status {
		case StatusIMUsed:
			r.met.deltaHits.Inc()
		case http.StatusNotModified:
			r.met.notModified.Inc()
		default:
			r.met.fullBodies.Inc()
		}
	}
	r.log.Info("request",
		"component", "httpdelta", "remote", req.RemoteAddr, "status", status,
		"bytes", n, "duration_ms", time.Since(start).Milliseconds())
}

// serveGET answers one GET and reports the status and body bytes written.
func (r *Resource) serveGET(w http.ResponseWriter, req *http.Request) (status, bytesOut int) {
	r.mu.RLock()
	body, etag := r.body, r.etag
	clientTag := req.Header.Get("If-None-Match")
	var base []byte
	deltaOK := strings.Contains(req.Header.Get(headerAIM), IMName)
	if deltaOK && clientTag != "" && clientTag != etag {
		base = r.versions[clientTag]
	}
	r.mu.RUnlock()

	w.Header().Set("ETag", etag)
	if clientTag == etag {
		w.WriteHeader(http.StatusNotModified)
		return http.StatusNotModified, 0
	}
	if base != nil {
		d, err := r.algo.Diff(base, body)
		if err == nil {
			var buf bytes.Buffer
			if _, err := codec.Encode(&buf, d, codec.FormatOrdered); err == nil && buf.Len() < len(body) {
				w.Header().Set(headerIM, IMName)
				w.Header().Set(headerBase, clientTag)
				w.WriteHeader(StatusIMUsed)
				n, _ := w.Write(buf.Bytes())
				return StatusIMUsed, n
			}
		}
	}
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(body)
	return http.StatusOK, n
}

// Client fetches delta-encoded resources, keeping one cached copy per URL.
type Client struct {
	http *http.Client

	mu    sync.Mutex
	cache map[string]*cached
	// TransferredBytes counts body bytes received, for savings accounting.
	transferred int64
}

type cached struct {
	etag string
	body []byte
}

// Errors reported by the client.
var (
	// ErrBadDelta means the server sent a delta the client could not apply
	// to its cached base.
	ErrBadDelta = errors.New("httpdelta: server delta does not apply to cached base")
)

// NewClient wraps an http.Client (nil means http.DefaultClient).
func NewClient(h *http.Client) *Client {
	if h == nil {
		h = http.DefaultClient
	}
	return &Client{http: h, cache: make(map[string]*cached)}
}

// TransferredBytes returns total body bytes received so far.
func (c *Client) TransferredBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transferred
}

// Get fetches url, using delta encoding against the cached copy when
// possible, and returns the current resource body.
func (c *Client) Get(url string) ([]byte, error) {
	c.mu.Lock()
	prev := c.cache[url]
	c.mu.Unlock()

	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(headerAIM, IMName)
	if prev != nil {
		req.Header.Set("If-None-Match", prev.etag)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.transferred += int64(len(payload))
	c.mu.Unlock()

	switch resp.StatusCode {
	case http.StatusNotModified:
		if prev == nil {
			return nil, fmt.Errorf("httpdelta: 304 without a cached copy")
		}
		return prev.body, nil
	case StatusIMUsed:
		if prev == nil || resp.Header.Get(headerBase) != prev.etag {
			return nil, ErrBadDelta
		}
		d, _, err := codec.Decode(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
		}
		body, err := d.Apply(prev.body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
		}
		if got := etagOf(body); got != resp.Header.Get("ETag") {
			return nil, fmt.Errorf("%w: reconstructed etag %s != %s", ErrBadDelta, got, resp.Header.Get("ETag"))
		}
		c.store(url, resp.Header.Get("ETag"), body)
		return body, nil
	case http.StatusOK:
		c.store(url, resp.Header.Get("ETag"), payload)
		return payload, nil
	default:
		return nil, fmt.Errorf("httpdelta: unexpected status %s", resp.Status)
	}
}

func (c *Client) store(url, etag string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache[url] = &cached{etag: etag, body: body}
}
