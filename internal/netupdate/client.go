package netupdate

import (
	"bufio"
	"fmt"
	"io"
	"net"

	"ipdelta/internal/device"
)

// Result summarizes one update session from the device's perspective.
type Result struct {
	// UpToDate is true when the server had nothing newer.
	UpToDate bool
	// DeltaBytes is the size of the received delta payload.
	DeltaBytes int64
	// Resumed is true when the session continued an interrupted update.
	Resumed bool
}

// UpdateDevice runs one update session for dev over conn. On success the
// device's flash holds the server's current version. If the device had an
// interrupted update pending, the session asks for the same delta again and
// resumes it.
//
// If the connection or power fails mid-update, the device keeps its
// progress; calling UpdateDevice again with a fresh connection completes
// the update.
func UpdateDevice(conn net.Conn, dev *device.Device) (Result, error) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	var h hello
	if p, ok := dev.PendingUpdate(); ok {
		h = hello{
			Updating: true,
			ImageCRC: p.RefCRC,
			ImageLen: p.RefLen,
			Capacity: dev.FlashCapacity(),
		}
	} else {
		crc, err := dev.ImageCRC()
		if err != nil {
			return Result{}, err
		}
		h = hello{
			ImageCRC: crc,
			ImageLen: dev.ImageLen(),
			Capacity: dev.FlashCapacity(),
		}
	}
	if err := writeMsg(w, msgHello, encodeHello(h)); err != nil {
		return Result{}, err
	}
	if err := w.Flush(); err != nil {
		return Result{}, err
	}

	typ, n, err := readMsgHeader(r)
	if err != nil {
		return Result{}, err
	}
	switch typ {
	case msgUpToDate:
		return Result{UpToDate: true}, nil
	case msgError:
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return Result{}, err
		}
		return Result{}, fmt.Errorf("netupdate: server error: %s", payload)
	case msgDelta:
		// Stream the delta payload straight into the device.
		res := Result{DeltaBytes: n, Resumed: h.Updating}
		if err := dev.Apply(io.LimitReader(r, n)); err != nil {
			return res, err
		}
		crc, err := dev.ImageCRC()
		if err != nil {
			return res, err
		}
		if err := writeMsg(w, msgStatus, encodeStatus(status{OK: true, ImageCRC: crc})); err != nil {
			return res, err
		}
		return res, w.Flush()
	default:
		return Result{}, fmt.Errorf("%w: unexpected message %#x", ErrProtocol, typ)
	}
}
