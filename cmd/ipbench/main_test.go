package main

import "testing"

func TestRunQuickExperiments(t *testing.T) {
	// Each experiment flag on the small corpus; output goes to stdout.
	for _, args := range [][]string{
		{"-quick", "-table1"},
		{"-quick", "-timing"},
		{"-quick", "-fig2"},
		{"-quick", "-fig3"},
		{"-quick", "-transfer"},
		{"-quick", "-codewords"},
		{"-quick", "-policies"},
		{"-quick", "-strategies"},
		{"-quick", "-composition"},
		{"-quick", "-algorithms"},
		{"-quick", "-fleet"},
		{"-quick", "-scratch"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	// JSON mode must run cleanly for a couple of representative results.
	if err := run([]string{"-quick", "-json", "-fig3", "-policies"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCorpusDirErrors(t *testing.T) {
	if err := run([]string{"-corpus-dir", "/definitely/missing", "-table1"}); err == nil {
		t.Fatal("missing corpus dir accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
