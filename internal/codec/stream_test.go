package codec

import (
	"bytes"
	"io"
	"testing"

	"ipdelta/internal/delta"
)

func TestNextStreaming(t *testing.T) {
	d := orderedDelta()
	for _, f := range allFormats {
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := Encode(&buf, d, f); err != nil {
				t.Fatal(err)
			}
			dec, err := NewDecoder(&buf)
			if err != nil {
				t.Fatal(err)
			}
			var n, addBytes int
			for {
				c, payload, err := dec.NextStreaming()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				n++
				if c.Op == delta.OpAdd {
					if c.Data != nil {
						t.Fatal("streaming add carried materialized data")
					}
					if payload == nil {
						t.Fatal("no payload reader for add")
					}
					got, err := io.ReadAll(payload)
					if err != nil {
						t.Fatal(err)
					}
					if int64(len(got)) != c.Length {
						t.Fatalf("payload %d bytes, want %d", len(got), c.Length)
					}
					addBytes += len(got)
				} else if payload != nil {
					t.Fatal("copy command got a payload reader")
				}
			}
			if n == 0 || addBytes != 20 {
				t.Fatalf("streamed %d commands, %d add bytes", n, addBytes)
			}
		})
	}
}

func TestNextStreamingUnconsumedPayload(t *testing.T) {
	d := orderedDelta()
	var buf bytes.Buffer
	if _, err := Encode(&buf, d, FormatOffsets); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		c, _, err := dec.NextStreaming()
		if err != nil {
			t.Fatal(err)
		}
		if c.Op == delta.OpAdd {
			break // leave the payload unread
		}
	}
	if _, _, err := dec.NextStreaming(); err == nil {
		t.Fatal("decoder accepted Next with unconsumed payload")
	}
	if _, err := dec.Next(); err == nil {
		t.Fatal("Next accepted unconsumed payload")
	}
}

func TestPayloadReaderPartialReads(t *testing.T) {
	d := orderedDelta()
	var buf bytes.Buffer
	if _, err := Encode(&buf, d, FormatOffsets); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		c, payload, err := dec.NextStreaming()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if c.Op != delta.OpAdd {
			continue
		}
		// Drain one byte at a time.
		one := make([]byte, 1)
		var got []byte
		for {
			n, err := payload.Read(one)
			if n > 0 {
				got = append(got, one[0])
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if int64(len(got)) != c.Length {
			t.Fatalf("drained %d bytes, want %d", len(got), c.Length)
		}
	}
}
