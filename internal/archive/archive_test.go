package archive

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math/rand/v2"
	"testing"

	"ipdelta/internal/obs"
)

// testBlobs derives deterministic, compressible-ish blobs of varied size.
func testBlobs(rng *rand.Rand, count int) [][]byte {
	blobs := make([][]byte, count)
	for i := range blobs {
		b := make([]byte, 37+rng.IntN(300))
		for j := range b {
			b[j] = byte(rng.IntN(256))
		}
		blobs[i] = b
	}
	return blobs
}

func newTestArchive(t *testing.T, k, m int, opts ...Option) (*Archive, []*Node) {
	t.Helper()
	a, nodes, err := NewWithNodes(k, m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a, nodes
}

func TestArchiveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	a, _ := newTestArchive(t, 4, 2)
	blobs := testBlobs(rng, 8)
	for i, b := range blobs {
		if err := a.Put(uint64(i), b); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range blobs {
		got, err := a.Get(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("stripe %d mismatch", i)
		}
	}
	if rep := a.Scrub(); !rep.Clean() {
		t.Fatalf("fresh archive scrub dirty: %v", rep)
	}
	if _, err := a.Get(99); !errors.Is(err, ErrNoSuchStripe) {
		t.Fatalf("want ErrNoSuchStripe, got %v", err)
	}
}

// TestArchiveDegradedReadGrid is the archive-level acceptance property:
// for every (k, m) with k+m <= 16 and every failure count f <= m, killing
// f nodes still serves every blob byte-for-byte.
func TestArchiveDegradedReadGrid(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for k := 1; k <= 15; k++ {
		for m := 1; k+m <= 16; m++ {
			a, nodes := newTestArchive(t, k, m)
			blobs := testBlobs(rng, 3)
			for i, b := range blobs {
				if err := a.Put(uint64(i), b); err != nil {
					t.Fatal(err)
				}
			}
			// Kill a random f-subset of nodes for each f in 1..m.
			for f := 1; f <= m; f++ {
				killed := rng.Perm(k + m)[:f]
				for _, j := range killed {
					nodes[j].Kill()
				}
				for i, want := range blobs {
					got, err := a.Get(uint64(i))
					if err != nil {
						t.Fatalf("k=%d m=%d f=%d stripe %d: %v", k, m, f, i, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("k=%d m=%d f=%d stripe %d mismatch", k, m, f, i)
					}
				}
				for _, j := range killed {
					nodes[j].Revive()
				}
			}
			// m+1 dead nodes must fail loudly, never serve wrong bytes.
			for _, j := range rng.Perm(k + m)[: m+1 : m+1] {
				nodes[j].Kill()
			}
			if _, err := a.Get(0); !errors.Is(err, ErrUnrecoverable) {
				t.Fatalf("k=%d m=%d: want ErrUnrecoverable with %d dead, got %v", k, m, m+1, err)
			}
		}
	}
}

func TestArchiveScrubDetectsAndRepairRestores(t *testing.T) {
	seed := uint64(42)
	rng := rand.New(rand.NewPCG(seed, 3))
	reg := obs.NewRegistry()
	// m = 4 so the worst-case clustering of the four injected faults
	// (wipe + two bit-rots + one truncation on one stripe) stays within
	// the parity budget.
	a, nodes := newTestArchive(t, 4, 4, WithObserver(reg))
	blobs := testBlobs(rng, 10)
	for i, b := range blobs {
		if err := a.Put(uint64(i), b); err != nil {
			t.Fatal(err)
		}
	}

	// Inject silent damage: bit-rot on two nodes, a truncation, and one
	// node wiped entirely (replaced hardware).
	if _, ok := nodes[1].CorruptShard(rng); !ok {
		t.Fatal("no shard to corrupt")
	}
	if _, ok := nodes[6].CorruptShard(rng); !ok {
		t.Fatal("no shard to corrupt")
	}
	if _, ok := nodes[3].TruncateShard(rng); !ok {
		t.Fatal("no shard to truncate")
	}
	nodes[7].Wipe()

	rep := a.Scrub()
	if rep.Clean() {
		t.Fatalf("seed %d: scrub missed injected damage: %v", seed, rep)
	}
	if rep.Missing != len(blobs) {
		t.Errorf("seed %d: scrub found %d missing shards, want %d (wiped node)", seed, rep.Missing, len(blobs))
	}
	if rep.Corrupt != 3 {
		t.Errorf("seed %d: scrub found %d corrupt shards, want 3", seed, rep.Corrupt)
	}
	if rep.Unrecoverable != 0 {
		t.Errorf("seed %d: %d stripes unrecoverable", seed, rep.Unrecoverable)
	}

	fixed := a.Repair()
	if want := rep.Missing + rep.Corrupt; fixed.Repaired != want {
		t.Errorf("seed %d: repaired %d shards, want %d", seed, fixed.Repaired, want)
	}
	if fixed.Failed != 0 || fixed.Unrecoverable != 0 {
		t.Errorf("seed %d: repair failures: %v", seed, fixed)
	}
	if rep := a.Scrub(); !rep.Clean() {
		t.Fatalf("seed %d: post-repair scrub dirty: %v", seed, rep)
	}
	for i, want := range blobs {
		got, err := a.Get(uint64(i))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("seed %d: stripe %d after repair: err=%v", seed, i, err)
		}
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"ipdelta_archive_scrub_corrupt_total",
		"ipdelta_archive_scrub_missing_total",
		"ipdelta_archive_repaired_shards_total",
		"ipdelta_archive_reads_total",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s did not move", name)
		}
	}
}

func TestArchiveRepairWaitsForDeadNode(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 4))
	a, nodes := newTestArchive(t, 3, 2)
	blobs := testBlobs(rng, 4)
	for i, b := range blobs {
		if err := a.Put(uint64(i), b); err != nil {
			t.Fatal(err)
		}
	}
	nodes[0].Kill()
	rep := a.Repair()
	if rep.Repaired != 0 || rep.Failed != len(blobs) {
		t.Fatalf("repair against dead node: %v", rep)
	}
	// Degraded reads still work while the node is down.
	for i, want := range blobs {
		got, err := a.Get(uint64(i))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("degraded read %d: %v", i, err)
		}
	}
	// Replace the node (revive empty) and repair for real.
	nodes[0].Wipe()
	nodes[0].Revive()
	rep = a.Repair()
	if rep.Repaired != len(blobs) || rep.Failed != 0 {
		t.Fatalf("repair after revive: %v", rep)
	}
	if sc := a.Scrub(); !sc.Clean() {
		t.Fatalf("post-repair scrub dirty: %v", sc)
	}
}

func TestArchiveTransientFaults(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 5))
	a, nodes := newTestArchive(t, 4, 2)
	blobs := testBlobs(rng, 6)
	for i, b := range blobs {
		if err := a.Put(uint64(i), b); err != nil {
			t.Fatal(err)
		}
	}
	// Every third op on two nodes fails transiently; reads must still be
	// served (degraded via peers) because at most 2 shards drop per read.
	nodes[0].FailEveryOps(3)
	nodes[5].FailEveryOps(2)
	for round := 0; round < 3; round++ {
		for i, want := range blobs {
			got, err := a.Get(uint64(i))
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("round %d stripe %d: %v", round, i, err)
			}
		}
	}
}

func TestArchivePutToleratesUpToMFailures(t *testing.T) {
	a, nodes := newTestArchive(t, 2, 2)
	nodes[1].Kill()
	nodes[2].Kill()
	if err := a.Put(0, []byte("survives two dead nodes")); err != nil {
		t.Fatal(err)
	}
	got, err := a.Get(0)
	if err != nil || string(got) != "survives two dead nodes" {
		t.Fatalf("get after degraded put: %v", err)
	}
	nodes[3].Kill()
	if err := a.Put(1, []byte("three dead is too many")); err == nil {
		t.Fatal("want put error with m+1 nodes dead")
	}
	if _, err := a.Get(1); !errors.Is(err, ErrNoSuchStripe) {
		t.Fatalf("failed put must not record the stripe: %v", err)
	}
}

func TestArchiveBlobCRCCatchesCollusion(t *testing.T) {
	// If stripe metadata rots in a way per-shard CRCs cannot see (here:
	// simulated by overwriting a shard AND its recorded CRC), the final
	// blob CRC still refuses to serve wrong bytes.
	a, nodes := newTestArchive(t, 2, 1)
	if err := a.Put(0, []byte("payload payload payload")); err != nil {
		t.Fatal(err)
	}
	bad := bytes.Repeat([]byte{0xAA}, 12)
	if err := nodes[0].Put(ShardID{Stripe: 0, Index: 0}, bad); err != nil {
		t.Fatal(err)
	}
	a.stripes[0].shardCRC[0] = crc32.ChecksumIEEE(bad)
	if _, err := a.Get(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestArchiveManifestOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 6))
	a, nodes := newTestArchive(t, 3, 2)
	blobs := testBlobs(rng, 5)
	for i, b := range blobs {
		if err := a.Put(uint64(i), b); err != nil {
			t.Fatal(err)
		}
	}
	man := a.Manifest()
	reopened, err := Open(nodes, man)
	if err != nil {
		t.Fatal(err)
	}
	nodes[4].Kill() // reopened archives serve degraded reads too
	for i, want := range blobs {
		got, err := reopened.Get(uint64(i))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("reopened stripe %d: %v", i, err)
		}
	}
	man.Stripes[0].BlobLen = man.Stripes[0].ShardSize*3 + 1
	if _, err := Open(nodes, man); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile manifest: want ErrCorrupt, got %v", err)
	}
}

func TestNodeFaultPrimitives(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 7))
	n := NewNode(0)
	if _, ok := n.CorruptShard(rng); ok {
		t.Fatal("empty node corrupted something")
	}
	if _, ok := n.TruncateShard(rng); ok {
		t.Fatal("empty node truncated something")
	}
	id := ShardID{Stripe: 3, Index: 0}
	if err := n.Put(id, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	n.Kill()
	if !n.Down() {
		t.Fatal("killed node not down")
	}
	if _, err := n.Get(id); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("want ErrNodeDown, got %v", err)
	}
	if err := n.Put(id, nil); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("want ErrNodeDown, got %v", err)
	}
	n.Revive()
	if got, err := n.Get(id); err != nil || len(got) != 4 {
		t.Fatalf("killed node lost data across revive: %v", err)
	}
	// Mutating the returned copy must not touch the stored shard.
	got, _ := n.Get(id)
	got[0] = 99
	again, _ := n.Get(id)
	if again[0] == 99 {
		t.Fatal("Get aliases stored shard")
	}
	if _, ok := n.TruncateShard(rng); !ok {
		t.Fatal("truncate failed")
	}
	if b, _ := n.Get(id); len(b) >= 4 {
		t.Fatal("truncate did not shrink the shard")
	}
	n.Wipe()
	if n.Len() != 0 {
		t.Fatal("wipe left shards behind")
	}
}
