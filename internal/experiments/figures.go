package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
	"ipdelta/internal/stats"
)

// Fig2Row is one depth of the Figure 2 adversarial-tree experiment.
type Fig2Row struct {
	Depth  int
	Leaves int
	// Converted bytes (compression lost to cycle breaking) per policy and
	// for the globally optimal deletion (the root).
	LMBytes, CTBytes, OptimalBytes int64
	// LMOverOptimal is the cost ratio showing locally-minimum growing
	// arbitrarily worse with depth.
	LMOverOptimal float64
}

// Fig2Result drives the Figure 2 adversarial construction end to end: the
// delta is built as real commands, converted under both policies, and the
// bytes converted to adds are compared against the optimal (root-only)
// deletion.
type Fig2Result struct {
	LeafLen int
	Rows    []Fig2Row
}

// RunFig2 evaluates the adversarial tree for each depth.
func RunFig2(depths []int, leafLen int) (*Fig2Result, error) {
	res := &Fig2Result{LeafLen: leafLen}
	for _, depth := range depths {
		d := inplace.AdversarialDelta(depth, leafLen)
		ref := make([]byte, d.RefLen)
		rng := rand.New(rand.NewSource(int64(depth)))
		rng.Read(ref)

		_, lm, err := inplace.Convert(d, ref, inplace.WithPolicy(graph.LocallyMinimum{}))
		if err != nil {
			return nil, fmt.Errorf("fig2 depth %d: %w", depth, err)
		}
		_, ct, err := inplace.Convert(d, ref, inplace.WithPolicy(graph.ConstantTime{}))
		if err != nil {
			return nil, fmt.Errorf("fig2 depth %d: %w", depth, err)
		}
		// By construction the optimal deletion is the root alone, whose
		// copy carries 2·leafLen bytes (verified against the exhaustive
		// search in the package tests).
		optimal := int64(2 * leafLen)
		row := Fig2Row{
			Depth:        depth,
			Leaves:       1 << depth,
			LMBytes:      lm.ConvertedBytes,
			CTBytes:      ct.ConvertedBytes,
			OptimalBytes: optimal,
		}
		row.LMOverOptimal = float64(row.LMBytes) / float64(optimal)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the Figure 2 experiment.
func (r *Fig2Result) Render(w io.Writer) error {
	t := stats.Table{
		Title:   fmt.Sprintf("Figure 2 — adversarial CRWI tree, locally-minimum vs optimal (leaf copies of %dB)", r.LeafLen),
		Headers: []string{"depth", "leaves", "LM bytes converted", "CT bytes converted", "optimal bytes", "LM/optimal"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.Depth),
			fmt.Sprintf("%d", row.Leaves),
			fmt.Sprintf("%d", row.LMBytes),
			fmt.Sprintf("%d", row.CTBytes),
			fmt.Sprintf("%d", row.OptimalBytes),
			fmt.Sprintf("%.1f×", row.LMOverOptimal),
		)
	}
	return t.Render(w)
}

// Fig3Row is one file size of the Figure 3 / Lemma 1 edge-bound experiment.
type Fig3Row struct {
	B      int   // block count √L
	L      int64 // file length
	Copies int   // |C| = 2b−1
	Edges  int   // CRWI digraph edges
	// EdgesOverC2 shows Θ(|C|²) growth; EdgesOverL shows the Lemma 1 bound
	// edges ≤ L.
	EdgesOverC2 float64
	EdgesOverL  float64
	BoundOK     bool
}

// Fig3Result drives the quadratic-edge construction of §6.
type Fig3Result struct {
	Rows []Fig3Row
}

// RunFig3 builds the Figure 3 delta for each block count and measures the
// CRWI digraph the converter constructs.
func RunFig3(blockCounts []int) (*Fig3Result, error) {
	res := &Fig3Result{}
	for _, b := range blockCounts {
		d := inplace.QuadraticDelta(b)
		ref := make([]byte, d.RefLen)
		_, st, err := inplace.Convert(d, ref)
		if err != nil {
			return nil, fmt.Errorf("fig3 b=%d: %w", b, err)
		}
		c := float64(st.Copies)
		row := Fig3Row{
			B:           b,
			L:           d.VersionLen,
			Copies:      st.Copies,
			Edges:       st.Edges,
			EdgesOverC2: float64(st.Edges) / (c * c),
			EdgesOverL:  float64(st.Edges) / float64(d.VersionLen),
			BoundOK:     int64(st.Edges) <= d.VersionLen,
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the Figure 3 experiment.
func (r *Fig3Result) Render(w io.Writer) error {
	t := stats.Table{
		Title:   "Figure 3 / §6 — CRWI digraph size: Θ(|C|²) edges, bounded by L (Lemma 1)",
		Headers: []string{"b=√L", "L", "copies |C|", "edges", "edges/|C|²", "edges/L", "≤L"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.B),
			fmt.Sprintf("%d", row.L),
			fmt.Sprintf("%d", row.Copies),
			fmt.Sprintf("%d", row.Edges),
			fmt.Sprintf("%.3f", row.EdgesOverC2),
			fmt.Sprintf("%.3f", row.EdgesOverL),
			fmt.Sprintf("%v", row.BoundOK),
		)
	}
	return t.Render(w)
}
