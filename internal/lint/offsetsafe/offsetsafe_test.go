package offsetsafe_test

import (
	"testing"

	"ipdelta/internal/lint/analysistest"
	"ipdelta/internal/lint/offsetsafe"
)

func TestOffsetsafe(t *testing.T) {
	// "codec" is in the analyzer's package scope and carries the positive
	// and negative cases; "other" repeats the violations outside the scope
	// and must produce no diagnostics.
	for _, pkg := range []string{"codec", "other"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, offsetsafe.Analyzer, pkg)
		})
	}
}
