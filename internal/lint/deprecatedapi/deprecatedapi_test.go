package deprecatedapi_test

import (
	"testing"

	"ipdelta/internal/lint/analysistest"
	"ipdelta/internal/lint/deprecatedapi"
)

func TestDeprecatedAPI(t *testing.T) {
	// RunWithFixes also applies the shim → options rewrites and compares
	// the result to ipdelta.go.golden.
	analysistest.RunWithFixes(t, deprecatedapi.Analyzer, "ipdelta")
}

func TestDeprecatedNetupdateAPI(t *testing.T) {
	// The v1 single-stream session surface: UpdateDevice, RunSession with
	// SessionOptions, NewRunner with RunnerConfig. Keyed legacy-config
	// literals are rewritten field by field into With* options and checked
	// against netupdate.go.golden.
	analysistest.RunWithFixes(t, deprecatedapi.Analyzer, "netupdate")
}
