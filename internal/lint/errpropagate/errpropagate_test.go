package errpropagate_test

import (
	"testing"

	"ipdelta/internal/lint/analysistest"
	"ipdelta/internal/lint/errpropagate"
)

func TestErrpropagate(t *testing.T) {
	for _, pkg := range []string{"codec"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, errpropagate.Analyzer, pkg)
		})
	}
}
