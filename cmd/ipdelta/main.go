// Command ipdelta is the toolchain for in-place reconstructible delta
// files: generate deltas, convert them for in-place application, inspect,
// verify, and apply them.
//
// Usage:
//
//	ipdelta diff    -ref OLD -version NEW -out FILE [-algo auto|linear|...] [-format F] [-inplace] [-policy P]
//	ipdelta convert -ref OLD -delta IN -out FILE [-policy P] [-format F] [-metrics]
//	ipdelta patch   -ref OLD -delta FILE -out NEW [-inplace]
//	ipdelta info    -delta FILE
//	ipdelta verify  -ref OLD -delta FILE -version NEW
//	ipdelta compose -first A2B -second B2C -out A2C [-format F]
//	ipdelta invert  -ref OLD -delta FILE -out FILE [-format F]
//	ipdelta chunk   [-min N] [-avg N] [-max N] [-out RECIPE] FILE...
//
// Formats: ordered, offsets, legacy-ordered, legacy-offsets, compact.
// Policies: locally-minimum (default), constant-time.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"

	"ipdelta/internal/codec"
	"ipdelta/internal/delta"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
	"ipdelta/internal/obs"
	"ipdelta/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ipdelta:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: ipdelta {diff|convert|patch|info|verify|compose|invert|chunk} [flags]")
	}
	switch args[0] {
	case "diff":
		return cmdDiff(args[1:])
	case "convert":
		return cmdConvert(args[1:])
	case "patch":
		return cmdPatch(args[1:])
	case "info":
		return cmdInfo(args[1:])
	case "verify":
		return cmdVerify(args[1:])
	case "compose":
		return cmdCompose(args[1:])
	case "invert":
		return cmdInvert(args[1:])
	case "chunk":
		return cmdChunk(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	refPath := fs.String("ref", "", "reference (old) file")
	versionPath := fs.String("version", "", "version (new) file")
	outPath := fs.String("out", "", "output delta file")
	algoName := fs.String("algo", "auto", "differencing algorithm: auto, linear, parallel, greedy, null")
	formatName := fs.String("format", "", "wire format (default: ordered, or compact with -inplace)")
	inPlace := fs.Bool("inplace", false, "convert the delta for in-place reconstruction")
	policyName := fs.String("policy", "locally-minimum", "cycle-breaking policy")
	scratch := fs.Int64("scratch", 0, "device scratch budget in bytes (implies -inplace, scratch format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" || *versionPath == "" || *outPath == "" {
		return errors.New("diff: -ref, -version and -out are required")
	}
	if *scratch > 0 {
		*inPlace = true
	}
	ref, err := os.ReadFile(*refPath)
	if err != nil {
		return err
	}
	version, err := os.ReadFile(*versionPath)
	if err != nil {
		return err
	}
	algo, err := diff.ByName(*algoName)
	if err != nil {
		return err
	}
	d, err := algo.Diff(ref, version)
	if err != nil {
		return err
	}
	format := codec.FormatOrdered
	if *inPlace {
		format = codec.FormatCompact
		policy, err := graph.PolicyByName(*policyName)
		if err != nil {
			return err
		}
		opts := []inplace.Option{inplace.WithPolicy(policy)}
		if *scratch > 0 {
			opts = append(opts, inplace.WithScratchBudget(*scratch))
			format = codec.FormatScratch
		}
		d, _, err = inplace.Convert(d, ref, opts...)
		if err != nil {
			return err
		}
	}
	if *formatName != "" {
		format, err = codec.ParseFormat(*formatName)
		if err != nil {
			return err
		}
	}
	if *inPlace && !format.InPlaceCapable() {
		return fmt.Errorf("format %v cannot carry an in-place delta", format)
	}
	n, err := writeDelta(*outPath, d, format)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s, %s): %s -> %s, %.1f%% of version size\n",
		*outPath, format, algo.Name(), stats.Bytes(int64(len(version))), stats.Bytes(n),
		100*float64(n)/float64(max64(1, int64(len(version)))))
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	refPath := fs.String("ref", "", "reference (old) file")
	deltaPath := fs.String("delta", "", "input delta file")
	outPath := fs.String("out", "", "output delta file")
	policyName := fs.String("policy", "locally-minimum", "cycle-breaking policy")
	formatName := fs.String("format", "compact", "output wire format")
	metrics := fs.Bool("metrics", false, "print a metrics snapshot (stage timings, counters) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" || *deltaPath == "" || *outPath == "" {
		return errors.New("convert: -ref, -delta and -out are required")
	}
	ref, err := os.ReadFile(*refPath)
	if err != nil {
		return err
	}
	d, _, err := readDelta(*deltaPath)
	if err != nil {
		return err
	}
	policy, err := graph.PolicyByName(*policyName)
	if err != nil {
		return err
	}
	format, err := codec.ParseFormat(*formatName)
	if err != nil {
		return err
	}
	if !format.InPlaceCapable() {
		return fmt.Errorf("format %v cannot carry an in-place delta", format)
	}
	opts := []inplace.Option{inplace.WithPolicy(policy)}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		opts = append(opts, inplace.WithObserver(reg))
	}
	out, st, err := inplace.Convert(d, ref, opts...)
	if err != nil {
		return err
	}
	n, err := writeDelta(*outPath, out, format)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s, %s): %d copies, %d adds, %d edges, %d cycles broken, %d copies converted (%s)\n",
		*outPath, stats.Bytes(n), format, st.Copies, st.Adds, st.Edges, st.CyclesBroken,
		st.ConvertedCopies, stats.Bytes(st.ConvertedBytes))
	if reg != nil {
		fmt.Fprint(os.Stderr, reg.Snapshot().Text())
	}
	return nil
}

func cmdPatch(args []string) error {
	fs := flag.NewFlagSet("patch", flag.ContinueOnError)
	refPath := fs.String("ref", "", "reference (old) file")
	deltaPath := fs.String("delta", "", "delta file")
	outPath := fs.String("out", "", "output version file")
	inPlace := fs.Bool("inplace", false, "reconstruct in a single buffer (delta must be in-place safe)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" || *deltaPath == "" || *outPath == "" {
		return errors.New("patch: -ref, -delta and -out are required")
	}
	ref, err := os.ReadFile(*refPath)
	if err != nil {
		return err
	}
	d, _, err := readDelta(*deltaPath)
	if err != nil {
		return err
	}
	var version []byte
	if *inPlace {
		if err := d.CheckInPlace(); err != nil {
			return fmt.Errorf("delta is not in-place safe: %w", err)
		}
		buf := make([]byte, d.InPlaceBufLen())
		copy(buf, ref)
		if err := d.ApplyInPlace(buf); err != nil {
			return err
		}
		version = buf[:d.VersionLen]
	} else {
		version, err = d.Apply(ref)
		if err != nil {
			return err
		}
	}
	if err := os.WriteFile(*outPath, version, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s)\n", *outPath, stats.Bytes(int64(len(version))))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	deltaPath := fs.String("delta", "", "delta file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *deltaPath == "" {
		return errors.New("info: -delta is required")
	}
	d, format, err := readDelta(*deltaPath)
	if err != nil {
		return err
	}
	fmt.Printf("format:      %s (in-place capable: %v)\n", format, format.InPlaceCapable())
	fmt.Printf("reference:   %s\n", stats.Bytes(d.RefLen))
	fmt.Printf("version:     %s\n", stats.Bytes(d.VersionLen))
	fmt.Printf("commands:    %d (%d copies, %d adds)\n", len(d.Commands), d.NumCopies(), d.NumAdds())
	fmt.Printf("copy bytes:  %s\n", stats.Bytes(d.CopiedBytes()))
	fmt.Printf("add bytes:   %s\n", stats.Bytes(d.AddedBytes()))
	if err := d.Summarize().Render(os.Stdout); err != nil {
		return err
	}
	if err := d.CheckInPlace(); err != nil {
		fmt.Printf("in-place:    NOT safe (%v)\n", err)
	} else {
		fmt.Printf("in-place:    safe (Equation 2 holds)\n")
	}
	a, err := inplace.Analyze(d)
	if err != nil {
		return err
	}
	fmt.Printf("CRWI graph:  %d edges, %d cyclic components (largest %d, %d copies entangled)\n",
		a.Edges, a.CyclicComponents, a.LargestComponent, a.VerticesInCycles)
	switch {
	case a.AlreadySafe:
		// nothing further to do
	case a.ReorderSufficient:
		fmt.Printf("conversion:  permutation alone suffices (no data conversion needed)\n")
	default:
		fmt.Printf("conversion:  needs ≥%s as adds; locally-minimum would convert %s\n",
			stats.Bytes(a.MinConversionBytes), stats.Bytes(a.LocallyMinimumBytes))
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	refPath := fs.String("ref", "", "reference (old) file")
	deltaPath := fs.String("delta", "", "delta file")
	versionPath := fs.String("version", "", "expected version file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" || *deltaPath == "" || *versionPath == "" {
		return errors.New("verify: -ref, -delta and -version are required")
	}
	ref, err := os.ReadFile(*refPath)
	if err != nil {
		return err
	}
	want, err := os.ReadFile(*versionPath)
	if err != nil {
		return err
	}
	d, _, err := readDelta(*deltaPath)
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("delta invalid: %w", err)
	}
	got, err := d.Apply(ref)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return errors.New("verify: delta does not reproduce the version file")
	}
	fmt.Println("ok: delta reproduces the version file")
	if err := d.CheckInPlace(); err == nil {
		buf := make([]byte, d.InPlaceBufLen())
		copy(buf, ref)
		if err := d.ApplyInPlace(buf); err != nil {
			return err
		}
		if !bytes.Equal(buf[:d.VersionLen], want) {
			return errors.New("verify: in-place application diverged")
		}
		fmt.Println("ok: in-place application reproduces the version file")
	} else {
		fmt.Println("note: delta is not in-place safe; skipped in-place check")
	}
	return nil
}

func cmdCompose(args []string) error {
	fs := flag.NewFlagSet("compose", flag.ContinueOnError)
	firstPath := fs.String("first", "", "delta A→B")
	secondPath := fs.String("second", "", "delta B→C")
	outPath := fs.String("out", "", "output delta A→C")
	formatName := fs.String("format", "ordered", "output wire format")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *firstPath == "" || *secondPath == "" || *outPath == "" {
		return errors.New("compose: -first, -second and -out are required")
	}
	first, _, err := readDelta(*firstPath)
	if err != nil {
		return err
	}
	second, _, err := readDelta(*secondPath)
	if err != nil {
		return err
	}
	format, err := codec.ParseFormat(*formatName)
	if err != nil {
		return err
	}
	out, err := delta.Compose(first, second)
	if err != nil {
		return err
	}
	n, err := writeDelta(*outPath, out, format)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s, %s): %d commands\n", *outPath, stats.Bytes(n), format, len(out.Commands))
	return nil
}

func cmdInvert(args []string) error {
	fs := flag.NewFlagSet("invert", flag.ContinueOnError)
	refPath := fs.String("ref", "", "reference (old) file of the input delta")
	deltaPath := fs.String("delta", "", "input delta (old → new)")
	outPath := fs.String("out", "", "output reverse delta (new → old)")
	formatName := fs.String("format", "ordered", "output wire format")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" || *deltaPath == "" || *outPath == "" {
		return errors.New("invert: -ref, -delta and -out are required")
	}
	ref, err := os.ReadFile(*refPath)
	if err != nil {
		return err
	}
	d, _, err := readDelta(*deltaPath)
	if err != nil {
		return err
	}
	format, err := codec.ParseFormat(*formatName)
	if err != nil {
		return err
	}
	inv, err := delta.Invert(d, ref)
	if err != nil {
		return err
	}
	n, err := writeDelta(*outPath, inv, format)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s, %s): reverse delta, %d commands\n", *outPath, stats.Bytes(n), format, len(inv.Commands))
	return nil
}

func readDelta(path string) (*delta.Delta, codec.Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return codec.Decode(f)
}

func writeDelta(path string, d *delta.Delta, format codec.Format) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := codec.Encode(f, d, format)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
