package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total"); again != c {
		t.Fatalf("Counter is not get-or-create")
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", SizeBuckets).Observe(1)
	r.Stage("d").Start().End()
	r.SetSink(func(SpanEvent) {})
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var c *Counter
	c.Add(1)
	var h *Histogram
	h.Observe(1)
	var g *Gauge
	g.Set(1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_bytes", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["h_bytes"]
	if snap.Count != 6 || snap.Sum != 1+10+11+100+101+5000 {
		t.Fatalf("count/sum = %d/%d", snap.Count, snap.Sum)
	}
	wantCounts := []int64{2, 2, 2} // ≤10, ≤100, overflow
	for i, b := range snap.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d count = %d, want %d (%+v)", i, b.Count, wantCounts[i], snap.Buckets)
		}
	}
	if !snap.Buckets[2].Inf {
		t.Fatalf("last bucket should be the overflow bucket")
	}
}

func TestStageAndSink(t *testing.T) {
	r := NewRegistry()
	var events []SpanEvent
	r.SetSink(func(e SpanEvent) { events = append(events, e) })
	st := r.Stage("stage_nanos")
	sp := st.Start()
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span duration = %v", d)
	}
	if len(events) != 1 || events[0].Name != "stage_nanos" || events[0].Duration != d {
		t.Fatalf("sink events = %+v", events)
	}
	if got := r.Snapshot().Histograms["stage_nanos"].Count; got != 1 {
		t.Fatalf("stage histogram count = %d, want 1", got)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	h := r.Histogram("h_nanos", DurationBuckets)
	st := r.Stage("s_nanos")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(3)
		h.Observe(12345)
		st.Start().End()
	})
	if allocs != 0 {
		t.Fatalf("hot-path metric ops allocate %.1f times per run, want 0", allocs)
	}
}

func TestTextRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("g").Set(9)
	h := r.Histogram("lat_nanos{policy=\"lm\"}", []int64{100})
	h.Observe(50)
	h.Observe(500)
	text := r.Snapshot().Text()
	for _, want := range []string{
		"a_total 3\n",
		"g 9\n",
		`lat_nanos_bucket{policy="lm",le="100"} 1`,
		`lat_nanos_bucket{policy="lm",le="+Inf"} 2`,
		`lat_nanos_sum{policy="lm"} 550`,
		`lat_nanos_count{policy="lm"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, text)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total").Add(2)
	r.Histogram("lat_nanos", DurationBuckets).Observe(1500)

	// Plain text by default.
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "req_total 2") {
		t.Fatalf("text scrape: code=%d body=%q", rec.Code, rec.Body.String())
	}

	// JSON on request.
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json scrape: %v\n%s", err, rec.Body.String())
	}
	if snap.Counters["req_total"] != 2 {
		t.Fatalf("json counters = %+v", snap.Counters)
	}
	if h, ok := snap.Histograms["lat_nanos"]; !ok || h.Count != 1 {
		t.Fatalf("json histograms = %+v", snap.Histograms)
	}

	// Mutations rejected.
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestNopLogger(t *testing.T) {
	// Must not panic or write anywhere.
	NopLogger().Info("hidden", "k", "v")
	if OrNop(nil) == nil {
		t.Fatal("OrNop(nil) returned nil")
	}
}
