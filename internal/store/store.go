// Package store implements delta-chain version storage in the tradition of
// the systems the paper builds on (SCCS/RCS-style version stores and
// delta-compressed backup): a full base image plus one delta per
// subsequent release. Any version can be materialized, and — via delta
// composition — a single direct delta can be produced from any stored
// version to the newest one, ready for in-place conversion and device
// distribution, without materializing the intermediate versions.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ipdelta/internal/codec"
	"ipdelta/internal/delta"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
)

// Errors reported by the store.
var (
	ErrNoSuchVersion = errors.New("store: no such version")
	ErrCorrupt       = errors.New("store: corrupt container")
)

// release is one stored version: its identity and the delta from the
// previous version (nil for the base).
type release struct {
	crc    uint32
	length int64
	d      *delta.Delta // from release k-1 to k; nil for k == 0
}

// Store holds a release history as base + delta chain.
type Store struct {
	base     []byte
	releases []release
	algo     diff.Algorithm
}

// Option customizes a Store.
type Option func(*Store)

// WithAlgorithm selects the differencing algorithm used by AppendVersion
// (default linear).
func WithAlgorithm(a diff.Algorithm) Option {
	return func(s *Store) { s.algo = a }
}

// New creates a store whose first version is base.
func New(base []byte, opts ...Option) *Store {
	s := &Store{
		base: append([]byte(nil), base...),
		algo: diff.NewLinear(),
	}
	for _, o := range opts {
		o(s)
	}
	s.releases = []release{{crc: crc32.ChecksumIEEE(base), length: int64(len(base))}}
	return s
}

// NumVersions returns how many versions the store holds.
func (s *Store) NumVersions() int { return len(s.releases) }

// AppendVersion stores a new head version as a delta against the current
// head and returns its index.
func (s *Store) AppendVersion(version []byte) (int, error) {
	head, err := s.Version(len(s.releases) - 1)
	if err != nil {
		return 0, err
	}
	d, err := s.algo.Diff(head, version)
	if err != nil {
		return 0, fmt.Errorf("store append: %w", err)
	}
	s.releases = append(s.releases, release{
		crc:    crc32.ChecksumIEEE(version),
		length: int64(len(version)),
		d:      d,
	})
	return len(s.releases) - 1, nil
}

// Version materializes version i by applying the delta chain.
func (s *Store) Version(i int) ([]byte, error) {
	if i < 0 || i >= len(s.releases) {
		return nil, fmt.Errorf("%w: %d of %d", ErrNoSuchVersion, i, len(s.releases))
	}
	cur := append([]byte(nil), s.base...)
	for k := 1; k <= i; k++ {
		next, err := s.releases[k].d.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("store version %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}

// CRC returns the stored identity of version i.
func (s *Store) CRC(i int) (uint32, int64, error) {
	if i < 0 || i >= len(s.releases) {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrNoSuchVersion, i, len(s.releases))
	}
	return s.releases[i].crc, s.releases[i].length, nil
}

// Lookup finds the version index with the given identity.
func (s *Store) Lookup(crc uint32, length int64) (int, bool) {
	for k, r := range s.releases {
		if r.crc == crc && r.length == length {
			return k, true
		}
	}
	return 0, false
}

// DeltaBetween returns a single delta from version i to version j (i < j)
// by composing the stored chain — no intermediate version is materialized.
func (s *Store) DeltaBetween(i, j int) (*delta.Delta, error) {
	if i < 0 || j >= len(s.releases) || i > j {
		return nil, fmt.Errorf("%w: %d..%d of %d", ErrNoSuchVersion, i, j, len(s.releases))
	}
	if i == j {
		// Identity delta.
		id := &delta.Delta{RefLen: s.releases[i].length, VersionLen: s.releases[i].length}
		if id.RefLen > 0 {
			id.Commands = []delta.Command{delta.NewCopy(0, 0, id.RefLen)}
		}
		return id, nil
	}
	chain := make([]*delta.Delta, 0, j-i)
	for k := i + 1; k <= j; k++ {
		chain = append(chain, s.releases[k].d)
	}
	return delta.ComposeChain(chain...)
}

// InPlaceDeltaTo returns a direct, in-place reconstructible delta from
// version i to the newest version, composed from the chain and converted
// with the given policy.
func (s *Store) InPlaceDeltaTo(i int, policy graph.Policy) (*delta.Delta, *inplace.Stats, error) {
	head := len(s.releases) - 1
	d, err := s.DeltaBetween(i, head)
	if err != nil {
		return nil, nil, err
	}
	ref, err := s.Version(i)
	if err != nil {
		return nil, nil, err
	}
	return inplace.Convert(d, ref, inplace.WithPolicy(policy))
}

// RollbackDelta returns an in-place reconstructible delta from the newest
// version back to version i — inversion of the composed forward chain,
// converted for in-place application. Devices use it to downgrade without
// the server storing backward deltas.
func (s *Store) RollbackDelta(i int, policy graph.Policy) (*delta.Delta, *inplace.Stats, error) {
	head := len(s.releases) - 1
	forward, err := s.DeltaBetween(i, head)
	if err != nil {
		return nil, nil, err
	}
	old, err := s.Version(i)
	if err != nil {
		return nil, nil, err
	}
	backward, err := delta.Invert(forward, old)
	if err != nil {
		return nil, nil, err
	}
	cur, err := s.Version(head)
	if err != nil {
		return nil, nil, err
	}
	return inplace.Convert(backward, cur, inplace.WithPolicy(policy))
}

// StorageBytes returns the encoded size of the container: the base plus
// every stored delta in the ordered wire format — the space a delta-chain
// store saves over full copies.
func (s *Store) StorageBytes() (int64, error) {
	total := int64(len(s.base))
	for _, r := range s.releases[1:] {
		n, err := codec.EncodedSize(r.d, codec.FormatOrdered)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// FullBytes returns the total size of all versions stored as full copies,
// for comparison against StorageBytes.
func (s *Store) FullBytes() int64 {
	var total int64
	for _, r := range s.releases {
		total += r.length
	}
	return total
}

// container framing for Save/Load.
var storeMagic = [4]byte{'I', 'P', 'S', 'T'}

// Save serializes the store: magic, version count, base image, then each
// delta in the ordered wire format.
func (s *Store) Save() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(storeMagic[:])
	writeUvarint(&buf, uint64(len(s.releases)))
	writeUvarint(&buf, uint64(len(s.base)))
	buf.Write(s.base)
	for _, r := range s.releases[1:] {
		// Length-prefix each delta: the codec decoder buffers its reader,
		// so deltas must be isolated when decoding from one stream.
		var enc bytes.Buffer
		if _, err := codec.Encode(&enc, r.d, codec.FormatOrdered); err != nil {
			return nil, err
		}
		writeUvarint(&buf, uint64(enc.Len()))
		buf.Write(enc.Bytes())
	}
	return buf.Bytes(), nil
}

// Load restores a store serialized by Save.
func Load(data []byte, opts ...Option) (*Store, error) {
	r := bytes.NewReader(data)
	var m [4]byte
	if _, err := r.Read(m[:]); err != nil || m != storeMagic {
		return nil, ErrCorrupt
	}
	count, err := binary.ReadUvarint(r)
	if err != nil || count == 0 {
		return nil, ErrCorrupt
	}
	baseLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, ErrCorrupt
	}
	base := make([]byte, baseLen)
	if _, err := io.ReadFull(r, base); err != nil {
		return nil, ErrCorrupt
	}
	s := New(base, opts...)
	cur := base
	for k := uint64(1); k < count; k++ {
		encLen, err := binary.ReadUvarint(r)
		if err != nil || encLen > uint64(r.Len()) {
			return nil, fmt.Errorf("%w: delta %d length", ErrCorrupt, k)
		}
		enc := make([]byte, encLen)
		if _, err := io.ReadFull(r, enc); err != nil {
			return nil, fmt.Errorf("%w: delta %d truncated", ErrCorrupt, k)
		}
		d, _, err := codec.Decode(bytes.NewReader(enc))
		if err != nil {
			return nil, fmt.Errorf("%w: delta %d: %v", ErrCorrupt, k, err)
		}
		next, err := d.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("%w: delta %d does not apply: %v", ErrCorrupt, k, err)
		}
		s.releases = append(s.releases, release{
			crc:    crc32.ChecksumIEEE(next),
			length: int64(len(next)),
			d:      d,
		})
		cur = next
	}
	return s, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}
