// Package obs is the stdlib-only observability layer: atomic counters,
// gauges, bounded-bucket histograms, and a lightweight stage-timer (span)
// API, aggregated by a Registry that serves Prometheus-style plain-text
// and JSON snapshots over HTTP.
//
// The design target is the conversion pipeline's zero-allocation
// contract: metric handles are resolved once, at component construction
// (Registry.Counter / Histogram / Stage are get-or-create and take a
// lock), and every per-event operation after that — Counter.Add,
// Histogram.Observe, Stage.Start/Span.End — is lock-free, map-free and
// allocation-free. Components guard instrumentation behind a nil check on
// their pre-resolved handle struct, so an unobserved hot path pays
// nothing at all.
//
// Metric naming follows the Prometheus conventions the rest of the
// ecosystem expects: `ipdelta_<component>_<what>_total` for counters,
// `..._nanos` / `..._bytes` histograms with the unit suffix, and a fixed
// label, if any, baked into the name at construction time (for example
// `ipdelta_convert_cycles_broken_total{policy="locally-minimum"}`), so
// the hot path never formats strings.
package obs

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver (no-op), so
// call sites can keep unconditional handles.
//
//ipvet:allocfree
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
//
//ipvet:allocfree
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on nil).
//
//ipvet:allocfree
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value: set, adjusted, and snapshotted.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value. Safe on a nil receiver.
//
//ipvet:allocfree
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (negative to decrease).
//
//ipvet:allocfree
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value (0 on nil).
//
//ipvet:allocfree
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into a fixed set of upper-bound buckets
// plus an overflow bucket, tracking the total count and sum. Bounds are
// immutable after construction; Observe is a short linear scan (bucket
// layouts stay under ~16 entries), lock-free and allocation-free.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64
	count  atomic.Int64
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Safe on a nil receiver (no-op).
//
//ipvet:allocfree
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
//
//ipvet:allocfree
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
//
//ipvet:allocfree
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Standard bucket layouts. DurationBuckets covers 1µs–16s in powers of
// four (nanosecond values); SizeBuckets covers 64B–64MiB in powers of
// four. Both are documented in DESIGN.md §9 and must not be reordered:
// dashboards key on the bucket bounds.
var (
	DurationBuckets = []int64{
		1_000, 4_000, 16_000, 64_000, 256_000, // 1µs .. 256µs
		1_000_000, 4_000_000, 16_000_000, 64_000_000, 256_000_000, // 1ms .. 256ms
		1_000_000_000, 4_000_000_000, 16_000_000_000, // 1s .. 16s
	}
	SizeBuckets = []int64{
		64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
		256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
	}
)

// SpanEvent is one completed stage timing, delivered to the registry's
// optional sink callback.
type SpanEvent struct {
	// Name is the stage's histogram name.
	Name string
	// Start is when the span began.
	Start time.Time
	// Duration is the measured elapsed time.
	Duration time.Duration
}

// Stage is a pre-resolved handle for timing one pipeline stage: Start
// returns a Span whose End records the elapsed nanoseconds into the
// stage's histogram and forwards a SpanEvent to the registry sink, if
// one is set. Stage and Span are value types; a Start/End pair performs
// no heap allocations.
type Stage struct {
	reg  *Registry
	name string
	hist *Histogram
}

// Start begins timing. The zero Stage is safe: End then does nothing.
//
//ipvet:allocfree
func (s Stage) Start() Span { return Span{stage: s, t0: time.Now()} }

// Span is an in-flight stage timing.
type Span struct {
	stage Stage
	t0    time.Time
}

// End records the elapsed time and returns it.
//
//ipvet:allocfree
func (sp Span) End() time.Duration {
	d := time.Since(sp.t0)
	sp.stage.hist.Observe(int64(d))
	if r := sp.stage.reg; r != nil {
		r.emitSpan(sp.stage.name, sp.t0, d)
	}
	return d
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is accepted everywhere a registry is
// optional: resolving handles from it yields nil handles whose methods
// no-op.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram

	sink atomic.Value // of sinkFunc
}

// sinkFunc wraps the callback so atomic.Value sees one concrete type.
type sinkFunc func(SpanEvent)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// SetSink installs a callback invoked synchronously for every completed
// span. The callback must be fast and must not block; nil removes it.
func (r *Registry) SetSink(f func(SpanEvent)) {
	if r == nil {
		return
	}
	r.sink.Store(sinkFunc(f))
}

// emitSpan forwards a completed span to the sink, if any.
//
//ipvet:allocfree
func (r *Registry) emitSpan(name string, start time.Time, d time.Duration) {
	if f, ok := r.sink.Load().(sinkFunc); ok && f != nil {
		f(SpanEvent{Name: name, Start: start, Duration: d})
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry. Call at construction time, not per event.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Stage returns a stage timer recording into the named duration
// histogram (DurationBuckets). The zero Stage (from a nil registry) is
// safe to Start and End.
func (r *Registry) Stage(name string) Stage {
	if r == nil {
		return Stage{}
	}
	return Stage{reg: r, name: name, hist: r.Histogram(name, DurationBuckets)}
}

// BucketCount is one histogram bucket in a snapshot. Le is the
// inclusive upper bound; the overflow bucket has Inf set.
type BucketCount struct {
	Le    int64 `json:"le"`
	Inf   bool  `json:"inf,omitempty"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric, for tests, the JSON
// endpoint, and bench-baseline emission.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. Values are read with
// atomic loads; a snapshot taken concurrently with updates is internally
// consistent per metric, not across metrics. Nil registries snapshot
// empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		hs.Buckets = make([]BucketCount, len(h.counts))
		for i := range h.counts {
			b := BucketCount{Count: h.counts[i].Load()}
			if i < len(h.bounds) {
				b.Le = h.bounds[i]
			} else {
				b.Inf = true
			}
			hs.Buckets[i] = b
		}
		s.Histograms[name] = hs
	}
	return s
}

// Counter returns a snapshotted counter value by name (0 when absent),
// a convenience for assertions.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// nopHandler discards every record (log/slog has no built-in discard
// handler at this language version).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that discards everything — the default for
// components whose caller injected no logger, so call sites never need a
// nil check.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// OrNop returns l, or a discarding logger when l is nil.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}
