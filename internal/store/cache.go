package store

import (
	"container/list"
	"sync"

	"ipdelta/internal/obs"
)

// Artifact kinds held by the materialization cache.
const (
	kindVersion = iota // a fully materialized version image ([]byte)
	kindDelta          // a composed delta between two versions (*delta.Delta)
	numKinds
)

// cacheKey identifies a cached artifact: version `to` for kindVersion
// (from is zero), or the composed delta from→to for kindDelta.
type cacheKey struct {
	kind     uint8
	from, to int
}

// flight is one in-progress computation: late arrivals for the same key
// wait on it instead of recomputing (singleflight). val and err are
// written before wg.Done releases the waiters.
type flight struct {
	wg  sync.WaitGroup
	val any
	err error
}

// lruEntry is one cache slot, linked into the recency list.
type lruEntry struct {
	key cacheKey
	val any
}

// matCache is the store's materialization cache: a bounded LRU over
// version images and composed deltas, with singleflight deduplication so
// N concurrent requests for the same cold artifact perform exactly one
// chain replay or composition.
//
// Coherence comes from the store's append-only shape: version i and the
// composed delta (i, j) are immutable once their releases exist, so
// cached artifacts never need invalidation — AppendVersion only grows the
// key space. Cached values are shared between callers and must be treated
// as read-only; every consumer in this module (diff, compose, invert,
// in-place convert, HTTP serving) only reads them.
type matCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used
	flights map[cacheKey]*flight

	// Pre-resolved metric handles, indexed by kind; all nil-safe.
	hits, misses [numKinds]*obs.Counter
	dedups       *obs.Counter
	evictions    *obs.Counter
	inflight     *obs.Gauge
}

// defaultCacheEntries bounds the cache when WithCache is given a
// non-positive size.
const defaultCacheEntries = 64

// newMatCache builds a cache holding up to max artifacts. reg may be nil.
func newMatCache(max int, reg *obs.Registry) *matCache {
	if max <= 0 {
		max = defaultCacheEntries
	}
	c := &matCache{
		max:     max,
		entries: make(map[cacheKey]*list.Element),
		order:   list.New(),
		flights: make(map[cacheKey]*flight),
	}
	if reg != nil {
		c.hits[kindVersion] = reg.Counter("ipdelta_store_cache_version_hits_total")
		c.misses[kindVersion] = reg.Counter("ipdelta_store_cache_version_misses_total")
		c.hits[kindDelta] = reg.Counter("ipdelta_store_cache_delta_hits_total")
		c.misses[kindDelta] = reg.Counter("ipdelta_store_cache_delta_misses_total")
		c.dedups = reg.Counter("ipdelta_store_cache_dedup_waits_total")
		c.evictions = reg.Counter("ipdelta_store_cache_evictions_total")
		c.inflight = reg.Gauge("ipdelta_store_cache_inflight")
	}
	return c
}

// do returns the cached value for key, or computes it with fn. Concurrent
// calls for the same missing key share one fn execution. The hit path is
// allocation-free: a map probe and a list splice under a short lock.
func (c *matCache) do(key cacheKey, fn func() (any, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		v := el.Value.(*lruEntry).val
		c.mu.Unlock()
		c.hits[key.kind].Inc()
		return v, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.dedups.Inc()
		f.wg.Wait()
		return f.val, f.err
	}
	f := &flight{}
	f.wg.Add(1)
	c.flights[key] = f
	c.mu.Unlock()

	c.misses[key.kind].Inc()
	c.inflight.Add(1)
	f.val, f.err = fn()
	c.inflight.Add(-1)

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.entries[key] = c.order.PushFront(&lruEntry{key: key, val: f.val})
		for c.order.Len() > c.max {
			back := c.order.Back()
			ent := back.Value.(*lruEntry)
			c.order.Remove(back)
			delete(c.entries, ent.key)
			c.evictions.Inc()
		}
	}
	c.mu.Unlock()
	f.wg.Done()
	return f.val, f.err
}

// nearestVersion returns the deepest cached version at or below i — the
// cheapest starting point for a chain replay — bumping its recency. The
// scan is O(cache size), far below one delta application.
//
//ipvet:allocfree
func (c *matCache) nearestVersion(i int) (int, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	best := -1
	var bestEl *list.Element
	for key, el := range c.entries {
		if key.kind == kindVersion && key.to <= i && key.to > best {
			best, bestEl = key.to, el
		}
	}
	if bestEl == nil {
		return 0, nil, false
	}
	c.order.MoveToFront(bestEl)
	return best, bestEl.Value.(*lruEntry).val.([]byte), true
}

// len reports the current entry count (for tests).
//
//ipvet:allocfree
func (c *matCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
