// Package codec implements binary wire formats for delta files.
//
// Four formats are provided, mirroring the encodings discussed in §7 of the
// paper:
//
//   - FormatOrdered: commands are applied strictly in write order, so write
//     offsets are implicit — an add is ⟨l⟩ and a copy ⟨f,l⟩. This is the
//     most compact encoding but cannot express the permuted command order
//     in-place reconstruction requires.
//   - FormatOffsets: every command carries an explicit write offset — an
//     add is ⟨t,l⟩ and a copy ⟨f,t,l⟩. Commands may appear in any order,
//     which makes the format in-place capable, at the encoding overhead the
//     paper measures as ~1.9% of compression.
//   - FormatLegacyOrdered / FormatLegacyOffsets: the fixed-width codewords
//     the paper adopted from the classic differencing literature [11, 1],
//     notably a single-byte add length (long adds are split). These exist
//     to reproduce the paper's observation that such codewords are poorly
//     suited to in-place reconstruction.
//   - FormatCompact: the codeword redesign the paper suggests as future
//     work — copies encode the from-offset as a signed displacement from
//     the write offset and the trailing add section delta-encodes its
//     write offsets.
//
// All variable-width formats use unsigned varints (encoding/binary). Every
// file starts with a fixed header (magic, format, file lengths) and ends
// with an IEEE CRC32 of everything before it.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Format identifies a delta wire format.
type Format byte

const (
	// FormatOrdered is the write-order format without write offsets.
	FormatOrdered Format = iota + 1
	// FormatOffsets is the explicit-write-offset, in-place capable format.
	FormatOffsets
	// FormatLegacyOrdered is the classic byte-granular codeword format in
	// write order.
	FormatLegacyOrdered
	// FormatLegacyOffsets is the classic codeword format with write offsets.
	FormatLegacyOffsets
	// FormatCompact is the redesigned in-place capable format.
	FormatCompact
	// FormatScratch extends the offsets format with stash/unstash commands
	// and a header field declaring the scratch bytes required — the
	// bounded-scratch reconstruction extension.
	FormatScratch
)

// String returns the format name used by CLI flags and reports.
func (f Format) String() string {
	switch f {
	case FormatOrdered:
		return "ordered"
	case FormatOffsets:
		return "offsets"
	case FormatLegacyOrdered:
		return "legacy-ordered"
	case FormatLegacyOffsets:
		return "legacy-offsets"
	case FormatCompact:
		return "compact"
	case FormatScratch:
		return "scratch"
	default:
		return fmt.Sprintf("format(%d)", byte(f))
	}
}

// ParseFormat resolves a format name as printed by Format.String.
func ParseFormat(s string) (Format, error) {
	for _, f := range []Format{FormatOrdered, FormatOffsets, FormatLegacyOrdered, FormatLegacyOffsets, FormatCompact, FormatScratch} {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("unknown delta format %q", s)
}

// InPlaceCapable reports whether the format can express commands in an
// arbitrary application order, a prerequisite for carrying an in-place
// reconstructible delta.
func (f Format) InPlaceCapable() bool {
	switch f {
	case FormatOffsets, FormatLegacyOffsets, FormatCompact, FormatScratch:
		return true
	default:
		return false
	}
}

// Wire format framing.
var magic = [4]byte{'I', 'P', 'D', 1}

// Errors returned while decoding.
var (
	ErrBadMagic    = errors.New("not a delta file (bad magic)")
	ErrBadFormat   = errors.New("unknown format byte")
	ErrChecksum    = errors.New("checksum mismatch")
	ErrTruncated   = errors.New("truncated delta file")
	ErrNotOrdered  = errors.New("commands not in contiguous write order")
	ErrHugeCommand = errors.New("command length exceeds file bounds")
)

// UvarintLen returns the number of bytes binary.PutUvarint uses for v.
// It is the |f| term of the paper's cost function cost(v) = l − |f|.
//
//ipvet:allocfree
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// VarintLen returns the encoded size of v as a zig-zag signed varint.
//
//ipvet:allocfree
func VarintLen(v int64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutVarint(buf[:], v)
}
