package locksafe_test

import (
	"testing"

	"ipdelta/internal/lint/analysistest"
	"ipdelta/internal/lint/locksafe"
)

func TestLocksafe(t *testing.T) {
	for _, pkg := range []string{"netupdate"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, locksafe.Analyzer, pkg)
		})
	}
}
