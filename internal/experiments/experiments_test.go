package experiments

import (
	"strings"
	"testing"

	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
)

func testCorpus(t *testing.T) []corpus.Pair {
	t.Helper()
	return corpus.SmallCorpus(7)
}

func TestRunTable1(t *testing.T) {
	res, err := RunTable1(testCorpus(t), diff.NewLinear())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	ordered, offsets, lm, ct := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]

	// The paper's orderings must hold: write offsets cost compression, and
	// the in-place variants cost at least that much.
	if !(ordered.Compression < offsets.Compression) {
		t.Errorf("offsets (%.3f) not worse than ordered (%.3f)", offsets.Compression, ordered.Compression)
	}
	if lm.Compression < offsets.Compression {
		t.Errorf("LM (%.3f) better than offsets (%.3f)", lm.Compression, offsets.Compression)
	}
	if ct.Compression < lm.Compression {
		t.Errorf("constant-time (%.3f) beat locally-minimum (%.3f)", ct.Compression, lm.Compression)
	}
	if res.ConvertedCT < res.ConvertedLM {
		// CT converts at least as many copies (it never hunts for the
		// cheapest), though equality is possible.
		t.Logf("note: CT converted %d, LM %d", res.ConvertedCT, res.ConvertedLM)
	}
	// Loss decomposition must be self-consistent.
	if diff := lm.EncodingLoss + lm.CycleLoss - lm.TotalLoss; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("LM losses do not sum: %f + %f != %f", lm.EncodingLoss, lm.CycleLoss, lm.TotalLoss)
	}

	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") || !strings.Contains(sb.String(), "locally minimum") {
		t.Fatalf("render output:\n%s", sb.String())
	}
}

func TestRunTiming(t *testing.T) {
	res, err := RunTiming(testCorpus(t), diff.NewLinear())
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffTotal <= 0 || res.ConvertLM <= 0 || res.ConvertCT <= 0 {
		t.Fatalf("timings: %+v", res)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "run time") {
		t.Fatalf("render output:\n%s", sb.String())
	}
}

func TestRunFig2(t *testing.T) {
	res, err := RunFig2([]int{2, 3, 4}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	prev := 0.0
	for _, row := range res.Rows {
		if row.LMBytes != int64(row.Leaves*32) {
			t.Errorf("depth %d: LM converted %d bytes, want %d", row.Depth, row.LMBytes, row.Leaves*32)
		}
		if row.LMOverOptimal <= prev {
			t.Errorf("depth %d: ratio %.1f did not grow", row.Depth, row.LMOverOptimal)
		}
		prev = row.LMOverOptimal
		// Constant time should do no worse than LM here: it deletes at the
		// cycle-closing vertex, and in the tree that's not every leaf.
		if row.CTBytes > row.LMBytes {
			t.Logf("depth %d: CT %d > LM %d", row.Depth, row.CTBytes, row.LMBytes)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 2") {
		t.Fatal("render missing title")
	}
}

func TestFig2OptimalMatchesExhaustive(t *testing.T) {
	// The driver hardcodes the optimal as the root's 2·leafLen bytes;
	// cross-check with the exhaustive search at a small depth, at the
	// graph level where vertex costs are the converted byte counts.
	res, err := RunFig2([]int{2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].OptimalBytes != 32 {
		t.Fatalf("optimal bytes = %d", res.Rows[0].OptimalBytes)
	}
}

func TestRunFig3(t *testing.T) {
	res, err := RunFig3([]int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.BoundOK {
			t.Errorf("b=%d: Lemma 1 bound violated (%d edges > L=%d)", row.B, row.Edges, row.L)
		}
		if row.Edges != (row.B-1)*row.B {
			t.Errorf("b=%d: %d edges, want %d", row.B, row.Edges, (row.B-1)*row.B)
		}
		// Quadratic shape: edges/|C|² stays bounded away from zero.
		if row.EdgesOverC2 < 0.2 {
			t.Errorf("b=%d: edges/|C|² = %.3f, lost the quadratic shape", row.B, row.EdgesOverC2)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Lemma 1") {
		t.Fatal("render missing title")
	}
}

func TestRunTransfer(t *testing.T) {
	res, err := RunTransfer(testCorpus(t), []int64{28_800, 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Speedup <= 1 {
			t.Errorf("%s: speedup %.1f, delta not smaller than image", row.Name, row.Speedup)
		}
	}
	if res.MeanSpeedup <= 1 {
		t.Fatalf("mean speedup %.2f", res.MeanSpeedup)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "28.8kbps") || !strings.Contains(out, "1Mbps") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestRunCodewords(t *testing.T) {
	res, err := RunCodewords(testCorpus(t), diff.NewLinear())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byName := map[string]CodewordRow{}
	for _, row := range res.Rows {
		byName[row.Format.String()] = row
	}
	// The paper's shape: legacy codewords suffer most from write offsets;
	// the compact redesign must beat the plain offsets format.
	legacyPenalty := byName["legacy-offsets"].Bytes - byName["legacy-ordered"].Bytes
	varintPenalty := byName["offsets"].Bytes - byName["ordered"].Bytes
	if legacyPenalty <= varintPenalty {
		t.Errorf("legacy offset penalty %d not worse than varint %d", legacyPenalty, varintPenalty)
	}
	if byName["compact"].Bytes >= byName["offsets"].Bytes {
		t.Errorf("compact (%d) did not improve on offsets (%d)", byName["compact"].Bytes, byName["offsets"].Bytes)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "codeword") {
		t.Fatal("render missing title")
	}
}

func TestRunPolicies(t *testing.T) {
	res, err := RunPolicies(30, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 30 || len(res.Rows) != 2 {
		t.Fatalf("%+v", res)
	}
	for _, row := range res.Rows {
		if row.MeanOverOptimal < 1 {
			t.Errorf("%s: mean ratio %.2f below 1 — beat the optimum?!", row.Policy, row.MeanOverOptimal)
		}
	}
	// Locally minimum should match the optimum at least as often as
	// constant time on these small instances.
	ct, lm := res.Rows[0], res.Rows[1]
	if lm.ExactOptimal < ct.ExactOptimal {
		t.Logf("note: LM optimal %d < CT optimal %d", lm.ExactOptimal, ct.ExactOptimal)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "policy ablation") {
		t.Fatal("render missing title")
	}
}
