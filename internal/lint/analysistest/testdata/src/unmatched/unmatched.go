// Fixture producing a diagnostic no want comment expects.
package unmatched

func f() string {
	return "boom"
}
