package chunk

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/crc32"
)

// ID is the content address of a chunk: its SHA-256. Two chunks share an
// ID exactly when they share content (collision resistance is the dedup
// layer's correctness assumption, the same one every content-addressed
// store makes).
type ID [sha256.Size]byte

// IDOf returns the content address of data.
func IDOf(data []byte) ID { return sha256.Sum256(data) }

// String renders the leading bytes of the address for logs and tests.
func (id ID) String() string { return hex.EncodeToString(id[:8]) }

// Ref is one recipe entry: a chunk's address, its length, and a CRC32 of
// its content. The CRC is deliberately redundant with the ID: verifying
// a materialized chunk against it costs a table-driven pass instead of a
// SHA-256, mirroring the store container's per-release identity frames.
type Ref struct {
	ID     ID
	Length int64
	CRC    uint32
}

// RefOf builds the Ref describing data.
func RefOf(data []byte) Ref {
	return Ref{ID: IDOf(data), Length: int64(len(data)), CRC: crc32.ChecksumIEEE(data)}
}

// Recipe is the chunk-level description of one version of a file: the
// ordered list of its chunks. A version's bytes are the concatenation of
// its chunks' contents; the recipe plus a chunk source reproduces them.
// Recipes are value types and, once built, immutable by convention —
// they are shared between store releases and diff calls.
type Recipe struct {
	Chunks []Ref
}

// Total returns the described file's length in bytes.
func (r Recipe) Total() int64 {
	var n int64
	for _, c := range r.Chunks {
		n += c.Length
	}
	return n
}

// Source supplies chunk contents by address — the read side of a Store,
// or anything else that can resolve an ID (a remote peer, an archive
// tier). Returned slices are shared and must be treated as read-only.
type Source interface {
	Chunk(id ID) ([]byte, error)
}

// Materialize reconstructs the file a recipe describes, appending to dst
// (pass nil to allocate). Every chunk is verified against its recorded
// length and CRC, so a corrupt or substituted chunk is caught here
// rather than surfacing as silently wrong content.
func Materialize(dst []byte, r Recipe, src Source) ([]byte, error) {
	for k, c := range r.Chunks {
		data, err := src.Chunk(c.ID)
		if err != nil {
			return nil, fmt.Errorf("chunk: materialize chunk %d (%s): %w", k, c.ID, err)
		}
		if int64(len(data)) != c.Length || crc32.ChecksumIEEE(data) != c.CRC {
			return nil, fmt.Errorf("chunk: materialize chunk %d (%s): content contradicts its recipe identity", k, c.ID)
		}
		dst = append(dst, data...)
	}
	return dst, nil
}
