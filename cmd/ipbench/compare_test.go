package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline serializes a document with the given results to a temp file.
func writeBaseline(t *testing.T, dir, name string, results []baselineResult) string {
	t.Helper()
	doc := &baselineDoc{Results: results}
	doc.Environment.NumCPU = 4
	doc.Environment.GOMAXPROCS = 4
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeBaselineEnv is writeBaseline with an explicit processor count.
func writeBaselineEnv(t *testing.T, dir, name string, numCPU int, results []baselineResult) string {
	t.Helper()
	doc := &baselineDoc{Results: results}
	doc.Environment.NumCPU = numCPU
	doc.Environment.GOMAXPROCS = numCPU
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareCleanPass(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1000, AllocsPerOp: 2},
		{Name: "convert/reuse", NsPerOp: 500, AllocsPerOp: 0},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1050, AllocsPerOp: 2}, // +5%, inside threshold
		{Name: "convert/reuse", NsPerOp: 480, AllocsPerOp: 0},
		{Name: "diff/parallel/4", NsPerOp: 300, AllocsPerOp: 3}, // new row, ignored
	})
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.25); err != nil {
		t.Fatalf("clean compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "2 compared, 0 regressed") {
		t.Fatalf("unexpected summary:\n%s", buf.String())
	}
}

// TestCompareSkipsParallelOnFewerOldCPUs pins the environment guard: a
// baseline recorded on a smaller machine must not fail the parallel and
// auto rows (their old numbers had less parallelism available), while
// sequential rows still compare normally.
func TestCompareSkipsParallelOnFewerOldCPUs(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaselineEnv(t, dir, "old.json", 1, []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1000, AllocsPerOp: 2},
		{Name: "diff/parallel/4", NsPerOp: 2000, AllocsPerOp: 0},
		{Name: "diff/auto", NsPerOp: 1000, AllocsPerOp: 0},
	})
	newPath := writeBaselineEnv(t, dir, "new.json", 4, []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1050, AllocsPerOp: 2}, // +5%, inside threshold
		// Wildly slower than the 1-CPU document's numbers: must be skipped,
		// not reported as a regression.
		{Name: "diff/parallel/4", NsPerOp: 9000, AllocsPerOp: 0},
		{Name: "diff/auto", NsPerOp: 9000, AllocsPerOp: 0},
	})
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.25); err != nil {
		t.Fatalf("compare failed despite CPU-mismatch skip: %v\n%s", err, buf.String())
	}
	outStr := buf.String()
	if !strings.Contains(outStr, "1 compared, 0 regressed, 2 skipped") {
		t.Fatalf("unexpected summary:\n%s", outStr)
	}
	if !strings.Contains(outStr, "skipped (old ran on fewer CPUs)") {
		t.Fatalf("skip verdict missing:\n%s", outStr)
	}
	if !strings.Contains(outStr, "old: 1 CPU") || !strings.Contains(outStr, "new: 4 CPU") {
		t.Fatalf("environments not shown:\n%s", outStr)
	}
}

func TestCompareDetectsSlowdown(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1000, AllocsPerOp: 2},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1500, AllocsPerOp: 2}, // +50%
	})
	var buf bytes.Buffer
	err := runCompare(&buf, oldPath, newPath, 0.25)
	var reg errRegression
	if !errors.As(err, &reg) || reg.n != 1 {
		t.Fatalf("want 1 regression, got err=%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("table missing verdict:\n%s", buf.String())
	}
}

func TestCompareDetectsNewAllocations(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "convert/reuse", NsPerOp: 500, AllocsPerOp: 0},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		// Faster, but a zero-alloc benchmark started allocating: still red.
		{Name: "convert/reuse", NsPerOp: 400, AllocsPerOp: 3},
	})
	var buf bytes.Buffer
	err := runCompare(&buf, oldPath, newPath, 0.25)
	var reg errRegression
	if !errors.As(err, &reg) {
		t.Fatalf("alloc growth not flagged: err=%v\n%s", err, buf.String())
	}
}

// TestCompareToleratesNewRows pins the new-row behavior: benchmarks that
// exist only in the new document (added since the baseline was committed)
// are reported as "new row" and never fail the comparison — even when
// the shared rows are at the edge of the threshold.
func TestCompareToleratesNewRows(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1000, AllocsPerOp: 2},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1000, AllocsPerOp: 2},
		{Name: "recipe/diff/16MiB", NsPerOp: 700, AllocsPerOp: 9},
		{Name: "chunk/split/16MiB", NsPerOp: 300, AllocsPerOp: 0},
	})
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.25); err != nil {
		t.Fatalf("new rows must not fail compare: %v\n%s", err, buf.String())
	}
	outStr := buf.String()
	if !strings.Contains(outStr, "1 compared, 0 regressed, 0 skipped, 2 new") {
		t.Fatalf("unexpected summary:\n%s", outStr)
	}
	if !strings.Contains(outStr, "new row (no old measurement)") {
		t.Fatalf("new-row verdict missing:\n%s", outStr)
	}
}

func TestCompareNoSharedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "a", NsPerOp: 1},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		{Name: "b", NsPerOp: 1},
	})
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.25); err == nil {
		t.Fatal("disjoint documents must not pass silently")
	}
}

func TestCompareMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := runCompare(&buf, "/definitely/missing.json", "/also/missing.json", 0.25); err == nil {
		t.Fatal("missing baseline must error")
	}
}

func TestCompareViaRun(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBaseline(t, dir, "old.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1000},
	})
	newPath := writeBaseline(t, dir, "new.json", []baselineResult{
		{Name: "diff/one-shot", NsPerOp: 1001},
	})
	if err := run([]string{"-compare", oldPath, "-compare-to", newPath}); err != nil {
		t.Fatal(err)
	}
}
