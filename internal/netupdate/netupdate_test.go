package netupdate

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/device"
)

// makeHistory builds a release history of n successive versions.
func makeHistory(n int, size int, seed int64) [][]byte {
	history := make([][]byte, 0, n)
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: size, ChangeRate: 0.08, Seed: seed})
	history = append(history, pair.Ref, pair.Version)
	for len(history) < n {
		prev := history[len(history)-1]
		next := corpus.Generate(corpus.PairSpec{
			Profile: corpus.Binary, Size: len(prev), ChangeRate: 0.08, Seed: seed + int64(len(history)),
		})
		// Chain: mutate the previous release, not an unrelated file.
		history = append(history, mutateFrom(prev, next.Version))
	}
	return history[:n]
}

// mutateFrom grafts the tail of b onto the head of a to build a plausible
// successor version of a.
func mutateFrom(a, b []byte) []byte {
	out := append([]byte(nil), a...)
	k := len(out) / 4
	if k > len(b) {
		k = len(b)
	}
	copy(out[len(out)-k:], b[:k])
	return out
}

// deviceFor builds a device installed with the given image.
func deviceFor(t *testing.T, image []byte, capacity int64) *device.Device {
	t.Helper()
	flash, err := device.NewFlash(image, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return device.New(flash, int64(len(image)), device.DefaultWorkBufSize)
}

// runSession wires a client and server over an in-memory pipe.
func runSession(t *testing.T, s *Server, dev *device.Device) (Result, error) {
	t.Helper()
	client, server := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		defer server.Close()
		serverErr = s.HandleConn(server)
	}()
	res, err := UpdateDevice(client, dev)
	client.Close()
	wg.Wait()
	if err == nil && serverErr != nil {
		t.Fatalf("server error after client success: %v", serverErr)
	}
	return res, err
}

func TestUpdateSession(t *testing.T) {
	history := makeHistory(3, 32<<10, 1)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceFor(t, history[0], 64<<10)
	res, err := runSession(t, s, dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpToDate || res.DeltaBytes == 0 {
		t.Fatalf("result = %+v", res)
	}
	if !bytes.Equal(dev.Image(), s.Current()) {
		t.Fatal("device image is not the current version")
	}
	if res.DeltaBytes >= int64(len(s.Current())) {
		t.Fatalf("delta (%d bytes) not smaller than full image (%d)", res.DeltaBytes, len(s.Current()))
	}
	if s.ServedBytes() != res.DeltaBytes {
		t.Fatalf("server served %d, client got %d", s.ServedBytes(), res.DeltaBytes)
	}
}

func TestUpdateFromIntermediateVersion(t *testing.T) {
	history := makeHistory(4, 16<<10, 2)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceFor(t, history[2], 64<<10)
	if _, err := runSession(t, s, dev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dev.Image(), s.Current()) {
		t.Fatal("device not updated from intermediate version")
	}
}

func TestUpToDate(t *testing.T) {
	history := makeHistory(2, 8<<10, 3)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceFor(t, history[1], 32<<10)
	res, err := runSession(t, s, dev)
	if err != nil {
		t.Fatal(err)
	}
	if !res.UpToDate || res.DeltaBytes != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestUnknownVersion(t *testing.T) {
	history := makeHistory(2, 8<<10, 4)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	stranger := corpus.Generate(corpus.PairSpec{Profile: corpus.Text, Size: 8 << 10, ChangeRate: 0, Seed: 99})
	dev := deviceFor(t, stranger.Ref, 32<<10)
	_, err = runSession(t, s, dev)
	if err == nil {
		t.Fatal("expected unknown-version error")
	}
}

func TestResumeAfterPowerCut(t *testing.T) {
	history := makeHistory(2, 64<<10, 5)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	flash, err := device.NewFlash(history[0], 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(flash, int64(len(history[0])), 512)

	// First session dies from a power cut mid-apply.
	flash.FailAfterWrites(10)
	_, err = runSession(t, s, dev)
	if !errors.Is(err, device.ErrPowerCut) {
		t.Fatalf("error = %v, want ErrPowerCut", err)
	}
	flash.FailAfterWrites(-1)
	if !dev.Updating() {
		t.Fatal("device lost pending state")
	}

	// Second session resumes and completes.
	res, err := runSession(t, s, dev)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("second session did not resume")
	}
	if !bytes.Equal(dev.Image(), s.Current()) {
		t.Fatal("device image wrong after resume")
	}
}

func TestServeOverTCP(t *testing.T) {
	history := makeHistory(2, 16<<10, 6)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(l) // returns when the listener closes
	}()

	dev := deviceFor(t, history[0], 64<<10)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateDevice(conn, dev); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if !bytes.Equal(dev.Image(), s.Current()) {
		t.Fatal("device image wrong over TCP")
	}
	l.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("accepted empty history")
	}
	if _, err := NewServer([][]byte{{1}}, WithFormat(codec.FormatOrdered)); err == nil {
		t.Fatal("accepted non-in-place format")
	}
}

func TestCapacityTooSmall(t *testing.T) {
	history := makeHistory(2, 16<<10, 7)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceFor(t, history[0], int64(len(history[0]))) // no headroom
	// If the new version is larger than capacity the server must refuse.
	if int64(len(s.Current())) > dev.FlashCapacity() {
		if _, err := runSession(t, s, dev); err == nil {
			t.Fatal("expected capacity error")
		}
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(1000, 8000); got != time.Second {
		t.Fatalf("TransferTime = %v, want 1s", got)
	}
	if got := TransferTime(1000, 0); got != 0 {
		t.Fatalf("TransferTime with zero rate = %v", got)
	}
}

func TestThrottledConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	const payload = 4096
	go func() {
		buf := make([]byte, payload)
		_, _ = a.Write(buf)
	}()
	// 64 KiB/s -> 4 KiB should take ~62ms.
	tc := NewThrottledConn(b, 64<<10*8)
	start := time.Now()
	buf := make([]byte, payload)
	got := 0
	for got < payload {
		n, err := tc.Read(buf[got:])
		if err != nil {
			t.Fatal(err)
		}
		got += n
	}
	elapsed := time.Since(start)
	if elapsed < 40*time.Millisecond {
		t.Fatalf("throttled read finished in %v, too fast", elapsed)
	}
}

func TestHelloStatusRoundTrip(t *testing.T) {
	h := hello{Updating: true, ImageCRC: 0xDEADBEEF, ImageLen: 12345, Capacity: 99999}
	got, err := decodeHello(encodeHello(h))
	if err != nil || got != h {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}
	if _, err := decodeHello([]byte{1, 2}); err == nil {
		t.Fatal("short hello accepted")
	}
	st := status{OK: true, ImageCRC: 0xCAFEBABE}
	got2, err := decodeStatus(encodeStatus(st))
	if err != nil || got2 != st {
		t.Fatalf("status round trip: %+v, %v", got2, err)
	}
	if _, err := decodeStatus([]byte{1}); err == nil {
		t.Fatal("short status accepted")
	}
}

func TestConcurrentFleetOverTCP(t *testing.T) {
	history := makeHistory(3, 16<<10, 8)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(l)
	}()

	// 16 devices on mixed releases update concurrently.
	const fleet = 16
	errs := make(chan error, fleet)
	var wg sync.WaitGroup
	for k := 0; k < fleet; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			img := history[k%2] // releases 0 and 1
			flash, err := device.NewFlash(img, 64<<10)
			if err != nil {
				errs <- err
				return
			}
			dev := device.New(flash, int64(len(img)), 512)
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if _, err := UpdateDevice(conn, dev); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(dev.Image(), s.Current()) {
				errs <- errors.New("device image mismatch")
				return
			}
			errs <- nil
		}(k)
	}
	wg.Wait()
	for k := 0; k < fleet; k++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	<-done
	// The cache means the server diffs each source release only once; all
	// devices are counted in served bytes.
	if s.ServedBytes() == 0 {
		t.Fatal("no bytes served")
	}
}

func TestServerScratchDeltas(t *testing.T) {
	// Build a history whose update has cycles (block swap).
	base := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 32 << 10, ChangeRate: 0, Seed: 9})
	v2 := append([]byte(nil), base.Ref...)
	tmp := append([]byte(nil), v2[0:8<<10]...)
	copy(v2[0:8<<10], v2[16<<10:24<<10])
	copy(v2[16<<10:24<<10], tmp)
	history := [][]byte{base.Ref, v2}

	srv, err := NewServer(history, WithScratchBudget(16<<10))
	if err != nil {
		t.Fatal(err)
	}
	plainSrv, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}

	// A roomy device gets the scratch delta, which is smaller than the
	// plain one (the swap cycle is stashed, not carried as an add).
	roomy := deviceFor(t, history[0], 64<<10)
	res, err := runSession(t, srv, roomy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(roomy.Image(), v2) {
		t.Fatal("roomy device image wrong")
	}
	plainDev := deviceFor(t, history[0], 64<<10)
	plainRes, err := runSession(t, plainSrv, plainDev)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaBytes >= plainRes.DeltaBytes {
		t.Fatalf("scratch delta (%d) not smaller than plain (%d)", res.DeltaBytes, plainRes.DeltaBytes)
	}

	// A tight device (no scratch headroom) falls back to the plain delta
	// and still updates.
	tight := deviceFor(t, history[0], 32<<10)
	tightRes, err := runSession(t, srv, tight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tight.Image(), v2) {
		t.Fatal("tight device image wrong")
	}
	if tightRes.DeltaBytes != plainRes.DeltaBytes {
		t.Fatalf("tight device got %d bytes, want plain %d", tightRes.DeltaBytes, plainRes.DeltaBytes)
	}
}

func TestServerPrewarm(t *testing.T) {
	history := makeHistory(4, 16<<10, 10)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prewarm(4); err != nil {
		t.Fatal(err)
	}
	// Every non-head release is cached.
	s.mu.Lock()
	cached := len(s.cache)
	s.mu.Unlock()
	if cached != len(history)-1 {
		t.Fatalf("prewarmed %d of %d releases", cached, len(history)-1)
	}
	// Sessions still work and serve the cached bytes.
	dev := deviceFor(t, history[0], 64<<10)
	if _, err := runSession(t, s, dev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dev.Image(), s.Current()) {
		t.Fatal("device image wrong after prewarm")
	}

	// Scratch-enabled servers prewarm the scratch cache.
	s2, err := NewServer(history, WithScratchBudget(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Prewarm(0); err != nil {
		t.Fatal(err)
	}
	s2.mu.Lock()
	cached = len(s2.scratchCache)
	s2.mu.Unlock()
	if cached != len(history)-1 {
		t.Fatalf("scratch prewarm cached %d", cached)
	}
}
