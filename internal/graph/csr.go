package graph

import "fmt"

// Graph is the read-only digraph view shared by the algorithms of this
// package. Two implementations exist: the pointer-per-vertex adjacency
// Digraph (convenient for incremental construction in tests and small
// tools) and the CSR form (one contiguous edge array, built in two passes,
// reusable across builds — the hot-path representation).
type Graph interface {
	// NumVertices returns the vertex count; vertices are 0..n-1.
	NumVertices() int
	// NumEdges returns the edge count, counting parallel edges.
	NumEdges() int
	// Succ returns the successor list of u. The returned slice is owned
	// by the graph and must not be modified.
	Succ(u int) []int32
}

// Interface compliance.
var (
	_ Graph = (*Digraph)(nil)
	_ Graph = (*CSR)(nil)
)

// CSR is a digraph in compressed sparse row form: the successor lists of
// all vertices live back to back in one edge array, delimited by a
// row-start table. Construction goes through CSRBuilder; a built CSR is
// immutable. Compared to Digraph it performs no per-vertex allocations and
// walks edges with perfect locality, which is what the conversion hot path
// wants for CRWI digraphs (up to one edge per version byte, Lemma 1).
type CSR struct {
	// row has NumVertices()+1 entries; the successors of u are
	// edges[row[u]:row[u+1]].
	row   []int32
	edges []int32
}

// NumVertices implements Graph.
func (g *CSR) NumVertices() int {
	if len(g.row) == 0 {
		return 0
	}
	return len(g.row) - 1
}

// NumEdges implements Graph.
func (g *CSR) NumEdges() int { return len(g.edges) }

// Succ implements Graph. The returned slice aliases the CSR's edge array
// and must not be modified.
//
//ipvet:allocfree
func (g *CSR) Succ(u int) []int32 { return g.edges[g.row[u]:g.row[u+1]] }

// CSRBuilder constructs CSR digraphs in the classic two passes — declare
// degrees, prefix-sum the row table, then fill edges — over backing arrays
// that are reused across builds. In steady state (same or smaller graph
// shape) a build performs no allocations.
//
// Usage:
//
//	b.Reset(n)
//	for each edge u→v: b.CountEdge(u)      // or b.AddDegree(u, k)
//	b.StartFill()
//	for each edge u→v: b.FillEdge(u, v)    // same edges, same per-u order
//	g := b.Finish()
//
// The returned *CSR is backed by the builder's arrays: it remains valid
// only until the next Reset. Callers that retain graphs across builds must
// use separate builders.
type CSRBuilder struct {
	g CSR
	// next doubles as the degree accumulator before StartFill and the
	// per-row fill cursor after it.
	next []int32
}

// Reset prepares the builder for a graph with n vertices, clearing any
// previous state while retaining backing capacity.
func (b *CSRBuilder) Reset(n int) {
	b.g.row = growInt32(b.g.row, n+1)
	b.next = growInt32(b.next, n)
}

// CountEdge declares one future edge out of u (first pass).
//
//ipvet:allocfree
func (b *CSRBuilder) CountEdge(u int) { b.next[u]++ }

// AddDegree declares k future edges out of u (first pass). It lets callers
// that already know a vertex's out-degree skip per-edge counting.
//
//ipvet:allocfree
func (b *CSRBuilder) AddDegree(u, k int) { b.next[u] += int32(k) }

// StartFill freezes the declared degrees into the row table and prepares
// the edge array for the fill pass.
func (b *CSRBuilder) StartFill() {
	n := len(b.next)
	var total int32
	for u := 0; u < n; u++ {
		deg := b.next[u]
		b.g.row[u] = total
		b.next[u] = total
		total += deg
	}
	b.g.row[n] = total
	if cap(b.g.edges) < int(total) {
		b.g.edges = make([]int32, total)
	} else {
		b.g.edges = b.g.edges[:total]
	}
}

// FillEdge records the edge u→v (second pass). Edges out of the same u are
// stored in the order they are filled.
//
//ipvet:allocfree
func (b *CSRBuilder) FillEdge(u, v int) {
	b.g.edges[b.next[u]] = int32(v)
	b.next[u]++
}

// Finish checks that every declared edge was filled and returns the graph.
// The result is backed by the builder and valid until the next Reset.
func (b *CSRBuilder) Finish() *CSR {
	for u := 0; u < len(b.next); u++ {
		if b.next[u] != b.g.row[u+1] {
			panic(fmt.Sprintf("graph: CSR row %d filled %d of %d edges",
				u, b.next[u]-b.g.row[u], b.g.row[u+1]-b.g.row[u]))
		}
	}
	return &b.g
}

// growInt32 returns s resized to n elements, all zero, reusing capacity.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growBytes returns s resized to n elements, all zero, reusing capacity.
func growBytes(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	s = s[:n]
	clear(s)
	return s
}
