// Package graph provides the digraph machinery behind in-place conversion:
// a compact adjacency-list digraph, a topological sort that detects and
// breaks cycles as it runs, and the cycle-breaking policies analyzed in §5
// of the paper (constant-time, locally-minimum, and — as an extension — an
// exhaustive optimum for small graphs, usable to bound the policies
// empirically even though the general problem is NP-hard).
package graph

import "fmt"

// Digraph is a directed graph on vertices 0..n-1 with adjacency lists.
type Digraph struct {
	adj   [][]int32
	edges int
}

// New returns a digraph with n vertices and no edges.
func New(n int) *Digraph {
	return &Digraph{adj: make([][]int32, n)}
}

// NumVertices returns the vertex count.
func (g *Digraph) NumVertices() int { return len(g.adj) }

// NumEdges returns the edge count, counting parallel edges.
func (g *Digraph) NumEdges() int { return g.edges }

// AddEdge inserts the directed edge u→v. Vertices must be in range; the
// caller is responsible for not inserting self-loops (the paper defines WR
// conflicts so a command never conflicts with itself).
func (g *Digraph) AddEdge(u, v int) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj)))
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.edges++
}

// Succ returns the successor list of u. The returned slice is owned by the
// digraph and must not be modified.
//
//ipvet:allocfree
func (g *Digraph) Succ(u int) []int32 { return g.adj[u] }

// HasEdge reports whether the edge u→v exists. It scans u's adjacency list
// and is intended for tests and small graphs.
func (g *Digraph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Transpose returns the digraph with every edge reversed.
func (g *Digraph) Transpose() *Digraph {
	t := New(len(g.adj))
	for u, succ := range g.adj {
		for _, v := range succ {
			t.AddEdge(int(v), u)
		}
	}
	return t
}

// IsAcyclicWithout reports whether the digraph restricted to vertices not
// in removed is acyclic. A nil removed checks the whole digraph.
func (g *Digraph) IsAcyclicWithout(removed []bool) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(g.adj))
	type frame struct {
		v    int32
		edge int
	}
	var stack []frame
	for root := range g.adj {
		if color[root] != white || (removed != nil && removed[root]) {
			continue
		}
		stack = append(stack[:0], frame{v: int32(root)})
		color[root] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.edge < len(g.adj[top.v]) {
				w := g.adj[top.v][top.edge]
				top.edge++
				if removed != nil && removed[w] {
					continue
				}
				switch color[w] {
				case white:
					color[w] = gray
					stack = append(stack, frame{v: w})
				case gray:
					return false
				}
				continue
			}
			color[top.v] = black
			stack = stack[:len(stack)-1]
		}
	}
	return true
}
