package codec

import (
	"bytes"
	"io"
	"testing"

	"ipdelta/internal/delta"
)

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic,
// never allocate absurdly, and anything it accepts must re-encode to a
// decodable delta with identical commands.
func FuzzDecode(f *testing.F) {
	// Seed with valid encodings of every format.
	d := &delta.Delta{
		RefLen:     64,
		VersionLen: 80,
		Commands: []delta.Command{
			delta.NewCopy(0, 0, 40),
			delta.NewAdd(40, bytes.Repeat([]byte("z"), 8)),
			delta.NewCopy(8, 48, 32),
		},
	}
	for _, format := range allFormats {
		var buf bytes.Buffer
		if _, err := Encode(&buf, d, format); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// A scratch-format seed with stash/unstash commands.
	sd := &delta.Delta{
		RefLen:     16,
		VersionLen: 16,
		Commands: []delta.Command{
			delta.NewStash(0, 8),
			delta.NewCopy(8, 0, 8),
			delta.NewUnstash(8, 8),
		},
	}
	var sbuf bytes.Buffer
	if _, err := Encode(&sbuf, sd, FormatScratch); err != nil {
		f.Fatal(err)
	}
	f.Add(sbuf.Bytes())
	f.Add([]byte("IPD\x01garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, format, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input: the delta must re-encode and decode to the same
		// commands (when it validates; decoding does not enforce command
		// semantics like coverage).
		if got.Validate() != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, got, format); err != nil {
			t.Fatalf("re-encode of accepted delta failed: %v", err)
		}
		again, f2, err := Decode(&buf)
		if err != nil || f2 != format {
			t.Fatalf("re-decode failed: %v %v", f2, err)
		}
		if len(again.Commands) < len(got.Commands) {
			// Legacy formats may split adds, never merge them.
			t.Fatalf("command count shrank: %d -> %d", len(got.Commands), len(again.Commands))
		}
	})
}

// FuzzDecoderStreaming checks the streaming decoder path on arbitrary
// input.
func FuzzDecoderStreaming(f *testing.F) {
	var buf bytes.Buffer
	d := &delta.Delta{RefLen: 8, VersionLen: 10, Commands: []delta.Command{
		delta.NewCopy(0, 0, 8),
		delta.NewAdd(8, []byte("hi")),
	}}
	if _, err := Encode(&buf, d, FormatOffsets); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			_, payload, err := dec.NextStreaming()
			if err != nil {
				return
			}
			if payload != nil {
				if _, err := io.Copy(io.Discard, payload); err != nil {
					return
				}
			}
		}
	})
}
