package graph

import "fmt"

// CostFunc assigns each vertex the compression cost of deleting it. For the
// CRWI digraphs of the paper this is cost(v) = l_v − |f_v|: the bytes of
// data an add command must carry minus the bytes the copy encoding used.
type CostFunc func(v int) int64

// UnitCost treats every vertex as equally expensive; useful for counting
// conversions rather than weighing them.
func UnitCost(int) int64 { return 1 }

// Policy selects which vertex of a detected cycle to delete. The cycle
// slice lists the vertices in path order, ending at the vertex where the
// cycle was detected (the deepest vertex of the DFS path). Policies must
// return an element of cycle.
type Policy interface {
	// Name returns the policy's identifier used in reports and CLI flags.
	Name() string
	// SelectVictim picks the vertex of cycle to delete.
	SelectVictim(cycle []int, cost CostFunc) int
}

// ConstantTime implements the paper's constant-time policy: delete the
// easiest vertex based on the execution order of the topological sort — the
// last vertex visited before the cycle was found, i.e. the final element of
// the cycle slice. Breaking a cycle does no extra work, preserving the
// O(1)-per-cycle bound.
type ConstantTime struct{}

// Name implements Policy.
func (ConstantTime) Name() string { return "constant-time" }

// SelectVictim implements Policy.
func (ConstantTime) SelectVictim(cycle []int, _ CostFunc) int {
	return cycle[len(cycle)-1]
}

// LocallyMinimum implements the paper's locally-minimum policy: loop
// through the vertices of the cycle and delete the one with the smallest
// cost. The extra work per cycle is proportional to the cycle length.
type LocallyMinimum struct{}

// Name implements Policy.
func (LocallyMinimum) Name() string { return "locally-minimum" }

// SelectVictim implements Policy.
func (LocallyMinimum) SelectVictim(cycle []int, cost CostFunc) int {
	best := cycle[0]
	bestCost := cost(best)
	for _, v := range cycle[1:] {
		if c := cost(v); c < bestCost {
			best, bestCost = v, c
		}
	}
	return best
}

// PolicyByName resolves a policy identifier.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case ConstantTime{}.Name():
		return ConstantTime{}, nil
	case LocallyMinimum{}.Name():
		return LocallyMinimum{}, nil
	default:
		return nil, fmt.Errorf("unknown cycle-breaking policy %q", name)
	}
}

// Verify policy interface compliance.
var (
	_ Policy = ConstantTime{}
	_ Policy = LocallyMinimum{}
)
