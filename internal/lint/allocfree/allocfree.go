// Package allocfree statically enforces the repository's zero-allocation
// contract. A function carrying the directive
//
//	//ipvet:allocfree
//
// in its doc comment promises the same thing the AllocsPerRun tests
// measure: in steady state it performs no heap allocation. The analyzer
// verifies the promise syntactically — for the annotated function and,
// through the call graph and exported facts, for every static callee it
// reaches, in this package or any dependency analyzed earlier.
//
// Flagged allocation sites:
//
//   - &T{...}, []T{...}, map literals — escaping composite literals
//     (plain struct/array value literals are stack-friendly and allowed)
//   - make, new — slice/map/chan/pointer creation
//   - append(x, ...) whose result is assigned to anything other than x
//     itself; the self-append x = append(x, ...) is the amortized
//     capacity-reuse idiom the AllocsPerRun contract permits, so it is
//     allowed
//   - string(b), []byte(s), []rune(s) — converting between strings and
//     byte/rune slices copies
//   - explicit conversions to an interface type — boxing
//   - s + t on strings — concatenation allocates
//   - function literals, unless immediately invoked or passed directly
//     as a call argument (the sort.Search/defer idiom the compiler can
//     keep on the stack when the callee does not retain it)
//   - go statements — a new goroutine is never allocation-free
//
// Call sites: a static call to a function in the module is resolved
// through its summary (computed bottom-up over call-graph SCCs in this
// package, or imported as an AllocFact from a dependency). A call into a
// package outside the module is trusted except for the deny-listed
// allocation-heavy packages (fmt, errors, regexp, reflect, strconv).
// Dynamic calls — function values, interface methods — are trusted; that
// is the analyzer's documented soundness limit, shared with the lexical
// locksafe check.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ipdelta/internal/lint/analysis"
	"ipdelta/internal/lint/passes/callgraph"
)

// Directive is the doc-comment marker that opts a function into the
// zero-allocation contract.
const Directive = "//ipvet:allocfree"

// denied lists external packages whose every call is assumed to allocate.
var denied = map[string]bool{
	"fmt": true, "errors": true, "regexp": true, "reflect": true, "strconv": true,
}

// AllocFact is the exported per-function summary: whether the function is
// allocation-free, and if not, one human-readable reason (the first
// allocation site, with its position formatted into the string so the
// reason survives the gob trip across packages).
type AllocFact struct {
	Free   bool
	Reason string
}

// AFact marks AllocFact as a Fact.
func (*AllocFact) AFact() {}

// Analyzer is the allocfree analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "verifies that //ipvet:allocfree functions and their transitive " +
		"static callees contain no allocation sites",
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*AllocFact)(nil)},
	Run:       run,
}

// site is one allocation found in a function body.
type site struct {
	pos token.Pos
	msg string
}

// summary is the per-function analysis state while the package is in
// flight.
type summary struct {
	sites []site // local allocation sites, source order
	free  bool
}

func run(pass *analysis.Pass) (any, error) {
	cg := pass.ResultOf[callgraph.Analyzer].(*callgraph.Result)

	annotated := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc) {
				continue
			}
			if fn, ok := pass.ObjectOf(fd.Name).(*types.Func); ok {
				annotated[fn] = fd
			}
		}
	}

	// Bottom-up over SCCs: local sites first, then callee effects, with a
	// fixpoint inside each component for mutual recursion.
	summaries := map[*types.Func]*summary{}
	for _, comp := range cg.BottomUp {
		for _, node := range comp {
			s := &summary{sites: localSites(pass, node.Decl)}
			summaries[node.Obj] = s
		}
		inComp := map[*types.Func]bool{}
		for _, node := range comp {
			inComp[node.Obj] = true
		}
		// Effects of callees outside the component are final already.
		for _, node := range comp {
			s := summaries[node.Obj]
			for _, call := range node.Static {
				if inComp[call.Callee] {
					continue
				}
				if reason, allocs := calleeAllocates(pass, summaries, call.Callee); allocs {
					s.sites = append(s.sites, site{pos: call.Pos, msg: reason})
				}
			}
		}
		// Within the component, propagate until stable: a member that
		// allocates makes every member calling it allocate too.
		for changed := true; changed; {
			changed = false
			for _, node := range comp {
				s := summaries[node.Obj]
				if len(s.sites) > 0 {
					continue
				}
				for _, call := range node.Static {
					if !inComp[call.Callee] {
						continue
					}
					cs := summaries[call.Callee]
					if len(cs.sites) > 0 {
						s.sites = append(s.sites, site{
							pos: call.Pos,
							msg: calleeReason(pass, call.Callee, cs.sites[0]),
						})
						changed = true
						break
					}
				}
			}
		}
		for _, node := range comp {
			s := summaries[node.Obj]
			s.free = len(s.sites) == 0
			sort.Slice(s.sites, func(i, j int) bool { return s.sites[i].pos < s.sites[j].pos })
			fact := &AllocFact{Free: s.free}
			if !s.free {
				fact.Reason = s.sites[0].msg
			}
			pass.ExportObjectFact(node.Obj, fact)
		}
	}

	// Report every allocation site of every annotated function at the
	// site itself, so the finding points at the line to fix.
	for fn, fd := range annotated {
		s := summaries[fn]
		if s == nil || s.free {
			continue
		}
		for _, st := range s.sites {
			pass.Reportf(st.pos, "%s is marked //ipvet:allocfree but %s", fd.Name.Name, st.msg)
		}
	}
	return nil, nil
}

// hasDirective reports whether the doc comment carries the allocfree
// marker on a line of its own.
func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := c.Text
		if text == Directive {
			return true
		}
		if rest, ok := strings.CutPrefix(text, Directive); ok &&
			(rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// calleeAllocates resolves the allocation status of a static callee that
// is not in the current SCC: same-package callees by summary, dependency
// callees by imported fact, external callees by the deny list.
func calleeAllocates(pass *analysis.Pass, summaries map[*types.Func]*summary, callee *types.Func) (string, bool) {
	if s, ok := summaries[callee]; ok {
		if len(s.sites) > 0 {
			return calleeReason(pass, callee, s.sites[0]), true
		}
		return "", false
	}
	var fact AllocFact
	if pass.ImportObjectFact(callee, &fact) {
		if !fact.Free {
			return "calls " + callee.Name() + " which allocates: " + fact.Reason, true
		}
		return "", false
	}
	if pkg := callee.Pkg(); pkg != nil && denied[pkg.Path()] {
		return "calls " + pkg.Path() + "." + callee.Name() + ", an allocation-heavy package", true
	}
	return "", false
}

// calleeReason renders the reason a same-package callee allocates,
// embedding the site position so the message is useful after the fact
// crosses a package boundary.
func calleeReason(pass *analysis.Pass, callee *types.Func, st site) string {
	return "calls " + callee.Name() + " which allocates (" +
		pass.Fset.Position(st.pos).String() + ": " + st.msg + ")"
}

// localSites returns the allocation sites lexically inside fd, including
// inside its function literals (their effects belong to the encloser's
// dynamic extent).
func localSites(pass *analysis.Pass, fd *ast.FuncDecl) []site {
	var sites []site
	add := func(pos token.Pos, msg string) {
		sites = append(sites, site{pos: pos, msg: msg})
	}
	// Function literals immediately invoked or passed directly as call
	// arguments are permitted; ast.Inspect visits a CallExpr before its
	// children, so mark them as allowed on the way down.
	allowedLit := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if fl, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
				allowedLit[fl] = true
			}
			for _, arg := range e.Args {
				if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					allowedLit[fl] = true
				}
			}
			checkCallSites(pass, e, add)
		case *ast.FuncLit:
			if !allowedLit[e] {
				add(e.Pos(), "creates an escaping function literal")
			}
		case *ast.CompositeLit:
			checkCompositeLit(pass, e, add)
		case *ast.AssignStmt:
			checkAppends(pass, e, add)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					add(e.Pos(), "heap-allocates a composite literal with &")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(pass.TypeOf(e)) {
				add(e.Pos(), "concatenates strings")
			}
		case *ast.GoStmt:
			add(e.Pos(), "starts a goroutine")
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites
}

// checkCallSites flags make/new, string conversions, and interface boxing
// — the allocation forms spelled as calls.
func checkCallSites(pass *analysis.Pass, call *ast.CallExpr, add func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "calls make")
			case "new":
				add(call.Pos(), "calls new")
			}
			return
		}
	}
	tv, ok := pass.TypesInfo.Types[fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst, src := tv.Type, pass.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isString(dst) && isByteOrRuneSlice(src):
		add(call.Pos(), "converts a byte slice to a string")
	case isByteOrRuneSlice(dst) && isString(src):
		add(call.Pos(), "converts a string to a byte slice")
	case types.IsInterface(dst) && !types.IsInterface(src):
		add(call.Pos(), "boxes a value into an interface")
	}
}

// checkCompositeLit flags literals that reach the heap: pointers to
// literals, and slice/map literals. Plain struct and array values are
// allowed.
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit, add func(token.Pos, string)) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		add(lit.Pos(), "builds a slice literal")
	case *types.Map:
		add(lit.Pos(), "builds a map literal")
	}
}

// checkAppends flags append calls that are not the self-append idiom
// x = append(x, ...).
func checkAppends(pass *analysis.Pass, as *ast.AssignStmt, add func(token.Pos, string)) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if i < len(as.Lhs) && len(as.Rhs) == len(as.Lhs) &&
			types.ExprString(ast.Unparen(as.Lhs[i])) == types.ExprString(ast.Unparen(call.Args[0])) {
			continue // x = append(x, ...): amortized growth, allowed
		}
		add(call.Pos(), "grows a slice with append into a different variable")
	}
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
