package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRunQuickExperiments(t *testing.T) {
	// Each experiment flag on the small corpus; output goes to stdout.
	for _, args := range [][]string{
		{"-quick", "-table1"},
		{"-quick", "-timing"},
		{"-quick", "-fig2"},
		{"-quick", "-fig3"},
		{"-quick", "-transfer"},
		{"-quick", "-codewords"},
		{"-quick", "-policies"},
		{"-quick", "-strategies"},
		{"-quick", "-composition"},
		{"-quick", "-algorithms"},
		{"-quick", "-fleet"},
		{"-quick", "-scratch"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	// JSON mode must run cleanly for a couple of representative results.
	if err := run([]string{"-quick", "-json", "-fig3", "-policies"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCorpusDirErrors(t *testing.T) {
	if err := run([]string{"-corpus-dir", "/definitely/missing", "-table1"}); err == nil {
		t.Fatal("missing corpus dir accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunBenchBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline measurement is slow")
	}
	out := filepath.Join(t.TempDir(), "BENCH_convert.json")
	if err := run([]string{"-quick", "-bench-baseline", "-baseline-out", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc baselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("baseline output is not valid JSON: %v", err)
	}
	want := map[string]bool{
		"convert/one-shot": false, "convert/reuse": false, "crwi/build": false,
		"diff/one-shot": false, "diff/reuse": false, "batch/4": false,
		"chunk/split/1MiB": false, "chunk/ingest/1MiB": false,
		"recipe/diff/1MiB": false, "diff/full/1MiB": false,
	}
	for _, r := range doc.Results {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
		if r.Iters <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: empty measurement: %+v", r.Name, r)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("baseline missing benchmark %q", name)
		}
	}
	// The reusable paths must not allocate more than the one-shot paths.
	ns := map[string]baselineResult{}
	for _, r := range doc.Results {
		ns[r.Name] = r
	}
	if ns["convert/reuse"].AllocsPerOp > ns["convert/one-shot"].AllocsPerOp {
		t.Errorf("convert/reuse allocates more than one-shot: %d > %d",
			ns["convert/reuse"].AllocsPerOp, ns["convert/one-shot"].AllocsPerOp)
	}
	if ns["diff/reuse"].AllocsPerOp > ns["diff/one-shot"].AllocsPerOp {
		t.Errorf("diff/reuse allocates more than one-shot: %d > %d",
			ns["diff/reuse"].AllocsPerOp, ns["diff/one-shot"].AllocsPerOp)
	}
	if err := run([]string{"-bench-baseline", "-baseline-out", "/definitely/missing/dir/out.json", "-quick"}); err == nil {
		t.Error("unwritable baseline path accepted")
	}
}

func TestRunRecipeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("gate measurement is slow")
	}
	// The quick gate must pass on any machine: the chunked fast path's win
	// on blocky churn is structural (it skips matched chunks entirely), not
	// a machine-dependent constant.
	if err := run([]string{"-quick", "-recipe-gate"}); err != nil {
		t.Fatal(err)
	}
	// An absurd required speedup must fail loudly, proving the gate gates.
	err := run([]string{"-quick", "-recipe-gate", "-recipe-speedup", "1e9"})
	if err == nil {
		t.Fatal("unreachable speedup requirement passed")
	}
	var g errRecipeGate
	if !errors.As(err, &g) {
		t.Fatalf("want errRecipeGate, got %v", err)
	}
}
