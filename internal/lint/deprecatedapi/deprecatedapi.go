// Package deprecatedapi flags calls to the legacy convert entry points
// that predate the options-based API. ConvertInPlaceWithPolicy and
// ConvertInPlaceScratch survive only as compatibility shims over
// ConvertInPlace(d, ref, opts...); new code that reaches for them forks
// the call surface the observability layer instruments, so the analyzer
// steers every caller to the one maintained path.
//
// Flagged:
//
//	ipdelta.ConvertInPlaceWithPolicy(d, ref, p)   // use WithPolicy(p)
//	ipdelta.ConvertInPlaceScratch(d, ref, n)      // use WithScratchBudget(n)
//
// Only package-level functions defined in the ipdelta root package are
// matched, so an unrelated method or helper that happens to share a name
// is left alone. The shims' own declarations are not calls and are never
// flagged; a caller that must stay on the legacy spelling (for example a
// pinned compatibility test) can carry an //ipvet:ignore deprecatedapi
// suppression.
package deprecatedapi

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"

	"ipdelta/internal/lint/analysis"
)

// TargetPattern selects the package whose deprecated entry points are
// checked: the module root.
var TargetPattern = regexp.MustCompile(`(^|/)ipdelta$`)

// replacements maps each deprecated function to the option-based call
// that supersedes it and the option constructor a -fix rewrite uses.
var replacements = map[string]struct {
	doc    string
	option string
}{
	"ConvertInPlaceWithPolicy": {"ConvertInPlace with WithPolicy(p)", "WithPolicy"},
	"ConvertInPlaceScratch":    {"ConvertInPlace with WithScratchBudget(n)", "WithScratchBudget"},
}

// Analyzer is the deprecatedapi analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "deprecatedapi",
	Doc: "flags calls to the deprecated ConvertInPlaceWithPolicy and " +
		"ConvertInPlaceScratch shims; use ConvertInPlace options instead",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		qualifier := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
			qualifier = types.ExprString(fun.X) + "."
		default:
			return true
		}
		repl, ok := replacements[id.Name]
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(id).(*types.Func)
		if !ok || fn.Pkg() == nil || !TargetPattern.MatchString(fn.Pkg().Path()) {
			return true
		}
		// Methods on some local type that reuse the name are not the
		// deprecated package-level shims.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		d := analysis.Diagnostic{
			Pos: call.Pos(),
			End: call.End(),
			Message: fmt.Sprintf("%s.%s is deprecated; use %s",
				fn.Pkg().Name(), fn.Name(), repl.doc),
		}
		// Both shims are ConvertInPlaceX(d, ref, x); the mechanical
		// rewrite renames the callee and wraps the third argument in the
		// superseding option, qualified the way the call site qualifies
		// the shim.
		if len(call.Args) == 3 {
			last := call.Args[2]
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message: fmt.Sprintf("call ConvertInPlace with %s(...)", repl.option),
				TextEdits: []analysis.TextEdit{
					{Pos: id.Pos(), End: id.End(), NewText: []byte("ConvertInPlace")},
					{Pos: last.Pos(), End: last.Pos(), NewText: []byte(qualifier + repl.option + "(")},
					{Pos: last.End(), End: last.End(), NewText: []byte(")")},
				},
			}}
		}
		pass.Report(d)
		return true
	})
	return nil, nil
}
