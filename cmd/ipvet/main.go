// Command ipvet runs the project's static analyzers over the module:
//
//	go run ./cmd/ipvet ./...
//
// It exits 0 when every package is clean and 1 with file:line diagnostics
// otherwise; operational failures (bad flags, unloadable packages) exit 2.
// Run it from the module root (the loader resolves import paths against
// the enclosing go.mod). The suite covers offset arithmetic (offsetsafe),
// buffer aliasing (aliascheck), lock discipline (locksafe), dropped
// codec/store errors (errpropagate), calls to the deprecated pre-options
// convert shims (deprecatedapi), the zero-allocation contract of
// //ipvet:allocfree functions (allocfree), cross-package lock-order
// cycles (lockorder), and mixed atomic/plain field access (atomicmix).
//
// Flags:
//
//	-list          print the analyzers and the invariant each enforces
//	-run a,b       run only the named analyzers
//	-json          emit diagnostics as a JSON array on stdout
//	-fix           apply suggested fixes to the source files
//
// Individual findings can be suppressed with an analyzer-scoped comment:
//
//	//ipvet:ignore offsetsafe -- bounded by the header check above
//
// -fix is idempotent: a fix removes the pattern that triggered it, so a
// second -fix run changes nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ipdelta/internal/lint"
	"ipdelta/internal/lint/analysis"
	"ipdelta/internal/lint/checker"
	"ipdelta/internal/lint/loader"
)

// jsonDiagnostic is the machine-readable form of one finding, stable for
// CI consumers (the ipvet workflow uploads the array as an artifact).
type jsonDiagnostic struct {
	Analyzer string    `json:"analyzer"`
	File     string    `json:"file"`
	Line     int       `json:"line"`
	Column   int       `json:"column"`
	EndLine  int       `json:"endLine,omitempty"`
	EndCol   int       `json:"endColumn,omitempty"`
	Message  string    `json:"message"`
	Fixes    []jsonFix `json:"fixes,omitempty"`
}

type jsonFix struct {
	Message string     `json:"message"`
	Edits   []jsonEdit `json:"edits"`
}

type jsonEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list analyzers and exit")
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON on stdout")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ipvet [-list] [-run names] [-json] [-fix] [packages]\n\npackages are directory patterns like ./... (the default)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runFilter != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runFilter, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "ipvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := loader.New(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipvet:", err)
		return 2
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipvet:", err)
		return 2
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipvet:", err)
		return 2
	}

	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(findings))
		for _, f := range findings {
			jd := jsonDiagnostic{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			}
			if f.End.IsValid() {
				jd.EndLine, jd.EndCol = f.End.Line, f.End.Column
			}
			for _, fx := range f.Fixes {
				jf := jsonFix{Message: fx.Message}
				for _, e := range fx.Edits {
					jf.Edits = append(jf.Edits, jsonEdit{
						File: e.File, Start: e.Start, End: e.End, NewText: string(e.NewText),
					})
				}
				jd.Fixes = append(jd.Fixes, jf)
			}
			out = append(out, jd)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "ipvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(lint.FindingString(f))
		}
	}

	if *fix {
		changed, applied, skipped, err := checker.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipvet:", err)
			return 2
		}
		for _, file := range changed {
			fmt.Fprintf(os.Stderr, "ipvet: fixed %s\n", file)
		}
		if applied > 0 || skipped > 0 {
			fmt.Fprintf(os.Stderr, "ipvet: applied %d fix(es) to %d file(s), skipped %d overlapping\n",
				applied, len(changed), skipped)
		}
		// Fixed findings are resolved; exit nonzero only for what remains.
		if applied < len(findings) {
			fmt.Fprintf(os.Stderr, "ipvet: %d finding(s) had no applicable fix\n", len(findings)-applied)
			return 1
		}
		return 0
	}

	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ipvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
