package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInvertBasic(t *testing.T) {
	v1 := []byte("the quick brown fox")
	v2 := []byte("the quick red fox")
	d12 := diffNaive(v1, v2)
	d21, err := Invert(d12, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d21.Validate(); err != nil {
		t.Fatalf("inverse invalid: %v", err)
	}
	back, err := d21.Apply(v2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, v1) {
		t.Fatalf("inverse apply = %q, want %q", back, v1)
	}
}

func TestInvertOverlappingReads(t *testing.T) {
	// Two copies read the same reference region: the inverse must trim to
	// disjoint writes and still reconstruct.
	v1 := []byte("ABCDEFGH")
	d := &Delta{
		RefLen:     8,
		VersionLen: 16,
		Commands: []Command{
			NewCopy(0, 0, 8),
			NewCopy(0, 8, 8), // same read interval again
		},
	}
	v2, err := d.Apply(v1)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Invert(d, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.Validate(); err != nil {
		t.Fatalf("inverse invalid: %v", err)
	}
	back, err := inv.Apply(v2)
	if err != nil || !bytes.Equal(back, v1) {
		t.Fatalf("back = %q, %v", back, err)
	}
}

func TestInvertPureAddDelta(t *testing.T) {
	// A delta with no copies inverts to a delta carrying all of R.
	v1 := []byte("original content")
	d := &Delta{RefLen: int64(len(v1)), VersionLen: 3,
		Commands: []Command{NewAdd(0, []byte("new"))}}
	inv, err := Invert(d, v1)
	if err != nil {
		t.Fatal(err)
	}
	if inv.NumCopies() != 0 || inv.AddedBytes() != int64(len(v1)) {
		t.Fatalf("inverse: %+v", inv.Summarize())
	}
	back, err := inv.Apply([]byte("new"))
	if err != nil || !bytes.Equal(back, v1) {
		t.Fatalf("back = %q, %v", back, err)
	}
}

func TestInvertRejectsBadInput(t *testing.T) {
	bad := &Delta{RefLen: 4, VersionLen: 4, Commands: []Command{NewCopy(0, 2, 4)}}
	if _, err := Invert(bad, make([]byte, 4)); err == nil {
		t.Fatal("invalid delta accepted")
	}
	ok := &Delta{RefLen: 4, VersionLen: 4, Commands: []Command{NewCopy(0, 0, 4)}}
	if _, err := Invert(ok, make([]byte, 3)); err == nil {
		t.Fatal("wrong reference length accepted")
	}
}

func TestInvertEmpty(t *testing.T) {
	d := &Delta{RefLen: 0, VersionLen: 0}
	inv, err := Invert(d, nil)
	if err != nil || len(inv.Commands) != 0 {
		t.Fatalf("%v %v", inv, err)
	}
}

func TestQuickInvertRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vs := randomVersions(rng, 2)
		v1, v2 := vs[0], vs[1]
		d := diffNaive(v1, v2)
		inv, err := Invert(d, v1)
		if err != nil {
			return false
		}
		if inv.Validate() != nil {
			return false
		}
		back, err := inv.Apply(v2)
		if err != nil {
			return false
		}
		return bytes.Equal(back, v1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInvertSafeDeltas(t *testing.T) {
	// Inversion works on arbitrary permuted (in-place style) deltas, not
	// just write-ordered ones.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		refLen := rng.Int63n(2048) + 64
		ref := make([]byte, refLen)
		rng.Read(ref)
		d := genSafeDelta(rng, refLen)
		version, err := d.Apply(ref)
		if err != nil {
			return false
		}
		inv, err := Invert(d, ref)
		if err != nil {
			return false
		}
		if inv.Validate() != nil {
			return false
		}
		back, err := inv.Apply(version)
		if err != nil {
			return false
		}
		return bytes.Equal(back, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInvertComposeDuality checks the algebra: inverting a composed
// chain behaves like composing the inverses in reverse order — both map
// the final version back to the first.
func TestQuickInvertComposeDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vs := randomVersions(rng, 3)
		d01 := diffNaive(vs[0], vs[1])
		d12 := diffNaive(vs[1], vs[2])
		d02, err := Compose(d01, d12)
		if err != nil {
			return false
		}
		// Route A: invert the composition.
		invA, err := Invert(d02, vs[0])
		if err != nil {
			return false
		}
		// Route B: compose the inverses in reverse.
		inv12, err := Invert(d12, vs[1])
		if err != nil {
			return false
		}
		inv01, err := Invert(d01, vs[0])
		if err != nil {
			return false
		}
		invB, err := Compose(inv12, inv01)
		if err != nil {
			return false
		}
		a, err := invA.Apply(vs[2])
		if err != nil {
			return false
		}
		b, err := invB.Apply(vs[2])
		if err != nil {
			return false
		}
		return bytes.Equal(a, vs[0]) && bytes.Equal(b, vs[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
