package chunk

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// smallRecipe builds a short but non-trivial encoded recipe for hostile
// mutation tests.
func smallRecipe(t testing.TB) (Recipe, []byte) {
	t.Helper()
	var r Recipe
	for k := 0; k < 5; k++ {
		data := randBytes(int64(200+k), 512+137*k)
		r.Chunks = append(r.Chunks, RefOf(data))
	}
	return r, EncodeRecipe(r)
}

// reseal recomputes the trailer CRC of an encoded recipe so mutations of
// the body reach the structural validators instead of stopping at the
// container checksum.
func reseal(enc []byte) []byte {
	body := enc[:len(enc)-4]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func TestRecipeCodecRoundtrip(t *testing.T) {
	r, enc := smallRecipe(t)
	got, err := DecodeRecipe(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chunks) != len(r.Chunks) {
		t.Fatalf("decoded %d chunks, want %d", len(got.Chunks), len(r.Chunks))
	}
	for k := range got.Chunks {
		if got.Chunks[k] != r.Chunks[k] {
			t.Fatalf("chunk %d roundtrip mismatch", k)
		}
	}
	// The empty recipe is legal (an empty file's version).
	empty, err := DecodeRecipe(EncodeRecipe(Recipe{}))
	if err != nil || len(empty.Chunks) != 0 {
		t.Fatalf("empty recipe roundtrip: %v", err)
	}
}

// TestDecodeRecipeHostile feeds hand-built hostile containers — the
// same discipline as the store container's hostile suite: every case
// must error, never panic, never over-allocate.
func TestDecodeRecipeHostile(t *testing.T) {
	_, enc := smallRecipe(t)
	uv := func(v uint64) []byte {
		var tmp [binary.MaxVarintLen64]byte
		return append([]byte(nil), tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"magic only", []byte("IPRC")},
		{"wrong magic", append([]byte("XXXX"), enc[4:]...)},
		{"future version", reseal(append(append([]byte("IPRC"), 99), enc[5:len(enc)-4]...))},
		{"bad trailer crc", func() []byte {
			d := append([]byte(nil), enc...)
			d[len(d)-1] ^= 0xFF
			return d
		}()},
		// A count vastly beyond what the input can carry must be rejected
		// before the decoder allocates for it.
		{"absurd count", reseal(append(append(append([]byte("IPRC"), recipeFormatVersion), uv(1<<62)...), uv(0)...))},
		{"count with no chunks", reseal(append(append(append([]byte("IPRC"), recipeFormatVersion), uv(3)...), uv(100)...))},
		{"zero-length chunk", reseal(append(append(append(append(append(
			[]byte("IPRC"), recipeFormatVersion), uv(1)...), uv(0)...),
			append(make([]byte, 32), uv(0)...)...), 0, 0, 0, 0))},
		{"oversize chunk length", reseal(append(append(append(append(append(
			[]byte("IPRC"), recipeFormatVersion), uv(1)...), uv(1<<40)...),
			append(make([]byte, 32), uv(1<<40)...)...), 0, 0, 0, 0))},
		{"total disagrees with sum", func() []byte {
			d := append([]byte(nil), enc...)
			// total-length uvarint starts after magic+version+count varint.
			_, n := binary.Uvarint(d[5:])
			d[5+n] ^= 0x01
			return reseal(d)
		}()},
		{"trailing garbage", reseal(append(enc[:len(enc)-4], 0xAA))},
	}
	for _, tc := range cases {
		if _, err := DecodeRecipe(tc.data); err == nil {
			t.Errorf("%s: hostile container accepted", tc.name)
		}
	}
}

// TestDecodeRecipeTruncations checks every possible truncation of a
// valid container: each must be rejected cleanly.
func TestDecodeRecipeTruncations(t *testing.T) {
	_, enc := smallRecipe(t)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeRecipe(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestDecodeRecipeBitFlips flips every bit of a valid container. Each
// result either fails to decode or decodes to something that differs
// from the original — a flip must never be silently absorbed.
func TestDecodeRecipeBitFlips(t *testing.T) {
	want, enc := smallRecipe(t)
	for i := 0; i < len(enc); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 1 << bit
			got, err := DecodeRecipe(mut)
			if err != nil {
				continue
			}
			same := len(got.Chunks) == len(want.Chunks)
			for k := 0; same && k < len(got.Chunks); k++ {
				same = got.Chunks[k] == want.Chunks[k]
			}
			if same {
				t.Fatalf("bit flip at byte %d bit %d silently absorbed", i, bit)
			}
		}
	}
}

// FuzzRecipeDecode is the recipe mirror of FuzzStoreLoad: DecodeRecipe
// must never panic, and accepted input must re-encode/re-decode stably.
func FuzzRecipeDecode(f *testing.F) {
	_, enc := smallRecipe(f)
	f.Add(enc)
	f.Add(EncodeRecipe(Recipe{}))
	f.Add([]byte("IPRC"))
	f.Add(enc[:len(enc)/2])
	mut := append([]byte(nil), enc...)
	mut[9] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecipe(data)
		if err != nil {
			return
		}
		again, err := DecodeRecipe(EncodeRecipe(r))
		if err != nil {
			t.Fatalf("accepted recipe fails to re-decode: %v", err)
		}
		if len(again.Chunks) != len(r.Chunks) {
			t.Fatalf("re-decode chunk count drifted: %d vs %d", len(again.Chunks), len(r.Chunks))
		}
		for k := range again.Chunks {
			if again.Chunks[k] != r.Chunks[k] {
				t.Fatalf("re-decode chunk %d drifted", k)
			}
		}
	})
}

// FuzzChunkerSplit feeds arbitrary bytes through both chunking faces:
// chunks must cover the input exactly, respect bounds, and the streaming
// splitter must agree with the in-memory splitter.
func FuzzChunkerSplit(f *testing.F) {
	f.Add([]byte("hello"), uint16(64))
	f.Add(bytes.Repeat([]byte{0}, 5000), uint16(1))
	f.Add(randBytes(1, 20000), uint16(700))
	f.Fuzz(func(t *testing.T, data []byte, writeSize uint16) {
		c, err := NewChunker(Params{Min: 64, Avg: 256, Max: 1024})
		if err != nil {
			t.Fatal(err)
		}
		var rejoined []byte
		var cuts []int
		c.Split(data, func(ch []byte) {
			if len(ch) > 1024 || len(ch) == 0 {
				t.Fatalf("chunk size %d out of bounds", len(ch))
			}
			rejoined = append(rejoined, ch...)
			cuts = append(cuts, len(rejoined))
		})
		if !bytes.Equal(rejoined, data) {
			t.Fatal("chunks do not reproduce input")
		}
		ws := int(writeSize)
		if ws == 0 {
			ws = 1
		}
		var streamed []int
		var off int
		s := NewSplitter(c, func(ch []byte) {
			off += len(ch)
			streamed = append(streamed, off)
		})
		for lo := 0; lo < len(data); lo += ws {
			hi := lo + ws
			if hi > len(data) {
				hi = len(data)
			}
			if _, err := s.Write(data[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		s.Flush()
		if len(streamed) != len(cuts) {
			t.Fatalf("streaming produced %d chunks, in-memory %d", len(streamed), len(cuts))
		}
		for k := range cuts {
			if streamed[k] != cuts[k] {
				t.Fatalf("cut %d: streaming %d vs in-memory %d", k, streamed[k], cuts[k])
			}
		}
	})
}
