package store

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ipdelta/internal/corpus"
	"ipdelta/internal/graph"
)

// buildChainStore creates a store with n related versions and returns the
// store plus the raw versions for comparison.
func buildChainStore(t testing.TB, n int, seed int64) (*Store, [][]byte) {
	t.Helper()
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 24 << 10, ChangeRate: 0.06, Seed: seed})
	versions := [][]byte{pair.Ref}
	s := New(pair.Ref)
	cur := pair.Ref
	for k := 1; k < n; k++ {
		next := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: len(cur), ChangeRate: 0.06, Seed: seed + int64(k)})
		// Derive the next release from the current one: splice some of the
		// generated content in so versions stay related.
		v := append([]byte(nil), cur...)
		splice := len(v) / 5
		copy(v[len(v)-splice:], next.Version[:splice])
		if _, err := s.AppendVersion(v); err != nil {
			t.Fatal(err)
		}
		versions = append(versions, v)
		cur = v
	}
	return s, versions
}

func TestStoreVersions(t *testing.T) {
	s, versions := buildChainStore(t, 5, 1)
	if s.NumVersions() != 5 {
		t.Fatalf("NumVersions = %d", s.NumVersions())
	}
	for k, want := range versions {
		got, err := s.Version(k)
		if err != nil {
			t.Fatalf("Version(%d): %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Version(%d) differs", k)
		}
	}
	if _, err := s.Version(5); !errors.Is(err, ErrNoSuchVersion) {
		t.Fatalf("error = %v", err)
	}
	if _, err := s.Version(-1); !errors.Is(err, ErrNoSuchVersion) {
		t.Fatalf("error = %v", err)
	}
}

func TestStoreLookup(t *testing.T) {
	s, _ := buildChainStore(t, 3, 2)
	crc, length, err := s.CRC(1)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := s.Lookup(crc, length)
	if !ok || idx != 1 {
		t.Fatalf("Lookup = %d, %v", idx, ok)
	}
	if _, ok := s.Lookup(0xFFFFFFFF, 1); ok {
		t.Fatal("bogus lookup succeeded")
	}
	if _, _, err := s.CRC(9); !errors.Is(err, ErrNoSuchVersion) {
		t.Fatalf("error = %v", err)
	}
}

func TestStoreDeltaBetween(t *testing.T) {
	s, versions := buildChainStore(t, 5, 3)
	// Every (i, j) pair must compose into a working direct delta.
	for i := 0; i < 5; i++ {
		for j := i; j < 5; j++ {
			d, err := s.DeltaBetween(i, j)
			if err != nil {
				t.Fatalf("DeltaBetween(%d,%d): %v", i, j, err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("DeltaBetween(%d,%d) invalid: %v", i, j, err)
			}
			got, err := d.Apply(versions[i])
			if err != nil {
				t.Fatalf("apply %d->%d: %v", i, j, err)
			}
			if !bytes.Equal(got, versions[j]) {
				t.Fatalf("composition %d->%d materializes the wrong version", i, j)
			}
		}
	}
	if _, err := s.DeltaBetween(3, 1); !errors.Is(err, ErrNoSuchVersion) {
		t.Fatalf("error = %v", err)
	}
}

func TestStoreInPlaceDeltaTo(t *testing.T) {
	s, versions := buildChainStore(t, 4, 4)
	for i := 0; i < 4; i++ {
		d, st, err := s.InPlaceDeltaTo(i, graph.LocallyMinimum{})
		if err != nil {
			t.Fatalf("InPlaceDeltaTo(%d): %v", i, err)
		}
		if st == nil {
			t.Fatal("nil stats")
		}
		if err := d.CheckInPlace(); err != nil {
			t.Fatalf("InPlaceDeltaTo(%d) not in-place safe: %v", i, err)
		}
		buf := make([]byte, d.InPlaceBufLen())
		copy(buf, versions[i])
		if err := d.ApplyInPlace(buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:d.VersionLen], versions[3]) {
			t.Fatalf("in-place from %d produced the wrong head", i)
		}
	}
}

func TestStoreSpaceSavings(t *testing.T) {
	s, _ := buildChainStore(t, 6, 5)
	storage, err := s.StorageBytes()
	if err != nil {
		t.Fatal(err)
	}
	full := s.FullBytes()
	if storage >= full/2 {
		t.Fatalf("delta chain uses %d bytes vs %d full — savings too small", storage, full)
	}
}

func TestStoreSaveLoad(t *testing.T) {
	s, versions := buildChainStore(t, 4, 6)
	blob, err := s.Save()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(blob)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVersions() != 4 {
		t.Fatalf("loaded %d versions", loaded.NumVersions())
	}
	for k, want := range versions {
		got, err := loaded.Version(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("loaded Version(%d) differs (%v)", k, err)
		}
	}
	// Identities must survive the round trip.
	for k := range versions {
		a, al, _ := s.CRC(k)
		b, bl, _ := loaded.CRC(k)
		if a != b || al != bl {
			t.Fatalf("identity of version %d changed", k)
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	s, _ := buildChainStore(t, 3, 7)
	blob, err := s.Save()
	if err != nil {
		t.Fatal(err)
	}
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] = 'X'
		if _, err := Load(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("error = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(blob); cut += len(blob) / 17 {
			if _, err := Load(blob[:cut]); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("flipped delta byte", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)-10] ^= 0x20
		if _, err := Load(bad); err == nil {
			t.Fatal("corrupted delta accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Load(nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("error = %v", err)
		}
	})
}

func TestEmptyBaseStore(t *testing.T) {
	s := New(nil)
	if s.NumVersions() != 1 {
		t.Fatal("empty store must hold the empty base version")
	}
	idx, err := s.AppendVersion([]byte("first real content"))
	if err != nil || idx != 1 {
		t.Fatalf("append: %d, %v", idx, err)
	}
	got, err := s.Version(1)
	if err != nil || string(got) != "first real content" {
		t.Fatalf("%q, %v", got, err)
	}
	d, err := s.DeltaBetween(0, 0)
	if err != nil || len(d.Commands) != 0 {
		t.Fatalf("identity delta on empty base: %v, %v", d, err)
	}
}

func TestQuickStoreRandomChains(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]byte, rng.Intn(4096)+64)
		rng.Read(base)
		s := New(base)
		versions := [][]byte{base}
		cur := base
		for k := 0; k < rng.Intn(4)+1; k++ {
			v := append([]byte(nil), cur...)
			for e := 0; e < rng.Intn(8); e++ {
				v[rng.Intn(len(v))] ^= byte(rng.Intn(255) + 1)
			}
			if rng.Intn(2) == 0 {
				extra := make([]byte, rng.Intn(256))
				rng.Read(extra)
				v = append(v, extra...)
			}
			if _, err := s.AppendVersion(v); err != nil {
				return false
			}
			versions = append(versions, v)
			cur = v
		}
		// Save/load and spot-check a random pair.
		blob, err := s.Save()
		if err != nil {
			return false
		}
		loaded, err := Load(blob)
		if err != nil {
			return false
		}
		i := rng.Intn(len(versions))
		j := i + rng.Intn(len(versions)-i)
		d, err := loaded.DeltaBetween(i, j)
		if err != nil {
			return false
		}
		got, err := d.Apply(versions[i])
		if err != nil {
			return false
		}
		return bytes.Equal(got, versions[j])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRollbackDelta(t *testing.T) {
	s, versions := buildChainStore(t, 4, 8)
	head := versions[len(versions)-1]
	for i := 0; i < len(versions)-1; i++ {
		d, st, err := s.RollbackDelta(i, graph.LocallyMinimum{})
		if err != nil {
			t.Fatalf("RollbackDelta(%d): %v", i, err)
		}
		if st == nil {
			t.Fatal("nil stats")
		}
		if err := d.CheckInPlace(); err != nil {
			t.Fatalf("rollback delta not in-place safe: %v", err)
		}
		buf := make([]byte, d.InPlaceBufLen())
		copy(buf, head)
		if err := d.ApplyInPlace(buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:d.VersionLen], versions[i]) {
			t.Fatalf("rollback to %d produced the wrong image", i)
		}
	}
	if _, _, err := s.RollbackDelta(9, graph.LocallyMinimum{}); err == nil {
		t.Fatal("out-of-range rollback accepted")
	}
}
