// Test package for the deprecatedapi analyzer. Named ipdelta so its own
// stub declarations resolve to the target package path, the way the real
// module root's do.
package ipdelta

// Stubs mirroring the real surface: the options-based entry point and the
// two deprecated shims over it.

type Delta struct{}

type Policy int

type Option func()

func WithPolicy(p Policy) Option { return func() {} }

func WithScratchBudget(n int64) Option { return func() {} }

func ConvertInPlace(d *Delta, ref []byte, opts ...Option) (*Delta, error) {
	return d, nil
}

// The shim bodies call the options API, so the declarations themselves
// produce no diagnostics.
func ConvertInPlaceWithPolicy(d *Delta, ref []byte, p Policy) (*Delta, error) {
	return ConvertInPlace(d, ref, WithPolicy(p))
}

func ConvertInPlaceScratch(d *Delta, ref []byte, budget int64) (*Delta, error) {
	return ConvertInPlace(d, ref, WithScratchBudget(budget))
}

func CallsLegacyPolicy(d *Delta, ref []byte) (*Delta, error) {
	return ConvertInPlaceWithPolicy(d, ref, 0) // want `ConvertInPlaceWithPolicy is deprecated; use ConvertInPlace with WithPolicy`
}

func CallsLegacyScratch(d *Delta, ref []byte) (*Delta, error) {
	return ConvertInPlaceScratch(d, ref, 4096) // want `ConvertInPlaceScratch is deprecated; use ConvertInPlace with WithScratchBudget`
}

func CallsOptionsAPI(d *Delta, ref []byte) (*Delta, error) {
	return ConvertInPlace(d, ref, WithPolicy(0), WithScratchBudget(4096))
}

func Suppressed(d *Delta, ref []byte) (*Delta, error) {
	return ConvertInPlaceWithPolicy(d, ref, 0) //ipvet:ignore deprecatedapi -- pinned legacy-compat call
}

// A method that reuses a deprecated name is not the package-level shim.
type shim struct{}

func (shim) ConvertInPlaceScratch(n int64) int64 { return n }

func MethodNameCollision() int64 {
	var s shim
	return s.ConvertInPlaceScratch(8)
}
