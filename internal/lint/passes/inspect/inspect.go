// Package inspect is a shared analysis pass that walks each package's
// syntax once and exposes the traversal — preorder node sequence plus a
// parent map — to every analyzer that declares it in Requires. It is the
// miniature of golang.org/x/tools/go/ast/inspector: with five analyzers
// each running their own ast.Inspect, the module was walked five times per
// package; with the pass, once.
package inspect

import (
	"go/ast"
	"reflect"

	"ipdelta/internal/lint/analysis"
)

// Analyzer is the inspect pass. It reports nothing; its value is the
// *Inspector result dependent analyzers obtain via pass.ResultOf.
var Analyzer = &analysis.Analyzer{
	Name: "inspect",
	Doc:  "collects a single shared AST traversal for dependent analyzers",
	Run:  run,
}

// Inspector is the cached traversal of one package.
type Inspector struct {
	nodes   []ast.Node            // preorder over all files
	parents map[ast.Node]ast.Node // child -> parent (roots map to nil)
}

func run(pass *analysis.Pass) (any, error) {
	in := &Inspector{parents: map[ast.Node]ast.Node{}}
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				in.parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			in.nodes = append(in.nodes, n)
			return true
		})
	}
	return in, nil
}

// Preorder calls f for every node whose concrete type matches one of the
// example nodes in filter, in source order across the package's files. A
// nil or empty filter matches every node.
func (in *Inspector) Preorder(filter []ast.Node, f func(ast.Node)) {
	if len(filter) == 0 {
		for _, n := range in.nodes {
			f(n)
		}
		return
	}
	want := make(map[reflect.Type]bool, len(filter))
	for _, ex := range filter {
		want[reflect.TypeOf(ex)] = true
	}
	for _, n := range in.nodes {
		if want[reflect.TypeOf(n)] {
			f(n)
		}
	}
}

// Parent returns the syntactic parent of n, or nil for file roots and
// unknown nodes.
func (in *Inspector) Parent(n ast.Node) ast.Node { return in.parents[n] }
