package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// ServeHTTP renders the registry: Prometheus-style plain text by
// default, a JSON Snapshot when the request asks for it with
// ?format=json or an Accept: application/json header. Mount the
// registry at /metrics:
//
//	mux.Handle("/metrics", reg)
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap := r.Snapshot()
	if req.URL.Query().Get("format") == "json" ||
		strings.Contains(req.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(snap.Text()))
}

// Text renders the snapshot in the Prometheus text exposition format:
// one `name value` line per counter and gauge, and the conventional
// `_bucket{le="..."}`, `_sum`, `_count` triplet per histogram. Names are
// sorted so scrapes diff cleanly.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "%s %d\n", name, s.Gauges[name])
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		// Cumulative bucket counts, per the Prometheus convention.
		cum := int64(0)
		base, labelPrefix := splitLabel(name)
		for _, bk := range h.Buckets {
			cum += bk.Count
			le := "+Inf"
			if !bk.Inf {
				le = fmt.Sprintf("%d", bk.Le)
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=\"%s\"} %d\n", base, labelPrefix, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %d\n", base, wholeLabel(name), h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", base, wholeLabel(name), h.Count)
	}
	return b.String()
}

// splitLabel splits a metric name carrying a baked-in label set, like
// `x_nanos{policy="lm"}`, into the bare name and a label prefix ready to
// be joined with the le label (`policy="lm",`). Unlabelled names return
// an empty prefix.
func splitLabel(name string) (base, labelPrefix string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := strings.TrimSuffix(name[i+1:], "}")
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

// wholeLabel returns the label set of a baked-label name (`{policy="lm"}`)
// or "".
func wholeLabel(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return name[i:]
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
