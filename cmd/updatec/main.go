// Command updatec simulates a limited network device updating its image
// from an updated server: the image file is loaded into a simulated flash
// part, the in-place delta is streamed and applied with a bounded working
// buffer, and the updated image is written back.
//
// By default the client speaks protocol v2 — one framed, multiplexed
// connection with each session attempt on a fresh stream — falling back
// to the deprecated v1 single-stream protocol when the server does not
// answer the v2 preface. -protocol pins one or the other.
//
// The client is resilient: transient failures are retried with capped
// exponential backoff (resuming the interrupted update), and persistent
// delta failures degrade to a full-image transfer. For chaos testing, the
// -fault-* flags wrap each attempt's connection in a seeded network fault
// injector.
//
// Usage:
//
//	updatec -server 127.0.0.1:7070 -image device.img [-protocol auto|v2|v1]
//	        [-capacity N] [-rate BPS] [-timeout D] [-retries N]
//	        [-fallback-after N] [-metrics] [-v]
//	        [-fault-seed N] [-fault-rate P] [-fault-corrupt P] [-fault-drop-after N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"

	"ipdelta/internal/device"
	"ipdelta/internal/netupdate"
	"ipdelta/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "updatec:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("updatec", flag.ContinueOnError)
	server := fs.String("server", "127.0.0.1:7070", "update server address")
	protocol := fs.String("protocol", "auto", "wire protocol: v2 (multiplexed), v1 (deprecated single-stream), auto (v2 with v1 fallback)")
	imagePath := fs.String("image", "", "installed image file (updated in place on success)")
	capacity := fs.Int64("capacity", 0, "flash capacity in bytes (default: 2x image size)")
	rate := fs.Int64("rate", 0, "simulated link rate in bits/second (0 = unthrottled)")
	workBuf := fs.Int("workbuf", device.DefaultWorkBufSize, "device working buffer size")
	var nf netupdate.Flags
	nf.RegisterClient(fs)
	nf.RegisterFaults(fs)
	metrics := fs.Bool("metrics", false, "print a client metrics snapshot (attempts, retries, degradations) to stderr")
	verbose := fs.Bool("v", false, "log each attempt (structured, stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *imagePath == "" {
		return errors.New("updatec: -image is required")
	}
	switch *protocol {
	case "auto", "v1", "v2":
	default:
		return fmt.Errorf("updatec: unknown -protocol %q (want auto, v2, or v1)", *protocol)
	}
	f, err := os.OpenFile(*imagePath, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	imageLen := fi.Size()
	capBytes := *capacity
	if capBytes == 0 {
		capBytes = imageLen * 2
	}
	// Patch the image file directly, in place, through the bounded-memory
	// device engine — no second copy of the image is ever made.
	store, err := device.NewFileStore(f, capBytes)
	if err != nil {
		return err
	}
	dev := device.New(store, imageLen, *workBuf)

	logger := obs.NopLogger()
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	opts := append(nf.Options(), netupdate.WithObserver(reg), netupdate.WithLogger(logger))

	dial, cleanup, err := dialer(*server, *protocol, *rate, &nf, opts)
	if err != nil {
		return err
	}
	defer cleanup()

	client := netupdate.NewClient(opts...)
	rep, err := client.Run(context.Background(), dial, dev)
	for _, line := range rep.FailureLog {
		fmt.Fprintln(os.Stderr, "updatec:", line)
	}
	if reg != nil {
		fmt.Fprint(os.Stderr, reg.Snapshot().Text())
	}
	if err != nil {
		return err
	}
	if rep.Result.UpToDate {
		fmt.Println("updatec: already up to date")
		return nil
	}
	if err := store.Truncate(dev.ImageLen()); err != nil {
		return err
	}
	if err := store.Sync(); err != nil {
		return err
	}
	how := "delta"
	if rep.Result.FullImage {
		how = "full image (degraded)"
	}
	fmt.Printf("updatec: updated %s in place via %d %s bytes in %d attempt(s) (image now %d bytes)\n",
		*imagePath, rep.Result.DeltaBytes, how, rep.Attempts, dev.ImageLen())
	return nil
}

// dialer builds the per-attempt DialFunc for the chosen protocol. Under
// v2 one multiplexed connection is dialed up front and each attempt
// opens a fresh stream on it; under v1 each attempt dials its own TCP
// connection. Faults (if configured) wrap whatever the attempt sees,
// with a per-attempt seed so retries get fresh but reproducible weather.
func dialer(server, protocol string, rate int64, nf *netupdate.Flags, opts []netupdate.Option) (netupdate.DialFunc, func(), error) {
	link := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", server)
		if err != nil {
			return nil, err
		}
		c := net.Conn(conn)
		if rate > 0 {
			c = netupdate.NewThrottledConn(c, rate)
		}
		return c, nil
	}
	attempts := uint64(0)
	fault := func(c net.Conn) net.Conn {
		if !nf.FaultsEnabled() {
			return c
		}
		attempts++
		return netupdate.NewFlakyConn(c, nf.FaultProfile(attempts))
	}

	if protocol != "v1" {
		conn, err := link(context.Background())
		if err != nil {
			return nil, nil, err
		}
		cc, err := netupdate.NewClientConn(conn, opts...)
		switch {
		case err == nil:
			dial := func(ctx context.Context) (net.Conn, error) {
				st, err := cc.OpenStream(ctx)
				if err != nil {
					return nil, err
				}
				return fault(st), nil
			}
			return dial, func() { cc.Close() }, nil
		case protocol == "v2" || !errors.Is(err, netupdate.ErrVersionMismatch):
			conn.Close()
			return nil, nil, err
		default:
			// auto: the server does not speak v2 — fall back to v1.
			conn.Close()
		}
	}
	dial := func(ctx context.Context) (net.Conn, error) {
		c, err := link(ctx)
		if err != nil {
			return nil, err
		}
		return fault(c), nil
	}
	return dial, func() {}, nil
}
