package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
	"ipdelta/internal/stats"
)

// StrategyRow is one cycle-breaking configuration in the strategy ablation.
type StrategyRow struct {
	Name string
	// CorpusBytes is the total data converted from copies to adds over the
	// corpus — lower is better.
	CorpusBytes int64
	// CorpusConversions counts converted copies over the corpus.
	CorpusConversions int
	// TreeBytes is the bytes converted on the Figure 2 adversarial tree.
	TreeBytes int64
}

// StrategyResult is the E8 ablation (beyond the paper): the paper's two
// DFS-embedded policies against the SCC-scoped greedy feedback vertex set,
// on both the realistic corpus and the adversarial tree. It shows the
// trade: SCC-greedy escapes the Figure 2 failure mode but does not beat
// locally-minimum on realistic inputs.
type StrategyResult struct {
	Rows      []StrategyRow
	TreeDepth int
}

// RunStrategies measures all three cycle-breaking configurations.
func RunStrategies(pairs []corpus.Pair, algo diff.Algorithm, treeDepth, leafLen int) (*StrategyResult, error) {
	configs := []struct {
		name string
		opts []inplace.Option
	}{
		{"dfs/locally-minimum", []inplace.Option{inplace.WithPolicy(graph.LocallyMinimum{})}},
		{"dfs/constant-time", []inplace.Option{inplace.WithPolicy(graph.ConstantTime{})}},
		{"scc-greedy", []inplace.Option{inplace.WithStrategy(inplace.StrategySCCGreedy)}},
	}
	res := &StrategyResult{TreeDepth: treeDepth}
	tree := inplace.AdversarialDelta(treeDepth, leafLen)
	ref := make([]byte, tree.RefLen)
	rand.New(rand.NewSource(42)).Read(ref)

	for _, cfg := range configs {
		row := StrategyRow{Name: cfg.name}
		for _, p := range pairs {
			d, err := algo.Diff(p.Ref, p.Version)
			if err != nil {
				return nil, err
			}
			_, st, err := inplace.Convert(d, p.Ref, cfg.opts...)
			if err != nil {
				return nil, fmt.Errorf("strategy %s on %s: %w", cfg.name, p.Name, err)
			}
			row.CorpusBytes += st.ConvertedBytes
			row.CorpusConversions += st.ConvertedCopies
		}
		_, st, err := inplace.Convert(tree, ref, cfg.opts...)
		if err != nil {
			return nil, err
		}
		row.TreeBytes = st.ConvertedBytes
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the strategy ablation.
func (r *StrategyResult) Render(w io.Writer) error {
	t := stats.Table{
		Title: fmt.Sprintf("E8 — cycle-breaking strategy ablation (corpus + Figure 2 tree, depth %d)", r.TreeDepth),
		Headers: []string{
			"strategy", "corpus bytes converted", "corpus copies converted", "adversarial-tree bytes",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Name,
			stats.Bytes(row.CorpusBytes),
			fmt.Sprintf("%d", row.CorpusConversions),
			stats.Bytes(row.TreeBytes),
		)
	}
	return t.Render(w)
}
