// Command ipbench regenerates every table and figure of the paper's
// evaluation over the synthetic corpus (see DESIGN.md for the experiment
// index E1–E12).
//
// Usage:
//
//	ipbench [-seed N] [-quick] [-json] [-corpus-dir DIR]
//	        [-table1] [-timing] [-fig2] [-fig3] [-transfer] [-codewords]
//	        [-policies] [-strategies] [-composition] [-algorithms]
//	        [-fleet] [-scratch]
//	ipbench -bench-baseline [-baseline-out FILE] [-quick] [-seed N]
//	ipbench -compare OLD.json [-compare-to NEW.json] [-threshold R]
//	ipbench -scaling-gate [-gate-threshold R] [-quick] [-seed N]
//	ipbench -recipe-gate [-recipe-speedup F] [-quick] [-seed N]
//
// With no experiment flags, all experiments run. -json emits one JSON
// document with every selected result instead of rendered tables.
// -bench-baseline skips the experiments and instead measures the
// conversion pipeline's hot paths (convert, CRWI build, diff — sequential
// and parallel — batch, and store serving cold vs cached), writing ns/op,
// allocs/op, and MB/s as JSON for before/after comparison. -compare reads
// a previously committed baseline and a fresh one and exits non-zero when
// any shared benchmark slowed down by more than -threshold (default 0.25,
// i.e. 25%), or when a zero-allocation benchmark started allocating.
// -scaling-gate measures the diff scaling curve (sequential reuse,
// parallel at 1..NumCPU workers, auto) in-process and exits non-zero when
// parallel at full core count or the auto engine loses to sequential
// reuse by more than -gate-threshold (default 0.05, i.e. 5%).
// -recipe-gate checks both correctness and speed of the chunked
// recipe-diff fast path on a 16 MiB 5%-churn input: both deltas must
// reconstruct identical bytes, and recipe diffing must beat the full
// differ by at least -recipe-speedup (default 2.0x).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
	"ipdelta/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ipbench:", err)
		os.Exit(1)
	}
}

// renderer is what every experiment result knows how to do.
type renderer interface {
	Render(io.Writer) error
}

func run(args []string) error {
	fs := flag.NewFlagSet("ipbench", flag.ContinueOnError)
	seed := fs.Int64("seed", 1998, "corpus seed")
	quick := fs.Bool("quick", false, "use the small corpus")
	jsonOut := fs.Bool("json", false, "emit results as one JSON document")
	corpusDir := fs.String("corpus-dir", "", "run on real version pairs from this directory (*.old/*.new or *.v<N> files) instead of the synthetic corpus")
	t1 := fs.Bool("table1", false, "E1: Table 1 compression")
	timing := fs.Bool("timing", false, "E2: diff vs conversion run time")
	fig2 := fs.Bool("fig2", false, "E3: Figure 2 adversarial tree")
	fig3 := fs.Bool("fig3", false, "E4: Figure 3 edge bounds")
	transfer := fs.Bool("transfer", false, "E5: transmission time")
	codewords := fs.Bool("codewords", false, "E6: codeword ablation")
	policies := fs.Bool("policies", false, "E7: policy vs optimal ablation")
	strategies := fs.Bool("strategies", false, "E8: cycle-breaking strategy ablation")
	composition := fs.Bool("composition", false, "E9: composed chain delta vs direct diff")
	algorithms := fs.Bool("algorithms", false, "E10: differencing algorithm ablation")
	fleetFlag := fs.Bool("fleet", false, "E11: fleet rollout comparison")
	scratch := fs.Bool("scratch", false, "E12: bounded-scratch trade-off")
	benchBaseline := fs.Bool("bench-baseline", false, "measure the conversion pipeline and emit a machine-readable baseline instead of running experiments")
	baselineOut := fs.String("baseline-out", "BENCH_convert.json", "output path for -bench-baseline")
	comparePath := fs.String("compare", "", "compare this old baseline JSON against -compare-to and exit non-zero on regression")
	compareTo := fs.String("compare-to", "BENCH_convert.json", "new baseline JSON for -compare")
	threshold := fs.Float64("threshold", 0.25, "allowed ns/op slowdown ratio for -compare (0.25 = 25%)")
	scalingGate := fs.Bool("scaling-gate", false, "measure the diff scaling curve and exit non-zero when parallel at full core count or auto loses to sequential reuse")
	gateThreshold := fs.Float64("gate-threshold", 0.05, "allowed slowdown ratio for -scaling-gate (0.05 = 5%)")
	recipeGate := fs.Bool("recipe-gate", false, "measure recipe diff vs the full differ on churned input and exit non-zero unless recipe wins by -recipe-speedup")
	recipeSpeedup := fs.Float64("recipe-speedup", 2.0, "required recipe-vs-full speedup factor for -recipe-gate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *comparePath != "" {
		return runCompare(os.Stdout, *comparePath, *compareTo, *threshold)
	}
	if *scalingGate {
		return runScalingGate(os.Stdout, *gateThreshold, *quick, *seed)
	}
	if *recipeGate {
		return runRecipeGate(os.Stdout, *recipeSpeedup, *quick, *seed)
	}
	if *benchBaseline {
		return runBaseline(os.Stdout, *baselineOut, *quick, *seed)
	}
	all := !(*t1 || *timing || *fig2 || *fig3 || *transfer || *codewords ||
		*policies || *strategies || *composition || *algorithms || *fleetFlag || *scratch)

	out := os.Stdout
	var pairs []corpus.Pair
	switch {
	case *corpusDir != "":
		var err error
		pairs, err = corpus.FromFiles(*corpusDir)
		if err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Fprintf(out, "corpus: %d real version pairs from %s\n\n", len(pairs), *corpusDir)
		}
	case *quick:
		pairs = corpus.SmallCorpus(*seed)
	default:
		pairs = corpus.StandardCorpus(*seed)
	}
	algo := diff.NewLinear()

	results := map[string]renderer{}
	emit := func(name string, res renderer, err error) error {
		if err != nil {
			return err
		}
		results[name] = res
		if *jsonOut {
			return nil
		}
		if err := res.Render(out); err != nil {
			return err
		}
		_, err = fmt.Fprintln(out)
		return err
	}

	if all || *t1 {
		res, err := experiments.RunTable1(pairs, algo)
		if err := emit("table1", res, err); err != nil {
			return err
		}
	}
	if all || *timing {
		res, err := experiments.RunTiming(pairs, algo)
		if err := emit("timing", res, err); err != nil {
			return err
		}
	}
	if all || *fig2 {
		res, err := experiments.RunFig2([]int{2, 4, 6, 8, 10}, 64)
		if err := emit("fig2", res, err); err != nil {
			return err
		}
	}
	if all || *fig3 {
		res, err := experiments.RunFig3([]int{8, 32, 128, 512, 1024})
		if err := emit("fig3", res, err); err != nil {
			return err
		}
	}
	if all || *transfer {
		// The stride must not share a factor with the 4-rate grid cycle,
		// or the sample would see a single change rate.
		transferPairs := pairs
		if len(transferPairs) > 6 {
			stride := len(pairs)/6 | 1
			if stride%4 == 0 {
				stride++
			}
			transferPairs = nil
			for k := 0; k < len(pairs) && len(transferPairs) < 6; k += stride {
				transferPairs = append(transferPairs, pairs[k])
			}
		}
		res, err := experiments.RunTransfer(transferPairs, []int64{28_800, 256_000, 1_000_000})
		if err := emit("transfer", res, err); err != nil {
			return err
		}
	}
	if all || *codewords {
		res, err := experiments.RunCodewords(pairs, algo)
		if err := emit("codewords", res, err); err != nil {
			return err
		}
	}
	if all || *policies {
		res, err := experiments.RunPolicies(200, 12, *seed)
		if err := emit("policies", res, err); err != nil {
			return err
		}
	}
	if all || *strategies {
		res, err := experiments.RunStrategies(pairs, algo, 8, 64)
		if err := emit("strategies", res, err); err != nil {
			return err
		}
	}
	if all || *composition {
		base := corpus.Generate(corpus.PairSpec{
			Profile: corpus.Binary, Size: 64 << 10, ChangeRate: 0.05, Seed: *seed,
		})
		res, err := experiments.RunComposition(base, 6)
		if err := emit("composition", res, err); err != nil {
			return err
		}
	}
	if all || *algorithms {
		res, err := experiments.RunAlgorithms(pairs)
		if err := emit("algorithms", res, err); err != nil {
			return err
		}
	}
	if all || *scratch {
		res, err := experiments.RunScratch(pairs, algo, []float64{0, 0.001, 0.01, 0.05, 0.25, 1.0})
		if err := emit("scratch", res, err); err != nil {
			return err
		}
	}
	if all || *fleetFlag {
		size := 128 << 10
		devices := 40
		if *quick {
			size = 16 << 10
			devices = 10
		}
		res, err := experiments.RunFleet(size, 4, devices, 256_000, *seed)
		if err := emit("fleet", res, err); err != nil {
			return err
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}
