package httpdelta

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ipdelta/internal/corpus"
)

func newPage(seed int64) []byte {
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Text, Size: 32 << 10, ChangeRate: 0, Seed: seed})
	return pair.Ref
}

// edit mutates a small part of the page.
func edit(page []byte, k byte) []byte {
	out := append([]byte(nil), page...)
	copy(out[100:], bytes.Repeat([]byte{'A' + k%26}, 200))
	return out
}

func TestDeltaEncodedFetches(t *testing.T) {
	v1 := newPage(1)
	res := NewResource(v1)
	srv := httptest.NewServer(res)
	defer srv.Close()

	c := NewClient(srv.Client())
	got, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v1) {
		t.Fatal("cold fetch mismatch")
	}
	cold := c.TransferredBytes()
	if cold < int64(len(v1)) {
		t.Fatalf("cold fetch transferred %d < body %d", cold, len(v1))
	}

	// Update and fetch warm: delta-encoded, tiny transfer.
	v2 := edit(v1, 0)
	res.Update(v2)
	got, err = c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("warm fetch mismatch")
	}
	warm := c.TransferredBytes() - cold
	if warm > int64(len(v2))/10 {
		t.Fatalf("warm fetch transferred %d of %d bytes; delta encoding missing", warm, len(v2))
	}

	// Unchanged: 304, zero body bytes.
	before := c.TransferredBytes()
	got, err = c.Get(srv.URL)
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("304 fetch: %v", err)
	}
	if c.TransferredBytes() != before {
		t.Fatal("304 fetch transferred body bytes")
	}
}

func TestParallelDiffOption(t *testing.T) {
	v1 := newPage(7)
	res := NewResource(v1, WithParallelDiff(4))
	srv := httptest.NewServer(res)
	defer srv.Close()

	c := NewClient(srv.Client())
	if _, err := c.Get(srv.URL); err != nil {
		t.Fatal(err)
	}
	cold := c.TransferredBytes()
	v2 := edit(v1, 3)
	res.Update(v2)
	got, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("warm fetch mismatch with parallel differencer")
	}
	if warm := c.TransferredBytes() - cold; warm > int64(len(v2))/10 {
		t.Fatalf("parallel diff transferred %d of %d bytes; delta encoding degraded", warm, len(v2))
	}
}

func TestPlainClientGetsFullBody(t *testing.T) {
	v1 := newPage(2)
	res := NewResource(v1)
	srv := httptest.NewServer(res)
	defer srv.Close()

	// A client that does not advertise A-IM gets 200 + full body even with
	// a stale etag.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("If-None-Match", "\"deadbeef-1\"")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
}

func TestEvictedVersionFallsBackToFullBody(t *testing.T) {
	v := newPage(3)
	res := NewResource(v, WithMaxVersions(2))
	srv := httptest.NewServer(res)
	defer srv.Close()

	c := NewClient(srv.Client())
	if _, err := c.Get(srv.URL); err != nil {
		t.Fatal(err)
	}
	// Publish enough versions to evict the client's base.
	for k := byte(1); k <= 4; k++ {
		v = edit(v, k)
		res.Update(v)
	}
	before := c.TransferredBytes()
	got, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v) {
		t.Fatal("fetch after eviction mismatch")
	}
	if c.TransferredBytes()-before < int64(len(v)) {
		t.Fatal("expected a full-body transfer after base eviction")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(NewResource([]byte("x")))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", bytes.NewReader([]byte("y")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %s", resp.Status)
	}
}

func TestConcurrentClients(t *testing.T) {
	v1 := newPage(4)
	res := NewResource(v1)
	srv := httptest.NewServer(res)
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(srv.Client())
			for round := byte(0); round < 4; round++ {
				if _, err := c.Get(srv.URL); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	// Update concurrently with the fetches.
	for k := byte(1); k <= 6; k++ {
		res.Update(edit(v1, k))
	}
	wg.Wait()
	for k := 0; k < 8; k++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestEtagStability(t *testing.T) {
	body := []byte("same content")
	if etagOf(body) != etagOf(append([]byte(nil), body...)) {
		t.Fatal("etag not content-derived")
	}
	res := NewResource(body)
	if res.ETag() != etagOf(body) {
		t.Fatal("resource etag mismatch")
	}
	// Re-publishing identical content keeps the version list deduplicated.
	res.Update(body)
	res.mu.RLock()
	n := len(res.order)
	res.mu.RUnlock()
	if n != 1 {
		t.Fatalf("duplicate publish created %d versions", n)
	}
}
