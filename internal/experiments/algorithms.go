package experiments

import (
	"fmt"
	"io"
	"time"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
	"ipdelta/internal/inplace"
	"ipdelta/internal/stats"
)

// AlgorithmRow is one differencer in the algorithm ablation.
type AlgorithmRow struct {
	Name string
	// Compression is total delta bytes / total version bytes (ordered
	// format).
	Compression float64
	// InPlaceCompression is the same after in-place conversion (compact
	// format).
	InPlaceCompression float64
	// Time is the total differencing time over the corpus.
	Time time.Duration
	// Commands counts emitted commands (fragmentation proxy).
	Commands int
}

// AlgorithmResult is the E10 ablation: the related-work spectrum of
// differencing algorithms — byte-granular linear (the paper's [1,5]),
// byte-granular greedy ([11]), block-granular (rsync-style), and a
// suffix-array longest-match differencer — feeding
// the same in-place converter.
type AlgorithmResult struct {
	Rows         []AlgorithmRow
	VersionBytes int64
}

// RunAlgorithms measures each differencer over the corpus.
func RunAlgorithms(pairs []corpus.Pair) (*AlgorithmResult, error) {
	algos := []diff.Algorithm{
		diff.NewLinear(),
		diff.NewGreedy(),
		diff.NewBlockwise(),
		diff.NewSuffix(),
		diff.NewCorrecting(diff.NewLinear()),
	}
	res := &AlgorithmResult{}
	for _, p := range pairs {
		res.VersionBytes += int64(len(p.Version))
	}
	for _, a := range algos {
		row := AlgorithmRow{Name: a.Name()}
		var plain, ip int64
		for _, p := range pairs {
			start := time.Now()
			d, err := a.Diff(p.Ref, p.Version)
			if err != nil {
				return nil, fmt.Errorf("algorithms %s on %s: %w", a.Name(), p.Name, err)
			}
			row.Time += time.Since(start)
			row.Commands += len(d.Commands)
			n, err := codec.EncodedSize(d, codec.FormatOrdered)
			if err != nil {
				return nil, err
			}
			plain += n
			conv, _, err := inplace.Convert(d, p.Ref)
			if err != nil {
				return nil, err
			}
			m, err := codec.EncodedSize(conv, codec.FormatCompact)
			if err != nil {
				return nil, err
			}
			ip += m
		}
		row.Compression = float64(plain) / float64(res.VersionBytes)
		row.InPlaceCompression = float64(ip) / float64(res.VersionBytes)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the algorithm ablation.
func (r *AlgorithmResult) Render(w io.Writer) error {
	t := stats.Table{
		Title:   "E10 — differencing algorithm ablation (same converter, same corpus)",
		Headers: []string{"algorithm", "compression", "in-place compression", "commands", "diff time"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Name,
			stats.Pct(row.Compression),
			stats.Pct(row.InPlaceCompression),
			fmt.Sprintf("%d", row.Commands),
			row.Time.Round(time.Microsecond).String(),
		)
	}
	return t.Render(w)
}
