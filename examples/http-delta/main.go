// HTTP delta distribution: the related-work scenario of the paper
// (optimistic deltas for WWW latency reduction, RFC 3229 delta encoding).
// A server publishes a mutable resource; clients presenting the entity tag
// of their cached copy receive a 226 IM Used delta response instead of the
// full body.
//
// The demo runs the httpdelta resource on a loopback listener, fetches it
// cold, mutates it twice, fetches warm, and compares transfer sizes.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net/http/httptest"

	"ipdelta/internal/httpdelta"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A "stock ticker page" that changes a little between fetches.
	page := bytes.Repeat([]byte("<tr><td>quote</td><td>42.00</td></tr>\n"), 800)
	res := httpdelta.NewResource(page)
	srv := httptest.NewServer(res)
	defer srv.Close()

	c := httpdelta.NewClient(srv.Client())

	got, err := c.Get(srv.URL)
	if err != nil {
		return err
	}
	cold := c.TransferredBytes()
	fmt.Printf("cold fetch: %d bytes (full resource, etag %s)\n", cold, res.ETag())

	// The resource changes slightly, twice.
	for round := 1; round <= 2; round++ {
		page = append([]byte(nil), page...)
		copy(page[100*round:], []byte(fmt.Sprintf("<tr><td>quote</td><td>%d.15</td></tr>", 42+round)))
		page = append(page, []byte("<tr><td>new</td><td>1.00</td></tr>\n")...)
		res.Update(page)

		before := c.TransferredBytes()
		got, err = c.Get(srv.URL)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, page) {
			return fmt.Errorf("client cache does not match round %d", round)
		}
		warm := c.TransferredBytes() - before
		fmt.Printf("warm fetch %d: %d bytes (delta-encoded, %.1f%% of full body)\n",
			round, warm, 100*float64(warm)/float64(len(page)))
	}

	before := c.TransferredBytes()
	if _, err := c.Get(srv.URL); err != nil {
		return err
	}
	fmt.Printf("repeat fetch: %d bytes (304 Not Modified)\n", c.TransferredBytes()-before)
	fmt.Println("client cache is current")
	return nil
}
