package netupdate

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"ipdelta/internal/codec"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
	"ipdelta/internal/netupdate/mux"
	"ipdelta/internal/obs"
)

// ErrBudgetExhausted reports a client that burned through its server-side
// failure budget and is being turned away without a session.
var ErrBudgetExhausted = errors.New("netupdate: client exceeded its failure budget")

// Server distributes the newest version of one image as in-place
// reconstructible deltas against any version in its release history.
type Server struct {
	history [][]byte // oldest first; last entry is current
	crcs    []uint32
	format  codec.Format
	algo    diff.Algorithm
	policy  graph.Policy

	scratchBudget int64
	msgTimeout    time.Duration
	failBudget    int
	muxSet        mux.Settings

	obsReg *obs.Registry
	met    *serverMetrics
	log    *slog.Logger

	mu           sync.Mutex
	cache        map[uint32][]byte // encoded delta per source version CRC
	scratchCache map[uint32][]byte // encoded scratch-format delta per CRC
	failures     map[string]int    // consecutive failed sessions per client

	// ServedBytes counts delta payload bytes sent, for transfer accounting.
	served int64
}

// NewServer creates a server for the given release history (oldest first).
// The last entry is the version devices are upgraded to. Options are the
// shared netupdate Config options; client-only knobs are ignored.
func NewServer(history [][]byte, opts ...Option) (*Server, error) {
	if len(history) == 0 {
		return nil, fmt.Errorf("netupdate: empty release history")
	}
	cfg := Config{
		Format:    codec.FormatCompact,
		Algorithm: diff.NewLinear(),
		Policy:    graph.LocallyMinimum{},
	}
	cfg.apply(opts)
	s := &Server{
		history:       history,
		format:        cfg.Format,
		algo:          cfg.Algorithm,
		policy:        cfg.Policy,
		scratchBudget: cfg.ScratchBudget,
		msgTimeout:    cfg.MessageTimeout,
		failBudget:    cfg.FailureBudget,
		obsReg:        cfg.Observer,
		log:           cfg.Logger,
		muxSet:        cfg.muxSettings(),
		cache:         make(map[uint32][]byte),
		scratchCache:  make(map[uint32][]byte),
		failures:      make(map[string]int),
	}
	if s.obsReg != nil {
		s.met = resolveServerMetrics(s.obsReg)
	}
	s.log = obs.OrNop(s.log)
	if !s.format.InPlaceCapable() {
		return nil, fmt.Errorf("netupdate: format %v cannot carry in-place deltas", s.format)
	}
	s.crcs = make([]uint32, len(history))
	for k, v := range history {
		s.crcs[k] = crc32.ChecksumIEEE(v)
	}
	return s, nil
}

// Current returns the newest version image.
func (s *Server) Current() []byte { return s.history[len(s.history)-1] }

// ServedBytes returns the total delta payload bytes sent so far.
func (s *Server) ServedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// findVersion returns the history index matching the CRC and length.
func (s *Server) findVersion(crc uint32, length int64) (int, bool) {
	for k := range s.history {
		if s.crcs[k] == crc && int64(len(s.history[k])) == length {
			return k, true
		}
	}
	return 0, false
}

// deltaFor returns (building and caching if needed) the encoded in-place
// delta from history[idx] to the current version. With scratch enabled,
// the scratch-format variant is built too and preferred for devices whose
// capacity accommodates it.
func (s *Server) deltaFor(idx int, deviceCapacity int64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	crc := s.crcs[idx]
	build := func(opts []inplace.Option, format codec.Format) ([]byte, error) {
		ref := s.history[idx]
		d, err := s.algo.Diff(ref, s.Current())
		if err != nil {
			return nil, fmt.Errorf("netupdate diff: %w", err)
		}
		ip, _, err := inplace.Convert(d, ref, opts...)
		if err != nil {
			return nil, fmt.Errorf("netupdate convert: %w", err)
		}
		var buf bytes.Buffer
		if _, err := codec.Encode(&buf, ip, format); err != nil {
			return nil, fmt.Errorf("netupdate encode: %w", err)
		}
		return buf.Bytes(), nil
	}
	if s.scratchBudget > 0 {
		enc, ok := s.scratchCache[crc]
		if !ok {
			var err error
			enc, err = build([]inplace.Option{
				inplace.WithPolicy(s.policy),
				inplace.WithScratchBudget(s.scratchBudget),
			}, codec.FormatScratch)
			if err != nil {
				return nil, err
			}
			s.scratchCache[crc] = enc
			s.noteCacheSize()
		}
		// Peek the scratch requirement from the encoded header.
		dec, err := codec.NewDecoder(bytes.NewReader(enc))
		if err != nil {
			return nil, err
		}
		imageArea := dec.Header().VersionLen
		if dec.Header().RefLen > imageArea {
			imageArea = dec.Header().RefLen
		}
		if imageArea+dec.Header().ScratchLen <= deviceCapacity {
			return enc, nil
		}
		// Fall through to the plain delta for tight devices.
	}
	if enc, ok := s.cache[crc]; ok {
		return enc, nil
	}
	enc, err := build([]inplace.Option{inplace.WithPolicy(s.policy)}, s.format)
	if err != nil {
		return nil, err
	}
	s.cache[crc] = enc
	s.noteCacheSize()
	return enc, nil
}

// noteCacheSize refreshes the cached-deltas gauge; callers hold s.mu.
func (s *Server) noteCacheSize() {
	if s.met != nil {
		s.met.cachedDeltas.Set(int64(len(s.cache) + len(s.scratchCache)))
	}
}

// Prewarm builds every per-release delta ahead of time with a bounded
// worker pool, so the first device of each release is not stalled behind a
// diff+convert. It returns the first error encountered, after attempting
// every release.
func (s *Server) Prewarm(workers int) error {
	current := s.Current()
	jobs := make([]inplace.Job, 0, len(s.history)-1)
	idxs := make([]int, 0, len(s.history)-1)
	for k := 0; k < len(s.history)-1; k++ {
		d, err := s.algo.Diff(s.history[k], current)
		if err != nil {
			return fmt.Errorf("netupdate prewarm diff: %w", err)
		}
		jobs = append(jobs, inplace.Job{Delta: d, Ref: s.history[k]})
		idxs = append(idxs, k)
	}
	opts := []inplace.Option{inplace.WithPolicy(s.policy)}
	format := s.format
	if s.scratchBudget > 0 {
		opts = append(opts, inplace.WithScratchBudget(s.scratchBudget))
		format = codec.FormatScratch
	}
	var firstErr error
	for k, r := range inplace.ConvertBatch(jobs, workers, opts...) {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = r.Err
			}
			continue
		}
		var buf bytes.Buffer
		if _, err := codec.Encode(&buf, r.Delta, format); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		crc := s.crcs[idxs[k]]
		s.mu.Lock()
		if s.scratchBudget > 0 {
			s.scratchCache[crc] = buf.Bytes()
		} else {
			s.cache[crc] = buf.Bytes()
		}
		s.noteCacheSize()
		s.mu.Unlock()
	}
	return firstErr
}

// Serve accepts connections until the listener is closed, handling each in
// its own goroutine. It returns the listener's error (net.ErrClosed after
// a clean Close).
func (s *Server) Serve(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			_ = s.HandleConn(conn) // per-connection errors end that session only
		}()
	}
}

// clientKey identifies a client for failure accounting: the remote host
// without the (per-connection) port.
func clientKey(addr net.Addr) string {
	if addr == nil {
		return ""
	}
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	return host
}

// admit reports whether the client still has failure budget.
func (s *Server) admit(key string) bool {
	if s.failBudget <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures[key] < s.failBudget
}

// note records one session outcome against the client's failure budget.
func (s *Server) note(key string, err error) {
	if s.failBudget <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		delete(s.failures, key)
	} else {
		s.failures[key]++
	}
}

// addServed accumulates payload transfer accounting.
func (s *Server) addServed(n int64) {
	s.mu.Lock()
	s.served += n
	s.mu.Unlock()
	if s.met != nil {
		s.met.bytesServed.Add(n)
	}
}

// HandleConn serves one connection, negotiating the protocol version
// from its first byte: a v2 frame (magic 0xD5) starts a multiplexed
// transport serving one session per stream; anything else falls back to
// the deprecated v1 single-session protocol, whose first byte is a v1
// message type.
func (s *Server) HandleConn(conn net.Conn) error {
	br := bufio.NewReaderSize(conn, 64<<10)
	if s.msgTimeout > 0 {
		// A peer that connects and never speaks cannot pin the worker in
		// the version sniff.
		_ = conn.SetReadDeadline(time.Now().Add(s.msgTimeout))
	}
	first, err := br.Peek(1)
	if s.msgTimeout > 0 {
		_ = conn.SetReadDeadline(time.Time{})
	}
	if err != nil {
		return err
	}
	if first[0] == mux.Magic {
		return s.handleMux(conn, br)
	}
	if s.met != nil {
		s.met.v1Sessions.Inc()
	}
	return s.handleSession(&bufferedConn{Conn: conn, r: br})
}

// bufferedConn reads through a reader that may hold bytes peeked off the
// wrapped connection during version negotiation; everything else —
// writes, deadlines, addresses — passes straight through.
type bufferedConn struct {
	net.Conn
	r io.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }

// handleMux serves a v2 connection: one update session per accepted
// stream, each under the same failure-budget and metrics regime as a v1
// session. It returns nil when the peer shut down deliberately (GOAWAY
// or clean close) and the transport's terminal error otherwise.
func (s *Server) handleMux(conn net.Conn, br *bufio.Reader) error {
	tr, err := mux.Server(conn, br, s.muxSet)
	if err != nil {
		return err
	}
	defer tr.Close()
	if s.met != nil {
		s.met.muxConns.Add(1)
		defer s.met.muxConns.Add(-1)
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		st, err := tr.Accept()
		if err != nil {
			if errors.Is(err, mux.ErrGoAway) || errors.Is(err, mux.ErrClosed) {
				return nil
			}
			s.log.Warn("mux transport failed",
				"component", "server", "remote", clientKey(conn.RemoteAddr()),
				"outcome", "error", "err", err)
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer st.Close()
			if s.met != nil {
				s.met.muxStreams.Add(1)
				defer s.met.muxStreams.Add(-1)
			}
			_ = s.handleSession(st) // per-stream errors end that session only
		}()
	}
}

// handleSession serves one update session on an arbitrary connection (a
// raw v1 conn or one v2 stream), enforcing the per-client failure budget
// around it.
func (s *Server) handleSession(conn net.Conn) error {
	key := clientKey(conn.RemoteAddr())
	if !s.admit(key) {
		if s.met != nil {
			s.met.budgetRejects.Inc()
		}
		s.log.Warn("session rejected",
			"component", "server", "remote", key, "outcome", "budget-reject")
		// Consume the client's hello first: over an unbuffered transport
		// (net.Pipe) the client blocks writing it, and writing our rejection
		// before reading would deadlock both sides.
		c := withDeadlines(conn, s.msgTimeout)
		if _, err := readMsg(bufio.NewReader(c), msgHello); err == nil {
			_ = writeMsg(c, msgError, []byte("failure budget exhausted"))
		}
		return ErrBudgetExhausted
	}
	var span obs.Span
	if s.met != nil {
		s.met.sessions.Inc()
		span = s.met.sessionStage.Start()
	}
	start := time.Now()
	err := s.session(conn)
	if s.met != nil {
		span.End()
		if err != nil {
			s.met.sessionFailures.Inc()
		}
	}
	if err != nil {
		s.log.Warn("session failed",
			"component", "server", "remote", key, "outcome", "error",
			"duration_ms", time.Since(start).Milliseconds(), "err", err)
	} else {
		s.log.Info("session done",
			"component", "server", "remote", key, "outcome", "ok",
			"duration_ms", time.Since(start).Milliseconds())
	}
	s.note(key, err)
	return err
}

// readTimed and writeTimed are the protocol helpers under the server's
// per-message latency histograms; writeTimed also flushes, so the timing
// covers the bytes actually reaching the transport.
func (s *Server) readTimed(r *bufio.Reader, want byte) ([]byte, error) {
	if s.met == nil {
		return readMsg(r, want)
	}
	sp := s.met.msgReadStage.Start()
	payload, err := readMsg(r, want)
	sp.End()
	return payload, err
}

func (s *Server) writeTimed(w *bufio.Writer, typ byte, payload []byte) error {
	if s.met == nil {
		if err := writeMsg(w, typ, payload); err != nil {
			return err
		}
		return w.Flush()
	}
	sp := s.met.msgWriteStage.Start()
	err := writeMsg(w, typ, payload)
	if err == nil {
		err = w.Flush()
	}
	sp.End()
	return err
}

// session runs the update protocol once on conn.
func (s *Server) session(conn net.Conn) error {
	c := withDeadlines(conn, s.msgTimeout)
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	defer w.Flush()

	payload, err := s.readTimed(r, msgHello)
	if err != nil {
		return err
	}
	h, err := decodeHello(payload)
	if err != nil {
		return err
	}

	current := s.Current()
	currentCRC := s.crcs[len(s.crcs)-1]
	if int64(len(current)) > h.Capacity {
		_ = s.writeTimed(w, msgError, []byte("device flash too small for new version"))
		return fmt.Errorf("netupdate: device capacity %d < version %d", h.Capacity, len(current))
	}

	if h.WantFull {
		// Degradation path: ship the whole current image.
		if err := s.writeTimed(w, msgFull, current); err != nil {
			return err
		}
		if s.met != nil {
			s.met.fullSessions.Inc()
		}
		s.addServed(int64(len(current)))
		return s.confirm(r, w, currentCRC)
	}

	if !h.Updating && h.ImageCRC == currentCRC && h.ImageLen == int64(len(current)) {
		if s.met != nil {
			s.met.upToDate.Inc()
		}
		return s.writeTimed(w, msgUpToDate, nil)
	}

	idx, ok := s.findVersion(h.ImageCRC, h.ImageLen)
	if !ok {
		if s.met != nil {
			s.met.unknownVersion.Inc()
		}
		_ = s.writeTimed(w, msgError, []byte(ErrUnknownVersion.Error()))
		return ErrUnknownVersion
	}
	enc, err := s.deltaFor(idx, h.Capacity)
	if err != nil {
		_ = s.writeTimed(w, msgError, []byte("internal error"))
		return err
	}
	if err := s.writeTimed(w, msgDelta, enc); err != nil {
		return err
	}
	if s.met != nil {
		s.met.deltaSessions.Inc()
	}
	s.addServed(int64(len(enc)))
	return s.confirm(r, w, currentCRC)
}

// confirm reads the device's STATUS, answers with an ACK carrying the
// server's verdict, and reports a CRC mismatch as an error. The explicit
// ACK is what lets a device learn its flash was corrupted in flight and
// fall back to a full image instead of booting a bad version.
func (s *Server) confirm(r *bufio.Reader, w *bufio.Writer, currentCRC uint32) error {
	payload, err := s.readTimed(r, msgStatus)
	if err != nil {
		return err
	}
	st, err := decodeStatus(payload)
	if err != nil {
		return err
	}
	ok := st.OK && st.ImageCRC == currentCRC
	if err := s.writeTimed(w, msgAck, encodeAck(ok)); err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("netupdate: device reported failure (ok=%v crc=%08x want %08x)", st.OK, st.ImageCRC, currentCRC)
	}
	return nil
}
