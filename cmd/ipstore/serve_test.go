package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ipdelta/internal/codec"
	"ipdelta/internal/graph"
	"ipdelta/internal/obs"
	"ipdelta/internal/store"
)

// testStore builds a three-version store of successively mutated images.
func testStore(t *testing.T) *store.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	base := make([]byte, 8<<10)
	rng.Read(base)
	s := store.New(base)
	cur := base
	for k := 0; k < 2; k++ {
		next := append([]byte(nil), cur...)
		rng.Read(next[256*(k+1) : 256*(k+1)+512])
		if _, err := s.AppendVersion(next); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	return s
}

func TestServeHandlerEndpoints(t *testing.T) {
	s := testStore(t)
	reg := obs.NewRegistry()
	srv := httptest.NewServer(newServeHandler(s, graph.LocallyMinimum{}, reg, nil))
	defer srv.Close()

	get := func(path string, wantStatus int) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s = %d (%s), want %d", path, resp.StatusCode, strings.TrimSpace(string(body)), wantStatus)
		}
		return body
	}

	// /info reports the census.
	var info storeInfo
	if err := json.Unmarshal(get("/info", http.StatusOK), &info); err != nil {
		t.Fatal(err)
	}
	if info.Versions != 3 || len(info.Entries) != 3 {
		t.Fatalf("info = %+v", info)
	}

	// /version/{n} returns the exact image.
	img := get("/version/1", http.StatusOK)
	want, err := s.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, want) {
		t.Fatal("/version/1 body differs from the stored image")
	}
	get("/version/99", http.StatusNotFound)
	get("/version/x", http.StatusBadRequest)

	// /delta?from=0 serves a decodable in-place delta that reconstructs
	// the newest version from version 0.
	raw := get("/delta?from=0", http.StatusOK)
	d, _, err := codec.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("served delta does not decode: %v", err)
	}
	v0, err := s.Version(0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d.InPlaceBufLen())
	copy(buf, v0)
	if err := d.ApplyInPlace(buf); err != nil {
		t.Fatal(err)
	}
	newest, err := s.Version(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:d.VersionLen], newest) {
		t.Fatal("served delta reconstructs the wrong image")
	}
	get("/delta?from=bad", http.StatusBadRequest)

	// /metrics exposes the request counters the calls above moved.
	metrics := string(get("/metrics", http.StatusOK))
	if !strings.Contains(metrics, "ipdelta_store_requests_total") {
		t.Fatalf("metrics output missing request counter:\n%s", metrics)
	}
	snap := reg.Snapshot()
	// /info, /version/{1,99,x}, /delta?from={0,bad}; /metrics is unwrapped.
	if got := snap.Counter("ipdelta_store_requests_total"); got != 6 {
		t.Errorf("requests_total = %d, want 6", got)
	}
	if got := snap.Counter("ipdelta_store_delta_requests_total"); got != 1 {
		t.Errorf("delta_requests_total = %d, want 1", got)
	}
	if got := snap.Counter("ipdelta_store_request_errors_total"); got != 3 {
		t.Errorf("request_errors_total = %d, want 3", got)
	}
	if got := snap.Counter("ipdelta_store_bytes_written_total"); got == 0 {
		t.Error("bytes_written_total did not move")
	}
}

func TestServeHandlerUsage(t *testing.T) {
	// The CLI rejects a serve invocation without a store path.
	if err := run([]string{"serve"}); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("serve without -store: %v", err)
	}
	if err := run([]string{"nonsense"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}
