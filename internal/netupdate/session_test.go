package netupdate

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"ipdelta/internal/corpus"
	"ipdelta/internal/device"
)

// noBackoff collapses the retry schedule for fast tests.
func noBackoff(ctx context.Context, d time.Duration) error { return ctx.Err() }

// pipeDial returns a DialFunc connecting to a fresh server handler over a
// synchronous in-memory pipe, wrapping the client end with wrap (nil for a
// clean connection).
func pipeDial(s *Server, wrap func(attempt int, c net.Conn) net.Conn) DialFunc {
	attempt := 0
	return func(ctx context.Context) (net.Conn, error) {
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			_ = s.HandleConn(server)
		}()
		attempt++
		if wrap == nil {
			return client, nil
		}
		return wrap(attempt, client), nil
	}
}

func TestRunnerRetriesTransientAndResumes(t *testing.T) {
	history := makeHistory(2, 48<<10, 31)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceFor(t, history[0], 96<<10)
	// The first two connections die mid-delta; later ones are clean.
	dial := pipeDial(s, func(attempt int, c net.Conn) net.Conn {
		if attempt <= 2 {
			return NewFlakyConn(c, FaultProfile{Seed: 5, DropAfterBytes: int64(600 * attempt)})
		}
		return c
	})
	ru := NewRunner(RunnerConfig{MaxAttempts: 5, Sleep: noBackoff, Seed: 1})
	rep, err := ru.Run(context.Background(), dial, dev)
	if err != nil {
		t.Fatalf("run: %v (log: %v)", err, rep.FailureLog)
	}
	if rep.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", rep.Attempts)
	}
	if !rep.Result.Resumed {
		t.Fatal("third attempt did not resume the interrupted update")
	}
	if rep.FellBack || rep.Result.FullImage {
		t.Fatal("transient retries must not degrade to a full image")
	}
	if len(rep.FailureLog) != 2 {
		t.Fatalf("failure log = %v", rep.FailureLog)
	}
	if !bytes.Equal(dev.Image(), s.Current()) {
		t.Fatal("device image wrong after retries")
	}
}

func TestRunnerFallsBackOnUnknownVersion(t *testing.T) {
	history := makeHistory(2, 16<<10, 32)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	stranger := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 16 << 10, ChangeRate: 0, Seed: 501})
	dev := deviceFor(t, stranger.Ref, 64<<10)
	ru := NewRunner(RunnerConfig{MaxAttempts: 4, Sleep: noBackoff})
	rep, err := ru.Run(context.Background(), pipeDial(s, nil), dev)
	if err != nil {
		t.Fatalf("run: %v (log: %v)", err, rep.FailureLog)
	}
	if !rep.FellBack || !rep.Result.FullImage {
		t.Fatalf("report = %+v, want full-image fallback", rep)
	}
	if rep.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one rejection, one full transfer)", rep.Attempts)
	}
	if !bytes.Equal(dev.Image(), s.Current()) {
		t.Fatal("device image wrong after full fallback")
	}
}

func TestRunnerFallsBackAfterConsecutiveDeltaFailures(t *testing.T) {
	history := makeHistory(2, 32<<10, 33)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceFor(t, history[0], 64<<10)
	// Two doomed delta attempts, then clean transport: with
	// FullFallbackAfter=2 the third attempt must request the full image.
	dial := pipeDial(s, func(attempt int, c net.Conn) net.Conn {
		if attempt <= 2 {
			return NewFlakyConn(c, FaultProfile{Seed: 9, DropAfterBytes: 512})
		}
		return c
	})
	ru := NewRunner(RunnerConfig{MaxAttempts: 6, FullFallbackAfter: 2, Sleep: noBackoff})
	rep, err := ru.Run(context.Background(), dial, dev)
	if err != nil {
		t.Fatalf("run: %v (log: %v)", err, rep.FailureLog)
	}
	if !rep.FellBack || !rep.Result.FullImage {
		t.Fatalf("report = %+v, want degradation to full image", rep)
	}
	if !bytes.Equal(dev.Image(), s.Current()) {
		t.Fatal("device image wrong after degradation")
	}
}

// corruptingStore flips a byte of one write, silently: the written image
// differs from what the server distributed, which only the CRC ack catches.
type corruptingStore struct {
	device.Store
	writesLeft int
}

func (c *corruptingStore) WriteAt(p []byte, off int64) error {
	c.writesLeft--
	if c.writesLeft == 0 {
		p = append([]byte(nil), p...)
		p[0] ^= 0xFF
	}
	return c.Store.WriteAt(p, off)
}

func TestRunnerImageRejectionTriggersFullFallback(t *testing.T) {
	history := makeHistory(2, 32<<10, 34)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	flash, err := device.NewFlash(history[0], 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	store := &corruptingStore{Store: flash, writesLeft: 5}
	dev := device.New(store, int64(len(history[0])), 1024)

	// Single clean session: applies, reports a wrong CRC, gets rejected.
	conn, srvConn := net.Pipe()
	go func() {
		defer srvConn.Close()
		_ = s.HandleConn(srvConn)
	}()
	_, err = RunSession(context.Background(), conn, dev, SessionOptions{})
	conn.Close()
	if !errors.Is(err, ErrImageRejected) {
		t.Fatalf("error = %v, want ErrImageRejected", err)
	}

	// The runner turns that rejection into a full-image transfer.
	ru := NewRunner(RunnerConfig{MaxAttempts: 4, Sleep: noBackoff})
	rep, err := ru.Run(context.Background(), pipeDial(s, nil), dev)
	if err != nil {
		t.Fatalf("run: %v (log: %v)", err, rep.FailureLog)
	}
	if !rep.FellBack || !rep.Result.FullImage {
		t.Fatalf("report = %+v, want full-image fallback", rep)
	}
	if !bytes.Equal(dev.Image(), s.Current()) {
		t.Fatal("device image wrong after recovery from corruption")
	}
}

func TestRunnerExhaustsBudget(t *testing.T) {
	history := makeHistory(2, 16<<10, 35)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceFor(t, history[0], 64<<10)
	dial := pipeDial(s, func(attempt int, c net.Conn) net.Conn {
		return NewFlakyConn(c, FaultProfile{Seed: uint64(attempt), DropAfterBytes: 4})
	})
	ru := NewRunner(RunnerConfig{MaxAttempts: 3, FullFallbackAfter: -1, Sleep: noBackoff})
	rep, err := ru.Run(context.Background(), dial, dev)
	if err == nil {
		t.Fatal("doomed transport converged")
	}
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("error = %v, want wrapped ErrInjectedFault", err)
	}
	if rep.Attempts != 3 || len(rep.FailureLog) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.FellBack {
		t.Fatal("fallback disabled but report says it fell back")
	}
}

func TestRunnerContextCancel(t *testing.T) {
	history := makeHistory(2, 16<<10, 36)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceFor(t, history[0], 64<<10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ru := NewRunner(RunnerConfig{MaxAttempts: 3})
	if _, err := ru.Run(ctx, pipeDial(s, nil), dev); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestSessionMessageTimeout(t *testing.T) {
	history := makeHistory(2, 16<<10, 37)
	dev := deviceFor(t, history[0], 64<<10)
	// The peer consumes the hello and then goes silent.
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		_, _ = io.Copy(io.Discard, server)
	}()
	start := time.Now()
	_, err := RunSession(context.Background(), client, dev, SessionOptions{MessageTimeout: 50 * time.Millisecond})
	client.Close()
	if err == nil {
		t.Fatal("stalled session succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error = %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if classify(err) != classTransient {
		t.Fatal("timeouts must classify as transient")
	}
}

func TestSessionContextCancelAbortsIO(t *testing.T) {
	history := makeHistory(2, 16<<10, 38)
	dev := deviceFor(t, history[0], 64<<10)
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		_, _ = io.Copy(io.Discard, server) // silent peer
	}()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := RunSession(ctx, client, dev, SessionOptions{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled session succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not abort the blocked session")
	}
	client.Close()
}

func TestServerFailureBudget(t *testing.T) {
	history := makeHistory(2, 16<<10, 39)
	s, err := NewServer(history, WithFailureBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	stranger := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 16 << 10, ChangeRate: 0, Seed: 502})

	failOnce := func() error {
		dev := deviceFor(t, stranger.Ref, 64<<10)
		_, err := runSession(t, s, dev)
		return err
	}
	// Two failures consume the budget (net.Pipe peers share one key).
	for k := 0; k < 2; k++ {
		if err := failOnce(); err == nil {
			t.Fatal("stranger session succeeded")
		}
	}
	// The third connection is turned away before the protocol starts.
	client, server := net.Pipe()
	handlerErr := make(chan error, 1)
	go func() {
		defer server.Close()
		handlerErr <- s.HandleConn(server)
	}()
	dev := deviceFor(t, history[0], 64<<10)
	_, err = UpdateDevice(client, dev)
	client.Close()
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("client error = %v, want ServerError", err)
	}
	if got := <-handlerErr; !errors.Is(got, ErrBudgetExhausted) {
		t.Fatalf("handler error = %v, want ErrBudgetExhausted", got)
	}

	// A fresh server with budget: success resets the counter.
	s2, err := NewServer(history, WithFailureBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := func() error {
		dev := deviceFor(t, stranger.Ref, 64<<10)
		_, err := runSession(t, s2, dev)
		return err
	}(); err == nil {
		t.Fatal("stranger session succeeded")
	}
	good := deviceFor(t, history[0], 64<<10)
	if _, err := runSession(t, s2, good); err != nil {
		t.Fatalf("good session after one failure: %v", err)
	}
	// Counter was reset: two more failures are needed to trip the budget.
	for k := 0; k < 2; k++ {
		if err := func() error {
			dev := deviceFor(t, stranger.Ref, 64<<10)
			_, err := runSession(t, s2, dev)
			return err
		}(); err == nil {
			t.Fatal("stranger session succeeded")
		}
	}
	client2, server2 := net.Pipe()
	go func() {
		defer server2.Close()
		_ = s2.HandleConn(server2)
	}()
	dev2 := deviceFor(t, history[0], 64<<10)
	_, err = UpdateDevice(client2, dev2)
	client2.Close()
	if !errors.As(err, &se) {
		t.Fatalf("client error = %v, want budget rejection", err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want errClass
	}{
		{context.Canceled, classFatal},
		{device.ErrImageTooLarge, classFatal},
		{device.ErrPowerCut, classTransient},
		{device.ErrTransientIO, classTransient},
		{ErrInjectedFault, classTransient},
		{io.ErrUnexpectedEOF, classTransient},
		{ErrProtocol, classTransient},
		{ErrImageRejected, classDegrade},
		{device.ErrResumeMismatch, classDegrade},
		{device.ErrWrongVersion, classDegrade},
		{&ServerError{Msg: "unknown version"}, classDegrade},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
