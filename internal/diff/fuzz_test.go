package diff

import (
	"bytes"
	"testing"
)

// FuzzDiffRoundTrip checks the central differencing contract on arbitrary
// byte pairs: the delta validates and applies back to the version.
func FuzzDiffRoundTrip(f *testing.F) {
	f.Add([]byte("hello world, this is the reference"), []byte("hello brave world, this was the reference"))
	f.Add([]byte{}, []byte{})
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), []byte("aaaaaaaaaaaaaaaabaaaaaaaaaaaaaaa"))
	f.Add(bytes.Repeat([]byte{0}, 100), bytes.Repeat([]byte{0xFF}, 80))

	f.Fuzz(func(t *testing.T, ref, version []byte) {
		for _, a := range []Algorithm{NewLinear(WithSeedLen(4)), NewGreedy(WithGreedySeedLen(4))} {
			d, err := a.Diff(ref, version)
			if err != nil {
				t.Fatalf("%s: Diff: %v", a.Name(), err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("%s: invalid delta: %v", a.Name(), err)
			}
			got, err := d.Apply(ref)
			if err != nil {
				t.Fatalf("%s: Apply: %v", a.Name(), err)
			}
			if !bytes.Equal(got, version) {
				t.Fatalf("%s: round trip mismatch", a.Name())
			}
		}
	})
}
