package loader

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadIgnores loads the fixture package and returns it with a helper that
// turns a marker substring into the token.Pos of that source line.
func loadIgnores(t *testing.T) (*Package, func(marker string, lineDelta int) token.Pos) {
	t.Helper()
	l, err := New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/src/ignores", "ignores")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	filename := filepath.Join(pkg.Dir, "ignores.go")
	src, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	lines := strings.Split(string(src), "\n")
	tf := pkg.Fset.File(pkg.Files[0].Pos())
	posAt := func(marker string, lineDelta int) token.Pos {
		for i, line := range lines {
			if strings.Contains(line, marker) {
				return tf.LineStart(i + 1 + lineDelta)
			}
		}
		t.Fatalf("marker %q not found in fixture", marker)
		return token.NoPos
	}
	return pkg, posAt
}

// TestIgnoreIsAnalyzerScoped proves that a directive naming one analyzer
// does not mute a different analyzer reporting on the same line — the
// regression the unscoped wildcard behaviour used to allow.
func TestIgnoreIsAnalyzerScoped(t *testing.T) {
	pkg, posAt := loadIgnores(t)
	pos := posAt("marker-trailing", 0)
	if !pkg.Ignored("offsetsafe", pos) {
		t.Errorf("offsetsafe should be suppressed on the trailing-directive line")
	}
	if pkg.Ignored("aliascheck", pos) {
		t.Errorf("aliascheck must NOT be suppressed by an offsetsafe-scoped directive on the same line")
	}
	if pkg.Ignored("errpropagate", pos) {
		t.Errorf("errpropagate must NOT be suppressed by an offsetsafe-scoped directive")
	}
}

// TestIgnoreLineScope pins the line coverage: trailing directives cover
// their own line only; standalone directives cover the next line only.
func TestIgnoreLineScope(t *testing.T) {
	pkg, posAt := loadIgnores(t)

	if pkg.Ignored("offsetsafe", posAt("marker-trailing", 1)) {
		t.Errorf("trailing directive must not leak to the following line")
	}
	if pkg.Ignored("offsetsafe", posAt("marker-trailing", -1)) {
		t.Errorf("trailing directive must not leak to the preceding line")
	}

	if !pkg.Ignored("aliascheck", posAt("marker-standalone", 1)) {
		t.Errorf("standalone directive should cover the next line")
	}
	if pkg.Ignored("aliascheck", posAt("marker-standalone", 0)) {
		t.Errorf("standalone directive should not cover its own (comment-only) line")
	}
	if pkg.Ignored("aliascheck", posAt("marker-standalone", 2)) {
		t.Errorf("standalone directive must not leak two lines down")
	}
}

// TestIgnoreForms covers the multi-name, wildcard, bare and non-directive
// spellings.
func TestIgnoreForms(t *testing.T) {
	pkg, posAt := loadIgnores(t)

	multi := posAt("marker-multi", 0)
	for _, name := range []string{"offsetsafe", "errpropagate"} {
		if !pkg.Ignored(name, multi) {
			t.Errorf("%s should be suppressed by the comma-list directive", name)
		}
	}
	if pkg.Ignored("locksafe", multi) {
		t.Errorf("locksafe is not named in the comma list and must not be suppressed")
	}

	wild := posAt("marker-wild", 0)
	if !pkg.Ignored("anything", wild) {
		t.Errorf("explicit * should suppress every analyzer")
	}
}

// TestBareAndPrefixDirectivesSuppressNothing: a nameless directive and a
// longer comment sharing the prefix are both inert.
func TestBareAndPrefixDirectivesSuppressNothing(t *testing.T) {
	pkg, posAt := loadIgnores(t)
	for _, marker := range []string{"func Bare", "func Prefix"} {
		pos := posAt(marker, 1)
		for _, name := range []string{"offsetsafe", "aliascheck", "*", "anything"} {
			if pkg.Ignored(name, pos) {
				t.Errorf("%s after %q: bare/prefix directives must suppress nothing", name, marker)
			}
		}
	}
}

// TestOverlayImports proves the overlay importer: package "b" in testdata
// imports package "a" through the loader rather than the source importer.
func TestOverlayImports(t *testing.T) {
	l, err := New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	l.AddOverlay("a", "testdata/src/a")
	l.AddOverlay("b", "testdata/src/b")
	pkg, err := l.LoadDir("testdata/src/b", "b")
	if err != nil {
		t.Fatalf("load b: %v", err)
	}
	found := false
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("package b should import overlay package a; imports: %v", pkg.Types.Imports())
	}
	// The overlay import and a direct load must yield the same
	// *types.Package, or cross-package facts keyed by object identity
	// would silently miss.
	direct, err := l.LoadDir("testdata/src/a", "a")
	if err != nil {
		t.Fatalf("load a: %v", err)
	}
	if !samePackage(pkg.Types.Imports(), direct.Types) {
		t.Fatalf("overlay import of a and direct load of a disagree on package identity")
	}
}

func samePackage(imports []*types.Package, want *types.Package) bool {
	for _, imp := range imports {
		if imp == want {
			return true
		}
	}
	return false
}
