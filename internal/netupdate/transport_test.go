package netupdate

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipdelta/internal/device"
)

// attemptThroughFlaky runs one session attempt for dev through a FlakyConn
// with the given profile, returning the session outcome and bytes crossed.
func attemptThroughFlaky(t *testing.T, s *Server, dev *device.Device, p FaultProfile) (Result, int64, error) {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer server.Close()
		_ = s.HandleConn(server)
	}()
	fc := NewFlakyConn(client, p)
	res, err := UpdateDevice(fc, dev)
	client.Close()
	<-done
	return res, fc.Transferred(), err
}

func TestResumeAtEveryMessageBoundary(t *testing.T) {
	history := makeHistory(2, 32<<10, 61)
	s, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 64 << 10

	// Probe a clean session through a no-fault FlakyConn to measure the
	// exact client-side byte stream of this (deterministic) session.
	probe := deviceFor(t, history[0], capacity)
	_, total, err := attemptThroughFlaky(t, s, probe, FaultProfile{})
	if err != nil {
		t.Fatalf("probe session: %v", err)
	}

	// Reconstruct the frame boundaries from the protocol's own encoders:
	// HELLO and STATUS sizes are computable, DELTA is whatever remains.
	helloLen := int64(len(frame(msgHello, encodeHello(hello{
		ImageCRC: 1, ImageLen: int64(len(history[0])), Capacity: capacity,
	}))))
	statusLen := int64(len(frame(msgStatus, encodeStatus(status{}))))
	ackLen := int64(len(frame(msgAck, encodeAck(true))))
	deltaLen := total - helloLen - statusLen - ackLen
	if deltaLen <= 0 {
		t.Fatalf("frame accounting broken: total=%d hello=%d status=%d ack=%d",
			total, helloLen, statusLen, ackLen)
	}

	cuts := []struct {
		name string
		at   int64
		// resumed: the clean retry continues an interrupted delta (the cut
		// landed mid-apply, after progress was persisted).
		resumed bool
		// upToDate: the retry finds nothing to do (the cut landed after the
		// delta was already fully applied).
		upToDate bool
	}{
		{name: "mid-hello", at: helloLen - 1},
		{name: "hello-boundary", at: helloLen},
		{name: "hello-boundary+1", at: helloLen + 1},
		{name: "mid-delta", at: helloLen + deltaLen/2, resumed: true},
		{name: "delta-boundary-1", at: helloLen + deltaLen - 1, resumed: true},
		{name: "delta-boundary", at: helloLen + deltaLen, upToDate: true},
		{name: "mid-status", at: helloLen + deltaLen + statusLen - 1, upToDate: true},
		{name: "status-boundary", at: helloLen + deltaLen + statusLen, upToDate: true},
		{name: "pre-ack", at: total - 1, upToDate: true},
	}
	for _, c := range cuts {
		t.Run(c.name, func(t *testing.T) {
			dev := deviceFor(t, history[0], capacity)
			_, moved, err := attemptThroughFlaky(t, s, dev, FaultProfile{Seed: 1, DropAfterBytes: c.at})
			if err == nil {
				t.Fatalf("session survived a connection cut at byte %d", c.at)
			}
			if moved > c.at {
				t.Fatalf("connection moved %d bytes past its %d-byte cut", moved, c.at)
			}
			res, _, err := attemptThroughFlaky(t, s, dev, FaultProfile{})
			if err != nil {
				t.Fatalf("clean retry after cut at %d: %v", c.at, err)
			}
			if res.Resumed != c.resumed {
				t.Fatalf("retry resumed=%v, want %v", res.Resumed, c.resumed)
			}
			if res.UpToDate != c.upToDate {
				t.Fatalf("retry upToDate=%v, want %v", res.UpToDate, c.upToDate)
			}
			if !bytes.Equal(dev.Image(), s.Current()) {
				t.Fatal("device image wrong after retry")
			}
		})
	}
}

func TestThrottledConnConcurrentReads(t *testing.T) {
	a, b := net.Pipe()
	const payload = 16 << 10
	go func() {
		defer a.Close()
		buf := make([]byte, 1024)
		for k := 0; k < payload/len(buf); k++ {
			if _, err := a.Write(buf); err != nil {
				return
			}
		}
	}()

	// 1 Mbit/s -> 16 KiB should take ~128ms even when four goroutines
	// share the connection; the rate limit is global, not per reader.
	tc := NewThrottledConn(b, 1<<20)
	var got atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 512)
			for {
				n, err := tc.Read(buf)
				got.Add(int64(n))
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if got.Load() != payload {
		t.Fatalf("read %d bytes, want %d", got.Load(), payload)
	}
	if elapsed < 80*time.Millisecond {
		t.Fatalf("4 concurrent readers finished in %v; the rate limit is being bypassed", elapsed)
	}
}

func TestThrottledFlakyConnCutsExactly(t *testing.T) {
	// The two wrappers compose: a throttled flaky conn still cuts at the
	// exact configured byte. (Exact cuts hold for sequential readers, the
	// way sessions use a connection; concurrent readers may race past the
	// boundary because the allowance is computed before the read happens.)
	a, b := net.Pipe()
	defer b.Close()
	go func() {
		defer a.Close()
		buf := make([]byte, 256)
		for {
			if _, err := a.Write(buf); err != nil {
				return
			}
		}
	}()
	fc := NewFlakyConn(NewThrottledConn(b, 8<<20), FaultProfile{Seed: 3, DropAfterBytes: 4096})
	var got int64
	buf := make([]byte, 300)
	for {
		n, err := fc.Read(buf)
		got += int64(n)
		if err != nil {
			break
		}
	}
	if got != 4096 {
		t.Fatalf("flaky conn delivered %d bytes, want exactly 4096", got)
	}
	if fc.Transferred() != 4096 {
		t.Fatalf("transferred = %d", fc.Transferred())
	}
}
