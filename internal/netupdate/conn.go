package netupdate

import (
	"context"
	"net"
	"time"
)

// aLongTimeAgo is a non-zero instant in the distant past; setting it as a
// connection deadline forces pending and future I/O to fail immediately.
var aLongTimeAgo = time.Unix(1, 0)

// deadlineConn arms a fresh read/write deadline before every I/O
// operation. That gives per-message (in fact per-read/per-write) timeout
// semantics: one stalled peer cannot pin a session forever, while a slow
// but steadily flowing transfer — a throttled link streaming a large delta
// — never trips the deadline.
type deadlineConn struct {
	net.Conn
	timeout time.Duration
}

// Read implements net.Conn.
func (d *deadlineConn) Read(p []byte) (int, error) {
	if err := d.Conn.SetReadDeadline(time.Now().Add(d.timeout)); err != nil {
		return 0, err
	}
	return d.Conn.Read(p)
}

// Write implements net.Conn.
func (d *deadlineConn) Write(p []byte) (int, error) {
	if err := d.Conn.SetWriteDeadline(time.Now().Add(d.timeout)); err != nil {
		return 0, err
	}
	return d.Conn.Write(p)
}

// withDeadlines wraps conn with per-I/O deadlines when timeout > 0.
func withDeadlines(conn net.Conn, timeout time.Duration) net.Conn {
	if timeout <= 0 {
		return conn
	}
	return &deadlineConn{Conn: conn, timeout: timeout}
}

// cancelOnCtx aborts conn's in-flight and future I/O when ctx is
// cancelled, by moving the connection deadline into the past. The returned
// stop function releases the watcher and must be called when the session
// ends.
func cancelOnCtx(ctx context.Context, conn net.Conn) func() bool {
	if ctx.Done() == nil {
		return func() bool { return false }
	}
	return context.AfterFunc(ctx, func() {
		_ = conn.SetDeadline(aLongTimeAgo)
	})
}
