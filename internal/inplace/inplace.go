// Package inplace implements the paper's core contribution: converting an
// arbitrary delta file into one that reconstructs the new version in the
// storage the old version occupies, with no scratch space.
//
// The conversion (§4 of the paper):
//
//  1. Partition the delta's commands into copies C and adds A.
//  2. Sort the copies by increasing write offset.
//  3. Build the CRWI digraph: one vertex per copy, an edge v_i→v_j whenever
//     copy i's read interval intersects copy j's write interval — meaning
//     i must execute before j to avoid a write-before-read conflict.
//  4. Topologically sort the digraph; each cycle encountered is broken by
//     deleting one vertex chosen by a policy (constant-time or
//     locally-minimum), whose copy command is re-encoded as an add.
//  5. Emit the surviving copies in topological order, then every add.
//
// The result satisfies Equation 2 — no command reads a byte any earlier
// command wrote — so a serial, in-place application is correct.
package inplace

import (
	"sort"

	"ipdelta/internal/codec"
	"ipdelta/internal/delta"
	"ipdelta/internal/graph"
	"ipdelta/internal/obs"
)

// Stats describes one conversion, exposing the quantities the paper's
// evaluation reports.
type Stats struct {
	// Copies and Adds count the input partition.
	Copies int
	Adds   int
	// Edges is the number of potential-WR-conflict edges in the CRWI
	// digraph; by Lemma 1 it never exceeds the version length.
	Edges int
	// CyclesBroken counts cycles the topological sort had to break.
	CyclesBroken int
	// CycleVertices sums the lengths of those cycles (the extra work the
	// locally-minimum policy performs).
	CycleVertices int
	// ConvertedCopies counts copy commands re-encoded as adds.
	ConvertedCopies int
	// StashedCopies counts copies preserved via the bounded-scratch
	// extension instead of being converted to adds.
	StashedCopies int
	// ScratchUsed is the scratch bytes the output delta requires.
	ScratchUsed int64
	// ConvertedBytes is the literal data those conversions moved into the
	// delta — the paper's compression loss from breaking cycles.
	ConvertedBytes int64
	// RemovedCost sums the cost function l − |f| over converted copies.
	RemovedCost int64
	// Policy is the cycle-breaking policy used.
	Policy string
}

// Strategy selects how cycles are found and broken.
type Strategy int

const (
	// StrategyDFS is the paper's algorithm: cycles are broken one at a
	// time as the topological sort's depth-first search closes them, with
	// the victim chosen by the configured policy.
	StrategyDFS Strategy = iota + 1
	// StrategySCCGreedy is an ablation strategy beyond the paper: compute
	// a feedback vertex set over whole strongly connected components with
	// a degree/cost greedy score, then topologically sort the remainder.
	// It can escape the locally-minimum policy's Figure 2 failure mode by
	// seeing hub vertices, at the price of repeated SCC computations.
	StrategySCCGreedy
)

// Options configures a conversion.
type Options struct {
	policy   graph.Policy
	strategy Strategy
	scratch  int64
	obs      *obs.Registry
}

// Option customizes Convert.
type Option func(*Options)

// WithPolicy selects the cycle-breaking policy for StrategyDFS. The
// default is the locally-minimum policy, which the paper finds superior on
// every metric.
func WithPolicy(p graph.Policy) Option {
	return func(o *Options) { o.policy = p }
}

// WithStrategy selects the cycle-breaking strategy (default StrategyDFS).
func WithStrategy(s Strategy) Option {
	return func(o *Options) { o.strategy = s }
}

// WithScratchBudget allows the output delta to use up to n bytes of device
// scratch memory (the bounded-scratch extension): copies that cycle
// breaking would convert to adds are instead stashed at the start of the
// delta and unstashed into place at the end, preserving compression at a
// bounded memory cost. A zero budget (the default) reproduces the paper's
// pure in-place algorithm exactly. Deltas that use scratch must travel in
// codec.FormatScratch.
func WithScratchBudget(n int64) Option {
	return func(o *Options) {
		if n < 0 {
			n = 0
		}
		o.scratch = n
	}
}

// WithObserver attaches a metrics registry: every conversion then
// records per-stage timings (partition+sort, CRWI build, topological
// sort / SCC, emit) and structural counters (edges, cycles broken per
// policy, converted copies and bytes) into it. Handles are resolved once
// per Converter, so an attached observer adds no allocations to the
// steady-state convert path. A nil registry is accepted and means
// unobserved.
func WithObserver(r *obs.Registry) Option {
	return func(o *Options) { o.obs = r }
}

// Convert rewrites d into an in-place reconstructible delta. The reference
// file is needed to materialize the data of copy commands that cycle
// breaking converts to adds. The input delta is not modified; the output
// shares add data slices with the input.
//
// The returned delta applies correctly both with scratch space (Apply) and
// in place (ApplyInPlace), and always satisfies CheckInPlace.
//
// Convert is a thin wrapper over a one-shot Converter; steady-state
// callers converting many deltas should hold a Converter and amortize its
// working memory across calls.
func Convert(d *delta.Delta, ref []byte, opts ...Option) (*delta.Delta, *Stats, error) {
	return NewConverter(opts...).ConvertNew(d, ref)
}

// buildCRWI constructs the conflicting-read-write-interval digraph over
// copies, which must be sorted by write offset. An edge i→j is added when
// copy i's read interval [f_i, f_i+l_i-1] intersects copy j's write
// interval [t_j, t_j+l_j-1]; performing i before j then avoids the WR
// conflict. Conflicting write intervals are located by binary search over
// the sorted write offsets, giving the O(|C| log |C| + |E|) bound of §4.3.
//
// This is the reference builder: the conversion pipeline uses the
// sweep-line CSR builder (crwiScratch.build), whose edge set is
// property-tested to be identical to this one's.
func buildCRWI(copies []delta.Command) *graph.Digraph {
	g := graph.New(len(copies))
	for i, c := range copies {
		read := c.ReadInterval()
		// First copy whose write interval ends at or after the read start.
		j := sort.Search(len(copies), func(k int) bool {
			w := copies[k].WriteInterval()
			return w.Hi >= read.Lo
		})
		for ; j < len(copies) && copies[j].To <= read.Hi; j++ {
			if j == i {
				continue // a command never conflicts with itself (§4.1)
			}
			g.AddEdge(i, j)
		}
	}
	return g
}

// EncodingLoss returns the size difference between encoding d with explicit
// write offsets and the ordered format without them — the inherent encoding
// inefficiency of in-place capable deltas the paper quantifies at ~1.9%.
// The delta must be in contiguous write order.
func EncodingLoss(d *delta.Delta) (ordered, offsets int64, err error) {
	ordered, err = codec.EncodedSize(d, codec.FormatOrdered)
	if err != nil {
		return 0, 0, err
	}
	offsets, err = codec.EncodedSize(d, codec.FormatOffsets)
	if err != nil {
		return 0, 0, err
	}
	return ordered, offsets, nil
}
