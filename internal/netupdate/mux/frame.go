// Package mux implements wire protocol v2 of the update service: a
// framed, versioned transport that multiplexes many concurrent update
// streams over one reliable connection.
//
// Every frame starts with a fixed 12-byte header:
//
//	+-------+---------+----------+-------+-------------+------------+
//	| magic | version | msg-type | flags | stream-id   | length     |
//	| 0xD5  | 0x02    | 1 byte   | 1 B   | 4 bytes BE  | 4 bytes BE |
//	+-------+---------+----------+-------+-------------+------------+
//
// followed by length payload bytes. The magic byte deliberately collides
// with nothing in protocol v1 (whose messages begin with a type byte in
// 0x01..0x07), so a server can tell the two protocols apart from the
// first byte of a connection and keep serving v1 devices through the
// deprecated single-stream shim.
//
// Payload handling is keyed by msg-type through a codec registry
// (RegisterCodec): control frames — SETTINGS, SYN, FIN, RST, WINDOW,
// GOAWAY — decode through their registered codec into a value-typed
// control body, while DATA payloads bypass decoding entirely and stream
// straight into the receiving stream's ring buffer, keeping the data
// path allocation-free.
//
// Stream 0 carries connection-level control only. Streams opened by the
// connection's initiating side (the device/client) use odd ids, counting
// up from 1; an id is never reused within a connection. Each stream is
// flow controlled by a credit window the receiver advertises in its
// SETTINGS and replenishes with WINDOW frames as the application drains
// data, so a slow consumer exerts backpressure on its peer instead of
// buffering without bound.
package mux

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire constants.
const (
	// Magic is the first byte of every v2 frame.
	Magic = 0xD5
	// Version is the protocol version this package speaks.
	Version = 2
	// HeaderLen is the fixed frame header size.
	HeaderLen = 12
)

// Frame types.
const (
	// FrameSettings opens a connection: each side sends one SETTINGS
	// frame advertising its receive limits before anything else.
	FrameSettings = 0x01
	// FrameSyn opens a stream (empty payload).
	FrameSyn = 0x02
	// FrameData carries application bytes on a stream.
	FrameData = 0x03
	// FrameFin half-closes a stream: the sender is done writing
	// (empty payload).
	FrameFin = 0x04
	// FrameRst aborts a stream (payload: 4-byte BE code).
	FrameRst = 0x05
	// FrameWindow grants receive-window credit on a stream
	// (payload: 4-byte BE credit).
	FrameWindow = 0x06
	// FrameGoAway reports a fatal connection error before closing
	// (payload: 4-byte BE code, then an optional UTF-8 message).
	FrameGoAway = 0x07
)

// RST / GOAWAY codes.
const (
	// CodeCancel aborts a stream whose local end was closed early.
	CodeCancel = 1
	// CodeRefused rejects a SYN that exceeds the stream limit.
	CodeRefused = 2
	// CodeProtocol reports a peer protocol violation.
	CodeProtocol = 3
)

// maxControlPayload bounds every non-DATA payload. Control bodies are a
// handful of varints or a short message; anything bigger is hostile.
const maxControlPayload = 1 << 10

// absoluteMaxFrame bounds the negotiable per-DATA-frame payload size.
const absoluteMaxFrame = 1 << 24

// Typed protocol errors. All terminal connection errors wrap ErrProtocol
// so callers can classify without enumerating causes.
var (
	// ErrProtocol is the base class for hostile or corrupt framing.
	ErrProtocol = errors.New("mux: protocol violation")
	// ErrBadMagic reports a frame that does not start with Magic: the
	// peer is not speaking protocol v2 (or the connection desynchronized,
	// which v2 treats as fatal rather than guessing at a resync point).
	ErrBadMagic = fmt.Errorf("%w: bad magic byte", ErrProtocol)
	// ErrVersionMismatch reports a peer speaking an unknown protocol
	// version.
	ErrVersionMismatch = fmt.Errorf("%w: unsupported protocol version", ErrProtocol)
	// ErrUnknownFrameType reports a msg-type with no registered codec.
	ErrUnknownFrameType = fmt.Errorf("%w: unknown frame type", ErrProtocol)
	// ErrFrameTooLarge reports a length field beyond the negotiated (or
	// absolute) payload bound. The length field is a claim, never an
	// allocation instruction: the connection fails before any
	// wire-claimed memory is reserved.
	ErrFrameTooLarge = fmt.Errorf("%w: frame exceeds size limit", ErrProtocol)
	// ErrUnknownStream reports a frame addressed to a stream id that was
	// never opened on this connection.
	ErrUnknownStream = fmt.Errorf("%w: frame for unknown stream", ErrProtocol)
	// ErrStreamReuse reports a SYN for a stream id that is already live
	// or was already retired; ids are never reused within a connection.
	ErrStreamReuse = fmt.Errorf("%w: stream id reused", ErrProtocol)
	// ErrFlowControl reports a peer that overran the advertised receive
	// window or overflowed the send-credit accumulator.
	ErrFlowControl = fmt.Errorf("%w: flow control violation", ErrProtocol)
)

// Stream and transport lifecycle errors (not framing violations).
var (
	// ErrClosed reports use of a closed transport or stream.
	ErrClosed = errors.New("mux: connection closed")
	// ErrStreamReset reports a stream aborted by a peer RST or a
	// transport failure.
	ErrStreamReset = errors.New("mux: stream reset")
	// ErrStreamRefused reports a SYN the peer rejected for exceeding its
	// stream limit; the caller may retry on another connection.
	ErrStreamRefused = errors.New("mux: stream refused by peer")
	// ErrGoAway reports a connection the peer shut down deliberately.
	ErrGoAway = errors.New("mux: peer sent GOAWAY")
)

// header is a decoded frame header.
type header struct {
	typ    byte
	flags  byte
	stream uint32
	length uint32
}

// putHeader marshals a frame header into b.
//
//ipvet:allocfree
func putHeader(b []byte, typ, flags byte, stream, length uint32) {
	b[0] = Magic
	b[1] = Version
	b[2] = typ
	b[3] = flags
	binary.BigEndian.PutUint32(b[4:8], stream)
	binary.BigEndian.PutUint32(b[8:12], length)
}

// parseHeader validates and decodes a frame header. It checks only what
// every frame must satisfy — magic, version, flag bits, the absolute
// length cap — leaving type- and state-dependent validation (negotiated
// size bounds, stream liveness) to the transport.
//
//ipvet:allocfree
func parseHeader(b []byte) (header, error) {
	var h header
	if b[0] != Magic {
		return h, ErrBadMagic
	}
	if b[1] != Version {
		return h, ErrVersionMismatch
	}
	if b[3] != 0 {
		// All flag bits are reserved in v2; a set bit is corruption or a
		// speaker of some future dialect this side cannot interpret.
		return h, errReservedFlags
	}
	h.typ = b[2]
	h.flags = b[3]
	h.stream = binary.BigEndian.Uint32(b[4:8])
	h.length = binary.BigEndian.Uint32(b[8:12])
	if h.length > absoluteMaxFrame {
		return h, errAbsoluteFrame
	}
	return h, nil
}

// Preconstructed so parseHeader stays allocation-free even while
// rejecting hostile frames (a flood of bad headers must not cost heap).
var (
	errReservedFlags = fmt.Errorf("%w: reserved flag bits set", ErrProtocol)
	errAbsoluteFrame = fmt.Errorf("%w: payload beyond the absolute frame limit", ErrFrameTooLarge)
)

// control is the decoded body of a control frame. It is a value type so
// the codec registry can return one without heap allocation.
type control struct {
	settings Settings // FrameSettings
	credit   uint32   // FrameWindow
	code     uint32   // FrameRst, FrameGoAway
	msg      string   // FrameGoAway (allocates; GOAWAY is terminal anyway)
}

// Codec validates and decodes the payload of one control frame type.
// DATA frames never pass through the registry: their payloads stream
// directly into the receiving stream's buffer.
type Codec interface {
	// MaxLen is the largest payload this frame type accepts; longer
	// payloads fail with ErrFrameTooLarge before decoding.
	MaxLen() int
	// Decode parses the payload. The slice is only valid during the
	// call; implementations must not retain it.
	Decode(payload []byte) (control, error)
}

// codecs is the registry, keyed by msg-type.
var codecs [256]Codec

// RegisterCodec installs the codec for a frame type. The built-in v2
// control frames register themselves at init; registering an already
// claimed type panics, so an extension cannot silently shadow a core
// frame.
func RegisterCodec(typ byte, c Codec) {
	if codecs[typ] != nil {
		panic(fmt.Sprintf("mux: frame type %#x already registered", typ))
	}
	codecs[typ] = c
}

// codecFor returns the codec registered for typ, or nil.
//
//ipvet:allocfree
func codecFor(typ byte) Codec { return codecs[typ] }

func init() {
	RegisterCodec(FrameSettings, settingsCodec{})
	RegisterCodec(FrameSyn, emptyCodec{})
	RegisterCodec(FrameFin, emptyCodec{})
	RegisterCodec(FrameRst, codeCodec{})
	RegisterCodec(FrameWindow, windowCodec{})
	RegisterCodec(FrameGoAway, goAwayCodec{})
}

// emptyCodec handles SYN and FIN, which carry no payload.
type emptyCodec struct{}

func (emptyCodec) MaxLen() int { return 0 }
func (emptyCodec) Decode(p []byte) (control, error) {
	if len(p) != 0 {
		return control{}, fmt.Errorf("%w: unexpected payload on empty-bodied frame", ErrProtocol)
	}
	return control{}, nil
}

// codeCodec handles RST: a single 4-byte BE code.
type codeCodec struct{}

func (codeCodec) MaxLen() int { return 4 }
func (codeCodec) Decode(p []byte) (control, error) {
	if len(p) != 4 {
		return control{}, fmt.Errorf("%w: RST payload must be 4 bytes, got %d", ErrProtocol, len(p))
	}
	return control{code: binary.BigEndian.Uint32(p)}, nil
}

// windowCodec handles WINDOW: a single 4-byte BE credit grant.
type windowCodec struct{}

func (windowCodec) MaxLen() int { return 4 }
func (windowCodec) Decode(p []byte) (control, error) {
	if len(p) != 4 {
		return control{}, fmt.Errorf("%w: WINDOW payload must be 4 bytes, got %d", ErrProtocol, len(p))
	}
	credit := binary.BigEndian.Uint32(p)
	if credit == 0 {
		return control{}, fmt.Errorf("%w: zero-credit WINDOW grant", ErrFlowControl)
	}
	return control{credit: credit}, nil
}

// goAwayCodec handles GOAWAY: a 4-byte BE code plus an optional message.
type goAwayCodec struct{}

func (goAwayCodec) MaxLen() int { return maxControlPayload }
func (goAwayCodec) Decode(p []byte) (control, error) {
	if len(p) < 4 {
		return control{}, fmt.Errorf("%w: short GOAWAY payload", ErrProtocol)
	}
	return control{code: binary.BigEndian.Uint32(p), msg: string(p[4:])}, nil
}

// Settings are one side's advertised receive limits, exchanged in the
// connection's opening SETTINGS frames. Each field bounds what the
// advertising side is willing to accept; the peer must respect them.
type Settings struct {
	// MaxStreams caps concurrently open streams on the connection.
	MaxStreams int
	// InitialWindow is the per-stream receive window in bytes: the
	// credit a sender starts with, replenished by WINDOW frames.
	InitialWindow int
	// MaxFrame is the largest DATA payload accepted in one frame.
	MaxFrame int
	// AcceptBacklog bounds accepted-but-unclaimed streams on the
	// listening side (local only; not transmitted).
	AcceptBacklog int
}

// Default settings.
const (
	DefaultMaxStreams    = 1024
	DefaultInitialWindow = 256 << 10
	DefaultMaxFrame      = 16 << 10
	DefaultAcceptBacklog = 128
)

// withDefaults fills unset fields and clamps the negotiable ones to
// their absolute bounds.
func (s Settings) withDefaults() Settings {
	if s.MaxStreams <= 0 {
		s.MaxStreams = DefaultMaxStreams
	}
	if s.InitialWindow <= 0 {
		s.InitialWindow = DefaultInitialWindow
	}
	if s.MaxFrame <= 0 {
		s.MaxFrame = DefaultMaxFrame
	}
	if s.MaxFrame > absoluteMaxFrame {
		s.MaxFrame = absoluteMaxFrame
	}
	if s.InitialWindow < s.MaxFrame {
		// A window smaller than one frame would deadlock the sender.
		s.InitialWindow = s.MaxFrame
	}
	if s.AcceptBacklog <= 0 {
		s.AcceptBacklog = DefaultAcceptBacklog
	}
	return s
}

// settings keys (uvarint key/value pairs in the SETTINGS payload).
const (
	settingMaxStreams    = 1
	settingInitialWindow = 2
	settingMaxFrame      = 3
)

// encodeSettings marshals the transmitted subset of s.
func encodeSettings(s Settings) []byte {
	buf := make([]byte, 0, 16)
	buf = binary.AppendUvarint(buf, settingMaxStreams)
	buf = binary.AppendUvarint(buf, uint64(s.MaxStreams))
	buf = binary.AppendUvarint(buf, settingInitialWindow)
	buf = binary.AppendUvarint(buf, uint64(s.InitialWindow))
	buf = binary.AppendUvarint(buf, settingMaxFrame)
	buf = binary.AppendUvarint(buf, uint64(s.MaxFrame))
	return buf
}

// settingsCodec decodes a SETTINGS payload. Unknown keys are skipped so
// a future dialect can add settings without breaking v2 peers; absent
// keys take the defaults.
type settingsCodec struct{}

func (settingsCodec) MaxLen() int { return maxControlPayload }
func (settingsCodec) Decode(p []byte) (control, error) {
	var s Settings
	for len(p) > 0 {
		key, n := binary.Uvarint(p)
		if n <= 0 {
			return control{}, fmt.Errorf("%w: truncated SETTINGS key", ErrProtocol)
		}
		p = p[n:]
		val, n := binary.Uvarint(p)
		if n <= 0 {
			return control{}, fmt.Errorf("%w: truncated SETTINGS value", ErrProtocol)
		}
		p = p[n:]
		if val > absoluteMaxFrame {
			// Every defined setting is bounded by the absolute frame cap;
			// a larger claim is hostile regardless of key.
			return control{}, fmt.Errorf("%w: SETTINGS value %d out of range", ErrProtocol, val)
		}
		switch key {
		case settingMaxStreams:
			s.MaxStreams = int(val)
		case settingInitialWindow:
			s.InitialWindow = int(val)
		case settingMaxFrame:
			s.MaxFrame = int(val)
		}
	}
	if s.MaxStreams <= 0 || s.InitialWindow <= 0 || s.MaxFrame <= 0 {
		return control{}, fmt.Errorf("%w: SETTINGS missing required limits", ErrProtocol)
	}
	if s.InitialWindow < s.MaxFrame {
		return control{}, fmt.Errorf("%w: SETTINGS window %d below max frame %d", ErrProtocol, s.InitialWindow, s.MaxFrame)
	}
	return control{settings: s}, nil
}
