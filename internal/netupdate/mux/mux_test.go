package mux

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// pair builds a connected client/server Transport pair over net.Pipe.
func pair(t *testing.T, cs, ss Settings) (*Transport, *Transport) {
	t.Helper()
	cc, sc := net.Pipe()
	var (
		srv  *Transport
		serr error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		srv, serr = Server(sc, sc, ss)
	}()
	cli, cerr := Client(cc, cs)
	<-done
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: client=%v server=%v", cerr, serr)
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

func TestStreamRoundTrip(t *testing.T) {
	cli, srv := pair(t, Settings{}, Settings{})

	srvErr := make(chan error, 1)
	go func() {
		s, err := srv.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		data, err := io.ReadAll(s)
		if err != nil {
			srvErr <- err
			return
		}
		if _, err := s.Write(data); err != nil {
			srvErr <- err
			return
		}
		srvErr <- s.CloseWrite()
	}()

	s, err := cli.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	msg := bytes.Repeat([]byte("in-place delta "), 1000)
	if _, err := s.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := s.CloseWrite(); err != nil {
		t.Fatalf("CloseWrite: %v", err)
	}
	back, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatalf("echo mismatch: got %d bytes, want %d", len(back), len(msg))
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("server side: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestManyStreamsInterleaved(t *testing.T) {
	cli, srv := pair(t, Settings{}, Settings{})
	const streams = 32

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < streams; i++ {
			s, err := srv.Accept()
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := io.Copy(s, s); err != nil {
					t.Errorf("echo stream %d: %v", s.ID(), err)
					return
				}
				s.CloseWrite()
				s.Close()
			}()
		}
	}()

	var cwg sync.WaitGroup
	for i := 0; i < streams; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			s, err := cli.Open()
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			msg := bytes.Repeat([]byte{byte(i)}, 4096+i)
			wdone := make(chan struct{})
			go func() {
				defer close(wdone)
				s.Write(msg)
				s.CloseWrite()
			}()
			back, err := io.ReadAll(s)
			<-wdone
			s.Close()
			if err != nil {
				t.Errorf("stream %d read: %v", i, err)
				return
			}
			if !bytes.Equal(back, msg) {
				t.Errorf("stream %d corrupted: got %d bytes want %d", i, len(back), len(msg))
			}
		}(i)
	}
	cwg.Wait()
	wg.Wait()
}

func TestHalfClose(t *testing.T) {
	cli, srv := pair(t, Settings{}, Settings{})
	accepted := make(chan *Stream, 1)
	go func() {
		s, _ := srv.Accept()
		accepted <- s
	}()
	c, err := cli.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := c.Write([]byte("request")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatalf("CloseWrite: %v", err)
	}
	s := <-accepted
	// Server drains to EOF — the half-close — then answers on the still
	// open return direction.
	req, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("server ReadAll: %v", err)
	}
	if string(req) != "request" {
		t.Fatalf("server got %q", req)
	}
	if _, err := s.Write([]byte("response")); err != nil {
		t.Fatalf("server Write after peer half-close: %v", err)
	}
	if err := s.CloseWrite(); err != nil {
		t.Fatalf("server CloseWrite: %v", err)
	}
	resp, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("client ReadAll: %v", err)
	}
	if string(resp) != "response" {
		t.Fatalf("client got %q", resp)
	}
	// A write after our own half-close must fail.
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after CloseWrite: err=%v, want ErrClosed", err)
	}
}

func TestStreamIDsNeverReused(t *testing.T) {
	cli, srv := pair(t, Settings{}, Settings{})
	go func() {
		for {
			s, err := srv.Accept()
			if err != nil {
				return
			}
			s.CloseWrite()
			s.Close()
		}
	}()
	seen := map[uint32]bool{}
	for i := 0; i < 50; i++ {
		s, err := cli.Open()
		if err != nil {
			t.Fatalf("Open #%d: %v", i, err)
		}
		if seen[s.ID()] {
			t.Fatalf("stream id %d reused after close", s.ID())
		}
		if s.ID()%2 != 1 {
			t.Fatalf("client stream id %d is not odd", s.ID())
		}
		seen[s.ID()] = true
		s.Close()
	}
}

// TestSynReuseFailsConnection injects a raw SYN replaying an id at or
// below the server's watermark: id reuse after close is a connection-
// fatal protocol violation, not a new stream.
func TestSynReuseFailsConnection(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	srvErr := make(chan error, 1)
	go func() {
		srv, err := Server(sc, sc, Settings{})
		if err != nil {
			srvErr <- err
			return
		}
		for {
			if _, err := srv.Accept(); err != nil {
				srvErr <- err
				return
			}
		}
	}()
	cli, err := Client(cc, Settings{})
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	s, err := cli.Open() // id 1
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.Close()
	// Replay a SYN for id 1 behind the transport's back.
	if err := cli.writeFrame(FrameSyn, 1, nil); err != nil {
		t.Fatalf("raw SYN: %v", err)
	}
	select {
	case err := <-srvErr:
		if !errors.Is(err, ErrStreamReuse) {
			t.Fatalf("server died with %v, want ErrStreamReuse", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not detect SYN reuse")
	}
}

func TestStreamLimitBlocksOpen(t *testing.T) {
	cli, srv := pair(t, Settings{MaxStreams: 1 << 20}, Settings{MaxStreams: 2})
	go func() {
		for {
			if _, err := srv.Accept(); err != nil {
				return
			}
			// Hold streams open so the limit stays consumed.
		}
	}()
	if got := cli.PeerSettings().MaxStreams; got != 2 {
		t.Fatalf("peer MaxStreams = %d, want 2", got)
	}
	if _, err := cli.Open(); err != nil {
		t.Fatalf("Open 1: %v", err)
	}
	if _, err := cli.Open(); err != nil {
		t.Fatalf("Open 2: %v", err)
	}
	// The negotiated limit (min of both sides) is 2, so Open #3 blocks
	// locally rather than troubling the server.
	done := make(chan struct{})
	go func() {
		defer close(done)
		cli.Open()
	}()
	select {
	case <-done:
		t.Fatal("Open past the stream limit did not block")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestBackpressure(t *testing.T) {
	// A tiny window: the writer must stall until the reader drains.
	small := Settings{InitialWindow: 4 << 10, MaxFrame: 1 << 10}
	cli, srv := pair(t, small, small)
	accepted := make(chan *Stream, 1)
	go func() {
		s, _ := srv.Accept()
		accepted <- s
	}()
	c, err := cli.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := bytes.Repeat([]byte("w"), 64<<10) // 16x the window
	wrote := make(chan error, 1)
	go func() {
		_, err := c.Write(payload)
		if err == nil {
			err = c.CloseWrite()
		}
		wrote <- err
	}()
	// The writer cannot have finished: only one window of credit exists.
	select {
	case err := <-wrote:
		t.Fatalf("write of 16x window completed without reader draining (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	s := <-accepted
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("drained %d bytes, want %d", len(got), len(payload))
	}
	if err := <-wrote; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

func TestReadDeadline(t *testing.T) {
	cli, srv := pair(t, Settings{}, Settings{})
	go func() {
		s, _ := srv.Accept()
		_ = s // never writes
	}()
	s, err := cli.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	var buf [1]byte
	start := time.Now()
	if _, err := s.Read(buf[:]); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read past deadline: err=%v, want ErrDeadlineExceeded", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("deadline read blocked far past its deadline")
	}
	// Clearing the deadline re-arms the stream.
	s.SetReadDeadline(time.Time{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.kill(ErrStreamReset)
	}()
	if _, err := s.Read(buf[:]); !errors.Is(err, ErrStreamReset) {
		t.Fatalf("Read after kill: err=%v", err)
	}
}

func TestTransportCloseKillsStreams(t *testing.T) {
	cli, srv := pair(t, Settings{}, Settings{})
	go func() {
		for {
			if _, err := srv.Accept(); err != nil {
				return
			}
		}
	}()
	s, err := cli.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	readErr := make(chan error, 1)
	go func() {
		var b [1]byte
		_, err := s.Read(b[:])
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cli.Close()
	select {
	case err := <-readErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Read after transport Close: err=%v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Read survived transport Close")
	}
	if _, err := cli.Open(); err == nil {
		t.Fatal("Open on closed transport succeeded")
	}
}

func TestGoAwayReachesPeer(t *testing.T) {
	cli, srv := pair(t, Settings{}, Settings{})
	cli.Close() // sends a best-effort GOAWAY before closing
	deadline := time.After(5 * time.Second)
	for srv.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("server never observed client shutdown")
		case <-time.After(time.Millisecond):
		}
	}
	err := srv.Err()
	if !errors.Is(err, ErrGoAway) && !errors.Is(err, ErrClosed) {
		t.Fatalf("server terminal error = %v, want GOAWAY or closed", err)
	}
}

// rawServerConn handshakes with a v2 server by hand and returns the raw
// conn so a test can inject frames below the Transport layer. Accepted
// streams are echoed to io.Discard; when closeOnEOF is set each stream
// is closed (and thus retired) once the peer half-closes.
func rawServerConn(t *testing.T, ss Settings, closeOnEOF bool) (net.Conn, chan error) {
	t.Helper()
	cc, sc := net.Pipe()
	t.Cleanup(func() { cc.Close() })
	srvErr := make(chan error, 1)
	go func() {
		srv, err := Server(sc, sc, ss)
		if err != nil {
			srvErr <- err
			return
		}
		go func() {
			for {
				s, err := srv.Accept()
				if err != nil {
					return
				}
				go func() {
					io.Copy(io.Discard, s)
					if closeOnEOF {
						s.Close()
					}
				}()
			}
		}()
		<-srv.done
		srvErr <- srv.Err()
	}()
	// Handshake by hand: send our SETTINGS, read the server's reply.
	hdr := make([]byte, HeaderLen)
	body := encodeSettings(Settings{}.withDefaults())
	putHeader(hdr, FrameSettings, 0, 0, uint32(len(body)))
	if _, err := cc.Write(append(hdr, body...)); err != nil {
		t.Fatalf("handshake write: %v", err)
	}
	if _, err := io.ReadFull(cc, hdr); err != nil {
		t.Fatalf("handshake read: %v", err)
	}
	h, err := parseHeader(hdr)
	if err != nil || h.typ != FrameSettings {
		t.Fatalf("handshake reply: %+v err=%v", h, err)
	}
	if _, err := io.ReadFull(cc, make([]byte, h.length)); err != nil {
		t.Fatalf("handshake reply body: %v", err)
	}
	return cc, srvErr
}

func frameBytes(typ, flags byte, stream uint32, payload []byte) []byte {
	b := make([]byte, HeaderLen+len(payload))
	b[0] = Magic
	b[1] = Version
	b[2] = typ
	b[3] = flags
	binary.BigEndian.PutUint32(b[4:8], stream)
	binary.BigEndian.PutUint32(b[8:12], uint32(len(payload)))
	copy(b[HeaderLen:], payload)
	return b
}

// TestHostileFrames drives raw hostile frames at a live v2 server and
// asserts each one fails the connection with its typed error instead of
// desynchronizing the frame boundary.
func TestHostileFrames(t *testing.T) {
	huge := frameBytes(FrameData, 0, 1, nil)
	binary.BigEndian.PutUint32(huge[8:12], 1<<25) // claim a 32 MiB payload

	overNegotiated := frameBytes(FrameData, 0, 1, nil)
	binary.BigEndian.PutUint32(overNegotiated[8:12], DefaultMaxFrame+1)

	badMagic := frameBytes(FrameData, 0, 1, []byte("x"))
	badMagic[0] = 0x00

	badVersion := frameBytes(FrameData, 0, 1, []byte("x"))
	badVersion[1] = 9

	flagged := frameBytes(FrameData, 0x80, 1, []byte("x"))

	cases := []struct {
		name   string
		frames [][]byte
		want   error
	}{
		{"absolute oversize length", [][]byte{huge}, ErrFrameTooLarge},
		{"over negotiated max frame",
			[][]byte{frameBytes(FrameSyn, 0, 1, nil), overNegotiated}, ErrFrameTooLarge},
		{"bad magic", [][]byte{badMagic}, ErrBadMagic},
		{"bad version", [][]byte{badVersion}, ErrVersionMismatch},
		{"reserved flags", [][]byte{flagged}, ErrProtocol},
		{"data for never-opened stream",
			[][]byte{frameBytes(FrameData, 0, 99, []byte("x"))}, ErrUnknownStream},
		{"data for stream zero",
			[][]byte{frameBytes(FrameData, 0, 0, []byte("x"))}, ErrUnknownStream},
		{"data for even stream id",
			[][]byte{frameBytes(FrameData, 0, 4, []byte("x"))}, ErrUnknownStream},
		{"window for never-opened stream",
			[][]byte{frameBytes(FrameWindow, 0, 7, []byte{0, 0, 1, 0})}, ErrUnknownStream},
		{"syn reuse below watermark",
			[][]byte{frameBytes(FrameSyn, 0, 5, nil), frameBytes(FrameSyn, 0, 3, nil)},
			ErrStreamReuse},
		{"syn on even id", [][]byte{frameBytes(FrameSyn, 0, 2, nil)}, ErrProtocol},
		{"unknown frame type", [][]byte{frameBytes(0x7F, 0, 0, nil)}, ErrUnknownFrameType},
		{"oversized control payload",
			[][]byte{frameBytes(FrameRst, 0, 1, make([]byte, 64))}, ErrFrameTooLarge},
		{"zero-credit window grant",
			[][]byte{frameBytes(FrameSyn, 0, 1, nil), frameBytes(FrameWindow, 0, 1, []byte{0, 0, 0, 0})},
			ErrFlowControl},
		{"data after fin",
			[][]byte{
				frameBytes(FrameSyn, 0, 1, nil),
				frameBytes(FrameFin, 0, 1, nil),
				frameBytes(FrameData, 0, 1, []byte("late")),
			}, ErrProtocol},
		{"settings after handshake",
			[][]byte{frameBytes(FrameSettings, 0, 0, encodeSettings(Settings{}.withDefaults()))},
			ErrProtocol},
		{"syn payload not empty",
			[][]byte{frameBytes(FrameSyn, 0, 9, []byte("x"))}, ErrProtocol},
		{"truncated rst payload",
			[][]byte{frameBytes(FrameSyn, 0, 1, nil), frameBytes(FrameRst, 0, 1, []byte{1, 2})},
			ErrProtocol},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// closeOnEOF is off so a FIN alone never retires a stream —
			// the data-after-fin case must hit a live stream.
			cc, srvErr := rawServerConn(t, Settings{}, false)
			for _, f := range tc.frames {
				if _, err := cc.Write(f); err != nil {
					t.Fatalf("frame write: %v", err)
				}
			}
			select {
			case err := <-srvErr:
				if !errors.Is(err, tc.want) {
					t.Fatalf("server failed with %v, want %v", err, tc.want)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("server accepted hostile frames without failing")
			}
		})
	}
}

// TestLateFramesForRetiredStreamDiscarded: frames racing a local close
// must be dropped, not treated as hostile — a FIN crossing an RST on the
// wire is normal shutdown, not an attack.
func TestLateFramesForRetiredStreamDiscarded(t *testing.T) {
	cc, srvErr := rawServerConn(t, Settings{}, true)
	// Open stream 1 and half-close it; the echo goroutine sees EOF and
	// closes its side, retiring the id.
	for _, f := range [][]byte{
		frameBytes(FrameSyn, 0, 1, nil),
		frameBytes(FrameFin, 0, 1, nil),
	} {
		if _, err := cc.Write(f); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	// Drain the server's FIN/RST replies so the pipe never backs up, and
	// give the echo goroutine a moment to close.
	go io.Copy(io.Discard, cc)
	time.Sleep(50 * time.Millisecond)
	// Late frames for the retired id must be discarded silently.
	for _, f := range [][]byte{
		frameBytes(FrameData, 0, 1, []byte("straggler")),
		frameBytes(FrameFin, 0, 1, nil),
		frameBytes(FrameRst, 0, 1, []byte{0, 0, 0, 1}),
		frameBytes(FrameWindow, 0, 1, []byte{0, 0, 1, 0}),
	} {
		if _, err := cc.Write(f); err != nil {
			t.Fatalf("late frame write: %v", err)
		}
	}
	// A fresh stream still works: the connection survived.
	if _, err := cc.Write(frameBytes(FrameSyn, 0, 3, nil)); err != nil {
		t.Fatalf("new SYN: %v", err)
	}
	if _, err := cc.Write(frameBytes(FrameData, 0, 3, []byte("alive"))); err != nil {
		t.Fatalf("new DATA: %v", err)
	}
	select {
	case err := <-srvErr:
		t.Fatalf("server failed on late frames for a retired stream: %v", err)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestSynRefusedOverLimit floods raw SYNs past the server's advertised
// stream limit: the overflow SYN is answered with RST CodeRefused while
// the connection survives.
func TestSynRefusedOverLimit(t *testing.T) {
	cc, srvErr := rawServerConn(t, Settings{MaxStreams: 1}, false)
	if _, err := cc.Write(frameBytes(FrameSyn, 0, 1, nil)); err != nil {
		t.Fatalf("SYN 1: %v", err)
	}
	if _, err := cc.Write(frameBytes(FrameSyn, 0, 3, nil)); err != nil {
		t.Fatalf("SYN 3: %v", err)
	}
	hdr := make([]byte, HeaderLen)
	if _, err := io.ReadFull(cc, hdr); err != nil {
		t.Fatalf("read refusal: %v", err)
	}
	h, err := parseHeader(hdr)
	if err != nil {
		t.Fatalf("refusal header: %v", err)
	}
	if h.typ != FrameRst || h.stream != 3 {
		t.Fatalf("got frame type %#x on stream %d, want RST on 3", h.typ, h.stream)
	}
	body := make([]byte, h.length)
	if _, err := io.ReadFull(cc, body); err != nil {
		t.Fatalf("refusal body: %v", err)
	}
	c, err := (codeCodec{}).Decode(body)
	if err != nil || c.code != CodeRefused {
		t.Fatalf("refusal code = %d (err=%v), want CodeRefused", c.code, err)
	}
	select {
	case err := <-srvErr:
		t.Fatalf("server died refusing a stream: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestClientHandshakeAgainstNonV2(t *testing.T) {
	t.Run("v1 style greeting", func(t *testing.T) {
		cc, sc := net.Pipe()
		defer sc.Close()
		go io.Copy(io.Discard, sc)
		errc := make(chan error, 1)
		go func() {
			_, err := Client(cc, Settings{})
			errc <- err
		}()
		// A v1 server's first reply byte is a v1 message type (0x01..0x07),
		// never Magic.
		sc.Write([]byte{0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
		if err := <-errc; !errors.Is(err, ErrBadMagic) {
			t.Fatalf("Client against v1-style peer: err=%v, want ErrBadMagic", err)
		}
	})
	t.Run("peer hangs up", func(t *testing.T) {
		cc, sc := net.Pipe()
		errc := make(chan error, 1)
		go func() {
			_, err := Client(cc, Settings{})
			errc <- err
		}()
		go io.Copy(io.Discard, sc)
		time.Sleep(10 * time.Millisecond)
		sc.Close()
		if err := <-errc; !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("Client against hangup: err=%v, want ErrVersionMismatch", err)
		}
	})
}

func TestSettingsNegotiation(t *testing.T) {
	cs := Settings{MaxStreams: 7, InitialWindow: 32 << 10, MaxFrame: 8 << 10}
	ss := Settings{MaxStreams: 11, InitialWindow: 128 << 10, MaxFrame: 4 << 10}
	cli, srv := pair(t, cs, ss)
	if got := cli.PeerSettings(); got.MaxStreams != 11 || got.InitialWindow != 128<<10 || got.MaxFrame != 4<<10 {
		t.Fatalf("client sees peer settings %+v", got)
	}
	if got := srv.PeerSettings(); got.MaxStreams != 7 || got.InitialWindow != 32<<10 || got.MaxFrame != 8<<10 {
		t.Fatalf("server sees peer settings %+v", got)
	}
	if cap(cli.slots) != 7 {
		t.Fatalf("client open limit %d, want min(7,11)=7", cap(cli.slots))
	}
}

func TestSettingsCodec(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		wantErr bool
	}{
		{"valid", encodeSettings(Settings{}.withDefaults()), false},
		{"empty", nil, true},
		{"truncated key", []byte{0x80}, true},
		{"missing limits", binary.AppendUvarint(binary.AppendUvarint(nil, settingMaxStreams), 4), true},
		{"window below frame", func() []byte {
			b := binary.AppendUvarint(nil, settingMaxStreams)
			b = binary.AppendUvarint(b, 4)
			b = binary.AppendUvarint(b, settingInitialWindow)
			b = binary.AppendUvarint(b, 16)
			b = binary.AppendUvarint(b, settingMaxFrame)
			b = binary.AppendUvarint(b, 1024)
			return b
		}(), true},
		{"out of range value", func() []byte {
			b := binary.AppendUvarint(nil, settingMaxStreams)
			b = binary.AppendUvarint(b, 1<<40)
			return b
		}(), true},
		{"unknown key skipped", func() []byte {
			b := encodeSettings(Settings{}.withDefaults())
			b = binary.AppendUvarint(b, 99)
			b = binary.AppendUvarint(b, 12345)
			return b
		}(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := (settingsCodec{}).Decode(tc.payload)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Decode err=%v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestRegisterCodecPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterCodec on a claimed type did not panic")
		}
	}()
	RegisterCodec(FrameSyn, emptyCodec{})
}

func TestHeaderRoundTrip(t *testing.T) {
	var b [HeaderLen]byte
	putHeader(b[:], FrameData, 0, 0xDEADBEEF, 0x123456)
	h, err := parseHeader(b[:])
	if err != nil {
		t.Fatalf("parseHeader: %v", err)
	}
	if h.typ != FrameData || h.stream != 0xDEADBEEF || h.length != 0x123456 {
		t.Fatalf("round trip mismatch: %+v", h)
	}
}

// FuzzFrameDecode exercises the frame header parser and every control
// codec against arbitrary bytes: decoding must never panic, and any
// accepted header must round-trip.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{Magic, Version, FrameData, 0, 0, 0, 0, 1, 0, 0, 0, 5})
	f.Add([]byte{Magic, Version, FrameSettings, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(frameBytes(FrameGoAway, 0, 0, []byte{0, 0, 0, 3, 'b', 'y', 'e'}))
	f.Add(bytes.Repeat([]byte{0xFF}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < HeaderLen {
			return
		}
		h, err := parseHeader(data[:HeaderLen])
		if err != nil {
			return
		}
		var rt [HeaderLen]byte
		putHeader(rt[:], h.typ, h.flags, h.stream, h.length)
		if !bytes.Equal(rt[:], data[:HeaderLen]) {
			t.Fatalf("header round trip: % x != % x", rt[:], data[:HeaderLen])
		}
		c := codecFor(h.typ)
		if c == nil {
			return
		}
		payload := data[HeaderLen:]
		if len(payload) > c.MaxLen() {
			payload = payload[:c.MaxLen()]
		}
		c.Decode(payload) // must not panic
	})
}

func TestRing(t *testing.T) {
	var q ring
	defer q.release()
	src := bytes.Repeat([]byte("0123456789"), 2000)
	r := bytes.NewReader(src)
	var got []byte
	buf := make([]byte, 777)
	// Interleave fills and reads at mismatched sizes to force wraparound.
	for len(got) < len(src) {
		n := 3000
		if rem := r.Len(); n > rem {
			n = rem
		}
		if n > 0 {
			q.grow(n)
			if err := q.fill(r, n); err != nil {
				t.Fatalf("fill: %v", err)
			}
		}
		for q.n > 0 {
			k := q.read(buf)
			got = append(got, buf[:k]...)
		}
	}
	if !bytes.Equal(got, src) {
		t.Fatal("ring corrupted data across grow/wrap cycles")
	}
}

// nopConn satisfies net.Conn with no-op I/O for allocation measurement.
type nopConn struct{}

func (nopConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (nopConn) Write(p []byte) (int, error)      { return len(p), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return nil }
func (nopConn) RemoteAddr() net.Addr             { return nil }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }

// nopTransport builds a Transport over a no-op conn for deterministic
// allocation measurement (no read loop, no peer).
func nopTransport() *Transport {
	st := Settings{}.withDefaults()
	tr := &Transport{conn: nopConn{}, local: st, peer: st, client: true}
	tr.wbuf = make([]byte, HeaderLen+st.MaxFrame)
	return tr
}

// TestZeroAllocFramePath is the acceptance gate: steady-state frame
// write (header marshal + single conn write), the stream write path
// (chunking + credit accounting), and the receive path (ring fill +
// read + window grant) must not allocate.
func TestZeroAllocFramePath(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under the race detector")
	}
	t.Run("header", func(t *testing.T) {
		var b [HeaderLen]byte
		n := testing.AllocsPerRun(1000, func() {
			putHeader(b[:], FrameData, 0, 1, 4096)
			if _, err := parseHeader(b[:]); err != nil {
				t.Fatal(err)
			}
		})
		if n != 0 {
			t.Fatalf("header path allocates %.1f/op, want 0", n)
		}
	})
	t.Run("writeFrame", func(t *testing.T) {
		tr := nopTransport()
		payload := make([]byte, 4096)
		n := testing.AllocsPerRun(1000, func() {
			if err := tr.writeFrame(FrameData, 1, payload); err != nil {
				t.Fatal(err)
			}
		})
		if n != 0 {
			t.Fatalf("writeFrame allocates %.1f/op, want 0", n)
		}
	})
	t.Run("stream write", func(t *testing.T) {
		tr := nopTransport()
		s := newStream(1, tr, 1<<30)
		payload := make([]byte, 40<<10) // forces chunking across frames
		n := testing.AllocsPerRun(500, func() {
			if _, err := s.Write(payload); err != nil {
				t.Fatal(err)
			}
		})
		if n != 0 {
			t.Fatalf("stream write path allocates %.1f/op, want 0", n)
		}
	})
	t.Run("stream receive", func(t *testing.T) {
		tr := nopTransport()
		s := newStream(1, tr, 1<<30)
		tr.streams = map[uint32]*Stream{1: s}
		payload := make([]byte, 4096)
		src := bytes.NewReader(payload)
		buf := make([]byte, 8192)
		// Warm once so the ring slab is allocated.
		src.Reset(payload)
		if err := s.deliver(src, len(payload)); err != nil {
			t.Fatal(err)
		}
		s.Read(buf)
		n := testing.AllocsPerRun(1000, func() {
			src.Reset(payload)
			if err := s.deliver(src, len(payload)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Read(buf); err != nil {
				t.Fatal(err)
			}
		})
		if n != 0 {
			t.Fatalf("stream receive path allocates %.1f/op, want 0", n)
		}
	})
}
