package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sccOf returns a canonical (sorted) form of the SCC decomposition.
func sccOf(g *Digraph) [][]int {
	sccs := StronglyConnectedComponents(g)
	for _, c := range sccs {
		sort.Ints(c)
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

func TestSCCSimple(t *testing.T) {
	// 0→1→2→0 is one SCC; 3 hangs off it; 4 isolated.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	sccs := sccOf(g)
	if len(sccs) != 3 {
		t.Fatalf("sccs = %v", sccs)
	}
	if len(sccs[0]) != 3 || sccs[0][0] != 0 || sccs[0][2] != 2 {
		t.Fatalf("big component = %v", sccs[0])
	}
}

func TestSCCDag(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	sccs := sccOf(g)
	if len(sccs) != 4 {
		t.Fatalf("DAG should decompose into singletons: %v", sccs)
	}
}

func TestSCCTwoComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	g.AddEdge(1, 2) // bridge between the components
	sccs := sccOf(g)
	if len(sccs) != 3 { // {0,1}, {2,3,4}, {5}
		t.Fatalf("sccs = %v", sccs)
	}
	if len(sccs[0]) != 2 || len(sccs[1]) != 3 || len(sccs[2]) != 1 {
		t.Fatalf("sccs = %v", sccs)
	}
}

func TestSCCEveryVertexOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		g := randomDigraph(rng, n, rng.Float64()*0.15)
		seen := make([]bool, n)
		total := 0
		for _, comp := range StronglyConnectedComponents(g) {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// mutualReach reports whether u and v lie on a common cycle (reach each
// other), by brute force.
func mutualReach(g *Digraph, u, v int) bool {
	return reaches(g, u, v) && reaches(g, v, u)
}

func reaches(g *Digraph, from, to int) bool {
	if from == to {
		return true
	}
	seen := make([]bool, g.NumVertices())
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Succ(cur) {
			if int(w) == to {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, int(w))
			}
		}
	}
	return false
}

func TestSCCQuickAgainstMutualReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(14) + 2
		g := randomDigraph(rng, n, 0.25)
		comp := make([]int, n)
		for id, c := range StronglyConnectedComponents(g) {
			for _, v := range c {
				comp[v] = id
			}
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if (comp[u] == comp[v]) != mutualReach(g, u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyFeedbackVertexSet(t *testing.T) {
	t.Run("acyclic removes nothing", func(t *testing.T) {
		g := New(5)
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		if got := GreedyFeedbackVertexSet(g, UnitCost); len(got) != 0 {
			t.Fatalf("removed %v", got)
		}
	})
	t.Run("breaks all cycles", func(t *testing.T) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := rng.Intn(40) + 2
			g := randomDigraph(rng, n, rng.Float64()*0.2)
			costs := make([]int64, n)
			for k := range costs {
				costs[k] = rng.Int63n(50) + 1
			}
			removed := GreedyFeedbackVertexSet(g, func(v int) int64 { return costs[v] })
			mask := make([]bool, n)
			for _, v := range removed {
				if mask[v] {
					return false // duplicate removal
				}
				mask[v] = true
			}
			return g.IsAcyclicWithout(mask)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("hub removal beats leaf removal on the tree", func(t *testing.T) {
		// On the Figure 2 tree, the root has (in=leaves, out=2); the greedy
		// degree/cost score picks it immediately, achieving the optimum
		// where locally-minimum removes every leaf.
		g, cost := AdversarialTree(5, 10, 11, 1000)
		removed := GreedyFeedbackVertexSet(g, cost)
		if len(removed) != 1 || removed[0] != 0 {
			t.Fatalf("greedy removed %v, want just the root", removed)
		}
	})
}
