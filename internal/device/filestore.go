package device

import (
	"fmt"
	"io"
	"os"
)

// FileStore adapts a real file to the Store interface, so a Device can
// patch an image file (or a partition exposed as a file) in place the way
// real OTA engines do — bounded buffer, no second copy of the image.
//
// Reads beyond the current end of file return zeros, matching erased
// flash; writes extend the file up to the configured capacity.
type FileStore struct {
	f        *os.File
	capacity int64
}

// Verify interface compliance.
var _ Store = (*FileStore)(nil)

// NewFileStore wraps f with the given capacity. The file's current
// contents must fit the capacity.
func NewFileStore(f *os.File, capacity int64) (*FileStore, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() > capacity {
		return nil, fmt.Errorf("%w: file %d bytes, capacity %d", ErrOutOfBounds, fi.Size(), capacity)
	}
	return &FileStore{f: f, capacity: capacity}, nil
}

// Capacity implements Store.
func (s *FileStore) Capacity() int64 { return s.capacity }

// ReadAt implements Store. Short reads past EOF are zero-filled, like an
// erased part.
func (s *FileStore) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.capacity {
		return fmt.Errorf("%w: read [%d,%d)", ErrOutOfBounds, off, off+int64(len(p)))
	}
	n, err := s.f.ReadAt(p, off)
	if err == io.EOF || (err == nil && n == len(p)) {
		for k := n; k < len(p); k++ {
			p[k] = 0
		}
		return nil
	}
	return err
}

// WriteAt implements Store.
func (s *FileStore) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.capacity {
		return fmt.Errorf("%w: write [%d,%d)", ErrOutOfBounds, off, off+int64(len(p)))
	}
	_, err := s.f.WriteAt(p, off)
	return err
}

// Truncate shrinks or grows the underlying file to exactly n bytes;
// callers use it after a successful update so the file length matches the
// installed image.
func (s *FileStore) Truncate(n int64) error {
	if n < 0 || n > s.capacity {
		return fmt.Errorf("%w: truncate to %d", ErrOutOfBounds, n)
	}
	return s.f.Truncate(n)
}

// Sync flushes the file to stable storage.
func (s *FileStore) Sync() error { return s.f.Sync() }
