package netupdate

import (
	"ipdelta/internal/obs"
)

// serverMetrics holds the pre-resolved handles of an observed Server
// (DESIGN.md §9). Resolved once in NewServer so the per-session path does
// no registry lookups.
type serverMetrics struct {
	sessions        *obs.Counter // sessions admitted (excludes budget rejects)
	sessionFailures *obs.Counter
	upToDate        *obs.Counter
	deltaSessions   *obs.Counter
	fullSessions    *obs.Counter
	unknownVersion  *obs.Counter
	budgetRejects   *obs.Counter
	bytesServed     *obs.Counter
	v1Sessions      *obs.Counter // connections served through the v1 shim
	cachedDeltas    *obs.Gauge
	muxConns        *obs.Gauge // live v2 multiplexed connections
	muxStreams      *obs.Gauge // live v2 update streams across all conns

	sessionStage  obs.Stage // whole-session wall time
	msgReadStage  obs.Stage // one framed protocol read
	msgWriteStage obs.Stage // one framed protocol write (incl. flush)
}

func resolveServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		sessions:        r.Counter("ipdelta_server_sessions_total"),
		sessionFailures: r.Counter("ipdelta_server_session_failures_total"),
		upToDate:        r.Counter("ipdelta_server_up_to_date_total"),
		deltaSessions:   r.Counter("ipdelta_server_delta_sessions_total"),
		fullSessions:    r.Counter("ipdelta_server_full_sessions_total"),
		unknownVersion:  r.Counter("ipdelta_server_unknown_version_total"),
		budgetRejects:   r.Counter("ipdelta_server_budget_rejects_total"),
		bytesServed:     r.Counter("ipdelta_server_bytes_served_total"),
		v1Sessions:      r.Counter("ipdelta_server_v1_sessions_total"),
		cachedDeltas:    r.Gauge("ipdelta_server_cached_deltas"),
		muxConns:        r.Gauge("ipdelta_server_mux_conns"),
		muxStreams:      r.Gauge("ipdelta_server_mux_streams"),
		sessionStage:    r.Stage("ipdelta_server_session_nanos"),
		msgReadStage:    r.Stage("ipdelta_server_msg_read_nanos"),
		msgWriteStage:   r.Stage("ipdelta_server_msg_write_nanos"),
	}
}

// clientMetrics holds the pre-resolved handles of an observed Runner.
type clientMetrics struct {
	runs          *obs.Counter
	runFailures   *obs.Counter
	attempts      *obs.Counter
	retries       *obs.Counter
	degradations  *obs.Counter // delta path abandoned for the full-image rung
	upToDate      *obs.Counter
	fullTransfers *obs.Counter
	bytesReceived *obs.Counter

	attemptStage obs.Stage // one session attempt, dial included
}

func resolveClientMetrics(r *obs.Registry) *clientMetrics {
	return &clientMetrics{
		runs:          r.Counter("ipdelta_client_runs_total"),
		runFailures:   r.Counter("ipdelta_client_run_failures_total"),
		attempts:      r.Counter("ipdelta_client_attempts_total"),
		retries:       r.Counter("ipdelta_client_retries_total"),
		degradations:  r.Counter("ipdelta_client_degradations_total"),
		upToDate:      r.Counter("ipdelta_client_up_to_date_total"),
		fullTransfers: r.Counter("ipdelta_client_full_transfers_total"),
		bytesReceived: r.Counter("ipdelta_client_bytes_received_total"),
		attemptStage:  r.Stage("ipdelta_client_attempt_nanos"),
	}
}
