// Package analysistest runs an analyzer over a self-contained testdata
// package and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the offline
// loader.
//
// A test package lives in testdata/src/<name>/ under the analyzer's
// directory. Each line that should be flagged carries a trailing comment
//
//	x := int(v) // want `narrowing conversion`
//
// with one backquoted or quoted regular expression per expected
// diagnostic on that line. Lines without a want comment must produce no
// diagnostics.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ipdelta/internal/lint/analysis"
	"ipdelta/internal/lint/loader"
)

var wantRE = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run applies a to testdata/src/<pkgname> (relative to the test's working
// directory, i.e. the analyzer package) and reports mismatches through t.
func Run(t *testing.T, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/src/"+pkgname, pkgname)
	if err != nil {
		t.Fatalf("load %s: %v", pkgname, err)
	}

	// Collect // want expectations per "file:line".
	wants := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				key := lineKey(pkg.Fset, c.Pos())
				for _, q := range wantRE.FindAllString(text[idx+len("want "):], -1) {
					pattern := q[1 : len(q)-1]
					if q[0] == '"' {
						if p, err := strconv.Unquote(q); err == nil {
							pattern = p
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for _, d := range diags {
		if pkg.Ignored(a.Name, d.Pos) {
			continue
		}
		key := lineKey(pkg.Fset, d.Pos)
		exps := wants[key]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pkg.Fset.Position(d.Pos), d.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
			}
		}
	}
}

func lineKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
