//go:build !race

package diff

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
