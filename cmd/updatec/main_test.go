package main

import (
	"bytes"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"

	"ipdelta/internal/netupdate"
)

func TestUpdatecAgainstServer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v1 := make([]byte, 16<<10)
	rng.Read(v1)
	v2 := append([]byte(nil), v1...)
	copy(v2[1024:2048], v1[8192:9216])

	srv, err := netupdate.NewServer([][]byte{v1, v2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l) //nolint:errcheck

	dir := t.TempDir()
	imagePath := filepath.Join(dir, "device.img")
	if err := os.WriteFile(imagePath, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-server", l.Addr().String(), "-image", imagePath}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(imagePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("device image not updated to v2")
	}

	// Second run: already up to date.
	if err := run([]string{"-server", l.Addr().String(), "-image", imagePath}); err != nil {
		t.Fatal(err)
	}
	// Throttled run from v1 again.
	if err := os.WriteFile(imagePath, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-server", l.Addr().String(), "-image", imagePath, "-rate", "2000000"}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatecRetriesThroughFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v1 := make([]byte, 16<<10)
	rng.Read(v1)
	v2 := append([]byte(nil), v1...)
	copy(v2[2048:4096], v1[10240:12288])

	srv, err := netupdate.NewServer([][]byte{v1, v2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l) //nolint:errcheck

	dir := t.TempDir()
	imagePath := filepath.Join(dir, "device.img")
	if err := os.WriteFile(imagePath, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	// A 20% per-operation drop rate kills most sessions; the retry loop
	// (with resume) must still converge within the attempt budget.
	if err := run([]string{
		"-server", l.Addr().String(), "-image", imagePath,
		"-retries", "25", "-fault-rate", "0.2", "-fault-seed", "7",
		"-fallback-after", "5", "-timeout", "5s",
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(imagePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("device image not updated to v2 through faults")
	}
}

func TestUpdatecUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-image", "missing.img"},
		{"-server", "127.0.0.1:1", "-image", "missing.img"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
