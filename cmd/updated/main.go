// Command updated is the software-update server: it serves the newest of a
// set of image files as in-place reconstructible deltas to updatec clients.
//
// Usage:
//
//	updated -listen 127.0.0.1:7070 [-timeout D] [-failure-budget N] v1.img v2.img v3.img
//
// Images are the release history, oldest first; devices running any of them
// are upgraded to the last one. -timeout arms a per-message I/O deadline so
// a stalled client cannot pin a server worker; -failure-budget turns away
// clients (by remote host) after N consecutive failed sessions.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"

	"ipdelta/internal/netupdate"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "updated:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("updated", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "listen address")
	timeout := fs.Duration("timeout", 0, "per-message I/O deadline inside a session (0 = none)")
	failBudget := fs.Int("failure-budget", 0, "reject a client after N consecutive failed sessions (0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return errors.New("usage: updated [-listen ADDR] OLDEST.img ... NEWEST.img")
	}
	history := make([][]byte, 0, len(paths))
	for _, p := range paths {
		img, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		history = append(history, img)
	}
	srv, err := netupdate.NewServer(history,
		netupdate.WithMessageTimeout(*timeout),
		netupdate.WithFailureBudget(*failBudget),
	)
	if err != nil {
		return err
	}
	// Build every per-release delta before accepting connections.
	if err := srv.Prewarm(0); err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("updated: serving %d releases on %s (current: %s, %d bytes)\n",
		len(history), l.Addr(), paths[len(paths)-1], len(srv.Current()))
	return srv.Serve(l)
}
