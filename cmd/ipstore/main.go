// Command ipstore manages a delta-chain version store: a container file
// holding a base image plus one delta per release. Any version can be
// extracted, and a direct in-place delta can be emitted from any stored
// version to the newest — the server-side companion to in-place patching.
//
// Usage:
//
//	ipstore init    -store FILE -base IMAGE
//	ipstore append  -store FILE -version IMAGE
//	ipstore info    -store FILE
//	ipstore extract -store FILE -index N -out IMAGE
//	ipstore delta   -store FILE -from N [-to M] -out DELTA [-inplace] [-policy P]
//	ipstore rollback -store FILE -to N -out DELTA [-policy P]
//	ipstore serve   -store FILE [-listen ADDR] [-policy P] [-diff ALGO] [-v]
//	ipstore archive -store FILE -dir DIR [-up-to N] [-data K] [-parity M] [-segment S]
//	ipstore scrub   -dir DIR [-repair] [-verify]
//	ipstore restore -dir DIR -index N -out IMAGE
//
// serve exposes the store over HTTP: GET /info (JSON census), GET
// /version/{n} (raw image), GET /delta?from=N (compact in-place delta to
// the newest version), and GET /metrics (request and codec counters,
// Prometheus-style text or JSON with ?format=json).
//
// archive stripes the store's history across K+M erasure-coded node
// directories (any K suffice to read); scrub verifies shard CRCs, rebuilds
// bad shards with -repair, and re-checks every archived version with
// -verify; restore reconstructs one version purely from surviving shards —
// even with up to M node directories deleted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"ipdelta/internal/codec"
	"ipdelta/internal/graph"
	"ipdelta/internal/stats"
	"ipdelta/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ipstore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: ipstore {init|append|info|extract|delta|rollback|serve|archive|scrub|restore} [flags]")
	}
	switch args[0] {
	case "init":
		return cmdInit(args[1:])
	case "append":
		return cmdAppend(args[1:])
	case "info":
		return cmdStoreInfo(args[1:])
	case "extract":
		return cmdExtract(args[1:])
	case "delta":
		return cmdDelta(args[1:])
	case "rollback":
		return cmdRollback(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "archive":
		return cmdArchive(args[1:])
	case "scrub":
		return cmdScrub(args[1:])
	case "restore":
		return cmdRestore(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func loadStore(path string, opts ...store.Option) (*store.Store, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return store.Load(blob, opts...)
}

func saveStore(path string, s *store.Store) error {
	blob, err := s.Save()
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	storePath := fs.String("store", "", "store file to create")
	basePath := fs.String("base", "", "base image")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" || *basePath == "" {
		return errors.New("init: -store and -base are required")
	}
	base, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	s := store.New(base)
	if err := saveStore(*storePath, s); err != nil {
		return err
	}
	fmt.Printf("initialized %s with base %s (%s)\n", *storePath, *basePath, stats.Bytes(int64(len(base))))
	return nil
}

func cmdAppend(args []string) error {
	fs := flag.NewFlagSet("append", flag.ContinueOnError)
	storePath := fs.String("store", "", "store file")
	versionPath := fs.String("version", "", "new version image")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" || *versionPath == "" {
		return errors.New("append: -store and -version are required")
	}
	s, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	version, err := os.ReadFile(*versionPath)
	if err != nil {
		return err
	}
	idx, err := s.AppendVersion(version)
	if err != nil {
		return err
	}
	if err := saveStore(*storePath, s); err != nil {
		return err
	}
	fmt.Printf("appended version %d (%s)\n", idx, stats.Bytes(int64(len(version))))
	return nil
}

func cmdStoreInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	storePath := fs.String("store", "", "store file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return errors.New("info: -store is required")
	}
	s, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	storage, err := s.StorageBytes()
	if err != nil {
		return err
	}
	fmt.Printf("versions: %d\n", s.NumVersions())
	for k := 0; k < s.NumVersions(); k++ {
		crc, length, err := s.CRC(k)
		if err != nil {
			return err
		}
		fmt.Printf("  %3d: %s crc32=%08x\n", k, stats.Bytes(length), crc)
	}
	fmt.Printf("chain storage: %s (full copies would be %s, %.1fx saving)\n",
		stats.Bytes(storage), stats.Bytes(s.FullBytes()),
		float64(s.FullBytes())/float64(storage))
	return nil
}

func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	storePath := fs.String("store", "", "store file")
	index := fs.Int("index", -1, "version index")
	outPath := fs.String("out", "", "output image file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" || *index < 0 || *outPath == "" {
		return errors.New("extract: -store, -index and -out are required")
	}
	s, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	img, err := s.Version(*index)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, img, 0o644); err != nil {
		return err
	}
	fmt.Printf("extracted version %d to %s (%s)\n", *index, *outPath, stats.Bytes(int64(len(img))))
	return nil
}

func cmdRollback(args []string) error {
	fs := flag.NewFlagSet("rollback", flag.ContinueOnError)
	storePath := fs.String("store", "", "store file")
	to := fs.Int("to", -1, "version index to roll back to")
	outPath := fs.String("out", "", "output delta file")
	policyName := fs.String("policy", "locally-minimum", "cycle-breaking policy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" || *to < 0 || *outPath == "" {
		return errors.New("rollback: -store, -to and -out are required")
	}
	s, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	policy, err := graph.PolicyByName(*policyName)
	if err != nil {
		return err
	}
	d, st, err := s.RollbackDelta(*to, policy)
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	n, err := codec.Encode(f, d, codec.FormatCompact)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s, compact): newest -> version %d, %d copies converted\n",
		*outPath, stats.Bytes(n), *to, st.ConvertedCopies)
	return nil
}

func cmdDelta(args []string) error {
	fs := flag.NewFlagSet("delta", flag.ContinueOnError)
	storePath := fs.String("store", "", "store file")
	from := fs.Int("from", -1, "source version index")
	to := fs.Int("to", -1, "target version index (default: newest)")
	outPath := fs.String("out", "", "output delta file")
	inPlace := fs.Bool("inplace", false, "convert for in-place reconstruction")
	policyName := fs.String("policy", "locally-minimum", "cycle-breaking policy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" || *from < 0 || *outPath == "" {
		return errors.New("delta: -store, -from and -out are required")
	}
	s, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	target := *to
	if target < 0 {
		target = s.NumVersions() - 1
	}
	d, err := s.DeltaBetween(*from, target)
	if err != nil {
		return err
	}
	format := codec.FormatOrdered
	if *inPlace {
		policy, err := graph.PolicyByName(*policyName)
		if err != nil {
			return err
		}
		if target != s.NumVersions()-1 {
			return errors.New("delta: -inplace currently targets the newest version")
		}
		d, _, err = s.InPlaceDeltaTo(*from, policy)
		if err != nil {
			return err
		}
		format = codec.FormatCompact
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	n, err := codec.Encode(f, d, format)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s, %s): version %d -> %d\n", *outPath, stats.Bytes(n), format, *from, target)
	return nil
}
