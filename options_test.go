package ipdelta

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// scrambledPair builds a (ref, version) pair whose diff has real cycles,
// so policies and scratch budgets actually change the converted delta.
func scrambledPair(seed int64, size int) (ref, version []byte) {
	rng := rand.New(rand.NewSource(seed))
	ref = make([]byte, size)
	rng.Read(ref)
	// Swap the halves and churn a stripe: block moves in both directions
	// entangle the CRWI digraph.
	version = append([]byte(nil), ref[size/2:]...)
	version = append(version, ref[:size/2]...)
	stripe := version[size/4 : size/4+size/16]
	rng.Read(stripe)
	return ref, version
}

// encodeAll renders a delta in an in-place capable wire format for
// byte-for-byte comparison (scratch deltas need the scratch format).
func encodeAll(t *testing.T, d *Delta) []byte {
	t.Helper()
	f := FormatCompact
	if d.ScratchRequired() > 0 {
		f = FormatScratch
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, d, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConvertOptionsMatchLegacy proves the options API is a drop-in
// replacement: for every policy and scratch budget, ConvertInPlace with
// the matching option produces a byte-for-byte identical delta and equal
// stats to the legacy entry point.
func TestConvertOptionsMatchLegacy(t *testing.T) {
	ref, version := scrambledPair(17, 16<<10)
	d, err := Diff(ref, version)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("policy", func(t *testing.T) {
		for _, p := range []Policy{LocallyMinimum, ConstantTime} {
			t.Run(p.Name(), func(t *testing.T) {
				legacy, legacyStats, err := ConvertInPlaceWithPolicy(d, ref, p)
				if err != nil {
					t.Fatal(err)
				}
				opt, optStats, err := ConvertInPlace(d, ref, WithPolicy(p))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(encodeAll(t, legacy), encodeAll(t, opt)) {
					t.Fatal("options-API delta differs from legacy")
				}
				if *legacyStats != *optStats {
					t.Fatalf("stats diverged:\n  legacy: %+v\n  option: %+v", *legacyStats, *optStats)
				}
			})
		}
	})

	t.Run("scratch", func(t *testing.T) {
		for _, budget := range []int64{0, 64, 4 << 10, 1 << 20} {
			t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
				legacy, legacyStats, err := ConvertInPlaceScratch(d, ref, budget)
				if err != nil {
					t.Fatal(err)
				}
				opt, optStats, err := ConvertInPlace(d, ref, WithScratchBudget(budget))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(encodeAll(t, legacy), encodeAll(t, opt)) {
					t.Fatal("options-API delta differs from legacy")
				}
				if *legacyStats != *optStats {
					t.Fatalf("stats diverged:\n  legacy: %+v\n  option: %+v", *legacyStats, *optStats)
				}
			})
		}
	})

	// Options compose: policy + scratch budget together still apply
	// correctly in place.
	t.Run("composed", func(t *testing.T) {
		ip, _, err := ConvertInPlace(d, ref, WithPolicy(ConstantTime), WithScratchBudget(4<<10))
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, ip.InPlaceBufLen())
		copy(buf, ref)
		if err := PatchInPlace(buf, ip); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:ip.VersionLen], version) {
			t.Fatal("composed options produced a wrong reconstruction")
		}
	})
}

// TestConvertObserverRecords attaches a registry through the facade and
// checks the conversion pipeline reported into it.
func TestConvertObserverRecords(t *testing.T) {
	ref, version := scrambledPair(23, 8<<10)
	d, err := Diff(ref, version)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	ip, st, err := ConvertInPlace(d, ref, WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("ipdelta_convert_total"); got != 1 {
		t.Errorf("ipdelta_convert_total = %d, want 1", got)
	}
	if got := snap.Counter(`ipdelta_convert_cycles_broken_total{policy="locally-minimum"}`); got != int64(st.CyclesBroken) {
		t.Errorf("cycles_broken counter = %d, stats say %d", got, st.CyclesBroken)
	}
	if st.CyclesBroken == 0 {
		t.Error("fixture has no cycles; the counter assertion is vacuous")
	}
	for _, name := range []string{
		"ipdelta_convert_stage_crwi_nanos",
		"ipdelta_convert_stage_toposort_nanos",
		"ipdelta_convert_stage_emit_nanos",
	} {
		if h := snap.Histograms[name]; h.Count == 0 {
			t.Errorf("%s recorded no observations", name)
		}
	}
	// The observed conversion is still correct.
	buf := make([]byte, ip.InPlaceBufLen())
	copy(buf, ref)
	if err := PatchInPlace(buf, ip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:ip.VersionLen], version) {
		t.Fatal("observed conversion produced a wrong reconstruction")
	}
}
