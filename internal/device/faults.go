package device

import (
	"errors"
	"math/rand/v2"
	"sync"
)

// ErrTransientIO is returned for injected flaky-flash failures: the
// operation failed but the part is still alive, so retrying is the right
// response. It is distinct from ErrPowerCut, which models the device dying
// mid-write and coming back later — tests and retry policies can tell the
// two apart.
var ErrTransientIO = errors.New("device: transient I/O error")

// FaultyStore decorates any Store with failure injection, so power-cut and
// flaky-flash scenarios can be tested against file-backed stores as well
// as the in-memory Flash (which has its own simple write-count trigger).
//
// Failures are counted across reads and writes together when configured
// with FailAfterOps or FailEveryOps; independent random failure rates can
// also be set. All methods are goroutine-safe, so one FaultyStore can sit
// under a device driven by connection-level chaos from several goroutines.
type FaultyStore struct {
	inner Store

	mu              sync.Mutex
	opsUntilFailure int64 // -1 disarmed
	rearmEvery      int64 // 0: one-shot; >0: re-arm after firing
	failNextKind    error

	rng           *rand.Rand
	writeFailProb float64
}

// Verify interface compliance.
var _ Store = (*FaultyStore)(nil)

// NewFaultyStore wraps inner with disarmed failure injection.
func NewFaultyStore(inner Store) *FaultyStore {
	return &FaultyStore{inner: inner, opsUntilFailure: -1, failNextKind: ErrPowerCut}
}

// FailAfterOps arms a deterministic failure: the (n+1)-th operation (read
// or write) from now fails with ErrPowerCut, and every operation after it
// keeps failing until the store is re-armed. Negative n disarms.
func (f *FaultyStore) FailAfterOps(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opsUntilFailure = n
	f.rearmEvery = 0
}

// FailEveryOps arms a recurring power cut: every n-th operation fails with
// ErrPowerCut and the counter re-arms, modelling a device that keeps
// browning out mid-update. Progress persisted between cuts survives, so a
// resumable update still converges. n <= 0 disarms.
func (f *FaultyStore) FailEveryOps(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.opsUntilFailure = -1
		f.rearmEvery = 0
		return
	}
	f.opsUntilFailure = n - 1
	f.rearmEvery = n
}

// WithRandomWriteFailures makes each write fail with probability p,
// deterministically from seed, returning ErrTransientIO.
func (f *FaultyStore) WithRandomWriteFailures(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeFailProb = p
	f.rng = rand.New(rand.NewPCG(uint64(seed), 0))
}

// Capacity implements Store.
func (f *FaultyStore) Capacity() int64 { return f.inner.Capacity() }

// ReadAt implements Store.
func (f *FaultyStore) ReadAt(p []byte, off int64) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.ReadAt(p, off)
}

// WriteAt implements Store.
func (f *FaultyStore) WriteAt(p []byte, off int64) error {
	if err := f.tick(); err != nil {
		return err
	}
	f.mu.Lock()
	flaky := f.rng != nil && f.rng.Float64() < f.writeFailProb
	f.mu.Unlock()
	if flaky {
		return ErrTransientIO
	}
	return f.inner.WriteAt(p, off)
}

// tick advances the deterministic failure counter.
func (f *FaultyStore) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.opsUntilFailure < 0 {
		return nil
	}
	if f.opsUntilFailure == 0 {
		if f.rearmEvery > 0 {
			f.opsUntilFailure = f.rearmEvery - 1
		}
		return f.failNextKind
	}
	f.opsUntilFailure--
	return nil
}
