// Package analysistest runs an analyzer over self-contained testdata
// packages and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the offline
// loader and the interprocedural checker.
//
// A test package lives in testdata/src/<name>/ under the analyzer's
// directory. Each line that should be flagged carries a trailing comment
//
//	x := int(v) // want `narrowing conversion`
//
// with one backquoted or double-quoted regular expression per expected
// diagnostic on that line — a line may carry several, one per expected
// diagnostic. The double-quoted form passes through strconv.Unquote, so
// messages containing regex metacharacters can be escaped literally
// ("\\[\\]byte"). Lines without a want comment must produce no
// diagnostics.
//
// Fixtures may span packages: Run's deps arguments name sibling testdata
// packages registered as import overlays, so the target package can
// import them by bare name and fact-carrying analyzers see a real
// dependency edge. The dependency packages' own want comments are checked
// too — an interprocedural analyzer may legitimately report on either
// side of the edge.
//
// RunWithFixes additionally applies every suggested fix and compares the
// result against <file>.golden, byte for byte.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ipdelta/internal/lint/analysis"
	"ipdelta/internal/lint/checker"
	"ipdelta/internal/lint/loader"
)

var wantRE = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

type expectation struct {
	pos     string // file:line
	re      *regexp.Regexp
	matched bool
}

// Outcome is the raw result of one fixture run: the surviving diagnostics
// and the list of mismatches between them and the fixture's expectations.
// Problems is empty exactly when the run passes.
type Outcome struct {
	Diagnostics []checker.Diagnostic
	Problems    []string
}

// Run applies a to testdata/src/<pkgname> (relative to the test's working
// directory, i.e. the analyzer package), with each deps entry overlaid as
// an importable sibling package, and reports mismatches through t.
func Run(t *testing.T, a *analysis.Analyzer, pkgname string, deps ...string) *Outcome {
	t.Helper()
	out, err := Check(".", a, pkgname, deps...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, p := range out.Problems {
		t.Errorf("%s", p)
	}
	return out
}

// RunWithFixes is Run plus fix verification: every diagnostic's suggested
// fixes are applied (first fix per diagnostic, overlaps skipped) and each
// changed file must equal its checked-in <file>.golden.
func RunWithFixes(t *testing.T, a *analysis.Analyzer, pkgname string, deps ...string) {
	t.Helper()
	out := Run(t, a, pkgname, deps...)
	perFile, _, _ := checker.SelectEdits(out.Diagnostics)
	if len(perFile) == 0 {
		t.Errorf("RunWithFixes: analyzer %s produced no suggested fixes for %s", a.Name, pkgname)
		return
	}
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		fixed, err := checker.ApplyEdits(src, edits)
		if err != nil {
			t.Fatalf("apply fixes to %s: %v", file, err)
		}
		golden, err := os.ReadFile(file + ".golden")
		if err != nil {
			t.Fatalf("missing golden file for %s: %v", file, err)
		}
		if string(fixed) != string(golden) {
			t.Errorf("fixed %s does not match %s.golden:\n-- got --\n%s\n-- want --\n%s",
				filepath.Base(file), filepath.Base(file), fixed, golden)
		}
	}
}

// Check is the assertion core: it loads the fixture packages, runs the
// analyzer through the interprocedural checker (dependency order, facts,
// Requires passes, ignore suppression), and compares diagnostics against
// want comments. Mismatches land in Outcome.Problems rather than a
// *testing.T, so the failure modes themselves are testable.
func Check(dir string, a *analysis.Analyzer, pkgname string, deps ...string) (*Outcome, error) {
	l, err := loader.New(dir)
	if err != nil {
		return nil, err
	}
	names := append(append([]string(nil), deps...), pkgname)
	for _, name := range names {
		l.AddOverlay(name, filepath.Join(dir, "testdata/src", name))
	}
	var pkgs []*loader.Package
	for _, name := range names {
		pkg, err := l.LoadDir(filepath.Join(dir, "testdata/src", name), name)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", name, err)
		}
		pkgs = append(pkgs, pkg)
	}

	var wants []*expectation
	byLine := map[string][]*expectation{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					idx := strings.Index(text, "want ")
					if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
						continue
					}
					p := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
					for _, q := range wantRE.FindAllString(text[idx+len("want "):], -1) {
						pattern := q[1 : len(q)-1]
						if q[0] == '"' {
							unq, err := strconv.Unquote(q)
							if err != nil {
								return nil, fmt.Errorf("%s: bad want string %s: %w", key, q, err)
							}
							pattern = unq
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %s: %w", key, q, err)
						}
						e := &expectation{pos: key, re: re}
						wants = append(wants, e)
						byLine[key] = append(byLine[key], e)
					}
				}
			}
		}
	}

	diags, err := checker.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		return nil, err
	}

	out := &Outcome{Diagnostics: diags}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, e := range byLine[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			out.Problems = append(out.Problems,
				fmt.Sprintf("%s: unexpected diagnostic: %s", d.Pos, d.Message))
		}
	}
	for _, e := range wants {
		if !e.matched {
			out.Problems = append(out.Problems,
				fmt.Sprintf("%s: expected diagnostic matching %q, got none", e.pos, e.re))
		}
	}
	return out, nil
}
