package netupdate

import (
	"context"
	"fmt"
	"net"

	"ipdelta/internal/device"
	"ipdelta/internal/netupdate/mux"
)

// Typed transport errors re-exported from the mux layer so callers can
// classify without importing it.
var (
	// ErrUnknownStream reports a frame addressed to a stream that was
	// never opened — a hostile or desynchronized peer.
	ErrUnknownStream = mux.ErrUnknownStream
	// ErrFrameTooLarge reports a frame length beyond the negotiated
	// bound.
	ErrFrameTooLarge = mux.ErrFrameTooLarge
	// ErrVersionMismatch reports a peer that does not speak protocol v2.
	ErrVersionMismatch = mux.ErrVersionMismatch
)

// ClientConn is one protocol-v2 connection to an update server,
// multiplexing many concurrent update sessions as streams. It is safe
// for concurrent use; a fleet shares few ClientConns instead of dialing
// one TCP connection per device.
type ClientConn struct {
	tr   *mux.Transport
	conn net.Conn
	cfg  Config
}

// Dial connects to an update server at addr over TCP and negotiates
// protocol v2. Transport knobs (WithStreamLimit, WithInitialWindow,
// WithMaxFrame) and session defaults (WithMessageTimeout, ...) come from
// the shared Config options. Dialing a v1-only server fails with
// ErrVersionMismatch.
func Dial(ctx context.Context, addr string, opts ...Option) (*ClientConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	cc, err := NewClientConn(conn, opts...)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return cc, nil
}

// NewClientConn negotiates protocol v2 on an already established
// connection (any net.Conn: TCP, a pipe, a fault injector).
func NewClientConn(conn net.Conn, opts ...Option) (*ClientConn, error) {
	var cfg Config
	cfg.apply(opts)
	tr, err := mux.Client(conn, cfg.muxSettings())
	if err != nil {
		return nil, fmt.Errorf("netupdate: v2 handshake: %w", err)
	}
	return &ClientConn{tr: tr, conn: conn, cfg: cfg}, nil
}

// OpenStream opens one multiplexed stream, blocking while the
// connection is at its negotiated stream limit. The stream is a
// net.Conn; run a session over it with Run, or hand it to anything that
// speaks the session protocol.
func (cc *ClientConn) OpenStream(ctx context.Context) (*mux.Stream, error) {
	return cc.tr.OpenContext(ctx)
}

// Update runs one update session for dev on a fresh stream, applying the
// connection's session defaults plus any per-call options.
func (cc *ClientConn) Update(ctx context.Context, dev *device.Device, opts ...Option) (Result, error) {
	st, err := cc.OpenStream(ctx)
	if err != nil {
		return Result{}, err
	}
	defer st.Close()
	merged := append([]Option{WithMessageTimeout(cc.cfg.MessageTimeout), WithRequestFull(cc.cfg.RequestFull)}, opts...)
	return Run(ctx, st, dev, merged...)
}

// Dialer returns a DialFunc for the retry Client: each session attempt
// opens a fresh stream on this connection instead of a fresh TCP
// connection.
func (cc *ClientConn) Dialer() DialFunc {
	return func(ctx context.Context) (net.Conn, error) {
		return cc.OpenStream(ctx)
	}
}

// NumStreams reports live streams on the connection.
func (cc *ClientConn) NumStreams() int { return cc.tr.NumStreams() }

// Err returns the connection's terminal error, or nil while healthy.
func (cc *ClientConn) Err() error { return cc.tr.Err() }

// Close tears the connection down; every open stream fails.
func (cc *ClientConn) Close() error { return cc.tr.Close() }
