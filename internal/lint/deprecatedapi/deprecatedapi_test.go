package deprecatedapi_test

import (
	"testing"

	"ipdelta/internal/lint/analysistest"
	"ipdelta/internal/lint/deprecatedapi"
)

func TestDeprecatedAPI(t *testing.T) {
	// RunWithFixes also applies the shim → options rewrites and compares
	// the result to ipdelta.go.golden.
	analysistest.RunWithFixes(t, deprecatedapi.Analyzer, "ipdelta")
}
