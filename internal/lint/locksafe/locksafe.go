// Package locksafe cross-checks mutex discipline: for every struct that
// embeds a sync.Mutex or sync.RWMutex, a field written under the lock in
// one method must not be written without it in another. This is the bug
// class `go test -race` only catches when a test happens to race the two
// paths; the analyzer catches it from the method set alone.
//
// Classification is intentionally lexical: a write in a method counts as
// locked when a Lock() call on the receiver's mutex appears earlier in the
// same method body (deferred Unlock is the dominant idiom in this
// codebase, so no Unlock tracking is attempted). RLock does not license a
// write. Only writes through the receiver in methods are considered —
// constructors building a not-yet-shared value are exempt by construction.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"ipdelta/internal/lint/analysis"
)

// Analyzer is the locksafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flags struct fields written both under and outside the struct's " +
		"mutex across its method set",
	Run: run,
}

type write struct {
	pos    token.Pos
	method string
	locked bool
}

func run(pass *analysis.Pass) (any, error) {
	// structType -> mutex field names.
	mutexFields := map[*types.Named]map[string]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutex(f.Type()) {
				if mutexFields[named] == nil {
					mutexFields[named] = map[string]bool{}
				}
				mutexFields[named][f.Name()] = true
			}
		}
	}
	if len(mutexFields) == 0 {
		return nil, nil
	}

	// (structType, field) -> writes across the whole method set.
	writes := map[*types.Named]map[string][]write{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			var recvObj types.Object
			if names := fn.Recv.List[0].Names; len(names) > 0 {
				recvObj = pass.ObjectOf(names[0])
			}
			if recvObj == nil {
				continue
			}
			named := namedOf(recvObj.Type())
			if named == nil || mutexFields[named] == nil {
				continue
			}
			collectWrites(pass, fn, recvObj, named, mutexFields[named], writes)
		}
	}

	for named, byField := range writes {
		for field, ws := range byField {
			anyLocked := false
			for _, w := range ws {
				if w.locked {
					anyLocked = true
					break
				}
			}
			if !anyLocked {
				continue // field is not mutex-protected anywhere
			}
			for _, w := range ws {
				if !w.locked {
					pass.Reportf(w.pos,
						"%s.%s is written in %s without the mutex that guards its other writes",
						named.Obj().Name(), field, w.method)
				}
			}
		}
	}
	return nil, nil
}

func isMutex(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// collectWrites records every field write through recvObj in fn,
// classified by whether a Lock() on one of the struct's mutex fields
// precedes it lexically.
func collectWrites(pass *analysis.Pass, fn *ast.FuncDecl, recvObj types.Object,
	named *types.Named, mutexes map[string]bool, writes map[*types.Named]map[string][]write) {

	// Positions of recv.<mutex>.Lock() calls.
	var lockPositions []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		// recv.mu.Lock(): the lock receiver is itself a selector on recv.
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(inner.X).(*ast.Ident); ok &&
				pass.ObjectOf(id) == recvObj && mutexes[inner.Sel.Name] {
				lockPositions = append(lockPositions, call.Pos())
			}
		}
		return true
	})
	lockedAt := func(pos token.Pos) bool {
		for _, lp := range lockPositions {
			if lp < pos {
				return true
			}
		}
		return false
	}

	record := func(field string, pos token.Pos) {
		if mutexes[field] {
			return // the mutex itself
		}
		if writes[named] == nil {
			writes[named] = map[string][]write{}
		}
		writes[named][field] = append(writes[named][field],
			write{pos: pos, method: fn.Name.Name, locked: lockedAt(pos)})
	}
	// fieldOf returns the receiver field name written when lhs is
	// recv.f, recv.f[i], or recv.f[i:j].
	var fieldOf func(e ast.Expr) (string, bool)
	fieldOf = func(e ast.Expr) (string, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && pass.ObjectOf(id) == recvObj {
				return e.Sel.Name, true
			}
		case *ast.IndexExpr:
			return fieldOf(e.X)
		case *ast.SliceExpr:
			return fieldOf(e.X)
		}
		return "", false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if f, ok := fieldOf(lhs); ok {
					record(f, s.Pos())
				}
			}
		case *ast.IncDecStmt:
			if f, ok := fieldOf(s.X); ok {
				record(f, s.Pos())
			}
		}
		return true
	})
}
