package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"ipdelta/internal/delta"
)

// legacy codeword opcodes. The legacy formats mimic the byte-granular
// codewords of the classic differencing literature: a single-byte add
// length, and copy codewords sized to the smallest offset/length fields
// that fit.
const (
	legacyOpAdd       = 0xA1 // len uint8, data
	legacyOpCopyShort = 0xC1 // f uint16, l uint8
	legacyOpCopyMed   = 0xC2 // f uint32, l uint16
	legacyOpCopyLong  = 0xC3 // f uint64, l uint32
)

// legacyMaxAdd is the largest add a single legacy codeword can carry;
// longer adds are split, which is precisely the inefficiency §7 discusses.
const legacyMaxAdd = 255

// Encode writes d to w in the given format and returns the number of bytes
// written, including header and trailing CRC32. Ordered formats require the
// commands to appear in contiguous write order ([0, VersionLen) with no
// gaps); ErrNotOrdered is returned otherwise.
func Encode(w io.Writer, d *delta.Delta, f Format) (int64, error) {
	e := &encoder{w: newCRCWriter(w)}
	err := e.encode(d, f)
	if m := observer.Load(); m != nil {
		if err != nil {
			m.encodeErrors.Inc()
		} else {
			m.encodes.Inc()
			m.encodeBytes.Add(e.w.n)
			m.encodeCommands.Add(int64(len(d.Commands)))
		}
	}
	return e.w.n, err
}

// EncodedSize returns the exact encoded size of d in format f without
// retaining the output.
func EncodedSize(d *delta.Delta, f Format) (int64, error) {
	return Encode(io.Discard, d, f)
}

// crcWriter counts bytes and maintains the running CRC32 of everything
// written through it.
type crcWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
	n   int64
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc.Write(p[:n])
	c.n += int64(n)
	return n, err
}

func (c *crcWriter) writeByte(b byte) error {
	_, err := c.Write([]byte{b})
	return err
}

func (c *crcWriter) writeUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := c.Write(buf[:n])
	return err
}

func (c *crcWriter) writeVarint(v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := c.Write(buf[:n])
	return err
}

func (c *crcWriter) writeUint(v uint64, width int) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	_, err := c.Write(buf[8-width:])
	return err
}

// finish appends the CRC (not hashed, of course) and flushes.
func (c *crcWriter) finish() error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], c.crc.Sum32())
	n, err := c.w.Write(buf[:])
	c.n += int64(n)
	if err != nil {
		return err
	}
	return c.w.Flush()
}

type encoder struct {
	w *crcWriter
}

func (e *encoder) encode(d *delta.Delta, f Format) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	cmds, err := prepareCommands(d, f)
	if err != nil {
		return err
	}
	if err := e.header(d, f, len(cmds)); err != nil {
		return err
	}
	if f == FormatScratch {
		if err := e.w.writeUvarint(uint64(d.ScratchRequired())); err != nil {
			return err
		}
	}
	if f == FormatCompact {
		if err := e.compactBody(cmds); err != nil {
			return err
		}
	} else {
		for _, c := range cmds {
			if err := e.command(c, f); err != nil {
				return err
			}
		}
	}
	return e.w.finish()
}

// prepareCommands validates ordering constraints and splits adds that the
// legacy codewords cannot carry whole.
func prepareCommands(d *delta.Delta, f Format) ([]delta.Command, error) {
	if f == FormatOrdered || f == FormatLegacyOrdered {
		var next int64
		for _, c := range d.Commands {
			if c.To != next {
				return nil, ErrNotOrdered
			}
			next += c.Length
		}
		if next != d.VersionLen {
			return nil, ErrNotOrdered
		}
	}
	if f != FormatScratch {
		for _, c := range d.Commands {
			if c.Op == delta.OpStash || c.Op == delta.OpUnstash {
				return nil, fmt.Errorf("codec: %v commands need the scratch format", c.Op)
			}
		}
	}
	if f != FormatLegacyOrdered && f != FormatLegacyOffsets {
		return d.Commands, nil
	}
	out := make([]delta.Command, 0, len(d.Commands))
	for _, c := range d.Commands {
		if c.Op != delta.OpAdd || c.Length <= legacyMaxAdd {
			out = append(out, c)
			continue
		}
		for off := int64(0); off < c.Length; off += legacyMaxAdd {
			n := c.Length - off
			if n > legacyMaxAdd {
				n = legacyMaxAdd
			}
			out = append(out, delta.NewAdd(c.To+off, c.Data[off:off+n]))
		}
	}
	return out, nil
}

func (e *encoder) header(d *delta.Delta, f Format, ncmds int) error {
	if _, err := e.w.Write(magic[:]); err != nil {
		return err
	}
	if err := e.w.writeByte(byte(f)); err != nil {
		return err
	}
	if err := e.w.writeUvarint(uint64(d.RefLen)); err != nil {
		return err
	}
	if err := e.w.writeUvarint(uint64(d.VersionLen)); err != nil {
		return err
	}
	return e.w.writeUvarint(uint64(ncmds))
}

func (e *encoder) command(c delta.Command, f Format) error {
	switch f {
	case FormatOrdered, FormatOffsets:
		return e.varintCommand(c, f == FormatOffsets)
	case FormatLegacyOrdered, FormatLegacyOffsets:
		return e.legacyCommand(c, f == FormatLegacyOffsets)
	case FormatScratch:
		return e.scratchCommand(c)
	default:
		return ErrBadFormat
	}
}

// scratchCommand encodes one command of the scratch format: opcode, then
// ⟨f,t,l⟩ for copies, ⟨t,l⟩+data for adds, ⟨f,l⟩ for stash, ⟨t,l⟩ for
// unstash — all varints.
func (e *encoder) scratchCommand(c delta.Command) error {
	if err := e.w.writeByte(byte(c.Op)); err != nil {
		return err
	}
	switch c.Op {
	case delta.OpCopy:
		if err := e.w.writeUvarint(uint64(c.From)); err != nil {
			return err
		}
		if err := e.w.writeUvarint(uint64(c.To)); err != nil {
			return err
		}
		return e.w.writeUvarint(uint64(c.Length))
	case delta.OpAdd:
		if err := e.w.writeUvarint(uint64(c.To)); err != nil {
			return err
		}
		if err := e.w.writeUvarint(uint64(c.Length)); err != nil {
			return err
		}
		_, err := e.w.Write(c.Data)
		return err
	case delta.OpStash:
		if err := e.w.writeUvarint(uint64(c.From)); err != nil {
			return err
		}
		return e.w.writeUvarint(uint64(c.Length))
	case delta.OpUnstash:
		if err := e.w.writeUvarint(uint64(c.To)); err != nil {
			return err
		}
		return e.w.writeUvarint(uint64(c.Length))
	default:
		return fmt.Errorf("scratch encode: %v", delta.ErrBadOp)
	}
}

// varintCommand encodes one command of the ordered/offsets formats:
// opcode byte, then ⟨l⟩ / ⟨t,l⟩ for adds and ⟨f,l⟩ / ⟨f,t,l⟩ for copies.
func (e *encoder) varintCommand(c delta.Command, offsets bool) error {
	if err := e.w.writeByte(byte(c.Op)); err != nil {
		return err
	}
	if c.Op == delta.OpCopy {
		if err := e.w.writeUvarint(uint64(c.From)); err != nil {
			return err
		}
	}
	if offsets {
		if err := e.w.writeUvarint(uint64(c.To)); err != nil {
			return err
		}
	}
	if err := e.w.writeUvarint(uint64(c.Length)); err != nil {
		return err
	}
	if c.Op == delta.OpAdd {
		_, err := e.w.Write(c.Data)
		return err
	}
	return nil
}

// legacyCommand encodes one classic codeword. In the offsets variant every
// codeword carries a fixed 8-byte write offset, reproducing how expensive
// the many short legacy adds become once in-place reconstruction forces
// explicit offsets (§7).
func (e *encoder) legacyCommand(c delta.Command, offsets bool) error {
	writeOffset := func() error {
		if !offsets {
			return nil
		}
		return e.w.writeUint(uint64(c.To), 8)
	}
	switch c.Op {
	case delta.OpAdd:
		// Long adds are split into <=255-byte codewords before reaching
		// here; refuse rather than truncate if that invariant breaks.
		if c.Length > legacyMaxAdd {
			return fmt.Errorf("codec: legacy add length %d exceeds %d", c.Length, legacyMaxAdd)
		}
		if err := e.w.writeByte(legacyOpAdd); err != nil {
			return err
		}
		if err := writeOffset(); err != nil {
			return err
		}
		if err := e.w.writeByte(byte(c.Length)); err != nil {
			return err
		}
		_, err := e.w.Write(c.Data)
		return err
	case delta.OpCopy:
		switch {
		case c.From <= 0xFFFF && c.Length <= 0xFF:
			if err := e.w.writeByte(legacyOpCopyShort); err != nil {
				return err
			}
			if err := writeOffset(); err != nil {
				return err
			}
			if err := e.w.writeUint(uint64(c.From), 2); err != nil {
				return err
			}
			return e.w.writeUint(uint64(c.Length), 1)
		case c.From <= 0xFFFFFFFF && c.Length <= 0xFFFF:
			if err := e.w.writeByte(legacyOpCopyMed); err != nil {
				return err
			}
			if err := writeOffset(); err != nil {
				return err
			}
			if err := e.w.writeUint(uint64(c.From), 4); err != nil {
				return err
			}
			return e.w.writeUint(uint64(c.Length), 2)
		default:
			if err := e.w.writeByte(legacyOpCopyLong); err != nil {
				return err
			}
			if err := writeOffset(); err != nil {
				return err
			}
			if err := e.w.writeUint(uint64(c.From), 8); err != nil {
				return err
			}
			return e.w.writeUint(uint64(c.Length), 4)
		}
	default:
		return fmt.Errorf("legacy encode: %v", delta.ErrBadOp)
	}
}

// compactBody encodes the redesigned in-place format: a copy section in
// application order with the from-offset expressed as a displacement from
// the write offset, then an add section whose write offsets are
// delta-encoded from the end of the previous add.
func (e *encoder) compactBody(cmds []delta.Command) error {
	var copies, adds []delta.Command
	for _, c := range cmds {
		if c.Op == delta.OpCopy {
			copies = append(copies, c)
		} else {
			adds = append(adds, c)
		}
	}
	if err := e.w.writeUvarint(uint64(len(copies))); err != nil {
		return err
	}
	for _, c := range copies {
		if err := e.w.writeUvarint(uint64(c.To)); err != nil {
			return err
		}
		if err := e.w.writeUvarint(uint64(c.Length)); err != nil {
			return err
		}
		if err := e.w.writeVarint(c.From - c.To); err != nil {
			return err
		}
	}
	if err := e.w.writeUvarint(uint64(len(adds))); err != nil {
		return err
	}
	prevEnd := int64(0)
	for _, c := range adds {
		if err := e.w.writeVarint(c.To - prevEnd); err != nil {
			return err
		}
		if err := e.w.writeUvarint(uint64(c.Length)); err != nil {
			return err
		}
		if _, err := e.w.Write(c.Data); err != nil {
			return err
		}
		prevEnd = c.To + c.Length
	}
	return nil
}
