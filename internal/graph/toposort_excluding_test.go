package graph

import (
	"math/rand"
	"testing"
)

// checkTopoOrder fails unless order is a permutation of the unremoved
// vertices that respects every edge of the restricted graph.
func checkTopoOrder(t *testing.T, g *Digraph, removed []bool, order []int) {
	t.Helper()
	pos := make(map[int]int, len(order))
	for i, v := range order {
		if removed != nil && removed[v] {
			t.Fatalf("order %v contains removed vertex %d", order, v)
		}
		if _, dup := pos[v]; dup {
			t.Fatalf("order %v lists vertex %d twice", order, v)
		}
		pos[v] = i
	}
	want := 0
	for v := 0; v < g.NumVertices(); v++ {
		if removed == nil || !removed[v] {
			want++
		}
	}
	if len(order) != want {
		t.Fatalf("order has %d vertices, want %d", len(order), want)
	}
	for u := 0; u < g.NumVertices(); u++ {
		if removed != nil && removed[u] {
			continue
		}
		for _, w := range g.Succ(u) {
			v := int(w)
			if removed != nil && removed[v] {
				continue
			}
			if pos[u] >= pos[v] {
				t.Fatalf("edge %d->%d violated by order %v", u, v, order)
			}
		}
	}
}

func TestTopoSortExcludingEmptyExclusion(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	// nil and all-false exclusions are both "exclude nothing".
	for _, removed := range [][]bool{nil, make([]bool, 4)} {
		order, ok := TopoSortExcluding(g, removed)
		if !ok {
			t.Fatalf("DAG with removed=%v reported cyclic", removed)
		}
		checkTopoOrder(t, g, removed, order)
	}
}

func TestTopoSortExcludingCycleThroughExcludedVertex(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 is a cycle; excluding vertex 1 breaks it, so the
	// restricted graph must sort.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)

	if _, ok := TopoSortExcluding(g, nil); ok {
		t.Fatal("cyclic graph sorted with no exclusions")
	}
	removed := []bool{false, true, false, false}
	order, ok := TopoSortExcluding(g, removed)
	if !ok {
		t.Fatal("cycle through excluded vertex still reported")
	}
	checkTopoOrder(t, g, removed, order)
}

func TestTopoSortExcludingCycleOutsideExclusion(t *testing.T) {
	// Excluding vertex 3 does not touch the 0-1-2 cycle: still cyclic.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 0)
	order, ok := TopoSortExcluding(g, []bool{false, false, false, true})
	if ok {
		t.Fatalf("cycle survived the exclusion but sort returned %v", order)
	}
	if order != nil {
		t.Fatalf("failed sort should return nil order, got %v", order)
	}
}

func TestTopoSortExcludingAllExcluded(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	order, ok := TopoSortExcluding(g, []bool{true, true, true})
	if !ok || len(order) != 0 {
		t.Fatalf("fully excluded graph: order=%v ok=%v, want empty order and true", order, ok)
	}
}

func TestTopoSortExcludingEmptyGraph(t *testing.T) {
	order, ok := TopoSortExcluding(New(0), nil)
	if !ok || len(order) != 0 {
		t.Fatalf("empty graph: order=%v ok=%v", order, ok)
	}
}

// TestTopoSortExcludingAgainstIsAcyclic cross-checks the two traversals on
// random graphs with random exclusion sets: both must agree on cyclicity,
// and every successful order must be a valid topological order.
func TestTopoSortExcludingAgainstIsAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		g := New(n)
		for e := 0; e < rng.Intn(3*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		removed := make([]bool, n)
		for v := range removed {
			removed[v] = rng.Intn(3) == 0
		}
		order, ok := TopoSortExcluding(g, removed)
		if want := g.IsAcyclicWithout(removed); ok != want {
			t.Fatalf("trial %d: TopoSortExcluding ok=%v, IsAcyclicWithout=%v", trial, ok, want)
		}
		if ok {
			checkTopoOrder(t, g, removed, order)
		}
	}
}
