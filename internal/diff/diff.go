// Package diff implements binary differencing algorithms that produce the
// delta files consumed by the in-place converter.
//
// The principal algorithms mirror the lineage the paper builds on:
//
//   - Linear: a linear-time, constant-space, one-pass differencer in the
//     family of Burns & Long (IPCCC '97) and Ajtai et al. — the algorithm
//     the paper used to generate its input deltas. Reference seeds are
//     fingerprinted with a Karp–Rabin rolling hash into a fixed-size table;
//     the version is scanned once, extending verified seed matches forward
//     and backward.
//   - Parallel: the same algorithm sharded across worker goroutines — a
//     lock-free concurrent build of the fingerprint index, segmented
//     version scans into per-worker arenas, and a seam-merge stitch —
//     for multi-core throughput at near-identical compression.
//   - Greedy: a byte-granular greedy matcher with chained hash buckets in
//     the style of Reichenberger, kept as the classical baseline. It finds
//     longer matches at higher cost (quadratic in the worst case).
//
// Both emit commands in contiguous write order covering the version file
// exactly, which Validate enforces and the codec's ordered formats require.
package diff

import (
	"fmt"

	"ipdelta/internal/delta"
)

// Algorithm is a differencing algorithm turning (reference, version) pairs
// into delta files.
type Algorithm interface {
	// Name identifies the algorithm in reports and CLI flags.
	Name() string
	// Diff computes a delta that materializes version from ref.
	Diff(ref, version []byte) (*delta.Delta, error)
}

// ByName resolves an algorithm identifier as used by CLI flags.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "auto":
		return NewAuto(), nil
	case "linear":
		return NewLinear(), nil
	case "parallel":
		return NewParallel(0), nil
	case "greedy":
		return NewGreedy(), nil
	case "blockwise":
		return NewBlockwise(), nil
	case "suffix":
		return NewSuffix(), nil
	case "correcting":
		return NewCorrecting(nil), nil
	case "recipe":
		return NewRecipeAlgo(), nil
	case "null":
		return Null{}, nil
	default:
		return nil, fmt.Errorf("unknown differencing algorithm %q", name)
	}
}

// Null is the no-compression baseline: the whole version as one add. It
// anchors transmission-time comparisons (sending the raw new version).
type Null struct{}

// Name implements Algorithm.
func (Null) Name() string { return "null" }

// Diff implements Algorithm.
func (Null) Diff(ref, version []byte) (*delta.Delta, error) {
	d := &delta.Delta{RefLen: int64(len(ref)), VersionLen: int64(len(version))}
	if len(version) > 0 {
		data := make([]byte, len(version))
		copy(data, version)
		d.Commands = []delta.Command{delta.NewAdd(0, data)}
	}
	return d, nil
}

// emitter accumulates commands in write order, buffering literal bytes and
// flushing them as a single add before each copy.
//
// Literal bytes from every add are appended to one arena (lits); until
// finish, an add command carries the run's arena offset in its From field
// and a nil Data. finish resolves the offsets into sub-slices of a single
// data allocation — one allocation for all literal data, where the old
// emitter allocated per add — and an emitter can be reset and reused, so a
// pooled differencer emits with no steady-state allocations at all.
type emitter struct {
	cmds     []delta.Command
	lits     []byte // literal arena: every add's data, concatenated
	litStart int64  // arena offset where the pending run begins
	at       int64  // write offset of the next emitted byte
}

// reset empties the emitter for a fresh diff, retaining backing capacity.
//
//ipvet:allocfree
func (e *emitter) reset() {
	e.cmds = e.cmds[:0]
	e.lits = e.lits[:0]
	e.litStart = 0
	e.at = 0
}

// literal appends version bytes that found no match.
//
//ipvet:allocfree
func (e *emitter) literal(b []byte) {
	e.lits = append(e.lits, b...)
}

// flushAdd records the pending literal run as one add command. The command
// holds the run's arena offset in From until finish materializes it.
//
//ipvet:allocfree
func (e *emitter) flushAdd() {
	run := int64(len(e.lits)) - e.litStart
	if run == 0 {
		return
	}
	e.cmds = append(e.cmds, delta.Command{Op: delta.OpAdd, From: e.litStart, To: e.at, Length: run})
	e.at += run
	e.litStart = int64(len(e.lits))
}

// copyCmd emits a copy of length l from reference offset from.
//
//ipvet:allocfree
func (e *emitter) copyCmd(from int64, l int64) {
	e.flushAdd()
	e.cmds = append(e.cmds, delta.NewCopy(from, e.at, l))
	e.at += l
}

// finish flushes trailing literals and returns a detached command list:
// the commands and one shared data arena are freshly allocated, so the
// result stays valid after the emitter is reset or pooled.
func (e *emitter) finish() []delta.Command {
	e.flushAdd()
	cmds := make([]delta.Command, len(e.cmds))
	copy(cmds, e.cmds)
	arena := make([]byte, len(e.lits))
	copy(arena, e.lits)
	resolveAdds(cmds, arena)
	return cmds
}

// finishReuse flushes trailing literals and returns the emitter's own
// command list, with add data aliasing the emitter's literal arena. The
// result is valid only until the emitter's next reset.
//
//ipvet:allocfree
func (e *emitter) finishReuse() []delta.Command {
	e.flushAdd()
	resolveAdds(e.cmds, e.lits)
	return e.cmds
}

// resolveAdds rewrites each add's stashed arena offset (in From) into a
// capacity-bounded sub-slice of the arena.
//
//ipvet:allocfree
func resolveAdds(cmds []delta.Command, arena []byte) {
	for k := range cmds {
		if cmds[k].Op != delta.OpAdd {
			continue
		}
		off, end := cmds[k].From, cmds[k].From+cmds[k].Length
		cmds[k].From = 0
		cmds[k].Data = arena[off:end:end]
	}
}

// matchForward returns the length of the common prefix of ref[r:] and
// version[v:].
//
//ipvet:allocfree
func matchForward(ref, version []byte, r, v int) int {
	n := 0
	for r+n < len(ref) && v+n < len(version) && ref[r+n] == version[v+n] {
		n++
	}
	return n
}

// matchForwardN is matchForward capped at max bytes, for extensions that
// must not run past a neighbouring command's range.
//
//ipvet:allocfree
func matchForwardN(ref, version []byte, r, v, max int) int {
	n := 0
	for n < max && r+n < len(ref) && v+n < len(version) && ref[r+n] == version[v+n] {
		n++
	}
	return n
}

// matchBackward returns how many bytes before ref[r] and version[v] agree,
// looking back at most maxBack bytes.
//
//ipvet:allocfree
func matchBackward(ref, version []byte, r, v, maxBack int) int {
	n := 0
	for n < maxBack && r-n-1 >= 0 && v-n-1 >= 0 && ref[r-n-1] == version[v-n-1] {
		n++
	}
	return n
}
