// Software distribution study: sweep a corpus of synthetic software
// version pairs (text, binary, firmware at several change rates), measure
// how much compression in-place reconstructibility costs under each
// cycle-breaking policy, and print a per-profile breakdown — a miniature of
// the paper's §7 evaluation run from the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"ipdelta"
	"ipdelta/internal/corpus"
	"ipdelta/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profiles := []corpus.Profile{corpus.Text, corpus.Binary, corpus.Firmware}
	rates := []float64{0.02, 0.10, 0.25}
	const size = 128 << 10

	table := stats.Table{
		Title: "in-place delta compression across software profiles (128KiB images)",
		Headers: []string{
			"profile", "change", "delta", "in-place Δ (LM)", "in-place Δ (CT)",
			"cycles", "copies→adds (LM)",
		},
	}
	var totalVersion, totalLM int64
	for _, profile := range profiles {
		for _, rate := range rates {
			pair := corpus.Generate(corpus.PairSpec{
				Profile:    profile,
				Size:       size,
				ChangeRate: rate,
				Seed:       int64(size) + int64(rate*1000),
			})
			d, err := ipdelta.Diff(pair.Ref, pair.Version)
			if err != nil {
				return err
			}
			plain, err := ipdelta.EncodedSize(d, ipdelta.FormatOrdered)
			if err != nil {
				return err
			}
			lm, stLM, err := ipdelta.ConvertInPlace(d, pair.Ref, ipdelta.WithPolicy(ipdelta.LocallyMinimum))
			if err != nil {
				return err
			}
			sizeLM, err := ipdelta.EncodedSize(lm, ipdelta.FormatCompact)
			if err != nil {
				return err
			}
			ct, _, err := ipdelta.ConvertInPlace(d, pair.Ref, ipdelta.WithPolicy(ipdelta.ConstantTime))
			if err != nil {
				return err
			}
			sizeCT, err := ipdelta.EncodedSize(ct, ipdelta.FormatCompact)
			if err != nil {
				return err
			}
			vlen := int64(len(pair.Version))
			totalVersion += vlen
			totalLM += sizeLM
			table.AddRow(
				profile.String(),
				stats.Pct(rate),
				stats.Pct(float64(plain)/float64(vlen)),
				stats.Pct(float64(sizeLM)/float64(vlen)),
				stats.Pct(float64(sizeCT)/float64(vlen)),
				fmt.Sprintf("%d", stLM.CyclesBroken),
				fmt.Sprintf("%d (%s)", stLM.ConvertedCopies, stats.Bytes(stLM.ConvertedBytes)),
			)
		}
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\noverall: in-place deltas total %s for %s of new software (%.1fx reduction)\n",
		stats.Bytes(totalLM), stats.Bytes(totalVersion), float64(totalVersion)/float64(totalLM))
	return nil
}
