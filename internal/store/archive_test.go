package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"

	"ipdelta/internal/archive"
	"ipdelta/internal/obs"
)

// buildTierStore creates a store over an erasure-coded archive tier with
// count small, related versions.
func buildTierStore(t testing.TB, k, m, count, segSize int, opts ...Option) (*Store, []*archive.Node, [][]byte) {
	t.Helper()
	a, nodes, err := archive.NewWithNodes(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(uint64(count)*31+uint64(k)*7+uint64(m), 9))
	base := make([]byte, 512+rng.IntN(512))
	for i := range base {
		base[i] = byte(rng.IntN(256))
	}
	opts = append([]Option{WithArchive(a), WithArchiveSegment(segSize)}, opts...)
	s := New(base, opts...)
	versions := [][]byte{append([]byte(nil), base...)}
	cur := base
	for v := 1; v < count; v++ {
		next := append([]byte(nil), cur...)
		for e := 0; e < 8; e++ {
			next[rng.IntN(len(next))] ^= byte(1 + rng.IntN(255))
		}
		if rng.IntN(3) == 0 {
			extra := make([]byte, rng.IntN(64))
			for i := range extra {
				extra[i] = byte(rng.IntN(256))
			}
			next = append(next, extra...)
		}
		if _, err := s.AppendVersion(next); err != nil {
			t.Fatal(err)
		}
		versions = append(versions, next)
		cur = next
	}
	return s, nodes, versions
}

func checkAllVersions(t *testing.T, s *Store, versions [][]byte, label string) {
	t.Helper()
	for i, want := range versions {
		got, err := s.Version(i)
		if err != nil {
			t.Fatalf("%s: Version(%d): %v", label, i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: Version(%d) differs", label, i)
		}
	}
}

func TestStoreArchiveTierRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	s, _, versions := buildTierStore(t, 3, 2, 20, 4, WithObserver(reg))
	upTo, err := s.Archive(len(versions) - 1)
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 19 {
		t.Fatalf("archived up to %d, want 19", upTo)
	}
	if got := s.ArchivedUpTo(); got != upTo {
		t.Fatalf("ArchivedUpTo = %d", got)
	}
	if got := len(s.ArchiveTier().Stripes()); got != 5 {
		t.Fatalf("%d stripes, want 5", got)
	}
	checkAllVersions(t, s, versions, "healthy tier")
	snap := reg.Snapshot()
	if snap.Counter("ipdelta_store_archive_reads_total") == 0 {
		t.Error("archived reads did not go through the tier")
	}
	if snap.Counter("ipdelta_store_archive_segments_total") != 5 {
		t.Errorf("segments counter = %d", snap.Counter("ipdelta_store_archive_segments_total"))
	}
	if snap.Counter("ipdelta_store_archive_fallbacks_total") != 0 {
		t.Error("healthy tier fell back to the chain")
	}
}

func TestStoreArchiveRoundsDownToSegments(t *testing.T) {
	s, _, versions := buildTierStore(t, 2, 1, 11, 4)
	upTo, err := s.Archive(10)
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 7 {
		t.Fatalf("archived up to %d, want 7 (two full segments of 4)", upTo)
	}
	checkAllVersions(t, s, versions, "partial archive")
	// Not even one full segment: boundary stays.
	s2, _, _ := buildTierStore(t, 2, 1, 3, 4)
	if upTo, err := s2.Archive(2); err != nil || upTo != -1 {
		t.Fatalf("short chain archived to %d (%v), want -1", upTo, err)
	}
}

func TestStoreArchiveErrors(t *testing.T) {
	s := New([]byte("no tier"))
	if _, err := s.Archive(0); !errors.Is(err, ErrNoArchive) {
		t.Fatalf("want ErrNoArchive, got %v", err)
	}
	st, _, _ := buildTierStore(t, 2, 1, 5, 2)
	if _, err := st.Archive(5); !errors.Is(err, ErrNoSuchVersion) {
		t.Fatalf("want ErrNoSuchVersion, got %v", err)
	}
	if _, err := st.Archive(-1); !errors.Is(err, ErrNoSuchVersion) {
		t.Fatalf("want ErrNoSuchVersion, got %v", err)
	}
}

func TestStoreArchiveIncremental(t *testing.T) {
	s, _, versions := buildTierStore(t, 2, 2, 8, 4)
	if _, err := s.Archive(7); err != nil {
		t.Fatal(err)
	}
	// Growing the history archives only the new segments.
	cur := versions[len(versions)-1]
	for v := 0; v < 8; v++ {
		next := append([]byte(nil), cur...)
		next[v] ^= 0xFF
		if _, err := s.AppendVersion(next); err != nil {
			t.Fatal(err)
		}
		versions = append(versions, next)
		cur = next
	}
	upTo, err := s.Archive(15)
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 15 {
		t.Fatalf("archived up to %d, want 15", upTo)
	}
	if got := len(s.ArchiveTier().Stripes()); got != 4 {
		t.Fatalf("%d stripes, want 4", got)
	}
	checkAllVersions(t, s, versions, "incremental")
	// Re-archiving the same boundary is a no-op.
	if upTo, err := s.Archive(15); err != nil || upTo != 15 {
		t.Fatalf("idempotent archive: %d, %v", upTo, err)
	}
}

// TestStoreArchiveDegradedGrid is the store-level acceptance property:
// across the (k, m) grid with k+m <= 16, with up to m seeded node kills
// the archival tier still serves every archived version byte-for-byte.
func TestStoreArchiveDegradedGrid(t *testing.T) {
	rng := rand.New(rand.NewPCG(20260808, 10))
	for k := 1; k <= 15; k++ {
		for m := 1; k+m <= 16; m++ {
			reg := obs.NewRegistry()
			s, nodes, versions := buildTierStore(t, k, m, 6, 3, WithObserver(reg))
			if _, err := s.Archive(5); err != nil {
				t.Fatalf("k=%d m=%d: %v", k, m, err)
			}
			f := 1 + rng.IntN(m)
			for _, j := range rng.Perm(k + m)[:f] {
				nodes[j].Kill()
			}
			checkAllVersions(t, s, versions, fmt.Sprintf("k=%d m=%d f=%d", k, m, f))
			if reg.Snapshot().Counter("ipdelta_store_archive_fallbacks_total") != 0 {
				t.Fatalf("k=%d m=%d f=%d: degraded read fell back to the chain", k, m, f)
			}
		}
	}
}

func TestStoreArchiveFallbackBeyondParity(t *testing.T) {
	reg := obs.NewRegistry()
	s, nodes, versions := buildTierStore(t, 3, 2, 6, 3, WithObserver(reg))
	if _, err := s.Archive(5); err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 2, 4} { // m+1 = 3 dead nodes
		nodes[j].Kill()
	}
	// The tier is unrecoverable, but the store retains the chain: reads
	// stay correct and the fallback is counted.
	checkAllVersions(t, s, versions, "fallback")
	if reg.Snapshot().Counter("ipdelta_store_archive_fallbacks_total") == 0 {
		t.Error("fallback not counted")
	}
}

func TestStoreArchiveScrubRepairEndToEnd(t *testing.T) {
	seed := uint64(20260808)
	rng := rand.New(rand.NewPCG(seed, 11))
	s, nodes, versions := buildTierStore(t, 4, 3, 12, 4)
	if _, err := s.Archive(11); err != nil {
		t.Fatal(err)
	}
	a := s.ArchiveTier()
	// Silent damage on three distinct nodes, then one node replaced.
	nodes[1].CorruptShard(rng)
	nodes[2].TruncateShard(rng)
	nodes[6].Wipe()
	rep := a.Scrub()
	if rep.Clean() || rep.Unrecoverable != 0 {
		t.Fatalf("seed %d: scrub = %v", seed, rep)
	}
	fix := a.Repair()
	if fix.Failed != 0 || fix.Unrecoverable != 0 || fix.Repaired != rep.Missing+rep.Corrupt {
		t.Fatalf("seed %d: repair = %v", seed, fix)
	}
	if rep := a.Scrub(); !rep.Clean() {
		t.Fatalf("seed %d: post-repair scrub = %v", seed, rep)
	}
	checkAllVersions(t, s, versions, "post-repair")
}

func TestStoreArchiveWithCache(t *testing.T) {
	reg := obs.NewRegistry()
	s, nodes, versions := buildTierStore(t, 3, 2, 8, 4, WithCache(16), WithObserver(reg))
	if _, err := s.Archive(7); err != nil {
		t.Fatal(err)
	}
	nodes[0].Kill() // degraded reconstructs populate the cache too
	checkAllVersions(t, s, versions, "first pass")
	firstReads := reg.Snapshot().Counter("ipdelta_store_archive_reads_total")
	checkAllVersions(t, s, versions, "cached pass")
	snap := reg.Snapshot()
	if got := snap.Counter("ipdelta_store_archive_reads_total"); got != firstReads {
		t.Errorf("cached pass hit the archive again: %d -> %d reads", firstReads, got)
	}
	if snap.Counter("ipdelta_store_cache_version_hits_total") == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestStoreArchiveConcurrentReaders(t *testing.T) {
	s, nodes, versions := buildTierStore(t, 3, 2, 12, 4, WithCache(4))
	if _, err := s.Archive(11); err != nil {
		t.Fatal(err)
	}
	nodes[4].Kill()
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			rng := rand.New(rand.NewPCG(uint64(w), 12))
			for n := 0; n < 40; n++ {
				i := rng.IntN(len(versions))
				got, err := s.Version(i)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, versions[i]) {
					done <- fmt.Errorf("worker %d: version %d differs", w, i)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestArchiveSegmentDecodeHostile(t *testing.T) {
	s, _, _ := buildTierStore(t, 2, 1, 4, 4)
	if _, err := s.Archive(3); err != nil {
		t.Fatal(err)
	}
	blob, err := s.ArchiveTier().Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeArchiveSegment(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(blob); cut += 1 + len(blob)/41 {
			if _, err := DecodeArchiveSegment(blob[:cut]); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for pos := 0; pos < len(blob); pos += 1 + len(blob)/53 {
			bad := append([]byte(nil), blob...)
			bad[pos] ^= 0x04
			g, err := DecodeArchiveSegment(bad)
			if err != nil {
				continue // rejected at decode: good
			}
			// A flip that decodes must be caught by a version CRC.
			caught := false
			for i := g.Lo; i <= g.Hi; i++ {
				if _, err := g.Version(i); err != nil {
					caught = true
					break
				}
			}
			if !caught {
				t.Fatalf("bit flip at %d served every version silently", pos)
			}
		}
	})
	t.Run("hostile header", func(t *testing.T) {
		// lo=0, hi huge: must error, not allocate per claimed version.
		hostile := []byte{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
		if _, err := DecodeArchiveSegment(hostile); err == nil {
			t.Fatal("hostile header accepted")
		}
	})
}
