// Fixture where every expectation matches: two diagnostics on one line
// with two want patterns, a double-quoted pattern escaping the regex
// metacharacters in the message, and an analyzer-scoped suppression.
package good

func f() {
	_ = "boom" // want `string literal .boom. \[lit\]`
	_, _ = "boom", "boom" // want `boom` "string literal \"boom\" \\[lit\\]"
	_ = "boom" //ipvet:ignore marker -- suppressed on purpose
	_ = "fine"
}
