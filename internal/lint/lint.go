// Package lint aggregates the project's analyzers and runs them over
// loaded packages through the interprocedural checker. cmd/ipvet is a
// thin CLI around this package, and the package's own test runs the full
// suite over the module, so `go test` enforces the same invariants CI
// does.
package lint

import (
	"fmt"

	"ipdelta/internal/lint/aliascheck"
	"ipdelta/internal/lint/allocfree"
	"ipdelta/internal/lint/analysis"
	"ipdelta/internal/lint/atomicmix"
	"ipdelta/internal/lint/checker"
	"ipdelta/internal/lint/deprecatedapi"
	"ipdelta/internal/lint/errpropagate"
	"ipdelta/internal/lint/loader"
	"ipdelta/internal/lint/lockorder"
	"ipdelta/internal/lint/locksafe"
	"ipdelta/internal/lint/offsetsafe"
)

// All returns every user-facing ipvet analyzer. Shared passes (inspect,
// callgraph) are not listed; the checker schedules them through Requires.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		offsetsafe.Analyzer,
		aliascheck.Analyzer,
		locksafe.Analyzer,
		errpropagate.Analyzer,
		deprecatedapi.Analyzer,
		allocfree.Analyzer,
		lockorder.Analyzer,
		atomicmix.Analyzer,
	}
}

// Finding is one non-suppressed diagnostic with resolved positions and
// any mechanical fixes.
type Finding = checker.Diagnostic

// FindingString renders a finding the way the CLI prints it.
func FindingString(f Finding) string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies the analyzers to the packages in dependency order, facts
// flowing across package boundaries, and returns the findings in source
// order with //ipvet:ignore suppressions already applied.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return checker.Run(pkgs, analyzers)
}
