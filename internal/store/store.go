// Package store implements delta-chain version storage in the tradition of
// the systems the paper builds on (SCCS/RCS-style version stores and
// delta-compressed backup): a full base image plus one delta per
// subsequent release. Any version can be materialized, and — via delta
// composition — a single direct delta can be produced from any stored
// version to the newest one, ready for in-place conversion and device
// distribution, without materializing the intermediate versions.
//
// A Store is safe for concurrent use. With WithCache, recently
// materialized versions and composed deltas are kept in a bounded LRU
// with singleflight deduplication, so a serving hot path stops replaying
// the delta chain per request (see DESIGN.md §10); cached artifacts are
// shared and must be treated as read-only by callers.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"ipdelta/internal/archive"
	"ipdelta/internal/chunk"
	"ipdelta/internal/codec"
	"ipdelta/internal/delta"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
	"ipdelta/internal/obs"
)

// Errors reported by the store.
var (
	ErrNoSuchVersion = errors.New("store: no such version")
	ErrCorrupt       = errors.New("store: corrupt container")
)

// release is one stored version: its identity and the delta from the
// previous version (nil for the base).
type release struct {
	crc    uint32
	length int64
	d      *delta.Delta // from release k-1 to k; nil for k == 0
}

// storeMetrics holds the pre-resolved stage handles of an observed Store
// (DESIGN.md §10, §12). The cache resolves its own counters.
type storeMetrics struct {
	materialize obs.Stage    // cold chain replays
	compose     obs.Stage    // cold delta compositions
	replays     *obs.Counter // chain links applied by materializations

	archiveBuild  obs.Stage    // Store.Archive segment builds
	archiveRead   obs.Stage    // archival-tier materializations
	archiveReads  *obs.Counter // versions served from the archive tier
	archiveFalls  *obs.Counter // tier reads that fell back to the chain
	archivedSegs  *obs.Counter // segments striped into the archive
	archiveRDepth *obs.Counter // reverse deltas applied by tier reads
}

func resolveStoreMetrics(r *obs.Registry) *storeMetrics {
	return &storeMetrics{
		materialize:   r.Stage("ipdelta_store_stage_materialize_nanos"),
		compose:       r.Stage("ipdelta_store_stage_compose_nanos"),
		replays:       r.Counter("ipdelta_store_chain_replays_total"),
		archiveBuild:  r.Stage("ipdelta_store_stage_archive_build_nanos"),
		archiveRead:   r.Stage("ipdelta_store_stage_archive_read_nanos"),
		archiveReads:  r.Counter("ipdelta_store_archive_reads_total"),
		archiveFalls:  r.Counter("ipdelta_store_archive_fallbacks_total"),
		archivedSegs:  r.Counter("ipdelta_store_archive_segments_total"),
		archiveRDepth: r.Counter("ipdelta_store_archive_reverse_replays_total"),
	}
}

// Store holds a release history as base + delta chain. It is safe for
// concurrent use: any number of readers may overlap with appends.
type Store struct {
	mu       sync.RWMutex // guards releases (append-only; elements immutable)
	appendMu sync.Mutex   // serializes AppendVersion end to end
	base     []byte       // immutable after New/Load
	releases []release
	algo     diff.Algorithm
	cache    *matCache
	met      *storeMetrics

	// Archival tier (archive.go): cold chain segments striped as erasure
	// codes. archUpTo/anchor are guarded by mu; each anchor value is
	// immutable once published.
	arch     *archive.Archive
	segSize  int
	archUpTo int    // highest archived version, -1 when none
	anchor   []byte // full image of version archUpTo (skip anchor)

	// Chunked recipe tier (WithChunking): every version is also described
	// as an ordered chunk recipe over a content-addressed dedup store.
	// Appends then diff recipes instead of replaying the chain to
	// materialize the head, DeltaBetween diffs the two endpoint recipes
	// directly instead of composing the chain, and Version materializes
	// from chunks without chain replay. recipes parallels releases and is
	// guarded by mu; the chunk store may be shared across Stores (tenants),
	// in which case identical content is held once.
	chunked bool
	ck      *chunk.Chunker
	cs      *chunk.Store
	rd      *diff.RecipeDiffer
	recipes []chunk.Recipe

	// Construction-time knobs recorded by options, consumed by finish.
	cacheSize int
	obsReg    *obs.Registry
}

// Option customizes a Store.
type Option func(*Store)

// WithAlgorithm selects the differencing algorithm used by AppendVersion
// (default linear).
func WithAlgorithm(a diff.Algorithm) Option {
	return func(s *Store) { s.algo = a }
}

// WithChunking enables the chunked recipe tier: versions are split by a
// content-defined chunker into a content-addressed store, appends and
// DeltaBetween run over recipes (whole-chunk copies plus byte diffs of
// the unmatched runs, in bounded memory), and Version materializes from
// chunks instead of replaying the delta chain. Pass a shared chunk store
// to dedup identical content across Stores — different tenants' versions
// that share chunks are held once — or nil for a private store.
func WithChunking(shared *chunk.Store) Option {
	return func(s *Store) {
		s.chunked = true
		s.cs = shared
	}
}

// WithCache enables the materialization cache: up to max recently used
// artifacts (version images and composed deltas combined; max <= 0 means
// the default 64) are retained, and concurrent requests for the same cold
// artifact share one computation. Version and DeltaBetween then return
// shared values that must be treated as read-only.
func WithCache(max int) Option {
	return func(s *Store) {
		s.cacheSize = max
		if s.cacheSize <= 0 {
			s.cacheSize = defaultCacheEntries
		}
	}
}

// WithObserver attaches a metrics registry: materialization and
// composition stage timings, chain-replay counts, and — when WithCache is
// also set — cache hit/miss/eviction counters and the in-flight gauge.
func WithObserver(r *obs.Registry) Option {
	return func(s *Store) { s.obsReg = r }
}

// New creates a store whose first version is base.
func New(base []byte, opts ...Option) *Store {
	s := &Store{
		base:     append([]byte(nil), base...),
		algo:     diff.NewLinear(),
		segSize:  DefaultArchiveSegment,
		archUpTo: -1,
	}
	for _, o := range opts {
		o(s)
	}
	if s.obsReg != nil {
		s.met = resolveStoreMetrics(s.obsReg)
	}
	if s.cacheSize > 0 {
		s.cache = newMatCache(s.cacheSize, s.obsReg)
	}
	if s.chunked {
		s.ck, _ = chunk.NewChunker(chunk.Params{}) // zero params: statically valid defaults
		if s.cs == nil {
			var csOpts []chunk.StoreOption
			if s.obsReg != nil {
				csOpts = append(csOpts, chunk.WithObserver(s.obsReg))
			}
			s.cs = chunk.NewStore(csOpts...)
		}
		var rdOpts []diff.RecipeOption
		if s.obsReg != nil {
			rdOpts = append(rdOpts, diff.WithRecipeObserver(s.obsReg))
		}
		s.rd = diff.NewRecipeDiffer(rdOpts...)
		s.recipes = []chunk.Recipe{s.cs.IngestAll(s.ck, base)}
	}
	s.releases = []release{{crc: crc32.ChecksumIEEE(base), length: int64(len(base))}}
	return s
}

// NumVersions returns how many versions the store holds.
func (s *Store) NumVersions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.releases)
}

// AppendVersion stores a new head version as a delta against the current
// head and returns its index. Appends are serialized with each other but
// overlap freely with readers; existing versions and cached artifacts are
// never invalidated (the history is append-only).
func (s *Store) AppendVersion(version []byte) (int, error) {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	if s.chunked {
		return s.appendChunked(version)
	}
	head, err := s.Version(s.NumVersions() - 1)
	if err != nil {
		return 0, err
	}
	d, err := s.algo.Diff(head, version)
	if err != nil {
		return 0, fmt.Errorf("store append: %w", err)
	}
	rel := release{
		crc:    crc32.ChecksumIEEE(version),
		length: int64(len(version)),
		d:      d,
	}
	s.mu.Lock()
	s.releases = append(s.releases, rel)
	n := len(s.releases)
	s.mu.Unlock()
	return n - 1, nil
}

// appendChunked is the recipe append path (appendMu held): the new
// version is chunked into the dedup store and diffed recipe-against-
// recipe with the head — no head materialization, no full-file scan, and
// working memory bounded by the diff window rather than the image size.
func (s *Store) appendChunked(version []byte) (int, error) {
	rn := s.cs.IngestAll(s.ck, version)
	s.mu.RLock()
	ro := s.recipes[len(s.recipes)-1]
	s.mu.RUnlock()
	d, err := s.rd.DiffRecipes(ro, rn, s.cs)
	if err != nil {
		s.cs.ReleaseRecipe(rn)
		return 0, fmt.Errorf("store append: %w", err)
	}
	rel := release{
		crc:    crc32.ChecksumIEEE(version),
		length: int64(len(version)),
		d:      d,
	}
	s.mu.Lock()
	s.releases = append(s.releases, rel)
	s.recipes = append(s.recipes, rn)
	n := len(s.releases)
	s.mu.Unlock()
	return n - 1, nil
}

// ChunkStats reports the chunk store's resident-set summary; ok is false
// when the store is not chunked.
func (s *Store) ChunkStats() (chunk.Stats, bool) {
	if !s.chunked {
		return chunk.Stats{}, false
	}
	return s.cs.Stats(), true
}

// Version materializes version i by applying the delta chain. On a
// cache-enabled store the result may be a shared cached image — treat it
// as read-only — and a miss replays only the suffix of the chain below
// the deepest cached ancestor.
func (s *Store) Version(i int) ([]byte, error) {
	if n := s.NumVersions(); i < 0 || i >= n {
		return nil, fmt.Errorf("%w: %d of %d", ErrNoSuchVersion, i, n)
	}
	if s.cache == nil {
		return s.materialize(i, nil)
	}
	v, err := s.cache.do(cacheKey{kind: kindVersion, to: i}, func() (any, error) {
		return s.materialize(i, s.cache)
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// materialize replays the delta chain up to version i, starting from the
// deepest cached ancestor when a cache is available. Versions at or below
// the archive boundary are served from the archival tier (reconstructing
// through the erasure code when nodes are down), falling back to the
// retained chain if the tier cannot serve; versions above it replay from
// the skip anchor, so hot-head materialization stays O(head − archUpTo)
// deltas deep no matter how long the cold history grows. The bounds of i
// were checked by the caller; the chain below i is immutable, so the
// releases snapshot stays valid after the lock is dropped.
func (s *Store) materialize(i int, c *matCache) ([]byte, error) {
	if s.chunked {
		// Chunk-addressed materialization: no chain replay at any depth,
		// and every chunk is verified against its recipe identity.
		var span obs.Span
		if s.met != nil {
			span = s.met.materialize.Start()
		}
		s.mu.RLock()
		r := s.recipes[i]
		s.mu.RUnlock()
		img, err := chunk.Materialize(nil, r, s.cs)
		if s.met != nil {
			span.End()
		}
		if err != nil {
			return nil, fmt.Errorf("store version %d: %w", i, err)
		}
		return img, nil
	}
	if img, ok := s.tierRead(i); ok {
		// The image is freshly reconstructed from shards, so handing it
		// out (or caching it as a shared artifact) aliases nothing.
		return img, nil
	}
	var span obs.Span
	if s.met != nil {
		span = s.met.materialize.Start()
	}
	start, cur := 0, s.base
	s.mu.RLock()
	if s.archUpTo >= 0 && i >= s.archUpTo {
		start, cur = s.archUpTo, s.anchor
	}
	s.mu.RUnlock()
	if c != nil {
		if k, img, ok := c.nearestVersion(i); ok && k >= start {
			start, cur = k, img
		}
	}
	s.mu.RLock()
	chain := s.releases[start+1 : i+1]
	s.mu.RUnlock()
	for k := range chain {
		next, err := chain[k].d.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("store version %d: %w", i, err)
		}
		cur = next
	}
	if s.met != nil {
		s.met.replays.Add(int64(len(chain)))
		span.End()
	}
	if len(chain) == 0 && c == nil {
		// Uncached callers own the result; never hand out the base image
		// or a cached ancestor itself.
		cur = append([]byte(nil), cur...)
	}
	return cur, nil
}

// CRC returns the stored identity of version i.
func (s *Store) CRC(i int) (uint32, int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.releases) {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrNoSuchVersion, i, len(s.releases))
	}
	return s.releases[i].crc, s.releases[i].length, nil
}

// Lookup finds the version index with the given identity.
func (s *Store) Lookup(crc uint32, length int64) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, r := range s.releases {
		if r.crc == crc && r.length == length {
			return k, true
		}
	}
	return 0, false
}

// DeltaBetween returns a single delta from version i to version j (i < j)
// by composing the stored chain — no intermediate version is materialized.
// On a cache-enabled store the composition is memoized per (i, j) with
// singleflight deduplication; the returned delta is shared and must be
// treated as read-only.
func (s *Store) DeltaBetween(i, j int) (*delta.Delta, error) {
	if n := s.NumVersions(); i < 0 || j >= n || i > j {
		return nil, fmt.Errorf("%w: %d..%d of %d", ErrNoSuchVersion, i, j, n)
	}
	if i == j {
		// Identity delta: cheap enough to rebuild per call.
		s.mu.RLock()
		length := s.releases[i].length
		s.mu.RUnlock()
		id := &delta.Delta{RefLen: length, VersionLen: length}
		if id.RefLen > 0 {
			id.Commands = []delta.Command{delta.NewCopy(0, 0, id.RefLen)}
		}
		return id, nil
	}
	if s.cache == nil {
		return s.compose(i, j)
	}
	v, err := s.cache.do(cacheKey{kind: kindDelta, from: i, to: j}, func() (any, error) {
		return s.compose(i, j)
	})
	if err != nil {
		return nil, err
	}
	return v.(*delta.Delta), nil
}

// compose folds the stored chain (i, j] into one delta. On a chunked
// store it instead diffs the endpoint recipes directly: the result is
// independent of the chain length between i and j, and typically tighter
// than a composition (composition can only intersect stored commands;
// the recipe diff rediscovers every chunk i and j still share).
func (s *Store) compose(i, j int) (*delta.Delta, error) {
	var span obs.Span
	if s.met != nil {
		span = s.met.compose.Start()
	}
	if s.chunked {
		s.mu.RLock()
		ri, rj := s.recipes[i], s.recipes[j]
		s.mu.RUnlock()
		d, err := s.rd.DiffRecipes(ri, rj, s.cs)
		if s.met != nil {
			span.End()
		}
		return d, err
	}
	s.mu.RLock()
	chain := make([]*delta.Delta, 0, j-i)
	for k := i + 1; k <= j; k++ {
		chain = append(chain, s.releases[k].d)
	}
	s.mu.RUnlock()
	d, err := delta.ComposeChain(chain...)
	if s.met != nil {
		span.End()
	}
	return d, err
}

// InPlaceDeltaTo returns a direct, in-place reconstructible delta from
// version i to the newest version, composed from the chain and converted
// with the given policy.
func (s *Store) InPlaceDeltaTo(i int, policy graph.Policy) (*delta.Delta, *inplace.Stats, error) {
	head := s.NumVersions() - 1
	d, err := s.DeltaBetween(i, head)
	if err != nil {
		return nil, nil, err
	}
	ref, err := s.Version(i)
	if err != nil {
		return nil, nil, err
	}
	return inplace.Convert(d, ref, inplace.WithPolicy(policy))
}

// RollbackDelta returns an in-place reconstructible delta from the newest
// version back to version i — inversion of the composed forward chain,
// converted for in-place application. Devices use it to downgrade without
// the server storing backward deltas.
func (s *Store) RollbackDelta(i int, policy graph.Policy) (*delta.Delta, *inplace.Stats, error) {
	head := s.NumVersions() - 1
	forward, err := s.DeltaBetween(i, head)
	if err != nil {
		return nil, nil, err
	}
	old, err := s.Version(i)
	if err != nil {
		return nil, nil, err
	}
	backward, err := delta.Invert(forward, old)
	if err != nil {
		return nil, nil, err
	}
	cur, err := s.Version(head)
	if err != nil {
		return nil, nil, err
	}
	return inplace.Convert(backward, cur, inplace.WithPolicy(policy))
}

// StorageBytes returns the encoded size of the container: the base plus
// every stored delta in the ordered wire format — the space a delta-chain
// store saves over full copies.
func (s *Store) StorageBytes() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := int64(len(s.base))
	for _, r := range s.releases[1:] {
		n, err := codec.EncodedSize(r.d, codec.FormatOrdered)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// FullBytes returns the total size of all versions stored as full copies,
// for comparison against StorageBytes.
func (s *Store) FullBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, r := range s.releases {
		total += r.length
	}
	return total
}

// container framing for Save/Load.
var storeMagic = [4]byte{'I', 'P', 'S', 'T'}

// storeFormatVersion is the container format generation. Version 2 added
// the format byte itself plus a per-release identity frame (CRC32 and
// length, base included) that Load verifies while replaying the chain, so
// a bit-flip that still decodes and applies is caught instead of being
// silently accepted.
const storeFormatVersion = 2

// Save serializes the store: magic, format version, version count, base
// image, the identity frame (CRC32 + length of every release), then each
// delta in the ordered wire format.
func (s *Store) Save() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var buf bytes.Buffer
	buf.Write(storeMagic[:])
	buf.WriteByte(storeFormatVersion)
	writeUvarint(&buf, uint64(len(s.releases)))
	writeUvarint(&buf, uint64(len(s.base)))
	buf.Write(s.base)
	var id [4]byte
	for _, r := range s.releases {
		binary.LittleEndian.PutUint32(id[:], r.crc)
		buf.Write(id[:])
		writeUvarint(&buf, uint64(r.length))
	}
	for _, r := range s.releases[1:] {
		// Length-prefix each delta: the codec decoder buffers its reader,
		// so deltas must be isolated when decoding from one stream.
		var enc bytes.Buffer
		if _, err := codec.Encode(&enc, r.d, codec.FormatOrdered); err != nil {
			return nil, err
		}
		writeUvarint(&buf, uint64(enc.Len()))
		buf.Write(enc.Bytes())
	}
	return buf.Bytes(), nil
}

// Load restores a store serialized by Save, verifying every replayed
// version against the identity frame recorded by Save. All length fields
// are checked against the remaining input before allocation, so a hostile
// few-byte container cannot demand gigabytes.
func Load(data []byte, opts ...Option) (*Store, error) {
	r := bytes.NewReader(data)
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil || m != storeMagic {
		return nil, ErrCorrupt
	}
	ver, err := r.ReadByte()
	if err != nil || ver != storeFormatVersion {
		return nil, fmt.Errorf("%w: unsupported format version", ErrCorrupt)
	}
	count, err := binary.ReadUvarint(r)
	// Each release carries at least 5 identity bytes, so a count claiming
	// more than the remaining input could describe is hostile.
	if err != nil || count == 0 || count > uint64(r.Len())/5+1 {
		return nil, ErrCorrupt
	}
	baseLen, err := binary.ReadUvarint(r)
	if err != nil || baseLen > uint64(r.Len()) {
		return nil, ErrCorrupt
	}
	base := make([]byte, baseLen)
	if _, err := io.ReadFull(r, base); err != nil {
		return nil, ErrCorrupt
	}
	crcs := make([]uint32, count)
	lengths := make([]int64, count)
	var id [4]byte
	for k := uint64(0); k < count; k++ {
		if _, err := io.ReadFull(r, id[:]); err != nil {
			return nil, fmt.Errorf("%w: identity frame truncated", ErrCorrupt)
		}
		crcs[k] = binary.LittleEndian.Uint32(id[:])
		length, err := binary.ReadUvarint(r)
		if err != nil || length > uint64(1)<<62 {
			return nil, fmt.Errorf("%w: identity frame length", ErrCorrupt)
		}
		lengths[k] = int64(length)
	}
	if crc32.ChecksumIEEE(base) != crcs[0] || int64(len(base)) != lengths[0] {
		return nil, fmt.Errorf("%w: base image fails its stored CRC", ErrCorrupt)
	}
	s := New(base, opts...)
	cur := base
	for k := uint64(1); k < count; k++ {
		encLen, err := binary.ReadUvarint(r)
		if err != nil || encLen > uint64(r.Len()) {
			return nil, fmt.Errorf("%w: delta %d length", ErrCorrupt, k)
		}
		enc := make([]byte, encLen)
		if _, err := io.ReadFull(r, enc); err != nil {
			return nil, fmt.Errorf("%w: delta %d truncated", ErrCorrupt, k)
		}
		d, _, err := codec.Decode(bytes.NewReader(enc))
		if err != nil {
			return nil, fmt.Errorf("%w: delta %d: %v", ErrCorrupt, k, err)
		}
		next, err := d.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("%w: delta %d does not apply: %v", ErrCorrupt, k, err)
		}
		if crc32.ChecksumIEEE(next) != crcs[k] || int64(len(next)) != lengths[k] {
			return nil, fmt.Errorf("%w: version %d fails its stored CRC", ErrCorrupt, k)
		}
		s.releases = append(s.releases, release{
			crc:    crcs[k],
			length: lengths[k],
			d:      d,
		})
		if s.chunked {
			// Rebuild the recipe tier: recipes are derived state, not part
			// of the container, so a chunked Load re-ingests each replayed
			// version (deduped against everything already resident).
			s.recipes = append(s.recipes, s.cs.IngestAll(s.ck, next))
		}
		cur = next
	}
	return s, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}
