package inplace

import (
	"fmt"
	"slices"

	"ipdelta/internal/codec"
	"ipdelta/internal/delta"
	"ipdelta/internal/graph"
)

// Analysis describes the in-place structure of a delta without converting
// it: the CRWI digraph, how entangled it is, and what conversion would
// cost. It needs only the delta (not the reference file), so inspection
// tools can run it anywhere.
type Analysis struct {
	// Copies and Adds partition the commands.
	Copies int
	Adds   int
	// Edges is the CRWI digraph's edge count (≤ VersionLen by Lemma 1).
	Edges int
	// CyclicComponents counts strongly connected components with at least
	// two vertices — the irreducible knots that force conversions.
	CyclicComponents int
	// VerticesInCycles counts copies entangled in those components.
	VerticesInCycles int
	// LargestComponent is the size of the biggest cyclic component.
	LargestComponent int
	// AlreadySafe reports whether the delta, in its current order,
	// satisfies Equation 2 (safe to apply in place as-is).
	AlreadySafe bool
	// ReorderSufficient reports whether a permutation alone (no copy→add
	// conversions) can make the delta in-place safe, i.e. the CRWI digraph
	// is acyclic.
	ReorderSufficient bool
	// MinConversionBytes lower-bounds the literal bytes conversion must
	// move into the delta: for each cyclic component, the smallest copy in
	// it (every feedback vertex set takes at least one vertex per cyclic
	// component).
	MinConversionBytes int64
	// CensusPolicy names the cycle-breaking policy the cycle census below
	// assumes (always "locally-minimum"; constant-time depends on DFS
	// discovery order, so its census would not be a function of the delta
	// alone). It is the same policy name the metrics layer bakes into
	// ipdelta_convert_cycles_broken_total{policy="..."}, so Analyze and a
	// live registry count the same thing.
	CensusPolicy string
	// LocallyMinimumBytes is what the CensusPolicy would actually convert,
	// summed over every cycle.
	LocallyMinimumBytes int64
	// CycleSacrifices reports, per cyclic component, what breaking its
	// cycles under CensusPolicy sacrifices — the per-cycle totals behind
	// MinConversionBytes and LocallyMinimumBytes.
	CycleSacrifices []CycleSacrifice
}

// CycleSacrifice is the conversion cost census of one cyclic strongly
// connected component under Analysis.CensusPolicy.
type CycleSacrifice struct {
	// Vertices is the component's size (≥ 2).
	Vertices int
	// MinBytes is the smallest copy in the component — the lower bound
	// any feedback vertex set pays here.
	MinBytes int64
	// SacrificedBytes is the literal bytes the census policy actually
	// converts to adds in this component (0 when a permutation already
	// untangles it, which cannot happen for a true cyclic component).
	SacrificedBytes int64
	// SacrificedCopies counts the copies the census policy deletes in
	// this component.
	SacrificedCopies int
}

// Analyze inspects d and reports its in-place structure. The cycle
// census (CyclesBroken projections, LocallyMinimumBytes, and the
// per-component CycleSacrifices) assumes the locally-minimum policy — the
// paper's recommended default and this module's — which Analysis records
// in CensusPolicy; a conversion run under a different policy or strategy
// may sacrifice different copies.
func Analyze(d *delta.Delta) (*Analysis, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	var copies []delta.Command
	adds := 0
	for _, c := range d.Commands {
		if c.Op == delta.OpCopy {
			copies = append(copies, c)
		} else {
			adds++
		}
	}
	slices.SortFunc(copies, commandsByWriteOffset)
	var cs crwiScratch
	g := cs.build(copies)
	cost := func(v int) int64 {
		c := copies[v]
		return c.Length - int64(codec.UvarintLen(uint64(c.From)))
	}

	a := &Analysis{
		Copies:       len(copies),
		Adds:         adds,
		Edges:        g.NumEdges(),
		AlreadySafe:  d.CheckInPlace() == nil,
		CensusPolicy: graph.LocallyMinimum{}.Name(),
	}
	// compOf maps each vertex entangled in a cyclic component to that
	// component's index in CycleSacrifices, so the policy's removals below
	// can be attributed per cycle.
	compOf := make(map[int]int)
	for _, comp := range graph.StronglyConnectedComponents(g) {
		if len(comp) < 2 {
			continue
		}
		a.CyclicComponents++
		a.VerticesInCycles += len(comp)
		if len(comp) > a.LargestComponent {
			a.LargestComponent = len(comp)
		}
		minLen := copies[comp[0]].Length
		for _, v := range comp {
			if copies[v].Length < minLen {
				minLen = copies[v].Length
			}
			compOf[v] = len(a.CycleSacrifices)
		}
		a.MinConversionBytes += minLen
		a.CycleSacrifices = append(a.CycleSacrifices, CycleSacrifice{
			Vertices: len(comp),
			MinBytes: minLen,
		})
	}
	a.ReorderSufficient = a.CyclicComponents == 0
	res := graph.TopoSort(g, cost, graph.LocallyMinimum{})
	for _, v := range res.Removed {
		a.LocallyMinimumBytes += copies[v].Length
		if ci, ok := compOf[v]; ok {
			a.CycleSacrifices[ci].SacrificedBytes += copies[v].Length
			a.CycleSacrifices[ci].SacrificedCopies++
		}
	}
	return a, nil
}
