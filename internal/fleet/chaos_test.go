package fleet

import (
	"context"
	"reflect"
	"testing"
	"time"

	"ipdelta/internal/corpus"
	"ipdelta/internal/obs"
)

// chaosReleases builds a 3-release history of chained versions.
func chaosReleases(t *testing.T, size int) [][]byte {
	t.Helper()
	base := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: size, ChangeRate: 0, Seed: 77})
	releases := [][]byte{base.Ref}
	cur := base.Ref
	for k := 1; k < 3; k++ {
		gen := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: len(cur), ChangeRate: 0.06, Seed: 77 + int64(k)})
		v := append([]byte(nil), cur...)
		splice := len(v) / 6
		at := (k * 3 * splice) % (len(v) - splice)
		copy(v[at:at+splice], gen.Version[:splice])
		releases = append(releases, v)
		cur = v
	}
	return releases
}

// chaosConfig is the shared fixture: ≥10% op-level connection faults,
// recurring power cuts, flaky flash, one unknown-version device.
func chaosConfig(t *testing.T, seed uint64) ChaosConfig {
	t.Helper()
	return ChaosConfig{
		Releases: chaosReleases(t, 24<<10),
		Devices: []ChaosDeviceSpec{
			{Release: 0, CapacitySlack: 0.05},                           // tight flash, oldest release
			{Release: 0, CapacitySlack: 0.50, PowerCutEveryOps: 60},     // browns out every 60 flash ops
			{Release: 1, CapacitySlack: 0.05, FlashWriteFailProb: 0.01}, // flaky flash
			{Release: 1, CapacitySlack: 0.25},
			{Release: -1, CapacitySlack: 0.10}, // unknown build → full-image fallback
			{Release: 2, CapacitySlack: 0.05},  // already current
		},
		Seed:              seed,
		DropRate:          0.10,
		CorruptRate:       0.02,
		SpikeRate:         0.05,
		Spike:             time.Millisecond,
		MaxAttempts:       40,
		FullFallbackAfter: 5,
		MessageTimeout:    2 * time.Second,
		BaseBackoff:       time.Millisecond,
		WorkBufSize:       1 << 10,
	}
}

func TestChaosFleetConverges(t *testing.T) {
	cfg := chaosConfig(t, 42)
	out, err := RunChaos(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(out.String())
	for _, rep := range out.PerDevice {
		t.Logf("device %d: attempts=%d fellBack=%v converged=%v err=%q",
			rep.Device, rep.Attempts, rep.FellBack, rep.Converged, rep.Err)
	}
	if out.Converged != out.Devices {
		t.Fatalf("only %d/%d devices converged (replay with seed %d)", out.Converged, out.Devices, out.Seed)
	}
	if out.Fallbacks == 0 {
		t.Fatal("no device exercised the full-image fallback path")
	}
	// The unknown-build device must have taken the fallback specifically.
	if !out.PerDevice[4].FellBack {
		t.Fatal("unknown-version device did not fall back to a full image")
	}
	if out.TotalAttempts <= out.Devices {
		t.Fatalf("faults never bit: %d attempts for %d devices", out.TotalAttempts, out.Devices)
	}
	if out.BytesOnWire == 0 {
		t.Fatal("no bytes served")
	}
}

// TestChaosFleetConvergesOverMux runs the same faulted rollout over
// protocol v2: one multiplexed connection per device, each attempt on a
// fresh stream, faults killing streams instead of connections.
func TestChaosFleetConvergesOverMux(t *testing.T) {
	cfg := chaosConfig(t, 42)
	cfg.MuxSessions = true
	out, err := RunChaos(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(out.String())
	if out.Converged != out.Devices {
		t.Fatalf("only %d/%d devices converged over mux (replay with seed %d)",
			out.Converged, out.Devices, out.Seed)
	}
	if out.TotalAttempts <= out.Devices {
		t.Fatalf("faults never bit: %d attempts for %d devices", out.TotalAttempts, out.Devices)
	}
}

func TestChaosDeterministicReplay(t *testing.T) {
	first, err := RunChaos(context.Background(), chaosConfig(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunChaos(context.Background(), chaosConfig(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.PerDevice, second.PerDevice) {
		t.Fatalf("replay diverged:\n  first:  %+v\n  second: %+v", first.PerDevice, second.PerDevice)
	}
	if first.BytesOnWire != second.BytesOnWire {
		t.Fatalf("served bytes diverged: %d vs %d", first.BytesOnWire, second.BytesOnWire)
	}
}

// TestChaosArchiveTier runs the full durable path under node-level faults:
// the release history is striped across erasure-coded nodes, seeded shard
// corruption and truncation must be scrubbed and repaired, two nodes then
// die for good, and the fleet must still converge on images served through
// degraded k-of-n reads. The seed is printed so a failure replays exactly.
func TestChaosArchiveTier(t *testing.T) {
	const seed = 1203
	cfg := chaosArchiveConfig(t, seed)
	out, err := RunChaos(context.Background(), cfg)
	if err != nil {
		t.Fatalf("replay with seed %d: %v", seed, err)
	}
	t.Log(out.String())
	if out.Converged != out.Devices {
		t.Fatalf("only %d/%d devices converged (replay with seed %d)", out.Converged, out.Devices, seed)
	}
	ar := out.Archive
	if ar == nil {
		t.Fatal("no archive tier report")
	}
	if ar.Stripes == 0 || ar.ArchivedUpTo != len(cfg.Releases)-1 {
		t.Fatalf("history not archived: %s", ar)
	}
	if ar.ScrubMissing+ar.ScrubCorrupt == 0 {
		t.Fatalf("scrub missed every injected fault (replay with seed %d): %s", seed, ar)
	}
	if ar.Repaired == 0 {
		t.Fatalf("repair rebuilt nothing (replay with seed %d): %s", seed, ar)
	}
	if len(ar.KilledNodes) != 2 {
		t.Fatalf("wanted 2 dead nodes, got %v", ar.KilledNodes)
	}
	if ar.TierReads == 0 {
		t.Fatalf("no release was served by the tier: %s", ar)
	}
	if ar.DegradedReads == 0 {
		t.Fatalf("node kills never forced a reconstruction (replay with seed %d): %s", seed, ar)
	}

	// The same seed must replay to the identical archive leg.
	again, err := RunChaos(context.Background(), chaosArchiveConfig(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Archive, ar) {
		t.Fatalf("archive leg did not replay:\n  first:  %+v\n  second: %+v", ar, again.Archive)
	}
}

// chaosArchiveConfig rebuilds the TestChaosArchiveTier fixture (fresh
// registry, same seed) for the determinism replay.
func chaosArchiveConfig(t *testing.T, seed uint64) ChaosConfig {
	t.Helper()
	cfg := chaosConfig(t, seed)
	cfg.Observer = obs.NewRegistry()
	cfg.ArchiveTier = &ArchiveTierConfig{
		DataShards:   4,
		ParityShards: 3,
		SegmentSize:  1,
		Corruptions:  4,
		Truncations:  2,
		NodeKills:    2,
	}
	return cfg
}

// TestChaosArchiveTierValidation rejects kill budgets beyond parity.
func TestChaosArchiveTierValidation(t *testing.T) {
	cfg := chaosConfig(t, 9)
	cfg.ArchiveTier = &ArchiveTierConfig{DataShards: 4, ParityShards: 1, NodeKills: 2}
	if _, err := RunChaos(context.Background(), cfg); err == nil {
		t.Fatal("kill budget beyond parity accepted")
	}
}

func TestChaosValidation(t *testing.T) {
	if _, err := RunChaos(context.Background(), ChaosConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := RunChaos(context.Background(), ChaosConfig{Releases: [][]byte{{1, 2, 3}}}); err == nil {
		t.Fatal("config without devices accepted")
	}
	cfg := ChaosConfig{
		Releases: [][]byte{{1, 2, 3}},
		Devices:  []ChaosDeviceSpec{{Release: -7}},
	}
	if _, err := RunChaos(context.Background(), cfg); err == nil {
		t.Fatal("unknown negative release accepted")
	}
}
