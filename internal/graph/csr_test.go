package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// toCSR rebuilds any graph in CSR form with the two-pass builder,
// preserving per-vertex successor order.
func toCSR(b *CSRBuilder, g Graph) *CSR {
	n := g.NumVertices()
	b.Reset(n)
	for u := 0; u < n; u++ {
		b.AddDegree(u, len(g.Succ(u)))
	}
	b.StartFill()
	for u := 0; u < n; u++ {
		for _, v := range g.Succ(u) {
			b.FillEdge(u, int(v))
		}
	}
	return b.Finish()
}

// TestCSRMatchesDigraph checks the CSR form reproduces the adjacency
// structure exactly, with the builder reused across graphs of varying
// size (growing and shrinking) to exercise backing-array reuse.
func TestCSRMatchesDigraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var b CSRBuilder
	sizes := []int{0, 1, 40, 7, 120, 3, 80}
	for _, n := range sizes {
		g := randomDigraph(rng, n, 0.1)
		cs := toCSR(&b, g)
		if cs.NumVertices() != g.NumVertices() || cs.NumEdges() != g.NumEdges() {
			t.Fatalf("n=%d: CSR %d/%d vertices/edges, digraph %d/%d",
				n, cs.NumVertices(), cs.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		for u := 0; u < n; u++ {
			if !slices.Equal(cs.Succ(u), g.Succ(u)) {
				t.Fatalf("n=%d: successors of %d differ: CSR %v, digraph %v",
					n, u, cs.Succ(u), g.Succ(u))
			}
		}
	}
}

// TestCSRBuilderUnderfillPanics checks the fill-count invariant.
func TestCSRBuilderUnderfillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Finish did not panic on an underfilled row")
		}
	}()
	var b CSRBuilder
	b.Reset(2)
	b.AddDegree(0, 2)
	b.StartFill()
	b.FillEdge(0, 1) // one of two declared edges
	b.Finish()
}

// TestTopoScratchMatchesTopoSort runs the scratch-based sort over both
// graph representations and random inputs, checking outcomes are valid
// and identical to the free function's.
func TestTopoScratchMatchesTopoSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cost := func(v int) int64 { return int64(v + 1) }
	var ts TopoScratch
	var b CSRBuilder
	for i := 0; i < 80; i++ {
		g := randomDigraph(rng, 1+rng.Intn(60), 0.08)
		want := TopoSort(g, cost, LocallyMinimum{})
		got := ts.Sort(toCSR(&b, g), cost, LocallyMinimum{})
		if !slices.Equal(got.Order, want.Order) || !slices.Equal(got.Removed, want.Removed) {
			t.Fatalf("case %d: scratch sort differs: got %+v, want %+v", i, got, want)
		}
		if got.CyclesBroken != want.CyclesBroken || got.RemovedCost != want.RemovedCost {
			t.Fatalf("case %d: scratch stats differ: got %+v, want %+v", i, got, want)
		}
		if !VerifyTopological(g, got) {
			t.Fatalf("case %d: scratch sort result not topological", i)
		}
	}
}

// TestTopoScratchSteadyStateAllocs gates the scratch-based sort at zero
// steady-state allocations.
func TestTopoScratchSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomDigraph(rng, 200, 0.05)
	var b CSRBuilder
	cs := toCSR(&b, g)
	cost := func(v int) int64 { return int64(v + 1) }
	var ts TopoScratch
	ts.Sort(cs, cost, LocallyMinimum{}) // warm up
	allocs := testing.AllocsPerRun(20, func() {
		ts.Sort(cs, cost, LocallyMinimum{})
	})
	if allocs > 0 {
		t.Fatalf("steady-state TopoScratch.Sort allocates %.1f times per call, want 0", allocs)
	}
}

// TestSCCScratchMatchesComponents checks the flat Tarjan output agrees
// with the nested-slice wrapper on both representations.
func TestSCCScratchMatchesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var s SCCScratch
	var b CSRBuilder
	for i := 0; i < 80; i++ {
		g := randomDigraph(rng, 1+rng.Intn(60), 0.08)
		want := StronglyConnectedComponents(g)
		verts, offs := s.Components(toCSR(&b, g))
		if len(offs)-1 != len(want) {
			t.Fatalf("case %d: %d components, want %d", i, len(offs)-1, len(want))
		}
		for k := range want {
			comp := verts[offs[k]:offs[k+1]]
			if len(comp) != len(want[k]) {
				t.Fatalf("case %d: component %d has %d vertices, want %d", i, k, len(comp), len(want[k]))
			}
			for j, v := range comp {
				if int(v) != want[k][j] {
					t.Fatalf("case %d: component %d: got %v, want %v", i, k, comp, want[k])
				}
			}
		}
	}
}

// TestSCCScratchSteadyStateAllocs gates the flat SCC pass at zero
// steady-state allocations.
func TestSCCScratchSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomDigraph(rng, 200, 0.05)
	var b CSRBuilder
	cs := toCSR(&b, g)
	var s SCCScratch
	s.Components(cs) // warm up
	allocs := testing.AllocsPerRun(20, func() {
		s.Components(cs)
	})
	if allocs > 0 {
		t.Fatalf("steady-state SCCScratch.Components allocates %.1f times per call, want 0", allocs)
	}
}
