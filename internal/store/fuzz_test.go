package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// smallContainer builds a valid 3-version container for hostile-input
// tests.
func smallContainer(t testing.TB) []byte {
	t.Helper()
	s := New([]byte("the quick brown fox jumps over the lazy dog 0123456789"))
	if _, err := s.AppendVersion([]byte("the quick brown fox vaults over the lazy dog 0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendVersion([]byte("the quick brown fox vaults over the lazy dog 9876543210 with a tail")); err != nil {
		t.Fatal(err)
	}
	blob, err := s.Save()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestLoadHostileContainers mirrors the netupdate hostile length-prefix
// suite: every corruption of the container must yield ErrCorrupt — never
// a panic, a silently wrong store, or a giant allocation.
func TestLoadHostileContainers(t *testing.T) {
	valid := smallContainer(t)
	// Offsets inside the v2 layout: magic(4) + version(1) + count + baseLen.
	const headerEnd = 4 + 1

	putUvarint := func(v uint64) []byte {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v)
		return tmp[:n]
	}

	cases := []struct {
		name string
		data func() []byte
	}{
		{"empty", func() []byte { return nil }},
		{"magic only", func() []byte { return valid[:4] }},
		{"bad magic", func() []byte {
			b := append([]byte(nil), valid...)
			b[2] ^= 0xFF
			return b
		}},
		{"unknown format version", func() []byte {
			b := append([]byte(nil), valid...)
			b[4] = 9
			return b
		}},
		{"legacy format without version byte", func() []byte {
			// A v1-shaped container: magic then count directly.
			b := append([]byte(nil), valid[:4]...)
			return append(b, valid[headerEnd:]...)
		}},
		{"zero count", func() []byte {
			b := append([]byte(nil), valid[:headerEnd]...)
			b = append(b, putUvarint(0)...)
			return append(b, valid[headerEnd+1:]...)
		}},
		{"hostile count", func() []byte {
			// Claims 2^40 releases in a tiny container.
			b := append([]byte(nil), valid[:headerEnd]...)
			b = append(b, putUvarint(1<<40)...)
			return append(b, 0x00)
		}},
		{"hostile base length", func() []byte {
			// 20-ish bytes demanding a 4 GiB base image: must error
			// before allocating (the satellite fix for store.Load).
			b := append([]byte(nil), valid[:headerEnd]...)
			b = append(b, putUvarint(3)...)
			b = append(b, putUvarint(4<<30)...)
			return append(b, 0xAA, 0xBB, 0xCC)
		}},
		{"flipped base byte", func() []byte {
			// Inside the base image: replay still works command-for-
			// command, but the stored CRC must catch it.
			b := append([]byte(nil), valid...)
			b[headerEnd+3] ^= 0x10
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(tc.data()); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error = %v, want ErrCorrupt", err)
			}
		})
	}
	t.Run("every truncation", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			if _, err := Load(valid[:cut]); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("every bit flip is rejected or immaterial", func(t *testing.T) {
		want := mustVersions(t, valid)
		for pos := 0; pos < len(valid); pos++ {
			bad := append([]byte(nil), valid...)
			bad[pos] ^= 0x08
			if _, err := Load(bad); err != nil {
				continue
			}
			// The rare flip that still loads (e.g. an equivalent copy
			// source in a delta) must reproduce identical content.
			got := mustVersions(t, bad)
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("flip at %d silently changed version %d", pos, i)
				}
			}
		}
	})
}

// mustVersions loads a container and materializes every version.
func mustVersions(t testing.TB, blob []byte) [][]byte {
	t.Helper()
	s, err := Load(blob)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, s.NumVersions())
	for i := range out {
		img, err := s.Version(i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = img
	}
	return out
}

// FuzzStoreLoad feeds hostile containers to Load: it must never panic,
// over-allocate against a small input, or accept a container whose
// replayed versions contradict the stored identities.
func FuzzStoreLoad(f *testing.F) {
	valid := smallContainer(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:5])
	f.Add([]byte("IPST"))
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(data)
		if err != nil {
			return
		}
		// Whatever loads must be internally consistent: every version
		// materializes and matches its recorded identity.
		for i := 0; i < s.NumVersions(); i++ {
			img, err := s.Version(i)
			if err != nil {
				t.Fatalf("loaded container cannot materialize version %d: %v", i, err)
			}
			crc, length, err := s.CRC(i)
			if err != nil || int64(len(img)) != length || crc32.ChecksumIEEE(img) != crc {
				t.Fatalf("version %d contradicts its recorded identity (%v)", i, err)
			}
		}
	})
}
