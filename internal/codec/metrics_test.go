package codec

import (
	"bytes"
	"testing"

	"ipdelta/internal/delta"
	"ipdelta/internal/obs"
)

// TestObserverCountsRoundTrip attaches a registry to the package, round
// trips a delta, and checks the wire-accurate counters; detaching must
// stop the counting.
func TestObserverCountsRoundTrip(t *testing.T) {
	d := &delta.Delta{
		RefLen:     8,
		VersionLen: 12,
		Commands: []delta.Command{
			delta.NewCopy(0, 0, 8),
			delta.NewAdd(8, []byte("tail")),
		},
	}
	reg := obs.NewRegistry()
	SetObserver(reg)
	defer SetObserver(nil)

	var buf bytes.Buffer
	n, err := Encode(&buf, d, FormatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	checks := map[string]int64{
		"ipdelta_codec_encode_total":          1,
		"ipdelta_codec_encode_bytes_total":    n,
		"ipdelta_codec_encode_commands_total": 2,
		"ipdelta_codec_decode_total":          1,
		"ipdelta_codec_decode_bytes_total":    n,
		"ipdelta_codec_decode_commands_total": 2,
		"ipdelta_codec_encode_errors_total":   0,
		"ipdelta_codec_decode_errors_total":   0,
	}
	for name, want := range checks {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// A truncated stream is an error, not a decode.
	if _, _, err := Decode(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated decode succeeded")
	}
	snap = reg.Snapshot()
	if got := snap.Counter("ipdelta_codec_decode_errors_total"); got != 1 {
		t.Errorf("decode_errors = %d, want 1", got)
	}
	if got := snap.Counter("ipdelta_codec_decode_total"); got != 1 {
		t.Errorf("decode_total moved on a failed decode: %d", got)
	}

	// Detached: nothing moves.
	SetObserver(nil)
	if _, err := Encode(&buf, d, FormatCompact); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter("ipdelta_codec_encode_total"); got != 1 {
		t.Errorf("encode_total = %d after detach, want 1", got)
	}
}
