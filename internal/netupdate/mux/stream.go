package mux

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Stream is one multiplexed byte stream over a Transport. It implements
// net.Conn, so everything written against the single-connection v1
// protocol — sessions, deadline wrappers, fault injectors — runs over a
// Stream unchanged.
//
// Reads are fed by the transport's read loop through a pooled ring
// buffer bounded by the advertised receive window; as the application
// drains it, WINDOW frames replenish the peer's send credit. Writes
// consume the peer-granted credit and block (backpressure) when it is
// exhausted.
type Stream struct {
	id uint32
	t  *Transport

	mu   sync.Mutex
	cond sync.Cond

	rq      ring  // received, undelivered bytes
	recvFin bool  // peer half-closed
	rst     error // terminal: peer RST, transport death, refusal

	sendWin  int64 // credit granted by the peer
	sentFin  bool
	consumed int   // bytes read since the last WINDOW grant
	closed   bool  // local Close: reads fail, late frames are discarded
	retired  bool  // removed from the transport's stream table

	rdl, wdl       time.Time
	rtimer, wtimer *time.Timer
}

func newStream(id uint32, t *Transport, sendWin int) *Stream {
	s := &Stream{id: id, t: t, sendWin: int64(sendWin)}
	s.cond.L = &s.mu
	return s
}

// ID returns the stream's wire id.
func (s *Stream) ID() uint32 { return s.id }

// Read delivers buffered stream data, blocking until data arrives, the
// peer half-closes (io.EOF after the buffer drains), the stream dies, or
// the read deadline passes.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	for {
		if s.rst != nil {
			s.mu.Unlock()
			return 0, s.rst
		}
		if s.closed {
			s.mu.Unlock()
			return 0, ErrClosed
		}
		if s.rq.n > 0 {
			n := s.rq.read(p)
			s.consumed += n
			grant := 0
			// Replenish the peer's credit once half the window has been
			// drained — batching grants keeps WINDOW traffic at ~2 frames
			// per window instead of one per read.
			if s.consumed >= s.t.local.InitialWindow/2 {
				grant = s.consumed
				s.consumed = 0
			}
			s.mu.Unlock()
			if grant > 0 {
				s.t.writeWindow(s.id, uint32(grant))
			}
			return n, nil
		}
		if s.recvFin {
			s.rq.release()
			s.mu.Unlock()
			return 0, io.EOF
		}
		if !s.rdl.IsZero() && !time.Now().Before(s.rdl) {
			s.mu.Unlock()
			return 0, os.ErrDeadlineExceeded
		}
		if len(p) == 0 {
			s.mu.Unlock()
			return 0, nil
		}
		s.cond.Wait()
	}
}

// Write sends p on the stream in window- and frame-bounded chunks,
// blocking while the peer's receive window is exhausted. A blocked Write
// is exactly the backpressure path: a peer that stops draining stalls
// this stream without costing the connection anything.
func (s *Stream) Write(p []byte) (int, error) {
	written := 0
	maxChunk := s.t.peer.MaxFrame
	for written < len(p) {
		s.mu.Lock()
		for {
			if s.rst != nil {
				s.mu.Unlock()
				return written, s.rst
			}
			if s.sentFin || s.closed {
				s.mu.Unlock()
				return written, fmt.Errorf("mux: write on closed stream %d: %w", s.id, ErrClosed)
			}
			if !s.wdl.IsZero() && !time.Now().Before(s.wdl) {
				s.mu.Unlock()
				return written, os.ErrDeadlineExceeded
			}
			if s.sendWin > 0 {
				break
			}
			s.cond.Wait()
		}
		n := len(p) - written
		if int64(n) > s.sendWin {
			n = int(s.sendWin)
		}
		if n > maxChunk {
			n = maxChunk
		}
		s.sendWin -= int64(n)
		s.mu.Unlock()
		if err := s.t.writeFrame(FrameData, s.id, p[written:written+n]); err != nil {
			return written, err
		}
		written += n
	}
	return written, nil
}

// CloseWrite half-closes the stream: the peer's reads see io.EOF after
// draining, while this side keeps reading.
func (s *Stream) CloseWrite() error {
	s.mu.Lock()
	if s.sentFin || s.rst != nil {
		s.mu.Unlock()
		return nil
	}
	s.sentFin = true
	s.mu.Unlock()
	err := s.t.writeFrame(FrameFin, s.id, nil)
	s.t.maybeRetire(s)
	return err
}

// Close releases the stream. If the peer has not finished sending, an
// RST tells it to stop; late frames for the retired id are discarded
// rather than failing the connection.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	needFin := !s.sentFin && s.rst == nil
	needRst := !s.recvFin && s.rst == nil
	s.sentFin = true
	s.cond.Broadcast()
	s.mu.Unlock()
	var err error
	if needFin {
		err = s.t.writeFrame(FrameFin, s.id, nil)
	}
	if needRst {
		// Benign: the peer stops sending into a stream nobody reads.
		_ = s.t.writeRst(s.id, CodeCancel)
	}
	s.t.retire(s)
	return err
}

// deliver feeds length payload bytes from the transport's read loop into
// the ring. It enforces the receive window: a peer that sends beyond its
// credit is violating flow control, which is a connection-fatal typed
// error (the alternative — buffering hostile amounts — is exactly what
// the window exists to prevent).
func (s *Stream) deliver(r io.Reader, length int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.rst != nil {
		// Late data for a locally closed stream: drain and drop.
		s.mu.Unlock()
		err := s.t.discard(length)
		s.mu.Lock()
		return err
	}
	if s.recvFin {
		return fmt.Errorf("%w: DATA on stream %d after FIN", ErrProtocol, s.id)
	}
	if s.rq.n+length > s.t.local.InitialWindow {
		return fmt.Errorf("%w: stream %d receive window overrun (%d buffered + %d arriving > %d)",
			ErrFlowControl, s.id, s.rq.n, length, s.t.local.InitialWindow)
	}
	s.rq.grow(length)
	if err := s.rq.fill(r, length); err != nil {
		return err
	}
	s.cond.Broadcast()
	return nil
}

// finReceived marks the peer's half-close.
func (s *Stream) finReceived() {
	s.mu.Lock()
	s.recvFin = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.t.maybeRetire(s)
}

// addCredit applies a WINDOW grant to the send window.
func (s *Stream) addCredit(credit uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sendWin += int64(credit)
	if s.sendWin > int64(absoluteMaxFrame)*2 {
		return fmt.Errorf("%w: stream %d send credit overflow", ErrFlowControl, s.id)
	}
	s.cond.Broadcast()
	return nil
}

// resetReceived handles a peer RST. After a FIN, an RST only means the
// peer stopped reading (its Close racing ours on the wire): everything
// it sent — buffered data, the EOF — stays deliverable and only our
// write side dies. Before a FIN it aborts the whole stream.
func (s *Stream) resetReceived(err error) {
	s.mu.Lock()
	if s.recvFin && s.rst == nil {
		s.sentFin = true
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.kill(err)
}

// kill terminates both directions with err (peer RST, refusal, or
// transport death) and wakes every waiter.
func (s *Stream) kill(err error) {
	s.mu.Lock()
	if s.rst == nil {
		s.rst = err
	}
	s.rq.release()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// bothClosed reports whether the stream finished in both directions.
func (s *Stream) bothClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return (s.sentFin && s.recvFin) || s.rst != nil || s.closed
}

// LocalAddr returns the underlying connection's local address.
func (s *Stream) LocalAddr() net.Addr { return s.t.conn.LocalAddr() }

// RemoteAddr returns the underlying connection's remote address.
func (s *Stream) RemoteAddr() net.Addr { return s.t.conn.RemoteAddr() }

// SetDeadline implements net.Conn.
func (s *Stream) SetDeadline(t time.Time) error {
	if err := s.SetReadDeadline(t); err != nil {
		return err
	}
	return s.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn. A deadline in the past fails
// in-flight and future reads immediately, which is what the session
// layer's context plumbing relies on to abort a hung session.
func (s *Stream) SetReadDeadline(t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rdl = t
	s.rtimer = armDeadline(s.rtimer, t, &s.cond, &s.mu)
	s.cond.Broadcast()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (s *Stream) SetWriteDeadline(t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wdl = t
	s.wtimer = armDeadline(s.wtimer, t, &s.cond, &s.mu)
	s.cond.Broadcast()
	return nil
}

// armDeadline (re)schedules a wakeup broadcast for deadline t, reusing
// the stream's timer so per-I/O deadline refreshes do not allocate. The
// timer only broadcasts; the blocked operation itself re-checks its
// deadline against the clock, so a stale or early firing is harmless.
func armDeadline(timer *time.Timer, t time.Time, cond *sync.Cond, mu *sync.Mutex) *time.Timer {
	if timer != nil {
		timer.Stop()
	}
	if t.IsZero() {
		return timer
	}
	d := time.Until(t)
	if d <= 0 {
		// Already expired: the Broadcast after arming wakes waiters, and
		// their deadline check fails immediately.
		return timer
	}
	if timer == nil {
		return time.AfterFunc(d, func() {
			mu.Lock()
			cond.Broadcast()
			mu.Unlock()
		})
	}
	timer.Reset(d)
	return timer
}
