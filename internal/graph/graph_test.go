package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDigraphBasics(t *testing.T) {
	g := New(4)
	if g.NumVertices() != 4 || g.NumEdges() != 0 {
		t.Fatal("fresh digraph wrong size")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // parallel edges are allowed and counted
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges() = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(2, 3) {
		t.Fatal("HasEdge gave wrong answers")
	}
	if len(g.Succ(0)) != 2 || g.Succ(0)[0] != 1 {
		t.Fatalf("Succ(0) = %v", g.Succ(0))
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 5)
}

func TestTranspose(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 1) || tr.HasEdge(0, 1) {
		t.Fatal("Transpose wrong")
	}
	if tr.NumEdges() != 2 {
		t.Fatalf("NumEdges() = %d", tr.NumEdges())
	}
}

func TestIsAcyclic(t *testing.T) {
	dag := New(4)
	dag.AddEdge(0, 1)
	dag.AddEdge(1, 2)
	dag.AddEdge(0, 2)
	dag.AddEdge(2, 3)
	if !dag.IsAcyclicWithout(nil) {
		t.Fatal("DAG reported cyclic")
	}
	cyc := New(3)
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 2)
	cyc.AddEdge(2, 0)
	if cyc.IsAcyclicWithout(nil) {
		t.Fatal("cycle reported acyclic")
	}
	// Removing vertex 1 breaks the cycle.
	if !cyc.IsAcyclicWithout([]bool{false, true, false}) {
		t.Fatal("removal not honored")
	}
}

func TestTopoSortDAG(t *testing.T) {
	g := New(6)
	g.AddEdge(5, 2)
	g.AddEdge(5, 0)
	g.AddEdge(4, 0)
	g.AddEdge(4, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	res := TopoSort(g, UnitCost, ConstantTime{})
	if len(res.Removed) != 0 || res.CyclesBroken != 0 {
		t.Fatalf("DAG should need no removals: %+v", res)
	}
	if len(res.Order) != 6 {
		t.Fatalf("Order has %d vertices", len(res.Order))
	}
	if !VerifyTopological(g, res) {
		t.Fatalf("order %v violates edges", res.Order)
	}
}

func TestTopoSortSimpleCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	for _, p := range []Policy{ConstantTime{}, LocallyMinimum{}} {
		res := TopoSort(g, UnitCost, p)
		if res.CyclesBroken != 1 || len(res.Removed) != 1 {
			t.Fatalf("%s: %+v", p.Name(), res)
		}
		if !VerifyTopological(g, res) {
			t.Fatalf("%s: invalid result", p.Name())
		}
	}
}

func TestTopoSortSelfContainedCostAccounting(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	costs := []int64{10, 1, 5}
	cost := func(v int) int64 { return costs[v] }

	res := TopoSort(g, cost, LocallyMinimum{})
	if len(res.Removed) != 1 || res.Removed[0] != 1 {
		t.Fatalf("locally-minimum removed %v, want vertex 1", res.Removed)
	}
	if res.RemovedCost != 1 {
		t.Fatalf("RemovedCost = %d", res.RemovedCost)
	}
	if res.CycleVertices != 3 {
		t.Fatalf("CycleVertices = %d, want 3", res.CycleVertices)
	}
}

func TestTopoSortConstantTimeRemovesDetectionPoint(t *testing.T) {
	// 0→1→2→0: DFS from 0 detects the cycle at vertex 2 (edge 2→0), so the
	// constant-time policy must delete vertex 2.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	res := TopoSort(g, UnitCost, ConstantTime{})
	if len(res.Removed) != 1 || res.Removed[0] != 2 {
		t.Fatalf("constant-time removed %v, want vertex 2", res.Removed)
	}
}

func TestTopoSortTwoIndependentCycles(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	res := TopoSort(g, UnitCost, ConstantTime{})
	if res.CyclesBroken != 2 || len(res.Removed) != 2 {
		t.Fatalf("%+v", res)
	}
	if !VerifyTopological(g, res) {
		t.Fatal("invalid result")
	}
}

func TestTopoSortNestedCycles(t *testing.T) {
	// Figure-eight: two cycles sharing vertex 0. Deleting 0 breaks both.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 2)
	g.AddEdge(2, 0)
	costs := []int64{1, 100, 100}
	res := TopoSort(g, func(v int) int64 { return costs[v] }, LocallyMinimum{})
	if !VerifyTopological(g, res) {
		t.Fatal("invalid result")
	}
	if len(res.Removed) != 1 || res.Removed[0] != 0 {
		t.Fatalf("removed %v, want just the shared vertex 0", res.Removed)
	}
}

func TestAdversarialTreeShape(t *testing.T) {
	depth := 3
	g, cost := AdversarialTree(depth, 5, 6, 50)
	n := g.NumVertices()
	if n != 15 {
		t.Fatalf("vertices = %d, want 15", n)
	}
	if NumLeaves(depth) != 8 {
		t.Fatalf("NumLeaves = %d", NumLeaves(depth))
	}
	// 2 edges per internal vertex + 1 per leaf.
	if g.NumEdges() != 7*2+8 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if cost(0) != 6 || cost(7) != 5 || cost(1) != 50 {
		t.Fatal("cost assignment wrong")
	}
	if g.IsAcyclicWithout(nil) {
		t.Fatal("tree with back edges must be cyclic")
	}
	// Depth below 1 is clamped.
	g2, _ := AdversarialTree(0, 1, 1, 1)
	if g2.NumVertices() != 3 {
		t.Fatalf("clamped tree has %d vertices", g2.NumVertices())
	}
}

func TestAdversarialTreePolicyGap(t *testing.T) {
	// The paper's Figure 2 claim: locally-minimum deletes every leaf while
	// deleting the root alone is optimal.
	depth := 4
	leaves := NumLeaves(depth)
	g, cost := AdversarialTree(depth, 10, 11, 1000)

	lm := TopoSort(g, cost, LocallyMinimum{})
	if !VerifyTopological(g, lm) {
		t.Fatal("invalid LM result")
	}
	if len(lm.Removed) != leaves {
		t.Fatalf("locally-minimum removed %d vertices, want %d leaves", len(lm.Removed), leaves)
	}
	if lm.RemovedCost != int64(leaves)*10 {
		t.Fatalf("LM cost = %d", lm.RemovedCost)
	}

	opt, optCost, err := MinFeedbackVertexSet(g, cost, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) != 1 || opt[0] != 0 || optCost != 11 {
		t.Fatalf("optimal = %v cost %d, want root at cost 11", opt, optCost)
	}
	if lm.RemovedCost <= optCost {
		t.Fatal("adversarial example must make LM strictly worse than optimal")
	}
}

func TestMinFeedbackVertexSet(t *testing.T) {
	t.Run("acyclic needs nothing", func(t *testing.T) {
		g := New(3)
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		set, cost, err := MinFeedbackVertexSet(g, UnitCost, 10)
		if err != nil || len(set) != 0 || cost != 0 {
			t.Fatalf("set=%v cost=%d err=%v", set, cost, err)
		}
	})
	t.Run("single cycle removes cheapest", func(t *testing.T) {
		g := New(3)
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		g.AddEdge(2, 0)
		costs := []int64{5, 2, 9}
		set, cost, err := MinFeedbackVertexSet(g, func(v int) int64 { return costs[v] }, 10)
		if err != nil || len(set) != 1 || set[0] != 1 || cost != 2 {
			t.Fatalf("set=%v cost=%d err=%v", set, cost, err)
		}
	})
	t.Run("size limit enforced", func(t *testing.T) {
		g := New(30)
		if _, _, err := MinFeedbackVertexSet(g, UnitCost, 10); err == nil {
			t.Fatal("expected ErrTooLarge")
		}
	})
}

// randomDigraph builds a digraph with n vertices and roughly density*n*n
// edges, no self-loops.
func randomDigraph(rng *rand.Rand, n int, density float64) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < density {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestQuickTopoSortValidOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 2
		g := randomDigraph(rng, n, rng.Float64()*0.2)
		costs := make([]int64, n)
		for k := range costs {
			costs[k] = rng.Int63n(100) + 1
		}
		cost := func(v int) int64 { return costs[v] }
		for _, p := range []Policy{ConstantTime{}, LocallyMinimum{}} {
			res := TopoSort(g, cost, p)
			if !VerifyTopological(g, res) {
				return false
			}
			// The removed set must actually break all cycles.
			removed := make([]bool, n)
			for _, v := range res.Removed {
				removed[v] = true
			}
			if !g.IsAcyclicWithout(removed) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOptimalNeverWorseThanPolicies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(9) + 2
		g := randomDigraph(rng, n, 0.25)
		costs := make([]int64, n)
		for k := range costs {
			costs[k] = rng.Int63n(50) + 1
		}
		cost := func(v int) int64 { return costs[v] }
		_, optCost, err := MinFeedbackVertexSet(g, cost, 16)
		if err != nil {
			return false
		}
		// Optimal removal set must make the graph acyclic.
		set, _, _ := MinFeedbackVertexSet(g, cost, 16)
		removed := make([]bool, n)
		for _, v := range set {
			removed[v] = true
		}
		if !g.IsAcyclicWithout(removed) {
			return false
		}
		for _, p := range []Policy{ConstantTime{}, LocallyMinimum{}} {
			if TopoSort(g, cost, p).RemovedCost < optCost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"constant-time", "locally-minimum"} {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomDigraph(rng, 60, 0.1)
	costs := make([]int64, 60)
	for k := range costs {
		costs[k] = rng.Int63n(100) + 1
	}
	cost := func(v int) int64 { return costs[v] }
	first := TopoSort(g, cost, LocallyMinimum{})
	for k := 0; k < 5; k++ {
		again := TopoSort(g, cost, LocallyMinimum{})
		if len(again.Order) != len(first.Order) || len(again.Removed) != len(first.Removed) {
			t.Fatal("nondeterministic result sizes")
		}
		for i := range first.Order {
			if first.Order[i] != again.Order[i] {
				t.Fatal("nondeterministic order")
			}
		}
		for i := range first.Removed {
			if first.Removed[i] != again.Removed[i] {
				t.Fatal("nondeterministic removals")
			}
		}
	}
}

func TestTopoSortLargeStress(t *testing.T) {
	// 20k vertices, ~100k edges: the sort must stay fast and valid.
	rng := rand.New(rand.NewSource(100))
	const n = 20000
	g := New(n)
	for k := 0; k < 5*n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	res := TopoSort(g, UnitCost, ConstantTime{})
	if !VerifyTopological(g, res) {
		t.Fatal("invalid result on stress graph")
	}
	removed := make([]bool, n)
	for _, v := range res.Removed {
		removed[v] = true
	}
	if !g.IsAcyclicWithout(removed) {
		t.Fatal("cycles left on stress graph")
	}
}
