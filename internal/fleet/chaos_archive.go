package fleet

import (
	"bytes"
	"fmt"
	"math/rand/v2"

	"ipdelta/internal/archive"
	"ipdelta/internal/obs"
	"ipdelta/internal/store"
)

// ArchiveTierConfig routes the release history through an erasure-coded
// archive tier before the rollout: the history is striped across
// DataShards+ParityShards nodes, seeded shard faults are injected,
// scrub/repair must converge, NodeKills nodes die, and the images handed
// to the update server are re-materialized through degraded k-of-n reads.
// A convergent fleet therefore proves the whole durable path from shards
// on surviving nodes to bytes on device flash.
type ArchiveTierConfig struct {
	// DataShards (k) and ParityShards (m) shape the Reed-Solomon code
	// (defaults 4 and 2). One node hosts each of the k+m shard indexes.
	DataShards   int
	ParityShards int
	// SegmentSize is the store's archive segment length (default 4).
	SegmentSize int
	// Corruptions and Truncations count seeded shard faults injected
	// before the scrub/repair pass.
	Corruptions int
	Truncations int
	// NodeKills is how many nodes die after repair and stay dead for the
	// rollout. Must not exceed ParityShards, or degraded reads cannot be
	// guaranteed to serve.
	NodeKills int
}

// ArchiveTierReport summarizes the archive leg of a chaos run.
type ArchiveTierReport struct {
	Nodes         int   // k+m storage nodes
	ArchivedUpTo  int   // highest archived release index
	Stripes       int   // stripes written
	ScrubMissing  int   // unreadable shards the scrub pass found
	ScrubCorrupt  int   // CRC/size mismatches the scrub pass found
	Repaired      int   // shards rebuilt and written back
	KilledNodes   []int // node IDs dead during the rollout
	TierReads     int64 // release materializations served by the tier
	DegradedReads int64 // tier reads that needed reconstruction
}

// String renders the report the way the chaos harness prints it.
func (r *ArchiveTierReport) String() string {
	return fmt.Sprintf("archive tier: %d nodes, %d stripes (up to v%d), scrub missing=%d corrupt=%d, repaired=%d, killed=%v, tier reads=%d (%d degraded)",
		r.Nodes, r.Stripes, r.ArchivedUpTo, r.ScrubMissing, r.ScrubCorrupt,
		r.Repaired, r.KilledNodes, r.TierReads, r.DegradedReads)
}

// runArchiveTier executes the archive leg: stripe the history, inject
// seeded shard faults, scrub and repair to clean, kill nodes, then
// re-materialize every release through degraded tier reads. The returned
// slice replaces cfg.Releases for the rollout; every configuration or
// durability failure names the seed so the run replays exactly.
func runArchiveTier(cfg ChaosConfig) ([][]byte, *ArchiveTierReport, error) {
	tc := *cfg.ArchiveTier
	if tc.DataShards <= 0 {
		tc.DataShards = 4
	}
	if tc.ParityShards <= 0 {
		tc.ParityShards = 2
	}
	if tc.SegmentSize <= 0 {
		tc.SegmentSize = 4
	}
	if tc.NodeKills > tc.ParityShards {
		return nil, nil, fmt.Errorf("fleet: archive tier kills %d nodes but has only %d parity shards",
			tc.NodeKills, tc.ParityShards)
	}
	// The tier always runs against a registry so it can assert — not just
	// hope — that reads were served by shards, not the retained chain.
	reg := cfg.Observer
	if reg == nil {
		reg = obs.NewRegistry()
	}
	before := reg.Snapshot()

	arch, nodes, err := archive.NewWithNodes(tc.DataShards, tc.ParityShards, archive.WithObserver(reg))
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: archive tier: %w", err)
	}
	st := store.New(cfg.Releases[0],
		store.WithArchive(arch),
		store.WithArchiveSegment(tc.SegmentSize),
		store.WithObserver(reg))
	for _, r := range cfg.Releases[1:] {
		if _, err := st.AppendVersion(r); err != nil {
			return nil, nil, fmt.Errorf("fleet: archive tier: %w", err)
		}
	}
	if _, err := st.Archive(len(cfg.Releases) - 1); err != nil {
		return nil, nil, fmt.Errorf("fleet: archive tier: %w", err)
	}

	rep := &ArchiveTierReport{
		Nodes:        len(nodes),
		ArchivedUpTo: st.ArchivedUpTo(),
		Stripes:      len(arch.Stripes()),
	}

	// Seeded shard faults, then scrub/repair back to clean. All nodes are
	// still alive here, so a dirty post-repair scrub is a real bug.
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xA2C817E5))
	for i := 0; i < tc.Corruptions; i++ {
		nodes[rng.IntN(len(nodes))].CorruptShard(rng)
	}
	for i := 0; i < tc.Truncations; i++ {
		nodes[rng.IntN(len(nodes))].TruncateShard(rng)
	}
	scrub := arch.Scrub()
	rep.ScrubMissing, rep.ScrubCorrupt = scrub.Missing, scrub.Corrupt
	repair := arch.Repair()
	rep.Repaired = repair.Repaired
	if repair.Failed > 0 || repair.Unrecoverable > 0 {
		return nil, nil, fmt.Errorf("fleet: archive repair left %d failed, %d unrecoverable (replay with seed %d)",
			repair.Failed, repair.Unrecoverable, cfg.Seed)
	}
	if post := arch.Scrub(); !post.Clean() {
		return nil, nil, fmt.Errorf("fleet: archive still dirty after repair (replay with seed %d): %s",
			cfg.Seed, post)
	}

	// Node loss for the rollout: a seeded choice of distinct nodes dies
	// and stays dead, so every read of their shard indexes reconstructs.
	for _, idx := range rng.Perm(len(nodes))[:tc.NodeKills] {
		nodes[idx].Kill()
		rep.KilledNodes = append(rep.KilledNodes, nodes[idx].ID())
	}

	// Re-materialize every release through the tier and byte-verify. These
	// copies — not cfg.Releases — feed the update server, so fleet
	// convergence proves bytes flowed shards → reconstruct → device.
	out := make([][]byte, len(cfg.Releases))
	for i := range cfg.Releases {
		img, err := st.Version(i)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: archive tier cannot serve release %d (replay with seed %d): %w",
				i, cfg.Seed, err)
		}
		if !bytes.Equal(img, cfg.Releases[i]) {
			return nil, nil, fmt.Errorf("fleet: archive tier read of release %d diverged (replay with seed %d)",
				i, cfg.Seed)
		}
		out[i] = img
	}
	after := reg.Snapshot()
	rep.TierReads = after.Counter("ipdelta_store_archive_reads_total") - before.Counter("ipdelta_store_archive_reads_total")
	rep.DegradedReads = after.Counter("ipdelta_archive_degraded_reads_total") - before.Counter("ipdelta_archive_degraded_reads_total")
	// Within parity budget nothing may have slid back to the chain: a
	// fallback here means the tier failed a read it had the shards for.
	if falls := after.Counter("ipdelta_store_archive_fallbacks_total") - before.Counter("ipdelta_store_archive_fallbacks_total"); falls > 0 {
		return nil, nil, fmt.Errorf("fleet: %d archive reads fell back to the chain (replay with seed %d)",
			falls, cfg.Seed)
	}
	return out, rep, nil
}
