package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// diffNaive builds a correct (if crude) delta between two buffers for
// composition tests: common prefix/suffix as copies, middle as add. It
// keeps this package free of a dependency on the diff package.
func diffNaive(ref, version []byte) *Delta {
	d := &Delta{RefLen: int64(len(ref)), VersionLen: int64(len(version))}
	p := 0
	for p < len(ref) && p < len(version) && ref[p] == version[p] {
		p++
	}
	s := 0
	for s < len(ref)-p && s < len(version)-p && ref[len(ref)-1-s] == version[len(version)-1-s] {
		s++
	}
	if p > 0 {
		d.Commands = append(d.Commands, NewCopy(0, 0, int64(p)))
	}
	if mid := version[p : len(version)-s]; len(mid) > 0 {
		data := make([]byte, len(mid))
		copy(data, mid)
		d.Commands = append(d.Commands, NewAdd(int64(p), data))
	}
	if s > 0 {
		d.Commands = append(d.Commands, NewCopy(int64(len(ref)-s), int64(len(version)-s), int64(s)))
	}
	return d
}

func TestDiffNaiveHelper(t *testing.T) {
	a := []byte("hello cruel world")
	b := []byte("hello kind world")
	d := diffNaive(a, b)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(a)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatalf("%q %v", got, err)
	}
}

func TestComposeBasic(t *testing.T) {
	v1 := []byte("the quick brown fox jumps over the lazy dog")
	v2 := []byte("the quick red fox jumps over the lazy dog")
	v3 := []byte("the quick red fox vaults over the lazy dog")

	d12 := diffNaive(v1, v2)
	d23 := diffNaive(v2, v3)
	d13, err := Compose(d12, d23)
	if err != nil {
		t.Fatal(err)
	}
	if err := d13.Validate(); err != nil {
		t.Fatalf("composed delta invalid: %v", err)
	}
	got, err := d13.Apply(v1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v3) {
		t.Fatalf("composed apply = %q, want %q", got, v3)
	}
}

func TestComposeCopyThroughAdd(t *testing.T) {
	// second copies a region that first encoded as an add: the composition
	// must carry those bytes as literal data.
	v1 := []byte("AAAA")
	d12 := &Delta{ // v2 = "AAAAxyz"
		RefLen:     4,
		VersionLen: 7,
		Commands: []Command{
			NewCopy(0, 0, 4),
			NewAdd(4, []byte("xyz")),
		},
	}
	d23 := &Delta{ // v3 = "xyzAAAA": copies cross first's add/copy boundary
		RefLen:     7,
		VersionLen: 7,
		Commands: []Command{
			NewCopy(4, 0, 3),
			NewCopy(0, 3, 4),
		},
	}
	d13, err := Compose(d12, d23)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d13.Apply(v1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "xyzAAAA" {
		t.Fatalf("got %q", got)
	}
	// The xyz bytes must have become an add (v1 does not contain them).
	if d13.AddedBytes() != 3 {
		t.Fatalf("AddedBytes = %d, want 3", d13.AddedBytes())
	}
}

func TestComposeSplitsAcrossBoundaries(t *testing.T) {
	// A single copy in second spanning three commands of first splits into
	// three fragments, then merging may recombine collinear ones.
	v1 := []byte("0123456789")
	d12 := &Delta{ // v2 = v1 (identity, in three pieces)
		RefLen:     10,
		VersionLen: 10,
		Commands: []Command{
			NewCopy(0, 0, 3),
			NewCopy(3, 3, 4),
			NewCopy(7, 7, 3),
		},
	}
	d23 := &Delta{ // v3 = v2 entirely, single copy
		RefLen:     10,
		VersionLen: 10,
		Commands:   []Command{NewCopy(0, 0, 10)},
	}
	d13, err := Compose(d12, d23)
	if err != nil {
		t.Fatal(err)
	}
	// The three collinear fragments merge back into one copy.
	if len(d13.Commands) != 1 || d13.Commands[0].Length != 10 {
		t.Fatalf("commands = %v", d13.Commands)
	}
	got, _ := d13.Apply(v1)
	if !bytes.Equal(got, v1) {
		t.Fatal("identity composition broken")
	}
}

func TestComposeMergesAdjacentAdds(t *testing.T) {
	d12 := &Delta{
		RefLen:     0,
		VersionLen: 4,
		Commands:   []Command{NewAdd(0, []byte("ab")), NewAdd(2, []byte("cd"))},
	}
	d23 := &Delta{
		RefLen:     4,
		VersionLen: 4,
		Commands:   []Command{NewCopy(0, 0, 4)},
	}
	d13, err := Compose(d12, d23)
	if err != nil {
		t.Fatal(err)
	}
	if len(d13.Commands) != 1 || d13.Commands[0].Op != OpAdd || string(d13.Commands[0].Data) != "abcd" {
		t.Fatalf("commands = %v", d13.Commands)
	}
}

func TestComposeRejectsMismatchedLengths(t *testing.T) {
	d12 := &Delta{RefLen: 0, VersionLen: 2, Commands: []Command{NewAdd(0, []byte("ab"))}}
	d23 := &Delta{RefLen: 3, VersionLen: 3, Commands: []Command{NewCopy(0, 0, 3)}}
	if _, err := Compose(d12, d23); err == nil {
		t.Fatal("mismatched chain accepted")
	}
}

func TestComposeRejectsInvalid(t *testing.T) {
	bad := &Delta{RefLen: 4, VersionLen: 4, Commands: []Command{NewCopy(0, 2, 4)}}
	ok := &Delta{RefLen: 4, VersionLen: 4, Commands: []Command{NewCopy(0, 0, 4)}}
	if _, err := Compose(bad, ok); err == nil {
		t.Fatal("invalid first accepted")
	}
	if _, err := Compose(ok, bad); err == nil {
		t.Fatal("invalid second accepted")
	}
}

func TestComposeChain(t *testing.T) {
	versions := [][]byte{
		[]byte("version one of the file"),
		[]byte("version two of the file"),
		[]byte("version two of the file, extended"),
		[]byte("final version of the file, extended"),
	}
	var chain []*Delta
	for k := 1; k < len(versions); k++ {
		chain = append(chain, diffNaive(versions[k-1], versions[k]))
	}
	d, err := ComposeChain(chain...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(versions[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, versions[len(versions)-1]) {
		t.Fatalf("chain apply = %q", got)
	}
	if _, err := ComposeChain(); err == nil {
		t.Fatal("empty chain accepted")
	}
	single, err := ComposeChain(chain[0])
	if err != nil || single != chain[0] {
		t.Fatal("single-element chain should return it unchanged")
	}
}

// randomVersions builds a chain of related random versions.
func randomVersions(rng *rand.Rand, n int) [][]byte {
	out := make([][]byte, n)
	cur := make([]byte, rng.Intn(2000)+100)
	rng.Read(cur)
	out[0] = cur
	for k := 1; k < n; k++ {
		next := append([]byte(nil), out[k-1]...)
		// A few random splices.
		for e := 0; e < rng.Intn(4)+1; e++ {
			if len(next) < 4 {
				break
			}
			at := rng.Intn(len(next))
			switch rng.Intn(3) {
			case 0:
				ins := make([]byte, rng.Intn(64)+1)
				rng.Read(ins)
				next = append(next[:at], append(ins, next[at:]...)...)
			case 1:
				end := at + rng.Intn(64) + 1
				if end > len(next) {
					end = len(next)
				}
				next = append(next[:at], next[end:]...)
			default:
				if at < len(next) {
					next[at] ^= 0x5A
				}
			}
		}
		out[k] = next
	}
	return out
}

func TestQuickComposeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vs := randomVersions(rng, 4)
		var chain []*Delta
		for k := 1; k < len(vs); k++ {
			chain = append(chain, diffNaive(vs[k-1], vs[k]))
		}
		d, err := ComposeChain(chain...)
		if err != nil {
			return false
		}
		if d.Validate() != nil {
			return false
		}
		got, err := d.Apply(vs[0])
		if err != nil {
			return false
		}
		return bytes.Equal(got, vs[len(vs)-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
