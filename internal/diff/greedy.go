package diff

import (
	"bytes"

	"ipdelta/internal/delta"
)

// Greedy is the classical byte-granular greedy differencer: at every
// version offset it looks up all reference positions sharing the current
// seed (via chained hash buckets) and takes the longest verified match.
// It typically compresses slightly better than Linear at substantially
// higher cost — quadratic in the worst case — which is the trade-off the
// paper's related-work section describes.
type Greedy struct {
	seedLen  int
	maxChain int
}

// GreedyOption customizes a Greedy differencer.
type GreedyOption func(*Greedy)

// WithGreedySeedLen sets the seed length (default 8, minimum 4).
func WithGreedySeedLen(p int) GreedyOption {
	return func(g *Greedy) {
		if p < 4 {
			p = 4
		}
		g.seedLen = p
	}
}

// WithMaxChain bounds how many candidate occurrences are examined per
// version offset (default 64). Zero or negative means unbounded, restoring
// the true quadratic-time greedy method.
func WithMaxChain(n int) GreedyOption {
	return func(g *Greedy) { g.maxChain = n }
}

// NewGreedy returns a greedy differencer with the options applied.
func NewGreedy(opts ...GreedyOption) *Greedy {
	g := &Greedy{seedLen: 8, maxChain: 64}
	for _, o := range opts {
		o(g)
	}
	return g
}

// Name implements Algorithm.
func (g *Greedy) Name() string { return "greedy" }

// Diff implements Algorithm.
func (g *Greedy) Diff(ref, version []byte) (*delta.Delta, error) {
	d := &delta.Delta{RefLen: int64(len(ref)), VersionLen: int64(len(version))}
	if len(version) == 0 {
		return d, nil
	}
	p := g.seedLen
	if len(ref) < p || len(version) < p {
		return Null{}.Diff(ref, version)
	}

	// Index every reference seed into chained buckets: head[h] is the most
	// recent offset with fingerprint bucket h (+1), next[r] chains to the
	// previous offset with the same bucket.
	const tableBits = 17
	mask := uint64(1)<<tableBits - 1
	head := make([]int32, uint64(1)<<tableBits)
	next := make([]int32, len(ref)-p+1)
	rh := newKRHasher(p)
	rh.init(ref[:p])
	for r := 0; ; r++ {
		b := rh.hash & mask
		next[r] = head[b]
		head[b] = int32(r) + 1
		if r+p >= len(ref) {
			break
		}
		rh.roll(ref[r], ref[r+p])
	}

	e := &emitter{}
	vh := newKRHasher(p)
	vh.init(version[:p])
	v := 0
	lit := 0
	for {
		bestLen, bestR := 0, 0
		chain := 0
		for cand := head[vh.hash&mask]; cand != 0; cand = next[cand-1] {
			r := int(cand) - 1
			if g.maxChain > 0 && chain >= g.maxChain {
				break
			}
			chain++
			if !bytes.Equal(ref[r:r+p], version[v:v+p]) {
				continue
			}
			n := p + matchForward(ref, version, r+p, v+p)
			if n > bestLen {
				bestLen, bestR = n, r
			}
		}
		if bestLen >= p {
			back := matchBackward(ref, version, bestR, v, v-lit)
			e.literal(version[lit : v-back])
			e.copyCmd(int64(bestR-back), int64(bestLen+back))
			v += bestLen
			lit = v
			if v+p > len(version) {
				break
			}
			vh.init(version[v : v+p])
			continue
		}
		if v+p >= len(version) {
			break
		}
		vh.roll(version[v], version[v+p])
		v++
	}
	e.literal(version[lit:])
	d.Commands = e.finish()
	return d, nil
}
