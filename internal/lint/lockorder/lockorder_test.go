package lockorder_test

import (
	"testing"

	"ipdelta/internal/lint/analysistest"
	"ipdelta/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	// "lockdep" is analyzed first and exports its MuB → MuA edge as a
	// package fact; the cycle only exists in the combined digraph, so every
	// finding lands in "locks", on the edges that package owns.
	analysistest.Run(t, lockorder.Analyzer, "locks", "lockdep")
}
